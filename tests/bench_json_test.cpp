// bench::JsonReporter must emit strict JSON: the perf-trajectory tooling
// parses BENCH_*.json with an ordinary JSON parser, so bare nan/inf tokens,
// unescaped quotes in metric names, or truncated doubles silently corrupt
// the trajectory. These tests exercise the escaping and number formatting
// helpers and round-trip a full record through a minimal JSON reader.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <string>

#include "bench_common.hpp"

namespace anton::bench {
namespace {

// Minimal flat-object JSON reader, just enough for one reporter line:
// {"key":value,...} with string or number-or-null values. Returns false on
// any syntax violation — which is exactly what the tests are guarding.
bool parseFlatObject(const std::string& line,
                     std::map<std::string, std::string>& out) {
  std::size_t i = 0;
  auto skipWs = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
  };
  auto parseString = [&](std::string& s) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (++i >= line.size()) return false;
        switch (line[i]) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (i + 4 >= line.size()) return false;
            s += char(std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
            break;
          }
          default: return false;
        }
      } else {
        s += c;
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skipWs();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  while (true) {
    skipWs();
    std::string key;
    if (!parseString(key)) return false;
    skipWs();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skipWs();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parseString(value)) return false;
    } else {
      std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(start, i - start);
      if (value.empty()) return false;
      if (value != "null") {  // must parse fully as a JSON number
        char* end = nullptr;
        std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size()) return false;
      }
    }
    out[key] = value;
    skipWs();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= line.size() || line[i] != '}') return false;
  return true;
}

TEST(JsonReporter, NonFiniteValuesBecomeNull) {
  EXPECT_EQ(JsonReporter::number(std::nan("")), "null");
  EXPECT_EQ(JsonReporter::number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonReporter::number(-std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonReporter, NumbersRoundTripAtFullPrecision) {
  for (double v : {162.0, 1.0 / 3.0, 9.869604401089358e-7, -0.0, 1e300,
                   0.1 + 0.2, 5e-324}) {
    std::string s = JsonReporter::number(v);
    double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(back, v) << "lossy: " << s;
  }
}

TEST(JsonReporter, StringsAreEscaped) {
  EXPECT_EQ(JsonReporter::quoted("plain"), "\"plain\"");
  EXPECT_EQ(JsonReporter::quoted("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonReporter::quoted("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonReporter::quoted("line\nbreak\ttab"),
            "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonReporter::quoted(std::string("nul\x01" "byte")),
            "\"nul\\u0001byte\"");
}

TEST(JsonReporter, RecordedLinesParseAndRoundTrip) {
  const std::string bench = "json_rt \"quoted\"\tname";
  {
    JsonReporter rep(bench);
    rep.record("latency (one-way)", 162.0, 171.5, "ns");
    rep.record("nan metric", 100.0, std::nan(""), "us");
    rep.record("third \\ pi", 3.0, 9.869604401089358e-7, "1/s");
  }  // close the file before reading it back

  std::ifstream in("BENCH_" + bench + ".json");
  ASSERT_TRUE(in) << "reporter output file missing";
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  std::map<std::string, std::string> rec;
  ASSERT_TRUE(parseFlatObject(line, rec)) << "invalid JSON: " << line;
  EXPECT_EQ(rec["bench"], bench);
  EXPECT_EQ(rec["metric"], "latency (one-way)");
  EXPECT_EQ(rec["unit"], "ns");
  EXPECT_EQ(std::strtod(rec["paper"].c_str(), nullptr), 162.0);
  EXPECT_EQ(std::strtod(rec["measured"].c_str(), nullptr), 171.5);
  EXPECT_EQ(std::strtod(rec["deviation"].c_str(), nullptr),
            (171.5 - 162.0) / 162.0);

  ASSERT_TRUE(std::getline(in, line));
  rec.clear();
  ASSERT_TRUE(parseFlatObject(line, rec)) << "invalid JSON: " << line;
  EXPECT_EQ(rec["measured"], "null") << "NaN must serialize as null";
  EXPECT_EQ(rec["deviation"], "null");

  ASSERT_TRUE(std::getline(in, line));
  rec.clear();
  ASSERT_TRUE(parseFlatObject(line, rec)) << "invalid JSON: " << line;
  EXPECT_EQ(rec["metric"], "third \\ pi");
  EXPECT_EQ(std::strtod(rec["measured"].c_str(), nullptr),
            9.869604401089358e-7)
      << "precision lost in round-trip";

  EXPECT_FALSE(std::getline(in, line)) << "unexpected extra output";
  std::remove(("BENCH_" + bench + ".json").c_str());
}

}  // namespace
}  // namespace anton::bench
