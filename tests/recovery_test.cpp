// End-to-end erasure recovery: link-failure drops must be observable and
// recoverable. Covers the watchdog race-loser cancellation (no stale counter
// waiters, no deadline stretching the timeline), expectFrom diagnosis over
// the full arrival history, the DropRegistry replay buffer, and the
// RecoverableCountedWrite retry loop — including exact multicast recovery
// (only denied receivers are re-sent to) and the bounded-budget hard
// failure.
#include <gtest/gtest.h>

#include <vector>

#include "core/allreduce.hpp"
#include "core/recovery.hpp"
#include "core/watchdog.hpp"
#include "fft/distributed.hpp"
#include "fft/grid3d.hpp"
#include "md/anton_app.hpp"
#include "net/machine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace anton {
namespace {

using net::ClientAddr;
using net::kSlice0;
using net::Machine;
using net::NetworkClient;
using sim::Task;

struct Fixture {
  sim::Simulator sim;
  Machine machine;
  explicit Fixture(util::TorusShape shape = {4, 4, 4}) : machine(sim, shape) {}
  int nodeAt(int x, int y, int z) {
    return util::torusIndex({x, y, z}, machine.shape());
  }
};

/// Deterministic fault model: declares the link failed (packet dropped) on
/// exactly the traversal indices in `dropAt`; all other traversals are clean.
struct DropTraversals final : net::FaultModel {
  std::vector<int> dropAt;
  int seen = 0;
  explicit DropTraversals(std::vector<int> idx) : dropAt(std::move(idx)) {}
  net::LinkFaultOutcome onLinkTraversal(int, int, int, std::size_t,
                                        sim::Time) override {
    net::LinkFaultOutcome out;
    for (int i : dropAt)
      if (i == seen) out.linkFailed = true;
    ++seen;
    return out;
  }
  bool linkDown(int, int, int, sim::Time) const override { return false; }
  sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
};

/// Drops every traversal: nothing ever gets through.
struct DropEverything final : net::FaultModel {
  net::LinkFaultOutcome onLinkTraversal(int, int, int, std::size_t,
                                        sim::Time) override {
    return {.linkFailed = true};
  }
  bool linkDown(int, int, int, sim::Time) const override { return false; }
  sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
};

/// Drops the traversal indices in `dropAt`, counting only traversals on
/// dimension `dim`. Collectives use disjoint dimensions per phase (the FFT's
/// dim-d pass and the all-reduce's dim-d line broadcasts ride only dim-d
/// links), so this targets one phase of a live collective precisely.
struct DropOnDim final : net::FaultModel {
  int dim;
  std::vector<int> dropAt;
  int seen = 0;
  DropOnDim(int d, std::vector<int> idx) : dim(d), dropAt(std::move(idx)) {}
  net::LinkFaultOutcome onLinkTraversal(int, int d, int, std::size_t,
                                        sim::Time) override {
    net::LinkFaultOutcome out;
    if (d == dim) {
      for (int i : dropAt)
        if (i == seen) out.linkFailed = true;
      ++seen;
    }
    return out;
  }
  bool linkDown(int, int, int, sim::Time) const override { return false; }
  sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
};

/// Drops the first traversal whose wire size matches `wireBytes` — e.g. the
/// migration-flush packets are the only header-only (32-byte-wire) traffic
/// in an MD superstep.
struct DropFirstOfWireSize final : net::FaultModel {
  std::size_t wireBytes;
  bool dropped = false;
  explicit DropFirstOfWireSize(std::size_t wb) : wireBytes(wb) {}
  net::LinkFaultOutcome onLinkTraversal(int, int, int, std::size_t wb,
                                        sim::Time) override {
    net::LinkFaultOutcome out;
    if (!dropped && wb == wireBytes) {
      out.linkFailed = true;
      dropped = true;
    }
    return out;
  }
  bool linkDown(int, int, int, sim::Time) const override { return false; }
  sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
};

/// One permanently dead outgoing link: every traversal attempt on it is
/// dropped; everything else is clean.
struct DeadLink final : net::FaultModel {
  int node, dim, sign;
  DeadLink(int n, int d, int s) : node(n), dim(d), sign(s) {}
  net::LinkFaultOutcome onLinkTraversal(int n, int d, int s, std::size_t,
                                        sim::Time) override {
    net::LinkFaultOutcome out;
    out.linkFailed = n == node && d == dim && s == sign;
    return out;
  }
  bool linkDown(int, int, int, sim::Time) const override { return false; }
  sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
};

core::RecoveryHooks testHooks(core::DropRegistry& reg,
                              core::RecoveryStats& stats) {
  core::RecoveryHooks hooks;
  hooks.registry = &reg;
  hooks.config.timeout = sim::us(100);
  hooks.config.maxResends = 6;
  hooks.config.resendBackoff = sim::us(5);
  hooks.stats = &stats;
  return hooks;
}

// --- watchdog race cancellation -------------------------------------------

TEST(Watchdog, TimeoutCancelsTheCounterWaiter) {
  // A timed-out wait must not leave its wake callback parked on the counter
  // forever (counters never reset, so an unmet target would pin it — and
  // the frames it captures — for the life of the client).
  Fixture f;
  NetworkClient& dst = f.machine.client({0, kSlice0});
  core::WatchdogReport report;
  auto waiter = [&]() -> Task {
    core::CountedWriteWatchdog wd(dst, 0, sim::us(1));
    report = co_await wd.wait(5);  // nothing is ever sent
  };
  f.sim.spawn(waiter());
  f.sim.run();
  EXPECT_TRUE(report.timedOut);
  EXPECT_EQ(dst.counterWaiters(0), 0u) << "stale counter waiter leaked";
}

TEST(Watchdog, CounterWinCancelsTheDeadline) {
  // When the counter is met first, the pending deadline must be retracted:
  // run() drains the queue, so a surviving deadline event would stretch
  // simulated time to the full timeout.
  Fixture f;
  NetworkClient& dst = f.machine.client({0, kSlice0});
  core::WatchdogReport report;
  auto waiter = [&]() -> Task {
    core::CountedWriteWatchdog wd(dst, 0, sim::us(1000));
    report = co_await wd.wait(1);
  };
  f.sim.spawn(waiter());
  NetworkClient::SendArgs args;
  args.dst = dst.addr();
  args.counterId = 0;
  f.machine.client({f.nodeAt(1, 0, 0), kSlice0}).post(args);
  f.sim.run();
  EXPECT_FALSE(report.timedOut);
  EXPECT_EQ(dst.counterWaiters(0), 0u);
  EXPECT_LT(f.sim.now(), sim::us(1000)) << "dead deadline stretched the run";
}

TEST(Watchdog, ExpectFromAfterArrivalsSeesFullHistory) {
  // Sources are tallied from counter creation, so a watchdog declaring its
  // expectations after packets have already arrived must still credit them
  // (the old per-call opt-in lost every pre-tracking increment and
  // overstated the missing packets).
  Fixture f;
  NetworkClient& dst = f.machine.client({0, kSlice0});
  const int src1 = f.nodeAt(1, 0, 0), src2 = f.nodeAt(2, 0, 0);
  NetworkClient::SendArgs args;
  args.dst = dst.addr();
  args.counterId = 0;
  f.machine.client({src1, kSlice0}).post(args);  // 1 of 2 expected
  f.machine.client({src2, kSlice0}).post(args);  // 2 of 2 expected
  f.machine.client({src2, kSlice0}).post(args);
  f.sim.run();  // all three arrive BEFORE any expectation is declared

  core::WatchdogReport report;
  auto waiter = [&]() -> Task {
    core::CountedWriteWatchdog wd(dst, 0, sim::us(1));
    wd.expectFrom(src1, 2);
    wd.expectFrom(src2, 2);
    report = co_await wd.wait(4);  // 3 arrived; src1 still owes one
  };
  f.sim.spawn(waiter());
  f.sim.run();

  EXPECT_TRUE(report.timedOut);
  EXPECT_EQ(report.arrived, 3u);
  ASSERT_EQ(report.missing.size(), 1u) << "pre-tracking arrivals were lost";
  EXPECT_EQ(report.missing[0].node, src1);
  EXPECT_EQ(report.missing[0].arrived, 1u);
  EXPECT_EQ(report.missing[0].expected, 2u);
}

// --- drop registry ---------------------------------------------------------

TEST(DropRegistry, TakeConsumesPerReceiver) {
  Fixture f;
  core::DropRegistry reg(f.machine);
  DropTraversals fm({0});
  f.machine.setFaultModel(&fm);

  ClientAddr dst{f.nodeAt(1, 0, 0), kSlice0};
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 3;
  args.inOrder = true;
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  EXPECT_EQ(reg.dropsObserved(), 1u);
  EXPECT_EQ(reg.pending(), 1u);
  EXPECT_TRUE(reg.take(/*counterId=*/0, 0, dst).empty()) << "wrong counter";
  EXPECT_TRUE(reg.take(3, /*srcNode=*/5, dst).empty()) << "wrong source";
  auto got = reg.take(3, 0, dst);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->counterId, 3);
  EXPECT_TRUE(reg.take(3, 0, dst).empty()) << "take must consume";
  EXPECT_EQ(reg.pending(), 0u);
  reg.prune(f.sim.now() + 1);
  EXPECT_EQ(reg.dropsObserved(), 1u);  // prune never forgets the tally
}

// --- end-to-end recovery ---------------------------------------------------

TEST(Recovery, DroppedCountedWriteIsResentAndCompletes) {
  // Unicast e2e: 3 counted writes, the first one dropped at cap exhaustion.
  // The recoverable wait times out, diagnoses the short source, replays the
  // lost payload from the registry, and completes — with the data intact.
  Fixture f;
  core::DropRegistry reg(f.machine);
  DropTraversals fm({0});
  f.machine.setFaultModel(&fm);

  const int srcNode = f.nodeAt(1, 0, 0);
  ClientAddr dst{0, kSlice0};
  NetworkClient& dstClient = f.machine.client(dst);
  core::RecoveryConfig rc;
  rc.timeout = sim::us(2);
  rc.maxResends = 3;
  rc.resendBackoff = sim::us(1);
  core::RecoverableCountedWrite rcw(dstClient, 0, rc);
  rcw.expectFrom(srcNode, 3);
  bool done = false;
  auto waiter = [&]() -> Task {
    co_await rcw.await(3, [&](const core::WatchdogReport& r) {
      return core::resendFromRegistry(f.machine, reg, r);
    });
    done = true;
  };
  f.sim.spawn(waiter());
  for (std::uint64_t i = 0; i < 3; ++i) {
    std::uint64_t value = 0xabc0 + i;
    NetworkClient::SendArgs args;
    args.dst = dst;
    args.counterId = 0;
    args.address = std::uint32_t(i) * 8;
    args.inOrder = true;
    args.payload = net::makePayload(&value, sizeof value);
    f.machine.client({srcNode, kSlice0}).post(args);
  }
  f.sim.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(dstClient.counterValue(0), 3u);
  EXPECT_EQ(f.machine.stats().linkFailures, 1u);
  EXPECT_EQ(rcw.stats().timeouts, 1u);
  EXPECT_EQ(rcw.stats().resends, 1u);
  EXPECT_EQ(rcw.stats().hardFailures, 0u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(dstClient.read<std::uint64_t>(std::uint32_t(i) * 8), 0xabc0 + i)
        << "slot " << i;
}

TEST(Recovery, MulticastResendTargetsOnlyDeniedReceivers) {
  // A multicast replica dropped mid-tree: the subtree beyond the failed
  // link is denied, everyone before it got their copy. Recovery must
  // re-send to exactly the denied receiver — re-bumping the others would
  // corrupt their counter arithmetic.
  Fixture f;
  core::DropRegistry reg(f.machine);
  const int n0 = f.nodeAt(0, 0, 0), n1 = f.nodeAt(1, 0, 0),
            n2 = f.nodeAt(2, 0, 0);
  // Hand-built chain pattern 0 -> 1 -> 2 along X+ delivering to slice0.
  const int pat = 7;
  f.machine.setMulticastPattern(n0, pat, {.clientMask = 0, .linkMask = 1u << 0});
  f.machine.setMulticastPattern(
      n1, pat, {.clientMask = 1u << kSlice0, .linkMask = 1u << 0});
  f.machine.setMulticastPattern(n2, pat,
                                {.clientMask = 1u << kSlice0, .linkMask = 0});
  // Traversal 0 is the 0->1 hop, traversal 1 the 1->2 hop: drop the latter.
  DropTraversals fm({1});
  f.machine.setFaultModel(&fm);

  NetworkClient& r1 = f.machine.client({n1, kSlice0});
  NetworkClient& r2 = f.machine.client({n2, kSlice0});
  core::RecoveryConfig rc;
  rc.timeout = sim::us(2);
  rc.maxResends = 2;
  rc.resendBackoff = sim::us(1);
  core::RecoverableCountedWrite rcw(r2, 0, rc);
  rcw.expectFrom(n0, 1);
  bool done = false;
  auto waiter = [&]() -> Task {
    co_await rcw.await(1, [&](const core::WatchdogReport& r) {
      return core::resendFromRegistry(f.machine, reg, r);
    });
    done = true;
  };
  f.sim.spawn(waiter());
  std::uint64_t value = 0xfeed;
  NetworkClient::SendArgs args;
  args.multicastPattern = pat;
  args.counterId = 0;
  args.inOrder = true;
  args.payload = net::makePayload(&value, sizeof value);
  f.machine.client({n0, kSlice0}).post(args);
  f.sim.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(r1.counterValue(0), 1u) << "already-served receiver re-bumped";
  EXPECT_EQ(r2.counterValue(0), 1u);
  EXPECT_EQ(r2.read<std::uint64_t>(0), 0xfeedu);
  EXPECT_EQ(rcw.stats().resends, 1u);
  EXPECT_EQ(f.machine.stats().linkFailures, 1u);
}

TEST(Recovery, TrickleProgressRoundsDoNotChargeTheResendBudget) {
  // Cascading recoveries: a waiter whose packets trickle in (because the
  // upstream sender is itself mid-recovery) keeps timing out, but every
  // round observes the counter advancing. Such progress rounds must be
  // forgiven — with maxResends = 0 the old fixed-budget loop would have
  // hard-failed on the very first timeout, even though nothing was lost.
  Fixture f;
  const int srcNode = f.nodeAt(1, 0, 0);
  ClientAddr dst{0, kSlice0};
  NetworkClient& dstClient = f.machine.client(dst);
  core::RecoveryConfig rc;
  rc.timeout = sim::us(2);
  rc.maxResends = 0;  // zero budget: only progress keeps the wait alive
  core::RecoverableCountedWrite rcw(dstClient, 0, rc);
  rcw.expectFrom(srcNode, 4);
  bool done = false;
  int diagnoses = 0;
  auto waiter = [&]() -> Task {
    co_await rcw.await(4, [&](const core::WatchdogReport&) -> std::size_t {
      ++diagnoses;
      return 0;  // nothing in the registry: no packet was actually lost
    });
    done = true;
  };
  f.sim.spawn(waiter());
  // One packet per 2us round, offset so each lands mid-window: arrivals at
  // ~1us, ~3us, ~5us, ~7us against deadlines at 2us, 4us, 6us (then the
  // fourth arrival completes the wait before an eighth-microsecond round).
  for (std::uint64_t i = 0; i < 4; ++i) {
    f.sim.after(sim::us(1) + sim::us(2) * i, [&f, srcNode, dst, i] {
      std::uint64_t value = 0xcafe00 + i;
      NetworkClient::SendArgs args;
      args.dst = dst;
      args.counterId = 0;
      args.address = std::uint32_t(i) * 8;
      args.inOrder = true;
      args.payload = net::makePayload(&value, sizeof value);
      f.machine.client({srcNode, kSlice0}).post(args);
    });
  }
  f.sim.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(dstClient.counterValue(0), 4u);
  EXPECT_EQ(rcw.stats().timeouts, 3u);        // deadlines at 2, 4, 6 us
  EXPECT_EQ(rcw.stats().progressRounds, 3u);  // every one forgiven
  EXPECT_EQ(diagnoses, 3);                    // each round still diagnosed
  EXPECT_EQ(rcw.stats().resends, 0u);
  EXPECT_EQ(rcw.stats().hardFailures, 0u);
}

TEST(Recovery, StalledTrickleStillExhaustsTheBudget) {
  // The forgiveness must not defeat the bound: once the trickle stops, the
  // counter stops advancing and the stalled rounds burn the budget as
  // before — a genuinely lost packet still hard-fails.
  Fixture f;
  DropTraversals fm({1});  // second packet is eaten
  f.machine.setFaultModel(&fm);
  const int srcNode = f.nodeAt(1, 0, 0);
  NetworkClient& dstClient = f.machine.client({0, kSlice0});
  core::RecoveryConfig rc;
  rc.timeout = sim::us(2);
  rc.maxResends = 1;
  core::RecoverableCountedWrite rcw(dstClient, 0, rc);
  rcw.expectFrom(srcNode, 2);
  auto waiter = [&]() -> Task {
    co_await rcw.await(2, [](const core::WatchdogReport&) -> std::size_t {
      return 0;  // registry intentionally empty: nothing to replay
    });
  };
  f.sim.spawn(waiter());
  NetworkClient::SendArgs args;
  args.dst = {0, kSlice0};
  args.counterId = 0;
  args.inOrder = true;
  f.machine.client({srcNode, kSlice0}).post(args);  // arrives: progress
  f.sim.after(sim::us(1), [&f, srcNode] {
    NetworkClient::SendArgs a;
    a.dst = {0, kSlice0};
    a.counterId = 0;
    a.inOrder = true;
    f.machine.client({srcNode, kSlice0}).post(a);  // dropped: stall
  });

  EXPECT_THROW(f.sim.run(), core::RecoveryFailure);
  EXPECT_EQ(rcw.stats().hardFailures, 1u);
  EXPECT_EQ(rcw.stats().progressRounds, 1u);  // round 1 saw the first packet
  EXPECT_EQ(rcw.stats().timeouts, 3u);  // progress round + initial + 1 resend
}

TEST(Recovery, ExhaustedResendBudgetHardFailsWithReport) {
  // When every copy (original and all replays) is lost, the wait must not
  // retry forever: after maxResends rounds it throws a RecoveryFailure
  // carrying the final diagnosis, which the simulator surfaces from run().
  Fixture f;
  core::DropRegistry reg(f.machine);
  DropEverything fm;
  f.machine.setFaultModel(&fm);

  const int srcNode = f.nodeAt(1, 0, 0);
  NetworkClient& dst = f.machine.client({0, kSlice0});
  core::RecoveryConfig rc;
  rc.timeout = sim::us(1);
  rc.maxResends = 2;
  rc.resendBackoff = sim::us(1);
  core::RecoverableCountedWrite rcw(dst, 0, rc);
  rcw.expectFrom(srcNode, 1);
  auto waiter = [&]() -> Task {
    co_await rcw.await(1, [&](const core::WatchdogReport& r) {
      return core::resendFromRegistry(f.machine, reg, r);
    });
  };
  f.sim.spawn(waiter());
  NetworkClient::SendArgs args;
  args.dst = dst.addr();
  args.counterId = 0;
  args.inOrder = true;
  f.machine.client({srcNode, kSlice0}).post(args);

  try {
    f.sim.run();
    FAIL() << "expected RecoveryFailure";
  } catch (const core::RecoveryFailure& e) {
    EXPECT_TRUE(e.report.timedOut);
    EXPECT_EQ(e.report.expected, 1u);
    EXPECT_EQ(e.report.arrived, 0u);
    ASSERT_EQ(e.report.missing.size(), 1u);
    EXPECT_EQ(e.report.missing[0].node, srcNode);
    EXPECT_NE(std::string(e.what()).find("TIMED OUT"), std::string::npos);
  }
  EXPECT_EQ(rcw.stats().hardFailures, 1u);
  EXPECT_EQ(rcw.stats().timeouts, 3u);  // initial attempt + 2 resend rounds
  EXPECT_GE(f.machine.stats().linkFailures, 3u);  // original + both resends
}

// --- satellite: replays must route around a link already marked failed -----

TEST(Recovery, ReplayRoutesAroundALinkMarkedFailed) {
  // The +x link out of node 0 is permanently dead. The original unicast
  // 0 -> (1,1,0) prefers x-then-y, dies on that link, and marks it failed.
  // The replay rides with degradedRoute set, so routing must detour (y
  // first, then x out of a healthy node) instead of feeding the replay to
  // the same dead link — which would burn the whole resend budget and
  // hard-fail a recoverable situation.
  Fixture f;
  core::DropRegistry reg(f.machine);
  DeadLink fm(0, 0, +1);
  f.machine.setFaultModel(&fm);

  ClientAddr dst{f.nodeAt(1, 1, 0), kSlice0};
  NetworkClient& dstClient = f.machine.client(dst);
  core::RecoveryConfig rc;
  rc.timeout = sim::us(2);
  rc.maxResends = 2;
  rc.resendBackoff = sim::us(1);
  core::RecoverableCountedWrite rcw(dstClient, 0, rc);
  rcw.expectFrom(0, 1);
  bool done = false;
  auto waiter = [&]() -> Task {
    co_await rcw.await(1, [&](const core::WatchdogReport& r) {
      return core::resendFromRegistry(f.machine, reg, r);
    });
    done = true;
  };
  f.sim.spawn(waiter());
  std::uint64_t value = 0xbeef;
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = true;
  args.payload = net::makePayload(&value, sizeof value);
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(dstClient.counterValue(0), 1u);
  EXPECT_EQ(dstClient.read<std::uint64_t>(0), 0xbeefu);
  EXPECT_EQ(rcw.stats().resends, 1u) << "one replay must suffice";
  EXPECT_EQ(rcw.stats().hardFailures, 0u);
  EXPECT_EQ(f.machine.stats().linkFailures, 1u)
      << "the replay must never touch the marked link";
  EXPECT_GE(f.machine.stats().faultReroutes, 1u)
      << "the replay was not rerouted";
}

TEST(Recovery, ReinjectedPacketDeliversLikeAFreshSend) {
  // Machine::inject() mutates the shared Packet object (injectedAt,
  // routeSalt, tailLag). A recovery layer that holds the PacketPtr and
  // re-injects it directly must not inherit the first transit's tail lag —
  // observable exactly when the replay's own path would not set one: a
  // same-node delivery pays no wire serialization, so a stale lag from a
  // prior hop silently postpones the commit.
  Fixture f({2, 1, 1});
  std::vector<std::byte> data(64, std::byte{0x5a});

  // First transit: one hop with a 64 B payload, which leaves a nonzero
  // tailLag on the packet object.
  NetworkClient::SendArgs args;
  args.dst = {f.nodeAt(1, 0, 0), kSlice0};
  args.counterId = 0;
  args.payload = net::makePayload(data.data(), data.size());
  net::PacketPtr held = f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  ASSERT_EQ(f.machine.client(args.dst).counterValue(0), 1u);

  // Inject and run to the delivery commit (the last event), returning how
  // long the injection-to-commit pipeline took.
  auto localDelivery = [&](const net::PacketPtr& p) {
    sim::Time t0 = f.sim.now();
    f.machine.inject(p);
    f.sim.run();
    return f.sim.now() - t0;
  };

  // Replay the held packet to a destination on the source node itself.
  held->dst = {0, net::kSlice1};
  held->counterId = 1;
  sim::Time replayed = localDelivery(held);

  // Reference: a fresh packet making the identical local delivery.
  net::PacketPtr fresh = net::allocatePacket();
  fresh->src = held->src;
  fresh->dst = held->dst;
  fresh->counterId = held->counterId;
  fresh->address = held->address;
  fresh->payload = held->payload;
  sim::Time freshTime = localDelivery(fresh);

  EXPECT_EQ(replayed, freshTime)
      << "stale tailLag from the first transit leaked into the replay";
  EXPECT_EQ(f.machine.client({0, net::kSlice1}).counterValue(1), 2u);
}

// --- per-phase drops: FFT, all-reduce stages, all-reduce fan-out, flush ----

TEST(Recovery, FftGatherDropIsResentAndStaysBitIdentical) {
  // First x-link traversal of the forward FFT = a gather packet of the
  // dim-0 pass. Armed, the owner's gather wait times out, replays the lost
  // line segment, and the transform still matches the host FFT bitwise.
  Fixture f({2, 2, 2});
  core::DropRegistry reg(f.machine);
  core::RecoveryStats stats;
  fft::DistributedFft3D dist(f.machine, 8, 8, 8, {});
  dist.setRecovery(testHooks(reg, stats));
  DropOnDim fm(0, {0});
  f.machine.setFaultModel(&fm);

  fft::Grid3D ref(8, 8, 8);
  sim::Rng rng(17);
  for (auto& x : ref.data()) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  dist.loadGrid(ref.data());
  auto task = [](fft::DistributedFft3D& d, int n) -> Task {
    co_await d.run(n, false);
  };
  for (int n = 0; n < f.machine.numNodes(); ++n) f.sim.spawn(task(dist, n));
  f.sim.run();
  fft::fft3d(ref, false);

  auto got = dist.extractGrid();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], ref.data()[i]) << "point " << i;
  EXPECT_EQ(f.machine.stats().linkFailures, 1u);
  EXPECT_EQ(reg.dropsObserved(), 1u);
  EXPECT_GE(stats.resends, 1u);
  EXPECT_EQ(stats.hardFailures, 0u);
}

void runAllReduceWithDrop(int dropDim, const char* what) {
  // On a {4,1,4} torus the dim-ordered all-reduce has exactly two phases:
  // the x line broadcasts (a reduction stage) ride only dim-0 links, the z
  // line broadcasts (the final stage, whose arrival fans the result out to
  // every node) only dim-2 links — dropDim selects which one loses a
  // replica.
  Fixture f({4, 1, 4});
  core::DropRegistry reg(f.machine);
  core::RecoveryStats stats;
  core::DimOrderedAllReduce reduce(f.machine);
  reduce.setRecovery(testHooks(reg, stats));
  DropOnDim fm(dropDim, {0});
  f.machine.setFaultModel(&fm);

  const int n = f.machine.numNodes();
  std::vector<std::vector<double>> out;
  out.resize(std::size_t(n));
  auto task = [](core::DimOrderedAllReduce& r, int node,
                 std::vector<double> in, std::vector<double>* o) -> Task {
    co_await r.run(node, std::move(in), o);
  };
  double expect = 0.0;
  for (int node = 0; node < n; ++node) {
    std::vector<double> in{double(node + 1)};  // exact in double arithmetic
    expect += in[0];
    f.sim.spawn(task(reduce, node, std::move(in), &out[std::size_t(node)]));
  }
  f.sim.run();

  for (int node = 0; node < n; ++node) {
    ASSERT_EQ(out[std::size_t(node)].size(), 1u) << what << " node " << node;
    EXPECT_EQ(out[std::size_t(node)][0], expect) << what << " node " << node;
  }
  EXPECT_EQ(f.machine.stats().linkFailures, 1u) << what;
  EXPECT_GE(stats.resends, 1u) << what;
  EXPECT_EQ(stats.hardFailures, 0u) << what;
}

TEST(Recovery, AllReduceStageDropIsResentAndCompletes) {
  runAllReduceWithDrop(0, "reduction-stage drop");
}

TEST(Recovery, AllReduceResultFanoutDropIsResentAndCompletes) {
  runAllReduceWithDrop(2, "result-fanout drop");
}

TEST(Recovery, MigrationFlushDropIsResentAndCompletes) {
  // The flush packets are the only header-only (32-byte-wire) traffic in a
  // superstep, so dropping the first such traversal hits exactly one
  // migration-flush replica. Armed, the shorted neighbor's flush wait
  // replays it; the trajectory must match a fault-free run bit for bit
  // (recovery re-delivers the identical payload-free signal).
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.thermostatTau = 0.0;
  cfg.longRangeInterval = 3;  // keep the 2-step run short-range only
  cfg.migrationInterval = 1;  // migrate (and flush) every step
  cfg.recoveryTimeoutUs = 5000.0;

  auto run = [&](bool faulted) {
    sim::Simulator sim;
    Machine machine(sim, {4, 4, 4});
    DropFirstOfWireSize fm(32);
    if (faulted) machine.setFaultModel(&fm);
    md::AntonMdApp app(machine, sys, cfg);
    app.runSteps(2);
    if (faulted) {
      EXPECT_EQ(machine.stats().linkFailures, 1u);
      EXPECT_EQ(app.dropsObserved(), 1u);
      EXPECT_GE(app.recoveryStats().resends, 1u);
      EXPECT_EQ(app.recoveryStats().hardFailures, 0u);
    }
    return app.gatherSystem();
  };
  md::MDSystem clean = run(false);
  md::MDSystem recovered = run(true);
  ASSERT_EQ(clean.positions.size(), recovered.positions.size());
  for (std::size_t i = 0; i < clean.positions.size(); ++i) {
    EXPECT_EQ(clean.positions[i].x, recovered.positions[i].x) << "atom " << i;
    EXPECT_EQ(clean.positions[i].y, recovered.positions[i].y) << "atom " << i;
    EXPECT_EQ(clean.positions[i].z, recovered.positions[i].z) << "atom " << i;
  }
}

}  // namespace
}  // namespace anton
