#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/torus_coord.hpp"
#include "util/vec3.hpp"

namespace anton::util {
namespace {

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3};
  Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), Vec3(-3, 6, -3));
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
}

TEST(TorusCoord, Wrap) {
  EXPECT_EQ(wrap(5, 8), 5);
  EXPECT_EQ(wrap(8, 8), 0);
  EXPECT_EQ(wrap(-1, 8), 7);
  EXPECT_EQ(wrap(-9, 8), 7);
  EXPECT_EQ(wrap(17, 8), 1);
}

TEST(TorusCoord, SignedDelta) {
  // Shortest signed displacement with wraparound, ties broken positive.
  EXPECT_EQ(signedTorusDelta(0, 3, 8), 3);
  EXPECT_EQ(signedTorusDelta(0, 5, 8), -3);
  EXPECT_EQ(signedTorusDelta(0, 4, 8), 4);   // tie -> positive
  EXPECT_EQ(signedTorusDelta(7, 0, 8), 1);   // wrap forward
  EXPECT_EQ(signedTorusDelta(0, 7, 8), -1);  // wrap backward
  EXPECT_EQ(signedTorusDelta(3, 3, 8), 0);
}

TEST(TorusCoord, Hops) {
  TorusShape s{8, 8, 8};
  EXPECT_EQ(torusHops({0, 0, 0}, {0, 0, 0}, s), 0);
  EXPECT_EQ(torusHops({0, 0, 0}, {1, 0, 0}, s), 1);
  EXPECT_EQ(torusHops({0, 0, 0}, {7, 0, 0}, s), 1);
  // Maximum distance in an 8x8x8 torus is 4+4+4 = 12 (SC10 Fig. 5 caption).
  EXPECT_EQ(torusHops({0, 0, 0}, {4, 4, 4}, s), 12);
}

TEST(TorusCoord, IndexRoundTrip) {
  TorusShape s{3, 4, 5};
  for (int i = 0; i < s.size(); ++i) {
    EXPECT_EQ(torusIndex(torusCoordOf(i, s), s), i);
  }
  EXPECT_EQ(torusIndex({1, 2, 3}, s), 1 + 3 * (2 + 4 * 3));
}

TEST(TorusCoord, Neighbor) {
  TorusShape s{4, 4, 4};
  EXPECT_EQ(torusNeighbor({0, 0, 0}, 0, -1, s), (TorusCoord{3, 0, 0}));
  EXPECT_EQ(torusNeighbor({3, 0, 0}, 0, +1, s), (TorusCoord{0, 0, 0}));
  EXPECT_EQ(torusNeighbor({1, 1, 1}, 2, +1, s), (TorusCoord{1, 1, 2}));
}

TEST(Stats, Summary) {
  std::vector<double> xs = {4, 1, 3, 2};
  Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, SummaryEmpty) {
  Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 37.5), 25);
}

TEST(Stats, LinearFit) {
  std::vector<double> xs = {0, 1, 2, 3};
  std::vector<double> ys = {1, 3, 5, 7};  // y = 1 + 2x
  LinearFit f = fitLine(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(Stats, LinearFitDegenerate) {
  std::vector<double> xs = {2, 2};
  std::vector<double> ys = {1, 3};
  LinearFit f = fitLine(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(Table, Renders) {
  TablePrinter t({"a", "long-header"});
  t.addRow({"x", "1"});
  t.addRow({"yyyy"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormat) {
  EXPECT_EQ(TablePrinter::num(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(5, 0), "5");
}

}  // namespace
}  // namespace anton::util
