// Sharded (conservative-PDES) kernel: bit-identity against the serial
// kernel, the lookahead contract's refusal edges, and the window protocol's
// failure modes.
//
// The headline claim (ISSUE 10 / DESIGN.md §13): a sharded run is
// bit-identical to a serial one — same MachineStats, same client memories
// and counters, same final clock, same activity-trace CSV, same causal-log
// digest — because the window barrier replays each window's execution order
// and hands out exactly the sequence numbers the serial kernel would have
// issued. Everything here pins that equivalence, plus the "refuse loudly"
// edges: analyzer-rejected shardings, non-positive budgets, and messages
// faster than their pair's channel bound.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "net/machine.hpp"
#include "sim/causal_log.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/activity.hpp"
#include "verify/lookahead.hpp"
#include "verify/shard_contract.hpp"

namespace anton {
namespace {

// FNV-1a over every client memory and counter bank of the machine.
std::uint64_t machineDigest(net::Machine& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (int n = 0; n < m.numNodes(); ++n) {
    for (int c = 0; c < net::kClientsPerNode; ++c) {
      net::NetworkClient& cl = m.client({n, c});
      for (std::byte b : cl.memory()) {
        h ^= std::uint64_t(b);
        h *= 0x100000001b3ULL;
      }
      for (int k = 0; k < cl.numCounters(); ++k) mix(cl.counterValue(k));
    }
  }
  return h;
}

struct StormResult {
  net::MachineStats stats;
  std::uint64_t digest = 0;
  sim::Time finalTime = 0;
  std::uint64_t events = 0;
  std::string traceCsv;
  std::uint64_t causalDigest = 0;
  sim::Simulator::ShardedStats sharded;
};

// The determinism_test seeded storm, optionally run under a sharding.
// `shardingName` empty = serial; otherwise "per-node" or "slab-x".
StormResult trafficStorm(std::uint64_t seed, const std::string& shardingName,
                         int workers) {
  util::TorusShape shape{4, 4, 4};
  sim::Simulator sim;
  net::Machine m(sim, shape);
  trace::ActivityTrace trace;
  m.setTrace(&trace);
  sim::CausalLog log;
  sim::ScopedCausalOracle oracle(log);
  if (!shardingName.empty()) {
    verify::Sharding sh = shardingName == "per-node"
                              ? verify::perNodeSharding(shape)
                              : verify::slabSharding(shape);
    sim.enableSharded(verify::shardLayoutFromTopology(shape, sh), workers);
  }
  sim::Rng rng(seed);
  for (int i = 0; i < 400; ++i) {
    int srcNode = int(rng.below(std::uint64_t(m.numNodes())));
    int srcClient = int(rng.below(4));
    net::NetworkClient::SendArgs args;
    args.dst = {int(rng.below(std::uint64_t(m.numNodes()))),
                int(rng.below(4))};
    args.counterId = int(rng.below(4));
    args.address = std::uint32_t(rng.below(1024)) * 16;
    std::size_t bytes = std::size_t(rng.below(32)) * 8;
    if (bytes != 0) args.payload = net::makeZeroPayload(bytes);
    m.client({srcNode, srcClient}).post(args);
  }
  StormResult r;
  r.events = sim.run();
  r.sharded = sim.shardedStats();
  if (!shardingName.empty()) sim.disableSharded();
  r.stats = m.stats();
  r.digest = machineDigest(m);
  r.finalTime = sim.now();
  r.traceCsv = trace.csv();
  r.causalDigest = log.digest();
  return r;
}

void expectIdentical(const StormResult& serial, const StormResult& sharded) {
  EXPECT_EQ(serial.stats, sharded.stats);
  EXPECT_EQ(serial.digest, sharded.digest);
  EXPECT_EQ(serial.finalTime, sharded.finalTime);
  EXPECT_EQ(serial.events, sharded.events);
  EXPECT_EQ(serial.traceCsv, sharded.traceCsv);
  EXPECT_EQ(serial.causalDigest, sharded.causalDigest);
}

TEST(ShardedKernel, PerNodeStormIsBitIdenticalToSerial) {
  StormResult serial = trafficStorm(7, "", 0);
  StormResult sharded = trafficStorm(7, "per-node", 0);
  expectIdentical(serial, sharded);
  EXPECT_GT(sharded.sharded.windows, 0u);
  EXPECT_GT(sharded.sharded.shardEvents, 0u);
  EXPECT_GT(sharded.sharded.mailsDelivered, 0u);
}

TEST(ShardedKernel, SlabStormIsBitIdenticalToSerial) {
  StormResult serial = trafficStorm(11, "", 0);
  StormResult sharded = trafficStorm(11, "slab-x", 0);
  expectIdentical(serial, sharded);
}

TEST(ShardedKernel, WorkerThreadsMatchTheSingleThreadedWindows) {
  StormResult zero = trafficStorm(7, "per-node", 0);
  StormResult two = trafficStorm(7, "per-node", 2);
  StormResult four = trafficStorm(7, "per-node", 4);
  expectIdentical(zero, two);
  expectIdentical(zero, four);
  EXPECT_EQ(zero.sharded.windows, four.sharded.windows);
  EXPECT_EQ(zero.sharded.mailsDelivered, four.sharded.mailsDelivered);
}

TEST(ShardedKernel, SplitNodeShardingIsRefusedNamingTheViolation) {
  util::TorusShape shape{2, 2, 2};
  verify::Sharding split = verify::splitNodeSharding(shape);
  try {
    verify::shardLayoutFromTopology(shape, split);
    FAIL() << "split-node sharding must be refused";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead.zero"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedKernel, AnalyzerRejectionIsRefusedAtLayoutConstruction) {
  // A counted write into an accumulation memory: under the split-node
  // sharding the receiving node's program order becomes a zero-latency
  // cross-shard edge, which the analyzer rejects. The layout builder must
  // surface the analyzer's own check id, not a generic error.
  util::TorusShape shape{2, 1, 1};
  verify::CommPlan plan;
  plan.name = "refusal-probe";
  plan.shape = shape;
  plan.addPhaseEdge("send", "recv");
  verify::PlannedWrite w;
  w.phase = "send";
  w.srcNode = 0;
  w.dst = {1, net::kAccum0};
  w.counterId = 0;
  plan.writes.push_back(w);
  verify::CounterExpectation e;
  e.site = "recv";
  e.phase = "recv";
  e.client = {1, net::kAccum0};
  e.counterId = 0;
  e.perRound = 1;
  e.recoveryArmed = true;
  plan.expectations.push_back(e);
  verify::Sharding split = verify::splitNodeSharding(shape);
  verify::LookaheadReport report = verify::analyzeLookahead(plan, split);
  EXPECT_FALSE(report.ok());
  try {
    verify::shardLayoutFromReport(report, shape, split);
    FAIL() << "rejected report must not produce a layout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead."), std::string::npos)
        << e.what();
  }
}

TEST(ShardedKernel, KernelRefusesNonPositiveLookaheadBudget) {
  sim::Simulator sim;
  sim::ShardLayout layout;
  layout.name = "hand-rolled";
  layout.numShards = 2;
  layout.shardOfNode = {0, 1};
  layout.safeLookaheadNs = 53.0;
  layout.pairBoundPs[{0, 1}] = 0;  // a zero channel bound poisons the budget
  EXPECT_THROW(sim.enableSharded(layout), std::invalid_argument);
  EXPECT_FALSE(sim.shardedEnabled());
}

TEST(ShardedKernel, StepIsRefusedUnderShardedMode) {
  util::TorusShape shape{2, 2, 2};
  sim::Simulator sim;
  sim.enableSharded(
      verify::shardLayoutFromTopology(shape, verify::perNodeSharding(shape)));
  EXPECT_THROW(sim.step(), std::logic_error);
  sim.disableSharded();
  EXPECT_FALSE(sim.step());  // serial again, idle
}

TEST(ShardedKernel, DisableWithPendingShardEventsThrows) {
  util::TorusShape shape{2, 2, 2};
  sim::Simulator sim;
  net::Machine m(sim, shape);
  sim.enableSharded(
      verify::shardLayoutFromTopology(shape, verify::perNodeSharding(shape)));
  net::NetworkClient::SendArgs args;
  args.dst = {5, 0};
  args.counterId = 0;
  m.client({0, 0}).post(args);
  EXPECT_THROW(sim.disableSharded(), std::logic_error);
  sim.run();
  sim.disableSharded();  // drained: now fine
  EXPECT_FALSE(sim.shardedEnabled());
}

TEST(ShardedKernel, ResetTearsShardedModeDown) {
  util::TorusShape shape{2, 2, 2};
  sim::Simulator sim;
  net::Machine m(sim, shape);
  sim.enableSharded(
      verify::shardLayoutFromTopology(shape, verify::perNodeSharding(shape)),
      2);
  net::NetworkClient::SendArgs args;
  args.dst = {5, 0};
  args.counterId = 0;
  m.client({0, 0}).post(args);
  EXPECT_GT(sim.reset(), 0u);  // pending events discarded...
  EXPECT_FALSE(sim.shardedEnabled());  // ...and sharding did not survive
  EXPECT_EQ(sim.now(), 0);
  // The kernel is serially usable again.
  bool ran = false;
  sim.at(sim::ns(1), [&ran] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(ShardedKernel, MachineRefusesShardingWithAFaultModelInstalled) {
  util::TorusShape shape{2, 2, 2};
  sim::Simulator sim;
  net::Machine m(sim, shape);
  struct NullFaults : net::FaultModel {
    net::LinkFaultOutcome onLinkTraversal(int, int, int, std::size_t,
                                          sim::Time) override {
      return {};
    }
    bool linkDown(int, int, int, sim::Time) const override { return false; }
    sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
  } faults;
  m.setFaultModel(&faults);
  EXPECT_THROW(
      sim.enableSharded(verify::shardLayoutFromTopology(
          shape, verify::perNodeSharding(shape))),
      std::logic_error);
  // The refusal rolled sharded mode back entirely.
  EXPECT_FALSE(sim.shardedEnabled());
  m.setFaultModel(nullptr);
  sim.enableSharded(
      verify::shardLayoutFromTopology(shape, verify::perNodeSharding(shape)));
  EXPECT_THROW(m.setFaultModel(&faults), std::logic_error);
  sim.disableSharded();
}

// --- the committed contract file -------------------------------------------

TEST(LookaheadContract, CommittedContractRowsDriveLayouts) {
  auto rows = verify::loadLookaheadContract(
      std::string(GOLDEN_PLANS_DIR) + "/VERIFY_lookahead.json");
  ASSERT_FALSE(rows.empty());
  // Every committed row is ok (the analyzer refused nothing it shipped).
  for (const auto& r : rows) EXPECT_TRUE(r.ok) << r.plan << "/" << r.sharding;

  util::TorusShape shape{8, 8, 8};  // fig5-ping's shape
  sim::ShardLayout layout = verify::shardLayoutFromContract(
      rows, "fig5-ping", shape, verify::perNodeSharding(shape));
  EXPECT_EQ(layout.numShards, 512);
  EXPECT_DOUBLE_EQ(layout.safeLookaheadNs, 53.0);
  EXPECT_GT(layout.effectiveLookaheadPs(), 0);
  EXPECT_EQ(layout.conflictDegree, 5);
}

TEST(LookaheadContract, UnknownPlanOrShardingIsRefused) {
  auto rows = verify::loadLookaheadContract(
      std::string(GOLDEN_PLANS_DIR) + "/VERIFY_lookahead.json");
  util::TorusShape shape{8, 8, 8};
  EXPECT_THROW(verify::shardLayoutFromContract(rows, "no-such-plan", shape,
                                               verify::perNodeSharding(shape)),
               std::runtime_error);
}

TEST(LookaheadContract, NotOkRowIsRefusedNamingTheContract) {
  // The committed file holds no rejected rows, so pin the refusal edge with
  // a hermetic contract: one row, ok=false.
  std::string path = ::testing::TempDir() + "/rejected_contract.jsonl";
  {
    std::ofstream out(path);
    out << R"({"kind":"lookahead","plan":"p","sharding":"s","shards":2,)"
        << R"("safeLookaheadNs":0,"conflictDegree":1,"crossShardEdges":3,)"
        << R"("events":10,"pairs":1,"violations":2,"ok":false})" << "\n";
  }
  auto rows = verify::loadLookaheadContract(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ok);
  util::TorusShape shape{2, 1, 1};
  verify::Sharding sh = verify::perNodeSharding(shape);
  sh.name = "s";
  try {
    verify::shardLayoutFromContract(rows, "p", shape, sh);
    FAIL() << "ok=false contract row must refuse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("violation"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(LookaheadContract, StaleShardCountIsRefused) {
  std::string path = ::testing::TempDir() + "/stale_contract.jsonl";
  {
    std::ofstream out(path);
    out << R"({"kind":"lookahead","plan":"p","sharding":"per-node","shards":99,)"
        << R"("safeLookaheadNs":53,"conflictDegree":1,"crossShardEdges":3,)"
        << R"("events":10,"pairs":1,"violations":0,"ok":true})" << "\n";
  }
  auto rows = verify::loadLookaheadContract(path);
  util::TorusShape shape{2, 1, 1};  // live sharding: 2 shards, contract: 99
  try {
    verify::shardLayoutFromContract(rows, "p", shape,
                                    verify::perNodeSharding(shape));
    FAIL() << "stale contract must refuse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(LookaheadContract, MalformedContractFileThrows) {
  std::string path = ::testing::TempDir() + "/malformed_contract.jsonl";
  {
    std::ofstream out(path);
    out << "{\"kind\":\"lookahead\", nope}\n";
  }
  EXPECT_THROW(verify::loadLookaheadContract(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(verify::loadLookaheadContract("/no/such/file.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace anton
