// Force-field validation: every kernel against numerical gradients, Newton's
// third law, cell-list vs. brute-force equivalence, and mesh Ewald against
// the direct k-space reference.
#include <gtest/gtest.h>

#include <cmath>

#include "md/ewald.hpp"
#include "md/forces.hpp"
#include "sim/rng.hpp"

namespace anton::md {
namespace {

MDSystem smallSystem(int atoms, double side, std::uint64_t seed) {
  MDSystem sys;
  sys.box = {side, side, side};
  sim::Rng rng(seed);
  for (int i = 0; i < atoms; ++i) {
    sys.positions.push_back(
        {rng.uniform(0, side), rng.uniform(0, side), rng.uniform(0, side)});
    sys.velocities.push_back({0, 0, 0});
    sys.charges.push_back(i % 2 == 0 ? 0.5 : -0.5);
    sys.masses.push_back(1.0);
  }
  return sys;
}

// Numerical gradient of an energy functional wrt every coordinate, compared
// against the kernel's analytic forces (F = -dU/dx).
template <typename EnergyFn>
void checkForcesAgainstGradient(MDSystem& sys, EnergyFn energy,
                                const std::vector<Vec3>& forces, double h,
                                double tol) {
  for (int i = 0; i < sys.numAtoms(); ++i) {
    for (int d = 0; d < 3; ++d) {
      auto coord = [&](Vec3& v) -> double& {
        return d == 0 ? v.x : d == 1 ? v.y : v.z;
      };
      double orig = coord(sys.positions[std::size_t(i)]);
      coord(sys.positions[std::size_t(i)]) = orig + h;
      double ep = energy();
      coord(sys.positions[std::size_t(i)]) = orig - h;
      double em = energy();
      coord(sys.positions[std::size_t(i)]) = orig;
      double numeric = -(ep - em) / (2 * h);
      double analytic = d == 0   ? forces[std::size_t(i)].x
                        : d == 1 ? forces[std::size_t(i)].y
                                 : forces[std::size_t(i)].z;
      EXPECT_NEAR(analytic, numeric, tol) << "atom " << i << " dim " << d;
    }
  }
}

TEST(Bonded, BondForceMatchesGradient) {
  MDSystem sys = smallSystem(2, 10.0, 1);
  sys.positions[0] = {1.0, 1.0, 1.0};
  sys.positions[1] = {2.3, 1.4, 0.8};
  Bond b{0, 1, 1.2, 7.0};
  std::vector<Vec3> f(2);
  bondForce(sys, b, f);
  checkForcesAgainstGradient(
      sys,
      [&] {
        std::vector<Vec3> tmp(2);
        return bondForce(sys, b, tmp);
      },
      f, 1e-6, 1e-5);
  EXPECT_NEAR((f[0] + f[1]).norm(), 0.0, 1e-12);  // Newton's third law
}

TEST(Bonded, BondAcrossPeriodicBoundary) {
  MDSystem sys = smallSystem(2, 10.0, 1);
  sys.positions[0] = {0.2, 5.0, 5.0};
  sys.positions[1] = {9.7, 5.0, 5.0};  // 0.5 apart through the boundary
  Bond b{0, 1, 0.5, 10.0};
  std::vector<Vec3> f(2);
  double e = bondForce(sys, b, f);
  EXPECT_NEAR(e, 0.0, 1e-12);
  EXPECT_NEAR(f[0].norm(), 0.0, 1e-9);
}

TEST(Bonded, AngleForceMatchesGradient) {
  MDSystem sys = smallSystem(3, 10.0, 2);
  sys.positions[0] = {1.0, 1.0, 1.0};
  sys.positions[1] = {2.0, 1.2, 0.9};
  sys.positions[2] = {2.7, 2.1, 1.5};
  Angle a{0, 1, 2, 1.8, 4.0};
  std::vector<Vec3> f(3);
  angleForce(sys, a, f);
  checkForcesAgainstGradient(
      sys,
      [&] {
        std::vector<Vec3> tmp(3);
        return angleForce(sys, a, tmp);
      },
      f, 1e-6, 1e-5);
  EXPECT_NEAR((f[0] + f[1] + f[2]).norm(), 0.0, 1e-10);
}

TEST(Bonded, DihedralForceMatchesGradient) {
  MDSystem sys = smallSystem(4, 10.0, 3);
  sys.positions[0] = {1.0, 1.0, 1.0};
  sys.positions[1] = {2.0, 1.1, 1.0};
  sys.positions[2] = {2.5, 2.0, 1.4};
  sys.positions[3] = {3.4, 2.2, 2.2};
  Dihedral d{0, 1, 2, 3, 0.8, 3, 0.4};
  std::vector<Vec3> f(4);
  dihedralForce(sys, d, f);
  checkForcesAgainstGradient(
      sys,
      [&] {
        std::vector<Vec3> tmp(4);
        return dihedralForce(sys, d, tmp);
      },
      f, 1e-6, 1e-5);
  EXPECT_NEAR((f[0] + f[1] + f[2] + f[3]).norm(), 0.0, 1e-10);
}

class DihedralMultiplicity : public ::testing::TestWithParam<int> {};

TEST_P(DihedralMultiplicity, GradientHoldsForAllN) {
  MDSystem sys = smallSystem(4, 10.0, 4);
  sys.positions[0] = {0.5, 0.7, 0.2};
  sys.positions[1] = {1.5, 0.8, 0.4};
  sys.positions[2] = {2.0, 1.8, 0.7};
  sys.positions[3] = {3.0, 2.0, 1.6};
  Dihedral d{0, 1, 2, 3, 0.6, GetParam(), 0.9};
  std::vector<Vec3> f(4);
  dihedralForce(sys, d, f);
  checkForcesAgainstGradient(
      sys,
      [&] {
        std::vector<Vec3> tmp(4);
        return dihedralForce(sys, d, tmp);
      },
      f, 1e-6, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(N1to4, DihedralMultiplicity, ::testing::Values(1, 2, 3, 4));

TEST(RangeLimited, PairForceMatchesGradient) {
  ForceParams p;
  Vec3 d{0.9, 0.5, -0.3};
  double qi = 0.4, qj = -0.7;
  PairForce pf = rangeLimitedPair(d, qi, qj, p);
  double h = 1e-6;
  for (int dim = 0; dim < 3; ++dim) {
    Vec3 dp = d, dm = d;
    (dim == 0 ? dp.x : dim == 1 ? dp.y : dp.z) += h;
    (dim == 0 ? dm.x : dim == 1 ? dm.y : dm.z) -= h;
    // d = rj - ri: the gradient wrt ri is the negative of the gradient wrt d.
    double numeric = (rangeLimitedPair(dp, qi, qj, p).energy -
                      rangeLimitedPair(dm, qi, qj, p).energy) /
                     (2 * h);
    double analytic = dim == 0 ? pf.onI.x : dim == 1 ? pf.onI.y : pf.onI.z;
    EXPECT_NEAR(analytic, numeric, 1e-5) << "dim " << dim;
  }
}

TEST(RangeLimited, ZeroBeyondCutoff) {
  ForceParams p;
  PairForce pf = rangeLimitedPair({2.6, 0, 0}, 1.0, 1.0, p);
  EXPECT_EQ(pf.energy, 0.0);
  EXPECT_EQ(pf.onI.norm(), 0.0);
}

TEST(RangeLimited, ShiftedLJVanishesAtCutoff) {
  ForceParams p;
  PairForce pf = rangeLimitedPair({p.cutoff - 1e-9, 0, 0}, 0.0, 0.0, p);
  EXPECT_NEAR(pf.energy, 0.0, 1e-7);
}

TEST(CellList, MatchesBruteForcePairs) {
  // Box wide enough for cells (>= 3 per dim) vs. explicit O(N^2).
  MDSystem sys = smallSystem(200, 9.0, 7);
  ForceParams p;
  std::vector<Vec3> fCell(200), fBrute(200);
  double eCell = rangeLimitedForces(sys, p, fCell);

  double eBrute = 0.0;
  for (int i = 0; i < 200; ++i)
    for (int j = i + 1; j < 200; ++j) {
      Vec3 d = sys.minImage(sys.positions[std::size_t(i)],
                            sys.positions[std::size_t(j)]);
      PairForce pf = rangeLimitedPair(d, sys.charges[std::size_t(i)],
                                      sys.charges[std::size_t(j)], p);
      fBrute[std::size_t(i)] += pf.onI;
      fBrute[std::size_t(j)] -= pf.onI;
      eBrute += pf.energy;
    }
  // Random placement creates overlapping pairs with enormous LJ forces, so
  // compare with a relative tolerance (summation order differs).
  EXPECT_NEAR(eCell, eBrute, 1e-12 * std::abs(eBrute) + 1e-9);
  for (int i = 0; i < 200; ++i) {
    double scale = std::max(1.0, fBrute[std::size_t(i)].norm());
    EXPECT_NEAR((fCell[std::size_t(i)] - fBrute[std::size_t(i)]).norm() / scale,
                0.0, 1e-12);
  }
}

TEST(CellList, SmallBoxFallsBackToBruteForce) {
  MDSystem sys = smallSystem(40, 4.0, 8);  // < 3 cells per dim at cutoff 2.5
  ForceParams p;
  std::vector<Vec3> f(40);
  double e = rangeLimitedForces(sys, p, f);
  EXPECT_TRUE(std::isfinite(e));
  Vec3 net;
  for (const auto& v : f) net += v;
  EXPECT_NEAR(net.norm(), 0.0, 1e-7);
}

TEST(Spline, PartitionOfUnity) {
  for (double u : {0.0, 0.25, 3.7, 11.99, 31.5}) {
    SplineStencil s = splineStencil(u, 32);
    double sum = 0, dsum = 0;
    for (int j = 0; j < 4; ++j) {
      sum += s.w[std::size_t(j)];
      dsum += s.dw[std::size_t(j)];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "u=" << u;
    EXPECT_NEAR(dsum, 0.0, 1e-12) << "u=" << u;
  }
}

TEST(Spline, DerivativeMatchesFiniteDifference) {
  for (double x : {0.3, 1.1, 1.9, 2.5, 3.8}) {
    double h = 1e-7;
    double numeric = (bspline4(x + h) - bspline4(x - h)) / (2 * h);
    EXPECT_NEAR(bspline4Derivative(x), numeric, 1e-6) << "x=" << x;
  }
}

TEST(Ewald, ChargeConservationOnGrid) {
  MDSystem sys = smallSystem(50, 8.0, 9);
  MeshEwald me(sys.box, {.grid = 16, .kappa = 1.0, .coulomb = 1.0});
  fft::Grid3D g = me.spreadCharges(sys);
  double total = 0, expect = 0;
  for (const auto& v : g.data()) total += v.real();
  for (double q : sys.charges) expect += q;
  EXPECT_NEAR(total, expect, 1e-10);
}

TEST(Ewald, MeshMatchesReferenceEnergyAndForces) {
  MDSystem sys = smallSystem(24, 6.0, 11);
  const double kappa = 0.9, coulomb = 1.0;
  std::vector<Vec3> fRef(24), fMesh(24);
  double eRef = ewaldReferenceEnergyAndForces(sys, kappa, coulomb, 12, fRef);
  MeshEwald me(sys.box, {.grid = 32, .kappa = kappa, .coulomb = coulomb});
  double eMesh = me.energyAndForces(sys, fMesh);
  EXPECT_NEAR(eMesh, eRef, 5e-3 * std::abs(eRef) + 1e-4);
  for (int i = 0; i < 24; ++i) {
    EXPECT_NEAR((fMesh[std::size_t(i)] - fRef[std::size_t(i)]).norm(), 0.0, 2e-3)
        << "atom " << i;
  }
}

TEST(Ewald, MeshForceMatchesNumericalGradient) {
  MDSystem sys = smallSystem(10, 5.0, 13);
  MeshEwald me(sys.box, {.grid = 32, .kappa = 1.0, .coulomb = 1.0});
  std::vector<Vec3> f(10);
  me.energyAndForces(sys, f);
  checkForcesAgainstGradient(
      sys,
      [&] {
        std::vector<Vec3> tmp(10);
        return me.energyAndForces(sys, tmp);
      },
      f, 1e-5, 2e-3);
}

TEST(Ewald, NetForceIsSmall) {
  // SPME-style interpolation does not conserve momentum exactly (a known
  // property); the residual must be far below typical per-atom forces.
  MDSystem sys = smallSystem(60, 7.0, 15);
  MeshEwald me(sys.box, {.grid = 32, .kappa = 1.0, .coulomb = 1.0});
  std::vector<Vec3> f(60);
  me.energyAndForces(sys, f);
  Vec3 net;
  double typical = 0.0;
  for (const auto& v : f) {
    net += v;
    typical += v.norm();
  }
  typical /= 60.0;
  EXPECT_LT(net.norm(), 1e-2 * std::max(typical, 1e-6));
}

TEST(System, SyntheticBuilderInvariants) {
  SyntheticSystemParams p;
  p.targetAtoms = 3000;
  MDSystem sys = buildSyntheticSystem(p);
  EXPECT_NEAR(double(sys.numAtoms()), 3000, 3);
  double q = 0;
  for (double c : sys.charges) q += c;
  EXPECT_NEAR(q, 0.0, 1e-9);                       // net neutral
  EXPECT_NEAR(sys.totalMomentum().norm(), 0.0, 1e-9);  // no drift
  EXPECT_NEAR(sys.temperature(), 1.0, 0.1);
  EXPECT_GT(sys.bonds.size(), 1500u);
  EXPECT_GT(sys.angles.size(), 900u);
  EXPECT_GT(sys.dihedrals.size(), 200u);
  for (const auto& pos : sys.positions) {
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LT(pos.x, sys.box.x);
  }
}

}  // namespace
}  // namespace anton::md
