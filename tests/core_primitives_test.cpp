// Primitives not covered elsewhere: Gate joins, CountedChannel rounds,
// arenas, and property sweeps of routing invariants across torus shapes.
#include <gtest/gtest.h>

#include "core/arena.hpp"
#include "core/counted.hpp"
#include "net/machine.hpp"
#include "sim/gate.hpp"

namespace anton {
namespace {

using sim::Task;

TEST(Gate, WaitsForAllSpawnedTasks) {
  sim::Simulator sim;
  int done = 0;
  double joinedAt = -1;
  auto worker = [&](int delayNs) -> Task {
    co_await sim.delay(sim::ns(delayNs));
    ++done;
  };
  auto parent = [&]() -> Task {
    sim::Gate gate;
    gate.spawn(sim, worker(10));
    gate.spawn(sim, worker(50));
    gate.spawn(sim, worker(30));
    co_await gate.wait();
    joinedAt = sim::toNs(sim.now());
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(joinedAt, 50.0);  // join at the slowest subtask
}

TEST(Gate, EmptyGateDoesNotBlock) {
  sim::Simulator sim;
  bool passed = false;
  auto parent = [&]() -> Task {
    sim::Gate gate;
    co_await gate.wait();
    passed = true;
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_TRUE(passed);
}

TEST(CountedChannel, RoundsAccumulate) {
  sim::Simulator sim;
  net::Machine m(sim, {3, 1, 1});
  core::CountedChannel chan(m.slice(1, 0), 4, 3);

  std::vector<double> roundDone;
  auto receiver = [&]() -> Task {
    for (int r = 0; r < 3; ++r) {
      co_await chan.nextRound();
      roundDone.push_back(sim::toNs(sim.now()));
    }
  };
  sim.spawn(receiver());
  auto sender = [&]() -> Task {
    for (int r = 0; r < 3; ++r) {
      for (int i = 0; i < 3; ++i) {
        net::NetworkClient::SendArgs args;
        args.dst = {1, net::kSlice0};
        args.counterId = 4;
        co_await m.slice(0, 0).send(args);
      }
      co_await sim.delay(sim::us(1));
    }
  };
  sim.spawn(sender());
  sim.run();
  ASSERT_EQ(roundDone.size(), 3u);
  EXPECT_LT(roundDone[0], roundDone[1]);
  EXPECT_LT(roundDone[1], roundDone[2]);
  EXPECT_EQ(chan.roundsCompleted(), 3u);
}

TEST(CountedChannel, PartialProgressWithAtLeast) {
  sim::Simulator sim;
  net::Machine m(sim, {3, 1, 1});
  core::CountedChannel chan(m.slice(1, 0), 4, 8);
  double partialAt = -1, fullAt = -1;
  auto receiver = [&]() -> Task {
    co_await chan.atLeast(2);  // start work on the first two packets
    partialAt = sim::toNs(sim.now());
    co_await chan.nextRound();
    fullAt = sim::toNs(sim.now());
  };
  sim.spawn(receiver());
  auto sender = [&]() -> Task {
    for (int i = 0; i < 8; ++i) {
      net::NetworkClient::SendArgs args;
      args.dst = {1, net::kSlice0};
      args.counterId = 4;
      co_await m.slice(0, 0).send(args);
      co_await sim.delay(sim::ns(200));
    }
  };
  sim.spawn(sender());
  sim.run();
  EXPECT_GT(partialAt, 0);
  EXPECT_GT(fullAt, partialAt + 1000);  // overlap window was real
}

TEST(Arena, MemoryAlignmentAndExhaustion) {
  core::MemoryArena arena(100, 0);
  EXPECT_EQ(arena.alloc(10, 8), 0u);
  EXPECT_EQ(arena.alloc(1, 8), 16u);   // aligned past 10
  EXPECT_EQ(arena.alloc(4, 4), 20u);
  EXPECT_THROW(arena.alloc(100, 8), std::runtime_error);
}

TEST(Arena, CountersExhaust) {
  core::CounterArena arena(4, 1);
  EXPECT_EQ(arena.alloc(2), 1);
  EXPECT_EQ(arena.alloc(1), 3);
  EXPECT_THROW(arena.alloc(1), std::runtime_error);
}

// ---- property sweep: routing invariants across torus shapes --------------

class TorusShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TorusShapes, EveryPairIsRoutableAndHopExact) {
  auto [nx, ny, nz] = GetParam();
  sim::Simulator sim;
  net::MachineConfig cfg;
  cfg.clientMemBytes = 4 << 10;
  cfg.countersPerClient = 4;
  net::Machine m(sim, {nx, ny, nz}, cfg);

  // Send from node 0 to every node; each must arrive, and the link
  // traversal count must equal the sum of shortest-path hops.
  net::NetworkClient::SendArgs args;
  args.counterId = 0;
  args.inOrder = true;
  std::uint64_t expectedHops = 0;
  for (int n = 0; n < m.numNodes(); ++n) {
    args.dst = {n, net::kSlice0};
    m.slice(0, 1).post(args);
    expectedHops += std::uint64_t(m.hops(0, n));
  }
  sim.run();
  EXPECT_EQ(m.stats().packetsDelivered, std::uint64_t(m.numNodes()));
  EXPECT_EQ(m.stats().linkTraversals, expectedHops);
  for (int n = 0; n < m.numNodes(); ++n)
    EXPECT_EQ(m.slice(n, 0).counterValue(0), 1u) << "node " << n;
}

TEST_P(TorusShapes, AdaptiveRoutingDeliversEverything) {
  auto [nx, ny, nz] = GetParam();
  sim::Simulator sim;
  net::MachineConfig cfg;
  cfg.clientMemBytes = 4 << 10;
  cfg.countersPerClient = 4;
  cfg.adaptiveRouting = true;
  net::Machine m(sim, {nx, ny, nz}, cfg);
  net::NetworkClient::SendArgs args;
  args.counterId = 1;
  for (int i = 0; i < 5; ++i) {
    for (int n = 0; n < m.numNodes(); ++n) {
      args.dst = {n, net::kSlice2};
      m.slice(n % m.numNodes(), 0).post(args);
    }
  }
  sim.run();
  for (int n = 0; n < m.numNodes(); ++n)
    EXPECT_EQ(m.slice(n, 2).counterValue(1), 5u) << "node " << n;
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusShapes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 1, 1},
                                           std::tuple{4, 1, 1},
                                           std::tuple{2, 2, 2},
                                           std::tuple{3, 3, 3},
                                           std::tuple{4, 2, 3},
                                           std::tuple{1, 5, 3},
                                           std::tuple{8, 8, 8}));

}  // namespace
}  // namespace anton
