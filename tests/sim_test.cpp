#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace anton::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1.0), 1000);
  EXPECT_EQ(ns(0.5), 500);
  EXPECT_EQ(us(1.0), 1000000);
  EXPECT_DOUBLE_EQ(toNs(1500), 1.5);
  EXPECT_DOUBLE_EQ(toUs(2500000), 2.5);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(ns(30), [&] { order.push_back(3); });
  sim.at(ns(10), [&] { order.push_back(1); });
  sim.at(ns(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ns(30));
}

TEST(Simulator, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(ns(5), [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(ns(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(ns(5), [] {}), std::logic_error);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.at(ns(1), [&] {
    sim.after(ns(1), [&] {
      sim.after(ns(1), [&] { ++fired; });
      ++fired;
    });
    ++fired;
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), ns(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(ns(10), [&] { ++fired; });
  sim.at(ns(20), [&] { ++fired; });
  sim.at(ns(30), [&] { ++fired; });
  sim.runUntil(ns(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), ns(20));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.runUntil(ns(100));
  EXPECT_EQ(sim.now(), ns(100));
}

Task delayTwice(Simulator& sim, std::vector<double>& marks) {
  co_await sim.delay(ns(10));
  marks.push_back(toNs(sim.now()));
  co_await sim.delay(ns(5));
  marks.push_back(toNs(sim.now()));
}

TEST(Task, DelaysAdvanceSimTime) {
  Simulator sim;
  std::vector<double> marks;
  sim.spawn(delayTwice(sim, marks));
  sim.run();
  EXPECT_EQ(marks, (std::vector<double>{10.0, 15.0}));
}

Task child(Simulator& sim, int& state) {
  co_await sim.delay(ns(7));
  state = 42;
}

Task parent(Simulator& sim, int& state, double& doneAt) {
  co_await child(sim, state);
  doneAt = toNs(sim.now());
}

TEST(Task, AwaitingSubtaskRunsItToCompletion) {
  Simulator sim;
  int state = 0;
  double doneAt = -1;
  sim.spawn(parent(sim, state, doneAt));
  sim.run();
  EXPECT_EQ(state, 42);
  EXPECT_DOUBLE_EQ(doneAt, 7.0);
}

Task thrower(Simulator& sim) {
  co_await sim.delay(ns(1));
  throw std::runtime_error("boom");
}

TEST(Task, DetachedExceptionPropagatesFromRun) {
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task catching(Simulator& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, AwaitedExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  sim.spawn(catching(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ManyConcurrentTasks) {
  Simulator sim;
  int done = 0;
  auto worker = [](Simulator& s, int delayNs, int& d) -> Task {
    co_await s.delay(ns(delayNs));
    ++d;
  };
  for (int i = 0; i < 1000; ++i) sim.spawn(worker(sim, i % 17 + 1, done));
  sim.run();
  EXPECT_EQ(done, 1000);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Simulator, CancellableEventFiresWhenNotCancelled) {
  Simulator sim;
  int fired = 0;
  Simulator::EventHandle h = sim.atCancellable(ns(10), [&] { ++fired; });
  (void)h;
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ns(10));
}

TEST(Simulator, CancelledEventDoesNotRunOrAdvanceTime) {
  // A retracted deadline must leave the timeline bit-identical to never
  // scheduling it: no callback, no now() advance, no processed count.
  Simulator sim;
  int fired = 0;
  Simulator::EventHandle h = sim.atCancellable(ns(100), [&] { ++fired; });
  Simulator::cancel(h);
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.eventsProcessed(), 0u);
}

TEST(Simulator, CancelledEventAmongOthersIsInvisible) {
  Simulator sim;
  std::vector<int> order;
  sim.at(ns(10), [&] { order.push_back(1); });
  Simulator::EventHandle h = sim.atCancellable(ns(20), [&] { order.push_back(99); });
  sim.at(ns(30), [&] { order.push_back(3); });
  // Cancel from within an earlier event (the common race pattern).
  sim.at(ns(15), [&, h] { Simulator::cancel(h); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sim.now(), ns(30));
}

TEST(Simulator, CancelAfterFiringIsHarmless) {
  Simulator sim;
  int fired = 0;
  Simulator::EventHandle h = sim.atCancellable(ns(5), [&] { ++fired; });
  sim.run();
  Simulator::cancel(h);
  Simulator::cancel(nullptr);  // null handle is a no-op too
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ResetReturnsTheKernelToAFreshState) {
  // The arena-reuse audit point: a worker running many jobs on one
  // Simulator must observe a reset kernel as indistinguishable from a
  // fresh one — clock at zero, no pending events, no live frames.
  Simulator sim;
  int fired = 0;
  auto looper = [](Simulator& s, int& n) -> Task {
    for (;;) {
      co_await s.delay(ns(10));
      ++n;
    }
  };
  sim.spawn(looper(sim, fired));
  sim.at(ns(1000), [&] { ++fired; });
  sim.runUntil(ns(35));
  EXPECT_EQ(fired, 3);
  EXPECT_GT(sim.now(), 0);
  EXPECT_FALSE(sim.empty());

  std::size_t discarded = sim.reset();
  EXPECT_GE(discarded, 2u) << "pending event + live root";
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.liveRoots(), 0u);
  EXPECT_EQ(sim.eventsProcessed(), 0u);

  // Discarded work must never fire after the reset.
  sim.run();
  EXPECT_EQ(fired, 3);

  // The reset kernel replays a schedule bit-identically to a fresh one:
  // same event count, same final clock, and a second reset reports clean.
  auto replay = [](Simulator& s) {
    int n = 0;
    auto t = [](Simulator& sm, int& k) -> Task {
      for (int i = 0; i < 5; ++i) {
        co_await sm.delay(ns(7));
        ++k;
      }
    };
    s.spawn(t(s, n));
    std::uint64_t events = s.run();
    return std::tuple{n, events, s.now()};
  };
  auto fromReset = replay(sim);
  EXPECT_EQ(sim.reset(), 0u) << "drained run left the arena dirty";
  Simulator fresh;
  EXPECT_EQ(fromReset, replay(fresh));
}

TEST(Simulator, ResetIgnoresACancelledEventBuriedUnderALiveOne) {
  // Regression: purgeCancelled() only drains cancelled events at the top of
  // the heap, so a cancelled deadline sitting *under* a live event used to
  // be counted as discarded work by reset() — tripping the serve layer's
  // clean-arena audit on workers that had merely won a counter/deadline
  // race. reset() must count live events only.
  Simulator sim;
  sim.at(ns(40), [] {});  // live, stays on top of the heap
  Simulator::EventHandle h = sim.atCancellable(ns(50), [] {});
  sim.runUntil(ns(30));   // nothing fires; both events still queued
  Simulator::cancel(h);   // buried under the live ns(40) event
  EXPECT_EQ(sim.reset(), 1u) << "cancelled tombstone counted as live work";

  // Same race, fully drained: after the live event fires and the cancelled
  // tombstone is purged, the reset must report a clean kernel.
  sim.at(ns(40), [] {});
  Simulator::EventHandle h2 = sim.atCancellable(ns(50), [] {});
  Simulator::cancel(h2);
  sim.run();
  EXPECT_EQ(sim.reset(), 0u);
}

TEST(Simulator, ReservedSeqSlotsKeepTheirPlaceInTheSchedule) {
  // The batched-drain contract: an event scheduled later via atReserved()
  // with an earlier-reserved sequence number fires exactly where a plain
  // at() issued at reservation time would have — before same-time events
  // whose seq was handed out after it.
  Simulator sim;
  std::vector<int> order;
  std::uint64_t slot = sim.reserveSeq();          // reserved first...
  sim.at(ns(10), [&] { order.push_back(2); });    // ...then a same-time event
  sim.atReserved(ns(10), slot, [&] { order.push_back(1); });
  sim.at(ns(10), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));

  EXPECT_THROW(sim.atReserved(ns(5), sim.reserveSeq(), [] {}),
               std::logic_error)
      << "scheduling in the past must throw like at()";
  EXPECT_THROW(sim.atReserved(ns(20), sim.nextSeq() + 7, [] {}),
               std::logic_error)
      << "an unreserved (future) seq is a scheduling bug";
}

TEST(Simulator, RootsAreReapedIncrementally) {
  // Completed root frames must not pile up until the queue drains: with
  // thousands of short tasks alive at once, liveRoots() shrinks mid-run.
  Simulator sim;
  auto tiny = [](Simulator& s) -> Task { co_await s.delay(ns(1)); };
  const int kTasks = 3000;
  for (int i = 0; i < kTasks; ++i) sim.spawn(tiny(sim));
  std::size_t liveAtEnd = kTasks;
  sim.at(ns(100), [&] { liveAtEnd = sim.liveRoots(); });
  sim.run();
  // All tasks completed at 1 ns; by the sampling event (after > 2 reap
  // intervals of events) most frames must already be gone.
  EXPECT_LT(liveAtEnd, std::size_t(kTasks));
  EXPECT_EQ(sim.liveRoots(), 0u);
}

}  // namespace
}  // namespace anton::sim
