// Golden communication-plan snapshots.
//
// Each file under tests/golden_plans/ is the canonical JSON snapshot of one
// named shipped plan (tools/plan_registry.hpp). Rebuilding the plan from
// source and structurally diffing it against the committed file turns any
// silent change to the communication shape — a packet count, a tree edge, a
// buffer lifetime — into a reviewable delta. Regenerate intentionally with
//   ./build/tools/verify_plans --dump-plans tests/golden_plans
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "plan_registry.hpp"
#include "verify/checks.hpp"
#include "verify/snapshot.hpp"

namespace anton::verify {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GoldenPlans, CommittedSnapshotsMatchTheExtractors) {
  for (const std::string& name : tools::goldenPlanNames()) {
    SCOPED_TRACE(name);
    const std::string path =
        std::string(GOLDEN_PLANS_DIR) + "/" + name + ".json";
    const std::string json = readFile(path);
    ASSERT_FALSE(json.empty()) << "missing golden snapshot: " << path;

    const CommPlan golden = planFromJson(json);
    const CommPlan built = tools::buildNamedPlan(name);
    const PlanDelta delta = diffPlans(golden, built);
    for (const PlanDeltaEntry& e : delta.entries)
      ADD_FAILURE() << e.category << " | " << e.site << " | " << e.detail;
    EXPECT_TRUE(delta.identical())
        << "extractors drifted from the committed snapshot; if intentional, "
           "regenerate with verify_plans --dump-plans tests/golden_plans";

    // The committed bytes are the canonical serialization, and the plan they
    // describe still passes the verifier.
    EXPECT_EQ(planToJson(golden), json);
    EXPECT_TRUE(verifyPlan(built).ok());
  }
}

}  // namespace
}  // namespace anton::verify
