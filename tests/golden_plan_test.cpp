// Golden communication-plan snapshots.
//
// Each file under tests/golden_plans/ is the canonical JSON snapshot of one
// named shipped plan (tools/plan_registry.hpp). Rebuilding the plan from
// source and structurally diffing it against the committed file turns any
// silent change to the communication shape — a packet count, a tree edge, a
// buffer lifetime — into a reviewable delta. Regenerate intentionally with
//   ./build/tools/verify_plans --dump-plans tests/golden_plans
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "plan_registry.hpp"
#include "verify/checks.hpp"
#include "verify/snapshot.hpp"

namespace anton::verify {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GoldenPlans, CommittedSnapshotsMatchTheExtractors) {
  for (const std::string& name : tools::goldenPlanNames()) {
    SCOPED_TRACE(name);
    const std::string path =
        std::string(GOLDEN_PLANS_DIR) + "/" + name + ".json";
    const std::string json = readFile(path);
    ASSERT_FALSE(json.empty()) << "missing golden snapshot: " << path;

    const CommPlan golden = planFromJson(json);
    const CommPlan built = tools::buildNamedPlan(name);
    const PlanDelta delta = diffPlans(golden, built);
    for (const PlanDeltaEntry& e : delta.entries)
      ADD_FAILURE() << e.category << " | " << e.site << " | " << e.detail;
    EXPECT_TRUE(delta.identical())
        << "extractors drifted from the committed snapshot; if intentional, "
           "regenerate with verify_plans --dump-plans tests/golden_plans";

    // The committed bytes are the canonical serialization, and the plan they
    // describe still passes the verifier.
    EXPECT_EQ(planToJson(golden), json);
    EXPECT_TRUE(verifyPlan(built).ok());
  }
}

// Pinned plan keys: verify::planKey is the stable identity of a plan (FNV-1a
// over its canonical snapshot bytes) and feeds the simulation service's
// result-cache keys, so a drifting key silently invalidates every cached
// result for that plan. Any intentional plan change must update the constant
// here — the new value comes from `verify_plans --plan-keys`.
TEST(GoldenPlans, PlanKeysArePinned) {
  const std::map<std::string, std::string> pinned = {
      {"fig5-ping", "0x63269775621c1e80"},
      {"table2-allreduce-2x2x2", "0x619e4b59a2583b5b"},
      {"cluster-allreduce-16", "0xfa4e16a976b945bb"},
      {"fft-pair-2x2x2", "0xc15a6eea61224b87"},
      {"quickstart-md", "0x505f77b1cce62614"},
      {"md-4x4x1", "0x131f4353d10448bf"},
  };
  std::set<std::string> names;
  for (const std::string& name : tools::goldenPlanNames()) {
    SCOPED_TRACE(name);
    names.insert(name);
    auto it = pinned.find(name);
    ASSERT_NE(it, pinned.end())
        << "new golden plan without a pinned key; add its "
           "`verify_plans --plan-keys` value here";
    EXPECT_EQ(planKeyHex(tools::buildNamedPlan(name)), it->second);
  }
  EXPECT_EQ(names.size(), pinned.size()) << "stale pinned key entry";
}

// planKey must be a pure function of the canonical bytes: rebuilding the
// plan and round-tripping it through the snapshot serializer both yield the
// same key.
TEST(GoldenPlans, PlanKeyIsStableAcrossRebuildAndRoundTrip) {
  for (const std::string& name : tools::goldenPlanNames()) {
    SCOPED_TRACE(name);
    const CommPlan a = tools::buildNamedPlan(name);
    const CommPlan b = tools::buildNamedPlan(name);
    EXPECT_EQ(planKey(a), planKey(b));
    EXPECT_EQ(planKey(planFromJson(planToJson(a))), planKey(a));
  }
}

}  // namespace
}  // namespace anton::verify
