#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "trace/activity.hpp"

namespace anton::trace {
namespace {

using sim::ns;

TEST(Trace, UnitAndKindRegistrationIsIdempotent) {
  ActivityTrace t;
  int a = t.unit("TS");
  int b = t.unit("GC");
  EXPECT_EQ(t.unit("TS"), a);
  EXPECT_NE(a, b);
  int k = t.kind("fft");
  EXPECT_EQ(t.kind("fft"), k);
  EXPECT_EQ(t.unitNames().size(), 2u);
  EXPECT_EQ(t.kindNames().size(), 1u);
}

TEST(Trace, BusyTimeClipsToWindow) {
  ActivityTrace t;
  int u = t.unit("TS");
  int k = t.kind("bonded");
  t.record(u, k, ns(10), ns(30));
  EXPECT_EQ(t.busyTime(u, k, ns(0), ns(100)), ns(20));
  EXPECT_EQ(t.busyTime(u, k, ns(15), ns(25)), ns(10));
  EXPECT_EQ(t.busyTime(u, k, ns(40), ns(50)), 0);
  EXPECT_EQ(t.busyTime(u, ns(0), ns(20)), ns(10));
}

TEST(Trace, ZeroLengthIntervalsDropped) {
  ActivityTrace t;
  t.record(t.unit("TS"), t.kind("x"), ns(5), ns(5));
  t.record(t.unit("TS"), t.kind("x"), ns(9), ns(4));
  EXPECT_TRUE(t.intervals().empty());
}

TEST(Trace, DisableSuppressesRecording) {
  ActivityTrace t;
  t.setEnabled(false);
  t.record(t.unit("TS"), t.kind("x"), ns(0), ns(10));
  EXPECT_TRUE(t.intervals().empty());
  t.setEnabled(true);
  t.record(t.unit("TS"), t.kind("x"), ns(0), ns(10));
  EXPECT_EQ(t.intervals().size(), 1u);
}

TEST(Trace, CsvContainsRows) {
  ActivityTrace t;
  t.record("GC", "range-limited", ns(100), ns(250));
  std::string csv = t.csv();
  EXPECT_NE(csv.find("unit,kind,start_ns,end_ns"), std::string::npos);
  EXPECT_NE(csv.find("GC,range-limited,100,250"), std::string::npos);
}

TEST(Trace, TimelineShowsDominantKind) {
  ActivityTrace t;
  t.record("TS", "send", ns(0), ns(50));
  t.record("TS", "wait", ns(50), ns(100));
  std::string tl = t.timeline(0, ns(100), 10);
  // First half 's', second half 'w'.
  EXPECT_NE(tl.find("sssss"), std::string::npos);
  EXPECT_NE(tl.find("wwwww"), std::string::npos);
  EXPECT_NE(tl.find("legend:"), std::string::npos);
}

TEST(Trace, TimelineIdleIsDots) {
  ActivityTrace t;
  t.unit("GC");
  std::string tl = t.timeline(0, ns(100), 8);
  EXPECT_NE(tl.find("........"), std::string::npos);
}

TEST(Trace, ScopedActivityRecordsOnce) {
  ActivityTrace t;
  int u = t.unit("TS");
  int k = t.kind("fft");
  ScopedActivity s(t, ns(10), u, k);
  s.finish(ns(35));
  s.finish(ns(99));  // idempotent
  ASSERT_EQ(t.intervals().size(), 1u);
  EXPECT_EQ(t.intervals()[0].end, ns(35));
}

}  // namespace
}  // namespace anton::trace
