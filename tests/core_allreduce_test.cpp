// Dimension-ordered and butterfly all-reduce: correctness, determinism,
// repeatability, and latency sanity against the paper's Table 2.
#include <gtest/gtest.h>

#include <cmath>

#include "core/allreduce.hpp"
#include "sim/simulator.hpp"

namespace anton::core {
namespace {

using sim::Task;

struct Fixture {
  sim::Simulator sim;
  net::Machine machine;
  explicit Fixture(util::TorusShape shape) : machine(sim, shape, {}) {}
};

// Run one collective all-reduce where node i contributes f(i); returns the
// per-node results and the max completion time in microseconds.
template <typename Reducer, typename F>
std::pair<std::vector<std::vector<double>>, double> collect(Fixture& f,
                                                            Reducer& red,
                                                            std::size_t words,
                                                            F contribute) {
  int n = f.machine.numNodes();
  std::vector<std::vector<double>> results(static_cast<std::size_t>(n));
  double t0 = sim::toUs(f.sim.now());
  double maxDone = t0;
  auto task = [&](int node) -> Task {
    std::vector<double> in(words);
    for (std::size_t w = 0; w < words; ++w) in[w] = contribute(node, w);
    co_await red.run(node, std::move(in), &results[std::size_t(node)]);
    maxDone = std::max(maxDone, sim::toUs(f.sim.now()));
  };
  for (int i = 0; i < n; ++i) f.sim.spawn(task(i));
  f.sim.run();
  return {results, maxDone - t0};
}

TEST(DimOrderedAllReduce, SumsAcross512Nodes) {
  Fixture f({8, 8, 8});
  DimOrderedAllReduce red(f.machine);
  auto [results, us] =
      collect(f, red, 4, [](int node, std::size_t w) { return node * 0.5 + double(w); });
  double n = 512;
  for (int node = 0; node < 512; ++node) {
    ASSERT_EQ(results[std::size_t(node)].size(), 4u);
    for (std::size_t w = 0; w < 4; ++w) {
      double expect = 0.5 * (n * (n - 1) / 2) + double(w) * n;
      EXPECT_DOUBLE_EQ(results[std::size_t(node)][w], expect)
          << "node " << node << " word " << w;
    }
  }
}

TEST(DimOrderedAllReduce, AllNodesGetBitIdenticalResults) {
  Fixture f({4, 4, 2});
  DimOrderedAllReduce red(f.machine);
  // Values chosen to be FP-order-sensitive.
  auto [results, us] = collect(f, red, 3, [](int node, std::size_t w) {
    return std::pow(10.0, (node % 7) - 3) + 1e-13 * node + double(w);
  });
  for (int node = 1; node < f.machine.numNodes(); ++node) {
    for (std::size_t w = 0; w < 3; ++w) {
      EXPECT_EQ(results[std::size_t(node)][w], results[0][w])
          << "node " << node;
    }
  }
}

TEST(DimOrderedAllReduce, RepeatedCallsKeepWorking) {
  // Cumulative counters and parity double-buffering across 5 rounds.
  Fixture f({4, 2, 2});
  DimOrderedAllReduce red(f.machine);
  for (int round = 1; round <= 5; ++round) {
    auto [results, us] = collect(
        f, red, 1, [round](int node, std::size_t) { return double(node * round); });
    double expect = double(round) * (16.0 * 15.0 / 2.0);
    for (int node = 0; node < 16; ++node)
      EXPECT_DOUBLE_EQ(results[std::size_t(node)][0], expect) << "round " << round;
  }
}

TEST(DimOrderedAllReduce, Table2LatencyShape) {
  // Paper Table 2: 512-node 0-byte reduction 1.32 us, 32-byte 1.77 us.
  // The model should land in the same regime (~1-2 us) and grow with
  // machine size and payload.
  Fixture f512({8, 8, 8});
  DimOrderedAllReduce red512(f512.machine);
  auto [r0, us0] = collect(f512, red512, 0, [](int, std::size_t) { return 0.0; });
  auto [r32, us32] = collect(f512, red512, 4, [](int, std::size_t) { return 1.0; });
  EXPECT_GT(us0, 0.8);
  EXPECT_LT(us0, 1.8);
  EXPECT_GT(us32, us0);
  EXPECT_LT(us32, 2.4);

  Fixture f64({4, 4, 4});
  DimOrderedAllReduce red64(f64.machine);
  auto [r64, us64] = collect(f64, red64, 0, [](int, std::size_t) { return 0.0; });
  EXPECT_LT(us64, us0);  // smaller machine, lower latency
}

TEST(DimOrderedAllReduce, BarrierCompletesOnAllNodes) {
  Fixture f({4, 4, 4});
  DimOrderedAllReduce red(f.machine);
  int done = 0;
  auto task = [&](int node) -> Task {
    co_await red.barrier(node);
    ++done;
  };
  for (int i = 0; i < 64; ++i) f.sim.spawn(task(i));
  f.sim.run();
  EXPECT_EQ(done, 64);
}

TEST(DimOrderedAllReduce, DegenerateDimensionsAreSkipped) {
  Fixture f({4, 1, 1});
  DimOrderedAllReduce red(f.machine);
  auto [results, us] =
      collect(f, red, 2, [](int node, std::size_t w) { return double(node + 1) * (w + 1); });
  for (int node = 0; node < 4; ++node) {
    EXPECT_DOUBLE_EQ(results[std::size_t(node)][0], 10.0);
    EXPECT_DOUBLE_EQ(results[std::size_t(node)][1], 20.0);
  }
}

TEST(DimOrderedAllReduce, OversizedPayloadThrows) {
  Fixture f({2, 2, 2});
  DimOrderedAllReduce red(f.machine);
  std::vector<double> big(net::kMaxPayloadBytes / sizeof(double) + 1);
  EXPECT_THROW(
      {
        auto t = red.run(0, big, nullptr);
        f.sim.spawn(std::move(t));
        f.sim.run();
      },
      std::length_error);
}

TEST(ButterflyAllReduce, MatchesDimOrderedSum) {
  Fixture f({4, 4, 2});
  AllReduceConfig bCfg;
  bCfg.counterId = 210;  // keep clear of the dim-ordered counter
  bCfg.memBase = 0x20000;
  ButterflyAllReduce red(f.machine, bCfg);
  auto [results, us] =
      collect(f, red, 2, [](int node, std::size_t w) { return node + 0.25 * double(w); });
  double n = 32;
  for (int node = 0; node < 32; ++node) {
    EXPECT_DOUBLE_EQ(results[std::size_t(node)][0], n * (n - 1) / 2);
    EXPECT_DOUBLE_EQ(results[std::size_t(node)][1], n * (n - 1) / 2 + 0.25 * n);
  }
}

TEST(ButterflyAllReduce, SlowerThanDimOrderedOnBigTorus) {
  // The paper's point: butterfly needs 3*log2(N) rounds and 3(N-1) hops vs.
  // 3 rounds and 3N/2 hops for dimension-ordered.
  Fixture a({8, 8, 8});
  DimOrderedAllReduce dimRed(a.machine);
  auto [r1, usDim] = collect(a, dimRed, 4, [](int n, std::size_t) { return double(n); });

  Fixture b({8, 8, 8});
  ButterflyAllReduce bfly(b.machine);
  auto [r2, usBfly] = collect(b, bfly, 4, [](int n, std::size_t) { return double(n); });

  EXPECT_EQ(r1[0][0], r2[0][0]);
  EXPECT_GT(usBfly, usDim);
}

TEST(ButterflyAllReduce, NonPowerOfTwoThrows) {
  Fixture f({3, 2, 2});
  EXPECT_THROW(ButterflyAllReduce red(f.machine), std::invalid_argument);
}

TEST(ButterflyAllReduce, RepeatedCallsKeepWorking) {
  Fixture f({2, 2, 2});
  ButterflyAllReduce red(f.machine);
  for (int round = 1; round <= 4; ++round) {
    auto [results, us] =
        collect(f, red, 1, [round](int node, std::size_t) { return double(node + round); });
    double expect = 8.0 * round + 28.0;
    for (int node = 0; node < 8; ++node)
      EXPECT_DOUBLE_EQ(results[std::size_t(node)][0], expect);
  }
}

}  // namespace
}  // namespace anton::core
