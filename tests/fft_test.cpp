// FFT correctness: 1D against the O(n^2) reference, 3D round trips, and the
// distributed transform bit-identical to the host reference.
#include <gtest/gtest.h>

#include <cmath>

#include "fft/distributed.hpp"
#include "fft/grid3d.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace anton::fft {
namespace {

using sim::Task;

std::vector<Complex> randomSignal(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

class Fft1dSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1dSizes, MatchesReferenceDft) {
  auto a = randomSignal(GetParam(), GetParam() * 7 + 1);
  auto expect = dftReference(a, false);
  std::vector<Complex> got = a;
  fft1d(got, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(got[i].real(), expect[i].real(), 1e-9) << "bin " << i;
    EXPECT_NEAR(got[i].imag(), expect[i].imag(), 1e-9) << "bin " << i;
  }
}

TEST_P(Fft1dSizes, RoundTripIsIdentity) {
  auto a = randomSignal(GetParam(), GetParam() + 99);
  std::vector<Complex> got = a;
  fft1d(got, false);
  fft1d(got, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(got[i].real(), a[i].real(), 1e-12);
    EXPECT_NEAR(got[i].imag(), a[i].imag(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Fft1dSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft1d, NonPowerOfTwoThrows) {
  std::vector<Complex> a(6);
  EXPECT_THROW(fft1d(a, false), std::invalid_argument);
}

TEST(Fft1d, DeltaTransformsToConstant) {
  std::vector<Complex> a(8, {0, 0});
  a[0] = {1, 0};
  fft1d(a, false);
  for (const auto& x : a) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, ParsevalHolds) {
  auto a = randomSignal(64, 3);
  double timeE = 0;
  for (auto& x : a) timeE += std::norm(x);
  std::vector<Complex> f = a;
  fft1d(f, false);
  double freqE = 0;
  for (auto& x : f) freqE += std::norm(x);
  EXPECT_NEAR(freqE, timeE * 64.0, 1e-8);
}

TEST(Fft3d, RoundTrip) {
  Grid3D g(8, 4, 16);
  sim::Rng rng(5);
  for (auto& x : g.data()) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  Grid3D orig = g;
  fft3d(g, false);
  fft3d(g, true);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g.data()[i].real(), orig.data()[i].real(), 1e-11);
    EXPECT_NEAR(g.data()[i].imag(), orig.data()[i].imag(), 1e-11);
  }
}

TEST(Fft3d, PlaneWaveTransformsToDelta) {
  const int n = 8;
  Grid3D g(n, n, n);
  const int kx = 2, ky = 5, kz = 1;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        double ph = 2.0 * std::numbers::pi * (kx * x + ky * y + kz * z) / n;
        g.at(x, y, z) = {std::cos(ph), std::sin(ph)};
      }
  fft3d(g, false);
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        double expect = (x == kx && y == ky && z == kz) ? double(n * n * n) : 0.0;
        EXPECT_NEAR(g.at(x, y, z).real(), expect, 1e-7);
        EXPECT_NEAR(g.at(x, y, z).imag(), 0.0, 1e-7);
      }
}

// --- distributed -----------------------------------------------------------

struct DistFixture {
  sim::Simulator sim;
  net::Machine machine;
  DistFixture(util::TorusShape shape) : machine(sim, shape, {}) {}
};

void runCollective(DistFixture& f, DistributedFft3D& fft, bool inverse) {
  auto task = [](DistributedFft3D& d, int n, bool inv) -> Task {
    co_await d.run(n, inv);
  };
  for (int n = 0; n < f.machine.numNodes(); ++n)
    f.sim.spawn(task(fft, n, inverse));
  f.sim.run();
}

class DistributedShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int, int>> {};

TEST_P(DistributedShapes, MatchesHostFft3dExactly) {
  auto [nx, ny, nz, gx, gy, gz, ppp] = GetParam();
  DistFixture f({nx, ny, nz});
  DistributedFftConfig cfg;
  cfg.pointsPerPacket = ppp;
  DistributedFft3D dist(f.machine, gx, gy, gz, cfg);

  Grid3D ref(gx, gy, gz);
  sim::Rng rng(17);
  for (auto& x : ref.data()) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  dist.loadGrid(ref.data());

  runCollective(f, dist, false);
  fft3d(ref, false);

  auto got = dist.extractGrid();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Bit-identical: same per-line fft1d code, same pass order.
    EXPECT_EQ(got[i], ref.data()[i]) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MachineAndGrid, DistributedShapes,
    ::testing::Values(std::tuple{2, 2, 2, 8, 8, 8, 1},
                      std::tuple{2, 2, 2, 8, 8, 8, 0},
                      std::tuple{4, 2, 2, 16, 8, 8, 4},
                      std::tuple{4, 4, 4, 16, 16, 16, 0},
                      std::tuple{1, 2, 4, 4, 8, 16, 2}));

TEST(Distributed, ForwardInverseRoundTrip) {
  DistFixture f({2, 2, 2});
  DistributedFft3D dist(f.machine, 8, 8, 8, {});
  std::vector<Complex> input(8 * 8 * 8);
  sim::Rng rng(23);
  for (auto& x : input) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  dist.loadGrid(input);
  runCollective(f, dist, false);
  runCollective(f, dist, true);
  auto got = dist.extractGrid();
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(got[i].real(), input[i].real(), 1e-12);
    EXPECT_NEAR(got[i].imag(), input[i].imag(), 1e-12);
  }
}

TEST(Distributed, RepeatedTransformsKeepWorking) {
  // Cumulative counters / parity buffers across 3 consecutive transforms.
  DistFixture f({2, 2, 1});
  DistributedFft3D dist(f.machine, 4, 4, 4, {});
  Grid3D ref(4, 4, 4);
  sim::Rng rng(31);
  for (int round = 0; round < 3; ++round) {
    for (auto& x : ref.data()) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    dist.loadGrid(ref.data());
    runCollective(f, dist, false);
    Grid3D expect = ref;
    fft3d(expect, false);
    auto got = dist.extractGrid();
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], expect.data()[i]) << "round " << round;
  }
}

TEST(Distributed, GlobalCoordRoundTrip) {
  DistFixture f({2, 4, 2});
  DistributedFft3D dist(f.machine, 8, 8, 8, {});
  std::vector<int> seen(8 * 8 * 8, 0);
  for (int n = 0; n < f.machine.numNodes(); ++n) {
    for (std::size_t i = 0; i < dist.blockSize(); ++i) {
      auto [x, y, z] = dist.globalCoord(n, i);
      ++seen[std::size_t(x + 8 * (y + 8 * z))];
    }
  }
  for (int v : seen) EXPECT_EQ(v, 1);  // exact partition of the grid
}

TEST(Distributed, FineGrainedUsesMorePacketsThanBatched) {
  DistFixture a({2, 2, 2});
  DistributedFftConfig fine;
  fine.pointsPerPacket = 1;
  DistributedFft3D f1(a.machine, 8, 8, 8, fine);
  DistFixture b({2, 2, 2});
  DistributedFftConfig batched;
  batched.pointsPerPacket = 0;
  DistributedFft3D f2(b.machine, 8, 8, 8, batched);
  EXPECT_GT(f1.packetsPerNodePerTransform(0), f2.packetsPerNodePerTransform(0));

  // And the stats agree with the plan.
  runCollective(a, f1, false);
  std::uint64_t expected = 0;
  for (int n = 0; n < 8; ++n) expected += f1.packetsPerNodePerTransform(n);
  EXPECT_EQ(a.machine.stats().packetsInjected, expected);
}

TEST(Distributed, BadGridThrows) {
  DistFixture f({2, 2, 2});
  // Non-power-of-two extent.
  EXPECT_THROW(DistributedFft3D(f.machine, 6, 8, 8, {}), std::invalid_argument);
  // Grid extent smaller than the torus extent (not divisible).
  EXPECT_THROW(DistributedFft3D(f.machine, 4, 8, 1, {}), std::invalid_argument);
}

}  // namespace
}  // namespace anton::fft
