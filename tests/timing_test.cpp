// Static timing analyzer (verify::analyzeTiming) against the live machine.
//
// The contract under test is DESIGN.md §12's soundness story: the static
// critical-path bound never exceeds what the simulator actually takes, the
// shipped plans are violation-free, the seeded-bad plans fire their named
// diagnostics, and the measured-vs-bound comparison is meaningful because
// the live schedule itself is bit-stable across the hot-path knob modes.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "md/anton_app.hpp"
#include "net/machine.hpp"
#include "net/probe.hpp"
#include "plan_registry.hpp"
#include "sim/simulator.hpp"
#include "util/hotpath.hpp"
#include "verify/timing.hpp"

namespace anton {
namespace {

bool hasCheck(const verify::TimingReport& r, const std::string& check) {
  for (const verify::Violation& v : r.violations)
    if (v.check == check) return true;
  return false;
}

TEST(TimingTest, HealthyGoldenPlansHaveFiniteCleanBounds) {
  for (const std::string& name : tools::goldenPlanNames()) {
    verify::TimingReport r = verify::analyzeTiming(tools::buildNamedPlan(name));
    EXPECT_TRUE(r.ok()) << name << ": " << (r.violations.empty()
                                                ? ""
                                                : r.violations[0].detail);
    EXPECT_GT(r.criticalPathNs, 0.0) << name;
    EXPECT_GT(r.perRoundNs, 0.0) << name;
    EXPECT_GT(r.eventsModeled, 0) << name;
    EXPECT_FALSE(r.bottleneckPath.empty()) << name;
  }
}

TEST(TimingTest, OneHopPingBoundIsSoundAgainstTheMachine) {
  verify::TimingOptions opts;
  opts.rounds = 1;
  verify::TimingReport r =
      verify::analyzeTiming(tools::buildPingPlan({1, 0, 0}), opts);
  ASSERT_TRUE(r.ok());

  sim::Simulator simulator;
  net::Machine machine(simulator, {8, 8, 8});
  double measured = net::oneWayLatencyNs(machine, {0, net::kSlice0},
                                         {1, net::kSlice0},
                                         /*payloadBytes=*/0);
  EXPECT_DOUBLE_EQ(measured, 162.0);  // the paper's headline number
  EXPECT_LE(r.criticalPathNs, measured);
  // The bound is a real budget, not a trivial zero: assembly + one link
  // crossing + delivery alone account for most of the measured latency.
  EXPECT_GE(r.criticalPathNs, 100.0);
}

/// One quickstart MD run; 8 steps covers the full knob cycle (long-range
/// every 2, thermostat every 2, migration every 8), so the last step is the
/// worst-case template round the extracted plan describes.
std::vector<md::StepTiming> runQuickstartMd(double* finalNs,
                                            net::MachineStats* stats) {
  sim::Simulator simulator;
  net::Machine machine(simulator, {4, 4, 4});
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.seed = 2010;
  md::AntonMdApp app(machine, md::buildSyntheticSystem(sp),
                     tools::quickstartMdConfig());
  app.runSteps(8);
  *finalNs = sim::toNs(simulator.now());
  *stats = machine.stats();
  return app.stepTimings();
}

TEST(TimingTest, MdWorstStepDominatesStaticBound) {
  double finalNs = 0.0;
  net::MachineStats stats;
  std::vector<md::StepTiming> steps = runQuickstartMd(&finalNs, &stats);

  const md::StepTiming* worst = nullptr;
  for (const md::StepTiming& st : steps)
    if (st.longRange && st.thermostat && st.migration) worst = &st;
  ASSERT_NE(worst, nullptr)
      << "no step ran long-range + thermostat + migration in 8 steps";

  verify::TimingReport r =
      verify::analyzeTiming(tools::buildNamedPlan("quickstart-md"));
  ASSERT_TRUE(r.ok());
  // Soundness: the live worst-case step can never beat the static lower
  // bound of the template round it executes.
  EXPECT_GE(worst->totalUs * 1000.0, r.perRoundNs);
  EXPECT_GE(finalNs, r.criticalPathNs);
}

TEST(TimingTest, MdStepTimingsBitStableAcrossHotPathModes) {
  double pooledNs = 0.0, legacyNs = 0.0;
  net::MachineStats pooledStats, legacyStats;
  std::vector<md::StepTiming> pooled, legacy;
  {
    util::ScopedHotPath mode(true);
    pooled = runQuickstartMd(&pooledNs, &pooledStats);
  }
  {
    util::ScopedHotPath mode(false);
    legacy = runQuickstartMd(&legacyNs, &legacyStats);
  }
  // The hot-path knobs change host allocation behavior only; the simulated
  // schedule — and with it every measured step time the oracle compares
  // against the static bound — must be bit-identical.
  EXPECT_EQ(pooledNs, legacyNs);
  EXPECT_EQ(pooledStats, legacyStats);
  ASSERT_EQ(pooled.size(), legacy.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i].totalUs, legacy[i].totalUs) << "step " << i;
    EXPECT_EQ(pooled[i].fftUs, legacy[i].fftUs) << "step " << i;
    EXPECT_EQ(pooled[i].forceWaitUs, legacy[i].forceWaitUs) << "step " << i;
  }
}

TEST(TimingTest, DegradedRerouteStaysWithinBlowupFactor) {
  verify::CommPlan plan = tools::buildNamedPlan("fig5-ping");
  verify::TimingOptions opts;
  // The +x link out of (6,4,4) carries only the (4,4,4) pong's x-leg, which
  // still has y and z distance and reroutes minimally (see verify_plans).
  opts.downLinks = {{util::torusIndex({6, 4, 4}, plan.shape), 0, +1}};
  verify::TimingReport r = verify::analyzeTiming(plan, opts);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? ""
                                               : r.violations[0].detail);
  EXPECT_TRUE(r.degradedAnalyzed);
  EXPECT_FALSE(r.degradedStalled);
  EXPECT_GT(r.degradedCriticalPathNs, 0.0);
  EXPECT_LT(r.inflation, opts.degradedBlowupFactor);
}

TEST(TimingTest, SeededContentionFunnelFires) {
  // Three x-line nodes burst 2 KiB packets into node 0 under credit flow
  // control: the wrap link's offered serialization exceeds the claimed
  // per-round budget (the verify_plans --timing selftest, in miniature).
  verify::CommPlan p;
  p.name = "funnel";
  p.shape = {4, 1, 1};
  p.addPhaseEdge("burst", "drain");
  verify::CounterExpectation drain;
  drain.site = "drain";
  drain.phase = "drain";
  drain.client = {0, net::kSlice0};
  drain.counterId = 0;
  drain.recoveryArmed = true;
  for (int n = 1; n < 4; ++n) {
    verify::PlannedWrite w;
    w.phase = "burst";
    w.srcNode = n;
    w.dst = {0, net::kSlice0};
    w.counterId = 0;
    w.packets = 8;
    w.bytes = 2048;
    p.writes.push_back(w);
    drain.perRound += 8;
    drain.bySource[n] = 8;

    verify::PlannedWrite ack;
    ack.phase = "drain";
    ack.srcNode = 0;
    ack.dst = {n, net::kSlice0};
    ack.counterId = 1;
    p.writes.push_back(ack);
    verify::CounterExpectation credit;
    credit.site = "burst.credit";
    credit.phase = "burst";
    credit.client = {n, net::kSlice0};
    credit.counterId = 1;
    credit.perRound = 1;
    credit.bySource[0] = 1;
    credit.recoveryArmed = true;
    p.expectations.push_back(std::move(credit));
  }
  p.expectations.push_back(std::move(drain));

  verify::TimingReport r = verify::analyzeTiming(p);
  EXPECT_TRUE(hasCheck(r, "timing.contention"));
}

TEST(TimingTest, SeededDegradedBlowupFires) {
  verify::CommPlan plan = tools::buildPingPlan({4, 2, 0}, {8, 4, 1});
  plan.writes[0].inOrder = true;  // deterministic route: exact turn pricing
  verify::TimingOptions opts;
  opts.downLinks = {{util::torusIndex({1, 0, 0}, {8, 4, 1}), 0, +1},
                    {util::torusIndex({2, 1, 0}, {8, 4, 1}), 0, +1}};
  net::LatencyConfig lat;
  lat.routerHopEachNs = 500.0;  // expensive on-chip turns
  verify::TimingReport r = verify::analyzeTiming(plan, opts, lat);
  EXPECT_TRUE(hasCheck(r, "timing.degraded-blowup"));
  EXPECT_GT(r.inflation, opts.degradedBlowupFactor);
}

TEST(TimingTest, SeededStalledRouteFires) {
  verify::CommPlan plan = tools::buildPingPlan({1, 0, 0}, {4, 1, 1});
  verify::TimingOptions opts;
  opts.downLinks = {{0, 0, +1}};  // a 1-D line cannot reroute
  verify::TimingReport r = verify::analyzeTiming(plan, opts);
  EXPECT_TRUE(hasCheck(r, "timing.stalled"));
  EXPECT_TRUE(r.degradedStalled);
}

}  // namespace
}  // namespace anton
