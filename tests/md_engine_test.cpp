// Reference-engine physics: NVE energy conservation, momentum conservation,
// thermostat behavior, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "md/engine.hpp"

namespace anton::md {
namespace {

MDSystem tinySystem(int atoms) {
  SyntheticSystemParams p;
  p.targetAtoms = atoms;
  p.temperature = 0.8;
  p.seed = 42;
  return buildSyntheticSystem(p);
}

EngineParams stableParams() {
  EngineParams p;
  p.dt = 0.001;
  p.ewald.grid = 16;
  p.force.cutoff = 2.5;
  return p;
}

TEST(Engine, NveEnergyIsConserved) {
  ReferenceEngine eng(tinySystem(300), stableParams());
  double e0 = eng.energies().total();
  eng.run(100);
  double e1 = eng.energies().total();
  // Velocity Verlet: relative drift small over 100 steps at dt = 0.001.
  EXPECT_NEAR(e1, e0, 0.02 * std::abs(e0) + 0.5);
}

TEST(Engine, NveMomentumIsConserved) {
  ReferenceEngine eng(tinySystem(300), stableParams());
  eng.run(50);
  // Mesh-Ewald interpolation injects a tiny momentum error per step.
  EXPECT_NEAR(eng.system().totalMomentum().norm(), 0.0, 0.05);
}

TEST(Engine, ThermostatDrivesTemperatureToTarget) {
  EngineParams p = stableParams();
  p.thermostatTau = 0.02;
  p.targetTemperature = 1.4;
  p.thermostatInterval = 2;
  ReferenceEngine eng(tinySystem(300), p);
  eng.run(300);
  EXPECT_NEAR(eng.system().temperature(), 1.4, 0.2);
}

TEST(Engine, DeterministicAcrossRuns) {
  ReferenceEngine a(tinySystem(150), stableParams());
  ReferenceEngine b(tinySystem(150), stableParams());
  a.run(20);
  b.run(20);
  for (int i = 0; i < a.system().numAtoms(); ++i) {
    EXPECT_EQ(a.system().positions[std::size_t(i)],
              b.system().positions[std::size_t(i)]);
  }
  EXPECT_EQ(a.energies().total(), b.energies().total());
}

TEST(Engine, LongRangeChangesForces) {
  MDSystem sys = tinySystem(200);
  EngineParams with = stableParams();
  EngineParams without = stableParams();
  without.longRange = false;
  ReferenceEngine a(sys, with), b(sys, without);
  double diff = 0;
  for (int i = 0; i < sys.numAtoms(); ++i)
    diff += (a.forces()[std::size_t(i)] - b.forces()[std::size_t(i)]).norm();
  EXPECT_GT(diff, 1e-3);
  EXPECT_NE(a.energies().longRange, 0.0);
  EXPECT_EQ(b.energies().longRange, 0.0);
}

TEST(Engine, PositionsStayWrapped) {
  ReferenceEngine eng(tinySystem(100), stableParams());
  eng.run(30);
  const MDSystem& s = eng.system();
  for (const auto& p : s.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, s.box.x);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, s.box.y);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, s.box.z);
  }
}

}  // namespace
}  // namespace anton::md
