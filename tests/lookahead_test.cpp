// Static parallel-safety analyzer + dynamic causal-order oracle (ISSUE 8).
//
// The safe half: the shipped shardings (per-node, x-slab) of real plans
// must prove violation-free, with the derived lookahead budget equal to the
// calibrated minimum link crossing. The unsafe half: each seeded-bad
// sharding must fire its distinct diagnostic with a named critical edge.
// The dynamic half: a causal trace of live traffic must respect the same
// bound the static side proves, and the inflated-claim sharding must be
// refuted by that very trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>

#include "core/allreduce.hpp"
#include "net/machine.hpp"
#include "net/probe.hpp"
#include "sim/causal_log.hpp"
#include "sim/simulator.hpp"
#include "verify/lookahead.hpp"

namespace anton {
namespace {

// The dim-ordered all-reduce on a 2x2x2 torus: every node both sends and
// waits in all three dimension phases, so every shard pair carries edges.
verify::CommPlan allReducePlan() {
  sim::Simulator sim;
  net::Machine machine(sim, {2, 2, 2});
  core::DimOrderedAllReduce reduce(machine);
  verify::CommPlan p;
  p.name = "allreduce-2x2x2";
  p.shape = {2, 2, 2};
  reduce.appendPlan(p, "");
  return p;
}

// A counted write into an accumulation memory: under the split-node
// sharding the receiving node's phase anchors (slice side) and its wait
// (accumulation side) land on different shards, so same-node program order
// becomes a zero-latency cross-shard edge in both directions.
verify::CommPlan accumPlan() {
  verify::CommPlan p;
  p.name = "accum-2x1x1";
  p.shape = {2, 1, 1};
  p.addPhaseEdge("send", "recv");
  verify::PlannedWrite w;
  w.phase = "send";
  w.srcNode = 0;
  w.dst = {1, net::kAccum0};
  w.counterId = 0;
  p.writes.push_back(w);
  verify::CounterExpectation e;
  e.site = "recv";
  e.phase = "recv";
  e.client = {1, net::kAccum0};
  e.counterId = 0;
  e.perRound = 1;
  e.recoveryArmed = true;
  p.expectations.push_back(e);
  return p;
}

bool hasCheck(const std::vector<verify::Violation>& vs,
              const std::string& check) {
  return std::any_of(vs.begin(), vs.end(), [&](const verify::Violation& v) {
    return v.check == check;
  });
}

TEST(Lookahead, MinLinkCrossingMatchesCalibratedComponents) {
  net::LatencyConfig lat;
  for (int dim = 0; dim < 3; ++dim) {
    double expect = std::min(lat.transitNs[std::size_t(dim)],
                             lat.routerHopBaseNs + lat.routerHopEachNs) +
                    2.0 * lat.adapterNs + lat.wireNs[std::size_t(dim)];
    EXPECT_DOUBLE_EQ(lat.minLinkCrossingNs(dim), expect) << "dim " << dim;
    // Faults, stalls and serialization only ever add latency on top.
    EXPECT_GT(lat.minLinkCrossingNs(dim), 0.0);
  }
}

TEST(Lookahead, ShardPairBoundsOnTheTorus) {
  util::TorusShape shape{4, 4, 1};
  net::LatencyConfig lat;
  verify::Sharding perNode = verify::perNodeSharding(shape);
  auto pairs = verify::shardPairBounds(shape, perNode, lat);
  // Adjacent nodes: exactly the one-link minimum, with counted boundary
  // links; distance-2 nodes: two crossings.
  auto adj = pairs.at({0, 1});
  EXPECT_DOUBLE_EQ(adj.linkBoundNs, lat.minLinkCrossingNs(0));
  EXPECT_GT(adj.boundaryLinks, 0);
  auto far = pairs.at({0, 2});
  EXPECT_DOUBLE_EQ(far.linkBoundNs, 2.0 * lat.minLinkCrossingNs(0));

  // A node split across shards collapses that pair's bound to zero.
  verify::Sharding split = verify::splitNodeSharding(shape);
  auto splitPairs = verify::shardPairBounds(shape, split, lat);
  EXPECT_DOUBLE_EQ(splitPairs.at({0, 1}).linkBoundNs, 0.0);
  EXPECT_EQ(splitPairs.at({0, 1}).boundaryLinks, 0);
}

TEST(Lookahead, SafeShardingsProveViolationFree) {
  verify::CommPlan plan = allReducePlan();
  net::LatencyConfig lat;
  for (const verify::Sharding& sh : {verify::perNodeSharding(plan.shape),
                                     verify::slabSharding(plan.shape)}) {
    verify::LookaheadReport r = verify::analyzeLookahead(plan, sh, lat);
    EXPECT_TRUE(r.ok()) << sh.name;
    EXPECT_GT(r.crossShardEdges, 0) << sh.name;
    EXPECT_GT(r.eventsModeled, 0) << sh.name;
    // The budget is exactly one link crossing: the all-reduce exchanges
    // between adjacent nodes in every dimension.
    double minCrossing = std::min({lat.minLinkCrossingNs(0),
                                   lat.minLinkCrossingNs(1),
                                   lat.minLinkCrossingNs(2)});
    EXPECT_DOUBLE_EQ(r.safeLookaheadNs, minCrossing) << sh.name;
    EXPECT_GT(r.conflictDegree, 0) << sh.name;
    ASSERT_FALSE(r.criticalEdges.empty()) << sh.name;
    // Critical edges are named, not indexed: both endpoints describe the
    // event in human terms.
    EXPECT_NE(r.criticalEdges[0].from.find("node "), std::string::npos);
    EXPECT_NE(r.criticalEdges[0].to.find("node "), std::string::npos);
  }
}

TEST(Lookahead, SplitNodeShardingFiresZeroAndDeadlock) {
  verify::CommPlan plan = accumPlan();
  verify::Sharding split = verify::splitNodeSharding(plan.shape);
  // The safe shardings accept this plan...
  EXPECT_TRUE(
      verify::analyzeLookahead(plan, verify::perNodeSharding(plan.shape))
          .ok());
  // ...but the split sharding turns the receiving node's program order into
  // a zero-latency shard crossing in both directions, so both the
  // zero-lookahead edge and the shard cycle are diagnosed.
  verify::LookaheadReport r = verify::analyzeLookahead(plan, split);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "lookahead.zero"));
  EXPECT_TRUE(hasCheck(r.violations, "lookahead.deadlock"));
  // The diagnostic names the offending edge.
  for (const verify::Violation& v : r.violations) {
    if (v.check == "lookahead.zero") {
      EXPECT_NE(v.detail.find("==>"), std::string::npos);
    }
  }
  EXPECT_DOUBLE_EQ(r.safeLookaheadNs, 0.0);
}

TEST(Lookahead, InflatedClaimFiresSlack) {
  verify::CommPlan plan = allReducePlan();
  verify::Sharding inflated =
      verify::claimedLookaheadSharding(plan.shape, 10000.0);
  verify::LookaheadReport r = verify::analyzeLookahead(plan, inflated);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "lookahead.slack"));
  EXPECT_FALSE(hasCheck(r.violations, "lookahead.zero"));
  EXPECT_FALSE(hasCheck(r.violations, "lookahead.deadlock"));
  // An honest claim at (or below) the true bound is accepted.
  net::LatencyConfig lat;
  verify::Sharding honest = verify::claimedLookaheadSharding(
      plan.shape, std::min({lat.minLinkCrossingNs(0), lat.minLinkCrossingNs(1),
                            lat.minLinkCrossingNs(2)}));
  EXPECT_TRUE(verify::analyzeLookahead(plan, honest).ok());
}

TEST(Lookahead, OracleAcceptsLiveTrafficUnderTheDerivedBound) {
  util::TorusShape shape{4, 2, 1};
  sim::CausalLog log;
  sim::Simulator simulator;
  net::Machine machine(simulator, shape);
  {
    sim::ScopedCausalOracle oracle(log);
    // Multi-hop pings: every link crossing lands in the trace.
    net::oneWayLatencyNs(machine, {0, net::kSlice0}, {2, net::kSlice0}, 64);
    net::oneWayLatencyNs(machine, {0, net::kSlice0}, {5, net::kSlice0}, 0);
  }
  ASSERT_FALSE(log.records().empty());

  net::LatencyConfig lat;
  verify::OracleCheckResult r = verify::checkCausalLog(
      log.records(), shape, verify::perNodeSharding(shape), lat);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.linkEdgesChecked, 0);
  EXPECT_GT(r.crossShardEdges, 0);
  // Every observed crossing is at least the static minimum.
  double minCrossing = std::min({lat.minLinkCrossingNs(0),
                                 lat.minLinkCrossingNs(1),
                                 lat.minLinkCrossingNs(2)});
  EXPECT_GE(r.minObservedNs, minCrossing);

  // The same trace refutes a claim nobody can guarantee.
  verify::OracleCheckResult bad = verify::checkCausalLog(
      log.records(), shape, verify::claimedLookaheadSharding(shape, 1.0e6),
      lat);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(hasCheck(bad.violations, "oracle.lookahead"));
}

TEST(Lookahead, OracleKnobOffLeavesTheScheduleUntouched) {
  auto run = [](sim::CausalLog* log) {
    sim::Simulator simulator;
    net::Machine machine(simulator, {4, 2, 1});
    std::optional<sim::ScopedCausalOracle> oracle;
    if (log != nullptr) oracle.emplace(*log);
    net::oneWayLatencyNs(machine, {0, net::kSlice0}, {2, net::kSlice0}, 64);
    return std::pair{simulator.now(), machine.stats()};
  };
  sim::CausalLog log;
  auto traced = run(&log);
  auto bare = run(nullptr);
  EXPECT_EQ(traced.first, bare.first);
  EXPECT_EQ(traced.second, bare.second);
  EXPECT_FALSE(log.records().empty());
}

TEST(Lookahead, OracleEpochsSeparateResetGenerations) {
  // Multi-hop pings so at least one crossing has an in-simulation parent
  // (the first hop's parent is the host-context post, which the checker
  // skips as unattributed).
  util::TorusShape shape{4, 1, 1};
  sim::CausalLog log;
  sim::Simulator simulator;
  net::Machine machine(simulator, shape);
  sim::ScopedCausalOracle oracle(log);
  net::oneWayLatencyNs(machine, {0, net::kSlice0}, {2, net::kSlice0}, 0);
  simulator.reset();
  std::size_t firstGen = log.records().size();
  net::oneWayLatencyNs(machine, {0, net::kSlice0}, {2, net::kSlice0}, 0);
  ASSERT_GT(log.records().size(), firstGen);
  // Seq numbers restart after reset; the epoch keeps the generations from
  // aliasing in the checker's (epoch, seq) parent lookup.
  EXPECT_EQ(log.records().front().epoch, 0);
  EXPECT_EQ(log.records().back().epoch, 1);
  verify::OracleCheckResult r = verify::checkCausalLog(
      log.records(), shape, verify::perNodeSharding(shape));
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.crossShardEdges, 0);
}

}  // namespace
}  // namespace anton
