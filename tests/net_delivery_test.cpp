// Functional delivery semantics: remote writes commit payload bytes, counted
// writes bump the named counter, accumulation memories add 4-byte-wise,
// FIFOs queue arbitrary messages, and multicast fans out along the
// precomputed table entries.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "net/machine.hpp"
#include "sim/simulator.hpp"

namespace anton::net {
namespace {

using sim::Task;

struct Fixture {
  sim::Simulator sim;
  Machine machine;
  explicit Fixture(util::TorusShape shape = {4, 4, 4}, MachineConfig cfg = {})
      : machine(sim, shape, cfg) {}
};

TEST(Delivery, RemoteWriteCommitsPayload) {
  Fixture f;
  std::vector<std::uint8_t> data(64);
  std::iota(data.begin(), data.end(), std::uint8_t{1});
  NetworkClient::SendArgs args;
  args.dst = {5, kSlice2};
  args.counterId = 3;
  args.address = 1024;
  args.payload = makePayload(data.data(), data.size());
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  NetworkClient& dst = f.machine.client({5, kSlice2});
  EXPECT_EQ(dst.counterValue(3), 1u);
  EXPECT_EQ(dst.counterValue(0), 0u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::to_integer<std::uint8_t>(dst.memory()[1024 + i]), data[i]);
  }
}

TEST(Delivery, CountersAreCumulativeAcrossMessages) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.dst = {1, kSlice0};
  args.counterId = 7;
  for (int i = 0; i < 5; ++i) f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  EXPECT_EQ(f.machine.client({1, kSlice0}).counterValue(7), 5u);
}

TEST(Delivery, WriteWithoutCounterBumpsNothing) {
  Fixture f;
  std::uint64_t v = 0xdeadbeef;
  NetworkClient::SendArgs args;
  args.dst = {1, kSlice0};
  args.counterId = kNoCounter;
  args.address = 16;
  args.payload = makePayload(&v, sizeof v);
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  NetworkClient& dst = f.machine.client({1, kSlice0});
  for (int c = 0; c < dst.numCounters(); ++c) EXPECT_EQ(dst.counterValue(c), 0u);
  EXPECT_EQ(dst.read<std::uint64_t>(16), v);
}

TEST(Delivery, AccumulationAddsFourByteWise) {
  Fixture f;
  AccumulationMemory& acc = f.machine.accum(2, 0);
  std::int32_t init[2] = {100, -50};
  acc.hostWrite(0, init, sizeof init);

  std::int32_t add1[2] = {7, 3};
  std::int32_t add2[2] = {-10, 40};
  NetworkClient::SendArgs args;
  args.type = PacketType::kAccum;
  args.dst = {2, kAccum0};
  args.counterId = 1;
  args.payload = makePayload(add1, sizeof add1);
  f.machine.client({0, kSlice0}).post(args);
  args.payload = makePayload(add2, sizeof add2);
  f.machine.client({1, kSlice1}).post(args);
  f.sim.run();

  EXPECT_EQ(acc.read<std::int32_t>(0), 97);
  EXPECT_EQ(acc.read<std::int32_t>(4), -7);
  EXPECT_EQ(acc.counterValue(1), 2u);
}

TEST(Delivery, AccumulationIsOrderIndependent) {
  // Integer accumulation commutes: any arrival order yields the same sum.
  std::int64_t total = 0;
  for (int trial = 0; trial < 3; ++trial) {
    MachineConfig cfg;
    cfg.adaptiveRouting = trial % 2 == 0;
    Fixture f({4, 4, 4}, cfg);
    NetworkClient::SendArgs args;
    args.type = PacketType::kAccum;
    args.dst = {0, kAccum1};
    args.counterId = 0;
    for (int i = 0; i < 20; ++i) {
      std::int32_t v = (i * 37) % 13 - 6;
      args.payload = makePayload(&v, 4);
      f.machine.client({(i % 3) + 1, kSlice0}).post(args);
    }
    f.sim.run();
    std::int64_t sum = f.machine.accum(0, 1).read<std::int32_t>(0);
    if (trial == 0) total = sum;
    EXPECT_EQ(sum, total);
  }
}

TEST(Delivery, AccumToNonAccumClientThrows) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.type = PacketType::kAccum;
  args.dst = {1, kSlice0};
  std::int32_t v = 1;
  args.payload = makePayload(&v, 4);
  f.machine.client({0, kSlice0}).post(args);
  EXPECT_THROW(f.sim.run(), std::logic_error);
}

TEST(Delivery, MisalignedAccumulationThrows) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.type = PacketType::kAccum;
  args.dst = {1, kAccum0};
  args.address = 2;  // not 4-byte aligned
  std::int32_t v = 1;
  args.payload = makePayload(&v, 4);
  f.machine.client({0, kSlice0}).post(args);
  EXPECT_THROW(f.sim.run(), std::logic_error);
}

TEST(Delivery, AccumulationMemoryCannotSend) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.dst = {1, kSlice0};
  EXPECT_THROW(f.machine.accum(0, 0).post(args), std::logic_error);
}

TEST(Delivery, OutOfRangeWriteThrows) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.dst = {1, kSlice0};
  args.address = std::uint32_t(f.machine.client({1, kSlice0}).memoryBytes() - 4);
  std::uint64_t v = 0;
  args.payload = makePayload(&v, 8);
  f.machine.client({0, kSlice0}).post(args);
  EXPECT_THROW(f.sim.run(), std::out_of_range);
}

Task fifoReader(Machine& m, ClientAddr a, int n, std::vector<std::uint32_t>& out) {
  ProcessingSlice& s = static_cast<ProcessingSlice&>(m.client(a));
  for (int i = 0; i < n; ++i) {
    PacketPtr p = co_await s.receiveFifo();
    std::uint32_t v;
    std::memcpy(&v, p->payload->data(), 4);
    out.push_back(v);
  }
}

TEST(Delivery, FifoDeliversMessagesInOrder) {
  Fixture f;
  std::vector<std::uint32_t> got;
  f.sim.spawn(fifoReader(f.machine, {1, kSlice0}, 4, got));
  NetworkClient::SendArgs args;
  args.type = PacketType::kFifo;
  args.dst = {1, kSlice0};
  args.inOrder = true;
  for (std::uint32_t v : {10u, 20u, 30u, 40u}) {
    args.payload = makePayload(&v, 4);
    f.machine.client({0, kSlice0}).post(args);
  }
  f.sim.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{10, 20, 30, 40}));
}

TEST(Delivery, FifoReaderBlocksUntilMessageArrives) {
  Fixture f;
  std::vector<std::uint32_t> got;
  f.sim.spawn(fifoReader(f.machine, {1, kSlice0}, 1, got));
  f.sim.runUntil(sim::us(1));
  EXPECT_TRUE(got.empty());
  NetworkClient::SendArgs args;
  args.type = PacketType::kFifo;
  args.dst = {1, kSlice0};
  std::uint32_t v = 99;
  args.payload = makePayload(&v, 4);
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  EXPECT_EQ(got, std::vector<std::uint32_t>{99});
}

TEST(Delivery, FifoToNonSliceThrows) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.type = PacketType::kFifo;
  args.dst = {1, kHtis};
  f.machine.client({0, kSlice0}).post(args);
  EXPECT_THROW(f.sim.run(), std::logic_error);
}

TEST(Delivery, FifoTracksHighWaterMark) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.type = PacketType::kFifo;
  args.dst = {1, kSlice1};
  for (int i = 0; i < 6; ++i) f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  ProcessingSlice& s = f.machine.slice(1, 1);
  EXPECT_EQ(s.fifoDepth(), 6u);
  EXPECT_EQ(s.fifoHighWater(), 6u);
}

TEST(Multicast, DeliversToLocalClientsAndForwards) {
  // Pattern: at the source node deliver to HTIS and forward +X; at the
  // +X neighbor deliver to HTIS only.
  Fixture f;
  const int pat = 17;
  MulticastEntry atSrc;
  atSrc.clientMask = std::uint8_t(1u << kHtis);
  atSrc.linkMask = std::uint8_t(1u << RingLayout::adapterIndex(0, +1));
  f.machine.setMulticastPattern(0, pat, atSrc);
  MulticastEntry atNext;
  atNext.clientMask = std::uint8_t(1u << kHtis);
  f.machine.setMulticastPattern(1, pat, atNext);

  NetworkClient::SendArgs args;
  args.multicastPattern = pat;
  args.counterId = 2;
  std::uint32_t v = 7;
  args.payload = makePayload(&v, 4);
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  EXPECT_EQ(f.machine.htis(0).counterValue(2), 1u);
  EXPECT_EQ(f.machine.htis(1).counterValue(2), 1u);
  EXPECT_EQ(f.machine.htis(0).read<std::uint32_t>(0), 7u);
  EXPECT_EQ(f.machine.htis(1).read<std::uint32_t>(0), 7u);
  // One injection, two deliveries, one link crossing, one fork.
  EXPECT_EQ(f.machine.stats().packetsInjected, 1u);
  EXPECT_EQ(f.machine.stats().packetsDelivered, 2u);
  EXPECT_EQ(f.machine.stats().linkTraversals, 1u);
  EXPECT_EQ(f.machine.stats().multicastForks, 1u);
}

TEST(Multicast, ChainAlongDimensionReachesAllNodes) {
  // A +X chain of length 3: each node delivers locally and forwards on.
  Fixture f({4, 1, 1});
  const int pat = 1;
  for (int n = 0; n < 3; ++n) {
    MulticastEntry e;
    e.clientMask = std::uint8_t(1u << kSlice0);
    if (n < 2) e.linkMask = std::uint8_t(1u << RingLayout::adapterIndex(0, +1));
    f.machine.setMulticastPattern(n + 1, pat, e);
  }
  MulticastEntry start;
  start.linkMask = std::uint8_t(1u << RingLayout::adapterIndex(0, +1));
  f.machine.setMulticastPattern(0, pat, start);

  NetworkClient::SendArgs args;
  args.multicastPattern = pat;
  args.counterId = 0;
  f.machine.client({0, kSlice1}).post(args);
  f.sim.run();
  for (int n = 1; n <= 3; ++n)
    EXPECT_EQ(f.machine.slice(n, 0).counterValue(0), 1u) << "node " << n;
  EXPECT_EQ(f.machine.slice(0, 0).counterValue(0), 0u);
}

TEST(Multicast, EmptyPatternThrows) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.multicastPattern = 9;  // never installed
  // Injection routes synchronously at the source node, so the empty table
  // entry is detected immediately.
  EXPECT_THROW(f.machine.client({0, kSlice0}).post(args), std::logic_error);
}

TEST(Multicast, SenderOverheadIsOneInjection) {
  // Multicast to 5 nodes costs the sender one packet injection; replicas are
  // created in the network (SC10 III-A: lower sender overhead + bandwidth).
  Fixture f({8, 1, 1});
  const int pat = 3;
  for (int n = 0; n < 6; ++n) {
    MulticastEntry e;
    if (n > 0) e.clientMask = std::uint8_t(1u << kSlice0);
    if (n < 5) e.linkMask = std::uint8_t(1u << RingLayout::adapterIndex(0, +1));
    f.machine.setMulticastPattern(n, pat, e);
  }
  NetworkClient::SendArgs args;
  args.multicastPattern = pat;
  args.counterId = 0;
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  EXPECT_EQ(f.machine.stats().packetsInjected, 1u);
  EXPECT_EQ(f.machine.stats().packetsDelivered, 5u);
  // Unicast would need 1+2+3+4+5 = 15 link traversals; the chain uses 5.
  EXPECT_EQ(f.machine.stats().linkTraversals, 5u);
}

TEST(Send, CoroutineSendChargesInjectionOccupancyToCaller) {
  Fixture f;
  double freeAt = -1;
  auto sender = [](Fixture& fx, double& out) -> Task {
    NetworkClient::SendArgs args;
    args.dst = {1, kSlice0};
    args.counterId = 0;
    co_await fx.machine.client({0, kSlice0}).send(args);
    out = sim::toNs(fx.sim.now());
  };
  f.sim.spawn(sender(f, freeAt));
  f.sim.run();
  // Pipelined injection: the caller is busy for the injection slot (11 ns
  // for a header-only packet), not the full 36 ns assembly latency.
  EXPECT_DOUBLE_EQ(freeAt, 11.0);
  EXPECT_EQ(f.machine.client({1, kSlice0}).counterValue(0), 1u);
}

TEST(Send, PayloadOver256BytesThrows) {
  EXPECT_THROW(makeZeroPayload(257), std::length_error);
  EXPECT_THROW(makePayload(nullptr, 300), std::length_error);
}

TEST(Wait, CounterWaitOnAlreadyReachedTargetStillCostsPoll) {
  Fixture f;
  NetworkClient::SendArgs args;
  args.dst = {1, kSlice0};
  args.counterId = 0;
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  double resumedAt = -1;
  auto waiter = [](Fixture& fx, double& out) -> Task {
    NetworkClient& c = fx.machine.client({1, kSlice0});
    double t0 = sim::toNs(fx.sim.now());
    co_await c.waitCounter(0, 1);
    out = sim::toNs(fx.sim.now()) - t0;
  };
  f.sim.spawn(waiter(f, resumedAt));
  f.sim.run();
  EXPECT_DOUBLE_EQ(resumedAt, 42.0);
}

TEST(Wait, MultipleWaitersAllWake) {
  Fixture f;
  int woke = 0;
  auto waiter = [](Fixture& fx, int& w) -> Task {
    co_await fx.machine.client({1, kSlice0}).waitCounter(0, 3);
    ++w;
  };
  for (int i = 0; i < 4; ++i) f.sim.spawn(waiter(f, woke));
  NetworkClient::SendArgs args;
  args.dst = {1, kSlice0};
  args.counterId = 0;
  for (int i = 0; i < 3; ++i) f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  EXPECT_EQ(woke, 4);
}

TEST(Wait, BadCounterIdThrows) {
  Fixture f;
  NetworkClient& c = f.machine.client({0, kSlice0});
  EXPECT_THROW(c.waitCounter(-1, 1), std::out_of_range);
  EXPECT_THROW(c.waitCounter(c.numCounters(), 1), std::out_of_range);
}

}  // namespace
}  // namespace anton::net
