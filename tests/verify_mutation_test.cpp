// Randomized plan-mutation coverage for the static verifier.
//
// Take one known-clean extracted plan (the dim-ordered all-reduce on a
// 2x2x2 torus: it has counted waits, multicast trees, and parity
// double-buffered receive regions — one instance of everything the checks
// reason about), apply one seeded single-operation mutation per iteration,
// and require the verifier to flag every single one. Three mutation kinds
// mirror the three check families: a counter-expectation count bump, a
// multicast tree edge removal, and a buffer-free reorder (collapsing the
// parity copy so the free no longer precedes the next round's write).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/allreduce.hpp"
#include "net/machine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "verify/checks.hpp"
#include "verify/plan.hpp"

namespace anton::verify {
namespace {

CommPlan cleanAllReducePlan() {
  sim::Simulator sim;
  net::Machine machine(sim, {2, 2, 2});
  core::DimOrderedAllReduce reduce(machine);
  CommPlan p;
  p.name = "allreduce-2x2x2";
  p.shape = machine.shape();
  reduce.appendPlan(p, "");
  return p;
}

/// (multicast index, node) pairs whose table row forwards on at least one
/// link — the candidates for a tree-edge-removal mutation.
std::vector<std::pair<std::size_t, int>> forwardingRows(const CommPlan& p) {
  std::vector<std::pair<std::size_t, int>> rows;
  for (std::size_t mi = 0; mi < p.multicasts.size(); ++mi)
    for (const auto& [node, entry] : p.multicasts[mi].entries)
      if (entry.linkMask != 0) rows.push_back({mi, node});
  return rows;
}

TEST(VerifyMutation, EverySeededSingleOpMutationIsFlagged) {
  const CommPlan base = cleanAllReducePlan();
  ASSERT_TRUE(verifyPlan(base).ok());
  const auto rows = forwardingRows(base);
  ASSERT_FALSE(rows.empty());
  ASSERT_FALSE(base.expectations.empty());
  ASSERT_FALSE(base.buffers.empty());

  sim::Rng rng(20100816);  // fixed seed: the run is reproducible
  constexpr int kIterations = 36;
  int byKind[3] = {0, 0, 0};
  for (int i = 0; i < kIterations; ++i) {
    CommPlan p = base;
    const int kind = int(rng.below(3));
    std::string what;
    switch (kind) {
      case 0: {  // count bump: one wait site expects extra packets
        CounterExpectation& e =
            p.expectations[rng.below(p.expectations.size())];
        e.perRound += 1 + rng.below(3);
        what = "count bump at '" + e.site + "'";
        break;
      }
      case 1: {  // tree edge removal: clear one set forwarding-link bit
        const auto [mi, node] = rows[rng.below(rows.size())];
        std::uint8_t& mask = p.multicasts[mi].entries[node].linkMask;
        std::vector<int> bits;
        for (int b = 0; b < 8; ++b)
          if (mask & (1u << b)) bits.push_back(b);
        mask = std::uint8_t(mask & ~(1u << bits[rng.below(bits.size())]));
        what = "tree edge removed at node " + std::to_string(node) +
               " of pattern " +
               std::to_string(p.multicasts[mi].patternId);
        break;
      }
      default: {  // buffer-free reorder: the parity copy disappears, so the
                  // next round's write is no longer ordered after the free
        BufferPlan& b = p.buffers[rng.below(p.buffers.size())];
        b.copies = 1;
        what = "buffer-free reorder on '" + b.name + "'";
        break;
      }
    }
    VerifyResult r = verifyPlan(p);
    EXPECT_FALSE(r.ok())
        << "seeded mutation " << i << " (" << what << ") was not flagged";
    ++byKind[kind];
  }
  // The fixed seed must exercise all three mutation kinds, or the test is
  // weaker than it claims.
  EXPECT_GT(byKind[0], 0);
  EXPECT_GT(byKind[1], 0);
  EXPECT_GT(byKind[2], 0);
}

}  // namespace
}  // namespace anton::verify
