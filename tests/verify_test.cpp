// The static communication-plan verifier: a well-formed plan must pass
// cleanly, and each check must fire on the specific corruption it guards
// against — a miscounted counter, a cyclic multicast tree, a pattern id
// beyond the 256-entry tables, a premature buffer reuse, and a
// non-dimension-ordered degraded route. Also covers the plan extractors
// (all-reduce and full MD app) against the live subsystems they mirror.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/allreduce.hpp"
#include "md/anton_app.hpp"
#include "net/latency.hpp"
#include "net/machine.hpp"
#include "sim/simulator.hpp"
#include "verify/checks.hpp"
#include "verify/plan.hpp"
#include "verify/snapshot.hpp"

namespace anton::verify {
namespace {

using net::ClientAddr;
using net::kSlice0;

bool hasCheck(const std::vector<Violation>& vs, const std::string& check) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.check == check; });
}

const Violation* findCheck(const std::vector<Violation>& vs,
                           const std::string& check) {
  auto it = std::find_if(vs.begin(), vs.end(),
                         [&](const Violation& v) { return v.check == check; });
  return it == vs.end() ? nullptr : &*it;
}

/// Minimal well-formed plan: a counted ping 0 -> 1 answered by a counted
/// ack 1 -> 0, with the ping slot freed by the wait in "recv". The ack is
/// what makes the slot's reuse safe (the §4 argument in miniature): the
/// sender observes it before issuing the next round's ping.
CommPlan pingPlan() {
  CommPlan p;
  p.name = "ping";
  p.shape = {2, 1, 1};
  p.addPhaseEdge("send", "recv");
  p.addPhaseEdge("recv", "ackwait");

  PlannedWrite ping;
  ping.phase = "send";
  ping.srcNode = 0;
  ping.dst = {1, kSlice0};
  ping.counterId = 0;
  ping.inOrder = true;
  p.writes.push_back(ping);

  PlannedWrite ack;
  ack.phase = "recv";
  ack.srcNode = 1;
  ack.dst = {0, kSlice0};
  ack.counterId = 1;
  ack.inOrder = true;
  p.writes.push_back(ack);

  CounterExpectation data;
  data.site = "ping.data";
  data.phase = "recv";
  data.client = {1, kSlice0};
  data.counterId = 0;
  data.perRound = 1;
  data.bySource[0] = 1;
  data.recoveryArmed = true;
  p.expectations.push_back(data);

  CounterExpectation ackw;
  ackw.site = "ping.ack";
  ackw.phase = "ackwait";
  ackw.client = {0, kSlice0};
  ackw.counterId = 1;
  ackw.perRound = 1;
  ackw.bySource[1] = 1;
  ackw.recoveryArmed = true;
  p.expectations.push_back(ackw);

  BufferPlan slot;
  slot.name = "ping.slot";
  slot.client = {1, kSlice0};
  slot.bytes = 32;
  slot.copies = 1;
  slot.freePhase = "recv";
  slot.writers.push_back({0, "send"});
  p.buffers.push_back(slot);
  return p;
}

// --- the clean plan --------------------------------------------------------

TEST(VerifyPlan, WellFormedPingPlanPasses) {
  VerifyResult r = verifyPlan(pingPlan());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.lints.empty());
  EXPECT_EQ(r.routesTraced, 2);
  EXPECT_EQ(r.buffersTotal, 1);
  EXPECT_EQ(r.buffersChecked, 1);
  EXPECT_FALSE(r.sampled);
}

// --- check 1: count consistency -------------------------------------------

TEST(VerifyPlan, MiscountedCounterIsACountViolation) {
  CommPlan p = pingPlan();
  p.expectations[0].perRound = 2;  // the plan only delivers 1 packet/round
  p.expectations[0].bySource[0] = 2;
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "count");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->counterId, 0);
  EXPECT_EQ(v->node, 1);
  EXPECT_EQ(v->site, "ping.data");
  EXPECT_NE(v->detail.find("delivers 1"), std::string::npos);
  EXPECT_NE(v->detail.find("expects 2"), std::string::npos);
}

TEST(VerifyPlan, WrongPerSourceBreakdownIsFlaggedEvenWhenTotalsMatch) {
  CommPlan p = pingPlan();
  p.expectations[0].bySource.clear();
  p.expectations[0].bySource[1] = 1;  // credits the wrong source node
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "count.by-source"));
  EXPECT_FALSE(hasCheck(r.violations, "count"));  // totals still agree
}

TEST(VerifyPlan, CounterWithNoWaitSiteIsALint) {
  CommPlan p = pingPlan();
  PlannedWrite stray = p.writes[0];
  stray.counterId = 5;  // bumps a counter nobody ever waits on
  p.writes.push_back(stray);
  VerifyResult r = verifyPlan(p);
  EXPECT_TRUE(r.ok()) << "an unwaited counter is a lint, not an error";
  const Violation* v = findCheck(r.lints, "count.unwaited");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->counterId, 5);
}

TEST(VerifyPlan, WriteReferencingUndeclaredPatternIsFlagged) {
  CommPlan p = pingPlan();
  p.writes[0].pattern = 9;  // no MulticastPlanEntry declares id 9
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "count.unknown-pattern");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->patternId, 9);
}

// --- check 2: multicast well-formedness -----------------------------------

/// X+ chain pattern over `len` nodes of a {len,1,1} torus: each node
/// forwards along X+, the last one delivers to slice0.
MulticastPlanEntry chainPattern(int id, int len) {
  MulticastPlanEntry m;
  m.patternId = id;
  m.srcNode = 0;
  for (int n = 0; n + 1 < len; ++n)
    m.entries[n] = {.clientMask = 0, .linkMask = 1u << 0};
  m.entries[len - 1] = {.clientMask = 1u << kSlice0, .linkMask = 0};
  m.declaredDests.push_back({len - 1, kSlice0});
  return m;
}

CommPlan multicastPlan(MulticastPlanEntry m, util::TorusShape shape) {
  CommPlan p;
  p.name = "mcast";
  p.shape = shape;
  p.addPhase("fanout");
  PlannedWrite w;
  w.phase = "fanout";
  w.srcNode = m.srcNode;
  w.pattern = m.patternId;
  p.writes.push_back(w);
  p.multicasts.push_back(std::move(m));
  return p;
}

TEST(VerifyPlan, CyclicMulticastTreeIsFlagged) {
  // Every node of a {4,1,1} ring forwards along X+: the walk wraps back to
  // the source. The delivery at node 2 still happens, but the tree is
  // cyclic (a packet replica chases its own tail on the real fabric).
  MulticastPlanEntry m;
  m.patternId = 7;
  m.srcNode = 0;
  for (int n = 0; n < 4; ++n)
    m.entries[n] = {.clientMask = std::uint8_t(n == 2 ? 1u << kSlice0 : 0),
                    .linkMask = 1u << 0};
  m.declaredDests.push_back({2, kSlice0});
  TreeExpansion x = expandTree(m, {4, 1, 1});
  EXPECT_TRUE(x.cycle);

  VerifyResult r = verifyPlan(multicastPlan(std::move(m), {4, 1, 1}));
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "multicast.cycle");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->patternId, 7);
}

TEST(VerifyPlan, PatternIdBeyondTheTablesIsFlagged) {
  MulticastPlanEntry m = chainPattern(net::kMulticastPatterns, 2);
  VerifyResult r = verifyPlan(multicastPlan(std::move(m), {2, 1, 1}));
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "multicast.pattern-limit");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->patternId, net::kMulticastPatterns);
}

TEST(VerifyPlan, UnreachedDeclaredDestinationIsFlagged) {
  MulticastPlanEntry m = chainPattern(3, 2);
  m.declaredDests.push_back({0, kSlice0});  // the tree never delivers here
  VerifyResult r = verifyPlan(multicastPlan(std::move(m), {2, 1, 1}));
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "multicast.dests");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("never reached"), std::string::npos);
}

TEST(VerifyPlan, ReplicaIntoMissingTableEntryIsFlagged) {
  MulticastPlanEntry m = chainPattern(3, 2);
  m.entries.erase(1);  // the forwarded replica finds no row at node 1
  VerifyResult r = verifyPlan(multicastPlan(std::move(m), {2, 1, 1}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "multicast.empty-entry"));
}

TEST(VerifyPlan, NonDimOrderedFanoutPathIsFlagged) {
  // X+ then Y+ then X+ again on a {3,3,1} torus: the X run resumes after
  // Y intervened — forbidden on the dimension-ordered wormhole fabric.
  util::TorusShape shape{3, 3, 1};
  MulticastPlanEntry m;
  m.patternId = 4;
  m.srcNode = 0;
  m.entries[0] = {.clientMask = 0, .linkMask = 1u << 0};  // X+
  m.entries[1] = {.clientMask = 0, .linkMask = 1u << 2};  // Y+
  m.entries[util::torusIndex({1, 1, 0}, shape)] = {.clientMask = 0,
                                                   .linkMask = 1u << 0};  // X+
  m.entries[util::torusIndex({2, 1, 0}, shape)] = {
      .clientMask = 1u << kSlice0, .linkMask = 0};
  m.declaredDests.push_back({util::torusIndex({2, 1, 0}, shape), kSlice0});
  TreeExpansion x = expandTree(m, shape);
  EXPECT_FALSE(x.dimOrdered);
  EXPECT_FALSE(x.cycle);

  VerifyResult r = verifyPlan(multicastPlan(std::move(m), shape));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "multicast.dim-order"));
}

TEST(VerifyPlan, DeadTableEntryIsALint) {
  MulticastPlanEntry m = chainPattern(3, 2);
  m.entries[0].linkMask = 0;                         // chain cut at source...
  m.entries[0].clientMask = 1u << kSlice0;           // ...delivers locally
  m.declaredDests.assign({ClientAddr{0, kSlice0}});  // intent matches
  VerifyResult r = verifyPlan(multicastPlan(std::move(m), {2, 1, 1}));
  EXPECT_TRUE(r.ok()) << "a dead table row wastes a slot but breaks nothing";
  const Violation* v = findCheck(r.lints, "multicast.dead-entry");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->node, 1);  // the orphaned row
}

// --- check 3: buffer-reuse safety -----------------------------------------

TEST(VerifyPlan, PrematureBufferReuseIsFlagged) {
  // Drop the ack: nothing orders the round r+1 ping after the round r wait,
  // so the sender can overwrite the slot before the receiver has read it.
  CommPlan p = pingPlan();
  p.writes.erase(p.writes.begin() + 1);
  p.expectations.erase(p.expectations.begin() + 1);
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "buffer-reuse");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->site, "ping.slot");
  EXPECT_NE(v->detail.find("before the copy is free"), std::string::npos);
}

TEST(VerifyPlan, DoubleBufferingAbsorbsOneRoundOfSlack) {
  // Same ack-free plan, but with two copies: round r+2 writes are ordered
  // after the round r free via the receiver's own round wrap... except the
  // sender still has no cross-node ordering, so even copies=2 must fail.
  CommPlan p = pingPlan();
  p.writes.erase(p.writes.begin() + 1);
  p.expectations.erase(p.expectations.begin() + 1);
  p.buffers[0].copies = 2;
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "buffer-reuse"));

  // Restoring the ack makes copies=1 — and a fortiori copies=2 — safe.
  CommPlan good = pingPlan();
  good.buffers[0].copies = 2;
  EXPECT_TRUE(verifyPlan(good).ok());
}

TEST(VerifyPlan, UnknownFreePhaseIsFlagged) {
  CommPlan p = pingPlan();
  p.buffers[0].freePhase = "no-such-phase";
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "buffer-reuse.bad-phase"));
}

TEST(VerifyPlan, BufferSamplingIsReportedHonestly) {
  CommPlan p = pingPlan();
  for (int i = 0; i < 9; ++i) {
    BufferPlan b = p.buffers[0];
    b.name = "ping.slot." + std::to_string(i);
    p.buffers.push_back(b);
  }
  VerifyOptions opts;
  opts.maxBufferOwners = 4;
  VerifyResult r = verifyPlan(p, opts);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.sampled);
  EXPECT_EQ(r.buffersTotal, 10);
  EXPECT_LT(r.buffersChecked, r.buffersTotal);
  EXPECT_GT(r.buffersChecked, 0);
}

// --- check 4: deadlock freedom of unicast routes --------------------------

TEST(VerifyPlan, HealthyRoutesAreDimOrdered) {
  util::TorusShape shape{4, 4, 4};
  RouteTrace tr = traceUnicastRoute(0, util::torusIndex({2, 3, 1}, shape),
                                    shape, {});
  EXPECT_TRUE(tr.dimOrdered);
  EXPECT_FALSE(tr.degraded);
  EXPECT_FALSE(tr.stalled);
  // x: 2 hops, y: one hop the short way around the ring, z: 1 hop.
  EXPECT_EQ(tr.dims.size(), 4u);
  EXPECT_EQ(tr.nodes.back(), util::torusIndex({2, 3, 1}, shape));
}

TEST(VerifyPlan, RerouteAtTheSourceStaysDimOrdered) {
  util::TorusShape shape{4, 4, 1};
  RouteTrace tr = traceUnicastRoute(0, util::torusIndex({1, 1, 0}, shape),
                                    shape, {{0, 0, +1}});
  EXPECT_TRUE(tr.degraded);
  EXPECT_TRUE(tr.dimOrdered) << "y-then-x never resumes a finished dimension";
  EXPECT_FALSE(tr.stalled);
}

CommPlan routePlan(util::TorusShape shape, int dstNode) {
  CommPlan p;
  p.name = "route";
  p.shape = shape;
  p.addPhase("send");
  PlannedWrite w;
  w.phase = "send";
  w.srcNode = 0;
  w.dst = {dstNode, kSlice0};
  w.counterId = net::kNoCounter;
  p.writes.push_back(w);
  return p;
}

TEST(VerifyPlan, MidRouteRerouteBreakingDimOrderIsFlagged) {
  // 0 -> (2,1,0) with node 1's X+ link down: x, then y around the outage,
  // then x again — the resumed X run is the classic wormhole deadlock risk.
  util::TorusShape shape{4, 4, 1};
  VerifyOptions opts;
  opts.downLinks.push_back({util::torusIndex({1, 0, 0}, shape), 0, +1});
  CommPlan p = routePlan(shape, util::torusIndex({2, 1, 0}, shape));
  VerifyResult r = verifyPlan(p, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "route.dim-order"));

  // The same finding demotes to a lint when route issues are advisory.
  opts.routeIssuesAreErrors = false;
  VerifyResult lint = verifyPlan(p, opts);
  EXPECT_TRUE(lint.ok());
  EXPECT_TRUE(hasCheck(lint.lints, "route.dim-order"));
}

TEST(VerifyPlan, AxisAlignedRouteThroughDeadLinkStalls) {
  // 0 -> (2,0,0) with node 1's X+ down: at node 1 the only productive
  // dimension is dead, so the packet stalls at the adapter.
  util::TorusShape shape{4, 4, 1};
  VerifyOptions opts;
  opts.downLinks.push_back({util::torusIndex({1, 0, 0}, shape), 0, +1});
  VerifyResult r =
      verifyPlan(routePlan(shape, util::torusIndex({2, 0, 0}, shape)), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(hasCheck(r.violations, "route.stalled"));
}

TEST(VerifyPlan, CleanRerouteIsADegradedLint) {
  util::TorusShape shape{4, 4, 1};
  VerifyOptions opts;
  opts.downLinks.push_back({0, 0, +1});
  VerifyResult r =
      verifyPlan(routePlan(shape, util::torusIndex({1, 1, 0}, shape)), opts);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(hasCheck(r.lints, "route.degraded"));
}

// --- check 5: recovery coverage -------------------------------------------

TEST(VerifyPlan, UnarmedCountedWaitIsARecoveryLint) {
  CommPlan p = pingPlan();
  p.expectations[0].recoveryArmed = false;
  VerifyResult r = verifyPlan(p);
  EXPECT_TRUE(r.ok()) << "coverage gaps are lints, not errors";
  const Violation* v = findCheck(r.lints, "recovery-coverage");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->site, "ping.data");
  EXPECT_EQ(v->counterId, 0);
}

// --- plan extractors against the live subsystems --------------------------

TEST(VerifyPlan, AllReducePlanVerifiesCleanly) {
  sim::Simulator sim;
  net::Machine machine(sim, {4, 4, 4});
  core::DimOrderedAllReduce ar(machine);
  CommPlan p;
  p.name = "allreduce";
  p.shape = machine.shape();
  ar.appendPlan(p, "");
  VerifyResult r = verifyPlan(p);
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? std::string()
                              : r.violations.front().check + ": " +
                                    r.violations.front().detail);
  // The live all-reduce uses plain counter waits: every dimension's wait
  // site must surface as a recovery-coverage gap.
  EXPECT_TRUE(hasCheck(r.lints, "recovery-coverage"));
}

TEST(VerifyPlan, ExtractedMdPlanVerifiesCleanly) {
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.thermostatTau = 0.0;
  cfg.recoveryTimeoutUs = 5000.0;  // arm RecoverableCountedWrite sites

  sim::Simulator sim;
  net::Machine machine(sim, {4, 4, 4});
  md::AntonMdApp app(machine, sys, cfg);
  CommPlan p = app.extractCommPlan();

  EXPECT_EQ(p.shape.size(), 64);
  EXPECT_FALSE(p.writes.empty());
  EXPECT_FALSE(p.expectations.empty());
  EXPECT_FALSE(p.multicasts.empty());
  EXPECT_FALSE(p.buffers.empty());

  VerifyResult r = verifyPlan(p);
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? std::string()
                              : r.violations.front().check + ": " +
                                    r.violations.front().detail);
  // With recovery on, every counted wait of the superstep is armed —
  // position/bond/force, the grid spread, the potential halo, the FFT
  // passes, the all-reduce and the migration flush. The recovery-coverage
  // lint (now gating in verify_plans) must find nothing.
  const Violation* gap = findCheck(r.lints, "recovery-coverage");
  EXPECT_EQ(gap, nullptr)
      << (gap ? gap->site + ": " + gap->detail : std::string());
}

// Each corruption of the extracted MD plan must be caught — the end-to-end
// guarantee that the verifier would catch a real planner regression.
TEST(VerifyPlan, CorruptedMdPlanIsCaught) {
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.thermostatTau = 0.0;

  sim::Simulator sim;
  net::Machine machine(sim, {4, 4, 4});
  md::AntonMdApp app(machine, sys, cfg);
  const CommPlan base = app.extractCommPlan();
  ASSERT_TRUE(verifyPlan(base).ok());

  CommPlan off = base;  // one packet short on one wait site
  off.expectations[0].perRound += 1;
  EXPECT_TRUE(hasCheck(verifyPlan(off).violations, "count"));

  CommPlan cut = base;  // sever one multicast tree mid-walk
  for (MulticastPlanEntry& m : cut.multicasts)
    if (m.entries.size() > 2) {
      auto it = m.entries.begin();
      if (it->first == m.srcNode) ++it;
      m.entries.erase(it);
      break;
    }
  VerifyResult rc = verifyPlan(cut);
  EXPECT_FALSE(rc.ok());
}

// --- checks 3+6: the event-granular happens-before graph -------------------

TEST(VerifyEvents, SingleBufferedAllReduceIsFlaggedAtEventLevel) {
  sim::Simulator sim;
  net::Machine machine(sim, {2, 2, 2});
  core::DimOrderedAllReduce ar(machine);
  CommPlan p;
  p.name = "allreduce";
  p.shape = machine.shape();
  ar.appendPlan(p, "");
  ASSERT_TRUE(verifyPlan(p).ok()) << "parity double buffering is safe";

  // Phase order alone cannot distinguish this variant from the shipped one:
  // the all-reduce sends *before* waiting inside each dimension phase, so
  // with a single receive copy the neighbour's round-r+1 partial can land
  // while round r is still being read. Only the intra-phase event order
  // exposes the race.
  for (BufferPlan& b : p.buffers) b.copies = 1;
  VerifyResult r = verifyPlan(p);
  EXPECT_FALSE(r.ok());
  const Violation* v = findCheck(r.violations, "buffer-reuse");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("no happens-before path"), std::string::npos)
      << v->detail;
  EXPECT_NE(v->detail.find("before the copy is free"), std::string::npos)
      << v->detail;
  EXPECT_GT(r.eventsModeled, 0);
}

TEST(VerifyEvents, WaitBeforeSendCycleIsAStaticDeadlock) {
  // Two nodes exchange one counted packet in the same phase, but each node
  // posts its wait *before* its send: a textbook head-of-line deadlock the
  // phase DAG alone can never see.
  CommPlan p;
  p.name = "exchange";
  p.shape = {2, 1, 1};
  p.addPhase("exchange");
  for (int n = 0; n < 2; ++n) {
    PlannedWrite w;
    w.phase = "exchange";
    w.srcNode = n;
    w.dst = {1 - n, kSlice0};
    w.counterId = 0;
    w.seq = 1;  // send only after the wait fires
    p.writes.push_back(w);

    CounterExpectation e;
    e.site = "exchange.recv";
    e.phase = "exchange";
    e.client = {n, kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.bySource[1 - n] = 1;
    e.recoveryArmed = true;
    e.seq = 0;  // wait precedes the send
    p.expectations.push_back(std::move(e));
  }
  VerifyResult r = verifyPlan(p);
  const Violation* v = findCheck(r.violations, "event.deadlock");
  ASSERT_NE(v, nullptr);
  // The diagnostic carries the whole cycle: both the wait and the send it
  // depends on, joined hop by hop.
  EXPECT_NE(v->detail.find(" -> "), std::string::npos) << v->detail;
  EXPECT_NE(v->detail.find("wait"), std::string::npos) << v->detail;
  EXPECT_NE(v->detail.find("send"), std::string::npos) << v->detail;
  EXPECT_NE(v->detail.find("never make progress"), std::string::npos)
      << v->detail;

  // Send-first (what the live exchange actually does) breaks the cycle.
  for (PlannedWrite& w : p.writes) w.seq = 0;
  for (CounterExpectation& e : p.expectations) e.seq = 1;
  EXPECT_FALSE(hasCheck(verifyPlan(p).violations, "event.deadlock"));
}

// --- check 2 degraded: multicast tree expansion under down links ------------

TEST(VerifyDegraded, CutMulticastTreeIsRepairedByRerouting) {
  // A two-hop dimension-ordered tree on a 4x4 sheet: 0 -> +x -> +y -> dest.
  // Taking node 0's +x link down severs the whole tree, but the degraded
  // unicast route (+y first, then +x) re-covers the destination.
  CommPlan p;
  p.name = "mc";
  p.shape = {4, 4, 1};
  p.addPhaseEdge("fanout", "sink");
  const int hop = util::torusIndex({1, 0, 0}, p.shape);
  const int dest = util::torusIndex({1, 1, 0}, p.shape);

  MulticastPlanEntry m;
  m.patternId = 0;
  m.srcNode = 0;
  m.entries[0].linkMask = 1u << net::RingLayout::adapterIndex(0, +1);
  m.entries[hop].linkMask = 1u << net::RingLayout::adapterIndex(1, +1);
  m.entries[dest].clientMask = 1u << kSlice0;
  m.declaredDests.push_back({dest, kSlice0});
  p.multicasts.push_back(m);

  PlannedWrite w;
  w.phase = "fanout";
  w.srcNode = 0;
  w.pattern = 0;
  w.counterId = 0;
  p.writes.push_back(w);

  CounterExpectation e;
  e.site = "mc.recv";
  e.phase = "sink";
  e.client = {dest, kSlice0};
  e.counterId = 0;
  e.perRound = 1;
  e.recoveryArmed = true;
  p.expectations.push_back(std::move(e));
  ASSERT_TRUE(verifyPlan(p).ok());

  VerifyOptions opts;
  opts.downLinks.push_back({0, 0, +1});
  VerifyResult r = verifyPlan(p, opts);
  EXPECT_TRUE(r.ok()) << "a repairable outage must stay a lint";
  EXPECT_EQ(r.multicastsRepaired, 1);
  EXPECT_EQ(r.multicastsStalled, 0);
  const Violation* v = findCheck(r.lints, "multicast.degraded");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("repaired by rerouting"), std::string::npos)
      << v->detail;

  // The repair itself must round-trip: rebuilt tables reach the declared
  // destination under the same outage.
  TreeRepair repair = repairMulticastTree(m, p.shape, opts.downLinks);
  EXPECT_TRUE(repair.ok());
  EXPECT_EQ(repair.reroutedDests, 1);
  TreeExpansion degraded =
      expandTree(repair.repaired, p.shape, opts.downLinks);
  ASSERT_EQ(degraded.reached.size(), 1u);
  EXPECT_EQ(degraded.reached[0], (ClientAddr{dest, kSlice0}));
}

TEST(VerifyDegraded, UnroutableOutageIsReportedAsAStall) {
  // On a 4x1x1 line there is no second dimension to reroute through: a +x
  // outage at the source stalls the whole chain, repaired or not.
  CommPlan p;
  p.name = "line";
  p.shape = {4, 1, 1};
  p.addPhaseEdge("fanout", "sink");
  MulticastPlanEntry m;
  m.patternId = 0;
  m.srcNode = 0;
  for (int n = 0; n < 3; ++n)
    m.entries[n].linkMask = 1u << net::RingLayout::adapterIndex(0, +1);
  for (int n = 1; n < 4; ++n) {
    m.entries[n].clientMask = std::uint8_t(m.entries[n].clientMask |
                                           (1u << kSlice0));
    m.declaredDests.push_back({n, kSlice0});
    CounterExpectation e;
    e.site = "line.recv";
    e.phase = "sink";
    e.client = {n, kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    p.expectations.push_back(std::move(e));
  }
  p.multicasts.push_back(m);
  PlannedWrite w;
  w.phase = "fanout";
  w.srcNode = 0;
  w.pattern = 0;
  w.counterId = 0;
  p.writes.push_back(w);
  ASSERT_TRUE(verifyPlan(p).ok());

  VerifyOptions opts;
  opts.downLinks.push_back({0, 0, +1});
  opts.routeIssuesAreErrors = false;  // audit mode
  VerifyResult r = verifyPlan(p, opts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.multicastsStalled, 1);
  const Violation* v = findCheck(r.lints, "multicast.stalled");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("stalls"), std::string::npos) << v->detail;

  opts.routeIssuesAreErrors = true;  // and as a hard failure when asked
  EXPECT_TRUE(hasCheck(verifyPlan(p, opts).violations, "multicast.stalled"));
}

// --- snapshots and structural diff ------------------------------------------

TEST(PlanSnapshot, RoundTripsThroughCanonicalJson) {
  CommPlan p = pingPlan();
  const std::string json = planToJson(p);
  CommPlan q = planFromJson(json);
  EXPECT_TRUE(diffPlans(p, q).identical());
  EXPECT_EQ(planToJson(q), json) << "canonical form must be byte-stable";
  EXPECT_EQ(q.name, p.name);
  EXPECT_TRUE(q.shape == p.shape);
  EXPECT_EQ(q.phases, p.phases);
  EXPECT_EQ(q.writes.size(), p.writes.size());
  EXPECT_EQ(q.expectations.size(), p.expectations.size());
  EXPECT_EQ(q.buffers.size(), p.buffers.size());
}

TEST(PlanSnapshot, RichPlanWithMulticastsRoundTrips) {
  sim::Simulator sim;
  net::Machine machine(sim, {2, 2, 2});
  core::DimOrderedAllReduce ar(machine);
  CommPlan p;
  p.name = "allreduce";
  p.shape = machine.shape();
  ar.appendPlan(p, "");
  ASSERT_FALSE(p.multicasts.empty());
  CommPlan q = planFromJson(planToJson(p));
  EXPECT_TRUE(diffPlans(p, q).identical());
  EXPECT_EQ(planToJson(q), planToJson(p));
}

TEST(PlanSnapshot, MalformedJsonIsRejectedWithPosition) {
  EXPECT_THROW(planFromJson("{"), std::runtime_error);
  EXPECT_THROW(planFromJson("[]"), std::runtime_error);
  EXPECT_THROW(planFromJson("{\"name\": \"x\"}"), std::runtime_error);
}

TEST(PlanDiff, NamesDoNotCountButStructureDoes) {
  CommPlan a = pingPlan();
  CommPlan b = pingPlan();
  b.name = "renamed";
  EXPECT_TRUE(diffPlans(a, b).identical());
}

TEST(PlanDiff, StructuralDeltasCarryTheirCategory) {
  const CommPlan base = pingPlan();
  auto hasCategory = [](const PlanDelta& d, const std::string& cat) {
    return std::any_of(
        d.entries.begin(), d.entries.end(),
        [&](const PlanDeltaEntry& e) { return e.category == cat; });
  };

  CommPlan m = base;  // one extra planned packet on the ping
  m.writes[0].packets += 2;
  PlanDelta d = diffPlans(base, m);
  ASSERT_FALSE(d.identical());
  EXPECT_TRUE(hasCategory(d, "write"));

  m = base;  // a wait site expecting a different increment
  m.expectations[0].perRound += 1;
  d = diffPlans(base, m);
  ASSERT_FALSE(d.identical());
  EXPECT_TRUE(hasCategory(d, "expectation"));

  m = base;  // double-buffering a receive region changes its lifetime
  m.buffers[0].copies = 2;
  d = diffPlans(base, m);
  ASSERT_FALSE(d.identical());
  EXPECT_TRUE(hasCategory(d, "buffer"));

  m = base;  // a new phase shows up in the program DAG
  m.addPhaseEdge("ackwait", "drain");
  d = diffPlans(base, m);
  ASSERT_FALSE(d.identical());
  EXPECT_TRUE(hasCategory(d, "phase"));
}

}  // namespace
}  // namespace anton::verify
