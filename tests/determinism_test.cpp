// Determinism regression: the same seeded workload must produce bit-identical
// MachineStats, memories, counters, and MD positions across runs — with no
// fault plan, with a zero-fault plan (which must also match the no-plan
// run exactly), and with a nonzero bit-error plan re-run under the same
// seed. This protects the seedable-RNG contract the fault scheduler relies
// on: all fault randomness lives in the plan's own RNG, drawn in the
// deterministic traversal order of the event kernel.
#include <gtest/gtest.h>

#include <cstdint>

#include "fault/plan.hpp"
#include "md/anton_app.hpp"
#include "net/machine.hpp"
#include "sim/causal_log.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/activity.hpp"
#include "util/hotpath.hpp"
#include "verify/lookahead.hpp"
#include "verify/shard_contract.hpp"

namespace anton {
namespace {

// FNV-1a over every client memory and counter bank of the machine.
std::uint64_t machineDigest(net::Machine& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (int n = 0; n < m.numNodes(); ++n) {
    for (int c = 0; c < net::kClientsPerNode; ++c) {
      net::NetworkClient& cl = m.client({n, c});
      for (std::byte b : cl.memory()) {
        h ^= std::uint64_t(b);
        h *= 0x100000001b3ULL;
      }
      for (int k = 0; k < cl.numCounters(); ++k) mix(cl.counterValue(k));
    }
  }
  return h;
}

struct RunResult {
  net::MachineStats stats;
  std::uint64_t digest = 0;
  sim::Time finalTime = 0;
};

// A seeded random traffic storm: writes and accumulations of varying sizes
// between random clients, then drain.
RunResult trafficStorm(std::uint64_t seed, fault::FaultPlan* plan) {
  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  if (plan != nullptr) m.setFaultModel(plan);
  sim::Rng rng(seed);
  for (int i = 0; i < 400; ++i) {
    int srcNode = int(rng.below(std::uint64_t(m.numNodes())));
    int srcClient = int(rng.below(4));  // slices can always send
    net::NetworkClient::SendArgs args;
    args.dst = {int(rng.below(std::uint64_t(m.numNodes()))),
                int(rng.below(4))};
    args.counterId = int(rng.below(4));
    args.address = std::uint32_t(rng.below(1024)) * 16;
    std::size_t bytes = std::size_t(rng.below(32)) * 8;
    if (bytes != 0) args.payload = net::makeZeroPayload(bytes);
    m.client({srcNode, srcClient}).post(args);
  }
  sim.run();
  return {m.stats(), machineDigest(m), sim.now()};
}

TEST(Determinism, SeededTrafficIsBitIdenticalAcrossRuns) {
  RunResult a = trafficStorm(7, nullptr);
  RunResult b = trafficStorm(7, nullptr);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.finalTime, b.finalTime);
}

TEST(Determinism, ZeroFaultPlanMatchesNoPlanExactly) {
  RunResult bare = trafficStorm(7, nullptr);
  fault::FaultPlan idle;  // no BER, no windows
  RunResult planned = trafficStorm(7, &idle);
  EXPECT_EQ(bare.stats, planned.stats);
  EXPECT_EQ(bare.digest, planned.digest);
  EXPECT_EQ(bare.finalTime, planned.finalTime);
  EXPECT_EQ(planned.stats.crcRetransmits, 0u);
  EXPECT_GT(idle.stats().traversalsSeen, 0u);
}

TEST(Determinism, FaultyRunsReproduceUnderTheSameSeed) {
  fault::FaultConfig fc;
  fc.seed = 123;
  fc.bitErrorRate = 5e-4;
  fault::FaultPlan p1(fc), p2(fc);
  RunResult a = trafficStorm(7, &p1);
  RunResult b = trafficStorm(7, &p2);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.finalTime, b.finalTime);
  EXPECT_GT(a.stats.crcRetransmits, 0u);
  // Faults must have perturbed timing relative to the clean run.
  RunResult clean = trafficStorm(7, nullptr);
  EXPECT_NE(a.finalTime, clean.finalTime);
}

TEST(Determinism, PooledHotPathIsBitIdenticalToTheLegacyKernel) {
  // The zero-allocation machinery (slab pools, inline event storage,
  // batched link drains) is host-side only: flipping every knob off —
  // recovering the seed's heap-allocating, event-per-traversal kernel —
  // must leave stats, memories, counters, the final clock AND the full
  // activity trace (every link busy window, in emission order) bitwise
  // unchanged.
  auto storm = [](bool hot) {
    util::ScopedHotPath scoped(hot);
    sim::Simulator sim;
    net::Machine m(sim, {4, 4, 4});
    trace::ActivityTrace tr;
    m.setTrace(&tr);
    sim::Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      int srcNode = int(rng.below(std::uint64_t(m.numNodes())));
      int srcClient = int(rng.below(4));
      net::NetworkClient::SendArgs args;
      args.dst = {int(rng.below(std::uint64_t(m.numNodes()))),
                  int(rng.below(4))};
      args.counterId = int(rng.below(4));
      args.address = std::uint32_t(rng.below(1024)) * 16;
      std::size_t bytes = std::size_t(rng.below(32)) * 8;
      if (bytes != 0) args.payload = net::makeZeroPayload(bytes);
      m.client({srcNode, srcClient}).post(args);
    }
    sim.run();
    return std::tuple{m.stats(), machineDigest(m), sim.now(), tr.csv()};
  };
  EXPECT_EQ(storm(true), storm(false));
}

TEST(Determinism, CausalTraceIsBitIdenticalAcrossHotPathModes) {
  // The causal-order oracle (sim/causal_log.hpp) must not perturb the event
  // order, and its recorded trace must be invariant under the hot-path
  // knobs: batched link drains attribute arrivals at their reserveSeq()
  // point — the exact spot the legacy path consumes a seq — so the full
  // (t, seq, parent, node, link) trace digests identically in both modes.
  auto storm = [](bool hot, sim::CausalLog& log) {
    util::ScopedHotPath scoped(hot);
    sim::ScopedCausalOracle oracle(log);
    sim::Simulator sim;
    net::Machine m(sim, {4, 4, 4});
    sim::Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      int srcNode = int(rng.below(std::uint64_t(m.numNodes())));
      int srcClient = int(rng.below(4));
      net::NetworkClient::SendArgs args;
      args.dst = {int(rng.below(std::uint64_t(m.numNodes()))),
                  int(rng.below(4))};
      args.counterId = int(rng.below(4));
      args.address = std::uint32_t(rng.below(1024)) * 16;
      std::size_t bytes = std::size_t(rng.below(32)) * 8;
      if (bytes != 0) args.payload = net::makeZeroPayload(bytes);
      m.client({srcNode, srcClient}).post(args);
    }
    sim.run();
    return std::tuple{m.stats(), machineDigest(m), sim.now()};
  };
  sim::CausalLog pooled, legacy;
  EXPECT_EQ(storm(true, pooled), storm(false, legacy));
  ASSERT_FALSE(pooled.records().empty());
  EXPECT_EQ(pooled.records().size(), legacy.records().size());
  EXPECT_EQ(pooled.digest(), legacy.digest());
  // Field-level, not just the digest: the first divergence (if any) names
  // itself in the failure output.
  for (std::size_t i = 0; i < pooled.records().size(); ++i)
    ASSERT_EQ(pooled.records()[i] == legacy.records()[i], true)
        << "record " << i << " diverges between hot-path modes";
  // The trace contains attributed link crossings (the oracle's subject).
  bool anyLink = false;
  for (const sim::CausalRecord& r : pooled.records())
    anyLink = anyLink || r.link != 0;
  EXPECT_TRUE(anyLink);
}

TEST(Determinism, AttachedOracleLeavesTheScheduleUntouched) {
  // Recording must be observation-only: the same storm with and without a
  // log attached lands on identical stats, memories and final clock.
  RunResult bare = trafficStorm(7, nullptr);
  sim::CausalLog log;
  sim::ScopedCausalOracle oracle(log);
  RunResult traced = trafficStorm(7, nullptr);
  EXPECT_EQ(bare.stats, traced.stats);
  EXPECT_EQ(bare.digest, traced.digest);
  EXPECT_EQ(bare.finalTime, traced.finalTime);
  EXPECT_FALSE(log.records().empty());
}

TEST(Determinism, MdPositionsMatchBetweenPooledAndLegacyHotPaths) {
  // End-to-end: three MD supersteps (forces, FFT, migration, all-reduce)
  // under the pooled kernel reproduce the legacy trajectory exactly.
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.migrationInterval = 2;
  cfg.longRangeInterval = 2;

  auto run = [&](bool hot) {
    util::ScopedHotPath scoped(hot);
    sim::Simulator sim;
    net::Machine m(sim, {4, 4, 4});
    md::AntonMdApp app(m, sys, cfg);
    app.runSteps(3);
    return std::pair{app.gatherSystem(), sim.now()};
  };
  auto [pooled, pooledTime] = run(true);
  auto [legacy, legacyTime] = run(false);

  EXPECT_EQ(pooledTime, legacyTime);
  ASSERT_EQ(pooled.numAtoms(), legacy.numAtoms());
  for (int i = 0; i < pooled.numAtoms(); ++i) {
    EXPECT_EQ(pooled.positions[std::size_t(i)],
              legacy.positions[std::size_t(i)]);
    EXPECT_EQ(pooled.velocities[std::size_t(i)],
              legacy.velocities[std::size_t(i)]);
  }
}

TEST(Determinism, MdPositionsBitIdenticalWithZeroFaultPlan) {
  // The full Anton-mapped MD pipeline: a zero-fault plan must leave the
  // trajectory bit-identical to running without one.
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.migrationInterval = 2;
  cfg.longRangeInterval = 2;

  auto run = [&](fault::FaultPlan* plan) {
    sim::Simulator sim;
    net::Machine m(sim, {4, 4, 4});
    if (plan != nullptr) m.setFaultModel(plan);
    md::AntonMdApp app(m, sys, cfg);
    app.runSteps(3);
    return app.gatherSystem();
  };
  md::MDSystem bare = run(nullptr);
  fault::FaultPlan idle;
  md::MDSystem planned = run(&idle);

  ASSERT_EQ(bare.numAtoms(), planned.numAtoms());
  for (int i = 0; i < bare.numAtoms(); ++i) {
    EXPECT_EQ(bare.positions[std::size_t(i)], planned.positions[std::size_t(i)]);
    EXPECT_EQ(bare.velocities[std::size_t(i)],
              planned.velocities[std::size_t(i)]);
  }
}

TEST(Determinism, MdRecoveryArmedButIdleIsTimingInvisible) {
  // Erasure recovery armed (watchdogs on every counted wait, drop registry
  // installed) under a zero-fault plan: no drop ever occurs, so the
  // trajectory AND the per-step timings must be bit-identical to the
  // recovery-free, plan-free run. This pins the watchdog wake path to the
  // plain waitCounter schedule and the cancelled deadline events to zero
  // timeline cost.
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.migrationInterval = 2;
  cfg.longRangeInterval = 2;

  struct Out {
    md::MDSystem sys;
    std::vector<double> stepUs;
    sim::Time finalTime = 0;
    std::uint64_t timeouts = 0;
  };
  auto run = [&](bool recovery, fault::FaultPlan* plan) {
    md::AntonMdConfig c = cfg;
    // Generous deadline: it must exceed every natural wait in the step, or
    // a spurious timeout would fire (and perturb timing) with no drop.
    if (recovery) c.recoveryTimeoutUs = 10000.0;
    sim::Simulator sim;
    net::Machine m(sim, {4, 4, 4});
    if (plan != nullptr) m.setFaultModel(plan);
    md::AntonMdApp app(m, sys, c);
    app.runSteps(3);
    Out out{app.gatherSystem(), {}, sim.now(), app.recoveryStats().timeouts};
    for (const md::StepTiming& t : app.stepTimings())
      out.stepUs.push_back(t.totalUs);
    return out;
  };
  Out bare = run(false, nullptr);
  fault::FaultPlan idle;
  Out armed = run(true, &idle);

  EXPECT_EQ(armed.timeouts, 0u);
  EXPECT_EQ(bare.finalTime, armed.finalTime);
  ASSERT_EQ(bare.stepUs.size(), armed.stepUs.size());
  for (std::size_t i = 0; i < bare.stepUs.size(); ++i)
    EXPECT_EQ(bare.stepUs[i], armed.stepUs[i]) << "step " << i;
  ASSERT_EQ(bare.sys.numAtoms(), armed.sys.numAtoms());
  for (int i = 0; i < bare.sys.numAtoms(); ++i) {
    EXPECT_EQ(bare.sys.positions[std::size_t(i)],
              armed.sys.positions[std::size_t(i)]);
    EXPECT_EQ(bare.sys.velocities[std::size_t(i)],
              armed.sys.velocities[std::size_t(i)]);
  }
}

// --- sharded kernel: the full MD pipeline, serial vs parallel ---------------

struct MdShardedResult {
  md::MDSystem sys;
  net::MachineStats stats;
  std::uint64_t digest = 0;
  sim::Time finalTime = 0;
  std::uint64_t migrated = 0;
  std::vector<md::StepTiming> timings;
};

// Three MD supersteps (forces, FFT convolution, thermostat, migration) on a
// 4x4x4 machine, optionally under the sharded kernel. Recovery stays off:
// the drop registry is the one cross-node mutable object the step tasks
// share, so sharded MD runs are only defined without it.
MdShardedResult mdRun(const std::string& shardingName, int workers) {
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.migrationInterval = 2;
  cfg.longRangeInterval = 2;

  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  md::AntonMdApp app(m, sys, cfg);
  if (!shardingName.empty()) {
    util::TorusShape shape{4, 4, 4};
    verify::Sharding sharding = shardingName == "per-node"
                                    ? verify::perNodeSharding(shape)
                                    : verify::slabSharding(shape);
    sim.enableSharded(verify::shardLayoutFromTopology(shape, sharding),
                      workers);
  }
  app.runSteps(3);
  MdShardedResult r;
  if (!shardingName.empty()) sim.disableSharded();
  r.stats = m.stats();
  r.sys = app.gatherSystem();
  r.digest = machineDigest(m);
  r.finalTime = sim.now();
  r.migrated = app.totalMigrated();
  r.timings = app.stepTimings();
  return r;
}

void expectMdIdentical(const MdShardedResult& a, const MdShardedResult& b) {
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.finalTime, b.finalTime);
  EXPECT_EQ(a.migrated, b.migrated);
  ASSERT_EQ(a.sys.numAtoms(), b.sys.numAtoms());
  for (int i = 0; i < a.sys.numAtoms(); ++i) {
    EXPECT_EQ(a.sys.positions[std::size_t(i)], b.sys.positions[std::size_t(i)]);
    EXPECT_EQ(a.sys.velocities[std::size_t(i)],
              b.sys.velocities[std::size_t(i)]);
  }
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_EQ(a.timings[i].totalUs, b.timings[i].totalUs) << "step " << i;
    EXPECT_EQ(a.timings[i].fftUs, b.timings[i].fftUs) << "step " << i;
    EXPECT_EQ(a.timings[i].htisUs, b.timings[i].htisUs) << "step " << i;
    EXPECT_EQ(a.timings[i].bondedUs, b.timings[i].bondedUs) << "step " << i;
    EXPECT_EQ(a.timings[i].migrationUs, b.timings[i].migrationUs)
        << "step " << i;
    EXPECT_EQ(a.timings[i].forceWaitUs, b.timings[i].forceWaitUs)
        << "step " << i;
  }
}

TEST(Determinism, MdShardedPerNodeMatchesSerialBitIdentically) {
  MdShardedResult serial = mdRun("", 0);
  MdShardedResult sharded = mdRun("per-node", 0);
  expectMdIdentical(serial, sharded);
}

TEST(Determinism, MdShardedSlabWithWorkersMatchesSerial) {
  MdShardedResult serial = mdRun("", 0);
  MdShardedResult slab = mdRun("slab-x", 2);
  expectMdIdentical(serial, slab);
  MdShardedResult perNode = mdRun("per-node", 4);
  expectMdIdentical(serial, perNode);
}

}  // namespace
}  // namespace anton
