// Multicast tree construction and pattern-id allocation.
#include <gtest/gtest.h>

#include "core/multicast.hpp"
#include "core/neighborhood.hpp"
#include "sim/simulator.hpp"

namespace anton::core {
namespace {

using net::ClientAddr;
using net::kSlice0;
using net::kHtis;
using sim::Task;

struct Fixture {
  sim::Simulator sim;
  net::Machine machine;
  explicit Fixture(util::TorusShape shape = {4, 4, 4})
      : machine(sim, shape, {}) {}
  int at(int x, int y, int z) {
    return util::torusIndex({x, y, z}, machine.shape());
  }
};

TEST(MulticastTree, SingleLocalDestination) {
  Fixture f;
  MulticastTree t = buildMulticastTree(f.machine, 0, {{0, kHtis}});
  ASSERT_EQ(t.entries.size(), 1u);
  EXPECT_EQ(t.entries.at(0).clientMask, 1u << kHtis);
  EXPECT_EQ(t.entries.at(0).linkMask, 0u);
}

TEST(MulticastTree, SharedPathPrefixIsMerged) {
  // Two destinations along +X at distance 1 and 2 share the first link.
  Fixture f;
  MulticastTree t = buildMulticastTree(
      f.machine, 0, {{f.at(1, 0, 0), kSlice0}, {f.at(2, 0, 0), kSlice0}});
  EXPECT_EQ(t.entries.size(), 3u);
  int xPlus = net::RingLayout::adapterIndex(0, +1);
  EXPECT_EQ(t.entries.at(0).linkMask, 1u << xPlus);
  EXPECT_EQ(t.entries.at(f.at(1, 0, 0)).linkMask, 1u << xPlus);
  EXPECT_EQ(t.entries.at(f.at(1, 0, 0)).clientMask, 1u << kSlice0);
  EXPECT_EQ(t.entries.at(f.at(2, 0, 0)).linkMask, 0u);
}

TEST(MulticastTree, EmptyDestinationsThrow) {
  Fixture f;
  EXPECT_THROW(buildMulticastTree(f.machine, 0, {}), std::invalid_argument);
}

TEST(MulticastTree, DeliveryMatchesTree) {
  // End-to-end: install a 5-destination tree and verify exactly those
  // clients receive the packet.
  Fixture f;
  std::vector<ClientAddr> dests = {{f.at(1, 0, 0), kSlice0},
                                   {f.at(1, 1, 0), kSlice0},
                                   {f.at(0, 1, 0), kHtis},
                                   {f.at(3, 0, 0), kSlice0},
                                   {f.at(0, 0, 1), kSlice0}};
  PatternAllocator alloc(f.machine);
  int id = alloc.install(0, dests);

  net::NetworkClient::SendArgs args;
  args.multicastPattern = id;
  args.counterId = 1;
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  for (const auto& d : dests)
    EXPECT_EQ(f.machine.client(d).counterValue(1), 1u)
        << "node " << d.node << " client " << d.client;
  EXPECT_EQ(f.machine.stats().packetsDelivered, dests.size());
  EXPECT_EQ(f.machine.stats().packetsInjected, 1u);
}

TEST(PatternAllocator, DisjointTreesShareAnId) {
  // Two sources far apart get the same pattern id (footprints disjoint).
  Fixture f;
  PatternAllocator alloc(f.machine);
  int a = alloc.install(f.at(0, 0, 0), {{f.at(1, 0, 0), kSlice0}});
  int b = alloc.install(f.at(0, 2, 2), {{f.at(1, 2, 2), kSlice0}});
  EXPECT_EQ(a, b);
}

TEST(PatternAllocator, OverlappingTreesGetDistinctIds) {
  Fixture f;
  PatternAllocator alloc(f.machine);
  int a = alloc.install(0, {{f.at(1, 0, 0), kSlice0}});
  int b = alloc.install(0, {{f.at(2, 0, 0), kSlice0}});
  EXPECT_NE(a, b);
}

TEST(PatternAllocator, ExhaustionThrows) {
  Fixture f;
  PatternAllocator alloc(f.machine, 0, 2);  // only three ids available
  alloc.install(0, {{f.at(1, 0, 0), kSlice0}});
  alloc.install(0, {{f.at(1, 0, 0), kHtis}});
  alloc.install(0, {{f.at(1, 0, 0), net::kSlice1}});
  EXPECT_THROW(alloc.install(0, {{f.at(1, 0, 0), net::kSlice2}}),
               std::runtime_error);
}

TEST(Neighborhood, FullTorusHas26Neighbors) {
  util::TorusShape s{4, 4, 4};
  for (int i : {0, 13, 63}) {
    EXPECT_EQ(torusNeighborhood26(s, i).size(), 26u) << "node " << i;
  }
}

TEST(Neighborhood, SmallTorusCollapsesDuplicates) {
  // In a 2x2x2 torus, +1 and -1 wrap to the same node: 7 distinct neighbors.
  util::TorusShape s{2, 2, 2};
  EXPECT_EQ(torusNeighborhood26(s, 0).size(), 7u);
  // A 1x4x4 torus: dx always wraps to self-plane; 8 distinct neighbors.
  util::TorusShape t{1, 4, 4};
  EXPECT_EQ(torusNeighborhood26(t, 0).size(), 8u);
}

TEST(Neighborhood, SyncDeliversToAllNeighbors) {
  Fixture f;
  PatternAllocator alloc(f.machine);
  const int ctr = 5;
  NeighborhoodSync sync(f.machine, alloc, ctr);

  // Every node signals once; every node then expects 26 flushes.
  for (int n = 0; n < f.machine.numNodes(); ++n) sync.signal(n);
  int completed = 0;
  auto waiter = [](Fixture&, NeighborhoodSync& s, int n, int& done) -> Task {
    co_await s.wait(n, 1);
    ++done;
  };
  for (int n = 0; n < f.machine.numNodes(); ++n)
    f.sim.spawn(waiter(f, sync, n, completed));
  f.sim.run();
  EXPECT_EQ(completed, f.machine.numNodes());
  for (int n = 0; n < f.machine.numNodes(); ++n)
    EXPECT_EQ(f.machine.client({n, kSlice0}).counterValue(ctr), 26u);
}

TEST(Neighborhood, FlushLatencyIsSubMicrosecond) {
  // SC10 §IV-B5 reports 0.56 us for the migration synchronization step; the
  // model's farthest (diagonal) neighbor flush lands well under 1 us.
  Fixture f;
  PatternAllocator alloc(f.machine);
  NeighborhoodSync sync(f.machine, alloc, 5);
  double doneNs = -1;
  auto waiter = [](Fixture& fx, NeighborhoodSync& s, double& t) -> Task {
    co_await s.wait(0, 1);
    t = sim::toNs(fx.sim.now());
  };
  f.sim.spawn(waiter(f, sync, doneNs));
  for (int nb : sync.neighbors(0)) sync.signal(nb);
  f.sim.run();
  EXPECT_GT(doneNs, 162.0);
  EXPECT_LT(doneNs, 1000.0);
}

}  // namespace
}  // namespace anton::core
