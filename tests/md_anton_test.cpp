// The Anton-mapped MD application against the host reference engine: the
// same trajectory must emerge from packets flowing through the simulated
// machine (within fixed-point accumulation tolerance), communication
// patterns must stay fixed, migration must conserve atoms, and the step
// timings must land in the paper's regime.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "md/anton_app.hpp"

namespace anton::md {
namespace {

MDSystem testSystem(int atoms = 1536, std::uint64_t seed = 7) {
  SyntheticSystemParams p;
  p.targetAtoms = atoms;
  p.temperature = 0.8;
  p.seed = seed;
  return buildSyntheticSystem(p);
}

AntonMdConfig testConfig() {
  AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.dt = 0.002;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.migrationInterval = 4;
  cfg.longRangeInterval = 2;
  cfg.thermostatTau = 0.0;
  return cfg;
}

EngineParams matchingEngineParams(const AntonMdConfig& cfg) {
  EngineParams p;
  p.force = cfg.force;
  p.ewald = cfg.ewald;
  p.dt = cfg.dt;
  p.longRange = true;
  p.longRangeInterval = cfg.longRangeInterval;
  p.thermostatTau = cfg.thermostatTau;
  p.targetTemperature = cfg.targetTemperature;
  p.thermostatInterval = cfg.thermostatInterval;
  return p;
}

struct Fixture {
  sim::Simulator sim;
  net::Machine machine;
  explicit Fixture(util::TorusShape shape = {4, 4, 4})
      : machine(sim, shape, {}) {}
};

TEST(AntonMd, TrajectoryMatchesReferenceEngine) {
  MDSystem sys = testSystem();
  AntonMdConfig cfg = testConfig();
  Fixture f;
  AntonMdApp app(f.machine, sys, cfg);
  ReferenceEngine ref(sys, matchingEngineParams(cfg));

  const int steps = 5;
  app.runSteps(steps);
  ref.run(steps);

  MDSystem got = app.gatherSystem();
  const MDSystem& expect = ref.system();
  ASSERT_EQ(got.numAtoms(), expect.numAtoms());
  double maxErr = 0.0;
  for (int i = 0; i < got.numAtoms(); ++i) {
    Vec3 d = expect.minImage(got.positions[std::size_t(i)],
                             expect.positions[std::size_t(i)]);
    maxErr = std::max(maxErr, d.norm());
  }
  // Fixed-point force accumulation (2^-20) is the only divergence source.
  EXPECT_LT(maxErr, 2e-3) << "distributed trajectory diverged";
}

TEST(AntonMd, DeterministicAcrossRuns) {
  MDSystem sys = testSystem();
  AntonMdConfig cfg = testConfig();
  Fixture a, b;
  AntonMdApp appA(a.machine, sys, cfg);
  AntonMdApp appB(b.machine, sys, cfg);
  appA.runSteps(4);
  appB.runSteps(4);
  MDSystem sa = appA.gatherSystem();
  MDSystem sb = appB.gatherSystem();
  for (int i = 0; i < sa.numAtoms(); ++i) {
    EXPECT_EQ(sa.positions[std::size_t(i)], sb.positions[std::size_t(i)]);
    EXPECT_EQ(sa.velocities[std::size_t(i)], sb.velocities[std::size_t(i)]);
  }
}

TEST(AntonMd, FixedCommunicationPatterns) {
  // Counted remote writes require fixed per-step packet counts: two
  // range-limited steps without migration must inject identical traffic.
  MDSystem sys = testSystem();
  AntonMdConfig cfg = testConfig();
  cfg.migrationInterval = 100;
  cfg.longRangeInterval = 100;  // keep every step range-limited
  Fixture f;
  AntonMdApp app(f.machine, sys, cfg);

  app.runSteps(1);
  std::uint64_t after1 = f.machine.stats().packetsInjected;
  app.runSteps(1);
  std::uint64_t after2 = f.machine.stats().packetsInjected;
  app.runSteps(1);
  std::uint64_t after3 = f.machine.stats().packetsInjected;
  EXPECT_EQ(after2 - after1, after3 - after2);
  EXPECT_GT(after2 - after1, 0u);
}

TEST(AntonMd, MigrationConservesAtomsAndKeepsRunning) {
  MDSystem sys = testSystem(1536, 11);
  AntonMdConfig cfg = testConfig();
  cfg.migrationInterval = 2;
  Fixture f;
  AntonMdApp app(f.machine, sys, cfg);
  app.runSteps(8);

  int total = 0;
  for (int n = 0; n < f.machine.numNodes(); ++n) total += app.homeAtoms(n);
  EXPECT_EQ(total, sys.numAtoms());

  MDSystem got = app.gatherSystem();
  std::set<double> uniquePositions;
  for (const auto& p : got.positions) uniquePositions.insert(p.x);
  EXPECT_GT(uniquePositions.size(), 1000u);  // real, distinct state
}

TEST(AntonMd, ThermostatControlsTemperature) {
  MDSystem sys = testSystem(1536, 13);
  AntonMdConfig cfg = testConfig();
  cfg.thermostatTau = 0.01;
  cfg.targetTemperature = 1.2;
  cfg.thermostatInterval = 2;
  Fixture f;
  AntonMdApp app(f.machine, sys, cfg);
  double t0 = app.gatherSystem().temperature();
  app.runSteps(12);
  double t1 = app.gatherSystem().temperature();
  EXPECT_GT(t1, t0);  // heated toward 1.2 from 0.8
  // And it matches the reference engine's thermostat trajectory closely.
  ReferenceEngine ref(sys, matchingEngineParams(cfg));
  ref.run(12);
  EXPECT_NEAR(t1, ref.system().temperature(), 0.05);
}

TEST(AntonMd, StepTimingsLandInPaperRegime) {
  // A range-limited step on the model should cost single-digit
  // microseconds and a long-range step more (Table 3: 9.0 vs 22.2 us for
  // the 512-node DHFR run; the test machine is smaller but same order).
  MDSystem sys = testSystem();
  AntonMdConfig cfg = testConfig();
  cfg.thermostatTau = 0.05;
  Fixture f;
  AntonMdApp app(f.machine, sys, cfg);
  app.runSteps(4);

  double rl = 0, lr = 0;
  for (const StepTiming& t : app.stepTimings()) {
    if (t.longRange) {
      lr = std::max(lr, t.totalUs);
    } else if (!t.migration) {
      rl = std::max(rl, t.totalUs);
    }
  }
  EXPECT_GT(rl, 1.0);
  EXPECT_LT(rl, 60.0);
  EXPECT_GT(lr, rl);  // long-range steps cost more
  EXPECT_LT(lr, 200.0);
}

TEST(AntonMd, BondProgramRegenerationIsSafe) {
  MDSystem sys = testSystem(1536, 17);
  AntonMdConfig cfg = testConfig();
  Fixture f;
  AntonMdApp app(f.machine, sys, cfg);
  app.runSteps(4);
  double hopsBefore = app.averageBondHops();
  app.regenerateBondProgram();
  double hopsAfter = app.averageBondHops();
  EXPECT_LE(hopsAfter, hopsBefore + 1e-9);
  app.runSteps(4);  // still runs to completion with the new program
  int total = 0;
  for (int n = 0; n < f.machine.numNodes(); ++n) total += app.homeAtoms(n);
  EXPECT_EQ(total, sys.numAtoms());
}

TEST(AntonMd, RejectsUnsafeConfigurations) {
  MDSystem sys = testSystem();
  {
    Fixture f;
    AntonMdConfig cfg = testConfig();
    cfg.force.cutoff = 10.0;  // cutoff wider than a home box
    EXPECT_THROW(AntonMdApp(f.machine, sys, cfg), std::invalid_argument);
  }
  {
    Fixture f({2, 4, 4});  // extent 2 breaks the half-shell rule
    EXPECT_THROW(AntonMdApp(f.machine, sys, testConfig()), std::invalid_argument);
  }
  {
    Fixture f;
    AntonMdConfig cfg = testConfig();
    cfg.ewald.grid = 8;  // FFT blocks of 2 < spline halo width
    EXPECT_THROW(AntonMdApp(f.machine, sys, cfg), std::invalid_argument);
  }
}

}  // namespace
}  // namespace anton::md
