// Latency-model tests: the network must reproduce the calibrated SC10
// numbers exactly — 162 ns neighbor-X end-to-end, 76 ns per additional X
// hop, 54 ns per Y/Z hop, and the Fig. 6 component breakdown.
#include <gtest/gtest.h>

#include "net/machine.hpp"
#include "sim/simulator.hpp"

namespace anton::net {
namespace {

using sim::Task;
using sim::toNs;
using util::TorusCoord;
using util::TorusShape;

struct Fixture {
  sim::Simulator sim;
  Machine machine;
  explicit Fixture(TorusShape shape, MachineConfig cfg = {})
      : machine(sim, shape, cfg) {}
};

// One-way software-to-software latency: source posts at t, receiver task
// polls counter 0 for one more arrival; latency is poll-success time - t.
double oneWayNs(Fixture& f, ClientAddr src, ClientAddr dst,
                std::size_t payloadBytes, bool inOrder = false) {
  double doneNs = -1.0;
  auto receiver = [](Fixture& fx, ClientAddr d, double& out) -> Task {
    NetworkClient& c = fx.machine.client(d);
    co_await c.waitCounter(0, c.counterValue(0) + 1);
    out = toNs(fx.sim.now());
  };
  f.sim.spawn(receiver(f, dst, doneNs));
  double startNs = toNs(f.sim.now());
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = inOrder;
  if (payloadBytes != 0) args.payload = makeZeroPayload(payloadBytes);
  f.machine.client(src).post(args);
  f.sim.run();
  EXPECT_GE(doneNs, 0.0) << "message never arrived";
  return doneNs - startNs;
}

int nodeAt(Fixture& f, int x, int y, int z) {
  return util::torusIndex({x, y, z}, f.machine.shape());
}

TEST(Latency, NeighborXIs162ns) {
  Fixture f({8, 8, 8});
  double ns = oneWayNs(f, {nodeAt(f, 0, 0, 0), kSlice0},
                       {nodeAt(f, 1, 0, 0), kSlice0}, 0);
  EXPECT_DOUBLE_EQ(ns, 162.0);
}

TEST(Latency, NeighborXNegativeDirectionAlso162ns) {
  Fixture f({8, 8, 8});
  double ns = oneWayNs(f, {nodeAt(f, 0, 0, 0), kSlice0},
                       {nodeAt(f, 7, 0, 0), kSlice0}, 0);
  EXPECT_DOUBLE_EQ(ns, 162.0);
}

TEST(Latency, PerHopX76ns) {
  Fixture f({8, 8, 8});
  double prev = 0;
  for (int h = 1; h <= 4; ++h) {
    Fixture g({8, 8, 8});
    double ns = oneWayNs(g, {nodeAt(g, 0, 0, 0), kSlice0},
                         {nodeAt(g, h, 0, 0), kSlice0}, 0);
    if (h == 1) {
      EXPECT_DOUBLE_EQ(ns, 162.0);
    } else {
      EXPECT_DOUBLE_EQ(ns - prev, 76.0) << "at hop " << h;
    }
    prev = ns;
  }
}

TEST(Latency, PerHopYandZRoughly54ns) {
  // Additional Y (or Z) hops on an existing Y (or Z) path cost exactly the
  // calibrated 54 ns transit.
  for (int dim = 1; dim <= 2; ++dim) {
    double prev = 0;
    for (int h = 1; h <= 4; ++h) {
      Fixture g({8, 8, 8});
      TorusCoord c{0, 0, 0};
      c[dim] = h;
      double ns = oneWayNs(g, {nodeAt(g, 0, 0, 0), kSlice0},
                           {util::torusIndex(c, g.machine.shape()), kSlice0}, 0);
      if (h > 1) {
        EXPECT_DOUBLE_EQ(ns - prev, 54.0) << "dim " << dim << " hop " << h;
      }
      prev = ns;
    }
  }
}

TEST(Latency, TwelveHopDiagonalMatchesPiecewiseModel) {
  // Max-distance path in an 8x8x8 machine: 4 hops in each dimension.
  Fixture f({8, 8, 8});
  double ns = oneWayNs(f, {nodeAt(f, 0, 0, 0), kSlice0},
                       {nodeAt(f, 4, 4, 4), kSlice0}, 0, /*inOrder=*/true);
  // exit X (36+19+20) + 3 X transits + corner X->Y (20+25+20) + 3 Y transits
  // + corner Y->Z (20+19+20) + 3 Z transits + entry Z (20+31+42)
  double expect = 75 + 3 * 76 + 65 + 3 * 54 + 59 + 3 * 54 + 93;
  EXPECT_DOUBLE_EQ(ns, expect);
  // The paper reports the 12-hop latency is roughly 5x the 1-hop latency.
  EXPECT_NEAR(ns / 162.0, 5.0, 0.6);
}

TEST(Latency, SameNodeSliceToSlice) {
  // Zero-hop messages: assembly + one-router ring path + poll.
  Fixture f({4, 4, 4});
  double ns = oneWayNs(f, {0, kSlice0}, {0, kSlice1}, 0);
  EXPECT_DOUBLE_EQ(ns, 36.0 + 13.0 + 42.0);
}

TEST(Latency, PayloadAddsSerializationOnce) {
  // Wormhole switching: a 256 B payload adds its link serialization once,
  // independent of hop count.
  for (int h : {1, 4}) {
    Fixture a({8, 8, 8}), b({8, 8, 8});
    double zero = oneWayNs(a, {0, kSlice0}, {nodeAt(a, h, 0, 0), kSlice0}, 0);
    double big = oneWayNs(b, {0, kSlice0}, {nodeAt(b, h, 0, 0), kSlice0}, 256);
    EXPECT_NEAR(big - zero, 256.0 / 4.6, 0.01) << "hops " << h;
  }
}

TEST(Latency, ImmediatePayloadAddsNothing) {
  // Payloads up to 8 bytes travel in the header: same latency as 0 B.
  Fixture a({4, 4, 4}), b({4, 4, 4});
  double zero = oneWayNs(a, {0, kSlice0}, {nodeAt(a, 1, 0, 0), kSlice0}, 0);
  double eight = oneWayNs(b, {0, kSlice0}, {nodeAt(b, 1, 0, 0), kSlice0}, 8);
  EXPECT_DOUBLE_EQ(zero, eight);
}

TEST(Latency, HtisAndAccumEndpoints) {
  // Messages to the HTIS and to accumulation memories use their ring
  // positions; accumulation-memory counters cost more to poll.
  Fixture f({4, 4, 4});
  double toHtis = oneWayNs(f, {0, kSlice0}, {nodeAt(f, 1, 0, 0), kHtis}, 0);
  // entry X- (R4) -> HTIS (R2): 3 routers = 25 -> same as slice path.
  EXPECT_DOUBLE_EQ(toHtis, 162.0);

  Fixture g({4, 4, 4});
  double toAccum = oneWayNs(g, {0, kSlice0}, {nodeAt(g, 1, 0, 0), kAccum0}, 0);
  // entry X- (R4) -> accum (R5): 2 routers = 19; accum poll = 150 ns.
  EXPECT_DOUBLE_EQ(toAccum, 36 + 19 + 20 + 20 + 19 + 150);
}

TEST(Latency, LinkContentionSerializesPackets) {
  // Two max-size packets injected back-to-back on the same link: the second
  // is delayed by the first's serialization.
  Fixture f({4, 4, 4});
  ClientAddr dst{nodeAt(f, 1, 0, 0), kSlice0};
  double doneNs = -1;
  auto receiver = [](Fixture& fx, ClientAddr d, double& out) -> Task {
    NetworkClient& c = fx.machine.client(d);
    co_await c.waitCounter(0, 2);
    out = toNs(fx.sim.now());
  };
  f.sim.spawn(receiver(f, dst, doneNs));
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.payload = makeZeroPayload(256);
  f.machine.client({0, kSlice0}).post(args);
  args.address = 256;
  f.machine.client({0, kSlice1}).post(args);
  f.sim.run();
  // Single-packet latency is 162 + 256/4.6; the second packet waits for the
  // first's full wire serialization (288 B) on the link.
  double single = 162.0 + 256.0 / 4.6;
  EXPECT_GT(doneNs, single + 50.0);
}

TEST(Latency, AdaptiveRoutingSpreadsCornerTraffic) {
  // Without the in-order flag, packets to a 2-dimension-away destination
  // take different dimension orders (different corner links).
  MachineConfig cfg;
  cfg.adaptiveRouting = true;
  Fixture f({4, 4, 4}, cfg);
  ClientAddr dst{nodeAt(f, 1, 1, 0), kSlice0};
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  for (int i = 0; i < 12; ++i) f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  // Both the X-first and the Y-first exit links of node 0 must be used.
  EXPECT_GT(f.machine.linkTraversals(0, 0, +1), 0u);
  EXPECT_GT(f.machine.linkTraversals(0, 1, +1), 0u);
}

TEST(Latency, InOrderRoutingIsDeterministic) {
  MachineConfig cfg;
  cfg.adaptiveRouting = true;
  Fixture f({4, 4, 4}, cfg);
  ClientAddr dst{nodeAt(f, 1, 1, 0), kSlice0};
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = true;
  for (int i = 0; i < 12; ++i) f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  // Dimension order is fixed X->Y: only the X link leaves node 0.
  EXPECT_EQ(f.machine.linkTraversals(0, 0, +1), 12u);
  EXPECT_EQ(f.machine.linkTraversals(0, 1, +1), 0u);
}

TEST(Latency, StatsCountTraffic) {
  Fixture f({4, 4, 4});
  NetworkClient::SendArgs args;
  args.dst = {nodeAt(f, 2, 0, 0), kSlice0};
  args.counterId = 0;
  f.machine.client({0, kSlice0}).post(args);
  f.sim.run();
  EXPECT_EQ(f.machine.stats().packetsInjected, 1u);
  EXPECT_EQ(f.machine.stats().packetsDelivered, 1u);
  EXPECT_EQ(f.machine.stats().linkTraversals, 2u);
  EXPECT_EQ(f.machine.stats().wireBytes, 2u * kHeaderBytes);
}

}  // namespace
}  // namespace anton::net
