// The reliability subsystem: a zero-fault plan must be timing-invisible
// (all calibrated anchors hold exactly), bit errors must be repaired by
// link-level retransmission with the calibrated penalty, outages must stall
// or reroute, router stalls must delay ring traffic, and the counted-write
// watchdog must turn a would-be deadlock into a diagnostic.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "core/recovery.hpp"
#include "core/watchdog.hpp"
#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "net/machine.hpp"
#include "sim/simulator.hpp"
#include "trace/activity.hpp"

namespace anton {
namespace {

using net::ClientAddr;
using net::kSlice0;
using net::kSlice1;
using net::Machine;
using net::MachineConfig;
using net::NetworkClient;
using sim::Task;
using sim::toNs;

struct Fixture {
  sim::Simulator sim;
  Machine machine;
  explicit Fixture(util::TorusShape shape = {8, 8, 8}, MachineConfig cfg = {})
      : machine(sim, shape, cfg) {}

  int nodeAt(int x, int y, int z) {
    return util::torusIndex({x, y, z}, machine.shape());
  }

  double oneWayNs(ClientAddr src, ClientAddr dst, std::size_t payloadBytes,
                  bool inOrder = true) {
    double doneNs = -1.0;
    auto receiver = [](Fixture& f, ClientAddr d, double& out) -> Task {
      NetworkClient& c = f.machine.client(d);
      co_await c.waitCounter(0, c.counterValue(0) + 1);
      out = toNs(f.sim.now());
    };
    sim.spawn(receiver(*this, dst, doneNs));
    double startNs = toNs(sim.now());
    NetworkClient::SendArgs args;
    args.dst = dst;
    args.counterId = 0;
    args.inOrder = inOrder;
    if (payloadBytes != 0) args.payload = net::makeZeroPayload(payloadBytes);
    machine.client(src).post(args);
    sim.run();
    EXPECT_GE(doneNs, 0.0) << "message never arrived";
    return doneNs - startNs;
  }
};

TEST(FaultPlan, ZeroFaultPlanIsTimingInvisible) {
  // All calibrated anchors hold exactly with an idle plan installed.
  Fixture f;
  fault::FaultPlan plan;
  f.machine.setFaultModel(&plan);
  EXPECT_DOUBLE_EQ(f.oneWayNs({f.nodeAt(0, 0, 0), kSlice0},
                              {f.nodeAt(1, 0, 0), kSlice0}, 0),
                   162.0);
  Fixture g;
  fault::FaultPlan plan2;
  g.machine.setFaultModel(&plan2);
  double h1 = g.oneWayNs({g.nodeAt(0, 0, 0), kSlice0},
                         {g.nodeAt(1, 0, 0), kSlice0}, 0);
  Fixture g4;
  fault::FaultPlan plan3;
  g4.machine.setFaultModel(&plan3);
  double h4 = g4.oneWayNs({g4.nodeAt(0, 0, 0), kSlice0},
                          {g4.nodeAt(4, 0, 0), kSlice0}, 0);
  EXPECT_DOUBLE_EQ((h4 - h1) / 3.0, 76.0);

  const net::MachineStats& s = f.machine.stats();
  EXPECT_EQ(s.crcRetransmits, 0u);
  EXPECT_EQ(s.outageStalls, 0u);
  EXPECT_EQ(s.routerStalls, 0u);
  EXPECT_EQ(s.faultReroutes, 0u);
  EXPECT_EQ(s.retransmitDelay, 0);
  EXPECT_EQ(s.stallDelay, 0);
  EXPECT_EQ(plan.stats().traversalsSeen, 1u);
  EXPECT_EQ(plan.stats().corruptTraversals, 0u);
}

TEST(FaultPlan, CapExhaustionDropsPacketAndRaisesLinkFailure) {
  // BER = 1 makes every copy corrupt: the traversal replays exactly the cap,
  // the final copy is also corrupt, and the hardware drops the packet
  // instead of silently delivering it. The loss is observable: stats, trace
  // kind, drop handler — and the counter never bumps.
  fault::FaultConfig fc;
  fc.bitErrorRate = 1.0;
  fc.maxRetransmits = 2;
  Fixture f;
  trace::ActivityTrace tr;
  f.machine.setTrace(&tr);
  fault::FaultPlan plan(fc);
  f.machine.setFaultModel(&plan);

  net::PacketPtr dropped;
  std::vector<ClientAddr> denied;
  f.machine.setDropHandler(
      [&](const net::PacketPtr& p, const std::vector<ClientAddr>& d) {
        dropped = p;
        denied = d;
      });

  ClientAddr dst{f.nodeAt(1, 0, 0), kSlice0};
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = true;
  f.machine.client({f.nodeAt(0, 0, 0), kSlice0}).post(args);
  f.sim.run();

  EXPECT_EQ(f.machine.client(dst).counterValue(0), 0u) << "dropped packet bumped";
  EXPECT_EQ(f.machine.stats().packetsDelivered, 0u);
  EXPECT_EQ(f.machine.stats().linkFailures, 1u);
  EXPECT_EQ(f.machine.stats().crcRetransmits, 2u);
  // The exhausted replays still charged the calibrated penalty.
  const net::LatencyConfig& lat = f.machine.latency();
  sim::Time perReplay =
      lat.linkSerialization(net::kHeaderBytes) + sim::ns(lat.crcRetransmitNs);
  EXPECT_EQ(f.machine.stats().retransmitDelay, 2 * perReplay);
  EXPECT_EQ(plan.stats().corruptTraversals, 1u);
  EXPECT_EQ(plan.stats().replays, 2u);
  EXPECT_EQ(plan.stats().linkFailures, 1u);
  // The drop handler saw the packet and the lost receiver.
  ASSERT_NE(dropped, nullptr);
  ASSERT_EQ(denied.size(), 1u);
  EXPECT_EQ(denied[0], dst);
  // The failed transmission is traced under its own kind.
  EXPECT_GT(tr.busyTime(tr.unit("link.X+"), tr.kind("linkfail"), 0, sim::us(1)),
            0);
}

TEST(FaultPlan, BitErrorsAreRepairedNotLost) {
  // Heavy but non-certain BER: every packet still arrives (counters reach
  // their targets), with retransmissions accounted for.
  fault::FaultConfig fc;
  fc.seed = 99;
  fc.bitErrorRate = 1e-3;
  Fixture f;
  fault::FaultPlan plan(fc);
  f.machine.setFaultModel(&plan);

  const int kPackets = 200;
  ClientAddr dst{f.nodeAt(1, 0, 0), kSlice0};
  double done = -1.0;
  auto receiver = [&]() -> Task {
    co_await f.machine.client(dst).waitCounter(0, kPackets);
    done = toNs(f.sim.now());
  };
  f.sim.spawn(receiver());
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  for (int i = 0; i < kPackets; ++i) f.machine.client({0, kSlice0}).post(args);
  f.sim.run();

  EXPECT_GE(done, 0.0) << "delivery hung under bit errors";
  EXPECT_EQ(f.machine.stats().packetsDelivered, std::uint64_t(kPackets));
  EXPECT_GT(f.machine.stats().crcRetransmits, 0u);
  EXPECT_GT(f.machine.stats().retransmitDelay, 0);
}

TEST(FaultPlan, OutageStallsUntilWindowCloses) {
  Fixture f;
  fault::FaultPlan plan;
  plan.addLinkOutage(0, /*dim=*/0, /*sign=*/+1, 0, sim::us(10));
  f.machine.setFaultModel(&plan);
  double ns = f.oneWayNs({f.nodeAt(0, 0, 0), kSlice0},
                         {f.nodeAt(1, 0, 0), kSlice0}, 0);
  EXPECT_GT(ns, 10000.0);  // held for the 10 us window
  EXPECT_LT(ns, 10000.0 + 200.0);
  EXPECT_EQ(f.machine.stats().outageStalls, 1u);
  EXPECT_GT(f.machine.stats().stallDelay, 0);
}

TEST(FaultPlan, DegradedModeRoutesAroundOutage) {
  MachineConfig cfg;
  cfg.faultReroute = true;
  Fixture f({8, 8, 8}, cfg);
  fault::FaultPlan plan;
  plan.addLinkOutage(0, /*dim=*/0, /*sign=*/+1, 0, sim::us(1000));
  f.machine.setFaultModel(&plan);
  double ns = f.oneWayNs({f.nodeAt(0, 0, 0), kSlice0},
                         {f.nodeAt(1, 1, 0), kSlice0}, 0);
  // Y-first avoids the dead X+ link entirely: no stall, two hops.
  EXPECT_LT(ns, 400.0);
  EXPECT_EQ(f.machine.stats().outageStalls, 0u);
  EXPECT_EQ(f.machine.stats().faultReroutes, 1u);
  EXPECT_EQ(f.machine.linkTraversals(0, 0, +1), 0u);
  EXPECT_EQ(f.machine.linkTraversals(0, 1, +1), 1u);
}

/// One link permanently dead: traversals that still use it are held briefly
/// (outage) and then dropped (erasure), and degraded routing sees it as down.
struct DeadLink final : net::FaultModel {
  int node, dim, sign;
  DeadLink(int n, int d, int s) : node(n), dim(d), sign(s) {}
  net::LinkFaultOutcome onLinkTraversal(int n, int d, int s, std::size_t,
                                        sim::Time) override {
    if (n == node && d == dim && s == sign)
      return {.stall = sim::ns(500), .linkFailed = true};
    return {};
  }
  bool linkDown(int n, int d, int s, sim::Time) const override {
    return n == node && d == dim && s == sign;
  }
  sim::Time routerStallUntil(int, sim::Time t) const override { return t; }
};

TEST(FaultPlan, RerouteOnTimeoutRecoversAroundDeadLink) {
  // Combined outage + drop: the X+ link out of the origin holds the packet
  // for the outage window, then drops it. The machine starts with degraded
  // routing OFF, so the recovery path must do all three steps itself —
  // the watchdog timeout flips rerouteOnTimeout, the registry replays the
  // lost payload, and the resend routes Y-first around the dead link.
  Fixture f({4, 4, 4});
  core::DropRegistry reg(f.machine);
  DeadLink fm(f.nodeAt(0, 0, 0), /*dim=*/0, /*sign=*/+1);
  f.machine.setFaultModel(&fm);
  EXPECT_FALSE(f.machine.faultReroute());

  const int srcNode = f.nodeAt(0, 0, 0);
  ClientAddr dst{f.nodeAt(1, 1, 0), kSlice0};
  NetworkClient& dstClient = f.machine.client(dst);
  core::RecoveryConfig rc;
  rc.timeout = sim::us(2);
  rc.maxResends = 3;
  rc.resendBackoff = sim::us(1);
  rc.rerouteOnTimeout = true;
  core::RecoverableCountedWrite rcw(dstClient, 0, rc);
  rcw.expectFrom(srcNode, 1);
  bool done = false;
  auto waiter = [&]() -> Task {
    co_await rcw.await(1, [&](const core::WatchdogReport& r) {
      return core::resendFromRegistry(f.machine, reg, r);
    });
    done = true;
  };
  f.sim.spawn(waiter());
  std::uint64_t value = 0x162;
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = true;
  args.payload = net::makePayload(&value, sizeof value);
  f.machine.client({srcNode, kSlice0}).post(args);
  f.sim.run();

  EXPECT_TRUE(done) << "rerouted step never completed";
  EXPECT_TRUE(f.machine.faultReroute()) << "timeout did not flip reroute";
  EXPECT_EQ(dstClient.counterValue(0), 1u);
  EXPECT_EQ(dstClient.read<std::uint64_t>(0), 0x162u);
  // The original attempt: one outage stall, then the drop.
  EXPECT_EQ(f.machine.stats().outageStalls, 1u);
  EXPECT_EQ(f.machine.stats().linkFailures, 1u);
  EXPECT_EQ(rcw.stats().timeouts, 1u);
  EXPECT_EQ(rcw.stats().resends, 1u);
  EXPECT_EQ(rcw.stats().hardFailures, 0u);
  // The resend deviated from the dead preferred dimension: Y-first, and the
  // dead X+ link saw only the doomed original traversal.
  EXPECT_GE(f.machine.stats().faultReroutes, 1u);
  EXPECT_EQ(f.machine.linkTraversals(srcNode, 0, +1), 1u);
}

TEST(FaultPlan, StalledRouterDelaysRingTraffic) {
  Fixture f;
  fault::FaultPlan plan;
  plan.addRouterStall(f.nodeAt(1, 0, 0), 0, sim::us(5));
  f.machine.setFaultModel(&plan);
  double ns = f.oneWayNs({f.nodeAt(0, 0, 0), kSlice0},
                         {f.nodeAt(1, 0, 0), kSlice0}, 0);
  EXPECT_GT(ns, 5000.0);
  EXPECT_GE(f.machine.stats().routerStalls, 1u);
}

TEST(FaultPlan, FaultEventsAreTraced) {
  fault::FaultConfig fc;
  fc.bitErrorRate = 1.0;
  fc.maxRetransmits = 1;
  Fixture f;
  trace::ActivityTrace tr;
  f.machine.setTrace(&tr);
  fault::FaultPlan plan(fc);
  plan.addLinkOutage(0, 0, +1, 0, sim::ns(500));
  f.machine.setFaultModel(&plan);
  // BER = 1 with cap 1 drops the packet at the first link; every fault event
  // on the way is traced under its own kind.
  NetworkClient::SendArgs args;
  args.dst = {f.nodeAt(1, 0, 0), kSlice0};
  args.counterId = 0;
  args.inOrder = true;
  f.machine.client({f.nodeAt(0, 0, 0), kSlice0}).post(args);
  f.sim.run();

  int retx = tr.kind("retx"), outage = tr.kind("outage");
  int linkfail = tr.kind("linkfail");
  int xplus = tr.unit("link.X+");
  EXPECT_GT(tr.busyTime(xplus, retx, 0, sim::us(1)), 0);
  EXPECT_GT(tr.busyTime(xplus, outage, 0, sim::us(1)), 0);
  EXPECT_GT(tr.busyTime(xplus, linkfail, 0, sim::us(1)), 0);
}

TEST(Watchdog, TimesOutWithDiagnosticInsteadOfDeadlock) {
  Fixture f({4, 4, 4});
  NetworkClient& dst = f.machine.client({0, kSlice0});
  core::WatchdogReport report;
  auto waiter = [&]() -> Task {
    core::CountedWriteWatchdog wd(dst, 0, sim::us(2));
    wd.expectFrom(1, 1);
    wd.expectFrom(2, 2);
    report = co_await wd.wait(3);
  };
  f.sim.spawn(waiter());
  // Node 1 sends its packet; node 2 never does.
  NetworkClient::SendArgs args;
  args.dst = dst.addr();
  args.counterId = 0;
  f.machine.client({1, kSlice0}).post(args);
  f.sim.run();  // returns: the deadline event keeps the simulation live

  EXPECT_TRUE(report.timedOut);
  EXPECT_EQ(report.expected, 3u);
  EXPECT_EQ(report.arrived, 1u);
  EXPECT_DOUBLE_EQ(toNs(report.resolvedAt), 2000.0);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].node, 2);
  EXPECT_EQ(report.missing[0].expected, 2u);
  EXPECT_EQ(report.missing[0].arrived, 0u);
  EXPECT_NE(report.describe().find("TIMED OUT"), std::string::npos);
  EXPECT_NE(report.describe().find("node 2"), std::string::npos);
}

TEST(Watchdog, ResolvesNormallyWhenTrafficArrives) {
  Fixture f({4, 4, 4});
  NetworkClient& dst = f.machine.client({0, kSlice1});
  core::WatchdogReport report;
  auto waiter = [&]() -> Task {
    core::CountedWriteWatchdog wd(dst, 0, sim::us(100));
    report = co_await wd.wait(2);
  };
  f.sim.spawn(waiter());
  NetworkClient::SendArgs args;
  args.dst = dst.addr();
  args.counterId = 0;
  f.machine.client({1, kSlice0}).post(args);
  f.machine.client({2, kSlice0}).post(args);
  f.sim.run();

  EXPECT_FALSE(report.timedOut);
  EXPECT_EQ(report.arrived, 2u);
  // Resolution is prompt (counter path), not at the 100 us deadline.
  EXPECT_LT(toNs(report.resolvedAt), 1000.0);
}

TEST(Watchdog, TimeoutCanEnableDegradedRouting) {
  Fixture f({4, 4, 4});
  NetworkClient& dst = f.machine.client({0, kSlice0});
  EXPECT_FALSE(f.machine.faultReroute());
  auto waiter = [&]() -> Task {
    core::CountedWriteWatchdog wd(dst, 0, sim::us(1));
    wd.rerouteOnTimeout(true);
    co_await wd.wait(1);  // nothing is ever sent
  };
  f.sim.spawn(waiter());
  f.sim.run();
  EXPECT_TRUE(f.machine.faultReroute());
}

TEST(FaultReport, SummaryReflectsCounters) {
  fault::FaultConfig fc;
  fc.bitErrorRate = 1.0;
  fc.maxRetransmits = 1;
  Fixture f;
  fault::FaultPlan plan(fc);
  f.machine.setFaultModel(&plan);
  // The packet replays once, then drops at cap exhaustion.
  NetworkClient::SendArgs args;
  args.dst = {f.nodeAt(1, 0, 0), kSlice0};
  args.counterId = 0;
  args.inOrder = true;
  f.machine.client({f.nodeAt(0, 0, 0), kSlice0}).post(args);
  f.sim.run();

  std::ostringstream os;
  fault::printFaultSummary(os, f.machine, &plan);
  EXPECT_NE(os.str().find("CRC retransmits"), std::string::npos);
  EXPECT_NE(os.str().find("link failures (drops)"), std::string::npos);
  EXPECT_NE(os.str().find("1"), std::string::npos);
  std::string line = fault::faultSummaryLine(f.machine.stats());
  EXPECT_NE(line.find("retx=1"), std::string::npos);
  EXPECT_NE(line.find("linkfail=1"), std::string::npos);
}

}  // namespace
}  // namespace anton
