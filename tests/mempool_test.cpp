// Pool-layer coverage for the zero-allocation hot path: slab exhaustion is
// a loud error (never UB), recycled slots come back with fresh bookkeeping,
// multicast replicas share one refcounted payload slot, and blocks survive
// the pooling knob flipping between heap and slab origins.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/machine.hpp"
#include "net/packet.hpp"
#include "sim/event_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/hotpath.hpp"
#include "util/slab_pool.hpp"

namespace anton {
namespace {

using util::ScopedHotPath;
using util::SlabPool;

TEST(SlabPool, ServesAndRecyclesSlots) {
  ScopedHotPath hot(true);
  SlabPool pool("t");
  void* a = pool.alloc(48);
  void* b = pool.alloc(48);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.stats().poolAllocs, 2u);
  EXPECT_EQ(pool.stats().live, 2u);

  pool.free(b);
  EXPECT_EQ(pool.stats().live, 1u);
  // Freelists are LIFO per size class: the next same-bucket request reuses
  // the slot just released, with zero new slab consumption.
  std::uint64_t carved = pool.stats().slabBytes;
  void* b2 = pool.alloc(40);  // same 64-byte bucket as the 48-byte slot
  EXPECT_EQ(b2, b);
  EXPECT_EQ(pool.stats().slabBytes, carved);
  EXPECT_EQ(pool.stats().liveHighWater, 2u);
  pool.free(b2);
  pool.free(a);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(SlabPool, ExhaustionIsALoudErrorNamingThePool) {
  ScopedHotPath hot(true);
  SlabPool pool("tiny-budget", /*maxBytes=*/1024);
  try {
    pool.alloc(64);  // the first slab carve (64 KiB) already busts 1 KiB
    FAIL() << "exhausted pool must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("tiny-budget"), std::string::npos)
        << "the error must name the pool: " << e.what();
  }
  // A raised budget recovers the pool; nothing was corrupted by the throw.
  pool.setMaxBytes(1 << 20);
  void* p = pool.alloc(64);
  ASSERT_NE(p, nullptr);
  pool.free(p);
}

TEST(SlabPool, OversizedRequestsAndDisabledPoolingFallBackToTheHeap) {
  SlabPool pool("t");
  {
    ScopedHotPath hot(true);
    void* big = pool.alloc(SlabPool::kMaxSlotBytes + 1);
    EXPECT_EQ(pool.stats().heapAllocs, 1u);
    EXPECT_EQ(pool.stats().poolAllocs, 0u);
    pool.free(big);
    EXPECT_EQ(pool.stats().heapFrees, 1u);
  }
  {
    ScopedHotPath hot(false);
    void* p = pool.alloc(64);
    EXPECT_EQ(pool.stats().heapAllocs, 2u);
    pool.free(p);
    EXPECT_EQ(pool.stats().heapFrees, 2u);
  }
  EXPECT_EQ(pool.stats().slabBytes, 0u) << "no slab was ever carved";
}

TEST(SlabPool, BlocksSurviveThePoolingKnobFlippingBetweenAllocAndFree) {
  // Origin is tagged in the block header, so a block allocated under one
  // knob setting is released correctly under the other.
  SlabPool pool("t");
  void* heapBorn;
  void* poolBorn;
  {
    ScopedHotPath off(false);
    heapBorn = pool.alloc(64);
  }
  {
    ScopedHotPath on(true);
    poolBorn = pool.alloc(64);
    pool.free(heapBorn);  // heap-tagged: must go back to operator delete
    EXPECT_EQ(pool.stats().heapFrees, 1u);
    EXPECT_EQ(pool.stats().poolFrees, 0u);
  }
  {
    ScopedHotPath off(false);
    pool.free(poolBorn);  // pool-tagged: must go back to its freelist
    EXPECT_EQ(pool.stats().poolFrees, 1u);
    EXPECT_EQ(pool.stats().live, 0u);
  }
}

// --- cross-thread discipline for the sharded kernel's per-shard pools ------
// Shard workers each own a pool set (Simulator::WorkerPoolSet); a block may
// still be released from a different thread (e.g. a cross-shard mail's
// payload dropping its last reference at the consuming shard). The contract:
// a non-owner free NEVER touches another pool's freelists — it parks on the
// owner's lock-free remote stack until the owner drains at an alloc or a
// shard barrier.

TEST(SlabPool, CrossThreadFreeParksUntilTheOwnerDrainsAtTheNextAlloc) {
  ScopedHotPath hot(true);
  SlabPool pool("xfree");
  void* a = pool.alloc(48);
  std::thread([&] { pool.free(a); }).join();
  // Parked on the remote stack: not yet recycled, still counted live.
  EXPECT_EQ(pool.stats().live, 1u);
  EXPECT_EQ(pool.stats().poolFrees, 0u);
  // The owner's next alloc drains the stack and reuses the slot with no
  // new slab consumption.
  std::uint64_t carved = pool.stats().slabBytes;
  void* b = pool.alloc(48);
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.stats().slabBytes, carved);
  EXPECT_EQ(pool.stats().poolFrees, 1u);
  EXPECT_EQ(pool.stats().live, 1u);
  pool.free(b);
}

TEST(SlabPool, ExplicitDrainAtAQuiescentPointRecoversParkedSlots) {
  ScopedHotPath hot(true);
  SlabPool pool("xdrain");
  void* a = pool.alloc(64);
  void* b = pool.alloc(64);
  std::thread([&] {
    pool.free(a);
    pool.free(b);
  }).join();
  EXPECT_EQ(pool.stats().live, 2u);
  pool.drainRemote();  // what a shard barrier does
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().poolFrees, 2u);
}

TEST(SlabPool, ReleaseRoutesEveryBlockToItsOriginPoolNotTheCallersPool) {
  ScopedHotPath hot(true);
  SlabPool shard0("shard0");
  SlabPool shard1("shard1");
  void* a = shard0.alloc(64);
  void* b = shard1.alloc(64);
  // release() reads the origin from the block header; it must not consult
  // any notion of "the current pool".
  SlabPool::release(b);
  SlabPool::release(a);
  EXPECT_EQ(shard0.stats().live, 0u);
  EXPECT_EQ(shard0.stats().poolFrees, 1u);
  EXPECT_EQ(shard1.stats().live, 0u);
  EXPECT_EQ(shard1.stats().poolFrees, 1u);
}

TEST(SlabPool, ForeignWorkerReleaseNeverTouchesAnotherPoolsFreelist) {
  ScopedHotPath hot(true);
  SlabPool shard0("shard0");
  SlabPool shard1("shard1");
  void* a = shard0.alloc(64);
  std::thread([&] {
    // Shard 1's worker drops shard 0's block: it must park on shard 0's
    // remote stack, and shard 1's pool must be untouched.
    SlabPool::release(a);
  }).join();
  EXPECT_EQ(shard1.stats().poolAllocs, 0u);
  EXPECT_EQ(shard1.stats().poolFrees, 0u);
  EXPECT_EQ(shard0.stats().live, 1u);  // parked
  shard0.drainRemote();
  EXPECT_EQ(shard0.stats().live, 0u);
  EXPECT_EQ(shard0.stats().poolFrees, 1u);
}

TEST(SlabPool, CrossThreadHeapFreeIsImmediateAndCounted) {
  SlabPool pool("xheap");
  void* p;
  {
    ScopedHotPath off(false);
    p = pool.alloc(64);  // heap-tagged block
  }
  std::thread([&] { pool.free(p); }).join();
  // Heap blocks never ride the freelists, so the non-owner free completes
  // immediately; only the counter crosses threads (atomically).
  EXPECT_EQ(pool.stats().heapFrees, 1u);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(SlabPool, SetOwnerHandsFreelistRightsToTheAdoptingWorker) {
  ScopedHotPath hot(true);
  SlabPool pool("adopted");
  void* a = pool.alloc(48);
  std::thread worker([&] {
    ScopedHotPath workerHot(true);
    pool.setOwner(std::this_thread::get_id());
    pool.free(a);  // owner path now: straight onto the freelist
    void* b = pool.alloc(48);
    EXPECT_EQ(b, a) << "the adopting owner must see its own freelist";
    pool.free(b);
  });
  worker.join();
  pool.setOwner(std::this_thread::get_id());  // hand back after the join
  EXPECT_EQ(pool.stats().poolFrees, 2u);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(PacketPool, RecycledPacketSlotComesBackWithFreshBookkeeping) {
  ScopedHotPath hot(true);
  net::PacketPtr p = net::allocatePacket();
  p->counterId = 7;
  p->address = 0xabcd;
  p->inOrder = true;
  p->injectedAt = sim::ns(123);
  p->tailLag = sim::ns(9);
  p->routeSalt = 42;
  p->payload = net::makeZeroPayload(64);
  const void* slot = p.get();
  p.reset();  // back to the freelist

  net::PacketPtr q = net::allocatePacket();
  EXPECT_EQ(static_cast<const void*>(q.get()), slot)
      << "the freed slot was not recycled";
  EXPECT_EQ(q->counterId, net::kNoCounter);
  EXPECT_EQ(q->address, 0u);
  EXPECT_FALSE(q->inOrder);
  EXPECT_EQ(q->injectedAt, 0);
  EXPECT_EQ(q->tailLag, 0);
  EXPECT_EQ(q->routeSalt, 0u);
  EXPECT_EQ(q->payload, nullptr);
}

TEST(PacketPool, RecycledPayloadSlotIsRezeroed) {
  ScopedHotPath hot(true);
  std::vector<std::byte> junk(net::kMaxPayloadBytes, std::byte{0xff});
  net::PayloadPtr a = net::makePayload(junk.data(), junk.size());
  const void* slot = a.get();
  a.reset();
  // A zero payload reusing the same slot must not see the old bytes.
  net::PayloadPtr b = net::makeZeroPayload(net::kMaxPayloadBytes);
  EXPECT_EQ(static_cast<const void*>(b.get()), slot);
  for (std::size_t i = 0; i < b->size(); ++i)
    ASSERT_EQ(b->data()[i], std::byte{0}) << "stale byte at " << i;
}

TEST(PacketPool, MulticastReplicasShareOnePayloadSlot) {
  ScopedHotPath hot(true);
  sim::Simulator sim;
  net::Machine m(sim, {2, 2, 1});
  // Local fan-out to three slices plus one link hop to the +x neighbor,
  // which delivers to its slice 0.
  net::MulticastEntry root;
  root.clientMask = (1u << net::kSlice0) | (1u << net::kSlice1) |
                    (1u << net::kSlice2);
  root.linkMask = 1u << 0;  // +x
  m.setMulticastPattern(0, 0, root);
  net::MulticastEntry leaf;
  leaf.clientMask = 1u << net::kSlice0;
  m.setMulticastPattern(1, 0, leaf);

  std::size_t liveBefore = net::payloadPool().stats().live;
  std::uint64_t value = 0x1122334455667788ull;
  net::NetworkClient::SendArgs args;
  args.type = net::PacketType::kFifo;
  args.multicastPattern = 0;
  args.payload = net::makePayload(&value, sizeof value);
  m.client({0, net::kSlice3}).post(args);
  sim.run();

  // Four FIFO deliveries, all holding the same payload slot: exactly one
  // payload slot is live beyond the baseline, however wide the fan-out.
  std::vector<net::PacketPtr> got;
  for (int node : {0, 0, 0, 1}) {
    static int sliceOf[] = {net::kSlice0, net::kSlice1, net::kSlice2,
                            net::kSlice0};
    net::PacketPtr p = m.slice(node, sliceOf[got.size()]).pollFifo();
    ASSERT_NE(p, nullptr);
    got.push_back(std::move(p));
  }
  EXPECT_EQ(net::payloadPool().stats().live, liveBefore + 1);
  for (const net::PacketPtr& p : got) {
    EXPECT_EQ(p->payload, got[0]->payload) << "replicas must share the slot";
    EXPECT_EQ(0, std::memcmp(p->payload->data(), &value, sizeof value));
  }
  got.clear();
  args.payload = nullptr;  // the send-args copy was the last off-fabric ref
  EXPECT_EQ(net::payloadPool().stats().live, liveBefore)
      << "the shared slot must return once the last replica lets go";
}

TEST(EventFn, LargeCapturesStayInlineWhenTheKnobIsOnAndWorkBoxed) {
  // Behavior (invocation, moves, destruction) is identical in both modes;
  // only the storage strategy differs.
  struct Big {
    int pad[12] = {};  // 48 bytes: over the legacy SBO, under kInlineBytes
    int* hits;
    void operator()() const { ++*hits; }
  };
  for (bool knob : {true, false}) {
    ScopedHotPath hot(knob);
    int hits = 0;
    sim::EventFn fn(Big{{}, &hits});
    sim::EventFn moved(std::move(fn));
    EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(moved));
    moved();
    moved();
    EXPECT_EQ(hits, 2);
    sim::EventFn assigned;
    assigned = std::move(moved);
    assigned();
    EXPECT_EQ(hits, 3);
  }
}

TEST(EventFn, OversizedCapturesBoxToTheHeapInEitherMode) {
  struct Huge {
    char pad[96] = {};  // over kInlineBytes: always boxed
    int* hits;
    void operator()() const { ++*hits; }
  };
  static_assert(sizeof(Huge) > sim::EventFn::kInlineBytes);
  ScopedHotPath hot(true);
  int hits = 0;
  sim::EventFn fn(Huge{{}, &hits});
  sim::EventFn moved(std::move(fn));
  moved();
  EXPECT_EQ(hits, 1);
}

TEST(TaskFramePool, CoroutineFramesRecycleThroughTheSlabPool) {
  ScopedHotPath hot(true);
  const util::SlabPoolStats before = sim::taskFramePool().stats();
  sim::Simulator sim;
  auto tiny = [](sim::Simulator& s) -> sim::Task { co_await s.delay(sim::ns(1)); };
  for (int i = 0; i < 64; ++i) sim.spawn(tiny(sim));
  sim.run();
  const util::SlabPoolStats& after = sim::taskFramePool().stats();
  EXPECT_GE(after.poolAllocs - before.poolAllocs, 64u);
  EXPECT_EQ(after.live, before.live) << "frames leaked past the run";
  // The second wave reuses the first wave's slots: no new slab memory.
  std::uint64_t carved = after.slabBytes;
  for (int i = 0; i < 64; ++i) sim.spawn(tiny(sim));
  sim.run();
  EXPECT_EQ(sim::taskFramePool().stats().slabBytes, carved);
}

}  // namespace
}  // namespace anton
