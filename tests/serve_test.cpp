// The simulation service (src/serve): spec round-trips and validation, the
// deterministic runner, the concurrent job server with its snapshot-keyed
// cache, and the line-delimited protocol.
//
// The determinism contract under test: a job's result is a pure function of
// its spec — identical specs produce bit-identical canonical JSON whether
// they run serially on one arena, concurrently on a 4-worker pool, or out
// of the cache. CI also runs this binary under TSan; the server must be
// race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_spec.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "verify/checks.hpp"

namespace anton::serve {
namespace {

namespace json = util::json;

/// The mixed-family workload the acceptance criteria name: 8 jobs covering
/// every family, small enough to run in test time.
std::vector<JobSpec> mixedWorkload() {
  std::vector<JobSpec> specs;
  specs.push_back(quickstartMdSpec(/*steps=*/1));
  specs.push_back(quickstartMdSpec(/*steps=*/2));
  specs.push_back(fig5PingSpec(/*maxHops=*/2, /*payloadBytes=*/64));
  specs.push_back(fig5PingSpec(/*maxHops=*/1, /*payloadBytes=*/0));
  specs.push_back(table2AllReduceSpec({2, 2, 2}, /*words=*/4));
  specs.push_back(table2AllReduceSpec({4, 4, 1}, /*words=*/0));
  specs.push_back(faultSweepSpec({2, 2, 2}, /*bitErrorRate=*/1e-5));
  specs.push_back(faultSweepSpec({2, 2, 2}, /*bitErrorRate=*/0.0,
                                 /*maxRetransmits=*/4));
  return specs;
}

TEST(JobSpec, RoundTripsThroughCanonicalJson) {
  for (const JobSpec& spec : mixedWorkload()) {
    SCOPED_TRACE(specToJson(spec));
    JobSpec back = specFromJson(specToJson(spec));
    EXPECT_EQ(back, spec);
    // Canonical bytes: serialize(parse(serialize(x))) == serialize(x).
    EXPECT_EQ(specToJson(back), specToJson(spec));
  }
}

TEST(JobSpec, RejectsUnknownKeysAndWrongTypes) {
  EXPECT_THROW(specFromJson("{\"family\":\"quickstart-md\",\"bogus\":1}"),
               std::runtime_error);
  EXPECT_THROW(specFromJson("{\"family\":\"no-such-family\"}"),
               std::invalid_argument);
  EXPECT_THROW(specFromJson("{\"family\":\"quickstart-md\",\"steps\":\"2\"}"),
               std::runtime_error);
  EXPECT_THROW(specFromJson("{\"family\":\"quickstart-md\",\"shape\":\"4x4\"}"),
               std::runtime_error);
}

TEST(JobSpec, ValidationCatchesOutOfRangeFields) {
  EXPECT_TRUE(validateSpec(quickstartMdSpec()).empty());

  JobSpec bad = quickstartMdSpec();
  bad.steps = 0;
  EXPECT_FALSE(validateSpec(bad).empty());

  bad = quickstartMdSpec();
  bad.atoms = 1;
  EXPECT_FALSE(validateSpec(bad).empty());

  bad = fig5PingSpec();
  bad.shape = {4, 4, 4};  // Fig. 5 is pinned to the paper's 8x8x8 machine
  EXPECT_FALSE(validateSpec(bad).empty());

  bad = faultSweepSpec({2, 2, 2}, 0.5);  // BER over the model's ceiling
  EXPECT_FALSE(validateSpec(bad).empty());

  bad = table2AllReduceSpec({0, 4, 4});
  EXPECT_FALSE(validateSpec(bad).empty());
}

TEST(JobSpec, ParseShapeAcceptsAxBxCOnly) {
  EXPECT_EQ(parseShape("8x8x8"), (util::TorusShape{8, 8, 8}));
  EXPECT_THROW(parseShape("8x8"), std::runtime_error);
  EXPECT_THROW(parseShape("axbxc"), std::runtime_error);
  EXPECT_THROW(parseShape(""), std::runtime_error);
}

TEST(Runner, JobKeyCoversSpecAndPlan) {
  JobSpec a = table2AllReduceSpec({2, 2, 2});
  JobSpec b = a;
  b.words = 8;
  verify::CommPlan planA = planForSpec(a);
  verify::CommPlan planB = planForSpec(b);
  EXPECT_NE(jobKey(a, planA), jobKey(b, planB));
  EXPECT_EQ(jobKey(a, planA), jobKey(a, planForSpec(a)));
}

TEST(Runner, EveryFamilyPlanPassesTheStaticVerifier) {
  for (const JobSpec& spec : mixedWorkload()) {
    SCOPED_TRACE(specToJson(spec));
    EXPECT_TRUE(verify::verifyPlan(planForSpec(spec)).ok());
  }
}

TEST(Runner, CancelTokenStopsBetweenUnitsOfWork) {
  std::atomic<bool> cancelled{true};
  CancelToken token;
  token.cancelled = &cancelled;
  sim::Simulator arena;
  RunOutcome out = runJob(quickstartMdSpec(/*steps=*/5), arena, token);
  EXPECT_TRUE(out.cancelled);
  EXPECT_TRUE(out.resultJson.empty());
}

TEST(JobSpec, ShardingRoundTripsAndKeepsSerialBytesStable) {
  JobSpec spec = quickstartMdSpec();
  // Serial specs must serialize exactly as before the sharding field
  // existed (cache keys of cached results stay valid).
  EXPECT_EQ(specToJson(spec).find("sharding"), std::string::npos);
  spec.sharding = "per-node";
  EXPECT_NE(specToJson(spec).find("\"sharding\":\"per-node\""),
            std::string::npos);
  JobSpec back = specFromJson(specToJson(spec));
  EXPECT_EQ(back, spec);
  EXPECT_TRUE(validateSpec(spec).empty());

  JobSpec bad = spec;
  bad.sharding = "checkerboard";
  EXPECT_FALSE(validateSpec(bad).empty());
  bad = fig5PingSpec();
  bad.sharding = "per-node";
  EXPECT_FALSE(validateSpec(bad).empty());
  bad = faultSweepSpec({2, 2, 2}, 1e-5);
  bad.sharding = "slab-x";
  EXPECT_FALSE(validateSpec(bad).empty());
  bad = quickstartMdSpec();
  bad.sharding = "per-node";
  bad.degradedMode = true;
  EXPECT_FALSE(validateSpec(bad).empty());
}

TEST(Runner, ShardedQuickstartMdIsBitIdenticalToSerial) {
  // The serve-level acceptance check: a sharded MD job computes the same
  // trajectory (positionDigest) and the same step metrics as the serial
  // run of the same spec — sharding may only change wall-clock time.
  sim::Simulator arena;
  JobSpec spec = quickstartMdSpec(/*steps=*/2);
  RunOutcome serial = runJob(spec, arena);
  spec.sharding = "per-node";
  RunOutcome sharded = runJob(spec, arena);

  EXPECT_EQ(sharded.metrics.at("sharded"), 1.0) << "fell back to serial";
  for (const char* key : {"steps_done", "mean_step_us", "last_step_us",
                          "sim_us", "migrated_total"})
    EXPECT_EQ(serial.metrics.at(key), sharded.metrics.at(key)) << key;
  auto digestOf = [](const RunOutcome& o) {
    return util::json::asString(
        util::json::field(util::json::parse(o.resultJson, "result"),
                          "positionDigest", "positionDigest"),
        "positionDigest");
  };
  EXPECT_EQ(digestOf(serial), digestOf(sharded));
}

TEST(Runner, ShardedAllReduceMatchesSerialTiming) {
  sim::Simulator arena;
  JobSpec spec = table2AllReduceSpec({4, 4, 2}, /*words=*/4);
  RunOutcome serial = runJob(spec, arena);
  spec.sharding = "slab-x";
  RunOutcome sharded = runJob(spec, arena);
  EXPECT_EQ(sharded.metrics.at("sharded"), 1.0) << "fell back to serial";
  EXPECT_EQ(sharded.metrics.at("correct"), 1.0);
  EXPECT_EQ(serial.metrics.at("allreduce_us"),
            sharded.metrics.at("allreduce_us"));
}

// The acceptance-criteria core: 8 mixed-family jobs on a 4-worker server
// complete bit-identical to serial execution on a single arena.
TEST(JobServer, ParallelResultsMatchSerialExecutionBitForBit) {
  std::vector<JobSpec> specs = mixedWorkload();

  std::vector<RunOutcome> serial;
  sim::Simulator arena;
  for (const JobSpec& spec : specs) {
    arena.reset();
    serial.push_back(runJob(spec, arena));
  }

  JobServer server({.workers = 4, .queueCapacity = 16});
  std::vector<std::uint64_t> ids;
  for (const JobSpec& spec : specs) {
    SubmitOutcome out = server.submit(spec);
    ASSERT_TRUE(out.accepted) << out.reason;
    ids.push_back(out.id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE(specToJson(specs[i]));
    JobRecord rec = server.wait(ids[i]);
    EXPECT_EQ(rec.state, JobState::kDone) << rec.error;
    EXPECT_EQ(rec.violations, 0);
    EXPECT_FALSE(rec.cacheHit);
    EXPECT_EQ(rec.resultJson, serial[i].resultJson);
    EXPECT_EQ(rec.digest, serial[i].digest);
  }

  // The arena-reuse audit: no worker ever found leftover events.
  json::Value status = json::parse(server.statusz(), "statusz");
  EXPECT_EQ(json::asU64(json::field(status, "arenaDirtyResets", "statusz"),
                        "statusz.arenaDirtyResets"),
            0u);
  server.shutdown();
}

// Concurrency determinism + the cache: the same spec submitted twice
// concurrently (cache off, so both actually run) produces bit-identical
// results; a third submission with the cache on is served without running.
TEST(JobServer, ConcurrentDuplicatesAreBitIdenticalAndThenCached) {
  JobServer server({.workers = 2, .queueCapacity = 8});
  JobSpec spec = quickstartMdSpec(/*steps=*/2);

  SubmitOptions noCache;
  noCache.useCache = false;
  SubmitOutcome a = server.submit(spec, noCache);
  SubmitOutcome b = server.submit(spec, noCache);
  ASSERT_TRUE(a.accepted && b.accepted);
  JobRecord ra = server.wait(a.id);
  JobRecord rb = server.wait(b.id);
  ASSERT_EQ(ra.state, JobState::kDone) << ra.error;
  ASSERT_EQ(rb.state, JobState::kDone) << rb.error;
  EXPECT_FALSE(ra.cacheHit);
  EXPECT_FALSE(rb.cacheHit);
  EXPECT_EQ(ra.resultJson, rb.resultJson);
  EXPECT_EQ(ra.digest, rb.digest);
  EXPECT_EQ(ra.cacheKeyHex, rb.cacheKeyHex);

  SubmitOutcome c = server.submit(spec);
  ASSERT_TRUE(c.accepted);
  JobRecord rc = server.wait(c.id);
  EXPECT_EQ(rc.state, JobState::kDone) << rc.error;
  EXPECT_TRUE(rc.cacheHit);
  EXPECT_EQ(rc.resultJson, ra.resultJson);
  EXPECT_EQ(rc.digest, ra.digest);
  server.shutdown();
}

TEST(JobServer, InvalidSpecsAreRejectedAtSubmit) {
  JobServer server({.workers = 1, .queueCapacity = 4});
  JobSpec bad = quickstartMdSpec();
  bad.steps = -3;
  SubmitOutcome out = server.submit(bad);
  EXPECT_FALSE(out.accepted);
  EXPECT_NE(out.reason.find("steps"), std::string::npos) << out.reason;
  server.shutdown();
}

TEST(JobServer, FullQueueRejectsWithoutBlocking) {
  JobServer server({.workers = 1, .queueCapacity = 2});
  server.pause();  // hold the worker so submissions stay queued
  JobSpec spec = table2AllReduceSpec({2, 2, 2});
  SubmitOutcome a = server.submit(spec);
  JobSpec other = spec;
  other.words = 8;
  SubmitOutcome b = server.submit(other);
  ASSERT_TRUE(a.accepted && b.accepted);

  JobSpec third = spec;
  third.words = 16;
  SubmitOutcome c = server.submit(third);
  EXPECT_FALSE(c.accepted);
  EXPECT_NE(c.reason.find("queue full"), std::string::npos) << c.reason;

  server.resume();
  EXPECT_EQ(server.wait(a.id).state, JobState::kDone);
  EXPECT_EQ(server.wait(b.id).state, JobState::kDone);
  server.shutdown();
}

TEST(JobServer, QueuedJobsCancelImmediately) {
  JobServer server({.workers = 1, .queueCapacity = 4});
  server.pause();
  SubmitOutcome out = server.submit(table2AllReduceSpec({2, 2, 2}));
  ASSERT_TRUE(out.accepted);
  EXPECT_TRUE(server.cancel(out.id));
  JobRecord rec = server.wait(out.id);  // settles while still paused
  EXPECT_EQ(rec.state, JobState::kCancelled);
  EXPECT_FALSE(server.cancel(out.id));  // already terminal
  server.resume();
  server.shutdown();
}

TEST(JobServer, ExpiredDeadlinesNeverRun) {
  JobServer server({.workers = 1, .queueCapacity = 4});
  server.pause();
  SubmitOptions opts;
  opts.deadlineMs = 1;
  SubmitOutcome out = server.submit(table2AllReduceSpec({2, 2, 2}), opts);
  ASSERT_TRUE(out.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.resume();
  JobRecord rec = server.wait(out.id);
  EXPECT_EQ(rec.state, JobState::kExpired);
  EXPECT_TRUE(rec.resultJson.empty());
  server.shutdown();
}

TEST(JobServer, RunningJobsCancelCooperatively) {
  JobServer server({.workers = 1, .queueCapacity = 4});
  // Long enough that cancellation lands mid-run: the runner checks the
  // token between MD steps.
  SubmitOutcome out = server.submit(quickstartMdSpec(/*steps=*/500));
  ASSERT_TRUE(out.accepted);
  for (int i = 0; i < 10000; ++i) {
    auto rec = server.poll(out.id);
    ASSERT_TRUE(rec.has_value());
    if (rec->state != JobState::kQueued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.cancel(out.id);
  JobRecord rec = server.wait(out.id);
  EXPECT_EQ(rec.state, JobState::kCancelled);
  server.shutdown();
}

TEST(JobServer, ShutdownFailsQueuedJobsAndJoins) {
  JobServer server({.workers = 1, .queueCapacity = 8});
  server.pause();
  SubmitOutcome out = server.submit(table2AllReduceSpec({2, 2, 2}));
  ASSERT_TRUE(out.accepted);
  server.shutdown();
  JobRecord rec = server.wait(out.id);
  EXPECT_EQ(rec.state, JobState::kFailed);
  EXPECT_FALSE(server.submit(table2AllReduceSpec({2, 2, 2})).accepted);
  server.shutdown();  // idempotent
}

TEST(JobServer, StatuszReportsWorkersFamiliesAndCache) {
  JobServer server({.workers = 2, .queueCapacity = 8});
  JobSpec spec = table2AllReduceSpec({2, 2, 2});
  server.wait(server.submit(spec).id);
  server.wait(server.submit(spec).id);  // cache hit

  json::Value status = json::parse(server.statusz(), "statusz");
  const json::Value& jobs = json::field(status, "jobs", "statusz");
  EXPECT_EQ(json::asU64(json::field(jobs, "done", "statusz"), "done"), 2u);
  EXPECT_EQ(json::asU64(json::field(status, "cacheHits", "s"), "hits"), 1u);
  EXPECT_EQ(json::asU64(json::field(status, "cacheEntries", "s"), "n"), 1u);
  EXPECT_EQ(json::field(status, "workers", "statusz").arr.size(), 2u);
  const json::Value& fams = json::field(status, "families", "statusz");
  ASSERT_TRUE(fams.obj.count("table2-allreduce"));
  server.shutdown();
}

TEST(Protocol, SubmitPollWaitCancelStatusShutdown) {
  JobServer server({.workers = 1, .queueCapacity = 4});
  std::string line = "{\"op\":\"submit\",\"spec\":" +
                     specToJson(table2AllReduceSpec({2, 2, 2})) + "}";
  ProtocolResult sub = handleLine(server, line);
  EXPECT_FALSE(sub.shutdown);
  json::Value resp = json::parse(sub.response, "resp");
  ASSERT_TRUE(json::asBool(json::field(resp, "ok", "r"), "ok"));
  std::uint64_t id = json::asU64(json::field(resp, "id", "r"), "id");

  ProtocolResult waited = handleLine(
      server, "{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}");
  json::Value wr = json::parse(waited.response, "wait");
  const json::Value& job = json::field(wr, "job", "wait");
  EXPECT_EQ(json::asString(json::field(job, "state", "job"), "state"),
            "done");

  ProtocolResult status = handleLine(server, "{\"op\":\"status\"}");
  json::Value st = json::parse(status.response, "status");
  EXPECT_TRUE(json::asBool(json::field(st, "ok", "s"), "ok"));

  ProtocolResult down = handleLine(server, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(down.shutdown);
  server.shutdown();
}

TEST(Protocol, MalformedRequestsKeepTheServerHealthy) {
  JobServer server({.workers = 1, .queueCapacity = 4});
  for (const char* line :
       {"this is not json", "{\"op\":\"no-such-op\"}", "{}",
        "{\"op\":\"submit\",\"spec\":{\"family\":\"no-such-family\"}}",
        "{\"op\":\"submit\",\"spec\":{\"family\":\"quickstart-md\","
        "\"steps\":-1}}",
        "{\"op\":\"poll\",\"id\":999}"}) {
    SCOPED_TRACE(line);
    ProtocolResult r = handleLine(server, line);
    EXPECT_FALSE(r.shutdown);
    json::Value resp = json::parse(r.response, "resp");
    EXPECT_FALSE(json::asBool(json::field(resp, "ok", "r"), "ok"));
  }
  // The daemon still serves real work afterwards.
  SubmitOutcome out = server.submit(table2AllReduceSpec({2, 2, 2}));
  ASSERT_TRUE(out.accepted);
  EXPECT_EQ(server.wait(out.id).state, JobState::kDone);
  server.shutdown();
}

}  // namespace
}  // namespace anton::serve
