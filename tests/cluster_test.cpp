// LogGP cluster baseline: point-to-point semantics and timing, collectives,
// and the Desmond model's calibration envelope.
#include <gtest/gtest.h>

#include "cluster/collectives.hpp"
#include "cluster/desmond.hpp"
#include "cluster/network.hpp"

namespace anton::cluster {
namespace {

using sim::Task;
using sim::toUs;

struct Fixture {
  sim::Simulator sim;
  ClusterMachine machine;
  explicit Fixture(int nodes = 8, LogGPParams p = {})
      : machine(sim, nodes, p) {}
};

TEST(Cluster, PingPongLatencyMatchesParams) {
  Fixture f(2);
  double arrived = -1;
  auto receiver = [](Fixture& fx, double& out) -> Task {
    co_await fx.machine.recv(1, 0, 7);
    out = toUs(fx.sim.now());
  };
  auto sender = [](Fixture& fx) -> Task {
    co_await fx.machine.send(0, 1, 7, 32);
  };
  f.sim.spawn(receiver(f, arrived));
  f.sim.spawn(sender(f));
  f.sim.run();
  // o_s + L + bytes*G + o_r, small message: ~2.16 us (paper Table 1 regime).
  double expect = f.machine.params().pingPongUs() + 32 * 0.00065;
  EXPECT_NEAR(arrived, expect, 1e-9);
  EXPECT_GT(arrived, 2.0);
  EXPECT_LT(arrived, 2.4);
}

TEST(Cluster, MessageRateLimitedByGap) {
  // 64 back-to-back small sends: NIC gap g dominates; total ~ 64*g + L.
  Fixture f(2);
  double done = -1;
  auto receiver = [](Fixture& fx, double& out) -> Task {
    for (int i = 0; i < 64; ++i) co_await fx.machine.recv(1, 0, 1);
    out = toUs(fx.sim.now());
  };
  auto sender = [](Fixture& fx) -> Task {
    for (int i = 0; i < 64; ++i) co_await fx.machine.send(0, 1, 1, 32);
  };
  f.sim.spawn(receiver(f, done));
  f.sim.spawn(sender(f));
  f.sim.run();
  EXPECT_GT(done, 30.0);  // ~64 * 0.55 = 35 us >> single-message latency
  EXPECT_LT(done, 45.0);
}

TEST(Cluster, LargeMessagePaysBandwidth) {
  Fixture f(2);
  double done = -1;
  auto receiver = [](Fixture& fx, double& out) -> Task {
    co_await fx.machine.recv(1, 0, 1);
    out = toUs(fx.sim.now());
  };
  auto sender = [](Fixture& fx) -> Task { co_await fx.machine.send(0, 1, 1, 2048); };
  f.sim.spawn(receiver(f, done));
  f.sim.spawn(sender(f));
  f.sim.run();
  double expect = f.machine.params().pingPongUs() + 2048 * 0.00065;
  EXPECT_NEAR(done, expect, 1e-9);
}

TEST(Cluster, TagAndSourceMatching) {
  Fixture f(3);
  std::vector<int> order;
  auto receiver = [](Fixture& fx, std::vector<int>& ord) -> Task {
    ClusterMachine::Message a = co_await fx.machine.recv(2, 1, 5);
    ord.push_back(a.src * 10 + a.tag);
    ClusterMachine::Message b = co_await fx.machine.recv(2, 0, 5);
    ord.push_back(b.src * 10 + b.tag);
    ClusterMachine::Message c =
        co_await fx.machine.recv(2, ClusterMachine::kAnySource, 9);
    ord.push_back(c.src * 10 + c.tag);
  };
  auto senders = [](Fixture& fx) -> Task {
    co_await fx.machine.send(0, 2, 5, 8);
    co_await fx.machine.send(0, 2, 9, 8);
  };
  auto sender1 = [](Fixture& fx) -> Task { co_await fx.machine.send(1, 2, 5, 8); };
  f.sim.spawn(receiver(f, order));
  f.sim.spawn(senders(f));
  f.sim.spawn(sender1(f));
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{15, 5, 9}));
}

TEST(Cluster, PayloadDataTravels) {
  Fixture f(2);
  double got = 0;
  auto receiver = [](Fixture& fx, double& out) -> Task {
    ClusterMachine::Message m = co_await fx.machine.recv(1, 0, 3);
    out = (*m.data)[1];
  };
  auto sender = [](Fixture& fx) -> Task {
    auto data = std::make_shared<const std::vector<double>>(
        std::vector<double>{1.5, 2.5});
    co_await fx.machine.send(0, 1, 3, 16, data);
  };
  f.sim.spawn(receiver(f, got));
  f.sim.spawn(sender(f));
  f.sim.run();
  EXPECT_DOUBLE_EQ(got, 2.5);
}

TEST(Cluster, RecvDeadlineFailsLoudlyOnLostMessage) {
  // The cluster-side analogue of the counted-write watchdog: a recv with a
  // deadline whose message never arrives must throw a diagnostic instead of
  // parking the waiter forever.
  Fixture f(2);
  auto receiver = [](Fixture& fx) -> Task {
    co_await fx.machine.recv(1, 0, 7, sim::us(50));  // nothing is ever sent
  };
  f.sim.spawn(receiver(f));
  try {
    f.sim.run();
    FAIL() << "expected recv timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cluster recv timed out"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tag 7"), std::string::npos);
  }
}

TEST(Cluster, RecvDeadlineIsTimingInvisibleWhenTheMessageArrives) {
  // A met deadline must be cancelled without advancing time: the run with a
  // deadline armed ends at exactly the same simulated instant as without.
  double withDeadline = -1, without = -1;
  for (double* out : {&without, &withDeadline}) {
    Fixture f(2);
    sim::Time timeout = out == &withDeadline ? sim::us(1000) : 0;
    auto receiver = [](Fixture& fx, sim::Time to, double& o) -> Task {
      co_await fx.machine.recv(1, 0, 3, to);
      o = toUs(fx.sim.now());
    };
    auto sender = [](Fixture& fx) -> Task {
      co_await fx.machine.send(0, 1, 3, 32);
    };
    f.sim.spawn(receiver(f, timeout, *out));
    f.sim.spawn(sender(f));
    f.sim.run();
    EXPECT_LT(toUs(f.sim.now()), 100.0) << "deadline stretched the run";
  }
  EXPECT_EQ(withDeadline, without);
}

TEST(Collectives, AllReduceSums) {
  Fixture f(16);
  std::vector<std::vector<double>> results(16);
  auto task = [&](int n) -> Task {
    std::vector<double> in(2);
    in[0] = double(n);
    in[1] = 1.0;
    co_await allReduce(f.machine, n, std::move(in), &results[std::size_t(n)]);
  };
  for (int n = 0; n < 16; ++n) f.sim.spawn(task(n));
  f.sim.run();
  for (int n = 0; n < 16; ++n) {
    ASSERT_EQ(results[std::size_t(n)].size(), 2u);
    EXPECT_DOUBLE_EQ(results[std::size_t(n)][0], 120.0);
    EXPECT_DOUBLE_EQ(results[std::size_t(n)][1], 16.0);
    EXPECT_EQ(results[std::size_t(n)][0], results[0][0]);  // identical bits
  }
}

TEST(Collectives, AllReduce512NodeLatencyNear35us) {
  // §IV-B4: the same 32-byte reduction Anton does in 1.77 us took 35.5 us on
  // the 512-node InfiniBand cluster.
  sim::Simulator sim;
  ClusterMachine m(sim, 512);
  auto task = [&](int n) -> Task {
    co_await allReduce(m, n, std::vector<double>(4, 1.0), nullptr);
  };
  for (int n = 0; n < 512; ++n) sim.spawn(task(n));
  sim.run();
  double us = toUs(sim.now());
  EXPECT_GT(us, 25.0);
  EXPECT_LT(us, 45.0);
}

TEST(Collectives, AllReduceNonPowerOfTwoThrows) {
  Fixture f(6);
  auto task = [&]() -> Task {
    std::vector<double> in(1, 1.0);
    co_await allReduce(f.machine, 0, std::move(in), nullptr);
  };
  // The throw happens on the task's first resume, i.e. inside spawn.
  EXPECT_THROW(
      {
        f.sim.spawn(task());
        f.sim.run();
      },
      std::invalid_argument);
}

TEST(Collectives, StagedExchangeDelivers26NeighborBytes) {
  sim::Simulator sim;
  ClusterMachine m(sim, 64);
  util::TorusShape shape{4, 4, 4};
  std::vector<std::size_t> got(64, 0);
  auto task = [&](int n) -> Task {
    co_await stagedNeighborExchange(m, shape, n, 100, &got[std::size_t(n)]);
  };
  for (int n = 0; n < 64; ++n) sim.spawn(task(n));
  sim.run();
  // 2 + 2*3 + 2*9 = 26 slabs of 100 bytes.
  for (int n = 0; n < 64; ++n) EXPECT_EQ(got[std::size_t(n)], 2600u);
  // 6 messages per node (Fig. 8a), not 26.
  EXPECT_EQ(m.messagesSent(), 64u * 6u);
}

TEST(Collectives, AllToAllCompletes) {
  sim::Simulator sim;
  ClusterMachine m(sim, 8);
  std::vector<int> group = {0, 1, 2, 3, 4, 5, 6, 7};
  int done = 0;
  auto task = [&](int i) -> Task {
    co_await allToAll(m, group, i, 256);
    ++done;
  };
  for (int i = 0; i < 8; ++i) sim.spawn(task(i));
  sim.run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(m.messagesSent(), 8u * 7u);
}

TEST(Desmond, Table3Envelope) {
  // The model should land in the regime of Table 3's Desmond column:
  // RL ~108 us, FFT ~230 us, thermostat ~78 us, LR ~416 us, average ~262 us.
  DesmondTimes t = measureDesmond({});
  EXPECT_GT(t.rangeLimitedUs, 50);
  EXPECT_LT(t.rangeLimitedUs, 220);
  EXPECT_GT(t.fftUs, 120);
  EXPECT_LT(t.fftUs, 460);
  EXPECT_GT(t.thermostatUs, 40);
  EXPECT_LT(t.thermostatUs, 160);
  EXPECT_NEAR(t.longRangeUs,
              t.rangeLimitedUs * 1.5 + t.fftUs + t.thermostatUs, 1.0);
  EXPECT_NEAR(t.averageUs, 0.5 * (t.rangeLimitedUs + t.longRangeUs), 1e-9);
  // The headline: two orders of magnitude above Anton's ~10 us.
  EXPECT_GT(t.averageUs, 150);
}

TEST(Desmond, ScalesWithImbalance) {
  DesmondWorkload light;
  light.imbalanceFactor = 1.0;
  DesmondWorkload heavy;
  heavy.imbalanceFactor = 3.0;
  EXPECT_LT(measureDesmond(light).rangeLimitedUs,
            measureDesmond(heavy).rangeLimitedUs);
}

}  // namespace
}  // namespace anton::cluster
