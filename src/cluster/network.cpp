#include "cluster/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace anton::cluster {

ClusterMachine::ClusterMachine(sim::Simulator& sim, int numNodes,
                               LogGPParams params)
    : sim_(sim), numNodes_(numNodes), params_(params),
      nodes_(std::size_t(numNodes)) {
  if (numNodes < 1) throw std::invalid_argument("cluster needs >= 1 node");
}

sim::Task ClusterMachine::send(int src, int dst, int tag, std::size_t bytes,
                               std::shared_ptr<const std::vector<double>> data) {
  if (dst < 0 || dst >= numNodes_) throw std::out_of_range("bad destination");
  ++messagesSent_;
  bytesSent_ += bytes;

  // The CPU is busy for o_s; injection happens at the end of that window.
  co_await sim_.delay(sim::us(params_.sendOverheadUs));

  NodeState& nic = nodes_[std::size_t(src)];
  sim::Time depart = std::max(sim_.now(), nic.nicFreeAt);
  sim::Time serialize = sim::us(params_.gapPerByteUs * double(bytes));
  nic.nicFreeAt = depart + std::max(sim::us(params_.gapUs), serialize);

  sim::Time arrive = depart + sim::us(params_.latencyUs) + serialize;
  Message msg{src, dst, tag, bytes, std::move(data)};
  sim_.at(arrive, [this, msg = std::move(msg)]() mutable { deliver(std::move(msg)); });
}

void ClusterMachine::deliver(Message msg) {
  NodeState& node = nodes_[std::size_t(msg.dst)];
  node.arrived.push_back(std::move(msg));
  tryMatch(node);
}

void ClusterMachine::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  NodeState& node = m.nodes_[std::size_t(dst)];
  node.waiters.push_back({src, tag, this, h});
  if (timeout > 0) {
    // Deadline for the match. Cancelled (discarded without advancing time)
    // when a message matches first, so a met deadline never shows up in the
    // timeline; see Watchdog::CounterWinCancelsTheDeadline for the idiom.
    deadline = m.sim_.afterCancellable(timeout, [this, h] {
      NodeState& nd = m.nodes_[std::size_t(dst)];
      std::erase_if(nd.waiters,
                    [this](const Waiter& w) { return w.awaiter == this; });
      timedOut = true;
      h.resume();
    });
  }
  m.tryMatch(node);
}

ClusterMachine::Message ClusterMachine::RecvAwaiter::await_resume() {
  if (timedOut)
    throw std::runtime_error(
        "cluster recv timed out: node " + std::to_string(dst) +
        " waiting on (src " +
        (src == kAnySource ? std::string("any") : std::to_string(src)) +
        ", tag " + std::to_string(tag) + ") — message lost or sender dead");
  return std::move(result);
}

void ClusterMachine::tryMatch(NodeState& node) {
  for (auto w = node.waiters.begin(); w != node.waiters.end();) {
    auto msg = std::find_if(node.arrived.begin(), node.arrived.end(),
                            [&](const Message& m) { return matches(*w, m); });
    if (msg == node.arrived.end()) {
      ++w;
      continue;
    }
    w->awaiter->result = std::move(*msg);
    node.arrived.erase(msg);
    sim::Simulator::cancel(w->awaiter->deadline);  // the match won the race
    // Receiver software completes the match after o_r.
    sim_.resumeAfter(sim::us(params_.recvOverheadUs), w->handle);
    w = node.waiters.erase(w);
  }
}

}  // namespace anton::cluster
