// MPI-style collectives and exchange patterns on the cluster baseline.
//
// These implement the commodity-cluster idioms the paper contrasts with
// Anton's fine-grained direct communication: staged neighbor exchange
// (Fig. 8a: 6 messages per node in 3 stages instead of 26 direct sends),
// recursive-doubling all-reduce, and pencil-group all-to-all for FFT
// transposes.
#pragma once

#include <functional>
#include <vector>

#include "cluster/network.hpp"
#include "sim/task.hpp"
#include "util/torus_coord.hpp"
#include "verify/plan.hpp"

namespace anton::cluster {

struct CollectiveConfig {
  /// Extra software time charged per collective round, calibrated so the
  /// 512-node 32-byte all-reduce lands near the 35.5 us the paper measured
  /// on its DDR2 InfiniBand cluster (§IV-B4).
  double perRoundOverheadUs = 1.6;
  /// Per-recv deadline (microseconds); 0 disables. Armed, a lost partner
  /// message fails loudly with a diagnostic naming (node, partner, tag)
  /// instead of hanging the collective forever — the cluster-side analogue
  /// of the counted-write watchdog. Disabled, no event is scheduled and
  /// timing is bit-identical.
  double recvTimeoutUs = 0.0;
};

/// Recursive-doubling all-reduce (requires power-of-two node count).
/// Collective: every node spawns one task. Sums element-wise with a fixed
/// operand order so results are identical on all nodes.
sim::Task allReduce(ClusterMachine& m, int node, std::vector<double> in,
                    std::vector<double>* out, CollectiveConfig cfg = {},
                    int tagBase = 1000);

/// Static message plan of the recursive-doubling all-reduce in the
/// verifier's counted-write vocabulary: the cluster is modeled as an
/// {n, 1, 1} torus, one tag acts as one sync counter, one message as one
/// packet. Waits are marked recovery-armed because the cluster transport is
/// reliable (MPI semantics), unlike raw counted writes. Returns the final
/// phase appended.
std::string appendAllReducePlan(verify::CommPlan& plan, int numNodes,
                                const std::string& afterPhase,
                                int tagBase = 1000);

/// Staged nearest-neighbor exchange on a logical 3D torus of cluster nodes:
/// stage d sends the accumulated slab (own data plus everything received in
/// earlier stages) to both neighbors along dimension d — 6 messages per node
/// reach all 26 neighbors in 3 stages. `bytesOwn` is each node's own
/// contribution; received data is forwarded, so stage sizes grow 3x per
/// stage. Returns (via *outBytes) the total bytes received.
sim::Task stagedNeighborExchange(ClusterMachine& m, util::TorusShape shape,
                                 int node, std::size_t bytesOwn,
                                 std::size_t* outBytes, int tagBase = 2000);

/// All-to-all within a group of nodes (FFT transpose building block): each
/// member sends `bytesPerPair` to every other member.
sim::Task allToAll(ClusterMachine& m, std::vector<int> group,
                   int selfIndex, std::size_t bytesPerPair, int tagBase = 3000);

}  // namespace anton::cluster
