// Desmond-on-InfiniBand communication-time model (Table 3 baseline).
//
// The paper compares Anton's critical-path communication time against a
// 512-node Xeon/InfiniBand cluster running Desmond [12, 15]. We model
// Desmond's per-step communication by running its exchange patterns on the
// LogGP cluster: staged 6-message neighbor exchange for positions and
// forces (Fig. 8a), pencil-group all-to-alls for the FFT transposes, and
// recursive-doubling reductions for the thermostat. A calibrated imbalance
// factor accounts for load imbalance, synchronization waits, and the extra
// exchange rounds (constraints, pair-list margins) a real Desmond step
// performs — see DESIGN.md for the calibration against [15].
#pragma once

#include "cluster/collectives.hpp"
#include "cluster/network.hpp"

namespace anton::cluster {

struct DesmondWorkload {
  int numNodes = 512;
  int atoms = 23558;          ///< DHFR benchmark system
  double bytesPerAtom = 32.0; ///< position or force record on the wire
  int fftGrid = 32;           ///< FFT grid extent (cubed)
  int fftGroup = 32;          ///< nodes per all-to-all transpose group
  double imbalanceFactor = 1.75;
  CollectiveConfig collective;
};

/// Per-phase critical-path communication times in microseconds.
struct DesmondTimes {
  double rangeLimitedUs = 0;  ///< position + force exchange of an RL step
  double fftUs = 0;           ///< forward + inverse FFT transposes
  double thermostatUs = 0;    ///< kinetic-energy reduce + rescale reduce
  double longRangeUs = 0;     ///< RL + charge-spread exchange + FFT + thermo
  double averageUs = 0;       ///< long-range work every other step
};

/// Runs the model on a fresh simulator and reports phase times.
DesmondTimes measureDesmond(const DesmondWorkload& w = {});

}  // namespace anton::cluster
