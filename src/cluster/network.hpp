// Commodity-cluster baseline: a LogGP-style model of a Xeon/InfiniBand
// cluster (the paper's comparison platform, running Desmond [12, 15]).
//
// LogGP (Alexandrov et al.) abstracts a network by L (wire+switch latency),
// o (per-message send/receive software overhead), g (per-message gap: the
// NIC's message-rate limit), and G (per-byte gap: inverse bandwidth).
// Defaults are calibrated to published DDR2 InfiniBand measurements: ~2.16 us
// small-message ping-pong (Roadrunner, Table 1 [7]), ~1.5 GB/s effective
// bandwidth, and a per-message cost that reproduces the InfiniBand curve of
// SC10 Fig. 7.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace anton::cluster {

struct LogGPParams {
  double sendOverheadUs = 0.40;  ///< o_s: CPU time to issue a send
  double recvOverheadUs = 0.46;  ///< o_r: CPU time to complete a receive
  double latencyUs = 1.30;       ///< L: NIC-to-NIC through the switch
  double gapUs = 0.55;           ///< g: minimum spacing between messages
  double gapPerByteUs = 0.00065; ///< G: inverse bandwidth (~1.5 GB/s)

  /// One-way small-message software-to-software latency implied by the
  /// parameters (o_s + L + o_r).
  double pingPongUs() const { return sendOverheadUs + latencyUs + recvOverheadUs; }
};

/// A flat cluster: N nodes on a full-bisection switch. Only the endpoints
/// are modeled (per-node NIC gap), matching LogGP's assumptions.
class ClusterMachine {
 public:
  struct Message {
    int src = 0;
    int dst = 0;
    int tag = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const std::vector<double>> data;  ///< optional payload
  };

  ClusterMachine(sim::Simulator& sim, int numNodes, LogGPParams params = {});

  sim::Simulator& sim() { return sim_; }
  int numNodes() const { return numNodes_; }
  const LogGPParams& params() const { return params_; }

  /// Coroutine send: charges o_s to the caller; the message departs when the
  /// NIC is free (gap g + G*bytes between messages) and arrives after
  /// L + G*bytes.
  sim::Task send(int src, int dst, int tag, std::size_t bytes,
                 std::shared_ptr<const std::vector<double>> data = nullptr);

  /// Awaitable receive: matches (src, tag) FIFO; resumes o_r after the
  /// message has arrived. src = kAnySource matches any sender. A nonzero
  /// `timeout` arms a cancellable deadline: if no matching message lands in
  /// time the waiter is retracted and await_resume throws a diagnostic
  /// naming (dst, src, tag) — a lost message becomes a loud failure instead
  /// of a silent hang. With timeout 0 (default) no event is scheduled and
  /// timing is bit-identical to the deadline-free receive.
  static constexpr int kAnySource = -1;
  struct RecvAwaiter {
    ClusterMachine& m;
    int dst;
    int src;
    int tag;
    Message result;
    sim::Time timeout = 0;
    bool timedOut = false;
    sim::Simulator::EventHandle deadline;
    bool await_ready() noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Message await_resume();
  };
  RecvAwaiter recv(int dst, int src, int tag, sim::Time timeout = 0) {
    return RecvAwaiter{*this, dst, src, tag, {}, timeout, false, {}};
  }

  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t bytesSent() const { return bytesSent_; }

 private:
  friend struct RecvAwaiter;
  struct Waiter {
    int src;
    int tag;
    RecvAwaiter* awaiter;
    std::coroutine_handle<> handle;
  };
  struct NodeState {
    sim::Time nicFreeAt = 0;
    std::deque<Message> arrived;
    std::deque<Waiter> waiters;
  };

  void deliver(Message msg);
  void tryMatch(NodeState& node);
  static bool matches(const Waiter& w, const Message& m) {
    return (w.src == kAnySource || w.src == m.src) && w.tag == m.tag;
  }

  sim::Simulator& sim_;
  int numNodes_;
  LogGPParams params_;
  std::vector<NodeState> nodes_;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t bytesSent_ = 0;
};

}  // namespace anton::cluster
