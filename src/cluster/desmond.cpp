#include "cluster/desmond.hpp"

#include <algorithm>
#include <cmath>

#include "sim/simulator.hpp"

namespace anton::cluster {

namespace {

/// Run one collective phase across all nodes of a fresh cluster and return
/// the critical-path (max over nodes) completion time in microseconds.
template <typename MakeTask>
double phaseTime(int numNodes, MakeTask makeTask) {
  sim::Simulator sim;
  ClusterMachine m(sim, numNodes);
  for (int n = 0; n < numNodes; ++n) m.sim().spawn(makeTask(m, n));
  sim.run();
  return sim::toUs(sim.now());
}

int cubeRootExtent(int numNodes) {
  int e = int(std::round(std::cbrt(double(numNodes))));
  while (e > 1 && numNodes % (e * e) != 0) --e;
  return e;
}

}  // namespace

DesmondTimes measureDesmond(const DesmondWorkload& w) {
  DesmondTimes t;

  // Logical 3D decomposition of the cluster for neighbor exchange.
  int e = cubeRootExtent(w.numNodes);
  util::TorusShape shape{e, e, std::max(1, w.numNodes / (e * e))};
  std::size_t homeBytes =
      std::size_t(std::ceil(double(w.atoms) / w.numNodes * w.bytesPerAtom));

  // Positions out + forces back: two staged exchanges per range-limited step.
  double exchange = phaseTime(w.numNodes, [&](ClusterMachine& m, int n) {
    return stagedNeighborExchange(m, shape, n, homeBytes, nullptr);
  });
  t.rangeLimitedUs = 2.0 * exchange * w.imbalanceFactor;

  // FFT: forward + inverse, two pencil-group transposes each.
  std::size_t gridBytes = std::size_t(w.fftGrid) * std::size_t(w.fftGrid) *
                          std::size_t(w.fftGrid) * 16;
  std::size_t perPair = std::max<std::size_t>(
      64, gridBytes / std::size_t(w.numNodes) / std::size_t(w.fftGroup));
  double transpose = phaseTime(w.numNodes, [&](ClusterMachine& m, int n) {
    std::vector<int> group(std::size_t(w.fftGroup));
    int base = (n / w.fftGroup) * w.fftGroup;
    for (int i = 0; i < w.fftGroup; ++i) group[std::size_t(i)] = base + i;
    return allToAll(m, group, n - base, perPair, 3000);
  });
  t.fftUs = 4.0 * transpose * w.imbalanceFactor;

  // Thermostat: kinetic-energy all-reduce plus the rescale round trip.
  double reduce = phaseTime(w.numNodes, [&](ClusterMachine& m, int n) {
    return allReduce(m, n, std::vector<double>(4, double(n)), nullptr,
                     w.collective);
  });
  t.thermostatUs = 2.0 * reduce;

  // A long-range step adds charge-spread/interpolation exchange (one more
  // staged round trip), the FFT, and the thermostat.
  t.longRangeUs = t.rangeLimitedUs + exchange * w.imbalanceFactor + t.fftUs +
                  t.thermostatUs;
  t.averageUs = 0.5 * (t.rangeLimitedUs + t.longRangeUs);
  return t;
}

}  // namespace anton::cluster
