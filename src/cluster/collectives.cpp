#include "cluster/collectives.hpp"

#include <bit>
#include <stdexcept>

namespace anton::cluster {

sim::Task allReduce(ClusterMachine& m, int node, std::vector<double> in,
                    std::vector<double>* out, CollectiveConfig cfg,
                    int tagBase) {
  const int n = m.numNodes();
  if (!std::has_single_bit(unsigned(n)))
    throw std::invalid_argument("recursive doubling needs power-of-two nodes");

  std::vector<double> cur = std::move(in);
  const std::size_t bytes = cur.size() * sizeof(double) + 64;  // MPI envelope
  const int rounds = std::bit_width(unsigned(n)) - 1;
  for (int r = 0; r < rounds; ++r) {
    int partner = node ^ (1 << r);
    auto payload = std::make_shared<const std::vector<double>>(cur);
    co_await m.send(node, partner, tagBase + r, bytes, payload);
    ClusterMachine::Message msg = co_await m.recv(
        node, partner, tagBase + r, sim::us(cfg.recvTimeoutUs));
    if (msg.data) {
      const std::vector<double>& theirs = *msg.data;
      bool mineFirst = ((node >> r) & 1) == 0;
      for (std::size_t w = 0; w < cur.size() && w < theirs.size(); ++w)
        cur[w] = mineFirst ? cur[w] + theirs[w] : theirs[w] + cur[w];
    }
    co_await m.sim().delay(sim::us(cfg.perRoundOverheadUs));
  }
  if (out != nullptr) *out = std::move(cur);
}

std::string appendAllReducePlan(verify::CommPlan& plan, int numNodes,
                                const std::string& afterPhase, int tagBase) {
  if (!std::has_single_bit(unsigned(numNodes)))
    throw std::invalid_argument("recursive doubling needs power-of-two nodes");
  plan.shape = {numNodes, 1, 1};
  const int rounds = std::bit_width(unsigned(numNodes)) - 1;
  std::string prev = afterPhase;
  for (int r = 0; r < rounds; ++r) {
    std::string phase = "cluster.allreduce.round" + std::to_string(r);
    plan.addPhaseEdge(prev, phase);
    prev = phase;
    for (int node = 0; node < numNodes; ++node) {
      int partner = node ^ (1 << r);
      verify::PlannedWrite w;
      w.phase = phase;
      w.srcNode = node;
      w.dst = {partner, 0};
      w.counterId = tagBase + r;
      w.seq = 0;  // allReduce() sends to the partner before posting the recv
      plan.writes.push_back(w);

      verify::CounterExpectation e;
      e.site = phase;
      e.phase = phase;  // recv follows the same-round send on each node
      e.client = {node, 0};
      e.counterId = tagBase + r;
      e.perRound = 1;
      e.bySource[partner] = 1;
      // Reliable transport (MPI semantics), and the recv carries an optional
      // deadline (CollectiveConfig::recvTimeoutUs) that fails loudly on loss.
      e.recoveryArmed = true;
      e.seq = 1;
      plan.expectations.push_back(std::move(e));
    }
  }
  return prev;
}

sim::Task stagedNeighborExchange(ClusterMachine& m, util::TorusShape shape,
                                 int node, std::size_t bytesOwn,
                                 std::size_t* outBytes, int tagBase) {
  if (shape.size() > m.numNodes())
    throw std::invalid_argument("logical torus larger than cluster");
  util::TorusCoord c = util::torusCoordOf(node, shape);

  std::size_t accumulated = bytesOwn;  // own slab, grows as stages forward data
  std::size_t received = 0;
  for (int d = 0; d < 3; ++d) {
    if (shape.extent(d) < 2) continue;
    int up = util::torusIndex(util::torusNeighbor(c, d, +1, shape), shape);
    int dn = util::torusIndex(util::torusNeighbor(c, d, -1, shape), shape);
    int tagUp = tagBase + d * 2;
    int tagDn = tagBase + d * 2 + 1;
    // Two sends per stage (Fig. 8a): the accumulated slab goes both ways.
    co_await m.send(node, up, tagUp, accumulated);
    co_await m.send(node, dn, tagDn, accumulated);
    ClusterMachine::Message a = co_await m.recv(node, dn, tagUp);
    ClusterMachine::Message b = co_await m.recv(node, up, tagDn);
    received += a.bytes + b.bytes;
    accumulated += a.bytes + b.bytes;
  }
  if (outBytes != nullptr) *outBytes = received;
}

sim::Task allToAll(ClusterMachine& m, std::vector<int> group,
                   int selfIndex, std::size_t bytesPerPair, int tagBase) {
  const int k = int(group.size());
  const int self = group[std::size_t(selfIndex)];
  for (int i = 1; i < k; ++i) {
    int peer = group[std::size_t((selfIndex + i) % k)];
    co_await m.send(self, peer, tagBase + self, bytesPerPair);
  }
  for (int i = 1; i < k; ++i) {
    int peer = group[std::size_t((selfIndex + i) % k)];
    co_await m.recv(self, peer, tagBase + peer);
  }
}

}  // namespace anton::cluster
