#include "fault/report.hpp"

#include <ostream>
#include <sstream>

#include "fault/plan.hpp"
#include "util/table.hpp"

namespace anton::fault {

void printFaultSummary(std::ostream& os, const net::Machine& machine,
                       const FaultPlan* plan) {
  const net::MachineStats& s = machine.stats();
  util::TablePrinter t({"fault event", "count", "time cost (us)"});
  t.addRow({"CRC retransmits", std::to_string(s.crcRetransmits),
            util::TablePrinter::num(sim::toUs(s.retransmitDelay), 3)});
  t.addRow({"link failures (drops)", std::to_string(s.linkFailures), ""});
  t.addRow({"link-outage stalls", std::to_string(s.outageStalls), ""});
  t.addRow({"router stalls", std::to_string(s.routerStalls), ""});
  t.addRow({"outage+stall wait", "",
            util::TablePrinter::num(sim::toUs(s.stallDelay), 3)});
  t.addRow({"degraded-mode reroutes", std::to_string(s.faultReroutes), ""});
  if (plan != nullptr) {
    const FaultPlanStats& p = plan->stats();
    t.addRow({"link traversals seen", std::to_string(p.traversalsSeen), ""});
    t.addRow({"corrupt traversals", std::to_string(p.corruptTraversals), ""});
  }
  t.print(os);
  if (plan != nullptr) {
    os << "plan: seed=" << plan->config().seed
       << " ber=" << plan->config().bitErrorRate
       << " retransmit cap=" << plan->config().maxRetransmits << "\n";
  }
}

std::string faultSummaryLine(const net::MachineStats& s) {
  std::ostringstream os;
  os << "retx=" << s.crcRetransmits << " (+"
     << util::TablePrinter::num(sim::toUs(s.retransmitDelay), 3)
     << " us) linkfail=" << s.linkFailures << " outages=" << s.outageStalls
     << " rstalls=" << s.routerStalls
     << " (+" << util::TablePrinter::num(sim::toUs(s.stallDelay), 3)
     << " us) reroutes=" << s.faultReroutes;
  return os.str();
}

}  // namespace anton::fault
