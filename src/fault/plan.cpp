#include "fault/plan.hpp"

#include <cmath>
#include <stdexcept>

namespace anton::fault {

FaultPlan::FaultPlan(FaultConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg.bitErrorRate < 0.0 || cfg.bitErrorRate > 1.0)
    throw std::invalid_argument("bit-error rate must be in [0, 1]");
  if (cfg.maxRetransmits < 0)
    throw std::invalid_argument("retransmit cap must be non-negative");
}

int FaultPlan::linkKey(int nodeIdx, int dim, int sign) {
  return nodeIdx * 6 + dim * 2 + (sign > 0 ? 0 : 1);
}

void FaultPlan::addLinkOutage(int nodeIdx, int dim, int sign, sim::Time from,
                              sim::Time until) {
  if (until <= from) throw std::invalid_argument("empty outage window");
  outages_[linkKey(nodeIdx, dim, sign)].push_back({from, until});
}

void FaultPlan::addRouterStall(int nodeIdx, sim::Time from, sim::Time until) {
  if (until <= from) throw std::invalid_argument("empty stall window");
  stalls_[nodeIdx].push_back({from, until});
}

net::LinkFaultOutcome FaultPlan::onLinkTraversal(int nodeIdx, int dim,
                                                 int sign,
                                                 std::size_t wireBytes,
                                                 sim::Time depart) {
  ++stats_.traversalsSeen;
  net::LinkFaultOutcome out;
  if (!outages_.empty()) {
    auto it = outages_.find(linkKey(nodeIdx, dim, sign));
    if (it != outages_.end()) {
      // Stall until the latest window covering (or reached by) the stalled
      // departure time closes — consecutive windows chain.
      sim::Time t = depart;
      bool hit = true;
      while (hit) {
        hit = false;
        for (const Window& w : it->second) {
          if (t >= w.from && t < w.until) {
            t = w.until;
            hit = true;
          }
        }
      }
      if (t > depart) {
        out.stall = t - depart;
        ++stats_.outageHits;
      }
    }
  }
  if (cfg_.bitErrorRate > 0.0) {
    // A packet survives a traversal only if all its wire bits do; replays
    // are i.i.d., so the retransmit count is geometric (capped).
    double pGood =
        std::pow(1.0 - cfg_.bitErrorRate, double(wireBytes) * 8.0);
    int n = 0;
    while (n < cfg_.maxRetransmits && rng_.uniform() >= pGood) ++n;
    if (n > 0) {
      ++stats_.corruptTraversals;
      stats_.replays += std::uint64_t(n);
      out.retransmits = n;
    }
    if (n == cfg_.maxRetransmits) {
      // The cap was reached with every copy corrupt so far. The hardware
      // sends one final copy; if that too is corrupt, the link is declared
      // failed for this traversal and the replica is dropped. Traversals
      // that never hit the cap draw the exact same RNG sequence as before
      // this escalation existed, so sub-cap timing is unchanged.
      if (rng_.uniform() >= pGood) {
        out.linkFailed = true;
        ++stats_.linkFailures;
        if (n == 0) ++stats_.corruptTraversals;  // cap 0: count the loss
      }
    }
  }
  return out;
}

bool FaultPlan::linkDown(int nodeIdx, int dim, int sign, sim::Time t) const {
  if (outages_.empty()) return false;
  auto it = outages_.find(linkKey(nodeIdx, dim, sign));
  if (it == outages_.end()) return false;
  for (const Window& w : it->second)
    if (t >= w.from && t < w.until) return true;
  return false;
}

sim::Time FaultPlan::routerStallUntil(int nodeIdx, sim::Time t) const {
  if (stalls_.empty()) return t;
  auto it = stalls_.find(nodeIdx);
  if (it == stalls_.end()) return t;
  sim::Time release = t;
  bool hit = true;
  while (hit) {
    hit = false;
    for (const Window& w : it->second) {
      if (release >= w.from && release < w.until) {
        release = w.until;
        hit = true;
      }
    }
  }
  return release;
}

}  // namespace anton::fault
