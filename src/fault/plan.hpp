// FaultPlan: a deterministic, seedable schedule of network faults.
//
// Three fault classes (DESIGN.md §7):
//   * link bit errors — every wire bit flips independently with probability
//     `bitErrorRate`; a corrupt packet is caught by the per-link CRC and
//     replayed by link-level retransmission (the Anton 3 reliability design,
//     Shim et al.), charging a calibrated penalty per replay;
//   * link outage windows — an outgoing link is unusable for [from, until);
//     packets either stall at the adapter or, in degraded mode
//     (Machine::setFaultReroute), route around it via a non-preferred
//     dimension order;
//   * stalled-router intervals — a node's on-chip ring holds all traffic
//     entering it until the window closes.
//
// Determinism: all randomness comes from the plan's own xoshiro RNG seeded
// at construction, drawn in traversal order (which the event kernel makes
// deterministic). A plan with bitErrorRate == 0 and no windows never draws
// and leaves machine timing bit-identical to running with no plan installed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/fault_hooks.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace anton::fault {

struct FaultConfig {
  std::uint64_t seed = 0x5eedULL;
  double bitErrorRate = 0.0;  ///< independent flip probability per wire bit
  /// Replay cap per traversal. After this many consecutive corrupt copies
  /// one final copy is attempted; if it is also corrupt the plan declares
  /// the link failed for that traversal (LinkFaultOutcome::linkFailed) and
  /// the machine drops the packet replica instead of silently delivering a
  /// corrupt one. Recovery is then software's job (core/recovery.hpp).
  int maxRetransmits = 16;
};

/// Tallies kept by the plan itself, complementing net::MachineStats.
struct FaultPlanStats {
  std::uint64_t traversalsSeen = 0;
  std::uint64_t corruptTraversals = 0;  ///< traversals needing >= 1 replay
  std::uint64_t replays = 0;            ///< total corrupt copies replayed
  std::uint64_t linkFailures = 0;       ///< traversals that exhausted the cap
                                        ///< (packet replica dropped)
  std::uint64_t outageHits = 0;         ///< traversals landing in an outage
};

class FaultPlan final : public net::FaultModel {
 public:
  explicit FaultPlan(FaultConfig cfg = {});

  /// Schedule an outage of the outgoing link of `nodeIdx` in (dim, sign)
  /// over the half-open simulated-time window [from, until).
  void addLinkOutage(int nodeIdx, int dim, int sign, sim::Time from,
                     sim::Time until);

  /// Schedule a stall of the on-chip router ring of `nodeIdx` over
  /// [from, until): all traffic entering the node waits for the window end.
  void addRouterStall(int nodeIdx, sim::Time from, sim::Time until);

  const FaultConfig& config() const { return cfg_; }
  const FaultPlanStats& stats() const { return stats_; }

  // net::FaultModel
  net::LinkFaultOutcome onLinkTraversal(int nodeIdx, int dim, int sign,
                                        std::size_t wireBytes,
                                        sim::Time depart) override;
  bool linkDown(int nodeIdx, int dim, int sign, sim::Time t) const override;
  sim::Time routerStallUntil(int nodeIdx, sim::Time t) const override;

 private:
  struct Window {
    sim::Time from;
    sim::Time until;
  };
  static int linkKey(int nodeIdx, int dim, int sign);

  FaultConfig cfg_;
  sim::Rng rng_;
  std::unordered_map<int, std::vector<Window>> outages_;  ///< by link key
  std::unordered_map<int, std::vector<Window>> stalls_;   ///< by node index
  FaultPlanStats stats_;
};

}  // namespace anton::fault
