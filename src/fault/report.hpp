// Fault observability: render the reliability counters a run accumulated —
// MachineStats' fault fields plus the plan's own tallies — as a summary
// table, the textual counterpart of the retx/outage/rstall activity kinds
// the machine records into trace::ActivityTrace.
#pragma once

#include <iosfwd>
#include <string>

#include "net/machine.hpp"

namespace anton::fault {

class FaultPlan;

/// Print a fault-summary table for a machine (pass the installed plan to
/// include bit-error-rate bookkeeping; nullptr is fine).
void printFaultSummary(std::ostream& os, const net::Machine& machine,
                       const FaultPlan* plan = nullptr);

/// Compact one-line summary, e.g. "retx=12 (+1.3 us) outages=2 reroutes=5".
std::string faultSummaryLine(const net::MachineStats& s);

}  // namespace anton::fault
