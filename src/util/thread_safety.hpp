// Clang thread-safety annotations (-Wthread-safety) as portable macros,
// plus an annotated mutex + scoped-lock pair built on std::mutex.
//
// Under clang the macros expand to the capability attributes, and the CI
// clang job compiles the serve layer with -Werror=thread-safety: a member
// touched without its mutex, or a helper called outside its REQUIRES
// contract, is a build break. Under gcc (which has no such analysis) the
// macros expand to nothing — same code, same codegen.
//
// Usage mirrors the annotated subset of the standard library types:
//   util::Mutex mu;
//   int count ANTON_GUARDED_BY(mu);
//   void bump() { util::MutexLock lk(mu); ++count; }
//   void bumpLocked() ANTON_REQUIRES(mu) { ++count; }
//
// util::MutexLock is relockable (unlock()/lock()) so a worker can drop the
// lock across a long job and retake it to publish results, with the
// analysis tracking the capability through both transitions. It satisfies
// BasicLockable, so std::condition_variable_any waits on it directly.
#pragma once

#include <mutex>

#if defined(__clang__)
#define ANTON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ANTON_THREAD_ANNOTATION(x)  // gcc: no analysis, no attributes
#endif

#define ANTON_CAPABILITY(name) ANTON_THREAD_ANNOTATION(capability(name))
#define ANTON_SCOPED_CAPABILITY ANTON_THREAD_ANNOTATION(scoped_lockable)
#define ANTON_GUARDED_BY(x) ANTON_THREAD_ANNOTATION(guarded_by(x))
#define ANTON_PT_GUARDED_BY(x) ANTON_THREAD_ANNOTATION(pt_guarded_by(x))
#define ANTON_REQUIRES(...) \
  ANTON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ANTON_ACQUIRE(...) \
  ANTON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ANTON_RELEASE(...) \
  ANTON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ANTON_TRY_ACQUIRE(...) \
  ANTON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ANTON_EXCLUDES(...) ANTON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ANTON_NO_THREAD_SAFETY_ANALYSIS \
  ANTON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace anton::util {

/// std::mutex with the capability attribute, so members can be GUARDED_BY
/// it and functions can REQUIRE it.
class ANTON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ANTON_ACQUIRE() { mu_.lock(); }
  void unlock() ANTON_RELEASE() { mu_.unlock(); }
  bool try_lock() ANTON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over util::Mutex, relockable mid-scope. BasicLockable, so it
/// works as the lock argument of std::condition_variable_any::wait.
class ANTON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANTON_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ANTON_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() ANTON_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() ANTON_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

}  // namespace anton::util
