// Fixed-width console table printer. Experiment benches use this to print
// paper-value vs. measured-value rows in a readable, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace anton::util {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Column headers define the column count; extra row cells are dropped,
  /// missing cells render empty.
  explicit TablePrinter(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render to a stream with a header underline and 2-space column gaps.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anton::util
