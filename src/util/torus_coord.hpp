// Cartesian coordinates and distance math on a 3D torus (wrap-around mesh).
//
// Anton identifies nodes by their (x, y, z) coordinates within the torus and
// routes along the shortest path independently in each dimension. This header
// provides the coordinate arithmetic shared by the network model, the MD
// domain decomposition, and the collective algorithms.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <string>

namespace anton::util {

/// Extents of a 3D torus, e.g. {8, 8, 8} for a 512-node Anton machine.
struct TorusShape {
  int nx = 1;
  int ny = 1;
  int nz = 1;

  constexpr int size() const { return nx * ny * nz; }
  constexpr int extent(int dim) const { return dim == 0 ? nx : dim == 1 ? ny : nz; }
  friend constexpr bool operator==(const TorusShape&, const TorusShape&) = default;
  std::string str() const;
};

/// A node coordinate within a torus. Always kept in canonical range
/// [0, extent) per dimension by the factory functions below.
struct TorusCoord {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr int operator[](int dim) const { return dim == 0 ? x : dim == 1 ? y : z; }
  constexpr int& operator[](int dim) { return dim == 0 ? x : dim == 1 ? y : z; }
  friend constexpr auto operator<=>(const TorusCoord&, const TorusCoord&) = default;
  std::string str() const;
};

/// Canonical (non-negative) modulus.
constexpr int wrap(int v, int extent) {
  int m = v % extent;
  return m < 0 ? m + extent : m;
}

/// Signed shortest displacement from `a` to `b` along one dimension of a
/// torus with the given extent. Result lies in (-extent/2, extent/2]; ties
/// (exactly half-way) are broken toward the positive direction, matching the
/// deterministic shortest-path routing of the network model.
constexpr int signedTorusDelta(int a, int b, int extent) {
  int d = wrap(b - a, extent);
  if (2 * d > extent) d -= extent;
  return d;
}

/// Hop distance between two coordinates along one dimension.
constexpr int torusHops1D(int a, int b, int extent) {
  return std::abs(signedTorusDelta(a, b, extent));
}

/// Total (Manhattan) hop distance on the torus; Anton routes dimension-ordered
/// shortest paths, so this is the exact number of inter-node link traversals.
constexpr int torusHops(const TorusCoord& a, const TorusCoord& b, const TorusShape& s) {
  return torusHops1D(a.x, b.x, s.nx) + torusHops1D(a.y, b.y, s.ny) +
         torusHops1D(a.z, b.z, s.nz);
}

/// Linearize a coordinate (x fastest) for array indexing.
constexpr int torusIndex(const TorusCoord& c, const TorusShape& s) {
  return c.x + s.nx * (c.y + s.ny * c.z);
}

/// Inverse of torusIndex.
constexpr TorusCoord torusCoordOf(int index, const TorusShape& s) {
  TorusCoord c;
  c.x = index % s.nx;
  c.y = (index / s.nx) % s.ny;
  c.z = index / (s.nx * s.ny);
  return c;
}

/// Neighbor in direction dim (0=x,1=y,2=z), sign ±1, with wraparound.
constexpr TorusCoord torusNeighbor(TorusCoord c, int dim, int sign, const TorusShape& s) {
  c[dim] = wrap(c[dim] + sign, s.extent(dim));
  return c;
}

std::ostream& operator<<(std::ostream& os, const TorusCoord& c);
std::ostream& operator<<(std::ostream& os, const TorusShape& s);

}  // namespace anton::util
