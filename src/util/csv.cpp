#include "util/csv.hpp"

// Header-only today; this TU anchors the library target.
