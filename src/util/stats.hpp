// Small descriptive-statistics helpers for benchmark post-processing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace anton::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double median = 0.0;
};

/// Compute summary statistics. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation between ranks.
/// Empty input returns 0.
double percentile(std::span<const double> xs, double p);

/// Ordinary least squares fit y = a + b*x; returns {a, b}. Requires >= 2
/// points with non-degenerate x; degenerate input returns {mean(y), 0}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fitLine(std::span<const double> xs, std::span<const double> ys);

}  // namespace anton::util
