// Tiny CSV writer used by the experiment benches to dump figure series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace anton::util {

/// Streams rows of comma-separated values to a file. Values are formatted via
/// operator<<; strings containing commas or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename... Ts>
  void row(const Ts&... values) {
    bool first = true;
    ((writeCell(values, first), first = false), ...);
    out_ << '\n';
  }

  void rowStrings(const std::vector<std::string>& cells) {
    bool first = true;
    for (const auto& c : cells) {
      writeCell(c, first);
      first = false;
    }
    out_ << '\n';
  }

 private:
  template <typename T>
  void writeCell(const T& v, bool first) {
    if (!first) out_ << ',';
    std::ostringstream ss;
    ss << v;
    out_ << escape(ss.str());
  }

  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string r = "\"";
    for (char c : s) {
      if (c == '"') r += '"';
      r += c;
    }
    r += '"';
    return r;
  }

  std::ofstream out_;
};

}  // namespace anton::util
