#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <locale>
#include <sstream>
#include <stdexcept>

namespace anton::util::json {
namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(context_ + ": " + why + " at byte " +
                             std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parseValue() {
    char c = peek();
    Value v;
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        v.type = Value::kString;
        v.s = parseString();
        return v;
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        v.type = Value::kBool;
        v.b = true;
        return v;
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        v.type = Value::kBool;
        v.b = false;
        return v;
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return v;
      default:
        return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.type = Value::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parseString();
      expect(':');
      v.obj.emplace(std::move(key), parseValue());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.type = Value::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parseValue());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= unsigned(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // Our producers only ever emit ASCII; decode BMP code points to
          // UTF-8 so the parser stays a strict-JSON reader regardless.
          if (cp < 0x80) {
            out += char(cp);
          } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
          } else {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Value parseNumber() {
    skipWs();
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      return pos_ > before;
    };
    if (!digits()) fail("malformed number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("malformed number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("malformed number exponent");
    }
    Value v;
    v.type = Value::kNumber;
    // std::stod honors the global locale; parse through a classic-locale
    // stream so a comma-decimal locale cannot corrupt round-trips.
    std::istringstream is(text_.substr(start, pos_ - start));
    is.imbue(std::locale::classic());
    is >> v.n;
    if (is.fail()) fail("unparseable number");
    return v;
  }

  const std::string& text_;
  const std::string& context_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& context) {
  return Parser(text, context).parseDocument();
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          const int n = std::snprintf(buf, sizeof(buf), "\\u%04x",
                                      unsigned(static_cast<unsigned char>(c)));
          out.append(buf, n > 0 ? std::size_t(n) : 0);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

const Value& field(const Value& obj, const std::string& key,
                   const std::string& what) {
  auto it = obj.obj.find(key);
  if (it == obj.obj.end())
    throw std::runtime_error(what + ": missing field '" + key + "'");
  return it->second;
}

const Value* optField(const Value& obj, const std::string& key) {
  auto it = obj.obj.find(key);
  return it == obj.obj.end() ? nullptr : &it->second;
}

int asInt(const Value& v, const std::string& what) {
  if (v.type != Value::kNumber)
    throw std::runtime_error(what + " is not a number");
  return int(v.n);
}

std::uint64_t asU64(const Value& v, const std::string& what) {
  if (v.type != Value::kNumber || v.n < 0)
    throw std::runtime_error(what + " is not a non-negative number");
  return std::uint64_t(v.n);
}

double asDouble(const Value& v, const std::string& what) {
  if (v.type != Value::kNumber)
    throw std::runtime_error(what + " is not a number");
  return v.n;
}

const std::string& asString(const Value& v, const std::string& what) {
  if (v.type != Value::kString)
    throw std::runtime_error(what + " is not a string");
  return v.s;
}

bool asBool(const Value& v, const std::string& what) {
  if (v.type != Value::kBool)
    throw std::runtime_error(what + " is not a bool");
  return v.b;
}

}  // namespace anton::util::json

namespace anton::util {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  for (int i = 15; i >= 0; --i) out += digits[(v >> (4 * i)) & 0xf];
  return out;
}

}  // namespace anton::util
