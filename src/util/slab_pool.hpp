// Slab/freelist memory pools for the zero-allocation hot path.
//
// A SlabPool serves fixed-granularity slots out of bump-carved slabs (the
// same discipline core/arena.hpp applies to client memories: carve up front,
// never give back) and recycles freed slots through per-size-class
// freelists. Once the working set has been touched, every alloc/free is a
// pointer pop/push — no malloc, ever — which is what lets the event kernel
// run packets, payload buffers, coroutine frames and cancellable-event
// handles without touching the host allocator (ndn-dpdk's DPDK mempool
// idiom, applied to simulated packets).
//
// Every block carries a 16-byte header tagging its origin (pool bucket or
// heap fallback), so allocation and release stay correct even when the
// pooling knob (util::hotPath().pools) is flipped between the two.
// Oversized requests (> kMaxSlotBytes) always fall back to the heap.
//
// SlabPools are single-owner: each simulation arena (and its serve worker
// thread) owns its own pools, and only the owner thread may alloc(). A slot
// released on a *different* thread (the sharded kernel hands packets and
// coroutine frames across shard workers) takes the remote-free path: a
// lock-free Treiber stack the owner drains back into its freelists on the
// next alloc() (or an explicit drainRemote() at a quiescent point). Heap
// fallback blocks are released directly on any thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/hotpath.hpp"

namespace anton::util {

/// Monotonic counters plus live-slot gauges of one SlabPool.
struct SlabPoolStats {
  std::uint64_t poolAllocs = 0;   ///< slots served from a slab or freelist
  std::uint64_t poolFrees = 0;    ///< slots pushed back onto a freelist
  std::uint64_t heapAllocs = 0;   ///< heap fallbacks (oversized or pooling off)
  std::uint64_t heapFrees = 0;
  std::uint64_t slabBytes = 0;    ///< total slab memory carved so far
  std::size_t live = 0;           ///< pool slots currently outstanding
  std::size_t liveHighWater = 0;  ///< peak of `live`
};

class SlabPool {
 public:
  /// Slot sizes are rounded up to multiples of this granule.
  static constexpr std::size_t kGranule = 64;
  /// Requests above this size always come from the heap (the "oversized
  /// capture" escape hatch; nothing on the hot path should hit it).
  static constexpr std::size_t kMaxSlotBytes = 4096;
  /// Slabs are carved in chunks of this many bytes.
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  /// `maxBytes` bounds total slab memory; exhausting it is a loud
  /// std::runtime_error naming the pool, never UB. The default is generous —
  /// a 4096-node sweep's in-flight packets fit with room to spare.
  explicit SlabPool(std::string name, std::size_t maxBytes = 256 << 20)
      : name_(std::move(name)), maxBytes_(maxBytes) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Allocate `bytes` (aligned for any ordinary type). Pool slot when the
  /// pooling knob is on and the size fits a bucket; tagged heap otherwise.
  /// Owner-thread only.
  void* alloc(std::size_t bytes) {
    if (!hotPath().pools || bytes > kMaxSlotBytes) return heapAlloc(bytes);
    if (remoteHead_.load(std::memory_order_relaxed) != nullptr) drainRemote();
    std::size_t bucket = (bytes + kGranule - 1) / kGranule;  // >= 1
    if (FreeNode* n = freelists_[bucket]) {
      freelists_[bucket] = n->next;
      ++stats_.poolAllocs;
      bump();
      return tag(n, std::uint32_t(bucket));
    }
    std::size_t need = kHeaderBytes + bucket * kGranule;
    if (cursorLeft_ < need) carveSlab(need);
    std::byte* p = cursor_;
    cursor_ += need;
    cursorLeft_ -= need;
    ++stats_.poolAllocs;
    bump();
    return tag(p, std::uint32_t(bucket));
  }

  /// Release a block previously returned by alloc(). Any thread may call
  /// this: the owner pushes straight onto the freelist, everyone else pushes
  /// onto the lock-free remote stack for the owner to drain.
  void free(void* p) noexcept {
    auto* h = reinterpret_cast<Header*>(static_cast<std::byte*>(p) -
                                        kHeaderBytes);
    if (h->bucket == kHeapBucket) {
      // Heap blocks never touch the freelists, so they can be released
      // directly on any thread; only the counter needs the atomic split.
      if (std::this_thread::get_id() ==
          owner_.load(std::memory_order_relaxed)) {
        ++stats_.heapFrees;
      } else {
        remoteHeapFrees_.fetch_add(1, std::memory_order_relaxed);
      }
      ::operator delete(static_cast<void*>(h));
      return;
    }
    if (std::this_thread::get_id() != owner_.load(std::memory_order_relaxed)) {
      auto* rn = reinterpret_cast<RemoteNode*>(h);  // bucket stays at offset 0
      RemoteNode* head = remoteHead_.load(std::memory_order_relaxed);
      do {
        rn->next = head;
      } while (!remoteHead_.compare_exchange_weak(head, rn,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed));
      return;
    }
    auto* n = reinterpret_cast<FreeNode*>(h);
    n->next = freelists_[h->bucket];
    freelists_[h->bucket] = n;
    ++stats_.poolFrees;
    --stats_.live;
  }

  /// Move every remotely-freed slot back onto its freelist. Called by the
  /// owner on alloc(), or explicitly at a quiescent point (a shard barrier,
  /// or after worker threads have joined).
  void drainRemote() noexcept {
    RemoteNode* p = remoteHead_.exchange(nullptr, std::memory_order_acquire);
    while (p != nullptr) {
      RemoteNode* next = p->next;
      auto* n = reinterpret_cast<FreeNode*>(p);
      std::uint32_t bucket = p->bucket;
      n->next = freelists_[bucket];
      freelists_[bucket] = n;
      ++stats_.poolFrees;
      --stats_.live;
      p = next;
    }
  }

  /// Release a block through the pool that served it, read from the header.
  /// For call sites that cannot remember the origin pool (e.g. coroutine
  /// frame operator delete, which only gets a pointer): with per-shard
  /// override pools, "the current thread's pool" is not necessarily the pool
  /// the block came from.
  static void release(void* p) noexcept {
    reinterpret_cast<Header*>(static_cast<std::byte*>(p) - kHeaderBytes)
        ->origin->free(p);
  }

  /// Transfer alloc()/drain rights to `id`. Only valid at a quiescent point
  /// (no concurrent alloc/free), e.g. when a shard worker adopts its pools.
  void setOwner(std::thread::id id) noexcept {
    owner_.store(id, std::memory_order_relaxed);
  }

  /// Snapshot of the counters. By value: remote frees land via atomics, so
  /// there is no single struct to hand out a stable reference to. Slots
  /// sitting undrained on the remote stack still count as `live`.
  SlabPoolStats stats() const {
    SlabPoolStats s = stats_;
    s.heapFrees += remoteHeapFrees_.load(std::memory_order_relaxed);
    return s;
  }
  const std::string& name() const { return name_; }

  /// Shrink (or raise) the slab-memory budget; carving past it throws.
  void setMaxBytes(std::size_t maxBytes) { maxBytes_ = maxBytes; }
  std::size_t maxBytes() const { return maxBytes_; }

 private:
  static constexpr std::size_t kHeaderBytes = 16;  // keeps payloads 16-aligned
  static constexpr std::uint32_t kHeapBucket = 0xffffffffu;
  struct Header {
    std::uint32_t bucket;
    std::uint32_t pad;
    SlabPool* origin;  ///< pool that served the block, for release()
  };
  static_assert(sizeof(Header) <= kHeaderBytes);
  struct FreeNode {
    FreeNode* next;
  };
  // Overlays the 16-byte header of a remotely-freed slot: the bucket tag is
  // preserved at offset 0 (where Header keeps it) so the owner can route the
  // slot to the right freelist at drain time; the chain pointer sits in the
  // header's padding.
  struct RemoteNode {
    std::uint32_t bucket;
    std::uint32_t pad;
    RemoteNode* next;
  };
  static_assert(sizeof(RemoteNode) <= kHeaderBytes);

  void* tag(void* block, std::uint32_t bucket) {
    auto* h = reinterpret_cast<Header*>(block);
    h->bucket = bucket;
    h->origin = this;
    return static_cast<std::byte*>(block) + kHeaderBytes;
  }

  void* heapAlloc(std::size_t bytes) {
    void* block = ::operator new(kHeaderBytes + bytes);
    ++stats_.heapAllocs;
    return tag(block, kHeapBucket);
  }

  void bump() {
    ++stats_.live;
    if (stats_.live > stats_.liveHighWater) stats_.liveHighWater = stats_.live;
  }

  void carveSlab(std::size_t need) {
    std::size_t bytes = need > kSlabBytes ? need : kSlabBytes;
    if (stats_.slabBytes + bytes > maxBytes_)
      throw std::runtime_error("SlabPool '" + name_ + "' exhausted: " +
                               std::to_string(stats_.slabBytes + bytes) +
                               " bytes would exceed the " +
                               std::to_string(maxBytes_) + "-byte budget (" +
                               std::to_string(stats_.live) + " slots live)");
    slabs_.push_back(std::make_unique<std::byte[]>(bytes));
    stats_.slabBytes += bytes;
    cursor_ = slabs_.back().get();
    cursorLeft_ = bytes;
  }

  std::string name_;
  std::size_t maxBytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* cursor_ = nullptr;
  std::size_t cursorLeft_ = 0;
  // freelists_[b] chains free slots of bucket b (b * kGranule payload bytes).
  FreeNode* freelists_[kMaxSlotBytes / kGranule + 1] = {};
  SlabPoolStats stats_;
  std::atomic<std::thread::id> owner_{std::this_thread::get_id()};
  std::atomic<RemoteNode*> remoteHead_{nullptr};
  std::atomic<std::uint64_t> remoteHeapFrees_{0};
};

/// Thread-local override slots for the named hot-path pools. The accessors in
/// net/packet.hpp, sim/task.hpp and sim/simulator.hpp consult these before
/// their default thread-local pools; the sharded kernel points them at
/// Simulator-owned per-worker pool sets so pooled objects outlive the worker
/// threads that allocated them (a thread_local pool would be destroyed at
/// thread exit while cross-shard packets still hold its slots).
struct PoolOverrides {
  SlabPool* packet = nullptr;
  SlabPool* payload = nullptr;
  SlabPool* taskFrame = nullptr;
  SlabPool* eventHandle = nullptr;
};

inline PoolOverrides& poolOverrides() {
  thread_local PoolOverrides o;
  return o;
}

/// Minimal std allocator over a SlabPool, for std::allocate_shared — the
/// control block and the object land in one recycled slot, so a pooled
/// shared_ptr is a refcounted slot with zero heap traffic.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(SlabPool& slabs) noexcept : pool(&slabs) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) noexcept : pool(o.pool) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool->alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { pool->free(p); }

  template <typename U>
  bool operator==(const PoolAllocator<U>& o) const noexcept {
    return pool == o.pool;
  }

  SlabPool* pool;
};

}  // namespace anton::util
