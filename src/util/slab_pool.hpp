// Slab/freelist memory pools for the zero-allocation hot path.
//
// A SlabPool serves fixed-granularity slots out of bump-carved slabs (the
// same discipline core/arena.hpp applies to client memories: carve up front,
// never give back) and recycles freed slots through per-size-class
// freelists. Once the working set has been touched, every alloc/free is a
// pointer pop/push — no malloc, ever — which is what lets the event kernel
// run packets, payload buffers, coroutine frames and cancellable-event
// handles without touching the host allocator (ndn-dpdk's DPDK mempool
// idiom, applied to simulated packets).
//
// Every block carries a 16-byte header tagging its origin (pool bucket or
// heap fallback), so allocation and release stay correct even when the
// pooling knob (util::hotPath().pools) is flipped between the two.
// Oversized requests (> kMaxSlotBytes) always fall back to the heap.
//
// SlabPools are intentionally NOT thread-safe: each simulation arena (and
// its serve worker thread) owns its own thread-local pools. Slots must be
// released on the thread that allocated them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/hotpath.hpp"

namespace anton::util {

/// Monotonic counters plus live-slot gauges of one SlabPool.
struct SlabPoolStats {
  std::uint64_t poolAllocs = 0;   ///< slots served from a slab or freelist
  std::uint64_t poolFrees = 0;    ///< slots pushed back onto a freelist
  std::uint64_t heapAllocs = 0;   ///< heap fallbacks (oversized or pooling off)
  std::uint64_t heapFrees = 0;
  std::uint64_t slabBytes = 0;    ///< total slab memory carved so far
  std::size_t live = 0;           ///< pool slots currently outstanding
  std::size_t liveHighWater = 0;  ///< peak of `live`
};

class SlabPool {
 public:
  /// Slot sizes are rounded up to multiples of this granule.
  static constexpr std::size_t kGranule = 64;
  /// Requests above this size always come from the heap (the "oversized
  /// capture" escape hatch; nothing on the hot path should hit it).
  static constexpr std::size_t kMaxSlotBytes = 4096;
  /// Slabs are carved in chunks of this many bytes.
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  /// `maxBytes` bounds total slab memory; exhausting it is a loud
  /// std::runtime_error naming the pool, never UB. The default is generous —
  /// a 4096-node sweep's in-flight packets fit with room to spare.
  explicit SlabPool(std::string name, std::size_t maxBytes = 256 << 20)
      : name_(std::move(name)), maxBytes_(maxBytes) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Allocate `bytes` (aligned for any ordinary type). Pool slot when the
  /// pooling knob is on and the size fits a bucket; tagged heap otherwise.
  void* alloc(std::size_t bytes) {
    if (!hotPath().pools || bytes > kMaxSlotBytes) return heapAlloc(bytes);
    std::size_t bucket = (bytes + kGranule - 1) / kGranule;  // >= 1
    if (FreeNode* n = freelists_[bucket]) {
      freelists_[bucket] = n->next;
      ++stats_.poolAllocs;
      bump();
      return tag(n, std::uint32_t(bucket));
    }
    std::size_t need = kHeaderBytes + bucket * kGranule;
    if (cursorLeft_ < need) carveSlab(need);
    std::byte* p = cursor_;
    cursor_ += need;
    cursorLeft_ -= need;
    ++stats_.poolAllocs;
    bump();
    return tag(p, std::uint32_t(bucket));
  }

  /// Release a block previously returned by alloc() on this thread. The
  /// header routes it back to its freelist bucket (or the heap).
  void free(void* p) noexcept {
    auto* h = reinterpret_cast<Header*>(static_cast<std::byte*>(p) -
                                        kHeaderBytes);
    if (h->bucket == kHeapBucket) {
      ++stats_.heapFrees;
      ::operator delete(static_cast<void*>(h));
      return;
    }
    auto* n = reinterpret_cast<FreeNode*>(h);
    n->next = freelists_[h->bucket];
    freelists_[h->bucket] = n;
    ++stats_.poolFrees;
    --stats_.live;
  }

  const SlabPoolStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// Shrink (or raise) the slab-memory budget; carving past it throws.
  void setMaxBytes(std::size_t maxBytes) { maxBytes_ = maxBytes; }
  std::size_t maxBytes() const { return maxBytes_; }

 private:
  static constexpr std::size_t kHeaderBytes = 16;  // keeps payloads 16-aligned
  static constexpr std::uint32_t kHeapBucket = 0xffffffffu;
  struct Header {
    std::uint32_t bucket;
  };
  struct FreeNode {
    FreeNode* next;
  };

  void* tag(void* block, std::uint32_t bucket) {
    reinterpret_cast<Header*>(block)->bucket = bucket;
    return static_cast<std::byte*>(block) + kHeaderBytes;
  }

  void* heapAlloc(std::size_t bytes) {
    void* block = ::operator new(kHeaderBytes + bytes);
    ++stats_.heapAllocs;
    return tag(block, kHeapBucket);
  }

  void bump() {
    ++stats_.live;
    if (stats_.live > stats_.liveHighWater) stats_.liveHighWater = stats_.live;
  }

  void carveSlab(std::size_t need) {
    std::size_t bytes = need > kSlabBytes ? need : kSlabBytes;
    if (stats_.slabBytes + bytes > maxBytes_)
      throw std::runtime_error("SlabPool '" + name_ + "' exhausted: " +
                               std::to_string(stats_.slabBytes + bytes) +
                               " bytes would exceed the " +
                               std::to_string(maxBytes_) + "-byte budget (" +
                               std::to_string(stats_.live) + " slots live)");
    slabs_.push_back(std::make_unique<std::byte[]>(bytes));
    stats_.slabBytes += bytes;
    cursor_ = slabs_.back().get();
    cursorLeft_ = bytes;
  }

  std::string name_;
  std::size_t maxBytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* cursor_ = nullptr;
  std::size_t cursorLeft_ = 0;
  // freelists_[b] chains free slots of bucket b (b * kGranule payload bytes).
  FreeNode* freelists_[kMaxSlotBytes / kGranule + 1] = {};
  SlabPoolStats stats_;
};

/// Minimal std allocator over a SlabPool, for std::allocate_shared — the
/// control block and the object land in one recycled slot, so a pooled
/// shared_ptr is a refcounted slot with zero heap traffic.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(SlabPool& slabs) noexcept : pool(&slabs) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) noexcept : pool(o.pool) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool->alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { pool->free(p); }

  template <typename U>
  bool operator==(const PoolAllocator<U>& o) const noexcept {
    return pool == o.pool;
  }

  SlabPool* pool;
};

}  // namespace anton::util
