#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace anton::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };

  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < headers_.size()) rule.append(2, ' ');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace anton::util
