#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace anton::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / double(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(ss / double(xs.size() - 1)) : 0.0;
  s.median = percentile(xs, 50.0);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double rank = std::clamp(p, 0.0, 100.0) / 100.0 * double(v.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - double(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

LinearFit fitLine(std::span<const double> xs, std::span<const double> ys) {
  LinearFit f;
  std::size_t n = std::min(xs.size(), ys.size());
  if (n == 0) return f;
  double mx = std::accumulate(xs.begin(), xs.begin() + n, 0.0) / double(n);
  double my = std::accumulate(ys.begin(), ys.begin() + n, 0.0) / double(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (n < 2 || sxx == 0.0) {
    f.intercept = my;
    f.slope = 0.0;
    return f;
  }
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  return f;
}

}  // namespace anton::util
