// Minimal strict-JSON reader and canonical emission helpers.
//
// One parser backs every place the repo consumes JSON it also produces:
// plan snapshots (verify/snapshot.cpp), job specs and the serve protocol
// (src/serve). It is strict — no comments, no trailing commas, exactly one
// document — because everything we parse is machine-written, and a lenient
// reader would let a malformed producer ship. Emission helpers are
// locale-proof (classic "C" locale, max_digits10 doubles) so canonical
// byte-stable serializations hash identically across platforms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace anton::util::json {

struct Value {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool b = false;
  double n = 0;
  std::string s;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;
};

/// Parse exactly one JSON document. Throws std::runtime_error with a
/// position-annotated message prefixed by `context` on malformed input.
Value parse(const std::string& text, const std::string& context = "json");

/// JSON string literal: quotes, backslashes and control characters escaped.
std::string quoted(const std::string& s);

/// Locale-independent full-precision JSON number ("null" for non-finite
/// values — bare nan/inf would break every parser).
std::string number(double v);

// Typed field access. All throw std::runtime_error naming `what` when the
// field is missing or has the wrong type.
const Value& field(const Value& obj, const std::string& key,
                   const std::string& what);
const Value* optField(const Value& obj, const std::string& key);
int asInt(const Value& v, const std::string& what);
std::uint64_t asU64(const Value& v, const std::string& what);
double asDouble(const Value& v, const std::string& what);
const std::string& asString(const Value& v, const std::string& what);
bool asBool(const Value& v, const std::string& what);

}  // namespace anton::util::json

namespace anton::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Incremental 64-bit FNV-1a over a byte sequence. Hashing the *bytes* of a
/// string makes the digest endianness-independent by construction; feeding
/// multiple strings continues one stream (h = fnv1a64(b, fnv1a64(a))).
constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t h = kFnvOffsetBasis) {
  for (char c : bytes) {
    h ^= std::uint64_t(static_cast<unsigned char>(c));
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed-width lowercase hex rendering of a 64-bit key ("0x" + 16 digits).
std::string hex64(std::uint64_t v);

}  // namespace anton::util
