#include "util/torus_coord.hpp"

#include <sstream>

namespace anton::util {

std::string TorusShape::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::string TorusCoord::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TorusCoord& c) {
  return os << '(' << c.x << ',' << c.y << ',' << c.z << ')';
}

std::ostream& operator<<(std::ostream& os, const TorusShape& s) {
  return os << s.nx << 'x' << s.ny << 'x' << s.nz;
}

}  // namespace anton::util
