// Hot-path mode switches for the zero-allocation event kernel.
//
// The paper's 162 ns path never touches an allocator: packet counts are
// pre-known, formats fixed, fan-out in hardware (SC10 §III). The simulator's
// equivalent discipline is slab pools for packets/payloads/frames/handles,
// inline (non-allocating) event-callback storage, and batched per-link
// arrival drains. Each of those behaviors can be switched off per thread to
// recover the legacy heap-allocating path — used by determinism_test (the
// pooled kernel must stay bit-identical to the legacy one) and by
// bench/kernel_throughput (honest pooled-vs-legacy speedup measured in one
// process). The knobs alter only *host* allocation behavior, never the
// simulated schedule; batching preserves the exact (time, seq) event order
// by reserving sequence numbers at the legacy schedule points.
//
// Thread-local on purpose: the serve layer runs one simulation per worker
// thread, and pools/knobs must never be shared across arenas.
#pragma once

namespace anton::util {

struct HotPathConfig {
  /// Slab pools for packets, payload buffers, coroutine frames and
  /// cancellable-event handles (off = plain operator new, the seed path).
  bool pools = true;
  /// Inline event-callback storage in the kernel's event records (off =
  /// emulate std::function's 16-byte SBO: larger captures go to the heap,
  /// one allocation per scheduled event, the seed path).
  bool inlineEvents = true;
  /// Per-link batched arrival drains in net::Machine (off = one scheduled
  /// continuation per link traversal, the seed path). Snapshot at Machine
  /// construction.
  bool batchDrains = true;

  void setAll(bool on) { pools = inlineEvents = batchDrains = on; }
};

/// This thread's hot-path knobs (default: everything on).
inline HotPathConfig& hotPath() {
  thread_local HotPathConfig cfg;
  return cfg;
}

/// RAII: flip every knob for a scope (tests and benches).
class ScopedHotPath {
 public:
  explicit ScopedHotPath(bool on) : saved_(hotPath()) { hotPath().setAll(on); }
  explicit ScopedHotPath(HotPathConfig cfg) : saved_(hotPath()) {
    hotPath() = cfg;
  }
  ~ScopedHotPath() { hotPath() = saved_; }
  ScopedHotPath(const ScopedHotPath&) = delete;
  ScopedHotPath& operator=(const ScopedHotPath&) = delete;

 private:
  HotPathConfig saved_;
};

}  // namespace anton::util
