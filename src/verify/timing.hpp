// Static critical-path and link-occupancy analysis of a CommPlan (ISSUE 9
// tentpole, DESIGN.md §12).
//
// The paper's whole argument is a latency budget: 162 ns end-to-end
// decomposed into assembly, hop and counter-poll costs, and communication
// time measured as the per-node critical path (SC10 Figs. 5/7, Table 3).
// This analyzer walks the plan's event-granular happens-before graph
// (verify/events.hpp) with the calibrated net::LatencyConfig and computes,
// before a single simulated cycle runs:
//
//   * the critical-path latency *lower bound* of the plan — a longest-path
//     relaxation where counted-delivery edges are priced at the static
//     minimum the live machine must charge (assembly, per-hop link-crossing
//     minima along the routed path, per-packet serialization spacing of a
//     burst, the local ring tail and the counter update/poll) and program
//     order is free — with the bottleneck path named event-by-event;
//   * per-link × per-phase message counts and occupancy-seconds (the wire
//     serialization the traffic must pay on each torus link), ranked as a
//     hotspot table — the adaptive-routing roadmap item's target list;
//   * degraded-mode inflation: the same bound re-priced with the declared
//     down links applied to every unicast route and multicast tree repair.
//
// Diagnostics (Violation::check):
//   "timing.contention"       — one phase offers a link more wire
//                               serialization than the whole round's
//                               critical-path budget: no schedule can
//                               sustain the claimed steady-state rate, the
//                               link is the binding resource. (Utilization
//                               above 1 inside a phase window alone is a
//                               reported bandwidth-bound hotspot, not an
//                               error: cross-write queuing is deliberately
//                               unpriced in the per-chain labels.)
//   "timing.degraded-blowup"  — the degraded critical path exceeds the
//                               healthy one by more than the configured
//                               factor (a reroute that wrecks the budget).
//   "timing.stalled"          — a delivery has no route at all under the
//                               declared down links (no finite bound).
//   "timing.cycle"            — the event graph is cyclic; no bound exists
//                               (the deadlock is event.deadlock's finding).
//
// Soundness contract: criticalPathNs never exceeds the live simulator's
// completion time for a run executing at least one template round —
// enforced dynamically by `verify_plans --timing-oracle`, which replays the
// live ping/MD/all-reduce schedules (with sim/causal_log attribution) and
// pins the measured/bound slack ratio per plan family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "verify/checks.hpp"
#include "verify/plan.hpp"

namespace anton::verify {

struct TimingOptions {
  /// Template rounds unrolled for the critical path (2 covers every
  /// round-wrap edge kind; the steady-state per-round increment is the
  /// difference between the R-round and (R-1)-round bounds).
  int rounds = 2;
  /// Links assumed down for the degraded re-pricing; empty skips it.
  std::vector<DownLink> downLinks;
  /// timing.degraded-blowup fires when degraded/healthy exceeds this.
  double degradedBlowupFactor = 2.0;
  /// Caps on the named bottleneck path and the ranked hotspot table.
  int maxPathEvents = 48;
  int maxHotspots = 12;
};

/// One event on the bottleneck path, earliest-first.
struct PathStep {
  std::string event;      ///< EventGraph::describe of the vertex
  double arrivalNs = 0.0; ///< earliest completion under the bound
  double edgeNs = 0.0;    ///< weight of the edge from the previous step
};

/// Offered load of one (torus link, phase) cell. The link is named by its
/// exit side: the packet leaves `node` through its (dim, sign) adapter.
struct LinkLoad {
  int node = 0;
  int dim = 0;
  int sign = +1;
  std::string phase;
  std::uint64_t packets = 0;   ///< packets per round crossing the link
  double occupancyNs = 0.0;    ///< serialization demand per round
  double windowNs = 0.0;       ///< static completion window of the traffic
  double utilization = 0.0;    ///< occupancyNs / windowNs (0 when unknown)
};

struct TimingReport {
  std::string plan;
  int rounds = 0;
  int eventsModeled = 0;
  /// Longest happens-before path over `rounds` template rounds, ns.
  double criticalPathNs = 0.0;
  /// Steady-state per-round increment: bound(rounds) - bound(rounds - 1).
  double perRoundNs = 0.0;
  /// Largest per-link serialization demand per round (the bandwidth term).
  double maxLinkDemandNs = 0.0;
  std::vector<PathStep> bottleneckPath;  ///< earliest event first
  std::vector<LinkLoad> hotspots;        ///< ranked by occupancy, capped
  int linksUsed = 0;                     ///< distinct torus links with traffic
  // Degraded re-pricing (downLinks non-empty):
  bool degradedAnalyzed = false;
  bool degradedStalled = false;  ///< some delivery unreachable: no bound
  double degradedCriticalPathNs = 0.0;
  double inflation = 1.0;  ///< degraded / healthy critical path
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Wire size of one planned packet: header plus any payload too large for
/// the immediate slot (net::Packet::wireBytes with the plan's declared
/// per-packet payload; 0 declared bytes price the header-only minimum).
std::size_t plannedWireBytes(const PlannedWrite& w);

/// Compute the plan's static timing lower bound, hotspot table and (when
/// opts.downLinks is non-empty) degraded inflation.
TimingReport analyzeTiming(const CommPlan& plan, const TimingOptions& opts = {},
                           const net::LatencyConfig& lat = {});

}  // namespace anton::verify
