#include "verify/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>

#include "net/packet.hpp"
#include "verify/events.hpp"

namespace anton::verify {
namespace {

constexpr double kInfNs = std::numeric_limits<double>::infinity();

/// Static minimum latency of a cross-node delivery: the dimension-ordered
/// route pays at least the per-dimension link-crossing minimum per hop.
double minRouteNs(int fromNode, int toNode, const util::TorusShape& shape,
                  const net::LatencyConfig& lat) {
  util::TorusCoord a = util::torusCoordOf(fromNode, shape);
  util::TorusCoord b = util::torusCoordOf(toNode, shape);
  double ns = 0.0;
  for (int dim = 0; dim < 3; ++dim)
    ns += double(util::torusHops1D(a[dim], b[dim], shape.extent(dim))) *
          lat.minLinkCrossingNs(dim);
  return ns;
}

/// The distinct shards a node's clients map to (usually exactly one).
std::vector<int> shardsOfNode(int node, const Sharding& s) {
  std::vector<int> out;
  for (int c = 0; c < net::kClientsPerNode; ++c) {
    int sh = s.shardOf({node, c});
    if (std::find(out.begin(), out.end(), sh) == out.end()) out.push_back(sh);
  }
  return out;
}

/// The client an event slot acts on behalf of (the shard attribution).
net::ClientAddr eventClient(const CommPlan& plan, const Event& e) {
  switch (e.kind) {
    case EventKind::kWait:
      return plan.expectations[std::size_t(e.ref)].client;
    case EventKind::kFree:
      return plan.buffers[std::size_t(e.ref)].client;
    case EventKind::kSend:
      return {plan.writes[std::size_t(e.ref)].srcNode, net::kSlice0};
    case EventKind::kPhaseEntry:  // phase anchors act for the whole node
    case EventKind::kPhaseExit:
      return {e.node, net::kSlice0};
  }
  return {e.node, net::kSlice0};
}

struct ViolationCollector {
  std::vector<Violation> out;
  std::map<std::pair<std::string, std::string>, std::size_t> index;

  void add(const std::string& check, const std::string& site,
           const std::string& detail, int node) {
    auto [it, fresh] = index.try_emplace({check, site}, out.size());
    if (!fresh) {
      ++out[it->second].count;
      return;
    }
    Violation v;
    v.check = check;
    v.severity = Severity::kError;
    v.site = site;
    v.detail = detail;
    v.node = node;
    out.push_back(std::move(v));
  }
};

std::string ns1(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Sharding perNodeSharding(const util::TorusShape& shape) {
  Sharding s;
  s.name = "per-node";
  s.numShards = shape.size();
  s.shardOf = [](net::ClientAddr a) { return a.node; };
  return s;
}

Sharding slabSharding(const util::TorusShape& shape) {
  Sharding s;
  s.name = "slab-x";
  s.numShards = shape.nx;
  s.shardOf = [shape](net::ClientAddr a) {
    return util::torusCoordOf(a.node, shape).x;
  };
  return s;
}

Sharding splitNodeSharding(const util::TorusShape& shape) {
  // Slices on even shards, HTIS + accumulation memories on odd: program
  // order inside every node crosses shards with zero latency.
  Sharding s;
  s.name = "split-node";
  s.numShards = 2 * shape.size();
  s.shardOf = [](net::ClientAddr a) {
    return 2 * a.node + (a.client >= net::kHtis ? 1 : 0);
  };
  return s;
}

Sharding claimedLookaheadSharding(const util::TorusShape& shape,
                                  double claimNs) {
  Sharding s = perNodeSharding(shape);
  s.name = "per-node-claimed-" + ns1(claimNs) + "ns";
  s.claimedLookaheadNs = claimNs;
  return s;
}

std::map<std::pair<int, int>, ShardPairStat> shardPairBounds(
    const util::TorusShape& shape, const Sharding& sharding,
    const net::LatencyConfig& lat) {
  const int N = shape.size();
  std::vector<std::vector<int>> nodeShards{std::size_t(N)};
  for (int n = 0; n < N; ++n) nodeShards[std::size_t(n)] = shardsOfNode(n, sharding);

  std::map<std::pair<int, int>, ShardPairStat> pairs;
  auto stat = [&pairs](int a, int b) -> ShardPairStat& {
    auto key = std::minmax(a, b);
    auto [it, fresh] = pairs.try_emplace({key.first, key.second});
    if (fresh) {
      it->second.a = key.first;
      it->second.b = key.second;
      it->second.linkBoundNs = kInfNs;
    }
    return it->second;
  };

  // Intra-node splits: zero-latency boundaries.
  for (int n = 0; n < N; ++n) {
    const std::vector<int>& sh = nodeShards[std::size_t(n)];
    for (std::size_t i = 0; i < sh.size(); ++i)
      for (std::size_t j = i + 1; j < sh.size(); ++j)
        stat(sh[i], sh[j]).linkBoundNs = 0.0;
  }

  // Physical boundary links between adjacent nodes in different shards.
  for (int n = 0; n < N; ++n) {
    util::TorusCoord c = util::torusCoordOf(n, shape);
    for (int dim = 0; dim < 3; ++dim) {
      if (shape.extent(dim) < 2) continue;
      util::TorusCoord nc = util::torusNeighbor(c, dim, +1, shape);
      int m = util::torusIndex(nc, shape);
      if (m == n) continue;
      for (int s1 : nodeShards[std::size_t(n)])
        for (int s2 : nodeShards[std::size_t(m)]) {
          if (s1 == s2) continue;
          ShardPairStat& st = stat(s1, s2);
          ++st.boundaryLinks;
          st.linkBoundNs = std::min(st.linkBoundNs, lat.minLinkCrossingNs(dim));
        }
    }
  }

  // Non-adjacent pairs still exchange messages (multi-hop deliveries): their
  // bound is the cheapest route between any node of one and any node of the
  // other — at least one boundary crossing per hop, so never below the
  // adjacent bounds, but recorded so every cross-shard edge has a bound.
  for (int n = 0; n < N; ++n)
    for (int m = n + 1; m < N; ++m) {
      double route = minRouteNs(n, m, shape, lat);
      for (int s1 : nodeShards[std::size_t(n)])
        for (int s2 : nodeShards[std::size_t(m)]) {
          if (s1 == s2) continue;
          ShardPairStat& st = stat(s1, s2);
          st.linkBoundNs = std::min(st.linkBoundNs, route);
        }
    }
  return pairs;
}

LookaheadReport analyzeLookahead(const CommPlan& plan, const Sharding& sharding,
                                 const net::LatencyConfig& lat, int rounds) {
  LookaheadReport rep;
  rep.plan = plan.name;
  rep.sharding = sharding.name;
  rep.numShards = sharding.numShards;

  EventGraph graph(plan, rounds, deliveredTargets(plan));
  rep.eventsModeled = graph.numVertices();

  // Per-slot shard attribution (identical across rounds).
  std::vector<int> slotShard(std::size_t(graph.numSlots()));
  std::vector<int> slotNode(std::size_t(graph.numSlots()));
  for (int s = 0; s < graph.numSlots(); ++s) {
    const Event& e = graph.event(s);
    slotNode[std::size_t(s)] = e.node;
    slotShard[std::size_t(s)] = sharding.shardOf(eventClient(plan, e));
  }

  std::map<std::pair<int, int>, ShardPairStat> pairs =
      shardPairBounds(plan.shape, sharding, lat);
  auto boundOf = [&](int a, int b) {
    if (sharding.claimedLookaheadNs >= 0) return sharding.claimedLookaheadNs;
    auto key = std::minmax(a, b);
    auto it = pairs.find({key.first, key.second});
    return it == pairs.end() ? 0.0 : it->second.linkBoundNs;
  };

  // Walk every happens-before edge once; prove cross-shard slack.
  ViolationCollector vc;
  struct PairEdge {  // tightest edge seen per pair
    double latencyNs = kInfNs;
    int u = -1, v = -1;
    bool violates = false;
  };
  std::map<std::pair<int, int>, PairEdge> tightest;
  // Directed zero-bound shard adjacency, for the deadlock check.
  std::set<std::pair<int, int>> zeroEdges;
  std::map<int, std::set<int>> conflictAdj;

  for (int u = 0; u < graph.numVertices(); ++u) {
    int su = slotShard[std::size_t(graph.slotOf(u))];
    int nu = slotNode[std::size_t(graph.slotOf(u))];
    for (const int* pv = graph.succBegin(u); pv != graph.succEnd(u); ++pv) {
      int v = *pv;
      int sv = slotShard[std::size_t(graph.slotOf(v))];
      if (su == sv) continue;
      int nv = slotNode[std::size_t(graph.slotOf(v))];
      double latency = nu == nv ? 0.0 : minRouteNs(nu, nv, plan.shape, lat);
      double bound = boundOf(su, sv);
      ++rep.crossShardEdges;
      auto key = std::minmax(su, sv);
      auto mapKey = std::pair<int, int>{key.first, key.second};
      auto [it, fresh] = pairs.try_emplace(mapKey);
      if (fresh) {
        it->second.a = key.first;
        it->second.b = key.second;
        it->second.linkBoundNs = bound;
      }
      ++it->second.edges;
      conflictAdj[su].insert(sv);
      conflictAdj[sv].insert(su);

      bool violates = false;
      constexpr double kEps = 1e-9;
      if (latency <= kEps) {
        // The pair's bound collapses to 0 too, so this is not a slack
        // violation — it is worse: the conservative kernel can never
        // advance either shard past the other.
        violates = true;
        vc.add("lookahead.zero", sharding.name,
               "zero-latency happens-before edge crosses shards " +
                   std::to_string(su) + " -> " + std::to_string(sv) + ": " +
                   graph.describe(u) + "  ==>  " + graph.describe(v) +
                   " (the sharding splits node " + std::to_string(nu) +
                   "; pair lookahead collapses to 0 ns)",
               nu);
      } else if (latency + kEps < bound) {
        violates = true;
        vc.add("lookahead.slack", sharding.name,
               "claimed lookahead " + ns1(bound) +
                   " ns exceeds the static minimum " + ns1(latency) +
                   " ns of the edge " + graph.describe(u) + "  ==>  " +
                   graph.describe(v) +
                   " (a kernel trusting the claim must roll back)",
               nu);
      }
      // Every zero-bound directed crossing feeds the deadlock analysis,
      // violating or not (a claimed bound of 0 is "safe" per edge but can
      // still deadlock a null-message kernel in a cycle).
      if (bound <= kEps) zeroEdges.insert({su, sv});

      PairEdge& pe = tightest[mapKey];
      if (latency < pe.latencyNs) {
        pe.latencyNs = latency;
        pe.u = u;
        pe.v = v;
      }
      pe.violates = pe.violates || violates;
    }
  }

  // Deadlock: a directed cycle among shards joined by zero-lookahead
  // crossings means no shard on the cycle can ever advance its clock.
  {
    std::map<int, std::vector<int>> adj;
    for (const auto& [a, b] : zeroEdges) adj[a].push_back(b);
    std::map<int, int> color;  // 0/absent white, 1 gray, 2 black
    std::vector<int> cycle;
    std::function<bool(int)> dfs = [&](int s) {
      color[s] = 1;
      for (int t : adj[s]) {
        if (color[t] == 1) {
          cycle.push_back(t);
          cycle.push_back(s);
          return true;
        }
        if (color[t] == 0 && dfs(t)) {
          if (cycle.size() < 2 || cycle.front() != cycle.back())
            cycle.push_back(s);
          return true;
        }
      }
      color[s] = 2;
      return false;
    };
    for (const auto& [s, _] : adj)
      if (color[s] == 0 && dfs(s)) break;
    if (!cycle.empty()) {
      std::reverse(cycle.begin(), cycle.end());
      std::string shards;
      for (std::size_t i = 0; i < cycle.size(); ++i)
        shards += (i != 0 ? " -> " : "") + std::to_string(cycle[i]);
      // Name a concrete edge on the cycle so the diagnostic is actionable.
      std::string edge = "?";
      auto key = std::minmax(cycle[0], cycle[1]);
      auto it = tightest.find({key.first, key.second});
      if (it != tightest.end() && it->second.u >= 0)
        edge = graph.describe(it->second.u) + "  ==>  " +
               graph.describe(it->second.v);
      vc.add("lookahead.deadlock", sharding.name,
             "zero-lookahead shard cycle " + shards +
                 ": null messages cannot advance any clock on it; e.g. " +
                 edge,
             -1);
    }
  }

  // Assemble the report: only pairs that actually exchange edges matter for
  // the budget and the conflict graph.
  double safe = kInfNs;
  for (const auto& [key, st] : pairs) {
    if (st.edges == 0) continue;
    rep.pairs.push_back(st);
    safe = std::min(safe, sharding.claimedLookaheadNs >= 0
                              ? sharding.claimedLookaheadNs
                              : st.linkBoundNs);
  }
  rep.safeLookaheadNs = safe == kInfNs ? 0.0 : safe;
  for (const auto& [s, peers] : conflictAdj)
    rep.conflictDegree = std::max(rep.conflictDegree, int(peers.size()));
  for (const auto& [key, pe] : tightest) {
    if (pe.u < 0) continue;
    CriticalEdge ce;
    ce.from = graph.describe(pe.u);
    ce.to = graph.describe(pe.v);
    ce.fromShard = slotShard[std::size_t(graph.slotOf(pe.u))];
    ce.toShard = slotShard[std::size_t(graph.slotOf(pe.v))];
    ce.latencyNs = pe.latencyNs;
    ce.boundNs = boundOf(ce.fromShard, ce.toShard);
    ce.violates = pe.violates;
    rep.criticalEdges.push_back(std::move(ce));
  }
  // Tightest (and violating) edges first; deterministic order.
  std::stable_sort(rep.criticalEdges.begin(), rep.criticalEdges.end(),
                   [](const CriticalEdge& a, const CriticalEdge& b) {
                     if (a.violates != b.violates) return a.violates;
                     return a.latencyNs < b.latencyNs;
                   });
  rep.violations = std::move(vc.out);
  return rep;
}

OracleCheckResult checkCausalLog(const std::vector<sim::CausalRecord>& log,
                                 const util::TorusShape& shape,
                                 const Sharding& sharding,
                                 const net::LatencyConfig& lat) {
  OracleCheckResult res;
  res.recordsSeen = int(log.size());
  std::map<std::pair<int, int>, ShardPairStat> pairs =
      shardPairBounds(shape, sharding, lat);
  auto boundOf = [&](int a, int b) {
    if (sharding.claimedLookaheadNs >= 0) return sharding.claimedLookaheadNs;
    auto key = std::minmax(a, b);
    auto it = pairs.find({key.first, key.second});
    return it == pairs.end() ? 0.0 : it->second.linkBoundNs;
  };

  // (epoch, seq) -> record index. Parents execute before they schedule, so
  // every resolvable parent is present by the time its child is checked.
  std::unordered_map<std::uint64_t, std::size_t> bySeq;
  auto keyOf = [](std::uint16_t epoch, std::uint64_t seq) {
    return (std::uint64_t(epoch) << 48) ^ seq;
  };
  for (std::size_t i = 0; i < log.size(); ++i)
    bySeq[keyOf(log[i].epoch, log[i].seq)] = i;

  ViolationCollector vc;
  for (const sim::CausalRecord& r : log) {
    if (r.link == 0 || r.node < 0 || r.parent == sim::kNoCausalParent)
      continue;
    auto it = bySeq.find(keyOf(r.epoch, r.parent));
    if (it == bySeq.end()) continue;
    const sim::CausalRecord& p = log[it->second];
    if (p.node < 0 || p.node == r.node) continue;
    ++res.linkEdgesChecked;
    int sp = sharding.shardOfNode(p.node);
    int sr = sharding.shardOfNode(r.node);
    if (sp == sr) continue;
    ++res.crossShardEdges;
    double deltaNs = sim::toNs(r.t - p.t);
    if (res.minObservedNs < 0 || deltaNs < res.minObservedNs)
      res.minObservedNs = deltaNs;
    double bound = boundOf(sp, sr);
    if (r.t - p.t < sim::ns(bound)) {
      vc.add("oracle.lookahead", sharding.name,
             "observed cross-shard delta " + ns1(deltaNs) +
                 " ns below the claimed lookahead " + ns1(bound) +
                 " ns: event seq " + std::to_string(r.seq) + " at node " +
                 std::to_string(r.node) + " (shard " + std::to_string(sr) +
                 ") scheduled by seq " + std::to_string(r.parent) +
                 " at node " + std::to_string(p.node) + " (shard " +
                 std::to_string(sp) + ")",
             r.node);
    }
  }
  res.violations = std::move(vc.out);
  return res;
}

}  // namespace anton::verify
