// The committed lookahead contract, as the sharded kernel consumes it.
//
// tests/golden_plans/VERIFY_lookahead.json is the static analyzer's safety
// report (one JSON object per line): per (plan, sharding) the proven global
// run-ahead budget, conflict degree, and the verdict. This module is the
// bridge from that contract (or from a live analyzeLookahead() report) to
// the data-only sim::ShardLayout the kernel runs with — and the single
// place that REFUSES a sharding the analyzer rejected, with a diagnostic
// naming the violated check (lookahead.zero, lookahead.slack,
// lookahead.deadlock).
//
// Per-shard-pair channel bounds always come from live topology
// (shardPairBounds over every adjacent pair, not just the pairs that carry
// plan edges): adaptively routed packets may cross any adjacent boundary,
// so the kernel's admission check must cover them all.
#pragma once

#include <string>
#include <vector>

#include "net/latency.hpp"
#include "sim/shard_layout.hpp"
#include "util/torus_coord.hpp"
#include "verify/lookahead.hpp"

namespace anton::verify {

/// One "lookahead" row of the committed contract file.
struct LookaheadContractRow {
  std::string plan;
  std::string sharding;
  int shards = 0;
  double safeLookaheadNs = 0.0;
  int conflictDegree = 0;
  int crossShardEdges = 0;
  int events = 0;
  int pairs = 0;
  int violations = 0;
  bool ok = false;
};

/// Parse the contract file (JSON-lines), keeping the "lookahead" rows.
/// Throws std::runtime_error on an unreadable or malformed file.
std::vector<LookaheadContractRow> loadLookaheadContract(
    const std::string& path);

/// Build the kernel's layout from a live analyzer report. Throws
/// std::runtime_error naming the first violated check when the analyzer
/// rejected the sharding.
sim::ShardLayout shardLayoutFromReport(const LookaheadReport& report,
                                       const util::TorusShape& shape,
                                       const Sharding& sharding,
                                       const net::LatencyConfig& lat = {});

/// Build the kernel's layout from the committed contract. Throws when the
/// contract holds no row for (plan, sharding name), when the row's verdict
/// is not ok, or when the row's shard count disagrees with the sharding
/// instantiated over `shape` (a stale contract).
sim::ShardLayout shardLayoutFromContract(
    const std::vector<LookaheadContractRow>& rows, const std::string& plan,
    const util::TorusShape& shape, const Sharding& sharding,
    const net::LatencyConfig& lat = {});

/// Plan-free layout: the global budget is the minimum channel bound over
/// every adjacent shard pair — classic CMB lookahead from topology alone,
/// sound for ANY workload on the sharding (a plan-aware report can only
/// widen it). Throws (naming lookahead.zero) when a boundary's bound is
/// zero, i.e. a node's clients are split across shards.
sim::ShardLayout shardLayoutFromTopology(const util::TorusShape& shape,
                                         const Sharding& sharding,
                                         const net::LatencyConfig& lat = {});

}  // namespace anton::verify
