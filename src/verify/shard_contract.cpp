#include "verify/shard_contract.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace anton::verify {

namespace json = util::json;

std::vector<LookaheadContractRow> loadLookaheadContract(
    const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("lookahead contract: cannot open " + path);
  std::vector<LookaheadContractRow> rows;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value v =
        json::parse(line, path + ":" + std::to_string(lineNo));
    const std::string& kind =
        json::asString(json::field(v, "kind", "contract row kind"),
                       "contract row kind");
    if (kind != "lookahead") continue;
    LookaheadContractRow r;
    r.plan = json::asString(json::field(v, "plan", "plan"), "plan");
    r.sharding =
        json::asString(json::field(v, "sharding", "sharding"), "sharding");
    r.shards = json::asInt(json::field(v, "shards", "shards"), "shards");
    r.safeLookaheadNs = json::asDouble(
        json::field(v, "safeLookaheadNs", "safeLookaheadNs"),
        "safeLookaheadNs");
    r.conflictDegree = json::asInt(
        json::field(v, "conflictDegree", "conflictDegree"), "conflictDegree");
    r.crossShardEdges =
        json::asInt(json::field(v, "crossShardEdges", "crossShardEdges"),
                    "crossShardEdges");
    r.events = json::asInt(json::field(v, "events", "events"), "events");
    r.pairs = json::asInt(json::field(v, "pairs", "pairs"), "pairs");
    r.violations =
        json::asInt(json::field(v, "violations", "violations"), "violations");
    r.ok = json::asBool(json::field(v, "ok", "ok"), "ok");
    rows.push_back(std::move(r));
  }
  return rows;
}

namespace {

/// The shared tail: node->shard map and full-topology channel bounds.
sim::ShardLayout layoutSkeleton(const util::TorusShape& shape,
                                const Sharding& sharding,
                                const net::LatencyConfig& lat) {
  sim::ShardLayout layout;
  layout.name = sharding.name;
  layout.numShards = sharding.numShards;
  layout.shardOfNode.resize(std::size_t(shape.size()));
  for (int n = 0; n < shape.size(); ++n)
    layout.shardOfNode[std::size_t(n)] = sharding.shardOfNode(n);
  for (const auto& [pair, stat] : shardPairBounds(shape, sharding, lat))
    layout.pairBoundPs[pair] = sim::ns(stat.linkBoundNs);
  return layout;
}

[[noreturn]] void refuse(const std::string& plan, const std::string& sharding,
                         const std::string& check, const std::string& detail) {
  throw std::runtime_error("sharding '" + sharding + "' rejected for plan '" +
                           plan + "' by the lookahead analyzer [" + check +
                           "]: " + detail);
}

}  // namespace

sim::ShardLayout shardLayoutFromReport(const LookaheadReport& report,
                                       const util::TorusShape& shape,
                                       const Sharding& sharding,
                                       const net::LatencyConfig& lat) {
  if (!report.ok()) {
    const Violation& v = report.violations.front();
    std::ostringstream os;
    os << v.detail;
    if (report.violations.size() > 1)
      os << " (+" << report.violations.size() - 1 << " more violations)";
    refuse(report.plan, report.sharding, v.check, os.str());
  }
  sim::ShardLayout layout = layoutSkeleton(shape, sharding, lat);
  layout.plan = report.plan;
  layout.safeLookaheadNs = report.safeLookaheadNs;
  layout.conflictDegree = report.conflictDegree;
  return layout;
}

sim::ShardLayout shardLayoutFromTopology(const util::TorusShape& shape,
                                         const Sharding& sharding,
                                         const net::LatencyConfig& lat) {
  sim::ShardLayout layout = layoutSkeleton(shape, sharding, lat);
  layout.plan = "(topology)";
  double minBound = -1.0;
  for (const auto& [pair, bound] : layout.pairBoundPs) {
    double ns = double(sim::toNs(bound));
    if (minBound < 0.0 || ns < minBound) minBound = ns;
    if (bound <= 0)
      refuse("(topology)", sharding.name, "lookahead.zero",
             "shards " + std::to_string(pair.first) + " and " +
                 std::to_string(pair.second) +
                 " share a zero-latency boundary (a node's clients are split "
                 "across them)");
  }
  layout.safeLookaheadNs = minBound < 0.0 ? 0.0 : minBound;
  layout.conflictDegree = 0;
  for (int s = 0; s < layout.numShards; ++s) {
    int deg = 0;
    for (const auto& [pair, bound] : layout.pairBoundPs)
      if (pair.first == s || pair.second == s) ++deg;
    layout.conflictDegree = std::max(layout.conflictDegree, deg);
  }
  if (layout.pairBoundPs.empty() && layout.numShards > 1)
    throw std::runtime_error(
        "sharding '" + sharding.name +
        "' produced no adjacent shard pairs over this shape");
  return layout;
}

sim::ShardLayout shardLayoutFromContract(
    const std::vector<LookaheadContractRow>& rows, const std::string& plan,
    const util::TorusShape& shape, const Sharding& sharding,
    const net::LatencyConfig& lat) {
  const LookaheadContractRow* row = nullptr;
  for (const LookaheadContractRow& r : rows) {
    if (r.plan == plan && r.sharding == sharding.name) {
      row = &r;
      break;
    }
  }
  if (row == nullptr)
    throw std::runtime_error("lookahead contract holds no row for plan '" +
                             plan + "' under sharding '" + sharding.name +
                             "' — the analyzer never proved this combination");
  if (!row->ok)
    refuse(plan, sharding.name, "lookahead",
           "the committed contract records " +
               std::to_string(row->violations) +
               " violation(s) for this combination");
  if (row->shards != sharding.numShards)
    throw std::runtime_error(
        "lookahead contract is stale for plan '" + plan + "' sharding '" +
        sharding.name + "': contract proves " + std::to_string(row->shards) +
        " shards, live sharding has " + std::to_string(sharding.numShards));
  sim::ShardLayout layout = layoutSkeleton(shape, sharding, lat);
  layout.plan = plan;
  layout.safeLookaheadNs = row->safeLookaheadNs;
  layout.conflictDegree = row->conflictDegree;
  return layout;
}

}  // namespace anton::verify
