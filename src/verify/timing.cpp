#include "verify/timing.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "net/packet.hpp"
#include "verify/events.hpp"

namespace anton::verify {
namespace {

constexpr double kEps = 1e-9;

/// One directed torus link, named by its exit side.
struct Link {
  int node = 0;
  int dim = 0;
  int sign = +1;
  friend bool operator<(const Link& a, const Link& b) {
    return std::tie(a.node, a.dim, a.sign) < std::tie(b.node, b.dim, b.sign);
  }
  friend bool operator==(const Link& a, const Link& b) {
    return std::tie(a.node, a.dim, a.sign) == std::tie(b.node, b.dim, b.sign);
  }
};

std::string linkLabel(const Link& l) {
  return "node " + std::to_string(l.node) + " " +
         std::string(1, "xyz"[std::size_t(l.dim)]) + (l.sign > 0 ? "+" : "-");
}

std::string ns1(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Direction of the hop a -> b along `dim` (extent-2 dimensions pick +).
int hopSign(int a, int b, int dim, const util::TorusShape& shape) {
  util::TorusCoord ca = util::torusCoordOf(a, shape);
  return util::torusIndex(util::torusNeighbor(ca, dim, +1, shape), shape) == b
             ? +1
             : -1;
}

/// Routed delivery of one write: the per-destination link paths and the set
/// of links the traffic occupies (each multicast tree link carries every
/// packet exactly once, independent of the fan-out size behind it).
struct WriteRoute {
  std::map<int, std::vector<Link>> pathTo;  ///< dst node -> links from src
  std::vector<Link> occupied;               ///< distinct links traversed
  bool stalled = false;                     ///< some destination unreachable
  std::string stallDetail;
};

void walkTree(const MulticastPlanEntry& entry, const util::TorusShape& shape,
              const std::vector<DownLink>& downLinks, WriteRoute& out) {
  auto isDown = [&](const Link& l) {
    for (const DownLink& d : downLinks)
      if (d.node == l.node && d.dim == l.dim && d.sign == l.sign) return true;
    return false;
  };
  std::set<int> visited;
  // DFS from the source; malformed trees (cycles) stop at the revisit — the
  // multicast checks own that diagnosis.
  std::deque<std::pair<int, std::vector<Link>>> stack;
  stack.push_back({entry.srcNode, {}});
  visited.insert(entry.srcNode);
  std::set<Link> occupied;
  while (!stack.empty()) {
    auto [node, path] = std::move(stack.back());
    stack.pop_back();
    out.pathTo.emplace(node, path);
    auto it = entry.entries.find(node);
    if (it == entry.entries.end()) continue;
    for (int dim = 0; dim < 3; ++dim)
      for (int sign : {+1, -1}) {
        int bit = net::RingLayout::adapterIndex(dim, sign);
        if ((it->second.linkMask & (1u << bit)) == 0) continue;
        Link l{node, dim, sign};
        if (isDown(l)) continue;
        util::TorusCoord c = util::torusCoordOf(node, shape);
        int next = util::torusIndex(util::torusNeighbor(c, dim, sign, shape),
                                    shape);
        if (!visited.insert(next).second) continue;
        occupied.insert(l);
        std::vector<Link> nextPath = path;
        nextPath.push_back(l);
        stack.push_back({next, std::move(nextPath)});
      }
  }
  out.occupied.assign(occupied.begin(), occupied.end());
}

/// Route every write of the plan, healthy or under the declared down links
/// (unicast reroutes via the first-healthy-dimension trace, multicast via
/// the repaired tree — the same policies the live machine and the recovery
/// replays use).
std::vector<WriteRoute> routeWrites(
    const CommPlan& plan,
    const std::vector<std::vector<net::ClientAddr>>& delivered,
    const std::vector<DownLink>& downLinks) {
  std::map<int, std::vector<std::size_t>> patternIndex;
  for (std::size_t mi = 0; mi < plan.multicasts.size(); ++mi)
    patternIndex[plan.multicasts[mi].patternId].push_back(mi);

  std::vector<WriteRoute> routes(plan.writes.size());
  std::map<std::pair<std::size_t, bool>, WriteRoute> treeCache;
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    WriteRoute& r = routes[wi];
    if (w.pattern == net::kNoMulticast) {
      std::set<int> dstNodes;
      for (const net::ClientAddr& d : delivered[wi]) dstNodes.insert(d.node);
      std::set<Link> occupied;
      for (int dst : dstNodes) {
        if (dst == w.srcNode) {
          r.pathTo.emplace(dst, std::vector<Link>{});
          continue;
        }
        RouteTrace tr =
            traceUnicastRoute(w.srcNode, dst, plan.shape, downLinks);
        if (tr.stalled) {
          r.stalled = true;
          r.stallDetail = "no route node " + std::to_string(w.srcNode) +
                          " -> node " + std::to_string(dst);
          continue;
        }
        std::vector<Link> path;
        for (std::size_t h = 0; h + 1 < tr.nodes.size(); ++h) {
          int dim = tr.dims[h];
          path.push_back({tr.nodes[h], dim,
                          hopSign(tr.nodes[h], tr.nodes[h + 1], dim,
                                  plan.shape)});
          occupied.insert(path.back());
        }
        r.pathTo.emplace(dst, std::move(path));
      }
      r.occupied.assign(occupied.begin(), occupied.end());
      continue;
    }

    // Multicast: resolve the pattern entry exactly as deliveredTargets does.
    auto it = patternIndex.find(w.pattern);
    std::size_t chosen = std::size_t(-1);
    if (it != patternIndex.end()) {
      for (std::size_t c : it->second)
        if (plan.multicasts[c].srcNode == w.srcNode) {
          chosen = c;
          break;
        }
      if (chosen == std::size_t(-1) && it->second.size() == 1)
        chosen = it->second.front();
    }
    if (chosen == std::size_t(-1)) continue;
    auto [ci, fresh] = treeCache.try_emplace({chosen, downLinks.empty()});
    if (fresh) {
      if (downLinks.empty()) {
        walkTree(plan.multicasts[chosen], plan.shape, downLinks, ci->second);
      } else {
        TreeRepair rep =
            repairMulticastTree(plan.multicasts[chosen], plan.shape, downLinks);
        walkTree(rep.repaired, plan.shape, downLinks, ci->second);
        if (!rep.ok()) {
          ci->second.stalled = true;
          ci->second.stallDetail =
              "pattern " + std::to_string(plan.multicasts[chosen].patternId) +
              " fan-out cannot reach " +
              std::to_string(rep.stalledDests.size()) +
              " destination(s) under the declared down links";
        }
      }
    }
    r = ci->second;
    // A delivered destination the (repaired) walk never reached stalls the
    // write even when the repair pass itself reported success.
    for (const net::ClientAddr& d : delivered[wi])
      if (!r.pathTo.count(d.node) && !r.stalled) {
        r.stalled = true;
        r.stallDetail = "tree from node " + std::to_string(w.srcNode) +
                        " never reaches node " + std::to_string(d.node);
      }
  }
  return routes;
}

/// Head latency of a routed path, hop by hop. Dimension-ordered minimal
/// routing traverses each dimension contiguously, so every hop after the
/// first of its segment continues straight through (same dim and sign) and
/// pays the calibrated transit aggregate — 76 ns/hop X, 54 ns/hop Y/Z at
/// defaults, the published per-hop numbers — while each segment-start hop
/// crosses the on-chip ring to a different adapter. The per-dimension
/// interior/start hop split is invariant under the adaptive-routing
/// dimension permutations (each priced dimension keeps |delta|-1 interior
/// hops and one start), so pricing the traced route is sound for salted
/// packets too; only the turn costs vary, and those are priced exactly when
/// the route is deterministic (`exactTurns`: in-order packets and multicast
/// forwarding tables) and at the ring minimum otherwise.
double routeCrossingNs(const std::vector<Link>& path, bool exactTurns,
                       const net::LatencyConfig& lat) {
  double ns = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Link& h = path[i];
    double onChip;
    if (i > 0 && path[i - 1].dim == h.dim && path[i - 1].sign == h.sign) {
      onChip = lat.transitNs[std::size_t(h.dim)];
    } else if (i == 0 || !exactTurns) {
      // Injection enters at the (unmodeled) source client's router; salted
      // routes turn between permutation-dependent adapters. Both pay at
      // least the minimal ring crossing.
      onChip = lat.minRingPathNs();
    } else {
      // Turning traffic arrives on the opposite adapter of the previous
      // hop's dimension and crosses the ring to the exit adapter — exactly
      // Machine::forwardOnLink's path cost.
      int from = lat.ring.adapterRouter[std::size_t(
          net::RingLayout::adapterIndex(path[i - 1].dim, -path[i - 1].sign))];
      int to = lat.ring.adapterRouter[std::size_t(
          net::RingLayout::adapterIndex(h.dim, h.sign))];
      onChip = lat.ringPathNs(from, to);
    }
    ns += onChip + 2.0 * lat.adapterNs + lat.wireNs[std::size_t(h.dim)];
  }
  return ns;
}

/// Result of one longest-path relaxation over the unrolled event graph.
struct BoundResult {
  std::vector<double> dist;
  std::vector<int> pred;
  double maxNs = 0.0;
  int argmax = -1;
  bool cyclic = false;
};

BoundResult longestPath(
    const EventGraph& graph,
    const std::unordered_map<std::uint64_t, double>& slotWeight) {
  const int V = graph.numVertices();
  BoundResult r;
  r.dist.assign(std::size_t(V), 0.0);
  r.pred.assign(std::size_t(V), -1);

  auto weightOf = [&](int u, int v) {
    auto it = slotWeight.find((std::uint64_t(std::uint32_t(graph.slotOf(u)))
                               << 32) |
                              std::uint32_t(graph.slotOf(v)));
    return it == slotWeight.end() ? 0.0 : it->second;
  };

  std::vector<int> indeg(std::size_t(V), 0);
  for (int u = 0; u < V; ++u)
    for (const int* pv = graph.succBegin(u); pv != graph.succEnd(u); ++pv)
      ++indeg[std::size_t(*pv)];
  std::deque<int> q;
  for (int v = 0; v < V; ++v)
    if (indeg[std::size_t(v)] == 0) q.push_back(v);
  int processed = 0;
  while (!q.empty()) {
    int u = q.front();
    q.pop_front();
    ++processed;
    for (const int* pv = graph.succBegin(u); pv != graph.succEnd(u); ++pv) {
      int v = *pv;
      double cand = r.dist[std::size_t(u)] + weightOf(u, v);
      if (cand > r.dist[std::size_t(v)] + kEps) {
        r.dist[std::size_t(v)] = cand;
        r.pred[std::size_t(v)] = u;
      }
      if (--indeg[std::size_t(v)] == 0) q.push_back(v);
    }
  }
  if (processed != V) {
    r.cyclic = true;
    return r;
  }
  for (int v = 0; v < V; ++v)
    if (r.dist[std::size_t(v)] > r.maxNs) {
      r.maxNs = r.dist[std::size_t(v)];
      r.argmax = v;
    }
  return r;
}

/// Delivery-edge weights keyed by (send slot << 32 | wait slot): the static
/// minimum between issuing the counted write and completing the wait it
/// satisfies. Every other happens-before edge is free (conservative).
struct PricedPlan {
  std::unordered_map<std::uint64_t, double> slotWeight;
  bool stalled = false;
  std::string stallDetail;
};

PricedPlan priceDeliveries(
    const CommPlan& plan, const EventGraph& graph,
    const std::vector<std::vector<net::ClientAddr>>& delivered,
    const std::vector<WriteRoute>& routes, const net::LatencyConfig& lat) {
  PricedPlan out;
  // Wait slots by (node, client, counter).
  std::map<std::tuple<int, int, int>, std::vector<std::size_t>> waits;
  for (std::size_t ei = 0; ei < plan.expectations.size(); ++ei) {
    if (graph.waitSlot(ei) < 0) continue;
    const CounterExpectation& e = plan.expectations[ei];
    waits[{e.client.node, e.client.client, e.counterId}].push_back(ei);
  }
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    int sendSlot = graph.sendSlot(wi);
    if (sendSlot < 0 || w.counterId == net::kNoCounter) continue;
    std::size_t wire = plannedWireBytes(w);
    for (const net::ClientAddr& d : delivered[wi]) {
      auto it = waits.find({d.node, d.client, w.counterId});
      if (it == waits.end()) continue;
      auto path = routes[wi].pathTo.find(d.node);
      if (path == routes[wi].pathTo.end()) {
        if (routes[wi].stalled && out.stallDetail.empty()) {
          out.stalled = true;
          out.stallDetail = routes[wi].stallDetail + " (write in phase '" +
                            w.phase + "', ctr " + std::to_string(w.counterId) +
                            ")";
        }
        continue;
      }
      double routeNs = routeCrossingNs(
          path->second, w.pattern != net::kNoMulticast || w.inOrder, lat);
      double spacing = lat.minPacketSpacingNs(wire, !path->second.empty());
      // Wormhole switching: the head proceeds after the wire delay and the
      // tail lags by the payload serialization, charged once (the live
      // machine's tailLag). Header-only packets have no tail.
      double tailNs = !path->second.empty() && wire > net::kHeaderBytes
                          ? lat.linkSerializationNs(wire - net::kHeaderBytes)
                          : 0.0;
      double edge = lat.assemblyNs + double(w.packets - 1) * spacing +
                    routeNs + tailNs + lat.minDeliveryNs();
      for (std::size_t ei : it->second) {
        std::uint64_t key =
            (std::uint64_t(std::uint32_t(sendSlot)) << 32) |
            std::uint32_t(graph.waitSlot(ei));
        auto [wit, fresh] = out.slotWeight.try_emplace(key, edge);
        if (!fresh) wit->second = std::max(wit->second, edge);
      }
    }
    if (routes[wi].stalled && !out.stalled) {
      out.stalled = true;
      out.stallDetail = routes[wi].stallDetail + " (write in phase '" +
                        w.phase + "', ctr " + std::to_string(w.counterId) + ")";
    }
  }
  return out;
}

}  // namespace

std::size_t plannedWireBytes(const PlannedWrite& w) {
  return net::kHeaderBytes +
         (w.bytes <= net::kImmediateBytes ? 0 : std::size_t(w.bytes));
}

TimingReport analyzeTiming(const CommPlan& plan, const TimingOptions& opts,
                           const net::LatencyConfig& lat) {
  TimingReport rep;
  rep.plan = plan.name;
  rep.rounds = std::max(opts.rounds, 1);

  std::vector<std::vector<net::ClientAddr>> delivered = deliveredTargets(plan);
  EventGraph graph(plan, rep.rounds, delivered);
  rep.eventsModeled = graph.numVertices();

  auto addViolation = [&rep](const std::string& check, const std::string& site,
                             const std::string& detail, int node) {
    Violation v;
    v.check = check;
    v.severity = Severity::kError;
    v.site = site;
    v.detail = detail;
    v.node = node;
    rep.violations.push_back(std::move(v));
  };

  if (!graph.findCycle().empty()) {
    // No finite bound exists; the cycle itself is event.deadlock's finding.
    addViolation("timing.cycle", plan.name,
                 "happens-before event graph is cyclic: no finite latency "
                 "bound exists (see event.deadlock for the cycle)",
                 -1);
    return rep;
  }

  // --- healthy pricing and critical path ----------------------------------
  std::vector<WriteRoute> routes = routeWrites(plan, delivered, {});
  PricedPlan priced = priceDeliveries(plan, graph, delivered, routes, lat);
  BoundResult healthy = longestPath(graph, priced.slotWeight);
  rep.criticalPathNs = healthy.maxNs;

  if (rep.rounds > 1) {
    EventGraph prev(plan, rep.rounds - 1, delivered);
    BoundResult prevBound = longestPath(prev, priced.slotWeight);
    rep.perRoundNs = healthy.maxNs - prevBound.maxNs;
  } else {
    rep.perRoundNs = healthy.maxNs;
  }

  // Bottleneck path, earliest event first.
  if (healthy.argmax >= 0) {
    std::vector<int> chain;
    for (int v = healthy.argmax; v >= 0; v = healthy.pred[std::size_t(v)])
      chain.push_back(v);
    std::reverse(chain.begin(), chain.end());
    std::size_t keep = std::min(chain.size(), std::size_t(opts.maxPathEvents));
    std::size_t first = chain.size() - keep;  // keep the completion tail
    for (std::size_t i = first; i < chain.size(); ++i) {
      PathStep step;
      step.event = graph.describe(chain[i]);
      step.arrivalNs = healthy.dist[std::size_t(chain[i])];
      step.edgeNs =
          i == 0 ? step.arrivalNs
                 : step.arrivalNs - healthy.dist[std::size_t(chain[i - 1])];
      rep.bottleneckPath.push_back(std::move(step));
    }
  }

  // --- per-link x per-phase occupancy and contention ------------------------
  struct Cell {
    std::uint64_t packets = 0;
    double occupancyNs = 0.0;
    double consumerNs = 0.0;  ///< latest consuming-wait completion (round 0)
  };
  std::map<std::pair<Link, int>, Cell> cells;
  std::map<Link, double> linkDemand;
  // Consumer completion per write: the latest delivery-target wait label of
  // a round-0 send (next-round waits land in round 1 and still count).
  std::vector<double> writeConsumerNs(plan.writes.size(), 0.0);
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    int sendSlot = graph.sendSlot(wi);
    if (sendSlot < 0 || w.counterId == net::kNoCounter) continue;
    int u0 = graph.vertex(sendSlot, 0);
    for (const int* pv = graph.succBegin(u0); pv != graph.succEnd(u0); ++pv) {
      const Event& ev = graph.event(graph.slotOf(*pv));
      if (ev.kind != EventKind::kWait) continue;
      std::uint64_t key = (std::uint64_t(std::uint32_t(sendSlot)) << 32) |
                          std::uint32_t(graph.slotOf(*pv));
      if (!priced.slotWeight.count(key)) continue;
      writeConsumerNs[wi] =
          std::max(writeConsumerNs[wi], healthy.dist[std::size_t(*pv)]);
    }
  }
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    if (graph.sendSlot(wi) < 0) continue;
    int phase = plan.phaseIndex(w.phase);
    double serNs = lat.linkSerializationNs(plannedWireBytes(w));
    for (const Link& l : routes[wi].occupied) {
      Cell& c = cells[{l, phase}];
      c.packets += w.packets;
      c.occupancyNs += double(w.packets) * serNs;
      c.consumerNs = std::max(c.consumerNs, writeConsumerNs[wi]);
      linkDemand[l] += double(w.packets) * serNs;
    }
  }
  rep.linksUsed = int(linkDemand.size());
  for (const auto& [l, demand] : linkDemand)
    rep.maxLinkDemandNs = std::max(rep.maxLinkDemandNs, demand);

  std::vector<LinkLoad> loads;
  for (const auto& [key, c] : cells) {
    const auto& [l, phase] = key;
    LinkLoad load;
    load.node = l.node;
    load.dim = l.dim;
    load.sign = l.sign;
    load.phase = phase >= 0 && phase < int(plan.phases.size())
                     ? plan.phases[std::size_t(phase)]
                     : "?";
    load.packets = c.packets;
    load.occupancyNs = c.occupancyNs;
    // The serialization window: from the earliest the phase can start
    // (entry anchor, round 0) to the latest completion of a wait consuming
    // this traffic. Cells with no counted consumer (pure FIFO lanes) have
    // no static completion event and report no utilization.
    double start = std::numeric_limits<double>::infinity();
    if (phase >= 0)
      for (int n = 0; n < plan.shape.size(); ++n) {
        int slot = graph.entrySlot(n, phase);
        if (slot >= 0)
          start = std::min(start,
                           healthy.dist[std::size_t(graph.vertex(slot, 0))]);
      }
    if (c.consumerNs > 0.0 && start < c.consumerNs) {
      load.windowNs = c.consumerNs - start;
      load.utilization = load.occupancyNs / load.windowNs;
    }
    // Contention is judged against the whole round's critical-path budget:
    // cross-write queuing is deliberately unpriced in the per-chain labels
    // (utilization above 1 is a reported bandwidth-bound hotspot, not an
    // error), but one phase offering a link more serialization than the
    // entire round claims to take is infeasible under any schedule — the
    // claimed steady-state rate cannot exist. Plans without round-wrap
    // edges claim no steady state (perRoundNs == 0) and are exempt.
    if (rep.perRoundNs > kEps && load.occupancyNs > rep.perRoundNs + kEps) {
      addViolation(
          "timing.contention", load.phase,
          "link " + linkLabel({l.node, l.dim, l.sign}) + " is offered " +
              ns1(load.occupancyNs) + " ns of wire serialization (" +
              std::to_string(load.packets) + " packets/round) in phase '" +
              load.phase + "' alone, but the whole round's critical-path "
              "budget is " +
              ns1(rep.perRoundNs) +
              " ns: the link cannot serialize the offered occupancy inside "
              "the claimed round and is the binding resource",
          l.node);
    }
    loads.push_back(std::move(load));
  }
  std::stable_sort(loads.begin(), loads.end(),
                   [](const LinkLoad& a, const LinkLoad& b) {
                     if (a.occupancyNs != b.occupancyNs)
                       return a.occupancyNs > b.occupancyNs;
                     return std::tie(a.node, a.dim, a.sign, a.phase) <
                            std::tie(b.node, b.dim, b.sign, b.phase);
                   });
  if (int(loads.size()) > opts.maxHotspots) loads.resize(std::size_t(opts.maxHotspots));
  rep.hotspots = std::move(loads);

  // --- degraded re-pricing ---------------------------------------------------
  if (!opts.downLinks.empty()) {
    rep.degradedAnalyzed = true;
    std::vector<WriteRoute> degRoutes =
        routeWrites(plan, delivered, opts.downLinks);
    PricedPlan degPriced =
        priceDeliveries(plan, graph, delivered, degRoutes, lat);
    if (degPriced.stalled) {
      rep.degradedStalled = true;
      addViolation("timing.stalled", plan.name,
                   "degraded delivery has no finite bound: " +
                       degPriced.stallDetail,
                   -1);
    } else {
      BoundResult degraded = longestPath(graph, degPriced.slotWeight);
      rep.degradedCriticalPathNs = degraded.maxNs;
      if (rep.criticalPathNs > kEps)
        rep.inflation = degraded.maxNs / rep.criticalPathNs;
      if (rep.inflation > opts.degradedBlowupFactor + kEps) {
        // Name the dominant degraded edge so the diagnostic is actionable.
        std::string dominant = "?";
        double dominantNs = 0.0;
        for (int v = degraded.argmax; v >= 0;
             v = degraded.pred[std::size_t(v)]) {
          int u = degraded.pred[std::size_t(v)];
          if (u < 0) break;
          double edge = degraded.dist[std::size_t(v)] -
                        degraded.dist[std::size_t(u)];
          if (edge > dominantNs) {
            dominantNs = edge;
            dominant = graph.describe(u) + "  ==>  " + graph.describe(v);
          }
        }
        std::string cuts;
        for (const DownLink& d : opts.downLinks) {
          if (!cuts.empty()) cuts += ", ";
          cuts += linkLabel({d.node, d.dim, d.sign});
        }
        addViolation(
            "timing.degraded-blowup", plan.name,
            "critical path inflates from " + ns1(rep.criticalPathNs) +
                " ns to " + ns1(degraded.maxNs) + " ns (x" +
                ns1(rep.inflation) + ", allowed x" +
                ns1(opts.degradedBlowupFactor) + ") with " + cuts +
                " down; dominant rerouted edge: " + dominant + " (" +
                ns1(dominantNs) + " ns)",
            opts.downLinks.front().node);
      }
    }
  }
  return rep;
}

}  // namespace anton::verify
