// The static checks over a CommPlan (ISSUE 3 tentpole, deepened by ISSUE 4).
//
//   1. count consistency   — per sync counter, the packets the plan delivers
//                            equal the expected per-round increment, and the
//                            per-source breakdown matches when declared.
//   2. multicast           — trees are acyclic, dimension-ordered, reach
//                            exactly their declared destination set, and the
//                            plan fits the 256-patterns-per-node tables.
//                            Under declared down links the expansion is
//                            re-run degraded: lost destinations are repaired
//                            with rerouted unicast trees where possible and
//                            flagged as stalls where not.
//   3. buffer-reuse safety — a happens-before argument over the plan's
//                            event-granular graph (verify/events.hpp) that
//                            no writer can touch a receive buffer before the
//                            counter fire that frees it (SC10 §IV: correct
//                            reuse without barriers). Event granularity
//                            models intra-phase send/wait order, so a
//                            single-buffered all-reduce variant or a parity
//                            bug is caught even when phase order looks fine.
//   4. deadlock freedom    — every unicast route, including degraded-mode
//                            reroutes around down links, stays
//                            dimension-ordered; stalls are reported.
//   5. recovery coverage   — counted-wait sites with no
//                            RecoverableCountedWrite armed become lints.
//   6. static deadlock     — a cycle in the happens-before event graph
//                            (wait-before-send loops and friends) is
//                            reported with the full cycle in the diagnostic.
//
// Structural problems (1-4, 6) are errors; coverage gaps and informational
// reroute audits are lints. verifyPlan never touches a live Machine.
#pragma once

#include <string>
#include <vector>

#include "verify/plan.hpp"

namespace anton::verify {

enum class Severity { kError, kLint };

const char* severityName(Severity s);

/// One finding. `check` is a stable machine-readable id:
///   "count", "count.by-source", "count.unwaited", "count.unknown-pattern",
///   "multicast.cycle", "multicast.empty-entry", "multicast.dead-entry",
///   "multicast.dests", "multicast.pattern-limit", "multicast.conflict",
///   "multicast.dim-order", "multicast.degraded", "multicast.stalled",
///   "buffer-reuse", "buffer-reuse.bad-phase", "event.deadlock",
///   "route.dim-order", "route.stalled", "route.degraded",
///   "recovery-coverage".
struct Violation {
  std::string check;
  Severity severity = Severity::kError;
  std::string site;    ///< expectation site / buffer / pattern label
  std::string detail;  ///< human-readable explanation
  int node = -1;       ///< representative node, -1 when aggregated/global
  int counterId = -1;
  int patternId = -1;
  int count = 1;  ///< identical findings coalesced into this record
};

struct VerifyOptions {
  /// Links assumed down while tracing unicast routes (check 4) and expanding
  /// multicast trees degraded (check 2). Empty means verify the healthy
  /// machine. (DownLink itself lives in verify/plan.hpp.)
  std::vector<DownLink> downLinks;
  /// Whether route-order problems (non-dimension-ordered degraded routes,
  /// stalled packets) are errors or informational lints.
  bool routeIssuesAreErrors = true;
  /// Cap on distinct buffers fully traced by the reachability engine; plans
  /// above the cap are sampled evenly and the result marked `sampled`.
  int maxBufferOwners = 96;
};

struct VerifyResult {
  std::vector<Violation> violations;  ///< Severity::kError findings
  std::vector<Violation> lints;       ///< Severity::kLint findings
  int buffersTotal = 0;
  int buffersChecked = 0;
  bool sampled = false;  ///< buffer check ran on a sample, not every owner
  int routesTraced = 0;
  /// Ordered operations the happens-before graph modeled (per round).
  int eventsModeled = 0;
  /// Multicast trees that lost destinations under the declared down links
  /// but could be repaired with rerouted unicast paths / could not.
  int multicastsRepaired = 0;
  int multicastsStalled = 0;

  bool ok() const { return violations.empty(); }
};

/// Static route trace mirroring Machine::routeFrom with the identity
/// dimension order (the deterministic order in-order resends use).
struct RouteTrace {
  std::vector<int> nodes;  ///< src first, dst last
  std::vector<int> dims;   ///< dimension taken at each hop
  bool dimOrdered = true;  ///< no dimension resumed after another intervened
  bool degraded = false;   ///< at least one hop avoided a down link
  bool stalled = false;    ///< every usable dimension was down at some hop
};

RouteTrace traceUnicastRoute(int srcNode, int dstNode,
                             const util::TorusShape& shape,
                             const std::vector<DownLink>& downLinks);

/// Outcome of rebuilding a multicast tree around declared down links: every
/// declared destination is re-covered by the merged degraded unicast routes
/// from the source (the same first-healthy-dimension policy recovery resends
/// use). `ok()` means the repaired forwarding tables deliver the full
/// destination set; `stalledDests` lists destinations no degraded route can
/// reach at all — the fan-out stalls for the outage, exactly like the live
/// machine today.
struct TreeRepair {
  MulticastPlanEntry repaired;
  std::vector<net::ClientAddr> lostDests;     ///< lost before repair
  std::vector<net::ClientAddr> stalledDests;  ///< unreachable even degraded
  int reroutedDests = 0;           ///< lost destinations re-covered
  int nonDimOrderedRoutes = 0;     ///< repair paths breaking dimension order
  bool ok() const { return stalledDests.empty(); }
};

TreeRepair repairMulticastTree(const MulticastPlanEntry& entry,
                               const util::TorusShape& shape,
                               const std::vector<DownLink>& downLinks);

VerifyResult verifyPlan(const CommPlan& plan, const VerifyOptions& opts = {});

}  // namespace anton::verify
