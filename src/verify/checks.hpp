// The five static checks over a CommPlan (ISSUE 3 tentpole).
//
//   1. count consistency   — per sync counter, the packets the plan delivers
//                            equal the expected per-round increment, and the
//                            per-source breakdown matches when declared.
//   2. multicast           — trees are acyclic, dimension-ordered, reach
//                            exactly their declared destination set, and the
//                            plan fits the 256-patterns-per-node tables.
//   3. buffer-reuse safety — a concrete dataflow-reachability argument that
//                            no writer can touch a receive buffer before the
//                            counter fire that frees it (SC10 §IV: correct
//                            reuse without barriers).
//   4. deadlock freedom    — every unicast route, including degraded-mode
//                            reroutes around down links, stays
//                            dimension-ordered; stalls are reported.
//   5. recovery coverage   — counted-wait sites with no
//                            RecoverableCountedWrite armed become lints.
//
// Structural problems (1-4) are errors; coverage gaps and informational
// reroute audits are lints. verifyPlan never touches a live Machine.
#pragma once

#include <string>
#include <vector>

#include "verify/plan.hpp"

namespace anton::verify {

enum class Severity { kError, kLint };

const char* severityName(Severity s);

/// One finding. `check` is a stable machine-readable id:
///   "count", "count.by-source", "count.unwaited", "count.unknown-pattern",
///   "multicast.cycle", "multicast.empty-entry", "multicast.dead-entry",
///   "multicast.dests", "multicast.pattern-limit", "multicast.conflict",
///   "multicast.dim-order", "buffer-reuse", "buffer-reuse.bad-phase",
///   "route.dim-order", "route.stalled", "route.degraded",
///   "recovery-coverage".
struct Violation {
  std::string check;
  Severity severity = Severity::kError;
  std::string site;    ///< expectation site / buffer / pattern label
  std::string detail;  ///< human-readable explanation
  int node = -1;       ///< representative node, -1 when aggregated/global
  int counterId = -1;
  int patternId = -1;
  int count = 1;  ///< identical findings coalesced into this record
};

/// A torus link taken out of service for route tracing (degraded mode).
struct DownLink {
  int node = 0;
  int dim = 0;
  int sign = +1;
  friend constexpr bool operator==(const DownLink&, const DownLink&) = default;
};

struct VerifyOptions {
  /// Links assumed down while tracing unicast routes (check 4). Empty means
  /// verify the healthy machine.
  std::vector<DownLink> downLinks;
  /// Whether route-order problems (non-dimension-ordered degraded routes,
  /// stalled packets) are errors or informational lints.
  bool routeIssuesAreErrors = true;
  /// Cap on distinct buffers fully traced by the reachability engine; plans
  /// above the cap are sampled evenly and the result marked `sampled`.
  int maxBufferOwners = 96;
};

struct VerifyResult {
  std::vector<Violation> violations;  ///< Severity::kError findings
  std::vector<Violation> lints;       ///< Severity::kLint findings
  int buffersTotal = 0;
  int buffersChecked = 0;
  bool sampled = false;  ///< buffer check ran on a sample, not every owner
  int routesTraced = 0;

  bool ok() const { return violations.empty(); }
};

/// Static route trace mirroring Machine::routeFrom with the identity
/// dimension order (the deterministic order in-order resends use).
struct RouteTrace {
  std::vector<int> nodes;  ///< src first, dst last
  std::vector<int> dims;   ///< dimension taken at each hop
  bool dimOrdered = true;  ///< no dimension resumed after another intervened
  bool degraded = false;   ///< at least one hop avoided a down link
  bool stalled = false;    ///< every usable dimension was down at some hop
};

RouteTrace traceUnicastRoute(int srcNode, int dstNode,
                             const util::TorusShape& shape,
                             const std::vector<DownLink>& downLinks);

VerifyResult verifyPlan(const CommPlan& plan, const VerifyOptions& opts = {});

}  // namespace anton::verify
