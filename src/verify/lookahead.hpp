// Static parallel-safety analysis: lookahead and shard-conflict proofs
// (DESIGN.md §11).
//
// The ROADMAP's parallel event kernel is a conservative PDES: shards
// exchange timestamped events and each shard may safely execute up to
// T + lookahead, where lookahead is the minimum latency of any message that
// can still arrive from another shard. The torus makes that bound *static*:
// every packet crossing from shard A to shard B pays at least the cheapest
// link-crossing latency on the A/B boundary (net::LatencyConfig::
// minLinkCrossingNs). This analyzer proves, per CommPlan and sharding,
// which of the plan's happens-before edges cross shards and that each one
// carries at least the shard pair's claimed lookahead — before a single
// thread exists. Its report (VERIFY_lookahead.json) is the safety contract
// the future parallel-kernel PR consumes.
//
// Diagnostics (Violation::check):
//   "lookahead.zero"     — a cross-shard happens-before edge with zero
//                          static latency (a node's clients split across
//                          shards): the pair's lookahead is 0 and the
//                          conservative kernel serializes on every event.
//   "lookahead.slack"    — an edge whose static minimum latency is below
//                          the shard pair's claimed lookahead bound: an
//                          optimistic kernel trusting the claim would have
//                          to roll back, a conservative one would race.
//   "lookahead.deadlock" — a cycle of shards connected by zero-lookahead
//                          boundaries: null messages cannot advance any
//                          clock on the cycle, so the kernel deadlocks.
//
// The dynamic side: checkCausalLog() replays a sim::CausalLog recorded by
// the serial kernel and asserts every observed cross-shard link edge
// respects the same bound ("oracle.lookahead" on violation).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "sim/causal_log.hpp"
#include "util/torus_coord.hpp"
#include "verify/checks.hpp"
#include "verify/plan.hpp"

namespace anton::verify {

/// A sharding of the machine for the parallel kernel: every client maps to
/// one shard. The shipped shardings are client-uniform per node; the seeded
/// unsafe ones deliberately are not.
struct Sharding {
  std::string name;
  int numShards = 1;
  std::function<int(net::ClientAddr)> shardOf;  ///< result in [0, numShards)
  /// Lookahead the kernel claims for every shard pair, in ns; negative
  /// derives the bound from topology + latency minima (the safe default).
  double claimedLookaheadNs = -1.0;

  int shardOfNode(int node) const { return shardOf({node, 0}); }
};

/// One shard per node: the finest torus sharding (maximum parallelism,
/// smallest lookahead = one link crossing).
Sharding perNodeSharding(const util::TorusShape& shape);

/// One shard per x-slab (yz-plane): coarser shards whose boundaries are
/// exclusively x-links.
Sharding slabSharding(const util::TorusShape& shape);

/// Seeded-unsafe: the slices of every node land in one shard, the HTIS and
/// accumulation memories in another — same-node program order becomes a
/// zero-latency cross-shard edge, in both directions.
Sharding splitNodeSharding(const util::TorusShape& shape);

/// Seeded-unsafe: per-node shards with a claimed lookahead bound larger
/// than the boundary links actually guarantee (rollback bait).
Sharding claimedLookaheadSharding(const util::TorusShape& shape,
                                  double claimNs);

/// Cross-shard boundary statistics of one unordered shard pair.
struct ShardPairStat {
  int a = 0, b = 0;             ///< a < b
  double linkBoundNs = 0.0;     ///< min link-crossing latency on the boundary
  int boundaryLinks = 0;        ///< torus links joining the pair (0 = the
                                ///< boundary runs through a node)
  int edges = 0;                ///< happens-before edges crossing the pair
};

/// A named happens-before edge with its static latency and the bound it was
/// checked against (the tightest edge per pair, plus every violating edge).
struct CriticalEdge {
  std::string from, to;  ///< EventGraph::describe of both endpoints
  int fromShard = 0, toShard = 0;
  double latencyNs = 0.0;
  double boundNs = 0.0;
  bool violates = false;
};

/// The parallelism budget of one (plan, sharding): what the parallel kernel
/// may assume, and where the assumption is tight.
struct LookaheadReport {
  std::string plan;
  std::string sharding;
  int numShards = 0;
  /// The global conservative budget: min pair bound over every boundary
  /// that carries at least one happens-before edge (0 when any such
  /// boundary is intra-node; equal to the cheapest link crossing otherwise).
  double safeLookaheadNs = 0.0;
  /// Maximum number of distinct neighbor shards any shard exchanges
  /// happens-before edges with (the conflict-graph degree: how many peers a
  /// shard must await null messages from).
  int conflictDegree = 0;
  int crossShardEdges = 0;  ///< happens-before edges crossing shards
  int eventsModeled = 0;    ///< vertices of the unrolled event graph
  std::vector<ShardPairStat> pairs;        ///< pairs with edges, sorted
  std::vector<CriticalEdge> criticalEdges; ///< tightest edge per pair first
  std::vector<Violation> violations;       ///< lookahead.{zero,slack,deadlock}

  bool ok() const { return violations.empty(); }
};

/// Minimum link-crossing latency between every adjacent shard pair (a < b),
/// from topology alone: 0 when a node's clients span the pair, else the min
/// over boundary links of lat.minLinkCrossingNs(dim). Shared by the static
/// analyzer and the dynamic oracle checker so both enforce one bound.
std::map<std::pair<int, int>, ShardPairStat> shardPairBounds(
    const util::TorusShape& shape, const Sharding& sharding,
    const net::LatencyConfig& lat);

/// Statically prove (or refute) `sharding` over the plan's happens-before
/// event graph. `rounds` template rounds are unrolled so round-wrap edges
/// are covered (2 is enough: every edge kind appears by round 1).
LookaheadReport analyzeLookahead(const CommPlan& plan, const Sharding& sharding,
                                 const net::LatencyConfig& lat = {},
                                 int rounds = 2);

/// Outcome of replaying a causal log against the static claim.
struct OracleCheckResult {
  int recordsSeen = 0;
  int linkEdgesChecked = 0;   ///< parent->child edges across a torus link
  int crossShardEdges = 0;    ///< ...whose endpoints are on different shards
  double minObservedNs = -1.0;  ///< tightest observed cross-shard delta
  std::vector<Violation> violations;  ///< check id "oracle.lookahead"

  bool ok() const { return violations.empty(); }
};

/// Assert every observed cross-shard link edge in `log` respects the
/// sharding's claimed (or derived) lookahead bound. Only records attributed
/// at a link crossing claim the bound; inherited host attribution is
/// advisory (a known conservatism, DESIGN.md §11).
OracleCheckResult checkCausalLog(const std::vector<sim::CausalRecord>& log,
                                 const util::TorusShape& shape,
                                 const Sharding& sharding,
                                 const net::LatencyConfig& lat = {});

}  // namespace anton::verify
