#include "verify/checks.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "net/latency.hpp"
#include "verify/events.hpp"

namespace anton::verify {
namespace {

using util::TorusCoord;
using util::TorusShape;

std::string clientName(int c) {
  switch (c) {
    case net::kHtis:
      return "htis";
    case net::kAccum0:
      return "accum0";
    case net::kAccum1:
      return "accum1";
    default:
      break;
  }
  if (c >= 0 && c < net::kNumSlices) return "slice" + std::to_string(c);
  return "client" + std::to_string(c);
}

std::string addrName(const net::ClientAddr& a) {
  return "node " + std::to_string(a.node) + "/" + clientName(a.client);
}

/// (node, client, counter): identity of one sync counter instance.
using CounterKey = std::tuple<int, int, int>;

struct ExpectedCount {
  std::uint64_t total = 0;
  std::map<int, std::uint64_t> bySource;
  bool allBySource = true;  ///< every record declared a per-source breakdown
  std::string site;         ///< first site naming this counter
};

struct ActualCount {
  std::uint64_t total = 0;
  std::map<int, std::uint64_t> bySource;
};

/// Coalesce findings that differ only in the node they occurred on, so a
/// plan-wide bug yields one record (with a representative node and a tally)
/// instead of one per node.
std::vector<Violation> coalesce(const std::vector<Violation>& raw) {
  std::vector<Violation> out;
  std::map<std::tuple<std::string, std::string, int, int, int>, std::size_t>
      index;
  for (const Violation& v : raw) {
    auto key = std::make_tuple(v.check, v.site, v.counterId, v.patternId,
                               int(v.severity));
    auto [it, fresh] = index.emplace(key, out.size());
    if (fresh)
      out.push_back(v);
    else
      out[it->second].count += v.count;
  }
  return out;
}

bool dimsAreOrdered(const std::vector<int>& dims) {
  unsigned done = 0;
  int cur = -1;
  for (int d : dims) {
    if (d == cur) continue;
    if (done & (1u << d)) return false;
    if (cur >= 0) done |= 1u << cur;
    cur = d;
  }
  return true;
}

}  // namespace

const char* severityName(Severity s) {
  return s == Severity::kError ? "error" : "lint";
}

RouteTrace traceUnicastRoute(int srcNode, int dstNode, const TorusShape& shape,
                             const std::vector<DownLink>& downLinks) {
  RouteTrace tr;
  tr.nodes.push_back(srcNode);
  auto down = [&](int node, int dim, int sign) {
    return std::find(downLinks.begin(), downLinks.end(),
                     DownLink{node, dim, sign}) != downLinks.end();
  };
  TorusCoord dest = util::torusCoordOf(dstNode, shape);
  int cur = srcNode;
  // Mirrors Machine::routeFrom with the identity dimension order (the
  // deterministic order used by in-order packets and recovery resends): the
  // first healthy dimension with remaining distance wins; if every such link
  // is down the packet takes the preferred one and stalls at its adapter.
  int guard = 4 * shape.size() + 8;
  while (cur != dstNode && guard-- > 0) {
    TorusCoord here = util::torusCoordOf(cur, shape);
    int prefDim = -1, prefSign = 0;
    int useDim = -1, useSign = 0;
    for (int dim = 0; dim < 3; ++dim) {
      int delta = util::signedTorusDelta(here[dim], dest[dim],
                                         shape.extent(dim));
      if (delta == 0) continue;
      int sign = delta > 0 ? +1 : -1;
      if (prefDim < 0) {
        prefDim = dim;
        prefSign = sign;
      }
      if (down(cur, dim, sign)) continue;
      useDim = dim;
      useSign = sign;
      break;
    }
    if (prefDim < 0) break;
    if (useDim < 0) {
      useDim = prefDim;
      useSign = prefSign;
      tr.stalled = true;
    }
    if (useDim != prefDim) tr.degraded = true;
    tr.dims.push_back(useDim);
    cur = util::torusIndex(util::torusNeighbor(here, useDim, useSign, shape),
                           shape);
    tr.nodes.push_back(cur);
  }
  tr.dimOrdered = dimsAreOrdered(tr.dims);
  return tr;
}

TreeRepair repairMulticastTree(const MulticastPlanEntry& entry,
                               const TorusShape& shape,
                               const std::vector<DownLink>& downLinks) {
  TreeRepair rep;
  TreeExpansion degraded = expandTree(entry, shape, downLinks);
  std::set<std::pair<int, int>> degReached;
  for (const net::ClientAddr& a : degraded.reached)
    degReached.insert({a.node, a.client});
  for (const net::ClientAddr& d : entry.declaredDests)
    if (!degReached.count({d.node, d.client})) rep.lostDests.push_back(d);
  if (rep.lostDests.empty()) {  // every declared delivery survives the cuts
    rep.repaired = entry;
    return rep;
  }

  // Rebuild the forwarding tables from scratch as the union of degraded
  // unicast routes from the source to every declared destination — the same
  // first-healthy-dimension policy recovery resends use, so the repaired
  // tree is exactly what a resend sweep would trace.
  std::set<std::pair<int, int>> lost;
  for (const net::ClientAddr& d : rep.lostDests) lost.insert({d.node, d.client});
  MulticastPlanEntry r;
  r.patternId = entry.patternId;
  r.srcNode = entry.srcNode;
  r.declaredDests = entry.declaredDests;
  for (const net::ClientAddr& d : entry.declaredDests) {
    if (d.node < 0 || d.node >= shape.size() || d.client < 0 ||
        d.client >= net::kClientsPerNode)
      continue;  // malformed dests are check-2 findings, not repair targets
    RouteTrace tr =
        traceUnicastRoute(entry.srcNode, d.node, shape, downLinks);
    if (tr.stalled) {
      rep.stalledDests.push_back(d);
      continue;
    }
    r.entries[d.node].clientMask |= std::uint8_t(1u << d.client);
    if (!tr.dimOrdered) ++rep.nonDimOrderedRoutes;
    if (lost.count({d.node, d.client})) ++rep.reroutedDests;
    for (std::size_t i = 0; i + 1 < tr.nodes.size(); ++i) {
      int dim = tr.dims[i];
      TorusCoord a = util::torusCoordOf(tr.nodes[i], shape);
      TorusCoord b = util::torusCoordOf(tr.nodes[i + 1], shape);
      int sign =
          util::wrap(b[dim] - a[dim], shape.extent(dim)) == 1 ? +1 : -1;
      r.entries[tr.nodes[i]].linkMask |=
          std::uint8_t(1u << net::RingLayout::adapterIndex(dim, sign));
    }
  }
  rep.repaired = std::move(r);

  // Validate the merged tables: replicas follow the union of the routes, so
  // every routed destination must still be delivered under the same cuts.
  TreeExpansion check = expandTree(rep.repaired, shape, downLinks);
  std::set<std::pair<int, int>> covered;
  for (const net::ClientAddr& a : check.reached)
    covered.insert({a.node, a.client});
  std::set<std::pair<int, int>> stalled;
  for (const net::ClientAddr& d : rep.stalledDests)
    stalled.insert({d.node, d.client});
  for (const net::ClientAddr& d : entry.declaredDests)
    if (!stalled.count({d.node, d.client}) &&
        !covered.count({d.node, d.client}))
      rep.stalledDests.push_back(d);
  return rep;
}

VerifyResult verifyPlan(const CommPlan& plan, const VerifyOptions& opts) {
  VerifyResult res;
  std::vector<Violation> raw;
  auto add = [&raw](std::string check, Severity sev, std::string site,
                    std::string detail, int node = -1, int counterId = -1,
                    int patternId = -1) {
    raw.push_back({std::move(check), sev, std::move(site), std::move(detail),
                   node, counterId, patternId, 1});
  };
  Severity routeSev =
      opts.routeIssuesAreErrors ? Severity::kError : Severity::kLint;

  // ---- check 2: multicast well-formedness -------------------------------
  // A pattern id may back several trees with disjoint footprints (the
  // allocator reuses ids exactly as the 256-entry tables allow), so the
  // index maps an id to every tree declared under it.
  std::map<int, std::vector<std::size_t>> patternIndex;
  std::vector<TreeExpansion> expansions;
  expansions.reserve(plan.multicasts.size());
  std::map<std::pair<int, int>, int> nodePattern;  // (node, patternId) owner
  std::map<int, std::set<int>> patternsPerNode;
  for (std::size_t mi = 0; mi < plan.multicasts.size(); ++mi) {
    const MulticastPlanEntry& m = plan.multicasts[mi];
    std::string site = "pattern " + std::to_string(m.patternId);
    if (m.patternId < 0 || m.patternId >= net::kMulticastPatterns)
      add("multicast.pattern-limit", Severity::kError, site,
          "pattern id " + std::to_string(m.patternId) +
              " outside the " + std::to_string(net::kMulticastPatterns) +
              "-entry per-node tables",
          m.srcNode, -1, m.patternId);
    patternIndex[m.patternId].push_back(mi);
    for (const auto& [node, entry] : m.entries) {
      (void)entry;
      auto [it, fresh] = nodePattern.emplace(
          std::make_pair(node, m.patternId), int(mi));
      if (!fresh && it->second != int(mi))
        add("multicast.conflict", Severity::kError, site,
            "pattern id " + std::to_string(m.patternId) +
                " installed twice at node " + std::to_string(node) +
                " by different trees",
            node, -1, m.patternId);
      patternsPerNode[node].insert(m.patternId);
    }

    expansions.push_back(expandTree(m, plan.shape));
    const TreeExpansion& x = expansions.back();
    if (x.cycle)
      add("multicast.cycle", Severity::kError, site,
          "fan-out walk from node " + std::to_string(m.srcNode) +
              " revisits a node (cyclic tree)",
          m.srcNode, -1, m.patternId);
    if (!x.emptyEntryNodes.empty())
      add("multicast.empty-entry", Severity::kError, site,
          "replica reaches node " + std::to_string(x.emptyEntryNodes.front()) +
              " which has no table entry (" +
              std::to_string(x.emptyEntryNodes.size()) +
              " such node(s)); the hardware would drop it",
          x.emptyEntryNodes.front(), -1, m.patternId);
    if (!x.unreachedEntries.empty())
      add("multicast.dead-entry", Severity::kLint, site,
          std::to_string(x.unreachedEntries.size()) +
              " table entr(ies) (first: node " +
              std::to_string(x.unreachedEntries.front()) +
              ") are never reached by the fan-out walk",
          x.unreachedEntries.front(), -1, m.patternId);
    if (!x.dimOrdered)
      add("multicast.dim-order", routeSev, site,
          "a root-to-leaf path is not dimension-ordered (deadlock risk on "
          "the wormhole fabric)",
          m.srcNode, -1, m.patternId);

    std::set<std::pair<int, int>> reached;
    for (const net::ClientAddr& a : x.reached)
      reached.insert({a.node, a.client});
    std::set<std::pair<int, int>> declared;
    for (const net::ClientAddr& a : m.declaredDests)
      declared.insert({a.node, a.client});
    if (reached != declared) {
      std::string detail;
      for (const auto& d : declared)
        if (!reached.count(d)) {
          detail = "declared destination " +
                   addrName({d.first, d.second}) + " is never reached";
          break;
        }
      if (detail.empty())
        for (const auto& r : reached)
          if (!declared.count(r)) {
            detail = "fan-out delivers to undeclared destination " +
                     addrName({r.first, r.second});
            break;
          }
      add("multicast.dests", Severity::kError, site, detail, m.srcNode, -1,
          m.patternId);
    }

    if (!opts.downLinks.empty()) {
      // Re-run the fan-out with the declared links cut. A lost destination
      // means the live machine would stall the fan-out today; report whether
      // rerouted unicast trees (what a recovery resend sweep traces) can
      // re-cover the full destination set.
      TreeExpansion deg = expandTree(m, plan.shape, opts.downLinks);
      std::set<std::pair<int, int>> degReached;
      for (const net::ClientAddr& a : deg.reached)
        degReached.insert({a.node, a.client});
      bool lossy = !deg.cutLinks.empty();
      for (const auto& d : reached)
        if (!degReached.count(d)) lossy = true;
      if (lossy) {
        TreeRepair rep = repairMulticastTree(m, plan.shape, opts.downLinks);
        if (rep.ok()) {
          ++res.multicastsRepaired;
          std::string detail =
              "down links cut " + std::to_string(rep.lostDests.size()) +
              " of " + std::to_string(m.declaredDests.size()) +
              " destination(s) from the tree; repaired by rerouting (" +
              std::to_string(rep.reroutedDests) + " rerouted";
          if (rep.nonDimOrderedRoutes > 0)
            detail += ", " + std::to_string(rep.nonDimOrderedRoutes) +
                      " repair route(s) not dimension-ordered";
          detail += ")";
          add("multicast.degraded", Severity::kLint, site, detail, m.srcNode,
              -1, m.patternId);
        } else {
          ++res.multicastsStalled;
          add("multicast.stalled", routeSev, site,
              "down links cut " + std::to_string(rep.lostDests.size()) +
                  " destination(s) from the tree and " +
                  std::to_string(rep.stalledDests.size()) +
                  " (first: " + addrName(rep.stalledDests.front()) +
                  ") cannot be re-covered by any degraded route; the "
                  "fan-out stalls for the outage",
              m.srcNode, -1, m.patternId);
        }
      }
    }
  }
  for (const auto& [node, ids] : patternsPerNode)
    if (int(ids.size()) > net::kMulticastPatterns)
      add("multicast.pattern-limit", Severity::kError,
          "node " + std::to_string(node),
          std::to_string(ids.size()) + " patterns installed at node " +
              std::to_string(node) + " (table holds " +
              std::to_string(net::kMulticastPatterns) + ")",
          node);

  // ---- check 1: count consistency ---------------------------------------
  std::map<CounterKey, ExpectedCount> expected;
  for (const CounterExpectation& e : plan.expectations) {
    ExpectedCount& x =
        expected[{e.client.node, e.client.client, e.counterId}];
    x.total += e.perRound;
    if (x.site.empty()) x.site = e.site;
    if (e.bySource.empty()) {
      x.allBySource = false;
    } else {
      for (const auto& [src, n] : e.bySource) x.bySource[src] += n;
    }
  }

  // Delivered clients per write (unicast target or expanded fan-out), kept
  // for the buffer-reuse dependency edges below.
  std::vector<std::vector<net::ClientAddr>> delivered(plan.writes.size());
  std::map<CounterKey, ActualCount> actual;
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    if (w.pattern == net::kNoMulticast) {
      if (w.dst.node >= 0) delivered[wi].push_back(w.dst);
    } else {
      auto it = patternIndex.find(w.pattern);
      std::size_t chosen = std::size_t(-1);
      if (it != patternIndex.end()) {
        for (std::size_t c : it->second)
          if (plan.multicasts[c].srcNode == w.srcNode) {
            chosen = c;
            break;
          }
        if (chosen == std::size_t(-1) && it->second.size() == 1)
          chosen = it->second.front();
      }
      if (chosen == std::size_t(-1)) {
        add("count.unknown-pattern", Severity::kError, w.phase,
            "write in phase '" + w.phase + "' from node " +
                std::to_string(w.srcNode) + " references pattern " +
                std::to_string(w.pattern) +
                " but no declared tree has that id and source",
            w.srcNode, w.counterId, w.pattern);
        continue;
      }
      delivered[wi] = expansions[chosen].reached;
    }
    if (w.counterId == net::kNoCounter) continue;
    for (const net::ClientAddr& d : delivered[wi]) {
      ActualCount& a = actual[{d.node, d.client, w.counterId}];
      a.total += w.packets;
      a.bySource[w.srcNode] += w.packets;
    }
  }

  for (const auto& [key, exp] : expected) {
    auto [node, client, ctr] = key;
    auto it = actual.find(key);
    std::uint64_t got = it == actual.end() ? 0 : it->second.total;
    if (got != exp.total) {
      add("count", Severity::kError, exp.site,
          "counter " + std::to_string(ctr) + " at " +
              addrName({node, client}) + ": plan delivers " +
              std::to_string(got) + " packets/round, wait expects " +
              std::to_string(exp.total),
          node, ctr);
      continue;  // per-source detail would just repeat the mismatch
    }
    if (!exp.allBySource || it == actual.end()) continue;
    const auto& gotBy = it->second.bySource;
    if (gotBy == exp.bySource) continue;
    std::string detail = "counter " + std::to_string(ctr) + " at " +
                         addrName({node, client}) +
                         ": per-source breakdown disagrees";
    for (const auto& [src, n] : exp.bySource) {
      auto g = gotBy.find(src);
      std::uint64_t gn = g == gotBy.end() ? 0 : g->second;
      if (gn != n) {
        detail += " (source node " + std::to_string(src) + ": planned " +
                  std::to_string(gn) + ", expected " + std::to_string(n) + ")";
        break;
      }
    }
    add("count.by-source", Severity::kError, exp.site, detail, node, ctr);
  }
  for (const auto& [key, act] : actual) {
    if (expected.count(key)) continue;
    auto [node, client, ctr] = key;
    add("count.unwaited", Severity::kLint, "counter " + std::to_string(ctr),
        "counter " + std::to_string(ctr) + " at " + addrName({node, client}) +
            " receives " + std::to_string(act.total) +
            " packets/round but no wait site targets it",
        node, ctr);
  }

  // ---- check 5: recovery coverage ---------------------------------------
  std::map<std::string, std::pair<int, int>> siteArm;  // site -> {armed, not}
  std::map<std::string, int> siteCtr;
  for (const CounterExpectation& e : plan.expectations) {
    auto& [armed, unarmed] = siteArm[e.site];
    (e.recoveryArmed ? armed : unarmed) += 1;
    siteCtr.emplace(e.site, e.counterId);
  }
  for (const auto& [site, counts] : siteArm)
    if (counts.second > 0)
      add("recovery-coverage", Severity::kLint, site,
          std::to_string(counts.second) + " counted-wait record(s) at site '" +
              site + "' have no RecoverableCountedWrite armed; a dropped "
              "packet hangs the step",
          -1, siteCtr[site]);

  // ---- check 4: deadlock freedom of unicast routes ----------------------
  std::set<std::pair<int, int>> traced;
  for (const PlannedWrite& w : plan.writes) {
    if (w.pattern != net::kNoMulticast) continue;
    if (w.dst.node < 0 || w.dst.node == w.srcNode) continue;
    if (!traced.insert({w.srcNode, w.dst.node}).second) continue;
    RouteTrace tr =
        traceUnicastRoute(w.srcNode, w.dst.node, plan.shape, opts.downLinks);
    ++res.routesTraced;
    std::string site =
        "route " + std::to_string(w.srcNode) + "->" +
        std::to_string(w.dst.node);
    if (!tr.dimOrdered)
      add("route.dim-order", routeSev, w.phase,
          site + " (phase '" + w.phase + "') is not dimension-ordered after "
          "rerouting around down links (deadlock risk)",
          w.srcNode, w.counterId);
    if (tr.stalled)
      add("route.stalled", routeSev, w.phase,
          site + " (phase '" + w.phase + "') has a hop where every usable "
          "link is down; the packet stalls for the outage",
          w.srcNode, w.counterId);
    if (tr.degraded && tr.dimOrdered && !tr.stalled)
      add("route.degraded", Severity::kLint, w.phase,
          site + " (phase '" + w.phase + "') deviates from its preferred "
          "dimension to avoid a down link (still dimension-ordered)",
          w.srcNode, w.counterId);
  }

  // ---- checks 3 + 6: event-granular happens-before graph -----------------
  // Every phase is expanded into its ordered operations (waits, buffer
  // frees, counted sends) and the checks run over concrete reachability on
  // the unrolled graph (verify/events.hpp). Buffer reuse: the counter fire
  // that frees a copy in round r must happen-before every write into it in
  // round r + copies — the §4 no-barrier argument at the granularity where
  // the single-buffered all-reduce actually breaks. Static deadlock: a cycle
  // in the graph is a wait that transitively blocks the send that would
  // satisfy it.
  res.buffersTotal = int(plan.buffers.size());
  if (!plan.phases.empty()) {
    const int N = plan.shape.size();
    int maxCopies = 1;
    for (const BufferPlan& b : plan.buffers)
      maxCopies = std::max(maxCopies, b.copies);
    EventGraph graph(plan, maxCopies + 1, delivered);
    res.eventsModeled = graph.numSlots();

    std::vector<int> cycle = graph.findCycle();
    if (!cycle.empty()) {
      // Prefer the real operations over phase anchors in the diagnostic, but
      // fall back to anchors when the cycle is purely structural.
      std::vector<int> shown;
      for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
        EventKind k = graph.event(graph.slotOf(cycle[i])).kind;
        if (k != EventKind::kPhaseEntry && k != EventKind::kPhaseExit)
          shown.push_back(cycle[i]);
      }
      if (shown.empty())
        shown.assign(cycle.begin(), cycle.end() - 1);
      std::string detail = "happens-before cycle (" +
                           std::to_string(cycle.size() - 1) + " event(s)): ";
      const std::size_t cap = 12;
      for (std::size_t i = 0; i < shown.size() && i < cap; ++i) {
        if (i) detail += " -> ";
        detail += graph.describe(shown[i]);
      }
      if (shown.size() > cap)
        detail += " -> ... (" + std::to_string(shown.size() - cap) + " more)";
      detail += " -> (back to start); the plan can never make progress";
      add("event.deadlock", Severity::kError, "event-graph", detail,
          graph.event(graph.slotOf(cycle.front())).node);
    }

    // Which writes from (node, phase) deliver into a given client: the
    // buffer's declared writers are matched to their send events so the
    // reachability target is the actual counted send, not the whole phase.
    std::map<std::pair<int, int>, std::vector<std::size_t>> writesAt;
    for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
      int pw = plan.phaseIndex(plan.writes[wi].phase);
      if (pw >= 0) writesAt[{plan.writes[wi].srcNode, pw}].push_back(wi);
    }

    std::map<int, std::vector<char>> reachMemo;
    auto reachableFrom = [&](int src) -> const std::vector<char>& {
      auto [it, fresh] = reachMemo.emplace(src, std::vector<char>());
      if (fresh) it->second = graph.reachableFrom(src);
      return it->second;
    };

    std::size_t stride = 1;
    if (opts.maxBufferOwners > 0 &&
        plan.buffers.size() > std::size_t(opts.maxBufferOwners)) {
      stride = (plan.buffers.size() + std::size_t(opts.maxBufferOwners) - 1) /
               std::size_t(opts.maxBufferOwners);
      res.sampled = true;
    }
    for (std::size_t bi = 0; bi < plan.buffers.size(); bi += stride) {
      const BufferPlan& b = plan.buffers[bi];
      ++res.buffersChecked;
      int fs = graph.freeSlot(bi);
      if (fs < 0 || b.client.node < 0 || b.client.node >= N) {
        add("buffer-reuse.bad-phase", Severity::kError, b.name,
            "buffer '" + b.name + "' names unknown free phase '" +
                b.freePhase + "' or owner " + addrName(b.client),
            b.client.node);
        continue;
      }
      const std::vector<char>& seen =
          reachableFrom(graph.vertex(fs, 0));
      for (const BufferWriter& w : b.writers) {
        int wp = plan.phaseIndex(w.phase);
        if (wp < 0 || w.node < 0 || w.node >= N) {
          add("buffer-reuse.bad-phase", Severity::kError, b.name,
              "buffer '" + b.name + "' writer names unknown phase '" +
                  w.phase + "' or node " + std::to_string(w.node),
              w.node);
          continue;
        }
        // The writer's send events into this buffer's owner; when the phase
        // has no modeled write into the owner, fall back to the phase-entry
        // anchor (preserves the coarse argument for unmodeled writes).
        std::vector<int> targets;
        auto wit = writesAt.find({w.node, wp});
        if (wit != writesAt.end()) {
          for (std::size_t wi : wit->second) {
            bool hits = false;
            for (const net::ClientAddr& d : delivered[wi])
              if (d.node == b.client.node && d.client == b.client.client) {
                hits = true;
                break;
              }
            if (hits && graph.sendSlot(wi) >= 0)
              targets.push_back(graph.sendSlot(wi));
          }
        }
        if (targets.empty()) targets.push_back(graph.entrySlot(w.node, wp));
        for (int slot : targets) {
          int target = graph.vertex(slot, b.copies);
          if (seen[std::size_t(target)]) continue;
          add("buffer-reuse", Severity::kError, b.name,
              "buffer '" + b.name + "' at " + addrName(b.client) +
                  ": no happens-before path from the freeing counter fire "
                  "(phase '" + b.freePhase + "', round 0) to " +
                  graph.describe(target) +
                  "; the write can land before the copy is free",
              b.client.node);
          break;  // one finding per writer record
        }
      }
    }
  } else {
    res.buffersChecked = 0;
  }

  for (Violation& v : coalesce(raw)) {
    if (v.severity == Severity::kError)
      res.violations.push_back(std::move(v));
    else
      res.lints.push_back(std::move(v));
  }
  return res;
}

}  // namespace anton::verify
