#include "verify/checks.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <tuple>

namespace anton::verify {
namespace {

using util::TorusCoord;
using util::TorusShape;

std::string clientName(int c) {
  switch (c) {
    case net::kHtis:
      return "htis";
    case net::kAccum0:
      return "accum0";
    case net::kAccum1:
      return "accum1";
    default:
      break;
  }
  if (c >= 0 && c < net::kNumSlices) return "slice" + std::to_string(c);
  return "client" + std::to_string(c);
}

std::string addrName(const net::ClientAddr& a) {
  return "node " + std::to_string(a.node) + "/" + clientName(a.client);
}

/// (node, client, counter): identity of one sync counter instance.
using CounterKey = std::tuple<int, int, int>;

struct ExpectedCount {
  std::uint64_t total = 0;
  std::map<int, std::uint64_t> bySource;
  bool allBySource = true;  ///< every record declared a per-source breakdown
  std::string site;         ///< first site naming this counter
};

struct ActualCount {
  std::uint64_t total = 0;
  std::map<int, std::uint64_t> bySource;
};

/// Coalesce findings that differ only in the node they occurred on, so a
/// plan-wide bug yields one record (with a representative node and a tally)
/// instead of one per node.
std::vector<Violation> coalesce(const std::vector<Violation>& raw) {
  std::vector<Violation> out;
  std::map<std::tuple<std::string, std::string, int, int, int>, std::size_t>
      index;
  for (const Violation& v : raw) {
    auto key = std::make_tuple(v.check, v.site, v.counterId, v.patternId,
                               int(v.severity));
    auto [it, fresh] = index.emplace(key, out.size());
    if (fresh)
      out.push_back(v);
    else
      out[it->second].count += v.count;
  }
  return out;
}

bool dimsAreOrdered(const std::vector<int>& dims) {
  unsigned done = 0;
  int cur = -1;
  for (int d : dims) {
    if (d == cur) continue;
    if (done & (1u << d)) return false;
    if (cur >= 0) done |= 1u << cur;
    cur = d;
  }
  return true;
}

}  // namespace

const char* severityName(Severity s) {
  return s == Severity::kError ? "error" : "lint";
}

RouteTrace traceUnicastRoute(int srcNode, int dstNode, const TorusShape& shape,
                             const std::vector<DownLink>& downLinks) {
  RouteTrace tr;
  tr.nodes.push_back(srcNode);
  auto down = [&](int node, int dim, int sign) {
    return std::find(downLinks.begin(), downLinks.end(),
                     DownLink{node, dim, sign}) != downLinks.end();
  };
  TorusCoord dest = util::torusCoordOf(dstNode, shape);
  int cur = srcNode;
  // Mirrors Machine::routeFrom with the identity dimension order (the
  // deterministic order used by in-order packets and recovery resends): the
  // first healthy dimension with remaining distance wins; if every such link
  // is down the packet takes the preferred one and stalls at its adapter.
  int guard = 4 * shape.size() + 8;
  while (cur != dstNode && guard-- > 0) {
    TorusCoord here = util::torusCoordOf(cur, shape);
    int prefDim = -1, prefSign = 0;
    int useDim = -1, useSign = 0;
    for (int dim = 0; dim < 3; ++dim) {
      int delta = util::signedTorusDelta(here[dim], dest[dim],
                                         shape.extent(dim));
      if (delta == 0) continue;
      int sign = delta > 0 ? +1 : -1;
      if (prefDim < 0) {
        prefDim = dim;
        prefSign = sign;
      }
      if (down(cur, dim, sign)) continue;
      useDim = dim;
      useSign = sign;
      break;
    }
    if (prefDim < 0) break;
    if (useDim < 0) {
      useDim = prefDim;
      useSign = prefSign;
      tr.stalled = true;
    }
    if (useDim != prefDim) tr.degraded = true;
    tr.dims.push_back(useDim);
    cur = util::torusIndex(util::torusNeighbor(here, useDim, useSign, shape),
                           shape);
    tr.nodes.push_back(cur);
  }
  tr.dimOrdered = dimsAreOrdered(tr.dims);
  return tr;
}

VerifyResult verifyPlan(const CommPlan& plan, const VerifyOptions& opts) {
  VerifyResult res;
  std::vector<Violation> raw;
  auto add = [&raw](std::string check, Severity sev, std::string site,
                    std::string detail, int node = -1, int counterId = -1,
                    int patternId = -1) {
    raw.push_back({std::move(check), sev, std::move(site), std::move(detail),
                   node, counterId, patternId, 1});
  };
  Severity routeSev =
      opts.routeIssuesAreErrors ? Severity::kError : Severity::kLint;

  // ---- check 2: multicast well-formedness -------------------------------
  // A pattern id may back several trees with disjoint footprints (the
  // allocator reuses ids exactly as the 256-entry tables allow), so the
  // index maps an id to every tree declared under it.
  std::map<int, std::vector<std::size_t>> patternIndex;
  std::vector<TreeExpansion> expansions;
  expansions.reserve(plan.multicasts.size());
  std::map<std::pair<int, int>, int> nodePattern;  // (node, patternId) owner
  std::map<int, std::set<int>> patternsPerNode;
  for (std::size_t mi = 0; mi < plan.multicasts.size(); ++mi) {
    const MulticastPlanEntry& m = plan.multicasts[mi];
    std::string site = "pattern " + std::to_string(m.patternId);
    if (m.patternId < 0 || m.patternId >= net::kMulticastPatterns)
      add("multicast.pattern-limit", Severity::kError, site,
          "pattern id " + std::to_string(m.patternId) +
              " outside the " + std::to_string(net::kMulticastPatterns) +
              "-entry per-node tables",
          m.srcNode, -1, m.patternId);
    patternIndex[m.patternId].push_back(mi);
    for (const auto& [node, entry] : m.entries) {
      (void)entry;
      auto [it, fresh] = nodePattern.emplace(
          std::make_pair(node, m.patternId), int(mi));
      if (!fresh && it->second != int(mi))
        add("multicast.conflict", Severity::kError, site,
            "pattern id " + std::to_string(m.patternId) +
                " installed twice at node " + std::to_string(node) +
                " by different trees",
            node, -1, m.patternId);
      patternsPerNode[node].insert(m.patternId);
    }

    expansions.push_back(expandTree(m, plan.shape));
    const TreeExpansion& x = expansions.back();
    if (x.cycle)
      add("multicast.cycle", Severity::kError, site,
          "fan-out walk from node " + std::to_string(m.srcNode) +
              " revisits a node (cyclic tree)",
          m.srcNode, -1, m.patternId);
    if (!x.emptyEntryNodes.empty())
      add("multicast.empty-entry", Severity::kError, site,
          "replica reaches node " + std::to_string(x.emptyEntryNodes.front()) +
              " which has no table entry (" +
              std::to_string(x.emptyEntryNodes.size()) +
              " such node(s)); the hardware would drop it",
          x.emptyEntryNodes.front(), -1, m.patternId);
    if (!x.unreachedEntries.empty())
      add("multicast.dead-entry", Severity::kLint, site,
          std::to_string(x.unreachedEntries.size()) +
              " table entr(ies) (first: node " +
              std::to_string(x.unreachedEntries.front()) +
              ") are never reached by the fan-out walk",
          x.unreachedEntries.front(), -1, m.patternId);
    if (!x.dimOrdered)
      add("multicast.dim-order", routeSev, site,
          "a root-to-leaf path is not dimension-ordered (deadlock risk on "
          "the wormhole fabric)",
          m.srcNode, -1, m.patternId);

    std::set<std::pair<int, int>> reached;
    for (const net::ClientAddr& a : x.reached)
      reached.insert({a.node, a.client});
    std::set<std::pair<int, int>> declared;
    for (const net::ClientAddr& a : m.declaredDests)
      declared.insert({a.node, a.client});
    if (reached != declared) {
      std::string detail;
      for (const auto& d : declared)
        if (!reached.count(d)) {
          detail = "declared destination " +
                   addrName({d.first, d.second}) + " is never reached";
          break;
        }
      if (detail.empty())
        for (const auto& r : reached)
          if (!declared.count(r)) {
            detail = "fan-out delivers to undeclared destination " +
                     addrName({r.first, r.second});
            break;
          }
      add("multicast.dests", Severity::kError, site, detail, m.srcNode, -1,
          m.patternId);
    }
  }
  for (const auto& [node, ids] : patternsPerNode)
    if (int(ids.size()) > net::kMulticastPatterns)
      add("multicast.pattern-limit", Severity::kError,
          "node " + std::to_string(node),
          std::to_string(ids.size()) + " patterns installed at node " +
              std::to_string(node) + " (table holds " +
              std::to_string(net::kMulticastPatterns) + ")",
          node);

  // ---- check 1: count consistency ---------------------------------------
  std::map<CounterKey, ExpectedCount> expected;
  for (const CounterExpectation& e : plan.expectations) {
    ExpectedCount& x =
        expected[{e.client.node, e.client.client, e.counterId}];
    x.total += e.perRound;
    if (x.site.empty()) x.site = e.site;
    if (e.bySource.empty()) {
      x.allBySource = false;
    } else {
      for (const auto& [src, n] : e.bySource) x.bySource[src] += n;
    }
  }

  // Delivered clients per write (unicast target or expanded fan-out), kept
  // for the buffer-reuse dependency edges below.
  std::vector<std::vector<net::ClientAddr>> delivered(plan.writes.size());
  std::map<CounterKey, ActualCount> actual;
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    if (w.pattern == net::kNoMulticast) {
      if (w.dst.node >= 0) delivered[wi].push_back(w.dst);
    } else {
      auto it = patternIndex.find(w.pattern);
      std::size_t chosen = std::size_t(-1);
      if (it != patternIndex.end()) {
        for (std::size_t c : it->second)
          if (plan.multicasts[c].srcNode == w.srcNode) {
            chosen = c;
            break;
          }
        if (chosen == std::size_t(-1) && it->second.size() == 1)
          chosen = it->second.front();
      }
      if (chosen == std::size_t(-1)) {
        add("count.unknown-pattern", Severity::kError, w.phase,
            "write in phase '" + w.phase + "' from node " +
                std::to_string(w.srcNode) + " references pattern " +
                std::to_string(w.pattern) +
                " but no declared tree has that id and source",
            w.srcNode, w.counterId, w.pattern);
        continue;
      }
      delivered[wi] = expansions[chosen].reached;
    }
    if (w.counterId == net::kNoCounter) continue;
    for (const net::ClientAddr& d : delivered[wi]) {
      ActualCount& a = actual[{d.node, d.client, w.counterId}];
      a.total += w.packets;
      a.bySource[w.srcNode] += w.packets;
    }
  }

  for (const auto& [key, exp] : expected) {
    auto [node, client, ctr] = key;
    auto it = actual.find(key);
    std::uint64_t got = it == actual.end() ? 0 : it->second.total;
    if (got != exp.total) {
      add("count", Severity::kError, exp.site,
          "counter " + std::to_string(ctr) + " at " +
              addrName({node, client}) + ": plan delivers " +
              std::to_string(got) + " packets/round, wait expects " +
              std::to_string(exp.total),
          node, ctr);
      continue;  // per-source detail would just repeat the mismatch
    }
    if (!exp.allBySource || it == actual.end()) continue;
    const auto& gotBy = it->second.bySource;
    if (gotBy == exp.bySource) continue;
    std::string detail = "counter " + std::to_string(ctr) + " at " +
                         addrName({node, client}) +
                         ": per-source breakdown disagrees";
    for (const auto& [src, n] : exp.bySource) {
      auto g = gotBy.find(src);
      std::uint64_t gn = g == gotBy.end() ? 0 : g->second;
      if (gn != n) {
        detail += " (source node " + std::to_string(src) + ": planned " +
                  std::to_string(gn) + ", expected " + std::to_string(n) + ")";
        break;
      }
    }
    add("count.by-source", Severity::kError, exp.site, detail, node, ctr);
  }
  for (const auto& [key, act] : actual) {
    if (expected.count(key)) continue;
    auto [node, client, ctr] = key;
    add("count.unwaited", Severity::kLint, "counter " + std::to_string(ctr),
        "counter " + std::to_string(ctr) + " at " + addrName({node, client}) +
            " receives " + std::to_string(act.total) +
            " packets/round but no wait site targets it",
        node, ctr);
  }

  // ---- check 5: recovery coverage ---------------------------------------
  std::map<std::string, std::pair<int, int>> siteArm;  // site -> {armed, not}
  std::map<std::string, int> siteCtr;
  for (const CounterExpectation& e : plan.expectations) {
    auto& [armed, unarmed] = siteArm[e.site];
    (e.recoveryArmed ? armed : unarmed) += 1;
    siteCtr.emplace(e.site, e.counterId);
  }
  for (const auto& [site, counts] : siteArm)
    if (counts.second > 0)
      add("recovery-coverage", Severity::kLint, site,
          std::to_string(counts.second) + " counted-wait record(s) at site '" +
              site + "' have no RecoverableCountedWrite armed; a dropped "
              "packet hangs the step",
          -1, siteCtr[site]);

  // ---- check 4: deadlock freedom of unicast routes ----------------------
  std::set<std::pair<int, int>> traced;
  for (const PlannedWrite& w : plan.writes) {
    if (w.pattern != net::kNoMulticast) continue;
    if (w.dst.node < 0 || w.dst.node == w.srcNode) continue;
    if (!traced.insert({w.srcNode, w.dst.node}).second) continue;
    RouteTrace tr =
        traceUnicastRoute(w.srcNode, w.dst.node, plan.shape, opts.downLinks);
    ++res.routesTraced;
    std::string site =
        "route " + std::to_string(w.srcNode) + "->" +
        std::to_string(w.dst.node);
    if (!tr.dimOrdered)
      add("route.dim-order", routeSev, w.phase,
          site + " (phase '" + w.phase + "') is not dimension-ordered after "
          "rerouting around down links (deadlock risk)",
          w.srcNode, w.counterId);
    if (tr.stalled)
      add("route.stalled", routeSev, w.phase,
          site + " (phase '" + w.phase + "') has a hop where every usable "
          "link is down; the packet stalls for the outage",
          w.srcNode, w.counterId);
    if (tr.degraded && tr.dimOrdered && !tr.stalled)
      add("route.degraded", Severity::kLint, w.phase,
          site + " (phase '" + w.phase + "') deviates from its preferred "
          "dimension to avoid a down link (still dimension-ordered)",
          w.srcNode, w.counterId);
  }

  // ---- check 3: buffer-reuse safety -------------------------------------
  // Concrete reachability over vertices (node, phase, round): program-order
  // edges within a node and round, round-wrap edges from each node's sink
  // phases to its source phases, and write->wait edges from a write's
  // issuing phase to every wait site its counter satisfies. A buffer with
  // `copies` copies is reused safely iff the counter fire that frees a copy
  // (freePhase, round r) happens-before every write into it in round
  // r + copies — the §4 no-barrier argument, checked as path existence.
  res.buffersTotal = int(plan.buffers.size());
  if (!plan.buffers.empty() && !plan.phases.empty()) {
    const int P = int(plan.phases.size());
    const int N = plan.shape.size();
    int maxCopies = 1;
    for (const BufferPlan& b : plan.buffers)
      maxCopies = std::max(maxCopies, b.copies);
    const int L = maxCopies + 1;
    auto vtx = [&](int n, int p, int r) { return (n * P + p) * L + r; };
    std::vector<std::vector<int>> adj(std::size_t(N) * std::size_t(P) *
                                      std::size_t(L));

    std::vector<char> hasIn(std::size_t(P), 0), hasOut(std::size_t(P), 0);
    for (const auto& [f, t] : plan.phaseEdges) {
      if (f < 0 || f >= P || t < 0 || t >= P) continue;
      hasOut[std::size_t(f)] = 1;
      hasIn[std::size_t(t)] = 1;
      for (int n = 0; n < N; ++n)
        for (int r = 0; r < L; ++r)
          adj[std::size_t(vtx(n, f, r))].push_back(vtx(n, t, r));
    }
    for (int p = 0; p < P; ++p) {
      if (hasOut[std::size_t(p)]) continue;
      for (int q = 0; q < P; ++q) {
        if (hasIn[std::size_t(q)]) continue;
        for (int n = 0; n < N; ++n)
          for (int r = 0; r + 1 < L; ++r)
            adj[std::size_t(vtx(n, p, r))].push_back(vtx(n, q, r + 1));
      }
    }
    std::map<CounterKey, std::vector<int>> waitPhases;
    for (const CounterExpectation& e : plan.expectations) {
      int p = plan.phaseIndex(e.phase);
      if (p >= 0)
        waitPhases[{e.client.node, e.client.client, e.counterId}].push_back(p);
    }
    for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
      const PlannedWrite& w = plan.writes[wi];
      if (w.counterId == net::kNoCounter) continue;
      int pw = plan.phaseIndex(w.phase);
      if (pw < 0) continue;
      for (const net::ClientAddr& d : delivered[wi]) {
        auto it = waitPhases.find({d.node, d.client, w.counterId});
        if (it == waitPhases.end()) continue;
        for (int ep : it->second)
          for (int r = 0; r < L; ++r)
            adj[std::size_t(vtx(w.srcNode, pw, r))].push_back(
                vtx(d.node, ep, r));
      }
    }

    std::map<int, std::vector<char>> reachMemo;
    auto reachableFrom = [&](int src) -> const std::vector<char>& {
      auto [it, fresh] = reachMemo.emplace(src, std::vector<char>());
      if (!fresh) return it->second;
      std::vector<char>& seen = it->second;
      seen.assign(adj.size(), 0);
      std::deque<int> q{src};
      seen[std::size_t(src)] = 1;
      while (!q.empty()) {
        int v = q.front();
        q.pop_front();
        for (int n : adj[std::size_t(v)])
          if (!seen[std::size_t(n)]) {
            seen[std::size_t(n)] = 1;
            q.push_back(n);
          }
      }
      return seen;
    };

    std::size_t stride = 1;
    if (opts.maxBufferOwners > 0 &&
        plan.buffers.size() > std::size_t(opts.maxBufferOwners)) {
      stride = (plan.buffers.size() + std::size_t(opts.maxBufferOwners) - 1) /
               std::size_t(opts.maxBufferOwners);
      res.sampled = true;
    }
    for (std::size_t bi = 0; bi < plan.buffers.size(); bi += stride) {
      const BufferPlan& b = plan.buffers[bi];
      ++res.buffersChecked;
      int fp = plan.phaseIndex(b.freePhase);
      if (fp < 0 || b.client.node < 0 || b.client.node >= N) {
        add("buffer-reuse.bad-phase", Severity::kError, b.name,
            "buffer '" + b.name + "' names unknown free phase '" +
                b.freePhase + "' or owner " + addrName(b.client),
            b.client.node);
        continue;
      }
      const std::vector<char>& seen =
          reachableFrom(vtx(b.client.node, fp, 0));
      for (const BufferWriter& w : b.writers) {
        int wp = plan.phaseIndex(w.phase);
        if (wp < 0 || w.node < 0 || w.node >= N) {
          add("buffer-reuse.bad-phase", Severity::kError, b.name,
              "buffer '" + b.name + "' writer names unknown phase '" +
                  w.phase + "' or node " + std::to_string(w.node),
              w.node);
          continue;
        }
        if (!seen[std::size_t(vtx(w.node, wp, b.copies))])
          add("buffer-reuse", Severity::kError, b.name,
              "buffer '" + b.name + "' at " + addrName(b.client) +
                  ": no dataflow path from the freeing counter fire (phase '" +
                  b.freePhase + "') to the round+" + std::to_string(b.copies) +
                  " write in phase '" + w.phase + "' on node " +
                  std::to_string(w.node) +
                  "; the write can land before the copy is free",
              b.client.node);
      }
    }
  } else {
    res.buffersChecked = 0;
  }

  for (Violation& v : coalesce(raw)) {
    if (v.severity == Severity::kError)
      res.violations.push_back(std::move(v));
    else
      res.lints.push_back(std::move(v));
  }
  return res;
}

}  // namespace anton::verify
