// Plan snapshots and structural diffs.
//
// A CommPlan is the reviewable artifact of the paper's static-communication
// premise: everything a step will put on the wire, decided before a cycle
// runs. Snapshots serialize that artifact to canonical strict JSON so plans
// can be committed as golden files, and diffPlans() compares two plans
// *structurally* — phases and their DAG, per-counter delivery counts,
// multicast tree edges, buffer lifetimes — so a code change that silently
// alters the communication shape shows up as a reviewable delta rather than
// a behavioural surprise (`verify_plans --diff`, and the golden-plan CI
// job).
#pragma once

#include <string>
#include <vector>

#include "verify/plan.hpp"

namespace anton::verify {

/// Canonical JSON for a plan: fixed key order, records in plan order, one
/// record per line — deterministic for byte-stable golden files, and still
/// strict JSON for any parser.
std::string planToJson(const CommPlan& plan);

/// Parse a snapshot back into a plan. Throws std::runtime_error with a
/// position-annotated message on malformed JSON or missing fields.
CommPlan planFromJson(const std::string& json);

/// Stable 64-bit FNV-1a key over the canonical snapshot bytes of a plan.
/// Identical across runs and platforms: the canonical JSON is byte-stable
/// (fixed key order, integer-only numbers, classic-locale formatting) and
/// FNV-1a consumes it byte-wise, so host endianness never enters the hash.
/// This is the cache key the job server (src/serve) uses: identical
/// choreographies key identically, so they verify and simulate once.
std::uint64_t planKey(const CommPlan& plan);

/// planKey rendered as "0x" + 16 lowercase hex digits.
std::string planKeyHex(const CommPlan& plan);

/// One structural difference between two plans.
struct PlanDeltaEntry {
  std::string category;  ///< "shape", "phase", "write", "expectation",
                         ///< "multicast", "buffer"
  std::string site;      ///< the record key the difference is at
  std::string detail;    ///< human-readable description of the change
};

struct PlanDelta {
  std::vector<PlanDeltaEntry> entries;
  bool identical() const { return entries.empty(); }
};

/// Structural plan comparison. Writes are aggregated per (phase, source,
/// target, counter) and compared by total packets; expectations per (site,
/// client, counter) by per-round increment and recovery arming; multicasts
/// per (pattern, source) by forwarding-table rows and declared destination
/// set; buffers per (name, owner) by base, span, copy count, free phase and
/// writer set. Plan names are not compared — two differently-named plans
/// with the same structure are identical.
PlanDelta diffPlans(const CommPlan& a, const CommPlan& b);

}  // namespace anton::verify
