// Event-granular happens-before graph over a CommPlan (ISSUE 4 tentpole).
//
// PR 3's checks treated a phase as atomic, which is exactly one notch too
// coarse for the paper's no-barrier argument: whether a receive buffer may
// be single-buffered depends on whether the phase's counted *send* is issued
// before or after its counter *wait* — the dim-ordered all-reduce sends
// first, the FFT transform phases wait first, and the two shapes have
// opposite reuse safety. This graph expands every phase into its ordered
// operations and lets the checks reason about individual sends, waits, and
// buffer frees:
//
//   * one vertex per (event, round), where an event is a phase-entry anchor,
//     a counter wait (CounterExpectation), a buffer free (BufferPlan's
//     freePhase fire), a counted-send group (PlannedWrite), or a phase-exit
//     anchor, ordered within a (node, phase) by PlannedWrite::seq /
//     CounterExpectation::seq (waits and frees precede sends at equal seq);
//   * program-order edges along each (node, phase) chain and along the
//     plan's phase DAG;
//   * round-wrap edges from each node's sink phases to its source phases
//     (round r's end happens-before round r+1's start on the same node);
//   * delivery edges from each counted send to the counter waits it
//     satisfies. A send's counter may be waited in several phases (the FFT
//     reuses its per-dimension counters across the forward and inverse
//     passes), so a send feeds only the precedence-minimal wait phases not
//     strictly before it; when every matching wait is strictly before the
//     send, the send feeds the *next round's* wait instead.
//
// Buffer-reuse safety is then path existence from a buffer's free event in
// round 0 to each writer's send event in round `copies`, and a cycle in the
// graph is a static deadlock (a wait that transitively blocks the send that
// would satisfy it).
#pragma once

#include <string>
#include <vector>

#include "verify/plan.hpp"

namespace anton::verify {

enum class EventKind { kPhaseEntry, kWait, kFree, kSend, kPhaseExit };

struct Event {
  EventKind kind = EventKind::kPhaseEntry;
  int node = 0;
  int phase = 0;  ///< index into CommPlan::phases
  int ref = -1;   ///< index into writes / expectations / buffers, -1 anchors
};

/// Delivered destination clients of each write, mirroring the
/// count-consistency pass (checks.cpp) without re-emitting its diagnostics:
/// malformed patterns simply deliver nowhere. Shared by the lookahead and
/// timing analyzers so every happens-before walk prices the same fan-out.
std::vector<std::vector<net::ClientAddr>> deliveredTargets(
    const CommPlan& plan);

class EventGraph {
 public:
  /// `delivered[wi]` lists the destination clients of plan.writes[wi]
  /// (the unicast target, or the expanded multicast fan-out) — computed by
  /// the count-consistency pass so malformed patterns are not re-diagnosed
  /// here. `rounds` is the number of template rounds to unroll (buffer
  /// checks need maxCopies + 1).
  EventGraph(const CommPlan& plan, int rounds,
             const std::vector<std::vector<net::ClientAddr>>& delivered);

  int rounds() const { return rounds_; }
  int numSlots() const { return int(events_.size()); }
  int numVertices() const { return int(events_.size()) * rounds_; }
  const Event& event(int slot) const { return events_[std::size_t(slot)]; }

  /// Vertex id of one event slot in one round.
  int vertex(int slot, int round) const { return slot * rounds_ + round; }
  int slotOf(int vertex) const { return vertex / rounds_; }
  int roundOf(int vertex) const { return vertex % rounds_; }

  /// Event slots of the plan records; -1 when the record names an unknown
  /// phase or an out-of-shape node (reported separately by the checks).
  int sendSlot(std::size_t writeIndex) const;
  int waitSlot(std::size_t expectationIndex) const;
  int freeSlot(std::size_t bufferIndex) const;
  /// Phase-entry anchor of (node, phase); -1 when out of range.
  int entrySlot(int node, int phase) const;

  /// Happens-before successors of `vertex`, as a CSR slice (begin/end
  /// pointers into the adjacency array). The lookahead analyzer walks every
  /// edge once through this.
  const int* succBegin(int vertex) const {
    return adjEdges_.data() + adjStart_[std::size_t(vertex)];
  }
  const int* succEnd(int vertex) const {
    return adjEdges_.data() + adjStart_[std::size_t(vertex) + 1];
  }

  /// Vertices reachable from `vertex` (inclusive), as a bitmap.
  std::vector<char> reachableFrom(int vertex) const;

  /// One happens-before cycle as a vertex sequence (first == last), or
  /// empty when the graph is acyclic, i.e. statically deadlock-free.
  std::vector<int> findCycle() const;

  /// Human-readable event description, e.g.
  /// "node 3: send (ctr 200) in phase 'allreduce.x' [round 1]".
  std::string describe(int vertex) const;

 private:
  void buildSlots(const CommPlan& plan);
  void buildEdges(const CommPlan& plan,
                  const std::vector<std::vector<net::ClientAddr>>& delivered);

  const CommPlan& plan_;
  int rounds_;
  int numPhases_;
  int numNodes_;
  std::vector<Event> events_;      ///< all slots, grouped by (node, phase)
  std::vector<int> groupStart_;    ///< (node * P + phase) -> first slot
  std::vector<int> sendSlot_;      ///< write index -> slot
  std::vector<int> waitSlot_;      ///< expectation index -> slot
  std::vector<int> freeSlot_;      ///< buffer index -> slot
  // CSR adjacency over vertices.
  std::vector<int> adjStart_;
  std::vector<int> adjEdges_;
};

}  // namespace anton::verify
