// Static communication-plan model.
//
// The paper's central premise is that Anton's inter-node communication is
// statically known: multicast trees are precomputed tables, counted remote
// writes deliver pre-known packet counts against preloaded counter targets,
// and receive buffers are preallocated with their reuse justified by counter
// dataflow rather than barriers (SC10 §IV). That makes every MD phase's
// communication checkable *before a single simulated cycle runs*. This
// header defines the plan representation that the subsystems (md/, fft/,
// core/, cluster/) emit and that checks.hpp verifies.
//
// A CommPlan describes one template round (an MD superstep, an all-reduce
// call, one FFT pair, ...) executed identically by every node:
//   * phases     — the per-node program as a DAG of named phase units. Within
//                  a phase, counter waits and buffer reads precede the sends
//                  that phase issues; edges are per-node program order.
//   * writes     — counted-remote-write groups: source node, unicast target
//                  or multicast pattern, counter, packets per round.
//   * expectations — counter wait sites: client, counter, per-round target
//                  increment, optional per-source breakdown, and whether a
//                  RecoverableCountedWrite is armed on the wait.
//   * multicasts — the per-node MulticastEntry tables of each pattern a
//                  write references, with the fan-out's declared destination
//                  set (carried independently so the tree can be checked
//                  against intent).
//   * buffers    — preallocated receive regions with their copy count and
//                  the phase whose counter fire retires the previous round's
//                  contents (the §4 no-barrier reuse argument).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "util/torus_coord.hpp"

namespace anton::verify {

/// One group of counted remote writes a node issues per round.
struct PlannedWrite {
  std::string phase;                ///< issuing phase (CommPlan::phases name)
  int srcNode = 0;
  net::ClientAddr dst{-1, -1};      ///< unicast target (when no pattern)
  int pattern = net::kNoMulticast;  ///< multicast pattern id, or kNoMulticast
  int counterId = net::kNoCounter;
  std::uint64_t packets = 1;        ///< packets per round
  bool inOrder = false;
  /// True for uncounted FIFO traffic (migration records, SC10 §IV-B5): the
  /// receiver drains it after a separate counted flush write.
  bool fifo = false;
  /// Intra-phase program-order position of this send relative to the
  /// phase's counter waits (CounterExpectation::seq). Within one (node,
  /// phase), events order by ascending seq; at equal seq, waits and buffer
  /// frees precede sends. The default of 1 against the waits' default of 0
  /// encodes the common wait-read-then-send phase shape; phases whose live
  /// code sends *before* waiting (the dim-ordered all-reduce, the cluster
  /// exchange rounds, the migration flush) must say so explicitly or the
  /// event-granular checks will model an ordering the hardware never had.
  int seq = 1;
  /// Payload bytes per packet, for the timing analyzer's link-occupancy
  /// pricing. 0 means unknown: the analyzer then charges the header-only
  /// wire size (its documented conservatism, DESIGN.md §12) and the field is
  /// omitted from canonical snapshots so existing goldens stay byte-stable.
  std::uint32_t bytes = 0;
};

/// One counter wait site. Several records may target the same (client,
/// counter) — e.g. the FFT gather counter is waited once per transform —
/// and count consistency compares total planned writes against the sum of
/// the records' per-round increments.
struct CounterExpectation {
  std::string site;   ///< stable site name, e.g. "md.forces"
  std::string phase;  ///< phase containing the wait (and subsequent reads)
  net::ClientAddr client{-1, -1};
  int counterId = net::kNoCounter;
  std::uint64_t perRound = 0;  ///< counter increment this record expects
  /// Optional per-source breakdown (srcNode -> packets per round).
  std::map<int, std::uint64_t> bySource;
  /// Whether a RecoverableCountedWrite watchdog is armed on this wait; a
  /// false value is reported as a recovery-coverage lint.
  bool recoveryArmed = false;
  /// Intra-phase position of the wait (see PlannedWrite::seq): waits default
  /// to 0 so they precede the phase's sends unless the extractor says
  /// otherwise.
  int seq = 0;
};

/// The per-node table entries of one multicast pattern, as planned. Carries
/// its own tree so malformed plans can be represented without installing
/// them into a live machine.
struct MulticastPlanEntry {
  int patternId = -1;
  int srcNode = 0;
  std::map<int, net::MulticastEntry> entries;  ///< node index -> table entry
  /// The destination clients the fan-out is *supposed* to reach, computed
  /// independently of the tree (e.g. from the MD import groups).
  std::vector<net::ClientAddr> declaredDests;
};

/// A node (and issuing phase) that writes into a buffer each round.
struct BufferWriter {
  int node = 0;
  std::string phase;
};

/// One preallocated receive region on a client.
struct BufferPlan {
  std::string name;
  net::ClientAddr client{-1, -1};
  std::uint32_t base = 0;
  std::uint32_t bytes = 0;  ///< full span, including all copies
  /// Reuse distance in rounds: 1 for in-place regions, 2 for
  /// parity-double-buffered regions.
  int copies = 1;
  /// Phase whose counter wait + reads retire the previous round's contents.
  std::string freePhase;
  std::vector<BufferWriter> writers;
};

struct CommPlan {
  std::string name;
  util::TorusShape shape{1, 1, 1};
  std::vector<std::string> phases;
  /// Program-order DAG over `phases` (indices): from -> to.
  std::vector<std::pair<int, int>> phaseEdges;
  std::vector<PlannedWrite> writes;
  std::vector<CounterExpectation> expectations;
  std::vector<MulticastPlanEntry> multicasts;
  std::vector<BufferPlan> buffers;

  /// Index of a phase name, -1 when absent.
  int phaseIndex(const std::string& phase) const;
  /// Index of a phase name, appending it when absent.
  int addPhase(const std::string& phase);
  /// Add a program-order edge (phases appended when absent).
  void addPhaseEdge(const std::string& from, const std::string& to);
};

/// A torus link taken out of service for degraded-mode analysis: route
/// tracing and multicast tree expansion both honor the same declaration.
struct DownLink {
  int node = 0;
  int dim = 0;
  int sign = +1;
  friend constexpr bool operator==(const DownLink&, const DownLink&) = default;
};

/// Result of statically walking a multicast plan entry from its source.
struct TreeExpansion {
  std::vector<net::ClientAddr> reached;  ///< delivered destination clients
  std::vector<int> visited;              ///< nodes the packet replicates over
  bool cycle = false;                    ///< a link walk revisited a node
  bool dimOrdered = true;  ///< every root-to-leaf path is dimension-ordered
  /// Nodes reached by a link whose table entry is empty or missing: the
  /// replica would be dropped with a hardware error at run time.
  std::vector<int> emptyEntryNodes;
  /// Entry-table nodes the walk never reaches (dead table rows).
  std::vector<int> unreachedEntries;
  /// Tree links the walk could not take because they are declared down;
  /// the subtree behind each is lost (degraded expansion only).
  std::vector<DownLink> cutLinks;
};

TreeExpansion expandTree(const MulticastPlanEntry& entry,
                         const util::TorusShape& shape);

/// Degraded expansion: the walk stops at declared-down links, recording
/// each cut in `cutLinks`; destinations behind a cut drop out of `reached`.
TreeExpansion expandTree(const MulticastPlanEntry& entry,
                         const util::TorusShape& shape,
                         const std::vector<DownLink>& downLinks);

}  // namespace anton::verify
