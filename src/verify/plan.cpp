#include "verify/plan.hpp"

#include <algorithm>

#include "net/latency.hpp"

namespace anton::verify {

int CommPlan::phaseIndex(const std::string& phase) const {
  auto it = std::find(phases.begin(), phases.end(), phase);
  return it == phases.end() ? -1 : int(it - phases.begin());
}

int CommPlan::addPhase(const std::string& phase) {
  int idx = phaseIndex(phase);
  if (idx >= 0) return idx;
  phases.push_back(phase);
  return int(phases.size()) - 1;
}

void CommPlan::addPhaseEdge(const std::string& from, const std::string& to) {
  if (from.empty()) {  // standalone plans chain their first phase after ""
    addPhase(to);
    return;
  }
  int f = addPhase(from);
  int t = addPhase(to);
  phaseEdges.emplace_back(f, t);
}

TreeExpansion expandTree(const MulticastPlanEntry& entry,
                         const util::TorusShape& shape) {
  return expandTree(entry, shape, {});
}

TreeExpansion expandTree(const MulticastPlanEntry& entry,
                         const util::TorusShape& shape,
                         const std::vector<DownLink>& downLinks) {
  TreeExpansion out;
  std::vector<char> visited(std::size_t(shape.size()), 0);

  // Depth-first walk replicating the hardware fan-out: clientMask bits are
  // local deliveries, linkMask bits continue the walk. Each frame carries
  // the dimension-run state of its root-to-node path so dimension order can
  // be checked per path (a dimension may not be revisited after the walk
  // has moved on to another one, and a run must not reverse sign).
  struct Frame {
    int node;
    int curDim;      // dimension of the current run, -1 at the source
    int curSign;
    unsigned doneDims;  // bit d: dimension d's run is complete
  };
  std::vector<Frame> stack;
  stack.push_back({entry.srcNode, -1, 0, 0u});

  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.node < 0 || f.node >= shape.size()) {
      out.emptyEntryNodes.push_back(f.node);
      continue;
    }
    if (visited[std::size_t(f.node)]) {
      out.cycle = true;
      continue;  // the visited guard bounds malformed walks
    }
    visited[std::size_t(f.node)] = 1;
    out.visited.push_back(f.node);

    auto it = entry.entries.find(f.node);
    if (it == entry.entries.end() || it->second.empty()) {
      // A replica arrived here with no table row to route it: the hardware
      // would drop it (the machine model throws). The source itself may
      // legitimately have no entry only if the whole tree is empty.
      out.emptyEntryNodes.push_back(f.node);
      continue;
    }
    const net::MulticastEntry& e = it->second;
    for (int c = 0; c < net::kClientsPerNode; ++c)
      if (e.clientMask & (1u << c)) out.reached.push_back({f.node, c});
    for (int a = 0; a < 6; ++a) {
      if (!(e.linkMask & (1u << a))) continue;
      int dim = a / 2;
      int sign = a % 2 == 0 ? +1 : -1;
      if (std::find(downLinks.begin(), downLinks.end(),
                    DownLink{f.node, dim, sign}) != downLinks.end()) {
        // The replica cannot leave on a dead link: the whole subtree behind
        // it is lost (the fan-out has no reroute of its own).
        out.cutLinks.push_back({f.node, dim, sign});
        continue;
      }
      Frame next = f;
      if (dim != f.curDim) {
        if (f.doneDims & (1u << dim)) out.dimOrdered = false;
        if (f.curDim >= 0) next.doneDims |= 1u << f.curDim;
        next.curDim = dim;
        next.curSign = sign;
      } else if (sign != f.curSign) {
        out.dimOrdered = false;  // reversing along the run
      }
      util::TorusCoord c = util::torusCoordOf(f.node, shape);
      next.node = util::torusIndex(util::torusNeighbor(c, dim, sign, shape),
                                   shape);
      stack.push_back(next);
    }
  }

  for (const auto& [node, e] : entry.entries)
    if (node >= 0 && node < shape.size() && !visited[std::size_t(node)])
      out.unreachedEntries.push_back(node);
  std::sort(out.unreachedEntries.begin(), out.unreachedEntries.end());
  return out;
}

}  // namespace anton::verify
