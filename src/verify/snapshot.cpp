#include "verify/snapshot.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "util/json.hpp"

namespace anton::verify {
namespace {

// ---- emission (canonical JSON via the shared strict emitter) ---------------

std::string jsonString(const std::string& s) { return util::json::quoted(s); }

std::string num(std::uint64_t v) { return std::to_string(v); }
std::string num(int v) { return std::to_string(v); }
const char* boolean(bool b) { return b ? "true" : "false"; }

// ---- parsing: the shared strict-JSON reader (util/json.hpp) ---------------

using util::json::Value;

const Value& field(const Value& obj, const std::string& key) {
  return util::json::field(obj, key, "plan snapshot");
}

const Value* jsonOpt(const Value& obj, const std::string& key) {
  return util::json::optField(obj, key);
}

int jsonInt(const Value& v, const std::string& what) {
  return util::json::asInt(v, "plan snapshot: '" + what + "'");
}

std::uint64_t jsonU64(const Value& v, const std::string& what) {
  return util::json::asU64(v, "plan snapshot: '" + what + "'");
}

const std::string& jsonStr(const Value& v, const std::string& what) {
  return util::json::asString(v, "plan snapshot: '" + what + "'");
}

bool jsonBool(const Value& v, const std::string& what) {
  return util::json::asBool(v, "plan snapshot: '" + what + "'");
}

std::string clientLabel(const net::ClientAddr& a) {
  return "node " + std::to_string(a.node) + "/client " +
         std::to_string(a.client);
}

// ---- diff keys --------------------------------------------------------------

std::string writeTarget(const PlannedWrite& w) {
  if (w.pattern != net::kNoMulticast)
    return "pattern " + std::to_string(w.pattern);
  return clientLabel(w.dst);
}

struct WriteAgg {
  std::uint64_t packets = 0;
  std::uint64_t payloadBytes = 0;  ///< packets * per-packet payload
  int records = 0;
  int fifo = 0;
  int inOrder = 0;
};

struct ExpectAgg {
  std::uint64_t perRound = 0;
  int records = 0;
  int armed = 0;
};

std::string dests(const std::vector<net::ClientAddr>& v) {
  std::set<std::pair<int, int>> s;
  for (const net::ClientAddr& a : v) s.insert({a.node, a.client});
  std::string out;
  for (const auto& [n, c] : s) {
    if (!out.empty()) out += ",";
    out += std::to_string(n) + "/" + std::to_string(c);
  }
  return out;
}

}  // namespace

std::string planToJson(const CommPlan& plan) {
  std::ostringstream o;
  o << "{\n";
  o << "  \"name\": " << jsonString(plan.name) << ",\n";
  o << "  \"shape\": [" << plan.shape.nx << ", " << plan.shape.ny << ", "
    << plan.shape.nz << "],\n";

  o << "  \"phases\": [";
  for (std::size_t i = 0; i < plan.phases.size(); ++i)
    o << (i ? ", " : "") << jsonString(plan.phases[i]);
  o << "],\n";

  o << "  \"phaseEdges\": [";
  for (std::size_t i = 0; i < plan.phaseEdges.size(); ++i)
    o << (i ? ", " : "") << "[" << plan.phaseEdges[i].first << ", "
      << plan.phaseEdges[i].second << "]";
  o << "],\n";

  o << "  \"writes\": [";
  for (std::size_t i = 0; i < plan.writes.size(); ++i) {
    const PlannedWrite& w = plan.writes[i];
    o << (i ? ",\n    " : "\n    ");
    o << "{\"phase\": " << jsonString(w.phase) << ", \"srcNode\": "
      << num(w.srcNode) << ", \"dstNode\": " << num(w.dst.node)
      << ", \"dstClient\": " << num(w.dst.client) << ", \"pattern\": "
      << num(w.pattern) << ", \"counterId\": " << num(w.counterId)
      << ", \"packets\": " << num(w.packets) << ", \"inOrder\": "
      << boolean(w.inOrder) << ", \"fifo\": " << boolean(w.fifo)
      << ", \"seq\": " << num(w.seq);
    if (w.bytes != 0) o << ", \"bytes\": " << num(std::uint64_t(w.bytes));
    o << "}";
  }
  o << (plan.writes.empty() ? "],\n" : "\n  ],\n");

  o << "  \"expectations\": [";
  for (std::size_t i = 0; i < plan.expectations.size(); ++i) {
    const CounterExpectation& e = plan.expectations[i];
    o << (i ? ",\n    " : "\n    ");
    o << "{\"site\": " << jsonString(e.site) << ", \"phase\": "
      << jsonString(e.phase) << ", \"node\": " << num(e.client.node)
      << ", \"client\": " << num(e.client.client) << ", \"counterId\": "
      << num(e.counterId) << ", \"perRound\": " << num(e.perRound)
      << ", \"bySource\": {";
    bool first = true;
    for (const auto& [src, n] : e.bySource) {
      o << (first ? "" : ", ") << jsonString(std::to_string(src)) << ": "
        << num(n);
      first = false;
    }
    o << "}, \"recoveryArmed\": " << boolean(e.recoveryArmed)
      << ", \"seq\": " << num(e.seq) << "}";
  }
  o << (plan.expectations.empty() ? "],\n" : "\n  ],\n");

  o << "  \"multicasts\": [";
  for (std::size_t i = 0; i < plan.multicasts.size(); ++i) {
    const MulticastPlanEntry& m = plan.multicasts[i];
    o << (i ? ",\n    " : "\n    ");
    o << "{\"patternId\": " << num(m.patternId) << ", \"srcNode\": "
      << num(m.srcNode) << ", \"entries\": {";
    bool first = true;
    for (const auto& [node, e] : m.entries) {
      o << (first ? "" : ", ") << jsonString(std::to_string(node))
        << ": [" << num(int(e.clientMask)) << ", " << num(int(e.linkMask))
        << "]";
      first = false;
    }
    o << "}, \"declaredDests\": [";
    for (std::size_t d = 0; d < m.declaredDests.size(); ++d)
      o << (d ? ", " : "") << "[" << m.declaredDests[d].node << ", "
        << m.declaredDests[d].client << "]";
    o << "]}";
  }
  o << (plan.multicasts.empty() ? "],\n" : "\n  ],\n");

  o << "  \"buffers\": [";
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    const BufferPlan& b = plan.buffers[i];
    o << (i ? ",\n    " : "\n    ");
    o << "{\"name\": " << jsonString(b.name) << ", \"node\": "
      << num(b.client.node) << ", \"client\": " << num(b.client.client)
      << ", \"base\": " << num(std::uint64_t(b.base)) << ", \"bytes\": "
      << num(std::uint64_t(b.bytes)) << ", \"copies\": " << num(b.copies)
      << ", \"freePhase\": " << jsonString(b.freePhase) << ", \"writers\": [";
    for (std::size_t w = 0; w < b.writers.size(); ++w)
      o << (w ? ", " : "") << "[" << b.writers[w].node << ", "
        << jsonString(b.writers[w].phase) << "]";
    o << "]}";
  }
  o << (plan.buffers.empty() ? "]\n" : "\n  ]\n");

  o << "}\n";
  return o.str();
}

CommPlan planFromJson(const std::string& json) {
  Value root = util::json::parse(json, "plan snapshot");
  if (root.type != Value::kObject)
    throw std::runtime_error("plan snapshot: document is not an object");

  CommPlan plan;
  plan.name = jsonStr(field(root, "name"), "name");
  const Value& shape = field(root, "shape");
  if (shape.type != Value::kArray || shape.arr.size() != 3)
    throw std::runtime_error("plan snapshot: 'shape' is not a 3-array");
  plan.shape = {jsonInt(shape.arr[0], "shape.x"), jsonInt(shape.arr[1], "shape.y"),
                jsonInt(shape.arr[2], "shape.z")};

  for (const Value& p : field(root, "phases").arr)
    plan.phases.push_back(jsonStr(p, "phase"));
  for (const Value& e : field(root, "phaseEdges").arr) {
    if (e.type != Value::kArray || e.arr.size() != 2)
      throw std::runtime_error("plan snapshot: phase edge is not a pair");
    plan.phaseEdges.emplace_back(jsonInt(e.arr[0], "edge.from"),
                                 jsonInt(e.arr[1], "edge.to"));
  }

  for (const Value& jw : field(root, "writes").arr) {
    PlannedWrite w;
    w.phase = jsonStr(field(jw, "phase"), "write.phase");
    w.srcNode = jsonInt(field(jw, "srcNode"), "write.srcNode");
    w.dst = {jsonInt(field(jw, "dstNode"), "write.dstNode"),
             jsonInt(field(jw, "dstClient"), "write.dstClient")};
    w.pattern = jsonInt(field(jw, "pattern"), "write.pattern");
    w.counterId = jsonInt(field(jw, "counterId"), "write.counterId");
    w.packets = jsonU64(field(jw, "packets"), "write.packets");
    w.inOrder = jsonBool(field(jw, "inOrder"), "write.inOrder");
    if (const Value* f = jsonOpt(jw, "fifo"))
      w.fifo = jsonBool(*f, "write.fifo");
    if (const Value* s = jsonOpt(jw, "seq"))
      w.seq = jsonInt(*s, "write.seq");
    if (const Value* by = jsonOpt(jw, "bytes"))
      w.bytes = std::uint32_t(jsonU64(*by, "write.bytes"));
    plan.writes.push_back(std::move(w));
  }

  for (const Value& je : field(root, "expectations").arr) {
    CounterExpectation e;
    e.site = jsonStr(field(je, "site"), "expectation.site");
    e.phase = jsonStr(field(je, "phase"), "expectation.phase");
    e.client = {jsonInt(field(je, "node"), "expectation.node"),
                jsonInt(field(je, "client"), "expectation.client")};
    e.counterId = jsonInt(field(je, "counterId"), "expectation.counterId");
    e.perRound = jsonU64(field(je, "perRound"), "expectation.perRound");
    for (const auto& [src, n] : field(je, "bySource").obj)
      e.bySource[std::stoi(src)] = jsonU64(n, "expectation.bySource");
    e.recoveryArmed =
        jsonBool(field(je, "recoveryArmed"), "expectation.recoveryArmed");
    if (const Value* s = jsonOpt(je, "seq"))
      e.seq = jsonInt(*s, "expectation.seq");
    plan.expectations.push_back(std::move(e));
  }

  for (const Value& jm : field(root, "multicasts").arr) {
    MulticastPlanEntry m;
    m.patternId = jsonInt(field(jm, "patternId"), "multicast.patternId");
    m.srcNode = jsonInt(field(jm, "srcNode"), "multicast.srcNode");
    for (const auto& [node, row] : field(jm, "entries").obj) {
      if (row.type != Value::kArray || row.arr.size() != 2)
        throw std::runtime_error(
            "plan snapshot: multicast table row is not a mask pair");
      m.entries[std::stoi(node)] = {
          std::uint8_t(jsonInt(row.arr[0], "multicast.clientMask")),
          std::uint8_t(jsonInt(row.arr[1], "multicast.linkMask"))};
    }
    for (const Value& d : field(jm, "declaredDests").arr) {
      if (d.type != Value::kArray || d.arr.size() != 2)
        throw std::runtime_error("plan snapshot: dest is not a pair");
      m.declaredDests.push_back(
          {jsonInt(d.arr[0], "dest.node"), jsonInt(d.arr[1], "dest.client")});
    }
    plan.multicasts.push_back(std::move(m));
  }

  for (const Value& jb : field(root, "buffers").arr) {
    BufferPlan b;
    b.name = jsonStr(field(jb, "name"), "buffer.name");
    b.client = {jsonInt(field(jb, "node"), "buffer.node"),
                jsonInt(field(jb, "client"), "buffer.client")};
    b.base = std::uint32_t(jsonU64(field(jb, "base"), "buffer.base"));
    b.bytes = std::uint32_t(jsonU64(field(jb, "bytes"), "buffer.bytes"));
    b.copies = jsonInt(field(jb, "copies"), "buffer.copies");
    b.freePhase = jsonStr(field(jb, "freePhase"), "buffer.freePhase");
    for (const Value& w : field(jb, "writers").arr) {
      if (w.type != Value::kArray || w.arr.size() != 2)
        throw std::runtime_error("plan snapshot: writer is not a pair");
      b.writers.push_back({jsonInt(w.arr[0], "writer.node"),
                           jsonStr(w.arr[1], "writer.phase")});
    }
    plan.buffers.push_back(std::move(b));
  }
  return plan;
}

PlanDelta diffPlans(const CommPlan& a, const CommPlan& b) {
  PlanDelta delta;
  auto add = [&](std::string category, std::string site, std::string detail) {
    delta.entries.push_back(
        {std::move(category), std::move(site), std::move(detail)});
  };

  if (!(a.shape == b.shape))
    add("shape", "machine",
        a.shape.str() + " vs " + b.shape.str());

  // Phases and their DAG, compared as name sets and name-pair sets so two
  // plans that list the same program in different orders are identical.
  {
    std::set<std::string> pa(a.phases.begin(), a.phases.end());
    std::set<std::string> pb(b.phases.begin(), b.phases.end());
    for (const std::string& p : pa)
      if (!pb.count(p)) add("phase", p, "phase only in first plan");
    for (const std::string& p : pb)
      if (!pa.count(p)) add("phase", p, "phase only in second plan");
    auto edgeSet = [](const CommPlan& plan) {
      std::set<std::string> out;
      for (const auto& [f, t] : plan.phaseEdges)
        if (f >= 0 && f < int(plan.phases.size()) && t >= 0 &&
            t < int(plan.phases.size()))
          out.insert(plan.phases[std::size_t(f)] + " -> " +
                     plan.phases[std::size_t(t)]);
      return out;
    };
    std::set<std::string> ea = edgeSet(a), eb = edgeSet(b);
    for (const std::string& e : ea)
      if (!eb.count(e)) add("phase", e, "program-order edge only in first plan");
    for (const std::string& e : eb)
      if (!ea.count(e)) add("phase", e, "program-order edge only in second plan");
  }

  // Writes, aggregated per (phase, source, target, counter).
  {
    auto aggregate = [](const CommPlan& plan) {
      std::map<std::string, WriteAgg> out;
      for (const PlannedWrite& w : plan.writes) {
        std::string key = w.phase + " | node " + std::to_string(w.srcNode) +
                          " -> " + writeTarget(w) + " | ctr " +
                          std::to_string(w.counterId);
        WriteAgg& agg = out[key];
        agg.packets += w.packets;
        agg.payloadBytes += w.packets * w.bytes;
        agg.records += 1;
        agg.fifo += w.fifo ? 1 : 0;
        agg.inOrder += w.inOrder ? 1 : 0;
      }
      return out;
    };
    std::map<std::string, WriteAgg> wa = aggregate(a), wb = aggregate(b);
    for (const auto& [key, x] : wa) {
      auto it = wb.find(key);
      if (it == wb.end()) {
        add("write", key,
            "write group only in first plan (" + std::to_string(x.packets) +
                " packets/round)");
        continue;
      }
      const WriteAgg& y = it->second;
      if (x.packets != y.packets)
        add("write", key,
            "packets/round " + std::to_string(x.packets) + " vs " +
                std::to_string(y.packets));
      else if (x.payloadBytes != y.payloadBytes)
        add("write", key,
            "payload bytes/round " + std::to_string(x.payloadBytes) + " vs " +
                std::to_string(y.payloadBytes));
      else if (x.fifo != y.fifo || x.inOrder != y.inOrder)
        add("write", key, "delivery flags (fifo/in-order) differ");
    }
    for (const auto& [key, y] : wb)
      if (!wa.count(key))
        add("write", key,
            "write group only in second plan (" + std::to_string(y.packets) +
                " packets/round)");
  }

  // Expectations per (site, client, counter).
  {
    auto aggregate = [](const CommPlan& plan) {
      std::map<std::string, ExpectAgg> out;
      for (const CounterExpectation& e : plan.expectations) {
        std::string key = e.site + " | " + clientLabel(e.client) + " | ctr " +
                          std::to_string(e.counterId);
        ExpectAgg& agg = out[key];
        agg.perRound += e.perRound;
        agg.records += 1;
        agg.armed += e.recoveryArmed ? 1 : 0;
      }
      return out;
    };
    std::map<std::string, ExpectAgg> ea = aggregate(a), eb = aggregate(b);
    for (const auto& [key, x] : ea) {
      auto it = eb.find(key);
      if (it == eb.end()) {
        add("expectation", key, "wait site only in first plan");
        continue;
      }
      const ExpectAgg& y = it->second;
      if (x.perRound != y.perRound)
        add("expectation", key,
            "expected packets/round " + std::to_string(x.perRound) + " vs " +
                std::to_string(y.perRound));
      else if (x.armed != y.armed)
        add("expectation", key,
            "recovery arming differs (" + std::to_string(x.armed) + " vs " +
                std::to_string(y.armed) + " of " + std::to_string(x.records) +
                " records)");
    }
    for (const auto& [key, y] : eb) {
      (void)y;
      if (!ea.count(key))
        add("expectation", key, "wait site only in second plan");
    }
  }

  // Multicast trees per (pattern, source): forwarding-table rows and the
  // declared destination set.
  {
    auto index = [](const CommPlan& plan) {
      std::map<std::string, const MulticastPlanEntry*> out;
      for (const MulticastPlanEntry& m : plan.multicasts)
        out["pattern " + std::to_string(m.patternId) + " @ node " +
            std::to_string(m.srcNode)] = &m;
      return out;
    };
    auto ma = index(a), mb = index(b);
    for (const auto& [key, x] : ma) {
      auto it = mb.find(key);
      if (it == mb.end()) {
        add("multicast", key, "tree only in first plan");
        continue;
      }
      const MulticastPlanEntry* y = it->second;
      auto sameTables = [](const MulticastPlanEntry* p,
                           const MulticastPlanEntry* q) {
        if (p->entries.size() != q->entries.size()) return false;
        auto pi = p->entries.begin();
        for (const auto& [node, row] : q->entries) {
          if (pi->first != node || pi->second.clientMask != row.clientMask ||
              pi->second.linkMask != row.linkMask)
            return false;
          ++pi;
        }
        return true;
      };
      if (!sameTables(x, y)) {
        std::string detail = "forwarding tables differ";
        for (const auto& [node, row] : x->entries) {
          auto r = y->entries.find(node);
          if (r == y->entries.end()) {
            detail += " (node " + std::to_string(node) +
                      " row only in first plan)";
            break;
          }
          if (row.clientMask != r->second.clientMask ||
              row.linkMask != r->second.linkMask) {
            detail += " (node " + std::to_string(node) + ": clients " +
                      std::to_string(int(row.clientMask)) + "/" +
                      std::to_string(int(r->second.clientMask)) + ", links " +
                      std::to_string(int(row.linkMask)) + "/" +
                      std::to_string(int(r->second.linkMask)) + ")";
            break;
          }
        }
        if (x->entries.size() < y->entries.size())
          detail += " (" + std::to_string(y->entries.size() -
                                          x->entries.size()) +
                    " extra row(s) in second plan)";
        add("multicast", key, detail);
      }
      if (dests(x->declaredDests) != dests(y->declaredDests))
        add("multicast", key,
            "declared destination sets differ (" +
                std::to_string(x->declaredDests.size()) + " vs " +
                std::to_string(y->declaredDests.size()) + " dest(s))");
    }
    for (const auto& [key, y] : mb) {
      (void)y;
      if (!ma.count(key)) add("multicast", key, "tree only in second plan");
    }
  }

  // Buffer lifetimes per (name, owner).
  {
    auto index = [](const CommPlan& plan) {
      std::map<std::string, const BufferPlan*> out;
      for (const BufferPlan& bp : plan.buffers)
        out[bp.name + " @ " + clientLabel(bp.client)] = &bp;
      return out;
    };
    auto ba = index(a), bb = index(b);
    for (const auto& [key, x] : ba) {
      auto it = bb.find(key);
      if (it == bb.end()) {
        add("buffer", key, "buffer only in first plan");
        continue;
      }
      const BufferPlan* y = it->second;
      if (x->copies != y->copies)
        add("buffer", key,
            "copy count (reuse distance) " + std::to_string(x->copies) +
                " vs " + std::to_string(y->copies));
      if (x->freePhase != y->freePhase)
        add("buffer", key,
            "free phase '" + x->freePhase + "' vs '" + y->freePhase + "'");
      if (x->base != y->base || x->bytes != y->bytes)
        add("buffer", key,
            "placement " + std::to_string(x->base) + "+" +
                std::to_string(x->bytes) + " vs " + std::to_string(y->base) +
                "+" + std::to_string(y->bytes));
      auto writerSet = [](const BufferPlan* bp) {
        std::set<std::string> out;
        for (const BufferWriter& w : bp->writers)
          out.insert(std::to_string(w.node) + ":" + w.phase);
        return out;
      };
      if (writerSet(x) != writerSet(y))
        add("buffer", key,
            "writer sets differ (" + std::to_string(x->writers.size()) +
                " vs " + std::to_string(y->writers.size()) + " writer(s))");
    }
    for (const auto& [key, y] : bb) {
      (void)y;
      if (!ba.count(key)) add("buffer", key, "buffer only in second plan");
    }
  }

  return delta;
}

std::uint64_t planKey(const CommPlan& plan) {
  return util::fnv1a64(planToJson(plan));
}

std::string planKeyHex(const CommPlan& plan) {
  return util::hex64(planKey(plan));
}

}  // namespace anton::verify
