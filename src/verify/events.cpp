#include "verify/events.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <tuple>

namespace anton::verify {
namespace {

/// Sort rank at equal seq: the counter wait fires, the freed buffer copy is
/// retired, and only then do the phase's sends go out.
int kindRank(EventKind k) {
  switch (k) {
    case EventKind::kWait:
      return 0;
    case EventKind::kFree:
      return 1;
    case EventKind::kSend:
    case EventKind::kPhaseEntry:
    case EventKind::kPhaseExit:
      return 2;  // anchors are placed explicitly, never sorted
  }
  return 2;
}

}  // namespace

std::vector<std::vector<net::ClientAddr>> deliveredTargets(
    const CommPlan& plan) {
  std::map<int, std::vector<std::size_t>> patternIndex;
  for (std::size_t mi = 0; mi < plan.multicasts.size(); ++mi)
    patternIndex[plan.multicasts[mi].patternId].push_back(mi);
  std::map<std::size_t, TreeExpansion> expansions;
  std::vector<std::vector<net::ClientAddr>> delivered(plan.writes.size());
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    if (w.pattern == net::kNoMulticast) {
      if (w.dst.node >= 0) delivered[wi].push_back(w.dst);
      continue;
    }
    auto it = patternIndex.find(w.pattern);
    std::size_t chosen = std::size_t(-1);
    if (it != patternIndex.end()) {
      for (std::size_t c : it->second)
        if (plan.multicasts[c].srcNode == w.srcNode) {
          chosen = c;
          break;
        }
      if (chosen == std::size_t(-1) && it->second.size() == 1)
        chosen = it->second.front();
    }
    if (chosen == std::size_t(-1)) continue;
    auto [ei, fresh] = expansions.try_emplace(chosen);
    if (fresh) ei->second = expandTree(plan.multicasts[chosen], plan.shape);
    delivered[wi] = ei->second.reached;
  }
  return delivered;
}

EventGraph::EventGraph(
    const CommPlan& plan, int rounds,
    const std::vector<std::vector<net::ClientAddr>>& delivered)
    : plan_(plan),
      rounds_(std::max(rounds, 1)),
      numPhases_(int(plan.phases.size())),
      numNodes_(plan.shape.size()) {
  buildSlots(plan);
  buildEdges(plan, delivered);
}

void EventGraph::buildSlots(const CommPlan& plan) {
  const int P = numPhases_;
  const int N = numNodes_;
  struct Item {
    int seq;
    int rank;
    int order;  ///< insertion order, for a stable tie-break
    Event ev;
  };
  std::vector<std::vector<Item>> groups(std::size_t(N) * std::size_t(P));
  auto groupOf = [&](int node, int phaseIdx) -> std::vector<Item>* {
    if (node < 0 || node >= N || phaseIdx < 0 || phaseIdx >= P) return nullptr;
    return &groups[std::size_t(node) * std::size_t(P) + std::size_t(phaseIdx)];
  };

  waitSlot_.assign(plan.expectations.size(), -1);
  sendSlot_.assign(plan.writes.size(), -1);
  freeSlot_.assign(plan.buffers.size(), -1);

  // The free event of a buffer fires when the freePhase's waits are done:
  // it sorts after the last wait of its (node, phase) group.
  std::map<std::pair<int, int>, int> maxWaitSeq;
  int order = 0;
  for (std::size_t ei = 0; ei < plan.expectations.size(); ++ei) {
    const CounterExpectation& e = plan.expectations[ei];
    int p = plan.phaseIndex(e.phase);
    std::vector<Item>* g = groupOf(e.client.node, p);
    if (g == nullptr) continue;
    g->push_back({e.seq, kindRank(EventKind::kWait), order++,
                  {EventKind::kWait, e.client.node, p, int(ei)}});
    auto [it, fresh] = maxWaitSeq.emplace(std::pair{e.client.node, p}, e.seq);
    if (!fresh) it->second = std::max(it->second, e.seq);
  }
  for (std::size_t bi = 0; bi < plan.buffers.size(); ++bi) {
    const BufferPlan& b = plan.buffers[bi];
    int p = plan.phaseIndex(b.freePhase);
    std::vector<Item>* g = groupOf(b.client.node, p);
    if (g == nullptr) continue;
    auto it = maxWaitSeq.find({b.client.node, p});
    int seq = it == maxWaitSeq.end() ? 0 : it->second;
    g->push_back({seq, kindRank(EventKind::kFree), order++,
                  {EventKind::kFree, b.client.node, p, int(bi)}});
  }
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    int p = plan.phaseIndex(w.phase);
    std::vector<Item>* g = groupOf(w.srcNode, p);
    if (g == nullptr) continue;
    g->push_back({w.seq, kindRank(EventKind::kSend), order++,
                  {EventKind::kSend, w.srcNode, p, int(wi)}});
  }

  groupStart_.assign(std::size_t(N) * std::size_t(P) + 1, 0);
  events_.clear();
  for (int n = 0; n < N; ++n)
    for (int p = 0; p < P; ++p) {
      std::size_t np = std::size_t(n) * std::size_t(P) + std::size_t(p);
      groupStart_[np] = int(events_.size());
      events_.push_back({EventKind::kPhaseEntry, n, p, -1});
      std::vector<Item>& g = groups[np];
      std::sort(g.begin(), g.end(), [](const Item& a, const Item& b) {
        return std::tie(a.seq, a.rank, a.order) <
               std::tie(b.seq, b.rank, b.order);
      });
      for (const Item& it : g) {
        int slot = int(events_.size());
        events_.push_back(it.ev);
        switch (it.ev.kind) {
          case EventKind::kWait:
            waitSlot_[std::size_t(it.ev.ref)] = slot;
            break;
          case EventKind::kFree:
            freeSlot_[std::size_t(it.ev.ref)] = slot;
            break;
          case EventKind::kSend:
          case EventKind::kPhaseEntry:  // anchors never enter the groups
          case EventKind::kPhaseExit:
            sendSlot_[std::size_t(it.ev.ref)] = slot;
            break;
        }
      }
      events_.push_back({EventKind::kPhaseExit, n, p, -1});
    }
  groupStart_[std::size_t(N) * std::size_t(P)] = int(events_.size());
}

void EventGraph::buildEdges(
    const CommPlan& plan,
    const std::vector<std::vector<net::ClientAddr>>& delivered) {
  const int P = numPhases_;
  const int N = numNodes_;
  const int R = rounds_;
  auto entry = [&](int n, int p) {
    return groupStart_[std::size_t(n) * std::size_t(P) + std::size_t(p)];
  };
  auto exit = [&](int n, int p) {
    return groupStart_[std::size_t(n) * std::size_t(P) + std::size_t(p) + 1] -
           1;
  };

  // Phase precedence (strictly-before) over the plan's phase DAG.
  std::vector<char> strictBefore(std::size_t(P) * std::size_t(P), 0);
  {
    std::vector<std::vector<int>> succ;
    succ.resize(std::size_t(P));
    for (const auto& [f, t] : plan.phaseEdges)
      if (f >= 0 && f < P && t >= 0 && t < P)
        succ[std::size_t(f)].push_back(t);
    for (int p = 0; p < P; ++p) {
      std::deque<int> q{p};
      std::vector<char> seen(std::size_t(P), 0);
      seen[std::size_t(p)] = 1;
      while (!q.empty()) {
        int v = q.front();
        q.pop_front();
        for (int s : succ[std::size_t(v)])
          if (!seen[std::size_t(s)]) {
            seen[std::size_t(s)] = 1;
            strictBefore[std::size_t(p) * std::size_t(P) + std::size_t(s)] = 1;
            q.push_back(s);
          }
      }
    }
  }
  auto before = [&](int p, int q) {
    return strictBefore[std::size_t(p) * std::size_t(P) + std::size_t(q)] != 0;
  };

  // Delivery targets of each counted send: the precedence-minimal matching
  // wait phases not strictly before the send (same round), or — when every
  // matching wait is strictly before it — the next round's minimal waits.
  std::map<std::tuple<int, int, int>, std::vector<int>> waitsFor;
  for (std::size_t ei = 0; ei < plan.expectations.size(); ++ei) {
    if (waitSlot_[ei] < 0) continue;
    const CounterExpectation& e = plan.expectations[ei];
    waitsFor[{e.client.node, e.client.client, e.counterId}].push_back(int(ei));
  }
  struct Target {
    int waitSlot;
    bool nextRound;
  };
  std::vector<std::vector<Target>> targets(plan.writes.size());
  for (std::size_t wi = 0; wi < plan.writes.size(); ++wi) {
    const PlannedWrite& w = plan.writes[wi];
    if (sendSlot_[wi] < 0 || w.counterId == net::kNoCounter) continue;
    int wp = plan.phaseIndex(w.phase);
    for (const net::ClientAddr& d : delivered[wi]) {
      auto it = waitsFor.find({d.node, d.client, w.counterId});
      if (it == waitsFor.end()) continue;
      std::vector<int> eligible;
      for (int ei : it->second) {
        int ep = plan.phaseIndex(plan.expectations[std::size_t(ei)].phase);
        if (!before(ep, wp)) eligible.push_back(ei);
      }
      bool nextRound = eligible.empty();
      const std::vector<int>& pool = nextRound ? it->second : eligible;
      for (int ei : pool) {
        int ep = plan.phaseIndex(plan.expectations[std::size_t(ei)].phase);
        bool minimal = true;
        for (int oi : pool) {
          if (oi == ei) continue;
          int op = plan.phaseIndex(plan.expectations[std::size_t(oi)].phase);
          if (before(op, ep)) {
            minimal = false;
            break;
          }
        }
        if (minimal)
          targets[wi].push_back({waitSlot_[std::size_t(ei)], nextRound});
      }
    }
  }

  // Round-wrap endpoints: each node's sink phases order the next round's
  // source phases on the same node.
  std::vector<char> hasIn(std::size_t(P), 0), hasOut(std::size_t(P), 0);
  for (const auto& [f, t] : plan.phaseEdges) {
    if (f < 0 || f >= P || t < 0 || t >= P) continue;
    hasOut[std::size_t(f)] = 1;
    hasIn[std::size_t(t)] = 1;
  }

  auto forEachEdge = [&](auto&& emit) {
    // Program order along each (node, phase) chain.
    for (std::size_t np = 0; np + 1 < groupStart_.size(); ++np)
      for (int s = groupStart_[np]; s + 1 < groupStart_[np + 1]; ++s)
        for (int r = 0; r < R; ++r) emit(vertex(s, r), vertex(s + 1, r));
    // Program order along the phase DAG.
    for (const auto& [f, t] : plan.phaseEdges) {
      if (f < 0 || f >= P || t < 0 || t >= P) continue;
      for (int n = 0; n < N; ++n)
        for (int r = 0; r < R; ++r)
          emit(vertex(exit(n, f), r), vertex(entry(n, t), r));
    }
    // Round wrap: sink phases to the next round's source phases.
    for (int p = 0; p < P; ++p) {
      if (hasOut[std::size_t(p)]) continue;
      for (int q = 0; q < P; ++q) {
        if (hasIn[std::size_t(q)]) continue;
        for (int n = 0; n < N; ++n)
          for (int r = 0; r + 1 < R; ++r)
            emit(vertex(exit(n, p), r), vertex(entry(n, q), r + 1));
      }
    }
    // Counted delivery: send to the waits its counter satisfies.
    for (std::size_t wi = 0; wi < targets.size(); ++wi)
      for (const Target& t : targets[wi])
        for (int r = 0; r < R; ++r) {
          int tr = r + (t.nextRound ? 1 : 0);
          if (tr >= R) continue;
          emit(vertex(sendSlot_[wi], r), vertex(t.waitSlot, tr));
        }
  };

  std::vector<int> degree(std::size_t(numVertices()) + 1, 0);
  forEachEdge([&](int u, int) { ++degree[std::size_t(u) + 1]; });
  for (std::size_t i = 1; i < degree.size(); ++i) degree[i] += degree[i - 1];
  adjStart_ = degree;
  adjEdges_.assign(std::size_t(adjStart_.back()), 0);
  std::vector<int> fill = adjStart_;
  forEachEdge([&](int u, int v) {
    adjEdges_[std::size_t(fill[std::size_t(u)]++)] = v;
  });
}

int EventGraph::sendSlot(std::size_t writeIndex) const {
  return writeIndex < sendSlot_.size() ? sendSlot_[writeIndex] : -1;
}

int EventGraph::waitSlot(std::size_t expectationIndex) const {
  return expectationIndex < waitSlot_.size() ? waitSlot_[expectationIndex]
                                             : -1;
}

int EventGraph::freeSlot(std::size_t bufferIndex) const {
  return bufferIndex < freeSlot_.size() ? freeSlot_[bufferIndex] : -1;
}

int EventGraph::entrySlot(int node, int phase) const {
  if (node < 0 || node >= numNodes_ || phase < 0 || phase >= numPhases_)
    return -1;
  return groupStart_[std::size_t(node) * std::size_t(numPhases_) +
                     std::size_t(phase)];
}

std::vector<char> EventGraph::reachableFrom(int vertex) const {
  std::vector<char> seen(std::size_t(numVertices()), 0);
  std::deque<int> q{vertex};
  seen[std::size_t(vertex)] = 1;
  while (!q.empty()) {
    int v = q.front();
    q.pop_front();
    for (int i = adjStart_[std::size_t(v)]; i < adjStart_[std::size_t(v) + 1];
         ++i) {
      int n = adjEdges_[std::size_t(i)];
      if (!seen[std::size_t(n)]) {
        seen[std::size_t(n)] = 1;
        q.push_back(n);
      }
    }
  }
  return seen;
}

std::vector<int> EventGraph::findCycle() const {
  // Iterative DFS; a back edge to a gray vertex closes a cycle, recovered
  // from the explicit path stack so the diagnostic can show every event on
  // it.
  const int V = numVertices();
  std::vector<char> color(std::size_t(V), 0);  // 0 white, 1 gray, 2 black
  std::vector<int> edgeIt(std::size_t(V), 0);
  std::vector<int> path;
  for (int root = 0; root < V; ++root) {
    if (color[std::size_t(root)] != 0) continue;
    path.push_back(root);
    color[std::size_t(root)] = 1;
    edgeIt[std::size_t(root)] = adjStart_[std::size_t(root)];
    while (!path.empty()) {
      int v = path.back();
      if (edgeIt[std::size_t(v)] < adjStart_[std::size_t(v) + 1]) {
        int n = adjEdges_[std::size_t(edgeIt[std::size_t(v)]++)];
        if (color[std::size_t(n)] == 0) {
          color[std::size_t(n)] = 1;
          edgeIt[std::size_t(n)] = adjStart_[std::size_t(n)];
          path.push_back(n);
        } else if (color[std::size_t(n)] == 1) {
          auto it = std::find(path.begin(), path.end(), n);
          std::vector<int> cycle(it, path.end());
          cycle.push_back(n);
          return cycle;
        }
      } else {
        color[std::size_t(v)] = 2;
        path.pop_back();
      }
    }
  }
  return {};
}

std::string EventGraph::describe(int vertex) const {
  const Event& e = events_[std::size_t(slotOf(vertex))];
  const std::string phase = e.phase >= 0 && e.phase < numPhases_
                                ? plan_.phases[std::size_t(e.phase)]
                                : "?";
  std::string what;
  switch (e.kind) {
    case EventKind::kPhaseEntry:
      what = "phase '" + phase + "' begins";
      break;
    case EventKind::kPhaseExit:
      what = "phase '" + phase + "' ends";
      break;
    case EventKind::kWait: {
      const CounterExpectation& x = plan_.expectations[std::size_t(e.ref)];
      what = "wait '" + x.site + "' (ctr " + std::to_string(x.counterId) +
             ") in phase '" + phase + "'";
      break;
    }
    case EventKind::kFree: {
      const BufferPlan& b = plan_.buffers[std::size_t(e.ref)];
      what = "free of buffer '" + b.name + "' in phase '" + phase + "'";
      break;
    }
    case EventKind::kSend: {
      const PlannedWrite& w = plan_.writes[std::size_t(e.ref)];
      what = "send";
      if (w.pattern != net::kNoMulticast)
        what += " (pattern " + std::to_string(w.pattern) + ")";
      else if (w.dst.node >= 0)
        what += " to node " + std::to_string(w.dst.node);
      if (w.counterId != net::kNoCounter)
        what += " on ctr " + std::to_string(w.counterId);
      what += " in phase '" + phase + "'";
      break;
    }
  }
  return "node " + std::to_string(e.node) + ": " + what + " [round " +
         std::to_string(roundOf(vertex)) + "]";
}

}  // namespace anton::verify
