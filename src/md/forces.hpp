// Force-field kernels: bonded terms and range-limited non-bonded pairs.
//
// Non-bonded forces follow the paper's split (SC10 §II): a range-limited
// part — Lennard-Jones plus the erfc-damped real-space Ewald electrostatics
// — computed directly within a cutoff, and a long-range part handled by the
// FFT-based convolution (md/ewald.hpp). All kernels return the potential
// energy and accumulate forces; tests validate every kernel against
// numerical gradients.
#pragma once

#include <functional>
#include <vector>

#include "md/system.hpp"

namespace anton::md {

struct ForceParams {
  double cutoff = 2.5;
  double ewaldKappa = 1.0;  ///< real/reciprocal splitting parameter
  double coulomb = 1.0;     ///< Coulomb constant (reduced units)
  bool shiftLJ = true;      ///< shift LJ so U(cutoff) = 0 (energy tests)
};

/// One bonded term each; forces accumulate into f, energy is returned.
double bondForce(const MDSystem& sys, const Bond& b, std::vector<Vec3>& f);
double angleForce(const MDSystem& sys, const Angle& a, std::vector<Vec3>& f);
double dihedralForce(const MDSystem& sys, const Dihedral& d, std::vector<Vec3>& f);

/// All bonded terms of the system.
double bondedForces(const MDSystem& sys, std::vector<Vec3>& f);

/// Range-limited kernel for one pair. `d` is the minimum-image displacement
/// from atom i to atom j. Returns the force on atom i (force on j is the
/// negation) and the pair energy; zero beyond the cutoff.
struct PairForce {
  Vec3 onI;
  double energy = 0.0;
};
PairForce rangeLimitedPair(const Vec3& d, double qi, double qj,
                           const ForceParams& p, double ljPrefactor = 1.0);

/// O(N) cell-list pair iteration. Falls back to the O(N^2) loop when the box
/// is too small for 3 cells per dimension.
class CellList {
 public:
  CellList(const MDSystem& sys, double cutoff);

  /// Visit every unordered pair within the cutoff exactly once with the
  /// minimum-image displacement i -> j.
  void forEachPair(const MDSystem& sys,
                   const std::function<void(int, int, const Vec3&)>& fn) const;

  int cellCount() const { return nx_ * ny_ * nz_; }

 private:
  bool bruteForce_ = false;
  double cutoff_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  int numAtoms_ = 0;
  std::vector<std::vector<int>> cells_;
};

/// Full range-limited force evaluation (cell list + kernel).
double rangeLimitedForces(const MDSystem& sys, const ForceParams& p,
                          std::vector<Vec3>& f);

}  // namespace anton::md
