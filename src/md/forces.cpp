#include "md/forces.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace anton::md {

double bondForce(const MDSystem& sys, const Bond& b, std::vector<Vec3>& f) {
  Vec3 d = sys.minImage(sys.positions[std::size_t(b.i)],
                        sys.positions[std::size_t(b.j)]);
  double r = d.norm();
  double dr = r - b.r0;
  double dUdr = 2.0 * b.k * dr;
  Vec3 fi = (dUdr / r) * d;  // F_i = dU/dr * dhat (d points i -> j)
  f[std::size_t(b.i)] += fi;
  f[std::size_t(b.j)] -= fi;
  return b.k * dr * dr;
}

double angleForce(const MDSystem& sys, const Angle& a, std::vector<Vec3>& f) {
  // j is the vertex.
  Vec3 rij = sys.minImage(sys.positions[std::size_t(a.j)],
                          sys.positions[std::size_t(a.i)]);
  Vec3 rkj = sys.minImage(sys.positions[std::size_t(a.j)],
                          sys.positions[std::size_t(a.k)]);
  double lij = rij.norm();
  double lkj = rkj.norm();
  double cosT = std::clamp(rij.dot(rkj) / (lij * lkj), -1.0, 1.0);
  double sinT = std::sqrt(std::max(1e-12, 1.0 - cosT * cosT));
  double theta = std::acos(cosT);
  double dTheta = theta - a.theta0;
  double dUdT = 2.0 * a.kTheta * dTheta;

  Vec3 uij = rij * (1.0 / lij);
  Vec3 ukj = rkj * (1.0 / lkj);
  Vec3 fi = (dUdT / (lij * sinT)) * (ukj - cosT * uij);
  Vec3 fk = (dUdT / (lkj * sinT)) * (uij - cosT * ukj);
  f[std::size_t(a.i)] += fi;
  f[std::size_t(a.k)] += fk;
  f[std::size_t(a.j)] -= fi + fk;
  return a.kTheta * dTheta * dTheta;
}

double dihedralForce(const MDSystem& sys, const Dihedral& d,
                     std::vector<Vec3>& f) {
  const Vec3& ri = sys.positions[std::size_t(d.i)];
  const Vec3& rj = sys.positions[std::size_t(d.j)];
  const Vec3& rk = sys.positions[std::size_t(d.k)];
  const Vec3& rl = sys.positions[std::size_t(d.l)];
  Vec3 b1 = sys.minImage(ri, rj);
  Vec3 b2 = sys.minImage(rj, rk);
  Vec3 b3 = sys.minImage(rk, rl);

  Vec3 n1 = b1.cross(b2);
  Vec3 n2 = b2.cross(b3);
  double lb2 = b2.norm();
  double n1sq = std::max(1e-12, n1.norm2());
  double n2sq = std::max(1e-12, n2.norm2());

  double x = n1.dot(n2);
  double y = n1.cross(n2).dot(b2) / lb2;
  double phi = std::atan2(y, x);

  double arg = d.n * phi - d.phi0;
  double energy = d.kPhi * (1.0 + std::cos(arg));
  double dUdPhi = -d.kPhi * double(d.n) * std::sin(arg);

  Vec3 fi = (dUdPhi * lb2 / n1sq) * n1;
  Vec3 fl = (-dUdPhi * lb2 / n2sq) * n2;
  double tj = b1.dot(b2) / (lb2 * lb2);
  double tk = b3.dot(b2) / (lb2 * lb2);
  Vec3 fj = -(1.0 + tj) * fi + tk * fl;
  Vec3 fk = tj * fi - (1.0 + tk) * fl;

  f[std::size_t(d.i)] += fi;
  f[std::size_t(d.j)] += fj;
  f[std::size_t(d.k)] += fk;
  f[std::size_t(d.l)] += fl;
  return energy;
}

double bondedForces(const MDSystem& sys, std::vector<Vec3>& f) {
  double e = 0.0;
  for (const Bond& b : sys.bonds) e += bondForce(sys, b, f);
  for (const Angle& a : sys.angles) e += angleForce(sys, a, f);
  for (const Dihedral& d : sys.dihedrals) e += dihedralForce(sys, d, f);
  return e;
}

PairForce rangeLimitedPair(const Vec3& d, double qi, double qj,
                           const ForceParams& p, double ljPrefactor) {
  PairForce out;
  double r2 = d.norm2();
  if (r2 >= p.cutoff * p.cutoff || r2 == 0.0) return out;
  double r = std::sqrt(r2);

  // Lennard-Jones (sigma = epsilon = 1), optionally shifted to 0 at cutoff.
  double inv2 = 1.0 / r2;
  double inv6 = inv2 * inv2 * inv2;
  double inv12 = inv6 * inv6;
  double lj = ljPrefactor * 4.0 * (inv12 - inv6);
  if (p.shiftLJ) {
    double c2 = 1.0 / (p.cutoff * p.cutoff);
    double c6 = c2 * c2 * c2;
    lj -= ljPrefactor * 4.0 * (c6 * c6 - c6);
  }
  double dUdr_lj = ljPrefactor * (-48.0 * inv12 + 24.0 * inv6) / r;

  // Real-space Ewald electrostatics: q_i q_j erfc(kappa r) / r.
  double kr = p.ewaldKappa * r;
  double erfcTerm = std::erfc(kr);
  double gauss = std::exp(-kr * kr);
  double qq = p.coulomb * qi * qj;
  double coul = qq * erfcTerm / r;
  double dUdr_coul =
      -qq * (erfcTerm / r2 +
             2.0 * p.ewaldKappa * gauss / (std::sqrt(std::numbers::pi) * r));

  double dUdr = dUdr_lj + dUdr_coul;
  out.onI = (dUdr / r) * d;
  out.energy = lj + coul;
  return out;
}

CellList::CellList(const MDSystem& sys, double cutoff)
    : cutoff_(cutoff), numAtoms_(sys.numAtoms()) {
  nx_ = std::max(1, int(sys.box.x / cutoff));
  ny_ = std::max(1, int(sys.box.y / cutoff));
  nz_ = std::max(1, int(sys.box.z / cutoff));
  if (nx_ < 3 || ny_ < 3 || nz_ < 3) {
    bruteForce_ = true;
    return;
  }
  cells_.assign(std::size_t(nx_) * std::size_t(ny_) * std::size_t(nz_), {});
  for (int i = 0; i < sys.numAtoms(); ++i) {
    Vec3 p = sys.wrap(sys.positions[std::size_t(i)]);
    int cx = std::min(nx_ - 1, int(p.x / sys.box.x * nx_));
    int cy = std::min(ny_ - 1, int(p.y / sys.box.y * ny_));
    int cz = std::min(nz_ - 1, int(p.z / sys.box.z * nz_));
    cells_[std::size_t(cx) + std::size_t(nx_) *
                                 (std::size_t(cy) + std::size_t(ny_) * std::size_t(cz))]
        .push_back(i);
  }
}

void CellList::forEachPair(
    const MDSystem& sys,
    const std::function<void(int, int, const Vec3&)>& fn) const {
  auto tryPair = [&](int i, int j) {
    Vec3 d = sys.minImage(sys.positions[std::size_t(i)],
                          sys.positions[std::size_t(j)]);
    if (d.norm2() < cutoff_ * cutoff_) fn(i, j, d);
  };

  if (bruteForce_) {
    for (int i = 0; i < numAtoms_; ++i)
      for (int j = i + 1; j < numAtoms_; ++j) tryPair(i, j);
    return;
  }

  // Half-shell of neighbor cell offsets: each unordered cell pair visited
  // exactly once (13 offsets), plus within-cell pairs.
  static constexpr int kOffsets[13][3] = {
      {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
      {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
      {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};

  auto cellAt = [&](int x, int y, int z) -> const std::vector<int>& {
    x = (x % nx_ + nx_) % nx_;
    y = (y % ny_ + ny_) % ny_;
    z = (z % nz_ + nz_) % nz_;
    return cells_[std::size_t(x) +
                  std::size_t(nx_) * (std::size_t(y) + std::size_t(ny_) * std::size_t(z))];
  };

  for (int cz = 0; cz < nz_; ++cz)
    for (int cy = 0; cy < ny_; ++cy)
      for (int cx = 0; cx < nx_; ++cx) {
        const std::vector<int>& home = cellAt(cx, cy, cz);
        for (std::size_t ii = 0; ii < home.size(); ++ii)
          for (std::size_t jj = ii + 1; jj < home.size(); ++jj)
            tryPair(home[ii], home[jj]);
        for (const auto& off : kOffsets) {
          const std::vector<int>& other =
              cellAt(cx + off[0], cy + off[1], cz + off[2]);
          if (&other == &home) continue;  // tiny torus wrap: already done
          for (int i : home)
            for (int j : other) tryPair(i, j);
        }
      }
}

double rangeLimitedForces(const MDSystem& sys, const ForceParams& p,
                          std::vector<Vec3>& f) {
  CellList cl(sys, p.cutoff);
  double energy = 0.0;
  cl.forEachPair(sys, [&](int i, int j, const Vec3& d) {
    PairForce pf = rangeLimitedPair(d, sys.charges[std::size_t(i)],
                                    sys.charges[std::size_t(j)], p,
                                    sys.ljOf(i) * sys.ljOf(j));
    f[std::size_t(i)] += pf.onI;
    f[std::size_t(j)] -= pf.onI;
    energy += pf.energy;
  });
  return energy;
}

}  // namespace anton::md
