#include "md/anton_app.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>

#include "sim/gate.hpp"
#include "sim/rng.hpp"

#include <functional>

namespace anton::md {

namespace {

/// 32-byte on-wire atom record: one atom per packet (SC10 §IV-B2).
struct PosRecord {
  std::int32_t gid = -1;
  std::int32_t homeAndSlot = 0;  // homeNode * 65536 + slot
  double x = 0, y = 0, z = 0;

  int homeNode() const { return homeAndSlot >> 16; }
  int slot() const { return homeAndSlot & 0xFFFF; }
};
static_assert(sizeof(PosRecord) == 32);

/// Migration record: full dynamic atom state.
struct MigRecord {
  std::int32_t gid = 0;
  std::int32_t pad = 0;
  double px, py, pz;
  double vx, vy, vz;
};
static_assert(sizeof(MigRecord) == 56);

/// Half-shell offsets: the 13 lexicographically positive neighbors.
bool lexPositive(int dx, int dy, int dz) {
  if (dz != 0) return dz > 0;
  if (dy != 0) return dy > 0;
  return dx > 0;
}

}  // namespace

AntonMdApp::AntonMdApp(net::Machine& machine, MDSystem system, AntonMdConfig cfg)
    : machine_(machine), cfg_(cfg), shape_(machine.shape()), box_(system.box) {
  nodeBox_ = {box_.x / shape_.nx, box_.y / shape_.ny, box_.z / shape_.nz};
  margin_ = nodeBox_ * cfg_.homeBoxMarginFrac;

  for (int d = 0; d < 3; ++d) {
    double bd = d == 0 ? nodeBox_.x : d == 1 ? nodeBox_.y : nodeBox_.z;
    double md = d == 0 ? margin_.x : d == 1 ? margin_.y : margin_.z;
    if (cfg_.force.cutoff + 2.0 * md > bd)
      throw std::invalid_argument(
          "cutoff + relaxed-box margins must fit within one home box "
          "(half-shell import would miss pairs)");
    int extent = shape_.extent(d);
    if (extent == 2)
      throw std::invalid_argument(
          "torus extents of exactly 2 break the half-shell import rule; "
          "use 1 or >= 3");
  }

  charges_ = system.charges;
  masses_ = system.masses;
  ljStrength_ = system.ljStrength;
  topology_.box = system.box;
  topology_.bonds = system.bonds;
  topology_.angles = system.angles;
  topology_.dihedrals = system.dihedrals;
  topology_.charges = charges_;
  topology_.masses = masses_;
  topology_.ljStrength = ljStrength_;

  ewald_ = std::make_unique<MeshEwald>(box_, cfg_.ewald);

  nodes_.resize(std::size_t(machine_.numNodes()));
  partitionAtoms(system);
  buildImportGroups();
  buildBondProgram();

  patterns_ = std::make_unique<core::PatternAllocator>(machine_, 0, 207);
  installPatterns();
  migrationSync_ = std::make_unique<core::NeighborhoodSync>(
      machine_, *patterns_, cfg_.ctrFlush, net::kSlice0);
  allReduce_ =
      std::make_unique<core::DimOrderedAllReduce>(machine_, cfg_.allReduce);
  cfg_.fftConfig.fftSlice = net::kSlice1;
  fft_ = std::make_unique<fft::DistributedFft3D>(
      machine_, cfg_.ewald.grid, cfg_.ewald.grid, cfg_.ewald.grid,
      cfg_.fftConfig);
  for (int d = 0; d < 3; ++d) {
    if (fft_->blockExtent(d) < 4)
      throw std::invalid_argument(
          "FFT blocks must span >= 4 grid points per dimension (order-4 "
          "spline halos)");
  }

  if (cfg_.recoveryTimeoutUs > 0.0) {
    dropRegistry_ = std::make_unique<core::DropRegistry>(machine_);
    // One shared arming handle for every counted wait of the superstep:
    // the MD phases (via awaitRecoverable), the FFT gather/scatter waits
    // and the all-reduce line-broadcast waits all diagnose and replay
    // drops from the same registry into the same stats.
    recoveryHooks_.registry = dropRegistry_.get();
    recoveryHooks_.config.timeout = sim::us(cfg_.recoveryTimeoutUs);
    recoveryHooks_.config.maxResends = cfg_.recoveryMaxResends;
    recoveryHooks_.config.resendBackoff = sim::us(cfg_.recoveryBackoffUs);
    recoveryHooks_.stats = &recoveryStats_;
    fft_->setRecovery(recoveryHooks_);
    allReduce_->setRecovery(recoveryHooks_);
  }

  computeInitialForces();
}

// --- erasure recovery -------------------------------------------------------

sim::Task AntonMdApp::awaitRecoverable(
    net::NetworkClient& client, int counterId, std::uint64_t target,
    const std::map<int, std::uint64_t>& expected) {
  // `expected` is a reference on purpose: gcc's coroutine-frame copy of a
  // non-trivial by-value parameter can alias the caller's argument, double-
  // freeing the map nodes when both are destroyed. Callers pass a named map
  // that outlives the co_await (it is consumed before the first suspension
  // anyway). With recovery disabled the hooks are disarmed and this is a
  // plain counter wait, schedule-identical to the pre-recovery app.
  co_await core::awaitCounted(client, counterId, target, expected,
                              recoveryHooks_);
}

// --- geometry ---------------------------------------------------------------

int AntonMdApp::ownerOf(const Vec3& posIn) const {
  MDSystem tmp;
  tmp.box = box_;
  Vec3 p = tmp.wrap(posIn);
  int x = std::min(shape_.nx - 1, int(p.x / nodeBox_.x));
  int y = std::min(shape_.ny - 1, int(p.y / nodeBox_.y));
  int z = std::min(shape_.nz - 1, int(p.z / nodeBox_.z));
  return util::torusIndex({x, y, z}, shape_);
}

Vec3 AntonMdApp::nodeBoxOrigin(int node) const {
  util::TorusCoord c = util::torusCoordOf(node, shape_);
  return {c.x * nodeBox_.x, c.y * nodeBox_.y, c.z * nodeBox_.z};
}

bool AntonMdApp::insideRelaxedBox(int node, const Vec3& pos) const {
  Vec3 o = nodeBoxOrigin(node);
  auto inside1 = [](double p, double lo, double hi, double period) {
    // Interval test on a circle.
    double d = p - lo;
    d -= period * std::floor(d / period);
    return d < (hi - lo);
  };
  return inside1(pos.x, o.x - margin_.x, o.x + nodeBox_.x + margin_.x, box_.x) &&
         inside1(pos.y, o.y - margin_.y, o.y + nodeBox_.y + margin_.y, box_.y) &&
         inside1(pos.z, o.z - margin_.z, o.z + nodeBox_.z + margin_.z, box_.z);
}

// --- setup ------------------------------------------------------------------

void AntonMdApp::partitionAtoms(const MDSystem& sys) {
  for (int i = 0; i < sys.numAtoms(); ++i) {
    int owner = ownerOf(sys.positions[std::size_t(i)]);
    nodes_[std::size_t(owner)].atoms.push_back(
        {i, sys.positions[std::size_t(i)], sys.velocities[std::size_t(i)]});
  }
  int maxAtoms = 0;
  for (auto& n : nodes_) {
    std::sort(n.atoms.begin(), n.atoms.end(),
              [](const AtomRecord& a, const AtomRecord& b) { return a.gid < b.gid; });
    n.forces.assign(n.atoms.size(), Vec3{});
    maxAtoms = std::max(maxAtoms, int(n.atoms.size()));
  }
  // Fixed packet counts are per source node: each node's count accommodates
  // its own worst-case density fluctuation (§IV-B1), and receivers preload
  // the per-source sums.
  posFixed_.resize(nodes_.size());
  fixedPosPackets_ = 0;
  const double avg = double(sys.numAtoms()) / machine_.numNodes();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Cover both this node's initial population and the machine average:
    // migration can fill an initially sparse box up to the average regime.
    double basis = std::max(double(nodes_[i].atoms.size()), avg);
    posFixed_[i] = std::max(4, int(std::ceil(basis * cfg_.packetHeadroom)));
    fixedPosPackets_ = std::max(fixedPosPackets_, posFixed_[i]);
  }
  (void)maxAtoms;
}

void AntonMdApp::buildImportGroups() {
  const int n = machine_.numNodes();
  upperShell_.assign(std::size_t(n), {});
  lowerShell_.assign(std::size_t(n), {});
  for (int i = 0; i < n; ++i) {
    util::TorusCoord c = util::torusCoordOf(i, shape_);
    std::set<int> up, down;
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          // On an extent-1 dimension every offset wraps back onto the same
          // coordinate: reduce it to 0 before classifying. Classifying the
          // RAW offset breaks antisymmetry on such tori — e.g. on 4x4x1
          // every (dx, dy, +1) is "upper" from BOTH endpoints, leaving the
          // lower shells empty and the import counts wrong.
          const int rx = shape_.nx == 1 ? 0 : dx;
          const int ry = shape_.ny == 1 ? 0 : dy;
          const int rz = shape_.nz == 1 ? 0 : dz;
          if (rx == 0 && ry == 0 && rz == 0) continue;  // wraps onto self
          util::TorusCoord t{util::wrap(c.x + dx, shape_.nx),
                             util::wrap(c.y + dy, shape_.ny),
                             util::wrap(c.z + dz, shape_.nz)};
          int idx = util::torusIndex(t, shape_);
          if (idx == i) continue;
          if (lexPositive(rx, ry, rz)) {
            up.insert(idx);
          } else {
            down.insert(idx);
          }
        }
    // Reduced offsets are antisymmetric and reach distinct nodes (extent 2
    // is rejected in the constructor), so the shells cannot overlap; the
    // guard stays as a cheap invariant against future shape changes.
    for (int d : down) {
      if (!up.contains(d)) lowerShell_[std::size_t(i)].push_back(d);
    }
    upperShell_[std::size_t(i)] = {up.begin(), up.end()};
  }
}

std::uint32_t AntonMdApp::posSlotAddr(int srcNode, int slot) const {
  // Receive regions keyed by srcNode modulo a machine-wide residue R that
  // is collision-free within every import/halo group (multicast packets
  // carry a single address, so the region must be a function of the source
  // alone). R is computed in installPatterns() and stored in posRegionMod_.
  return std::uint32_t(srcNode % posRegionMod_) *
             std::uint32_t(fixedPosPackets_) * 32u +
         std::uint32_t(slot) * 32u;
}

void AntonMdApp::installPatterns() {
  // Residue R: smallest modulus with no collision among the 27-neighborhood
  // sources of any receiver (the halo group is a superset of the HTIS
  // import group).
  posRegionMod_ = 1;
  for (int r = 1; r <= machine_.numNodes(); ++r) {
    bool ok = true;
    for (int i = 0; i < machine_.numNodes() && ok; ++i) {
      std::set<int> residues;
      residues.insert(i % r);
      for (int nb : core::torusNeighborhood26(shape_, i)) {
        if (!residues.insert(nb % r).second) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      posRegionMod_ = r;
      break;
    }
  }

  // Check client memory budgets.
  std::size_t posRegion =
      std::size_t(posRegionMod_) * std::size_t(fixedPosPackets_) * 32;
  if (posRegion > machine_.config().clientMemBytes)
    throw std::invalid_argument("HTIS position regions exceed client memory");

  const int n = machine_.numNodes();
  posPattern_.resize(std::size_t(n));
  potPattern_.resize(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    std::vector<net::ClientAddr> posDests;
    posDests.push_back({i, net::kHtis});
    for (int u : upperShell_[std::size_t(i)]) posDests.push_back({u, net::kHtis});
    posPattern_[std::size_t(i)] = patterns_->install(i, posDests);

    std::vector<net::ClientAddr> potDests;
    potDests.push_back({i, net::kSlice1});
    for (int nb : core::torusNeighborhood26(shape_, i))
      potDests.push_back({nb, net::kSlice1});
    potPattern_[std::size_t(i)] = patterns_->install(i, potDests);
  }
}

void AntonMdApp::buildBondProgram() {
  const int n = machine_.numNodes();
  termsOnNode_.assign(std::size_t(n), {});
  bondAtomSlot_.assign(std::size_t(n), {});
  atomTermNodes_.assign(charges_.size(), {});
  for (int k = 0; k < 3; ++k)
    bondNodeOfTerm_[k].assign(
        k == 0   ? topology_.bonds.size()
        : k == 1 ? topology_.angles.size()
                 : topology_.dihedrals.size(),
        0);

  // Current position of every atom (for placement decisions).
  std::vector<Vec3> pos(charges_.size());
  for (const NodeState& ns : nodes_)
    for (const AtomRecord& a : ns.atoms) pos[std::size_t(a.gid)] = a.pos;

  auto assign = [&](TermRef::Kind kind, int index, int firstAtom,
                    std::initializer_list<int> atoms) {
    int node = ownerOf(pos[std::size_t(firstAtom)]);
    bondNodeOfTerm_[kind][std::size_t(index)] = node;
    termsOnNode_[std::size_t(node)].push_back({kind, index});
    for (int a : atoms) {
      auto [it, inserted] = bondAtomSlot_[std::size_t(node)].try_emplace(
          a, int(bondAtomSlot_[std::size_t(node)].size()));
      if (inserted) atomTermNodes_[std::size_t(a)].push_back(node);
    }
  };
  for (int i = 0; i < int(topology_.bonds.size()); ++i) {
    const Bond& b = topology_.bonds[std::size_t(i)];
    assign(TermRef::kBond, i, b.i, {b.i, b.j});
  }
  for (int i = 0; i < int(topology_.angles.size()); ++i) {
    const Angle& a = topology_.angles[std::size_t(i)];
    assign(TermRef::kAngle, i, a.j, {a.i, a.j, a.k});
  }
  for (int i = 0; i < int(topology_.dihedrals.size()); ++i) {
    const Dihedral& d = topology_.dihedrals[std::size_t(i)];
    assign(TermRef::kDihedral, i, d.j, {d.i, d.j, d.k, d.l});
  }
  for (auto& list : atomTermNodes_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

void AntonMdApp::regenerateBondProgram() {
  buildBondProgram();
}

void AntonMdApp::syntheticDiffusion(double swapFraction,
                                    std::uint64_t seed) {
  // Lazily derive the solvent molecules from the bond topology (connected
  // components of at most 4 atoms; the protein chain is one big component).
  if (solventMolecules_.empty()) {
    std::vector<int> parent(charges_.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = int(i);
    std::function<int(int)> find = [&](int x) {
      while (parent[std::size_t(x)] != x) {
        parent[std::size_t(x)] = parent[std::size_t(parent[std::size_t(x)])];
        x = parent[std::size_t(x)];
      }
      return x;
    };
    for (const Bond& b : topology_.bonds) parent[std::size_t(find(b.i))] = find(b.j);
    std::map<int, std::vector<int>> comps;
    for (std::size_t i = 0; i < parent.size(); ++i)
      comps[find(int(i))].push_back(int(i));
    for (auto& [root, atoms] : comps)
      if (atoms.size() <= 4) solventMolecules_.push_back(atoms);
  }

  // Current position of every atom.
  std::vector<Vec3> pos(charges_.size());
  std::vector<Vec3> vel(charges_.size());
  for (const NodeState& ns : nodes_) {
    for (const AtomRecord& a : ns.atoms) {
      pos[std::size_t(a.gid)] = a.pos;
      vel[std::size_t(a.gid)] = a.vel;
    }
  }

  MDSystem tmp;
  tmp.box = box_;
  // Anchor on the first (center) atom: swapping translates molecule A's
  // center exactly onto B's center position and vice versa, so the
  // center-center liquid packing is preserved and no LJ cores overlap.
  auto anchor = [&](const std::vector<int>& mol) {
    return pos[std::size_t(mol[0])];
  };

  sim::Rng rng(seed);
  const std::size_t m = solventMolecules_.size();
  const double rmax = 0.6 * std::min({box_.x, box_.y, box_.z});
  std::size_t swaps = std::size_t(swapFraction * double(m) / 2.0);
  for (std::size_t s = 0; s < swaps; ++s) {
    const auto& a = solventMolecules_[rng.below(m)];
    Vec3 ca = anchor(a);
    // Partner: a nearby molecule (localized diffusion).
    const std::vector<int>* b = nullptr;
    for (int tries = 0; tries < 64 && b == nullptr; ++tries) {
      const auto& cand = solventMolecules_[rng.below(m)];
      if (&cand == &a) continue;
      if (tmp.minImage(ca, anchor(cand)).norm() < rmax) b = &cand;
    }
    if (b == nullptr) continue;
    Vec3 delta = tmp.minImage(ca, anchor(*b));
    for (int g : a) pos[std::size_t(g)] = tmp.wrap(pos[std::size_t(g)] + delta);
    for (int g : *b) pos[std::size_t(g)] = tmp.wrap(pos[std::size_t(g)] - delta);
  }

  // Fast-forward the home-box reassignment migration would have done.
  for (NodeState& ns : nodes_) ns.atoms.clear();
  for (std::size_t g = 0; g < pos.size(); ++g) {
    nodes_[std::size_t(ownerOf(pos[g]))].atoms.push_back(
        {int(g), pos[g], vel[g]});
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeState& ns = nodes_[n];
    std::sort(ns.atoms.begin(), ns.atoms.end(),
              [](const AtomRecord& a, const AtomRecord& b) { return a.gid < b.gid; });
    if (int(ns.atoms.size()) > posFixed_[n])
      throw std::runtime_error(
          "synthetic diffusion overflowed the fixed packet provisioning "
          "(raise packetHeadroom)");
    ns.forces.assign(ns.atoms.size(), Vec3{});
    if (!lrForce_.empty()) lrForce_[n].assign(ns.atoms.size(), Vec3{});
  }
  computeInitialForces();
}

double AntonMdApp::averageBondHops() const {
  std::uint64_t hops = 0, count = 0;
  for (int node = 0; node < machine_.numNodes(); ++node) {
    for (const AtomRecord& a : nodes_[std::size_t(node)].atoms) {
      for (int t : atomTermNodes_[std::size_t(a.gid)]) {
        hops += std::uint64_t(machine_.hops(node, t));
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : double(hops) / double(count);
}

void AntonMdApp::computeInitialForces() {
  // Host-side bootstrap: the very first F(t=0), computed with the same
  // kernels the distributed step uses (the paper's machine loads a prepared
  // checkpoint the same way).
  MDSystem sys = gatherSystem();
  std::vector<Vec3> f(std::size_t(sys.numAtoms()));
  bondedForces(sys, f);
  rangeLimitedForces(sys, cfg_.force, f);
  ewald_->energyAndForces(sys, f);
  for (int node = 0; node < machine_.numNodes(); ++node) {
    NodeState& ns = nodes_[std::size_t(node)];
    for (std::size_t i = 0; i < ns.atoms.size(); ++i)
      ns.forces[i] = f[std::size_t(ns.atoms[i].gid)];
  }
}

MDSystem AntonMdApp::gatherSystem() const {
  MDSystem sys;
  sys.box = box_;
  sys.bonds = topology_.bonds;
  sys.angles = topology_.angles;
  sys.dihedrals = topology_.dihedrals;
  sys.charges = charges_;
  sys.masses = masses_;
  sys.ljStrength = ljStrength_;
  sys.positions.resize(charges_.size());
  sys.velocities.resize(charges_.size());
  for (const NodeState& ns : nodes_) {
    for (const AtomRecord& a : ns.atoms) {
      sys.positions[std::size_t(a.gid)] = a.pos;
      sys.velocities[std::size_t(a.gid)] = a.vel;
    }
  }
  return sys;
}

// --- per-step choreography ---------------------------------------------------

void AntonMdApp::zeroForceSlots(int node) {
  std::vector<std::byte> zeros(std::size_t(fixedPosPackets_) * 12, std::byte{0});
  machine_.accum(node, 0).hostWrite(0, zeros.data(), zeros.size());
}

sim::Task AntonMdApp::sendPositions(int node) {
  NodeState& ns = nodes_[std::size_t(node)];
  net::ProcessingSlice& slice0 = machine_.slice(node, 0);

  // (a) Fixed-count fine-grained multicast to the import-region HTIS units.
  for (int slot = 0; slot < posFixed_[std::size_t(node)]; ++slot) {
    PosRecord rec;
    if (slot < int(ns.atoms.size())) {
      const AtomRecord& a = ns.atoms[std::size_t(slot)];
      rec.gid = a.gid;
      rec.homeAndSlot = node * 65536 + slot;
      rec.x = a.pos.x;
      rec.y = a.pos.y;
      rec.z = a.pos.z;
    } else {
      rec.gid = -1;  // padding to the fixed worst-case count
      rec.homeAndSlot = node * 65536 + slot;
    }
    net::NetworkClient::SendArgs args;
    args.multicastPattern = posPattern_[std::size_t(node)];
    args.counterId = cfg_.ctrPos;
    args.address = posSlotAddr(node, slot);
    args.payload = net::makePayload(&rec, sizeof rec);
    co_await slice0.send(args);
  }

  // (b) Bond-program positions: unicast counted writes, exact counts.
  for (std::size_t i = 0; i < ns.atoms.size(); ++i) {
    const AtomRecord& a = ns.atoms[i];
    for (int t : atomTermNodes_[std::size_t(a.gid)]) {
      PosRecord rec;
      rec.gid = a.gid;
      rec.homeAndSlot = node * 65536 + int(i);
      rec.x = a.pos.x;
      rec.y = a.pos.y;
      rec.z = a.pos.z;
      net::NetworkClient::SendArgs args;
      args.dst = {t, net::kSlice0};
      args.counterId = cfg_.ctrBondPos;
      args.address = 0x8000u + std::uint32_t(bondAtomSlot_[std::size_t(t)]
                                                 .at(a.gid)) *
                                   32u;
      args.payload = net::makePayload(&rec, sizeof rec);
      co_await slice0.send(args);
    }
  }
}

sim::Task AntonMdApp::htisPhase(int node) {
  NodeState& ns = nodes_[std::size_t(node)];
  net::Htis& htis = machine_.htis(node);
  sim::Time phaseStart = machine_.sim().now();

  // Wait for the fixed position-packet count from every import source.
  std::uint64_t perRound = std::uint64_t(posFixed_[std::size_t(node)]);
  for (int s : lowerShell_[std::size_t(node)])
    perRound += std::uint64_t(posFixed_[std::size_t(s)]);
  ns.posRounds += 1;
  {
    // Per-source cumulative expectation: fixed counts make it a product.
    std::map<int, std::uint64_t> bySource;
    bySource[node] = ns.posRounds * std::uint64_t(posFixed_[std::size_t(node)]);
    for (int s : lowerShell_[std::size_t(node)])
      bySource[s] = ns.posRounds * std::uint64_t(posFixed_[std::size_t(s)]);
    co_await awaitRecoverable(htis, cfg_.ctrPos, ns.posRounds * perRound,
                              bySource);
  }

  // Decode the arrived records per source.
  std::vector<int> sources;
  sources.push_back(node);
  for (int s : lowerShell_[std::size_t(node)]) sources.push_back(s);
  struct Import {
    std::vector<PosRecord> recs;  // slot-indexed, padding kept
  };
  std::vector<Import> imports(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    imports[s].recs.resize(std::size_t(posFixed_[std::size_t(sources[s])]));
    for (int slot = 0; slot < posFixed_[std::size_t(sources[s])]; ++slot) {
      imports[s].recs[std::size_t(slot)] =
          htis.read<PosRecord>(posSlotAddr(sources[s], slot));
    }
  }

  // Pair computation (half-shell rule): home atoms against home (i<j by
  // gid) and against every imported atom. Forces per (source, slot).
  std::vector<std::vector<Vec3>> forceOut(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s)
    forceOut[s].assign(std::size_t(posFixed_[std::size_t(sources[s])]), Vec3{});
  std::uint64_t pairs = 0;

  const std::vector<PosRecord>& home = imports[0].recs;
  MDSystem tmp;
  tmp.box = box_;
  for (int i = 0; i < int(home.size()); ++i) {
    const PosRecord& a = home[std::size_t(i)];
    if (a.gid < 0) continue;
    Vec3 pa{a.x, a.y, a.z};
    for (std::size_t s = 0; s < sources.size(); ++s) {
      for (int j = (s == 0 ? i + 1 : 0); j < int(imports[s].recs.size()); ++j) {
        const PosRecord& b = imports[s].recs[std::size_t(j)];
        if (b.gid < 0) continue;
        Vec3 d = tmp.minImage(pa, Vec3{b.x, b.y, b.z});
        if (d.norm2() >= cfg_.force.cutoff * cfg_.force.cutoff) continue;
        PairForce pf = rangeLimitedPair(
            d, charges_[std::size_t(a.gid)], charges_[std::size_t(b.gid)],
            cfg_.force,
            (ljStrength_.empty() ? 1.0
                                 : ljStrength_[std::size_t(a.gid)] *
                                       ljStrength_[std::size_t(b.gid)]));
        forceOut[0][std::size_t(i)] += pf.onI;
        forceOut[s][std::size_t(j)] -= pf.onI;
        ++pairs;
      }
    }
  }

  // Pipelined compute: charge the HTIS for the pair work.
  co_await machine_.sim().delay(sim::ns(cfg_.htisPairNs * double(pairs)));

  // Stream the fixed-count force returns (zero packets for padding slots)
  // to the home accumulation memories. The HTIS pipelines packet creation,
  // so packets are posted on a streaming cadence rather than co_awaited.
  sim::Time spacing = sim::ns(cfg_.htisStreamNs);
  int k = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (int slot = 0; slot < posFixed_[std::size_t(sources[s])]; ++slot, ++k) {
      std::int32_t q[3] = {quantize(forceOut[s][std::size_t(slot)].x),
                           quantize(forceOut[s][std::size_t(slot)].y),
                           quantize(forceOut[s][std::size_t(slot)].z)};
      net::NetworkClient::SendArgs args;
      args.type = net::PacketType::kAccum;
      args.dst = {sources[s], net::kAccum0};
      args.counterId = cfg_.ctrForce;
      args.address = forceSlotAddr(slot);
      args.payload = net::makePayload(q, sizeof q);
      machine_.sim().after(spacing * k, [&htis, args] { htis.post(args); });
    }
  }
  co_await machine_.sim().delay(spacing * k);
  stage(node).htisUs = std::max(
      stage(node).htisUs, sim::toUs(machine_.sim().now() - phaseStart));
  if (auto* tr = machine_.trace())
    tr->record("HTIS", "range-limited", phaseStart, machine_.sim().now());
}

sim::Task AntonMdApp::bondedPhase(int node) {
  NodeState& ns = nodes_[std::size_t(node)];
  net::ProcessingSlice& slice0 = machine_.slice(node, 0);
  const auto& slots = bondAtomSlot_[std::size_t(node)];
  sim::Time phaseStart = machine_.sim().now();

  if (!slots.empty()) {
    ns.bondPosExpected += slots.size();
    std::map<int, std::uint64_t> bySource;
    if (dropRegistry_) {
      // Each gathered atom is sent once per step by its current home node.
      for (const auto& [gid, slot] : slots)
        ++ns.bondPosBySource[homeOfGid_[std::size_t(gid)]];
      bySource = ns.bondPosBySource;
    }
    co_await awaitRecoverable(slice0, cfg_.ctrBondPos, ns.bondPosExpected,
                              bySource);
  }

  // Read the gathered positions and evaluate the assigned terms on the
  // geometry cores.
  std::map<int, PosRecord> atomRec;
  for (const auto& [gid, slot] : slots) {
    atomRec[gid] = slice0.read<PosRecord>(0x8000u + std::uint32_t(slot) * 32u);
  }
  std::map<int, Vec3> force;  // per gid
  double gcNs = 0.0;

  MDSystem tmp;
  tmp.box = box_;
  auto posOf = [&](int gid) {
    const PosRecord& r = atomRec.at(gid);
    return Vec3{r.x, r.y, r.z};
  };
  for (const TermRef& t : termsOnNode_[std::size_t(node)]) {
    if (t.kind == TermRef::kBond) {
      const Bond& b = topology_.bonds[std::size_t(t.index)];
      tmp.positions = {posOf(b.i), posOf(b.j)};
      std::vector<Vec3> f(2);
      bondForce(tmp, Bond{0, 1, b.r0, b.k}, f);
      force[b.i] += f[0];
      force[b.j] += f[1];
      gcNs += cfg_.gcBondNs;
    } else if (t.kind == TermRef::kAngle) {
      const Angle& a = topology_.angles[std::size_t(t.index)];
      tmp.positions = {posOf(a.i), posOf(a.j), posOf(a.k)};
      std::vector<Vec3> f(3);
      angleForce(tmp, Angle{0, 1, 2, a.theta0, a.kTheta}, f);
      force[a.i] += f[0];
      force[a.j] += f[1];
      force[a.k] += f[2];
      gcNs += cfg_.gcAngleNs;
    } else {
      const Dihedral& d = topology_.dihedrals[std::size_t(t.index)];
      tmp.positions = {posOf(d.i), posOf(d.j), posOf(d.k), posOf(d.l)};
      std::vector<Vec3> f(4);
      dihedralForce(tmp, Dihedral{0, 1, 2, 3, d.kPhi, d.n, d.phi0}, f);
      force[d.i] += f[0];
      force[d.j] += f[1];
      force[d.k] += f[2];
      force[d.l] += f[3];
      gcNs += cfg_.gcDihedralNs;
    }
  }
  co_await machine_.sim().delay(sim::ns(gcNs));

  // One aggregated fixed-point accumulation packet per (atom, this node).
  for (const auto& [gid, f] : force) {
    const PosRecord& r = atomRec.at(gid);
    std::int32_t q[3] = {quantize(f.x), quantize(f.y), quantize(f.z)};
    net::NetworkClient::SendArgs args;
    args.type = net::PacketType::kAccum;
    args.dst = {r.homeNode(), net::kAccum0};
    args.counterId = cfg_.ctrForce;
    args.address = forceSlotAddr(r.slot());
    args.payload = net::makePayload(q, sizeof q);
    co_await slice0.send(args);
  }
  stage(node).bondedUs = std::max(
      stage(node).bondedUs, sim::toUs(machine_.sim().now() - phaseStart));
  if (auto* tr = machine_.trace())
    tr->record("GC", "bonded", phaseStart, machine_.sim().now());
}

sim::Task AntonMdApp::longRangePhase(int node) {
  NodeState& ns = nodes_[std::size_t(node)];
  net::ProcessingSlice& slice1 = machine_.slice(node, 1);
  net::AccumulationMemory& gridMem = machine_.accum(node, 1);
  const int K = cfg_.ewald.grid;
  const int bsz[3] = {fft_->blockExtent(0), fft_->blockExtent(1),
                      fft_->blockExtent(2)};
  const std::size_t blockPts = fft_->blockSize();
  const util::TorusCoord myCoord = util::torusCoordOf(node, shape_);

  sim::Time phaseStart = machine_.sim().now();
  const int parity = int(ns.gridRounds % 2);
  const std::uint32_t gridBase =
      std::uint32_t(parity) * std::uint32_t(blockPts) * 4u;

  // --- charge spreading: dense fixed-count accumulation sends -------------
  // Compute this node's contribution to each neighborhood block.
  std::vector<int> targets;
  targets.push_back(node);
  for (int nb : core::torusNeighborhood26(shape_, node)) targets.push_back(nb);
  std::map<int, std::vector<std::int32_t>> contrib;
  for (int t : targets) contrib[t].assign(blockPts, 0);

  MDSystem tmp;
  tmp.box = box_;
  for (const AtomRecord& a : ns.atoms) {
    Vec3 p = tmp.wrap(a.pos);
    SplineStencil sx = splineStencil(p.x / box_.x * K, K);
    SplineStencil sy = splineStencil(p.y / box_.y * K, K);
    SplineStencil sz = splineStencil(p.z / box_.z * K, K);
    double q = charges_[std::size_t(a.gid)];
    for (int ia = 0; ia < 4; ++ia)
      for (int ib = 0; ib < 4; ++ib)
        for (int ic = 0; ic < 4; ++ic) {
          int gx = sx.points[std::size_t(ia)];
          int gy = sy.points[std::size_t(ib)];
          int gz = sz.points[std::size_t(ic)];
          int owner = util::torusIndex(
              {gx / bsz[0], gy / bsz[1], gz / bsz[2]}, shape_);
          auto it = contrib.find(owner);
          if (it == contrib.end())
            throw std::logic_error("atom strayed beyond the spread halo");
          std::size_t local =
              std::size_t(gx % bsz[0]) +
              std::size_t(bsz[0]) * (std::size_t(gy % bsz[1]) +
                                     std::size_t(bsz[1]) * std::size_t(gz % bsz[2]));
          it->second[local] += quantize(q * sx.w[std::size_t(ia)] *
                                        sy.w[std::size_t(ib)] *
                                        sz.w[std::size_t(ic)]);
        }
  }
  co_await machine_.sim().delay(
      sim::ns(cfg_.spreadAtomNs * double(ns.atoms.size())));

  // Dense block sends (zero-padded): fixed packet counts per pair.
  const std::size_t blockBytes = blockPts * 4;
  const std::size_t chunk = net::kMaxPayloadBytes;
  for (int t : targets) {
    const std::vector<std::int32_t>& block = contrib[t];
    for (std::size_t off = 0; off < blockBytes; off += chunk) {
      std::size_t nbytes = std::min(chunk, blockBytes - off);
      net::NetworkClient::SendArgs args;
      args.type = net::PacketType::kAccum;
      args.dst = {t, net::kAccum1};
      args.counterId = cfg_.ctrGrid;
      args.address = gridBase + std::uint32_t(off);
      args.payload = net::makePayload(
          reinterpret_cast<const std::byte*>(block.data()) + off, nbytes);
      co_await slice1.send(args);
    }
  }

  // --- gather the accumulated charge grid ---------------------------------
  // The counter lives on the accumulation memory; polling it from the slice
  // crosses the on-chip ring (higher poll latency, SC10 §III-B).
  ns.gridRounds += 1;
  {
    // Every neighborhood peer (and this node itself) owes one fixed dense
    // block per long-range round, so the per-source breakdown is uniform;
    // armed, a timed-out wait names the short sender and replays its
    // dropped chunks from the registry.
    std::map<int, std::uint64_t> gridBySource;
    if (dropRegistry_) {
      const std::uint64_t gridPacketsPerBlock =
          (blockBytes + chunk - 1) / chunk;
      for (int t : targets)
        gridBySource[t] = ns.gridRounds * gridPacketsPerBlock;
    }
    co_await awaitRecoverable(gridMem, cfg_.ctrGrid,
                              gridExpected_ * ns.gridRounds, gridBySource);
  }

  std::vector<fft::Complex>& homeBlk = fft_->home(node);
  for (std::size_t i = 0; i < blockPts; ++i) {
    homeBlk[i] = {dequantize(gridMem.read<std::int32_t>(
                      gridBase + std::uint32_t(i) * 4u)),
                  0.0};
  }
  // Re-zero this parity copy for its next use two long-range rounds ahead.
  {
    std::vector<std::byte> zeros(blockBytes, std::byte{0});
    gridMem.hostWrite(gridBase, zeros.data(), zeros.size());
  }

  // --- FFT -> influence multiply -> inverse FFT ----------------------------
  sim::Time fftStart = machine_.sim().now();
  co_await fft_->run(node, false);
  const double k3 = double(K) * double(K) * double(K);
  for (std::size_t i = 0; i < blockPts; ++i) {
    auto [m1, m2, m3] = fft_->globalCoord(node, i);
    homeBlk[i] *= ewald_->influence(m1, m2, m3) * k3;
  }
  co_await fft_->run(node, true);
  stage(node).fftUs = std::max(stage(node).fftUs,
                               sim::toUs(machine_.sim().now() - fftStart));

  // --- potential halo: multicast my block to the 26-neighborhood ----------
  const int potParity = int(ns.potRounds % 2);
  const std::size_t potBlockBytes = blockPts * 8;  // doubles
  const std::uint32_t potRegion =
      std::uint32_t(posRegionMod_) * std::uint32_t(potBlockBytes);
  const std::uint32_t potBase = std::uint32_t(potParity) * potRegion;
  std::vector<double> phi(blockPts);
  for (std::size_t i = 0; i < blockPts; ++i) phi[i] = homeBlk[i].real();
  for (std::size_t off = 0; off < potBlockBytes; off += chunk) {
    std::size_t nbytes = std::min(chunk, potBlockBytes - off);
    net::NetworkClient::SendArgs args;
    args.multicastPattern = potPattern_[std::size_t(node)];
    args.counterId = cfg_.ctrPot;
    args.address = potBase +
                   std::uint32_t(node % posRegionMod_) *
                       std::uint32_t(potBlockBytes) +
                   std::uint32_t(off);
    args.payload = net::makePayload(
        reinterpret_cast<const std::byte*>(phi.data()) + off, nbytes);
    co_await slice1.send(args);
  }

  const std::uint64_t potPacketsPerBlock = (potBlockBytes + chunk - 1) / chunk;
  ns.potRounds += 1;
  {
    // Same symmetric neighborhood as the grid wait: each peer multicasts
    // its potential block at a fixed packet count per round.
    std::map<int, std::uint64_t> potBySource;
    if (dropRegistry_) {
      for (int t : targets)
        potBySource[t] = ns.potRounds * potPacketsPerBlock;
    }
    co_await awaitRecoverable(
        slice1, cfg_.ctrPot,
        ns.potRounds * std::uint64_t(targets.size()) * potPacketsPerBlock,
        potBySource);
  }

  // --- force interpolation -------------------------------------------------
  // Read phi at arbitrary stencil points from the assembled halo regions.
  auto phiAt = [&](int gx, int gy, int gz) {
    int ox = gx / bsz[0], oy = gy / bsz[1], oz = gz / bsz[2];
    int owner = util::torusIndex({ox, oy, oz}, shape_);
    std::size_t local =
        std::size_t(gx % bsz[0]) +
        std::size_t(bsz[0]) * (std::size_t(gy % bsz[1]) +
                               std::size_t(bsz[1]) * std::size_t(gz % bsz[2]));
    std::uint32_t addr = potBase +
                         std::uint32_t(owner % posRegionMod_) *
                             std::uint32_t(potBlockBytes) +
                         std::uint32_t(local) * 8u;
    return slice1.read<double>(addr);
  };
  (void)myCoord;

  for (std::size_t i = 0; i < ns.atoms.size(); ++i) {
    const AtomRecord& a = ns.atoms[i];
    Vec3 p = tmp.wrap(a.pos);
    SplineStencil sx = splineStencil(p.x / box_.x * K, K);
    SplineStencil sy = splineStencil(p.y / box_.y * K, K);
    SplineStencil sz = splineStencil(p.z / box_.z * K, K);
    double q = charges_[std::size_t(a.gid)];
    Vec3 grad;
    for (int ia = 0; ia < 4; ++ia)
      for (int ib = 0; ib < 4; ++ib)
        for (int ic = 0; ic < 4; ++ic) {
          double v = phiAt(sx.points[std::size_t(ia)],
                           sy.points[std::size_t(ib)],
                           sz.points[std::size_t(ic)]);
          grad.x += sx.dw[std::size_t(ia)] * sy.w[std::size_t(ib)] *
                    sz.w[std::size_t(ic)] * v;
          grad.y += sx.w[std::size_t(ia)] * sy.dw[std::size_t(ib)] *
                    sz.w[std::size_t(ic)] * v;
          grad.z += sx.w[std::size_t(ia)] * sy.w[std::size_t(ib)] *
                    sz.dw[std::size_t(ic)] * v;
        }
    Vec3 f = -q * Vec3{grad.x * K / box_.x, grad.y * K / box_.y,
                       grad.z * K / box_.z};
    lrForce_[std::size_t(node)][i] = f;
  }
  co_await machine_.sim().delay(
      sim::ns(cfg_.interpAtomNs * double(ns.atoms.size())));

  // Fixed-count self accumulation of the interpolated forces.
  for (int slot = 0; slot < posFixed_[std::size_t(node)]; ++slot) {
    Vec3 f = slot < int(ns.atoms.size())
                 ? lrForce_[std::size_t(node)][std::size_t(slot)]
                 : Vec3{};
    std::int32_t q[3] = {quantize(f.x), quantize(f.y), quantize(f.z)};
    net::NetworkClient::SendArgs args;
    args.type = net::PacketType::kAccum;
    args.dst = {node, net::kAccum0};
    args.counterId = cfg_.ctrForce;
    args.address = forceSlotAddr(slot);
    args.payload = net::makePayload(q, sizeof q);
    co_await slice1.send(args);
  }
  stage(node).lrUs = std::max(
      stage(node).lrUs, sim::toUs(machine_.sim().now() - phaseStart));
  if (auto* tr = machine_.trace())
    tr->record("FFT/LR", "fft-convolution", phaseStart, machine_.sim().now());
}

sim::Task AntonMdApp::migrationPhase(int node) {
  NodeState& ns = nodes_[std::size_t(node)];
  net::ProcessingSlice& slice0 = machine_.slice(node, 0);
  sim::Time migStart = machine_.sim().now();

  // Outbound: atoms that left the relaxed home box go to the FIFO of the
  // new owner (stochastic: no counted writes possible, SC10 §IV-B5).
  MDSystem tmp;
  tmp.box = box_;
  std::vector<AtomRecord> keep;
  int sent = 0;
  for (const AtomRecord& a : ns.atoms) {
    if (insideRelaxedBox(node, a.pos)) {
      keep.push_back(a);
      continue;
    }
    int owner = ownerOf(a.pos);
    if (owner == node) {  // wrapped back into our own box
      keep.push_back(a);
      continue;
    }
    MigRecord rec{a.gid, 0, a.pos.x, a.pos.y, a.pos.z,
                  a.vel.x, a.vel.y, a.vel.z};
    net::NetworkClient::SendArgs args;
    args.type = net::PacketType::kFifo;
    args.dst = {owner, net::kSlice0};
    args.inOrder = true;
    args.payload = net::makePayload(&rec, sizeof rec);
    co_await slice0.send(args);
    ++sent;
  }
  ns.atoms = std::move(keep);
  migratedStage_[std::size_t(node)] += std::uint64_t(sent);

  // Flush: in-order counted write to all 26 neighbors, then wait for all
  // neighbors' flushes and drain the FIFO.
  co_await migrationSync_->signalAndCharge(node);
  ns.flushRounds += 1;
  {
    // The flush counter lives on slice 0 (migrationSync_'s target client);
    // armed, a dropped flush packet is diagnosed and replayed instead of
    // hanging every neighbor's drain. The FIFO records the flush fences
    // remain uncounted — a dropped migration payload is the one lane
    // recovery cannot cover (see DESIGN.md §7).
    std::map<int, std::uint64_t> flushBySource;
    if (dropRegistry_) {
      for (int nb : migrationSync_->neighbors(node))
        flushBySource[nb] = ns.flushRounds;
    }
    co_await awaitRecoverable(
        slice0, migrationSync_->counterId(),
        ns.flushRounds * migrationSync_->expectedPerRound(node),
        flushBySource);
  }

  int received = 0;
  while (net::PacketPtr p = slice0.pollFifo()) {
    MigRecord rec;
    std::memcpy(&rec, p->payload->data(), sizeof rec);
    ns.atoms.push_back({rec.gid, Vec3{rec.px, rec.py, rec.pz},
                        Vec3{rec.vx, rec.vy, rec.vz}});
    ++received;
  }
  std::sort(ns.atoms.begin(), ns.atoms.end(),
            [](const AtomRecord& a, const AtomRecord& b) { return a.gid < b.gid; });
  if (int(ns.atoms.size()) > posFixed_[std::size_t(node)])
    throw std::runtime_error(
        "home box overflow: atoms exceed the fixed packet provisioning "
        "(raise packetHeadroom)");
  ns.forces.assign(ns.atoms.size(), Vec3{});
  lrForce_[std::size_t(node)].assign(ns.atoms.size(), Vec3{});

  // Bookkeeping: slot tables and counted-write expectations are rebuilt.
  co_await machine_.sim().delay(
      sim::ns(cfg_.migrateAtomNs * double(sent + received) + 200.0));
  stage(node).migrationUs = std::max(
      stage(node).migrationUs, sim::toUs(machine_.sim().now() - migStart));
}

sim::Task AntonMdApp::stepTask(int node, int stepNumber) {
  NodeState& ns = nodes_[std::size_t(node)];
  const bool longRangeStep = stepNumber % cfg_.longRangeInterval == 0;
  const bool thermoStep = cfg_.thermostatTau > 0.0 &&
                          stepNumber % cfg_.thermostatInterval == 0;
  const bool migrationStep = stepNumber % cfg_.migrationInterval == 0;

  // 1. First half-kick + drift (slice integration work).
  for (std::size_t i = 0; i < ns.atoms.size(); ++i) {
    AtomRecord& a = ns.atoms[i];
    a.vel += (0.5 * cfg_.dt / masses_[std::size_t(a.gid)]) * ns.forces[i];
    MDSystem tmp;
    tmp.box = box_;
    a.pos = tmp.wrap(a.pos + cfg_.dt * a.vel);
  }
  co_await machine_.sim().delay(
      sim::ns(cfg_.integrateAtomNs * double(ns.atoms.size())));

  // 2. Prepare receive-side state, then push positions (their arrival is
  // what triggers every force packet aimed at this node).
  zeroForceSlots(node);
  lrForce_[std::size_t(node)].assign(ns.atoms.size(), Vec3{});
  sim::Time sendStart = machine_.sim().now();
  co_await sendPositions(node);
  stage(node).posSendUs = std::max(
      stage(node).posSendUs, sim::toUs(machine_.sim().now() - sendStart));
  if (auto* tr = machine_.trace())
    tr->record("TS", "position-send", sendStart, machine_.sim().now());

  // This step's force-packet expectation (counters are cumulative).
  std::uint64_t expect =
      std::uint64_t(1 + upperShell_[std::size_t(node)].size()) *
      std::uint64_t(posFixed_[std::size_t(node)]);
  for (const AtomRecord& a : ns.atoms)
    expect += atomTermNodes_[std::size_t(a.gid)].size();
  if (longRangeStep) expect += std::uint64_t(posFixed_[std::size_t(node)]);
  ns.forceExpected += expect;
  if (dropRegistry_) {
    // Per-source breakdown of the same expectation: HTIS force returns come
    // from this node and every upper-shell importer (fixed count each),
    // bonded returns from each term node (one per gathered atom), and the
    // long-range self-accumulation from this node again.
    auto& fbs = ns.forceBySource;
    fbs[node] += std::uint64_t(posFixed_[std::size_t(node)]);
    for (int u : upperShell_[std::size_t(node)])
      fbs[u] += std::uint64_t(posFixed_[std::size_t(node)]);
    for (const AtomRecord& a : ns.atoms)
      for (int t : atomTermNodes_[std::size_t(a.gid)]) fbs[t] += 1;
    if (longRangeStep) fbs[node] += std::uint64_t(posFixed_[std::size_t(node)]);
  }

  // 3. Concurrent hardware phases.
  sim::Gate gate;
  gate.spawn(machine_.sim(), htisPhase(node));
  gate.spawn(machine_.sim(), bondedPhase(node));
  if (longRangeStep) gate.spawn(machine_.sim(), longRangePhase(node));
  co_await gate.wait();

  // 4. Integration: wait for every expected force packet, read, half-kick.
  net::AccumulationMemory& acc = machine_.accum(node, 0);
  sim::Time waitStart = machine_.sim().now();
  static const std::map<int, std::uint64_t> kNoSources;
  co_await awaitRecoverable(
      acc, cfg_.ctrForce, ns.forceExpected,
      dropRegistry_ ? ns.forceBySource : kNoSources);
  stage(node).forceWaitUs = std::max(
      stage(node).forceWaitUs, sim::toUs(machine_.sim().now() - waitStart));
  if (auto* tr = machine_.trace())
    tr->record("TS", "wait-forces", waitStart, machine_.sim().now());
  for (std::size_t i = 0; i < ns.atoms.size(); ++i) {
    std::uint32_t base = forceSlotAddr(int(i));
    Vec3 f{dequantize(acc.read<std::int32_t>(base)),
           dequantize(acc.read<std::int32_t>(base + 4)),
           dequantize(acc.read<std::int32_t>(base + 8))};
    ns.forces[i] = f;
    ns.atoms[i].vel +=
        (0.5 * cfg_.dt / masses_[std::size_t(ns.atoms[i].gid)]) * f;
  }
  co_await machine_.sim().delay(
      sim::ns(cfg_.integrateAtomNs * double(ns.atoms.size())));

  // 5. Thermostat: 32-byte dimension-ordered all-reduce (SC10 §IV-B4).
  if (thermoStep) {
    sim::Time tStart = machine_.sim().now();
    double ke = 0.0;
    for (const AtomRecord& a : ns.atoms)
      ke += 0.5 * masses_[std::size_t(a.gid)] * a.vel.norm2();
    std::vector<double> in(4);
    in[0] = ke;
    in[1] = double(ns.atoms.size());
    std::vector<double> out;
    co_await allReduce_->run(node, std::move(in), &out);
    double totalAtoms = out[1];
    double t = 2.0 * out[0] / (3.0 * totalAtoms);
    if (t > 0.0) {
      double lambda = std::sqrt(1.0 + cfg_.dt / cfg_.thermostatTau *
                                          (cfg_.targetTemperature / t - 1.0));
      for (AtomRecord& a : ns.atoms) a.vel *= lambda;
    }
    stage(node).thermostatUs = std::max(
        stage(node).thermostatUs, sim::toUs(machine_.sim().now() - tStart));
    if (auto* tr = machine_.trace())
      tr->record("TS", "global-reduction", tStart, machine_.sim().now());
  }

  // 6. Migration phase (relaxed boxes make this infrequent, SC10 Fig. 12).
  if (migrationStep) co_await migrationPhase(node);
}

void AntonMdApp::runSteps(int k) {
  lrForce_.resize(std::size_t(machine_.numNodes()));
  for (int node = 0; node < machine_.numNodes(); ++node)
    lrForce_[std::size_t(node)].assign(nodes_[std::size_t(node)].atoms.size(),
                                       Vec3{});
  // Precompute the fixed grid-packet expectation (identical on every node:
  // 27-neighborhood dense block sends).
  const std::size_t blockBytes = fft_->blockSize() * 4;
  const std::uint64_t packetsPerBlock =
      (blockBytes + net::kMaxPayloadBytes - 1) / net::kMaxPayloadBytes;
  gridExpected_ =
      std::uint64_t(1 + core::torusNeighborhood26(shape_, 0).size()) *
      packetsPerBlock;

  for (int s = 0; s < k; ++s) {
    const int stepNumber = stepsDone_ + 1;
    current_ = StepTiming{};
    current_.stepNumber = stepNumber;
    current_.longRange = stepNumber % cfg_.longRangeInterval == 0;
    current_.thermostat = cfg_.thermostatTau > 0.0 &&
                          stepNumber % cfg_.thermostatInterval == 0;
    current_.migration = stepNumber % cfg_.migrationInterval == 0;
    lastMigrated_ = migratedTotal_;

    if (dropRegistry_) {
      // Refresh the gid -> home map (bonded receivers diagnose short senders
      // by home node) and discard replay entries from completed steps.
      homeOfGid_.assign(charges_.size(), -1);
      for (int node = 0; node < machine_.numNodes(); ++node)
        for (const AtomRecord& a : nodes_[std::size_t(node)].atoms)
          homeOfGid_[std::size_t(a.gid)] = node;
      dropRegistry_->prune(machine_.sim().now());
    }

    stepStage_.assign(std::size_t(machine_.numNodes()), StepTiming{});
    migratedStage_.assign(std::size_t(machine_.numNodes()), 0);

    sim::Time start = machine_.sim().now();
    for (int node = 0; node < machine_.numNodes(); ++node) {
      // The affinity hint pins the task's event chain to the node's shard
      // under sharded mode (a no-op hint when serial).
      sim::ScopedEventNode affinity(node, false);
      machine_.sim().spawn(stepTask(node, stepNumber));
    }
    machine_.sim().run();

    for (const StepTiming& st : stepStage_) {
      current_.posSendUs = std::max(current_.posSendUs, st.posSendUs);
      current_.htisUs = std::max(current_.htisUs, st.htisUs);
      current_.bondedUs = std::max(current_.bondedUs, st.bondedUs);
      current_.fftUs = std::max(current_.fftUs, st.fftUs);
      current_.lrUs = std::max(current_.lrUs, st.lrUs);
      current_.forceWaitUs = std::max(current_.forceWaitUs, st.forceWaitUs);
      current_.thermostatUs = std::max(current_.thermostatUs, st.thermostatUs);
      current_.migrationUs = std::max(current_.migrationUs, st.migrationUs);
    }
    for (std::uint64_t m : migratedStage_) migratedTotal_ += m;

    current_.totalUs = sim::toUs(machine_.sim().now() - start);
    lastMigrated_ = migratedTotal_ - lastMigrated_;
    timings_.push_back(current_);
    ++stepsDone_;
  }
}

verify::CommPlan AntonMdApp::extractCommPlan() const {
  verify::CommPlan plan;
  plan.name = "md.step";
  plan.shape = shape_;
  const int numNodes = machine_.numNodes();
  const bool armed = dropRegistry_ != nullptr;

  // Phase skeleton of the template superstep. Concurrent hardware phases
  // (HTIS / bonded / long-range) branch from the send phase and rejoin at
  // the force wait; the round wraps from migration back to the next send.
  plan.addPhaseEdge("md.send", "md.htis");
  plan.addPhaseEdge("md.send", "md.bonded");
  plan.addPhaseEdge("md.send", "md.spread");
  plan.addPhaseEdge("md.spread", "md.grid");
  std::string tail = fft_->appendPlan(plan, "md.grid", false, 0);
  tail = fft_->appendPlan(plan, tail, true, 1);
  plan.addPhaseEdge(tail, "md.pot");
  plan.addPhaseEdge("md.pot", "md.interp");
  plan.addPhaseEdge("md.htis", "md.forcewait");
  plan.addPhaseEdge("md.bonded", "md.forcewait");
  plan.addPhaseEdge("md.interp", "md.forcewait");
  tail = allReduce_->appendPlan(plan, "md.forcewait");
  plan.addPhaseEdge(tail, "md.fifo");
  plan.addPhaseEdge("md.fifo", "md.migrate");

  // Current home node per gid (bonded by-source expectations).
  std::vector<int> home(charges_.size(), -1);
  for (int n = 0; n < numNodes; ++n)
    for (const AtomRecord& a : nodes_[std::size_t(n)].atoms)
      home[std::size_t(a.gid)] = n;

  const std::size_t blockPts = fft_->blockSize();
  const std::size_t chunk = net::kMaxPayloadBytes;
  const std::uint64_t gridPackets = (blockPts * 4 + chunk - 1) / chunk;
  const std::size_t potBlockBytes = blockPts * 8;
  const std::uint64_t potPackets = (potBlockBytes + chunk - 1) / chunk;
  const std::uint32_t potRegion =
      std::uint32_t(posRegionMod_) * std::uint32_t(potBlockBytes);

  for (int n = 0; n < numNodes; ++n) {
    const std::size_t un = std::size_t(n);
    const std::uint64_t posN = std::uint64_t(posFixed_[un]);

    // --- md.send: position multicast + bond-program unicasts --------------
    {
      verify::PlannedWrite w;
      w.phase = "md.send";
      w.srcNode = n;
      w.pattern = posPattern_[un];
      w.counterId = cfg_.ctrPos;
      w.packets = posN;
      plan.writes.push_back(std::move(w));
    }
    std::map<int, std::uint64_t> bondPerTarget;
    for (const AtomRecord& a : nodes_[un].atoms)
      for (int t : atomTermNodes_[std::size_t(a.gid)]) ++bondPerTarget[t];
    for (const auto& [t, packets] : bondPerTarget) {
      verify::PlannedWrite w;
      w.phase = "md.send";
      w.srcNode = n;
      w.dst = {t, net::kSlice0};
      w.counterId = cfg_.ctrBondPos;
      w.packets = packets;
      plan.writes.push_back(std::move(w));
    }

    // --- md.htis: position wait, then fixed-count force returns -----------
    {
      verify::CounterExpectation e;
      e.site = "md.htis.pos";
      e.phase = "md.htis";
      e.client = {n, net::kHtis};
      e.counterId = cfg_.ctrPos;
      e.bySource[n] = posN;
      for (int s : lowerShell_[un])
        e.bySource[s] = std::uint64_t(posFixed_[std::size_t(s)]);
      for (const auto& [s, c] : e.bySource) e.perRound += c;
      e.recoveryArmed = armed;
      plan.expectations.push_back(std::move(e));
    }
    {
      verify::PlannedWrite w;  // self force return
      w.phase = "md.htis";
      w.srcNode = n;
      w.dst = {n, net::kAccum0};
      w.counterId = cfg_.ctrForce;
      w.packets = posN;
      plan.writes.push_back(w);
      for (int s : lowerShell_[un]) {
        w.dst = {s, net::kAccum0};
        w.packets = std::uint64_t(posFixed_[std::size_t(s)]);
        plan.writes.push_back(w);
      }
    }
    {
      verify::BufferPlan b;  // import-region position slots on the HTIS
      b.name = "md.pos";
      b.client = {n, net::kHtis};
      b.base = 0;
      b.bytes = std::uint32_t(posRegionMod_) * std::uint32_t(fixedPosPackets_) * 32u;
      b.copies = 1;
      b.freePhase = "md.htis";
      b.writers.push_back({n, "md.send"});
      for (int s : lowerShell_[un]) b.writers.push_back({s, "md.send"});
      plan.buffers.push_back(std::move(b));
    }

    // --- md.bonded: gathered-position wait, force returns to home nodes ---
    const auto& slots = bondAtomSlot_[un];
    if (!slots.empty()) {
      verify::CounterExpectation e;
      e.site = "md.bonded.pos";
      e.phase = "md.bonded";
      e.client = {n, net::kSlice0};
      e.counterId = cfg_.ctrBondPos;
      e.perRound = slots.size();
      for (const auto& [gid, slot] : slots) ++e.bySource[home[std::size_t(gid)]];
      e.recoveryArmed = armed;
      plan.expectations.push_back(std::move(e));

      std::map<int, std::uint64_t> returnsPerHome;
      for (const auto& [gid, slot] : slots) ++returnsPerHome[home[std::size_t(gid)]];
      for (const auto& [h, packets] : returnsPerHome) {
        verify::PlannedWrite w;
        w.phase = "md.bonded";
        w.srcNode = n;
        w.dst = {h, net::kAccum0};
        w.counterId = cfg_.ctrForce;
        w.packets = packets;
        plan.writes.push_back(std::move(w));
      }

      verify::BufferPlan b;  // gathered bond positions in slice0 memory
      b.name = "md.bondpos";
      b.client = {n, net::kSlice0};
      b.base = 0x8000u;
      b.bytes = std::uint32_t(slots.size()) * 32u;
      b.copies = 1;
      b.freePhase = "md.bonded";
      std::set<int> senders;
      for (const auto& [gid, slot] : slots) senders.insert(home[std::size_t(gid)]);
      for (int s : senders) b.writers.push_back({s, "md.send"});
      plan.buffers.push_back(std::move(b));
    }

    // --- long range: spread -> grid wait -> (FFT) -> pot halo -> interp ---
    std::vector<int> targets;
    targets.push_back(n);
    for (int nb : core::torusNeighborhood26(shape_, n)) targets.push_back(nb);
    for (int t : targets) {
      verify::PlannedWrite w;
      w.phase = "md.spread";
      w.srcNode = n;
      w.dst = {t, net::kAccum1};
      w.counterId = cfg_.ctrGrid;
      w.packets = gridPackets;
      plan.writes.push_back(std::move(w));
    }
    {
      verify::CounterExpectation e;
      e.site = "md.grid";
      e.phase = "md.grid";
      e.client = {n, net::kAccum1};
      e.counterId = cfg_.ctrGrid;
      e.perRound = std::uint64_t(targets.size()) * gridPackets;
      for (int t : targets) e.bySource[t] = gridPackets;
      e.recoveryArmed = armed;
      plan.expectations.push_back(std::move(e));

      verify::BufferPlan b;  // parity-double-buffered charge-grid block
      b.name = "md.grid";
      b.client = {n, net::kAccum1};
      b.base = 0;
      b.bytes = 2u * std::uint32_t(blockPts) * 4u;
      b.copies = 2;
      b.freePhase = "md.grid";
      for (int t : targets) b.writers.push_back({t, "md.spread"});
      plan.buffers.push_back(std::move(b));
    }
    {
      verify::PlannedWrite w;  // potential-halo multicast
      w.phase = "md.pot";
      w.srcNode = n;
      w.pattern = potPattern_[un];
      w.counterId = cfg_.ctrPot;
      w.packets = potPackets;
      plan.writes.push_back(std::move(w));

      verify::CounterExpectation e;
      e.site = "md.potential";
      e.phase = "md.interp";
      e.client = {n, cfg_.fftConfig.fftSlice};
      e.counterId = cfg_.ctrPot;
      e.perRound = std::uint64_t(targets.size()) * potPackets;
      for (int t : targets) e.bySource[t] = potPackets;
      e.recoveryArmed = armed;
      plan.expectations.push_back(std::move(e));

      verify::BufferPlan b;  // parity-double-buffered potential halo
      b.name = "md.pot";
      b.client = {n, cfg_.fftConfig.fftSlice};
      b.base = 0;
      b.bytes = 2u * potRegion;
      b.copies = 2;
      b.freePhase = "md.interp";
      for (int t : targets) b.writers.push_back({t, "md.pot"});
      plan.buffers.push_back(std::move(b));
    }
    {
      verify::PlannedWrite w;  // interpolated long-range self accumulation
      w.phase = "md.interp";
      w.srcNode = n;
      w.dst = {n, net::kAccum0};
      w.counterId = cfg_.ctrForce;
      w.packets = posN;
      plan.writes.push_back(std::move(w));
    }

    // --- md.forcewait: the integration wait over all force returns --------
    {
      verify::CounterExpectation e;
      e.site = "md.forces";
      e.phase = "md.forcewait";
      e.client = {n, net::kAccum0};
      e.counterId = cfg_.ctrForce;
      e.bySource[n] += posN;  // HTIS self return
      for (int u : upperShell_[un]) e.bySource[u] += posN;
      for (const AtomRecord& a : nodes_[un].atoms)
        for (int t : atomTermNodes_[std::size_t(a.gid)]) e.bySource[t] += 1;
      e.bySource[n] += posN;  // long-range self accumulation
      for (const auto& [s, c] : e.bySource) e.perRound += c;
      e.recoveryArmed = armed;
      plan.expectations.push_back(std::move(e));
    }

    // --- md.fifo: migrating atoms stream to the 26-neighborhood -----------
    // Stochastic, uncounted in-order FIFO traffic (SC10 §IV-B5): the plan
    // cannot know how many atoms leave, only where they may go. One nominal
    // record per neighbor documents the lanes the flush below fences.
    for (int nb : migrationSync_->neighbors(n)) {
      verify::PlannedWrite w;
      w.phase = "md.fifo";
      w.srcNode = n;
      w.dst = {nb, net::kSlice0};
      w.inOrder = true;
      w.fifo = true;
      plan.writes.push_back(std::move(w));
    }

    // --- md.migrate: in-order flush to the 26-neighborhood ----------------
    {
      verify::PlannedWrite w;
      w.phase = "md.migrate";
      w.srcNode = n;
      w.pattern = migrationSync_->patternId(n);
      w.counterId = migrationSync_->counterId();
      w.packets = 1;
      w.inOrder = true;
      // migrationPhase() signals the flush first and only then waits on the
      // neighbors' flushes — the in-order flush rides behind the md.fifo
      // records and fences them, it does not depend on the local wait.
      w.seq = 0;
      plan.writes.push_back(std::move(w));

      verify::CounterExpectation e;
      e.site = "md.migration.flush";
      e.phase = "md.migrate";
      e.client = {n, migrationSync_->targetClient()};
      e.counterId = migrationSync_->counterId();
      e.perRound = migrationSync_->expectedPerRound(n);
      for (int nb : migrationSync_->neighbors(n)) e.bySource[nb] = 1;
      // The flush *counter* wait is armed; the md.fifo payload records it
      // fences stay uncounted and unrecoverable.
      e.recoveryArmed = armed;
      e.seq = 1;
      plan.expectations.push_back(std::move(e));
    }
  }

  // Every pattern installed through the shared allocator: position import
  // multicasts, potential halos, and the migration-flush broadcasts.
  for (const core::InstalledPattern& p : patterns_->installed()) {
    verify::MulticastPlanEntry e;
    e.patternId = p.id;
    e.srcNode = p.tree.srcNode;
    e.entries = p.tree.entries;
    e.declaredDests = p.dests;
    plan.multicasts.push_back(std::move(e));
  }
  return plan;
}

}  // namespace anton::md
