#include "md/engine.hpp"

#include <cmath>

namespace anton::md {

ReferenceEngine::ReferenceEngine(MDSystem sys, EngineParams params)
    : sys_(std::move(sys)),
      params_(params),
      ewald_(sys_.box, params.ewald),
      forces_(std::size_t(sys_.numAtoms())) {
  computeForces();
}

void ReferenceEngine::computeForces() {
  std::fill(forces_.begin(), forces_.end(), Vec3{});
  energies_.bonded = bondedForces(sys_, forces_);
  energies_.rangeLimited = rangeLimitedForces(sys_, params_.force, forces_);
  if (params_.longRange && steps_ % params_.longRangeInterval == 0) {
    energies_.longRange = ewald_.energyAndForces(sys_, forces_);
  } else if (!params_.longRange) {
    energies_.longRange = 0.0;
  }  // else: reuse the previous long-range energy estimate
  energies_.kinetic = sys_.kineticEnergy();
}

void ReferenceEngine::step() {
  const double dt = params_.dt;
  for (int i = 0; i < sys_.numAtoms(); ++i) {
    auto s = std::size_t(i);
    sys_.velocities[s] += (0.5 * dt / sys_.masses[s]) * forces_[s];
    sys_.positions[s] = sys_.wrap(sys_.positions[s] + dt * sys_.velocities[s]);
  }
  ++steps_;
  computeForces();
  for (int i = 0; i < sys_.numAtoms(); ++i) {
    auto s = std::size_t(i);
    sys_.velocities[s] += (0.5 * dt / sys_.masses[s]) * forces_[s];
  }
  if (params_.thermostatTau > 0.0 && steps_ % params_.thermostatInterval == 0)
    applyThermostat();
  energies_.kinetic = sys_.kineticEnergy();
}

void ReferenceEngine::applyThermostat() {
  double t = sys_.temperature();
  if (t <= 0.0) return;
  double lambda = std::sqrt(
      1.0 + params_.dt / params_.thermostatTau *
                (params_.targetTemperature / t - 1.0));
  for (auto& v : sys_.velocities) v *= lambda;
}

}  // namespace anton::md
