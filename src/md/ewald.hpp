// Long-range electrostatics: FFT-based convolution (SC10 §II).
//
// Charges are spread to a regular grid with cardinal B-splines (order 4),
// the grid is convolved with the Ewald reciprocal-space influence function
// via forward FFT -> multiply -> inverse FFT, and per-atom forces are
// interpolated from the potential grid with the spline derivatives — the
// same charge-spreading / FFT / force-interpolation pipeline Anton's HTIS
// and flexible subsystem execute. A direct k-space Ewald sum serves as the
// convergence reference for tests.
//
// Conventions: real-space pair energy is C q_i q_j erfc(kappa r)/r, so the
// reciprocal part is E = (C/2V) sum_{k!=0} (4pi/k^2) exp(-k^2/4kappa^2)
// |rho(k)|^2 and the self correction is -C kappa/sqrt(pi) sum q_i^2.
#pragma once

#include <array>
#include <vector>

#include "fft/grid3d.hpp"
#include "md/system.hpp"

namespace anton::md {

/// Order-4 cardinal B-spline M4 on [0,4] and its derivative.
double bspline4(double x);
double bspline4Derivative(double x);

/// Spreading stencil of one atom along one dimension: 4 grid points with
/// weights and d(weight)/d(coordinate) (in grid units).
struct SplineStencil {
  std::array<int, 4> points;   ///< grid indices (wrapped)
  std::array<double, 4> w;     ///< M4 weights, sum to 1
  std::array<double, 4> dw;    ///< derivative wrt the scaled coordinate
};
SplineStencil splineStencil(double scaledCoord, int gridExtent);

struct EwaldParams {
  int grid = 32;          ///< grid extent per dimension (power of two)
  double kappa = 1.0;     ///< must match ForceParams::ewaldKappa
  double coulomb = 1.0;   ///< must match ForceParams::coulomb
};

/// Host-side mesh Ewald (smooth-particle-mesh style).
class MeshEwald {
 public:
  MeshEwald(const Vec3& box, EwaldParams p);

  const EwaldParams& params() const { return params_; }
  const Vec3& box() const { return box_; }

  /// Influence function at frequency indices (m1, m2, m3): includes the
  /// 4pi/k^2 Ewald factor, the Gaussian damping, the B-spline correction
  /// |b1 b2 b3|^2, the Coulomb constant and 1/V. Zero at k = 0 and at the
  /// Nyquist planes.
  double influence(int m1, int m2, int m3) const;

  /// Spread all charges onto a fresh grid (real part carries the charge).
  fft::Grid3D spreadCharges(const MDSystem& sys) const;

  /// Reciprocal-space energy and forces. Forces accumulate into f; the
  /// returned energy includes the self-energy correction.
  double energyAndForces(const MDSystem& sys, std::vector<Vec3>& f) const;

  /// Interpolate forces for atom range [first, last) from a potential grid
  /// (used by both the host path and the Anton-mapped path).
  void interpolateForces(const MDSystem& sys, const fft::Grid3D& potential,
                         int first, int last, std::vector<Vec3>& f) const;

  double selfEnergy(const MDSystem& sys) const;

 private:
  Vec3 box_;
  EwaldParams params_;
  std::vector<double> bMod2_[3];  ///< |b(m)|^2 per dimension
};

/// Direct reciprocal-space Ewald sum over |m_d| <= kmax (plus self energy):
/// the slow, exact reference the mesh implementation must converge to.
double ewaldReferenceEnergyAndForces(const MDSystem& sys, double kappa,
                                     double coulomb, int kmax,
                                     std::vector<Vec3>& f);

}  // namespace anton::md
