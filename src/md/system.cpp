#include "md/system.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "sim/rng.hpp"

namespace anton::md {

Vec3 MDSystem::minImage(const Vec3& a, const Vec3& b) const {
  Vec3 d = b - a;
  d.x -= box.x * std::round(d.x / box.x);
  d.y -= box.y * std::round(d.y / box.y);
  d.z -= box.z * std::round(d.z / box.z);
  return d;
}

Vec3 MDSystem::wrap(Vec3 p) const {
  p.x -= box.x * std::floor(p.x / box.x);
  p.y -= box.y * std::floor(p.y / box.y);
  p.z -= box.z * std::floor(p.z / box.z);
  // floor can round such that p == box under FP; clamp into range.
  if (p.x >= box.x) p.x -= box.x;
  if (p.y >= box.y) p.y -= box.y;
  if (p.z >= box.z) p.z -= box.z;
  return p;
}

double MDSystem::kineticEnergy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < velocities.size(); ++i)
    ke += 0.5 * masses[i] * velocities[i].norm2();
  return ke;
}

double MDSystem::temperature() const {
  if (positions.empty()) return 0.0;
  return 2.0 * kineticEnergy() / (3.0 * double(numAtoms()));
}

Vec3 MDSystem::totalMomentum() const {
  Vec3 p;
  for (std::size_t i = 0; i < velocities.size(); ++i)
    p += masses[i] * velocities[i];
  return p;
}

MDSystem buildSyntheticSystem(const SyntheticSystemParams& p) {
  if (p.targetAtoms < 6) throw std::invalid_argument("system too small");
  sim::Rng rng(p.seed);
  MDSystem sys;

  // Cubic box sized for the requested density.
  double volume = double(p.targetAtoms) / p.density;
  double side = std::cbrt(volume);
  sys.box = {side, side, side};

  // Lattice with one site per atom, jittered to break symmetry.
  int cells = int(std::ceil(std::cbrt(double(p.targetAtoms))));
  double spacing = side / cells;
  auto sitePos = [&](int idx) {
    int x = idx % cells;
    int y = (idx / cells) % cells;
    int z = idx / (cells * cells);
    Vec3 base{(x + 0.5) * spacing, (y + 0.5) * spacing, (z + 0.5) * spacing};
    Vec3 jitter{rng.uniform(-0.08, 0.08) * spacing,
                rng.uniform(-0.08, 0.08) * spacing,
                rng.uniform(-0.08, 0.08) * spacing};
    return sys.wrap(base + jitter);
  };

  // Protein-like chain: consecutive lattice sites are adjacent in space, so
  // chain bonds start short (local bond program traffic, like a folded
  // protein in its box region).
  int proteinAtoms = std::max(4, int(p.proteinFraction * p.targetAtoms));
  int solventTriads = (p.targetAtoms - proteinAtoms) / 3;
  int total = proteinAtoms + solventTriads * 3;

  sys.positions.reserve(std::size_t(total));
  sys.charges.reserve(std::size_t(total));
  sys.masses.reserve(std::size_t(total));
  for (int i = 0; i < total; ++i) {
    sys.positions.push_back(sitePos(i));
    sys.masses.push_back(1.0);
  }
  sys.ljStrength.assign(std::size_t(total), 1.0);

  // Chain topology: bonds (i,i+1), angles (i,i+1,i+2), dihedrals (i..i+3).
  for (int i = 0; i < proteinAtoms; ++i)
    sys.charges.push_back((i % 2 == 0) ? 0.3 : -0.3);
  for (int i = 0; i + 1 < proteinAtoms; ++i)
    sys.bonds.push_back({i, i + 1, 1.0, 10.0});
  for (int i = 0; i + 2 < proteinAtoms; ++i)
    sys.angles.push_back({i, i + 1, i + 2, 2.0 * std::numbers::pi / 3.0, 5.0});
  for (int i = 0; i + 3 < proteinAtoms; ++i)
    sys.dihedrals.push_back({i, i + 1, i + 2, i + 3, 0.5, 3, 0.0});

  // Solvent triads: O-like center with two H-like satellites.
  for (int t = 0; t < solventTriads; ++t) {
    int o = proteinAtoms + 3 * t;
    sys.charges.push_back(-0.8);
    sys.charges.push_back(0.4);
    sys.charges.push_back(0.4);
    // Hydrogen-like satellites carry no LJ (cf. 3-site water models); only
    // the center repels, so tight intra-molecular geometry stays stable.
    sys.ljStrength[std::size_t(o) + 1] = 0.0;
    sys.ljStrength[std::size_t(o) + 2] = 0.0;
    sys.bonds.push_back({o, o + 1, 0.6, 20.0});
    sys.bonds.push_back({o, o + 2, 0.6, 20.0});
    sys.angles.push_back({o + 1, o, o + 2, 1.91, 10.0});
    // Pull the satellites near the center so bonds start relaxed.
    Vec3 c = sys.positions[std::size_t(o)];
    sys.positions[std::size_t(o) + 1] =
        sys.wrap(c + Vec3{0.6, 0.05 * rng.uniform(), 0.0});
    sys.positions[std::size_t(o) + 2] =
        sys.wrap(c + Vec3{-0.2, 0.55, 0.05 * rng.uniform()});
  }

  // Maxwell velocities at the target temperature, net momentum removed.
  sys.velocities.resize(std::size_t(total));
  double sigma = std::sqrt(p.temperature);
  for (auto& v : sys.velocities)
    v = {rng.normal(0.0, sigma), rng.normal(0.0, sigma), rng.normal(0.0, sigma)};
  Vec3 drift = sys.totalMomentum() * (1.0 / double(total));
  for (auto& v : sys.velocities) v -= drift;

  return sys;
}

}  // namespace anton::md
