// Single-process reference MD engine: the golden model for the Anton-mapped
// implementation and the physics testbed (energy conservation, thermostat).
#pragma once

#include "md/ewald.hpp"
#include "md/forces.hpp"
#include "md/system.hpp"

namespace anton::md {

struct EngineParams {
  ForceParams force;
  EwaldParams ewald;
  double dt = 0.002;
  bool longRange = true;        ///< enable the FFT-based convolution
  int longRangeInterval = 1;    ///< evaluate long-range every k-th step
  double thermostatTau = 0.0;   ///< Berendsen coupling time; 0 = NVE
  double targetTemperature = 1.0;
  int thermostatInterval = 2;   ///< paper: temperature control every other step
};

struct Energies {
  double bonded = 0.0;
  double rangeLimited = 0.0;
  double longRange = 0.0;
  double kinetic = 0.0;
  double total() const { return bonded + rangeLimited + longRange + kinetic; }
};

class ReferenceEngine {
 public:
  ReferenceEngine(MDSystem sys, EngineParams params);

  const MDSystem& system() const { return sys_; }
  MDSystem& system() { return sys_; }
  const EngineParams& params() const { return params_; }
  const std::vector<Vec3>& forces() const { return forces_; }
  const Energies& energies() const { return energies_; }
  long stepsDone() const { return steps_; }

  /// Recompute all forces and potential energies at the current positions.
  void computeForces();

  /// One velocity-Verlet step (+ Berendsen velocity rescale on thermostat
  /// steps). computeForces() must have been called once before stepping;
  /// the constructor does so.
  void step();

  void run(int steps) {
    for (int s = 0; s < steps; ++s) step();
  }

 private:
  void applyThermostat();

  MDSystem sys_;
  EngineParams params_;
  MeshEwald ewald_;
  std::vector<Vec3> forces_;
  Energies energies_;
  long steps_ = 0;
};

}  // namespace anton::md
