#include "md/ewald.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace anton::md {

namespace {
constexpr double kPi = std::numbers::pi;
}

double bspline4(double x) {
  if (x <= 0.0 || x >= 4.0) return 0.0;
  if (x < 1.0) return x * x * x / 6.0;
  if (x < 2.0) {
    double t = x - 1.0;
    return (1.0 + 3.0 * t + 3.0 * t * t - 3.0 * t * t * t) / 6.0;
  }
  if (x < 3.0) {
    double t = 3.0 - x;
    return (1.0 + 3.0 * t + 3.0 * t * t - 3.0 * t * t * t) / 6.0;
  }
  double t = 4.0 - x;
  return t * t * t / 6.0;
}

double bspline4Derivative(double x) {
  // dM4/dx = M3(x) - M3(x-1), with M3 the order-3 spline on [0,3].
  auto m3 = [](double y) {
    if (y <= 0.0 || y >= 3.0) return 0.0;
    if (y < 1.0) return y * y / 2.0;
    if (y < 2.0) return (-3.0 + 6.0 * y - 2.0 * y * y) / 2.0;
    double t = 3.0 - y;
    return t * t / 2.0;
  };
  return m3(x) - m3(x - 1.0);
}

SplineStencil splineStencil(double u, int gridExtent) {
  SplineStencil s;
  int base = int(std::floor(u));
  for (int j = 0; j < 4; ++j) {
    int g = base - j;
    double x = u - double(g);  // in (j, j+1), within the spline support
    int wrapped = ((g % gridExtent) + gridExtent) % gridExtent;
    s.points[std::size_t(j)] = wrapped;
    s.w[std::size_t(j)] = bspline4(x);
    s.dw[std::size_t(j)] = bspline4Derivative(x);
  }
  return s;
}

MeshEwald::MeshEwald(const Vec3& box, EwaldParams p) : box_(box), params_(p) {
  if (p.grid < 4) throw std::invalid_argument("grid too small for order-4 splines");
  // |b(m)|^2 per dimension (Essmann et al. 1995, eq. 4.4), spline order 4.
  for (int d = 0; d < 3; ++d) {
    int K = p.grid;
    bMod2_[d].resize(std::size_t(K));
    for (int m = 0; m < K; ++m) {
      std::complex<double> denom{0.0, 0.0};
      for (int j = 0; j <= 2; ++j) {
        double ang = 2.0 * kPi * double(m) * double(j) / double(K);
        denom += bspline4(double(j + 1)) * std::complex<double>{std::cos(ang), std::sin(ang)};
      }
      double d2 = std::norm(denom);
      bMod2_[d][std::size_t(m)] = d2 < 1e-10 ? 0.0 : 1.0 / d2;
    }
  }
}

double MeshEwald::influence(int m1, int m2, int m3) const {
  const int K = params_.grid;
  if (m1 == 0 && m2 == 0 && m3 == 0) return 0.0;
  auto freq = [K](int m) { return m <= K / 2 ? m : m - K; };
  int f1 = freq(m1), f2 = freq(m2), f3 = freq(m3);
  if (std::abs(f1) == K / 2 || std::abs(f2) == K / 2 || std::abs(f3) == K / 2)
    return 0.0;  // Nyquist planes: spline correction ill-defined
  double kx = 2.0 * kPi * double(f1) / box_.x;
  double ky = 2.0 * kPi * double(f2) / box_.y;
  double kz = 2.0 * kPi * double(f3) / box_.z;
  double k2 = kx * kx + ky * ky + kz * kz;
  double V = box_.x * box_.y * box_.z;
  double b2 = bMod2_[0][std::size_t(m1)] * bMod2_[1][std::size_t(m2)] *
              bMod2_[2][std::size_t(m3)];
  return params_.coulomb * (4.0 * kPi / k2) *
         std::exp(-k2 / (4.0 * params_.kappa * params_.kappa)) * b2 / V;
}

fft::Grid3D MeshEwald::spreadCharges(const MDSystem& sys) const {
  const int K = params_.grid;
  fft::Grid3D grid(K, K, K);
  for (int i = 0; i < sys.numAtoms(); ++i) {
    const Vec3 p = sys.wrap(sys.positions[std::size_t(i)]);
    SplineStencil sx = splineStencil(p.x / box_.x * K, K);
    SplineStencil sy = splineStencil(p.y / box_.y * K, K);
    SplineStencil sz = splineStencil(p.z / box_.z * K, K);
    double q = sys.charges[std::size_t(i)];
    for (int a = 0; a < 4; ++a)
      for (int b = 0; b < 4; ++b)
        for (int c = 0; c < 4; ++c)
          grid.at(sx.points[std::size_t(a)], sy.points[std::size_t(b)],
                  sz.points[std::size_t(c)]) +=
              q * sx.w[std::size_t(a)] * sy.w[std::size_t(b)] * sz.w[std::size_t(c)];
  }
  return grid;
}

double MeshEwald::selfEnergy(const MDSystem& sys) const {
  double q2 = 0.0;
  for (double q : sys.charges) q2 += q * q;
  return -params_.coulomb * params_.kappa / std::sqrt(kPi) * q2;
}

void MeshEwald::interpolateForces(const MDSystem& sys,
                                  const fft::Grid3D& potential, int first,
                                  int last, std::vector<Vec3>& f) const {
  const int K = params_.grid;
  for (int i = first; i < last; ++i) {
    const Vec3 p = sys.wrap(sys.positions[std::size_t(i)]);
    SplineStencil sx = splineStencil(p.x / box_.x * K, K);
    SplineStencil sy = splineStencil(p.y / box_.y * K, K);
    SplineStencil sz = splineStencil(p.z / box_.z * K, K);
    double q = sys.charges[std::size_t(i)];
    Vec3 grad;
    for (int a = 0; a < 4; ++a)
      for (int b = 0; b < 4; ++b)
        for (int c = 0; c < 4; ++c) {
          double phi = potential
                           .at(sx.points[std::size_t(a)], sy.points[std::size_t(b)],
                               sz.points[std::size_t(c)])
                           .real();
          grad.x += sx.dw[std::size_t(a)] * sy.w[std::size_t(b)] *
                    sz.w[std::size_t(c)] * phi;
          grad.y += sx.w[std::size_t(a)] * sy.dw[std::size_t(b)] *
                    sz.w[std::size_t(c)] * phi;
          grad.z += sx.w[std::size_t(a)] * sy.w[std::size_t(b)] *
                    sz.dw[std::size_t(c)] * phi;
        }
    // d(scaled coord)/d(position) = K / L per dimension; F = -q grad(phi).
    f[std::size_t(i)] -= q * Vec3{grad.x * K / box_.x, grad.y * K / box_.y,
                                  grad.z * K / box_.z};
  }
}

double MeshEwald::energyAndForces(const MDSystem& sys,
                                  std::vector<Vec3>& f) const {
  const int K = params_.grid;
  fft::Grid3D grid = spreadCharges(sys);
  fft::fft3d(grid, false);
  double energy = 0.0;
  for (int m3 = 0; m3 < K; ++m3)
    for (int m2 = 0; m2 < K; ++m2)
      for (int m1 = 0; m1 < K; ++m1) {
        double g = influence(m1, m2, m3);
        fft::Complex& v = grid.at(m1, m2, m3);
        energy += 0.5 * g * std::norm(v);
        v *= g;
      }
  fft::fft3d(grid, true);
  // The force grid is dE/dQ(g) = K^3 * IFFT(G * Qhat): the normalized
  // inverse transform must be rescaled by the grid size.
  double k3 = double(K) * double(K) * double(K);
  for (auto& v : grid.data()) v *= k3;
  interpolateForces(sys, grid, 0, sys.numAtoms(), f);
  return energy + selfEnergy(sys);
}

double ewaldReferenceEnergyAndForces(const MDSystem& sys, double kappa,
                                     double coulomb, int kmax,
                                     std::vector<Vec3>& f) {
  const int n = sys.numAtoms();
  double energy = 0.0;
  for (int mx = -kmax; mx <= kmax; ++mx)
    for (int my = -kmax; my <= kmax; ++my)
      for (int mz = -kmax; mz <= kmax; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        Vec3 k{2.0 * kPi * mx / sys.box.x, 2.0 * kPi * my / sys.box.y,
               2.0 * kPi * mz / sys.box.z};
        double k2 = k.norm2();
        double g = coulomb * (4.0 * kPi / k2) *
                   std::exp(-k2 / (4.0 * kappa * kappa)) /
                   (sys.box.x * sys.box.y * sys.box.z);
        // Structure factor.
        double re = 0.0, im = 0.0;
        for (int i = 0; i < n; ++i) {
          double ph = k.dot(sys.positions[std::size_t(i)]);
          re += sys.charges[std::size_t(i)] * std::cos(ph);
          im += sys.charges[std::size_t(i)] * std::sin(ph);
        }
        energy += 0.5 * g * (re * re + im * im);
        for (int i = 0; i < n; ++i) {
          double ph = k.dot(sys.positions[std::size_t(i)]);
          double coeff = g * sys.charges[std::size_t(i)] *
                         (std::sin(ph) * re - std::cos(ph) * im);
          f[std::size_t(i)] += coeff * k;
        }
      }
  double q2 = 0.0;
  for (double q : sys.charges) q2 += q * q;
  return energy - coulomb * kappa / std::sqrt(kPi) * q2;
}

}  // namespace anton::md
