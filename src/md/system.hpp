// Molecular system representation and synthetic workload construction.
//
// The paper benchmarks DHFR (23,558 atoms) and a 17,758-particle system —
// proprietary prepared systems we substitute with synthetic solvated-
// protein-like workloads: the same atom counts, solvent triads (two bonds +
// one angle, water-like charges), a protein-like chain with bonds, angles
// and dihedrals, uniform liquid density, and Maxwell-distributed velocities.
// Communication patterns depend only on these statistics (DESIGN.md §1).
//
// Units are reduced (LJ): sigma = epsilon = mass = 1, k_B = 1.
#pragma once

#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace anton::md {

using util::Vec3;

struct Bond {
  int i, j;
  double r0;     ///< equilibrium length
  double k;      ///< stiffness: U = k (r - r0)^2
};

struct Angle {
  int i, j, k;   ///< j is the vertex
  double theta0; ///< equilibrium angle (radians)
  double kTheta; ///< U = kTheta (theta - theta0)^2
};

struct Dihedral {
  int i, j, k, l;
  double kPhi;   ///< U = kPhi (1 + cos(n phi - phi0))
  int n;
  double phi0;
};

struct MDSystem {
  Vec3 box;  ///< periodic box lengths
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  std::vector<double> charges;
  std::vector<double> masses;
  /// Per-atom Lennard-Jones strength; the pair prefactor is the product.
  /// Empty means 1.0 for every atom. Hydrogen-like solvent satellites carry
  /// 0 (as in common water models), which keeps the synthetic system stable.
  std::vector<double> ljStrength;
  std::vector<Bond> bonds;
  std::vector<Angle> angles;
  std::vector<Dihedral> dihedrals;

  int numAtoms() const { return int(positions.size()); }

  double ljOf(int i) const {
    return ljStrength.empty() ? 1.0 : ljStrength[std::size_t(i)];
  }

  /// Minimum-image displacement from a to b.
  Vec3 minImage(const Vec3& a, const Vec3& b) const;
  /// Wrap a position into [0, box) per dimension.
  Vec3 wrap(Vec3 p) const;

  /// Instantaneous kinetic energy and temperature (k_B = 1, 3N dof).
  double kineticEnergy() const;
  double temperature() const;
  /// Total momentum (should stay ~0 under NVE).
  Vec3 totalMomentum() const;
};

struct SyntheticSystemParams {
  int targetAtoms = 23558;
  double density = 0.8;       ///< atoms per sigma^3 (liquid-like)
  double temperature = 1.0;
  double proteinFraction = 0.10;  ///< fraction of atoms in the chain
  std::uint64_t seed = 2010;
};

/// Build a solvated-protein-like system: one bonded chain plus solvent
/// triads on a jittered lattice, zero net momentum, zero net charge.
MDSystem buildSyntheticSystem(const SyntheticSystemParams& p = {});

}  // namespace anton::md
