// The MD dataflow mapped onto the Anton machine model (SC10 §IV, Fig. 2).
//
// One coroutine per node choreographs a time step exactly as the paper
// describes:
//   * atom positions multicast to the HTIS units of the half-shell import
//     region as fine-grained (one atom per packet) counted remote writes,
//     with the packet count fixed at the worst-case headroom so counters
//     can be preloaded (§IV-B1) — short nodes pad with dummy packets;
//   * bonded-term positions unicast to the statically assigned compute
//     nodes of the *bond program* (§IV-B2), forces returned to the home
//     accumulation memory as fixed-point accumulation packets;
//   * charge spreading into remote accumulation memories, a distributed
//     dimension-ordered FFT, influence multiply, inverse FFT, and a
//     potential-halo multicast for force interpolation (§IV-B3);
//   * a dimension-ordered multicast all-reduce for the thermostat (§IV-B4);
//   * migration through the hardware message FIFOs, flushed by an in-order
//     counted write to all 26 neighbors (§IV-B5), with relaxed home-box
//     margins so migration can run every N steps.
//
// Real positions, forces and grid data travel in the simulated packets, so
// the distributed trajectory tracks the ReferenceEngine within fixed-point
// accumulation tolerance while the simulator provides the paper's timing
// observables.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/allreduce.hpp"
#include "core/multicast.hpp"
#include "core/neighborhood.hpp"
#include "core/recovery.hpp"
#include "fft/distributed.hpp"
#include "md/engine.hpp"
#include "net/machine.hpp"
#include "trace/activity.hpp"
#include "verify/plan.hpp"

namespace anton::md {

struct AntonMdConfig {
  // Physics (must match the ReferenceEngine for equivalence tests).
  ForceParams force;
  EwaldParams ewald;
  double dt = 0.002;
  int longRangeInterval = 2;   ///< long-range work every other step (Table 3)
  int thermostatInterval = 2;  ///< temperature control every other step
  double thermostatTau = 0.0;  ///< 0 disables the thermostat
  double targetTemperature = 1.0;

  // Decomposition.
  double homeBoxMarginFrac = 0.15;  ///< relaxed home boxes: margin as a
                                    ///< fraction of the per-node box
  int migrationInterval = 8;        ///< steps between migration phases

  // Counted-remote-write provisioning.
  double packetHeadroom = 1.35;  ///< fixed position-packet count = headroom *
                                ///< average atoms per node (worst-case
                                ///< density fluctuation, §IV-B1)

  // Compute-time calibration (nanoseconds).
  double htisPairNs = 0.9;        ///< per range-limited pair in the HTIS
  double htisStreamNs = 2.0;      ///< per-packet streaming slot of the HTIS
  double gcBondNs = 20.0;         ///< per bond term on the geometry cores
  double gcAngleNs = 35.0;
  double gcDihedralNs = 55.0;
  double integrateAtomNs = 9.0;   ///< per-atom position/velocity update
  double spreadAtomNs = 32.0;     ///< charge spreading per atom
  double interpAtomNs = 36.0;     ///< force interpolation per atom
  double migrateAtomNs = 120.0;   ///< per migrated atom bookkeeping

  double fixedPointScale = double(1 << 20);  ///< force/charge quantization

  // Erasure recovery (core/recovery.hpp): when the fault model drops a
  // packet at retransmit-cap exhaustion, the step's counted-write waits
  // re-issue the missing data from a sender-side DropRegistry instead of
  // hanging. 0 disables recovery entirely — no registry, no watchdogs, and
  // step timing bit-identical to the recovery-free app.
  double recoveryTimeoutUs = 0.0;  ///< per-attempt watchdog deadline
  int recoveryMaxResends = 4;      ///< resend rounds before hard failure
  double recoveryBackoffUs = 0.5;  ///< linear backoff between rounds

  // Resource layout (counter ids on the respective clients).
  int ctrPos = 10;       ///< HTIS: position packets
  int ctrForce = 11;     ///< accum 0: force packets
  int ctrGrid = 12;      ///< accum 1: spread-charge packets
  int ctrPot = 13;       ///< FFT slice: potential-halo packets
  int ctrBondPos = 14;   ///< slice 0: bonded-term positions
  int ctrFlush = 15;     ///< slice 0: migration flush
  core::AllReduceConfig allReduce;  // counter 200, patterns 208+
  /// Distributed FFT (counters 220+, slice 1). The MD pipeline batches grid
  /// points into packets (pointsPerPacket = 0 selects the largest
  /// contiguous batch); set 1 for the paper-faithful one-point-per-packet
  /// pattern at the cost of more traffic.
  fft::DistributedFftConfig fftConfig{.pointsPerPacket = 0};
};

/// Per-step critical-path timing (max over nodes), in microseconds.
struct StepTiming {
  int stepNumber = 0;
  bool longRange = false;
  bool thermostat = false;
  bool migration = false;
  double totalUs = 0.0;
  double fftUs = 0.0;        ///< FFT-based convolution (long-range steps)
  double thermostatUs = 0.0; ///< global reduction + rescale
  double migrationUs = 0.0;  ///< FIFO traffic + flush + bookkeeping
  // Phase breakdown (max over nodes):
  double posSendUs = 0.0;    ///< position/bond-position injection window
  double htisUs = 0.0;       ///< HTIS wait + pair compute + force streaming
  double bondedUs = 0.0;     ///< bonded wait + geometry cores + returns
  double lrUs = 0.0;         ///< full long-range phase
  double forceWaitUs = 0.0;  ///< integration wait on the force counter
};

class AntonMdApp {
 public:
  AntonMdApp(net::Machine& machine, MDSystem system, AntonMdConfig cfg = {});

  /// Run `k` time steps collectively (blocking host call: spawns one task
  /// per node and drives the simulator until the steps complete).
  void runSteps(int k);

  /// Reconstruct the global system state from the distributed home boxes
  /// (atoms ordered by global id).
  MDSystem gatherSystem() const;

  const std::vector<StepTiming>& stepTimings() const { return timings_; }
  const StepTiming& lastStep() const { return timings_.back(); }
  int stepsDone() const { return stepsDone_; }

  /// Mean inter-node hop distance of bonded-term position traffic — the
  /// quantity that degrades as atoms diffuse (SC10 Fig. 11).
  double averageBondHops() const;

  /// Rebuild the bond program from current atom positions (SC10 §IV-B2:
  /// done every 100k-200k steps on the real machine).
  void regenerateBondProgram();

  /// Experiment support (Fig. 11): emulate the diffusion accumulated over a
  /// long sampling gap by exchanging the positions of randomly chosen nearby
  /// solvent molecules (`swapFraction` of them per call) and fast-forwarding
  /// the home-box reassignment that stepwise migration would have performed.
  /// Molecule swaps preserve liquid packing (no overlaps, stable physics)
  /// while carrying atoms away from their statically assigned bond-program
  /// nodes — the aging the experiment measures. Forces are re-bootstrapped
  /// host-side; the bond program is left untouched.
  void syntheticDiffusion(double swapFraction, std::uint64_t seed);

  /// Aggregate erasure-recovery activity across all nodes and steps (zero
  /// when recovery is disabled or no drop ever occurred).
  const core::RecoveryStats& recoveryStats() const { return recoveryStats_; }
  /// Packet drops observed by the registry (0 when recovery is disabled).
  std::uint64_t dropsObserved() const {
    return dropRegistry_ ? dropRegistry_->dropsObserved() : 0;
  }
  bool recoveryEnabled() const { return dropRegistry_ != nullptr; }

  /// Static communication plan of one template superstep (the worst-case
  /// step: long-range + thermostat + migration all active), in the
  /// verifier's vocabulary (src/verify/): position/bond multicast and
  /// unicast counted writes, force returns, charge spreading, the chained
  /// forward/inverse FFT plans, the potential halo, the thermostat
  /// all-reduce, and the migration flush — with every counter expectation,
  /// multicast table, and receive-buffer reuse schedule. Waits are marked
  /// recovery-armed exactly where the live app arms a
  /// RecoverableCountedWrite (every counted wait — position/bond/force,
  /// grid/potential, FFT, all-reduce, and the migration flush — when
  /// recovery is on; FIFO migration payloads remain the unrecoverable lane).
  verify::CommPlan extractCommPlan() const;

  /// Number of atoms migrated during the last migration phase.
  std::uint64_t lastMigrationCount() const { return lastMigrated_; }
  /// Total atoms migrated since construction.
  std::uint64_t totalMigrated() const { return migratedTotal_; }
  int homeAtoms(int node) const { return int(nodes_[std::size_t(node)].atoms.size()); }

  net::Machine& machine() { return machine_; }

 private:
  struct AtomRecord {
    int gid = -1;
    Vec3 pos;
    Vec3 vel;
  };
  struct NodeState {
    std::vector<AtomRecord> atoms;   ///< home atoms, sorted by gid
    std::vector<Vec3> forces;        ///< decoded from accum memory per step
    double kineticEnergy = 0.0;
    // Cumulative counted-write expectations (counters never reset).
    std::uint64_t posRounds = 0;
    std::uint64_t forceExpected = 0;
    std::uint64_t gridRounds = 0;
    std::uint64_t potRounds = 0;
    std::uint64_t bondPosExpected = 0;
    std::uint64_t flushRounds = 0;
    // Cumulative per-source expectations (recovery only: per-source missing
    // diagnosis requires knowing what each sender owes).
    std::map<int, std::uint64_t> bondPosBySource;
    std::map<int, std::uint64_t> forceBySource;
  };

  // --- setup -------------------------------------------------------------
  void partitionAtoms(const MDSystem& sys);
  void buildImportGroups();
  void buildBondProgram();
  void installPatterns();
  void computeInitialForces();

  // --- geometry ----------------------------------------------------------
  int ownerOf(const Vec3& pos) const;
  Vec3 nodeBoxOrigin(int node) const;
  bool insideRelaxedBox(int node, const Vec3& pos) const;

  // --- per-step tasks ----------------------------------------------------
  sim::Task stepTask(int node, int stepNumber);
  /// Counted-write wait with erasure recovery when enabled; a plain
  /// waitCounter (identical event schedule) when disabled. `expected` maps
  /// source node -> cumulative packet expectation for diagnosis + resend;
  /// the referenced map must outlive the co_await (callers pass named maps).
  sim::Task awaitRecoverable(net::NetworkClient& client, int counterId,
                             std::uint64_t target,
                             const std::map<int, std::uint64_t>& expected);
  sim::Task sendPositions(int node);
  sim::Task bondedPhase(int node);
  sim::Task htisPhase(int node);
  sim::Task longRangePhase(int node);
  sim::Task migrationPhase(int node);
  void zeroForceSlots(int node);

  // --- helpers -----------------------------------------------------------
  std::int32_t quantize(double v) const {
    return std::int32_t(std::llround(v * cfg_.fixedPointScale));
  }
  double dequantize(std::int32_t v) const {
    return double(v) / cfg_.fixedPointScale;
  }
  std::uint32_t posSlotAddr(int srcNode, int slot) const;
  std::uint32_t forceSlotAddr(int slot) const {
    return std::uint32_t(slot) * 12u;
  }

  net::Machine& machine_;
  AntonMdConfig cfg_;
  util::TorusShape shape_;
  Vec3 box_;
  Vec3 nodeBox_;     ///< per-node box dimensions
  Vec3 margin_;      ///< relaxed-box margin (absolute)

  // Static per-atom properties, indexed by gid (charges/masses don't move).
  std::vector<double> charges_;
  std::vector<double> masses_;
  std::vector<double> ljStrength_;
  MDSystem topology_;  ///< bonds/angles/dihedrals + box (positions unused)

  std::vector<NodeState> nodes_;
  int fixedPosPackets_ = 0;  ///< max over nodes (region stride sizing)
  /// Per source node: fixed position-packet count per step (SC10 §IV-B1:
  /// counts are fixed per source at the worst-case headroom, so receivers
  /// can preload counter targets).
  std::vector<int> posFixed_;

  // Import groups (half-shell method).
  std::vector<std::vector<int>> upperShell_;   ///< nodes I send positions to
  std::vector<std::vector<int>> lowerShell_;   ///< nodes whose atoms I import
  std::vector<int> posPattern_;                ///< multicast pattern per node
  std::vector<int> potPattern_;                ///< potential-halo pattern

  // Bond program: every term assigned to a compute node; per-node lists.
  struct TermRef {
    enum Kind { kBond, kAngle, kDihedral } kind;
    int index;  ///< into topology_.{bonds,angles,dihedrals}
  };
  std::vector<std::vector<TermRef>> termsOnNode_;
  std::vector<int> bondNodeOfTerm_[3];  ///< per kind: term -> node
  /// Per compute node: atom gid -> receive slot in slice0 memory.
  std::vector<std::map<int, int>> bondAtomSlot_;
  /// Per atom gid: the distinct compute nodes needing its position.
  std::vector<std::vector<int>> atomTermNodes_;

  /// Solvent molecules (connected bond components of <= 4 atoms), used by
  /// syntheticDiffusion.
  std::vector<std::vector<int>> solventMolecules_;

  std::unique_ptr<core::DropRegistry> dropRegistry_;  ///< recovery only
  core::RecoveryStats recoveryStats_;
  /// Shared arming handle (registry + config + stats) passed to the FFT and
  /// all-reduce subsystems and used by awaitRecoverable. Disarmed (null
  /// registry) when recovery is off.
  core::RecoveryHooks recoveryHooks_;
  /// Current home node of every atom gid, refreshed host-side before each
  /// step (recovery only: bonded receivers diagnose senders by home node).
  std::vector<int> homeOfGid_;

  std::unique_ptr<core::PatternAllocator> patterns_;
  std::unique_ptr<core::NeighborhoodSync> migrationSync_;
  std::unique_ptr<core::DimOrderedAllReduce> allReduce_;
  std::unique_ptr<fft::DistributedFft3D> fft_;
  std::unique_ptr<MeshEwald> ewald_;

  int stepsDone_ = 0;
  std::vector<StepTiming> timings_;
  std::uint64_t lastMigrated_ = 0;
  std::uint64_t migratedTotal_ = 0;
  /// Per-node staging of the in-step timing maxima and migration counts.
  /// Step tasks for different nodes may execute on different shards, so
  /// they must not fold into shared accumulators mid-run; runSteps folds
  /// the stages after run() returns. max and + are commutative, so the
  /// folded values are bit-identical to the old shared-accumulator ones.
  std::vector<StepTiming> stepStage_;
  std::vector<std::uint64_t> migratedStage_;
  StepTiming& stage(int node) { return stepStage_[std::size_t(node)]; }

  /// Receive-region modulus: smallest R such that srcNode % R is
  /// collision-free within every 27-neighborhood (multicast packets carry a
  /// single address, so regions must be a function of the source alone).
  int posRegionMod_ = 1;
  /// Per node: interpolated long-range forces of the current step.
  std::vector<std::vector<Vec3>> lrForce_;
  /// Fixed spread-charge packet count per node per long-range step.
  std::uint64_t gridExpected_ = 0;

  // Per-step coordination (filled while a step runs).
  StepTiming current_;
};

}  // namespace anton::md
