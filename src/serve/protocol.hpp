// The service wire protocol: line-delimited strict JSON, one request line
// in, one response line out. Transport-independent — the simd_server daemon
// speaks it over an AF_UNIX socket or stdin/stdout, and tests drive it as a
// pure function.
//
// Requests ("op" selects the operation):
//   {"op":"submit","spec":{...},"useCache":true,"deadlineMs":0}
//   {"op":"poll","id":N}       {"op":"wait","id":N}   (wait blocks)
//   {"op":"cancel","id":N}     {"op":"status"}        {"op":"shutdown"}
//
// Responses always carry "ok". Success: {"ok":true,...}; any malformed
// line, unknown op, invalid spec or rejected submission answers
// {"ok":false,"error":"..."} — and the connection (and daemon) stay up:
// a bad request must never take the service down.
#pragma once

#include <string>

#include "serve/server.hpp"

namespace anton::serve {

/// Canonical JSON rendering of a job record (the "job" field of poll/wait
/// responses).
std::string recordToJson(const JobRecord& rec);

struct ProtocolResult {
  std::string response;   ///< one JSON line (no trailing newline)
  bool shutdown = false;  ///< the request asked the daemon to exit
};

/// Execute one request line against the server. Never throws: every failure
/// becomes an {"ok":false,...} response.
ProtocolResult handleLine(JobServer& server, const std::string& line);

}  // namespace anton::serve
