#include "serve/protocol.hpp"

#include <sstream>

#include "util/json.hpp"

namespace anton::serve {
namespace {

namespace json = util::json;

std::string errorResponse(const std::string& message) {
  return "{\"ok\":false,\"error\":" + json::quoted(message) + "}";
}

std::uint64_t requestId(const json::Value& req) {
  return json::asU64(json::field(req, "id", "request.id"), "request.id");
}

std::string handleSubmit(JobServer& server, const json::Value& req) {
  JobSpec spec = specFromValue(json::field(req, "spec", "request.spec"));
  SubmitOptions opts;
  if (const json::Value* f = json::optField(req, "useCache"))
    opts.useCache = json::asBool(*f, "request.useCache");
  if (const json::Value* f = json::optField(req, "deadlineMs"))
    opts.deadlineMs = json::asDouble(*f, "request.deadlineMs");
  SubmitOutcome out = server.submit(spec, opts);
  if (!out.accepted)
    return "{\"ok\":false,\"rejected\":true,\"error\":" +
           json::quoted(out.reason) + "}";
  return "{\"ok\":true,\"id\":" + std::to_string(out.id) + "}";
}

}  // namespace

std::string recordToJson(const JobRecord& rec) {
  std::ostringstream os;
  os << "{\"id\":" << rec.id
     << ",\"state\":" << json::quoted(stateName(rec.state))
     << ",\"family\":" << json::quoted(familyName(rec.spec.family))
     << ",\"cacheHit\":" << (rec.cacheHit ? "true" : "false")
     << ",\"cacheKey\":" << json::quoted(rec.cacheKeyHex)
     << ",\"violations\":" << rec.violations << ",\"lints\":" << rec.lints
     << ",\"worker\":" << rec.worker
     << ",\"turnaroundMs\":" << json::number(rec.turnaroundMs)
     << ",\"error\":" << json::quoted(rec.error) << ",\"result\":"
     << (rec.resultJson.empty() ? std::string("null") : rec.resultJson)
     << ",\"spec\":" << specToJson(rec.spec) << "}";
  return os.str();
}

ProtocolResult handleLine(JobServer& server, const std::string& line) {
  try {
    json::Value req = json::parse(line, "request");
    const std::string& op =
        json::asString(json::field(req, "op", "request.op"), "request.op");
    if (op == "submit") return {handleSubmit(server, req), false};
    if (op == "poll") {
      auto rec = server.poll(requestId(req));
      if (!rec) return {errorResponse("unknown job id"), false};
      return {"{\"ok\":true,\"job\":" + recordToJson(*rec) + "}", false};
    }
    if (op == "wait") {
      JobRecord rec = server.wait(requestId(req));
      return {"{\"ok\":true,\"job\":" + recordToJson(rec) + "}", false};
    }
    if (op == "cancel") {
      bool cancelled = server.cancel(requestId(req));
      return {std::string("{\"ok\":true,\"cancelled\":") +
                  (cancelled ? "true" : "false") + "}",
              false};
    }
    if (op == "status")
      return {"{\"ok\":true,\"status\":" + server.statusz() + "}", false};
    if (op == "shutdown") return {"{\"ok\":true,\"shutdown\":true}", true};
    return {errorResponse("unknown op \"" + op + "\""), false};
  } catch (const std::exception& e) {
    return {errorResponse(e.what()), false};
  }
}

}  // namespace anton::serve
