// Declarative job specifications for the simulation service (DESIGN.md §9).
//
// A JobSpec names everything a job run depends on — family, torus shape,
// fault plan, recovery and collective configuration, seed — and nothing it
// doesn't (submission options like deadlines and cache policy live
// elsewhere: they change *when* a result arrives, never what it is). Specs
// serialize to canonical strict JSON with a fixed key order, so the same
// choreography always produces the same bytes; together with the plan
// snapshot those bytes form the server's cache key (runner.hpp).
//
// The family factories below are THE construction path for the shipped
// configurations: the quickstart example, the Fig. 5 and Table 2 bench
// drivers and the serve job families all build their specs here, so a
// config change lands in every consumer at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/torus_coord.hpp"

namespace anton::serve {

/// The job families the service executes (the shipped experiment drivers).
enum class JobFamily {
  kQuickstartMd,     ///< quickstart MD steps (golden "quickstart-md" plan)
  kFig5Ping,         ///< Fig. 5 latency-vs-hops ping set
  kTable2AllReduce,  ///< Table 2 dimension-ordered all-reduce
  kFaultSweep,       ///< armed all-reduce on a lossy fabric (erasure recovery)
};

const char* familyName(JobFamily f);
/// Throws std::invalid_argument for unknown names.
JobFamily parseFamily(const std::string& name);

struct JobSpec {
  JobFamily family = JobFamily::kQuickstartMd;
  util::TorusShape shape{4, 4, 4};
  std::uint64_t seed = 2010;

  // quickstart-md
  int steps = 2;
  int atoms = 1536;

  // fig5-ping (hops 0..maxHops, payloads {0, payloadBytes})
  int maxHops = 4;
  int payloadBytes = 256;

  // table2-allreduce and fault-sweep operand length (doubles; 0 = barrier)
  int words = 4;

  // Fault plan (fault-sweep; degradedMode also reroutes fig5-ping around a
  // scheduled X+ outage at node 0).
  double bitErrorRate = 0.0;
  int maxRetransmits = 16;
  bool degradedMode = false;

  // Erasure recovery for armed waits (core/recovery.hpp). Defaults match
  // the shipped quickstart-md arming; faultSweepSpec tightens them.
  double recoveryTimeoutUs = 5000.0;
  int recoveryMaxResends = 6;
  double recoveryBackoffUs = 0.5;

  // Sharded (conservative-PDES) kernel opt-in: "" (serial, the default),
  // "per-node" or "slab-x". Only quickstart-md and table2-allreduce accept
  // it, and only without a fault model (no fault-sweep, no degradedMode,
  // no bitErrorRate): the sharded kernel refuses fault hooks. The runner
  // proves the sharding against the job's comm plan with the lookahead
  // analyzer before enabling it, and falls back to serial (loudly) if the
  // analyzer rejects it. Results are bit-identical either way — sharding
  // only changes wall-clock time. Serialized only when non-empty, so
  // pre-sharding cache keys are unchanged.
  std::string sharding;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Parse an "AxBxC" torus shape (e.g. "8x8x8"). Throws std::runtime_error
/// on malformed input.
util::TorusShape parseShape(const std::string& s);

/// Canonical one-line JSON: fixed key order, classic-locale numbers.
/// Identical specs always serialize to identical bytes (the cache-key and
/// wire representation).
std::string specToJson(const JobSpec& spec);

/// Strict parse: unknown keys, wrong types and unknown families throw
/// std::runtime_error. Missing optional keys take the JobSpec defaults.
JobSpec specFromJson(const std::string& json);
JobSpec specFromValue(const util::json::Value& v);

/// Structural validation (ranges, family/shape compatibility). Returns every
/// problem found; an empty vector means the spec is runnable.
std::vector<std::string> validateSpec(const JobSpec& spec);

// --- family factories (the shared construction path) -----------------------

/// The quickstart MD job: 4x4x4 torus, 1536 atoms, the registry's
/// quickstartMdConfig physics, `steps` MD steps.
JobSpec quickstartMdSpec(int steps = 2);

/// The Fig. 5 ping set on the paper's 512-node 8x8x8 torus: uni- and
/// bidirectional latency at hops 0..maxHops for 0 B and `payloadBytes`.
JobSpec fig5PingSpec(int maxHops = 12, int payloadBytes = 256);

/// One Table 2 all-reduce: `words` doubles (0 = pure barrier) over every
/// node of `shape`.
JobSpec table2AllReduceSpec(util::TorusShape shape, int words = 4);

/// Armed all-reduce on a lossy fabric: BER + a retransmit cap tight enough
/// to drop packets, recovery tuned like the fault sweep's armed hooks.
JobSpec faultSweepSpec(util::TorusShape shape, double bitErrorRate,
                       int maxRetransmits = 1);

}  // namespace anton::serve
