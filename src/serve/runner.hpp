// Job execution for the simulation service (DESIGN.md §9).
//
// The runner is the single-threaded heart of a worker: given a validated
// JobSpec and an arena Simulator it owns for the duration of the call, it
// reproduces the corresponding experiment driver exactly — same machine
// construction, same measurement helpers, same arithmetic — and renders the
// observables as canonical JSON. Determinism is the contract: the same spec
// on any worker (or serially on one) produces byte-identical result JSON,
// which is what makes the snapshot-keyed result cache sound.
//
// Cache keying: jobKey() continues one FNV-1a stream over the canonical
// spec JSON and the plan's canonical snapshot bytes (verify/snapshot.hpp).
// Two submissions key identically exactly when they request the same
// choreography with the same parameters — so verification and simulation
// happen once per distinct choreography.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "serve/job_spec.hpp"
#include "sim/simulator.hpp"
#include "verify/plan.hpp"

namespace anton::serve {

/// Cooperative cancellation: the runner polls stop() between units of work
/// (an MD step, one ping measurement, one collective) and abandons the job
/// cleanly when it fires. Default-constructed tokens never stop.
struct CancelToken {
  const std::atomic<bool>* cancelled = nullptr;
  bool hasDeadline = false;
  std::chrono::steady_clock::time_point deadline{};

  bool stop() const {
    if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed))
      return true;
    return hasDeadline && std::chrono::steady_clock::now() >= deadline;
  }
};

/// What a completed (or abandoned) run produced.
struct RunOutcome {
  bool cancelled = false;  ///< token fired; metrics/json are empty
  /// Observables, in canonical (sorted-key) order.
  std::map<std::string, double> metrics;
  /// Canonical JSON rendering of the outcome: {"family":...,"metrics":{...},
  /// "digest":"0x..."}. Byte-identical across workers for identical specs.
  std::string resultJson;
  /// FNV-1a over the canonical metrics serialization — the value two
  /// concurrent runs of one spec must agree on bit-for-bit.
  std::uint64_t digest = 0;
};

/// The static communication plan a spec will put on the wire, built through
/// the shipped plan registry (tools/plan_registry). Throws on specs whose
/// family/shape combination has no plan (validateSpec rejects those first).
verify::CommPlan planForSpec(const JobSpec& spec);

/// The service cache key: FNV-1a over canonical spec JSON, continued over
/// the plan's canonical snapshot bytes.
std::uint64_t jobKey(const JobSpec& spec, const verify::CommPlan& plan);

/// Execute `spec` on `arena`. The runner resets the arena before each
/// internal measurement unit, so results are identical to running on a
/// fresh Simulator; it leaves the arena drained (a subsequent reset()
/// reports 0 discarded — the cross-job leak audit the server performs).
RunOutcome runJob(const JobSpec& spec, sim::Simulator& arena,
                  const CancelToken& cancel = {});

}  // namespace anton::serve
