#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "verify/checks.hpp"

namespace anton::serve {
namespace {

namespace json = util::json;

double msBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile of a sorted sample (p in [0, 1]).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = std::ceil(p * double(sorted.size()));
  std::size_t idx = std::size_t(std::max(1.0, rank)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

const char* stateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "?";
}

bool isTerminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

JobServer::JobServer(ServerConfig cfg)
    : cfg_(cfg), startedAt_(std::chrono::steady_clock::now()) {
  if (cfg_.workers < 1)
    throw std::invalid_argument("JobServer: need at least one worker");
  if (cfg_.queueCapacity < 1)
    throw std::invalid_argument("JobServer: need queue capacity >= 1");
  workerStats_.resize(std::size_t(cfg_.workers));
  workers_.reserve(std::size_t(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w)
    workers_.emplace_back([this, w] { workerLoop(w); });
}

JobServer::~JobServer() { shutdown(); }

SubmitOutcome JobServer::submit(const JobSpec& spec,
                                const SubmitOptions& opts) {
  std::vector<std::string> errs = validateSpec(spec);
  util::MutexLock lk(mu_);
  if (!errs.empty()) {
    ++rejected_;
    std::string reason = "invalid spec: " + errs.front();
    for (std::size_t i = 1; i < errs.size(); ++i) reason += "; " + errs[i];
    return {false, 0, reason};
  }
  if (stop_) {
    ++rejected_;
    return {false, 0, "server is shutting down"};
  }
  if (queue_.size() >= cfg_.queueCapacity) {
    // Backpressure, not blocking: the accept path reports and returns so
    // the submitting client decides (resubmit, shed, or wait) — a stalled
    // daemon accept loop would be worse than a rejected job.
    ++rejected_;
    return {false, 0,
            "queue full (capacity " + std::to_string(cfg_.queueCapacity) +
                "): resubmit after a job drains"};
  }
  std::uint64_t id = nextId_++;
  Job& job = jobs_[id];
  job.rec.id = id;
  job.rec.spec = spec;
  job.rec.state = JobState::kQueued;
  job.opts = opts;
  job.cancelFlag = std::make_shared<std::atomic<bool>>(false);
  job.submittedAt = std::chrono::steady_clock::now();
  if (opts.deadlineMs > 0) {
    job.hasDeadline = true;
    job.deadline = job.submittedAt +
                   std::chrono::microseconds(std::int64_t(opts.deadlineMs * 1000));
  }
  queue_.push_back(id);
  workCv_.notify_one();
  return {true, id, ""};
}

JobRecord JobServer::wait(std::uint64_t id) {
  util::MutexLock lk(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  // Explicit loop rather than a predicate lambda: the guarded read stays in
  // this annotated scope, where the analysis can see mu_ is held.
  while (!isTerminal(it->second.rec.state)) doneCv_.wait(lk);
  return it->second.rec;
}

std::optional<JobRecord> JobServer::poll(std::uint64_t id) const {
  util::MutexLock lk(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.rec;
}

bool JobServer::cancel(std::uint64_t id) {
  util::MutexLock lk(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || isTerminal(it->second.rec.state)) return false;
  it->second.cancelFlag->store(true);
  if (it->second.rec.state == JobState::kQueued) {
    // A queued job never runs: drop it from the queue and settle it now
    // (even while paused), so cancel is immediate rather than best-effort.
    std::erase(queue_, id);
    finishLocked(it->second, JobState::kCancelled);
  }
  return true;
}

void JobServer::pause() {
  util::MutexLock lk(mu_);
  paused_ = true;
}

void JobServer::resume() {
  util::MutexLock lk(mu_);
  paused_ = false;
  workCv_.notify_all();
}

void JobServer::shutdown() {
  {
    util::MutexLock lk(mu_);
    if (stop_) {
      // Second call: workers already told to stop; fall through to join.
    }
    stop_ = true;
    for (std::uint64_t id : queue_) {
      Job& job = jobs_.at(id);
      job.rec.error = "server shut down before the job ran";
      finishLocked(job, JobState::kFailed);
    }
    queue_.clear();
    workCv_.notify_all();
  }
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

void JobServer::finishLocked(Job& job, JobState state) {
  job.rec.state = state;
  job.rec.turnaroundMs =
      msBetween(job.submittedAt, std::chrono::steady_clock::now());
  if (state == JobState::kDone)
    familyTurnaroundMs_[familyName(job.rec.spec.family)].push_back(
        job.rec.turnaroundMs);
  doneCv_.notify_all();
}

void JobServer::workerLoop(int index) {
  // The worker's arena: one isolated Simulator reused across every job this
  // worker runs. reset() before each run is the cross-job leak audit — a
  // nonzero discard count means a previous job left events or frames behind.
  sim::Simulator arena;
  for (;;) {
    util::MutexLock lk(mu_);
    while (!(stop_ || (!paused_ && !queue_.empty()))) workCv_.wait(lk);
    if (stop_) return;
    std::uint64_t id = queue_.front();
    queue_.pop_front();
    Job& job = jobs_.at(id);
    auto now = std::chrono::steady_clock::now();
    if (job.cancelFlag->load()) {
      finishLocked(job, JobState::kCancelled);
      continue;
    }
    if (job.hasDeadline && now >= job.deadline) {
      finishLocked(job, JobState::kExpired);
      continue;
    }
    job.rec.state = JobState::kRunning;
    job.rec.worker = index;
    workerStats_[std::size_t(index)].busy = true;
    JobSpec spec = job.rec.spec;
    SubmitOptions opts = job.opts;
    std::shared_ptr<std::atomic<bool>> cancelFlag = job.cancelFlag;
    CancelToken token{cancelFlag.get(), job.hasDeadline, job.deadline};
    lk.unlock();

    auto t0 = std::chrono::steady_clock::now();
    JobState final = JobState::kDone;
    std::string error, resultJson, keyHex;
    std::uint64_t digest = 0, key = 0;
    int violations = 0, lints = 0;
    bool cacheHit = false, stored = false;
    std::size_t dirty = 0;
    try {
      verify::CommPlan plan = planForSpec(spec);
      key = jobKey(spec, plan);
      keyHex = util::hex64(key);
      CacheEntry cached;
      {
        util::MutexLock lk2(mu_);
        auto it = cache_.find(key);
        if (opts.useCache && it != cache_.end()) {
          cacheHit = true;
          cached = it->second;
        }
      }
      if (cacheHit) {
        resultJson = cached.resultJson;
        digest = cached.digest;
        lints = cached.lints;
      } else {
        verify::VerifyResult vr = verify::verifyPlan(plan);
        violations = int(vr.violations.size());
        lints = int(vr.lints.size());
        if (!vr.ok()) {
          final = JobState::kFailed;
          error = "plan verification failed: " +
                  vr.violations.front().check + " at " +
                  vr.violations.front().site + ": " +
                  vr.violations.front().detail;
          if (violations > 1)
            error += " (+" + std::to_string(violations - 1) + " more)";
        } else {
          dirty = arena.reset();
          RunOutcome out = runJob(spec, arena, token);
          if (out.cancelled) {
            final = cancelFlag->load() ? JobState::kCancelled
                                       : JobState::kExpired;
          } else {
            resultJson = out.resultJson;
            digest = out.digest;
            stored = true;
          }
        }
      }
    } catch (const std::exception& e) {
      final = JobState::kFailed;
      error = e.what();
    }
    auto t1 = std::chrono::steady_clock::now();

    lk.lock();
    if (stored)
      cache_[key] = CacheEntry{resultJson, digest, lints};
    Job& done = jobs_.at(id);
    done.rec.cacheHit = cacheHit;
    done.rec.cacheKeyHex = keyHex;
    done.rec.resultJson = resultJson;
    done.rec.digest = digest;
    done.rec.error = error;
    done.rec.violations = violations;
    done.rec.lints = lints;
    if (cacheHit) ++cacheHits_;
    if (dirty != 0) ++arenaDirtyResets_;
    WorkerStats& ws = workerStats_[std::size_t(index)];
    ws.busy = false;
    ++ws.jobsRun;
    ws.busyMs += msBetween(t0, t1);
    finishLocked(done, final);
  }
}

std::string JobServer::statusz() const {
  util::MutexLock lk(mu_);
  std::map<std::string, int> byState;
  for (const char* s : {"queued", "running", "done", "failed", "cancelled",
                        "expired"})
    byState[s] = 0;
  for (const auto& [id, job] : jobs_) ++byState[stateName(job.rec.state)];
  double wallMs =
      msBetween(startedAt_, std::chrono::steady_clock::now());

  std::ostringstream os;
  os << "{\"jobs\":{";
  bool first = true;
  for (const auto& [state, count] : byState) {
    if (!first) os << ",";
    first = false;
    os << json::quoted(state) << ":" << count;
  }
  os << "},\"queueDepth\":" << queue_.size()
     << ",\"queueCapacity\":" << cfg_.queueCapacity
     << ",\"rejected\":" << rejected_ << ",\"cacheHits\":" << cacheHits_
     << ",\"cacheEntries\":" << cache_.size()
     << ",\"arenaDirtyResets\":" << arenaDirtyResets_ << ",\"workers\":[";
  for (std::size_t w = 0; w < workerStats_.size(); ++w) {
    const WorkerStats& ws = workerStats_[w];
    if (w != 0) os << ",";
    double util = wallMs > 0 ? std::min(1.0, ws.busyMs / wallMs) : 0.0;
    os << "{\"id\":" << w << ",\"jobsRun\":" << ws.jobsRun
       << ",\"busy\":" << (ws.busy ? "true" : "false")
       << ",\"utilization\":" << json::number(util) << "}";
  }
  os << "],\"families\":{";
  first = true;
  for (const auto& [family, samples] : familyTurnaroundMs_) {
    if (!first) os << ",";
    first = false;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    os << json::quoted(family) << ":{\"count\":" << sorted.size()
       << ",\"p50Ms\":" << json::number(percentile(sorted, 0.50))
       << ",\"p90Ms\":" << json::number(percentile(sorted, 0.90))
       << ",\"p99Ms\":" << json::number(percentile(sorted, 0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace anton::serve
