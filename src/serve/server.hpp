// The concurrent job server (DESIGN.md §9): simulation as a service.
//
// A JobServer owns a fixed pool of worker threads; each worker owns one
// isolated Simulator arena for its whole lifetime and runs jobs on it
// sequentially (the kernel itself stays single-threaded — concurrency lives
// strictly between jobs, never inside one). Submissions are validated
// structurally, queued into a bounded queue (a full queue rejects with a
// reason — the accept path never blocks), and executed as:
//
//   plan     = planForSpec(spec)          static plan via the registry
//   key      = jobKey(spec, plan)         FNV over spec + snapshot bytes
//   cache?   -> done, cacheHit = true     verified+simulated once per key
//   verify   = verifyPlan(plan)           violations fail the job up front
//   reset()  audit                        arena must come back clean (0)
//   runJob(spec, arena, token)            cooperative cancel + deadline
//   cache[key] = result                   stored even for useCache=false
//
// Results are canonical JSON (runner.hpp): bit-identical across workers for
// identical specs, which the determinism test and the serve bench assert.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_spec.hpp"
#include "serve/runner.hpp"
#include "util/thread_safety.hpp"

namespace anton::serve {

struct ServerConfig {
  int workers = 4;
  std::size_t queueCapacity = 16;  ///< queued (not yet running) jobs
};

/// Per-submission options: change when/whether a result arrives, never what
/// it is — deliberately NOT part of the spec or the cache key.
struct SubmitOptions {
  bool useCache = true;   ///< false forces execution; the result is still
                          ///< stored, so a later submit can hit
  double deadlineMs = 0;  ///< wall-clock budget from submission; 0 = none
};

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;
  std::string reason;  ///< rejection reason when !accepted
};

enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,     ///< validation passed but verify/run failed; see error
  kCancelled,  ///< cancel() won before completion
  kExpired,    ///< deadline passed before completion
};

const char* stateName(JobState s);
bool isTerminal(JobState s);

struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  bool cacheHit = false;
  std::string cacheKeyHex;  ///< "0x..." once the plan was built
  std::string resultJson;   ///< canonical outcome (kDone only)
  std::uint64_t digest = 0;
  std::string error;        ///< kFailed diagnostic
  int violations = 0;       ///< static-verifier findings (kFailed on > 0)
  int lints = 0;
  int worker = -1;
  double turnaroundMs = 0;  ///< submission -> terminal state
};

class JobServer {
 public:
  explicit JobServer(ServerConfig cfg = {});
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Validate and enqueue. Never blocks: a structurally invalid spec or a
  /// full queue rejects immediately with a reason.
  SubmitOutcome submit(const JobSpec& spec, const SubmitOptions& opts = {});

  /// Block until the job reaches a terminal state; returns its record.
  /// Throws std::invalid_argument for unknown ids.
  JobRecord wait(std::uint64_t id);

  /// Snapshot of the record, or nullopt for unknown ids.
  std::optional<JobRecord> poll(std::uint64_t id) const;

  /// Request cancellation. Queued jobs never run; running jobs stop at the
  /// next cooperative check. Returns false when the job is unknown or
  /// already terminal.
  bool cancel(std::uint64_t id);

  /// Hold/release the workers' dequeue (admin + deterministic tests: fill
  /// the queue, cancel queued jobs, expire deadlines — then release).
  void pause();
  void resume();

  /// /statusz-style report as canonical JSON: queue depth, per-state job
  /// counts, cache hits/entries, the arena-reset leak audit, per-worker
  /// utilization and per-family turnaround percentiles.
  std::string statusz() const;

  /// Stop accepting, let running jobs finish, fail queued jobs, join.
  void shutdown();

 private:
  struct Job {
    JobRecord rec;
    SubmitOptions opts;
    std::shared_ptr<std::atomic<bool>> cancelFlag;
    std::chrono::steady_clock::time_point submittedAt;
    std::chrono::steady_clock::time_point deadline;
    bool hasDeadline = false;
  };
  struct WorkerStats {
    std::uint64_t jobsRun = 0;
    double busyMs = 0;
    bool busy = false;
  };
  struct CacheEntry {
    std::string resultJson;
    std::uint64_t digest = 0;
    int lints = 0;
  };

  void workerLoop(int index);
  /// Stamp the terminal state + notify waiters. The REQUIRES contract is
  /// the "Locked" suffix made machine-checked: calling this without mu_
  /// held is a clang -Wthread-safety build break.
  void finishLocked(Job& job, JobState state) ANTON_REQUIRES(mu_);

  ServerConfig cfg_;
  mutable util::Mutex mu_;
  /// condition_variable_any: waits directly on util::MutexLock (the
  /// annotated scoped lock is BasicLockable).
  std::condition_variable_any workCv_;          ///< workers: queue/stop/pause
  mutable std::condition_variable_any doneCv_;  ///< waiters: terminal states
  bool stop_ ANTON_GUARDED_BY(mu_) = false;
  bool paused_ ANTON_GUARDED_BY(mu_) = false;
  std::uint64_t nextId_ ANTON_GUARDED_BY(mu_) = 1;
  std::deque<std::uint64_t> queue_ ANTON_GUARDED_BY(mu_);
  std::map<std::uint64_t, Job> jobs_ ANTON_GUARDED_BY(mu_);
  std::map<std::uint64_t, CacheEntry> cache_ ANTON_GUARDED_BY(mu_);
  std::vector<WorkerStats> workerStats_ ANTON_GUARDED_BY(mu_);
  std::map<std::string, std::vector<double>> familyTurnaroundMs_
      ANTON_GUARDED_BY(mu_);
  std::uint64_t cacheHits_ ANTON_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_ ANTON_GUARDED_BY(mu_) = 0;
  /// Cross-job leak audit: stays 0.
  std::uint64_t arenaDirtyResets_ ANTON_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point startedAt_;  // set once in the ctor
  std::vector<std::thread> workers_;  // last: joined before members die
};

}  // namespace anton::serve
