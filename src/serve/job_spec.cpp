#include "serve/job_spec.hpp"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

namespace anton::serve {
namespace {

namespace json = util::json;

bool parseShapeInto(const std::string& s, util::TorusShape* out) {
  int v[3] = {0, 0, 0};
  std::size_t pos = 0;
  for (int d = 0; d < 3; ++d) {
    std::size_t next = d < 2 ? s.find('x', pos) : s.size();
    if (next == std::string::npos || next == pos) return false;
    int val = 0;
    for (std::size_t i = pos; i < next; ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      val = val * 10 + (s[i] - '0');
      if (val > 1 << 20) return false;
    }
    v[d] = val;
    pos = next + 1;
  }
  *out = {v[0], v[1], v[2]};
  return true;
}

}  // namespace

util::TorusShape parseShape(const std::string& s) {
  util::TorusShape shape{0, 0, 0};
  if (!parseShapeInto(s, &shape))
    throw std::runtime_error("malformed torus shape \"" + s +
                             "\" (want AxBxC)");
  return shape;
}

const char* familyName(JobFamily f) {
  switch (f) {
    case JobFamily::kQuickstartMd: return "quickstart-md";
    case JobFamily::kFig5Ping: return "fig5-ping";
    case JobFamily::kTable2AllReduce: return "table2-allreduce";
    case JobFamily::kFaultSweep: return "fault-sweep";
  }
  return "?";
}

JobFamily parseFamily(const std::string& name) {
  for (JobFamily f : {JobFamily::kQuickstartMd, JobFamily::kFig5Ping,
                      JobFamily::kTable2AllReduce, JobFamily::kFaultSweep})
    if (name == familyName(f)) return f;
  throw std::invalid_argument("unknown job family: " + name);
}

std::string specToJson(const JobSpec& s) {
  std::ostringstream os;
  os << "{\"family\":" << json::quoted(familyName(s.family))
     << ",\"shape\":" << json::quoted(s.shape.str())
     << ",\"seed\":" << s.seed << ",\"steps\":" << s.steps
     << ",\"atoms\":" << s.atoms << ",\"maxHops\":" << s.maxHops
     << ",\"payloadBytes\":" << s.payloadBytes << ",\"words\":" << s.words
     << ",\"bitErrorRate\":" << json::number(s.bitErrorRate)
     << ",\"maxRetransmits\":" << s.maxRetransmits
     << ",\"degradedMode\":" << (s.degradedMode ? "true" : "false")
     << ",\"recoveryTimeoutUs\":" << json::number(s.recoveryTimeoutUs)
     << ",\"recoveryMaxResends\":" << s.recoveryMaxResends
     << ",\"recoveryBackoffUs\":" << json::number(s.recoveryBackoffUs);
  // Emitted only when set: serial specs keep their pre-sharding canonical
  // bytes (and thus their cache keys).
  if (!s.sharding.empty()) os << ",\"sharding\":" << json::quoted(s.sharding);
  os << "}";
  return os.str();
}

JobSpec specFromValue(const json::Value& v) {
  if (v.type != json::Value::kObject)
    throw std::runtime_error("job spec must be a JSON object");
  static const std::set<std::string> kKnown = {
      "family",        "shape",          "seed",
      "steps",         "atoms",          "maxHops",
      "payloadBytes",  "words",          "bitErrorRate",
      "maxRetransmits", "degradedMode",  "recoveryTimeoutUs",
      "recoveryMaxResends", "recoveryBackoffUs", "sharding"};
  for (const auto& [key, value] : v.obj)
    if (!kKnown.count(key))
      throw std::runtime_error("job spec: unknown field \"" + key + "\"");

  JobSpec s;
  s.family = parseFamily(
      json::asString(json::field(v, "family", "spec.family"), "spec.family"));
  if (const json::Value* f = json::optField(v, "shape")) {
    if (!parseShapeInto(json::asString(*f, "spec.shape"), &s.shape))
      throw std::runtime_error("job spec: shape must look like \"4x4x4\"");
  }
  auto getInt = [&](const char* key, int* out) {
    if (const json::Value* f = json::optField(v, key))
      *out = json::asInt(*f, std::string("spec.") + key);
  };
  auto getDouble = [&](const char* key, double* out) {
    if (const json::Value* f = json::optField(v, key))
      *out = json::asDouble(*f, std::string("spec.") + key);
  };
  if (const json::Value* f = json::optField(v, "seed"))
    s.seed = json::asU64(*f, "spec.seed");
  getInt("steps", &s.steps);
  getInt("atoms", &s.atoms);
  getInt("maxHops", &s.maxHops);
  getInt("payloadBytes", &s.payloadBytes);
  getInt("words", &s.words);
  getDouble("bitErrorRate", &s.bitErrorRate);
  getInt("maxRetransmits", &s.maxRetransmits);
  if (const json::Value* f = json::optField(v, "degradedMode"))
    s.degradedMode = json::asBool(*f, "spec.degradedMode");
  getDouble("recoveryTimeoutUs", &s.recoveryTimeoutUs);
  getInt("recoveryMaxResends", &s.recoveryMaxResends);
  getDouble("recoveryBackoffUs", &s.recoveryBackoffUs);
  if (const json::Value* f = json::optField(v, "sharding"))
    s.sharding = json::asString(*f, "spec.sharding");
  return s;
}

JobSpec specFromJson(const std::string& text) {
  return specFromValue(json::parse(text, "job spec"));
}

std::vector<std::string> validateSpec(const JobSpec& s) {
  std::vector<std::string> errs;
  auto err = [&](const std::string& m) { errs.push_back(m); };

  if (s.shape.nx < 1 || s.shape.ny < 1 || s.shape.nz < 1)
    err("shape extents must all be >= 1");
  else if (s.shape.size() > 4096)
    err("shape too large: " + std::to_string(s.shape.size()) +
        " nodes exceeds the 4096-node service cap");
  if (!std::isfinite(s.bitErrorRate) || s.bitErrorRate < 0.0 ||
      s.bitErrorRate > 0.01)
    err("bitErrorRate must be in [0, 0.01]");
  if (s.maxRetransmits < 1 || s.maxRetransmits > 64)
    err("maxRetransmits must be in [1, 64]");
  if (!std::isfinite(s.recoveryTimeoutUs) || s.recoveryTimeoutUs < 0.0)
    err("recoveryTimeoutUs must be finite and >= 0");
  if (s.recoveryMaxResends < 0 || s.recoveryMaxResends > 1000)
    err("recoveryMaxResends must be in [0, 1000]");
  if (!std::isfinite(s.recoveryBackoffUs) || s.recoveryBackoffUs < 0.0)
    err("recoveryBackoffUs must be finite and >= 0");
  if (!s.sharding.empty()) {
    if (s.sharding != "per-node" && s.sharding != "slab-x")
      err("sharding must be \"\", \"per-node\" or \"slab-x\"");
    if (s.family != JobFamily::kQuickstartMd &&
        s.family != JobFamily::kTable2AllReduce)
      err("sharding is only supported for quickstart-md and "
          "table2-allreduce");
    if (s.degradedMode)
      err("sharding is incompatible with degradedMode (the sharded kernel "
          "refuses fault models)");
    if (s.bitErrorRate > 0.0)
      err("sharding is incompatible with a nonzero bitErrorRate (the "
          "sharded kernel refuses fault models)");
  }

  switch (s.family) {
    case JobFamily::kQuickstartMd:
      if (s.steps < 1 || s.steps > 10000)
        err("steps must be in [1, 10000]");
      if (s.atoms < 64 || s.atoms > 100000)
        err("atoms must be in [64, 100000]");
      break;
    case JobFamily::kFig5Ping:
      if (!(s.shape == util::TorusShape{8, 8, 8}))
        err("fig5-ping runs on the paper's 8x8x8 torus (shape must be "
            "\"8x8x8\")");
      if (s.maxHops < 0 || s.maxHops > 12)
        err("maxHops must be in [0, 12]");
      if (s.payloadBytes < 0 || s.payloadBytes > 2048)
        err("payloadBytes must be in [0, 2048]");
      break;
    case JobFamily::kTable2AllReduce:
    case JobFamily::kFaultSweep:
      if (s.words < 0 || s.words > 1024)
        err("words must be in [0, 1024]");
      if (s.family == JobFamily::kFaultSweep && s.recoveryTimeoutUs <= 0.0)
        err("fault-sweep requires recoveryTimeoutUs > 0 (armed waits)");
      break;
  }
  return errs;
}

JobSpec quickstartMdSpec(int steps) {
  JobSpec s;
  s.family = JobFamily::kQuickstartMd;
  s.shape = {4, 4, 4};
  s.steps = steps;
  s.atoms = 1536;
  return s;
}

JobSpec fig5PingSpec(int maxHops, int payloadBytes) {
  JobSpec s;
  s.family = JobFamily::kFig5Ping;
  s.shape = {8, 8, 8};
  s.maxHops = maxHops;
  s.payloadBytes = payloadBytes;
  return s;
}

JobSpec table2AllReduceSpec(util::TorusShape shape, int words) {
  JobSpec s;
  s.family = JobFamily::kTable2AllReduce;
  s.shape = shape;
  s.words = words;
  return s;
}

JobSpec faultSweepSpec(util::TorusShape shape, double bitErrorRate,
                       int maxRetransmits) {
  JobSpec s;
  s.family = JobFamily::kFaultSweep;
  s.shape = shape;
  s.bitErrorRate = bitErrorRate;
  s.maxRetransmits = maxRetransmits;
  // The fault sweep's armed-hooks tuning: short deadline, deep budget.
  s.recoveryTimeoutUs = 1000.0;
  s.recoveryMaxResends = 10;
  s.recoveryBackoffUs = 0.5;
  return s;
}

}  // namespace anton::serve
