#include "serve/runner.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <cstdio>

#include "core/allreduce.hpp"
#include "core/recovery.hpp"
#include "fault/plan.hpp"
#include "md/anton_app.hpp"
#include "net/machine.hpp"
#include "net/probe.hpp"
#include "plan_registry.hpp"
#include "util/json.hpp"
#include "verify/lookahead.hpp"
#include "verify/shard_contract.hpp"
#include "verify/snapshot.hpp"

namespace anton::serve {
namespace {

namespace json = util::json;

/// Fig. 5 destination at the given hop count: 1-4 X only, 5-8 add Y,
/// 9-12 add Z (shortest-path max 4 per dimension on the 8x8x8 torus).
RunOutcome cancelledOutcome() {
  RunOutcome out;
  out.cancelled = true;
  return out;
}

util::TorusCoord destAtHops(int hops) {
  int hx = std::min(hops, 4);
  int hy = std::min(std::max(hops - 4, 0), 4);
  int hz = std::min(std::max(hops - 8, 0), 4);
  return {hx, hy, hz};
}

md::AntonMdConfig mdConfigFor(const JobSpec& spec) {
  md::AntonMdConfig cfg = tools::quickstartMdConfig();
  cfg.recoveryTimeoutUs = spec.recoveryTimeoutUs;
  cfg.recoveryMaxResends = spec.recoveryMaxResends;
  cfg.recoveryBackoffUs = spec.recoveryBackoffUs;
  // The sharded kernel has no fault model, so there is nothing for armed
  // waits to recover from — and the shared drop registry is the one
  // cross-shard mutable object the step tasks would race on. Disarm.
  if (!spec.sharding.empty()) cfg.recoveryTimeoutUs = 0.0;
  return cfg;
}

/// Worker threads per sharded job: the server runs jobs concurrently, so
/// each job's crew stays small.
constexpr int kShardWorkers = 3;

/// Prove spec.sharding against the job's comm plan with the live lookahead
/// analyzer and enable the sharded kernel. Returns true when sharded; on
/// analyzer rejection (or any sharding construction failure) logs the
/// diagnostic and leaves the kernel serial — the job result is bit-identical
/// either way, so falling back is always sound.
bool enableShardingFor(const JobSpec& spec, sim::Simulator& arena) {
  if (spec.sharding.empty()) return false;
  try {
    verify::Sharding sharding = spec.sharding == "per-node"
                                    ? verify::perNodeSharding(spec.shape)
                                    : verify::slabSharding(spec.shape);
    verify::LookaheadReport report =
        verify::analyzeLookahead(planForSpec(spec), sharding);
    arena.enableSharded(
        verify::shardLayoutFromReport(report, spec.shape, sharding),
        kShardWorkers);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "serve: sharding \"%s\" refused for %s job, running "
                 "serial: %s\n",
                 spec.sharding.c_str(), familyName(spec.family), e.what());
    return false;
  }
}

core::RecoveryHooks recoveryHooksFor(const JobSpec& spec,
                                     core::DropRegistry& reg,
                                     core::RecoveryStats& stats) {
  core::RecoveryHooks hooks;
  hooks.registry = &reg;
  hooks.config.timeout = sim::us(spec.recoveryTimeoutUs);
  hooks.config.maxResends = spec.recoveryMaxResends;
  hooks.config.resendBackoff = sim::us(spec.recoveryBackoffUs);
  hooks.stats = &stats;
  return hooks;
}

/// Canonical metrics object: sorted keys (std::map order), classic-locale
/// full-precision numbers. The bytes both the digest and the cache store.
std::string metricsJson(const std::map<std::string, double>& metrics) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) os << ",";
    first = false;
    os << json::quoted(key) << ":" << json::number(value);
  }
  os << "}";
  return os.str();
}

/// Assemble the outcome: canonical JSON + digest over everything that must
/// be bit-identical across workers (metrics and any extra digest fields).
RunOutcome finish(const JobSpec& spec, std::map<std::string, double> metrics,
                  const std::vector<std::pair<std::string, std::string>>&
                      extraDigests = {}) {
  RunOutcome out;
  out.metrics = std::move(metrics);
  std::string body = metricsJson(out.metrics);
  std::uint64_t digest = util::fnv1a64(body);
  for (const auto& [key, hex] : extraDigests)
    digest = util::fnv1a64(hex, util::fnv1a64(key, digest));
  out.digest = digest;
  std::ostringstream os;
  os << "{\"family\":" << json::quoted(familyName(spec.family))
     << ",\"metrics\":" << body;
  for (const auto& [key, hex] : extraDigests)
    os << "," << json::quoted(key) << ":" << json::quoted(hex);
  os << ",\"digest\":" << json::quoted(util::hex64(digest)) << "}";
  out.resultJson = os.str();
  return out;
}

RunOutcome runQuickstartMd(const JobSpec& spec, sim::Simulator& arena,
                           const CancelToken& cancel) {
  arena.reset();
  net::Machine machine(arena, spec.shape);
  md::SyntheticSystemParams sp;
  sp.targetAtoms = spec.atoms;
  sp.seed = spec.seed;
  md::AntonMdApp app(machine, md::buildSyntheticSystem(sp), mdConfigFor(spec));
  const bool sharded = enableShardingFor(spec, arena);
  // One runSteps call per step so cancellation can land between steps: the
  // step counter carries across calls, so the phase schedule (long-range /
  // thermostat / migration cadence) is identical to one runSteps(steps).
  for (int k = 0; k < spec.steps; ++k) {
    if (cancel.stop()) return cancelledOutcome();
    app.runSteps(1);
  }
  if (sharded) arena.disableSharded();

  std::map<std::string, double> m;
  if (!spec.sharding.empty()) m["sharded"] = sharded ? 1.0 : 0.0;
  m["steps_done"] = double(app.stepsDone());
  double total = 0.0;
  for (const md::StepTiming& t : app.stepTimings()) total += t.totalUs;
  m["mean_step_us"] = total / double(app.stepsDone());
  m["last_step_us"] = app.lastStep().totalUs;
  m["sim_us"] = sim::toUs(arena.now());
  m["migrated_total"] = double(app.totalMigrated());
  m["drops"] = double(app.dropsObserved());
  m["resends"] = double(app.recoveryStats().resends);
  m["hard_failures"] = double(app.recoveryStats().hardFailures);

  // Trajectory digest: every coordinate of the gathered end state, rendered
  // through the locale-proof number formatter and hashed. Two runs agree on
  // this exactly when they computed the same trajectory bit-for-bit.
  md::MDSystem end = app.gatherSystem();
  std::uint64_t pos = util::kFnvOffsetBasis;
  for (const md::Vec3& p : end.positions)
    for (double c : {p.x, p.y, p.z}) pos = util::fnv1a64(json::number(c), pos);
  return finish(spec, std::move(m), {{"positionDigest", util::hex64(pos)}});
}

RunOutcome runFig5Ping(const JobSpec& spec, sim::Simulator& arena,
                       const CancelToken& cancel) {
  std::map<std::string, double> m;
  std::uint64_t reroutes = 0;
  auto measure = [&](int hops, int payload, bool bidir) {
    arena.reset();
    net::MachineConfig mc;
    mc.faultReroute = spec.degradedMode;
    net::Machine machine(arena, spec.shape, mc);
    fault::FaultPlan plan;
    if (spec.degradedMode) {
      // The degraded-mode scenario: node 0's X+ link is out for the whole
      // measurement window, so every X-leading route leaves through another
      // dimension first.
      plan.addLinkOutage(0, /*dim=*/0, /*sign=*/+1, 0, sim::us(1e9));
      machine.setFaultModel(&plan);
    }
    net::ClientAddr src{0, net::kSlice0};
    net::ClientAddr dst{util::torusIndex(destAtHops(hops), machine.shape()),
                        hops == 0 ? net::kSlice1 : net::kSlice0};
    double ns = bidir
                    ? net::bidirLatencyNs(machine, src, dst, std::size_t(payload))
                    : net::oneWayLatencyNs(machine, src, dst,
                                           std::size_t(payload), true);
    reroutes += machine.stats().faultReroutes;
    return ns;
  };

  std::vector<int> payloads = {0};
  if (spec.payloadBytes != 0) payloads.push_back(spec.payloadBytes);
  for (int h = 0; h <= spec.maxHops; ++h) {
    if (cancel.stop()) return cancelledOutcome();
    for (int payload : payloads) {
      std::string tail = std::to_string(payload) + "_h" + std::to_string(h);
      m["uni" + tail] = measure(h, payload, false);
      m["bidir" + tail] = measure(h, payload, true);
    }
  }
  if (spec.maxHops >= 1) m["one_hop_ns"] = m.at("uni0_h1");
  if (spec.degradedMode) m["fault_reroutes"] = double(reroutes);
  return finish(spec, std::move(m));
}

RunOutcome runTable2AllReduce(const JobSpec& spec, sim::Simulator& arena,
                              const CancelToken& cancel) {
  if (cancel.stop()) return cancelledOutcome();
  arena.reset();
  net::Machine machine(arena, spec.shape);
  core::DimOrderedAllReduce reduce(machine);
  const bool sharded = enableShardingFor(spec, arena);

  const int n = machine.numNodes();
  const std::size_t words = std::size_t(spec.words);
  std::vector<std::vector<double>> out;
  out.resize(std::size_t(n));
  double start = sim::toUs(arena.now());
  // Per-node completion stamps, folded after the run: under the sharded
  // kernel the per-node tasks execute on different shards, so they must not
  // max-fold into one shared accumulator mid-run.
  std::vector<double> doneAt(std::size_t(n), start);
  auto task = [&](int node) -> sim::Task {
    std::vector<double> in(words, double(node));
    co_await reduce.run(node, std::move(in), &out[std::size_t(node)]);
    doneAt[std::size_t(node)] = sim::toUs(arena.now());
  };
  for (int node = 0; node < n; ++node) {
    sim::ScopedEventNode affinity(node, false);
    arena.spawn(task(node));
  }
  arena.run();
  if (sharded) arena.disableSharded();
  double done = start;
  for (double d : doneAt) done = std::max(done, d);

  double expect = double(n) * double(n - 1) / 2.0;  // sum 0..n-1, exact
  bool correct = true;
  for (int node = 0; node < n; ++node) {
    if (out[std::size_t(node)].size() != words) correct = false;
    for (double v : out[std::size_t(node)])
      if (v != expect) correct = false;
  }
  std::map<std::string, double> m;
  m["allreduce_us"] = done - start;
  m["nodes"] = double(n);
  m["words"] = double(spec.words);
  m["correct"] = correct ? 1.0 : 0.0;
  if (!spec.sharding.empty()) m["sharded"] = sharded ? 1.0 : 0.0;
  return finish(spec, std::move(m));
}

RunOutcome runFaultSweep(const JobSpec& spec, sim::Simulator& arena,
                         const CancelToken& cancel) {
  if (cancel.stop()) return cancelledOutcome();
  arena.reset();
  net::MachineConfig mc;
  mc.faultReroute = spec.degradedMode;
  net::Machine machine(arena, spec.shape, mc);
  fault::FaultPlan plan({.seed = spec.seed,
                         .bitErrorRate = spec.bitErrorRate,
                         .maxRetransmits = spec.maxRetransmits});
  machine.setFaultModel(&plan);
  core::DropRegistry registry(machine);
  core::RecoveryStats stats;
  core::DimOrderedAllReduce reduce(machine);
  reduce.setRecovery(recoveryHooksFor(spec, registry, stats));

  const int n = machine.numNodes();
  const std::size_t words = std::size_t(spec.words);
  std::vector<std::vector<double>> out;
  out.resize(std::size_t(n));
  auto task = [&](int node) -> sim::Task {
    std::vector<double> in(words, double(node + 1));  // exact in double
    co_await reduce.run(node, std::move(in), &out[std::size_t(node)]);
  };
  for (int node = 0; node < n; ++node) arena.spawn(task(node));
  arena.run();

  double expect = double(n) * double(n + 1) / 2.0;  // sum 1..n, exact
  bool correct = true;
  for (int node = 0; node < n; ++node) {
    if (out[std::size_t(node)].size() != words) correct = false;
    for (double v : out[std::size_t(node)])
      if (v != expect) correct = false;
  }
  std::map<std::string, double> m;
  m["allreduce_us"] = sim::toUs(arena.now());
  m["nodes"] = double(n);
  m["words"] = double(spec.words);
  m["correct"] = correct ? 1.0 : 0.0;
  m["crc_retransmits"] = double(machine.stats().crcRetransmits);
  m["link_failures"] = double(machine.stats().linkFailures);
  m["drops"] = double(registry.dropsObserved());
  m["timeouts"] = double(stats.timeouts);
  m["resends"] = double(stats.resends);
  m["hard_failures"] = double(stats.hardFailures);
  return finish(spec, std::move(m));
}

}  // namespace

verify::CommPlan planForSpec(const JobSpec& spec) {
  switch (spec.family) {
    case JobFamily::kQuickstartMd:
      return tools::buildMdPlan("md-" + spec.shape.str(), spec.shape,
                                spec.atoms, mdConfigFor(spec));
    case JobFamily::kFig5Ping:
      return tools::buildNamedPlan("fig5-ping");
    case JobFamily::kTable2AllReduce:
    case JobFamily::kFaultSweep:
      return tools::buildNamedPlan("table2-allreduce-" + spec.shape.str());
  }
  throw std::invalid_argument("planForSpec: unknown family");
}

std::uint64_t jobKey(const JobSpec& spec, const verify::CommPlan& plan) {
  return util::fnv1a64(verify::planToJson(plan),
                       util::fnv1a64(specToJson(spec)));
}

RunOutcome runJob(const JobSpec& spec, sim::Simulator& arena,
                  const CancelToken& cancel) {
  switch (spec.family) {
    case JobFamily::kQuickstartMd: return runQuickstartMd(spec, arena, cancel);
    case JobFamily::kFig5Ping: return runFig5Ping(spec, arena, cancel);
    case JobFamily::kTable2AllReduce:
      return runTable2AllReduce(spec, arena, cancel);
    case JobFamily::kFaultSweep: return runFaultSweep(spec, arena, cancel);
  }
  throw std::invalid_argument("runJob: unknown family");
}

}  // namespace anton::serve
