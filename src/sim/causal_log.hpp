// Causal-order oracle for the serial event kernel (DESIGN.md §11).
//
// The static lookahead analyzer (verify/lookahead.hpp) proves that every
// cross-shard happens-before edge of a CommPlan carries at least the shard
// pair's minimum link latency. This log is the dynamic side of that proof:
// behind a util::hotPath()-style thread-local knob, the serial Simulator
// records each executed event's (time, seq, causal parent, attributed node)
// so an offline checker can assert every *observed* cross-shard delta
// respects the statically claimed bound — a would-be race caught before a
// single thread exists.
//
// Attribution model:
//   * parent   — the seq of the event whose execution scheduled this one
//                (kNoCausalParent for events scheduled outside any event,
//                e.g. test setup at time zero).
//   * node     — the machine node the event acts on. net::Machine marks its
//                cross-node scheduling points explicitly; everything else
//                inherits the executing event's node (host orchestration
//                that never crosses a link stays within its shard).
//   * link     — true when the schedule point was a torus-link crossing
//                (Machine::forwardOnLink). Only link edges claim the
//                lookahead bound; inherited attribution is advisory.
//
// The knob must not perturb the schedule: recording happens strictly at
// schedule/execute points the kernel visits anyway, and with no log
// attached the hooks are a single thread-local pointer test. Batched link
// drains (util::hotPath().batchDrains) attribute arrivals at their
// reserveSeq() point — the exact spot the legacy path consumes a seq — so
// the recorded trace is bit-identical across hot-path knob modes
// (tests/determinism_test.cpp pins this).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace anton::sim {

inline constexpr std::uint64_t kNoCausalParent = ~std::uint64_t(0);

/// One executed event, as the oracle saw it.
struct CausalRecord {
  Time t = 0;              ///< execution time
  std::uint64_t seq = 0;   ///< kernel sequence number (unique per epoch)
  std::uint64_t parent = kNoCausalParent;  ///< scheduling event's seq
  std::int32_t node = -1;  ///< attributed machine node, -1 = host/unknown
  std::uint16_t epoch = 0; ///< Simulator::reset() generation
  std::uint8_t link = 0;   ///< 1 when scheduled across a torus link
  friend bool operator==(const CausalRecord&, const CausalRecord&) = default;
};

class CausalLog {
 public:
  /// Note an event scheduled under seq `seq`. Insert-if-absent: an earlier
  /// explicit note (the batched-drain reserveSeq point) wins over the
  /// kernel's default note at atReserved() time. Absence spans the fallback
  /// chain — a note migrated into the main log by an earlier window barrier
  /// must not be shadowed by a stage entry when the drain re-arms later.
  /// `node` < 0 inherits the scoped hint or, failing that, the executing
  /// event's node.
  void noteScheduled(std::uint64_t seq, std::int32_t node = -1,
                     bool link = false) {
    if (fallback_ != nullptr && fallback_->pending_.count(seq) != 0) return;
    pending_.try_emplace(seq, Pending{node >= 0 ? node
                                      : hintNode_ >= 0 ? hintNode_
                                                       : executingNode_,
                                      executingSeq_,
                                      link || (node < 0 && hintLink_)});
  }

  /// The kernel is about to run the event at (t, seq): append its record
  /// and make it the causal context for everything it schedules. A per-shard
  /// stage log (sharded kernel) misses events that were scheduled in an
  /// earlier window — their notes were merged into the main log — so the
  /// lookup falls back to a read-only probe of the fallback's pending map.
  void onExecute(Time t, std::uint64_t seq) {
    Pending p;
    if (auto it = pending_.find(seq); it != pending_.end()) {
      p = it->second;
      pending_.erase(it);
    } else if (fallback_ != nullptr) {
      // Read-only: the main log is not touched from worker threads. The
      // consumed entry goes stale there, which is harmless — a seq is
      // executed (or discarded) at most once per epoch.
      if (auto it2 = fallback_->pending_.find(seq);
          it2 != fallback_->pending_.end())
        p = it2->second;
    }
    records_.push_back(
        {t, seq, p.parent, p.node, epoch_, std::uint8_t(p.link ? 1 : 0)});
    executingSeq_ = seq;
    executingNode_ = p.node;
  }

  /// Sharded-kernel staging: make `main` the read-only fallback for
  /// onExecute() lookups (nullptr detaches).
  void setFallback(const CausalLog* main) { fallback_ = main; }
  /// Sharded-kernel staging: stage records must carry the main log's epoch.
  void setEpoch(std::uint16_t e) { epoch_ = e; }
  std::uint16_t epoch() const { return epoch_; }

  /// The event's callback returned: leave its causal context.
  void onExecuteDone() {
    executingSeq_ = kNoCausalParent;
    executingNode_ = -1;
  }

  /// A scheduled event was discarded unexecuted (cancelled or swept by
  /// reset()).
  void onDiscard(std::uint64_t seq) { pending_.erase(seq); }

  /// Simulator::reset(): seq numbers restart, so records from different
  /// generations must not alias. Bumps the epoch and drops pending notes
  /// (reset() discards their events too).
  void onReset() {
    ++epoch_;
    pending_.clear();
    executingSeq_ = kNoCausalParent;
    executingNode_ = -1;
  }

  const std::vector<CausalRecord>& records() const { return records_; }
  std::uint64_t executingSeq() const { return executingSeq_; }

  void clear() {
    records_.clear();
    pending_.clear();
    epoch_ = 0;
    executingSeq_ = kNoCausalParent;
    executingNode_ = -1;
  }

  /// FNV-1a over every record, field by field — the value that must match
  /// bit-for-bit across hot-path knob modes.
  std::uint64_t digest() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
      }
    };
    for (const CausalRecord& r : records_) {
      mix(std::uint64_t(r.t));
      mix(r.seq);
      mix(r.parent);
      mix(std::uint64_t(std::int64_t(r.node)));
      mix(std::uint64_t(r.epoch) << 8 | r.link);
    }
    return h;
  }

 private:
  friend class ScopedCausalNodeHint;
  // The sharded kernel's barrier remaps provisional seqs in stage records
  // and migrates stage pending notes into the main log.
  friend class Simulator;

  struct Pending {
    std::int32_t node = -1;
    std::uint64_t parent = kNoCausalParent;
    bool link = false;
  };

  std::vector<CausalRecord> records_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  const CausalLog* fallback_ = nullptr;
  std::uint64_t executingSeq_ = kNoCausalParent;
  std::int32_t executingNode_ = -1;
  std::int32_t hintNode_ = -1;
  bool hintLink_ = false;
  std::uint16_t epoch_ = 0;
};

/// This thread's attached oracle log, or nullptr (the default: the kernel
/// hooks reduce to one pointer test and record nothing). Thread-local for
/// the same reason util::hotPath() is: serve workers each own an arena.
inline CausalLog*& causalOracle() {
  thread_local CausalLog* log = nullptr;
  return log;
}

/// RAII: attach a log to this thread's kernel hooks for a scope.
class ScopedCausalOracle {
 public:
  explicit ScopedCausalOracle(CausalLog& log) : saved_(causalOracle()) {
    causalOracle() = &log;
  }
  ~ScopedCausalOracle() { causalOracle() = saved_; }
  ScopedCausalOracle(const ScopedCausalOracle&) = delete;
  ScopedCausalOracle& operator=(const ScopedCausalOracle&) = delete;

 private:
  CausalLog* saved_;
};

/// RAII: attribute every event scheduled in this scope to `node` (used by
/// net::Machine around its cross-node and local-delivery schedule points).
/// No-op when no log is attached.
class ScopedCausalNodeHint {
 public:
  ScopedCausalNodeHint(std::int32_t node, bool link)
      : log_(causalOracle()) {
    if (log_ == nullptr) return;
    savedNode_ = log_->hintNode_;
    savedLink_ = log_->hintLink_;
    log_->hintNode_ = node;
    log_->hintLink_ = link;
  }
  ~ScopedCausalNodeHint() {
    if (log_ == nullptr) return;
    log_->hintNode_ = savedNode_;
    log_->hintLink_ = savedLink_;
  }
  ScopedCausalNodeHint(const ScopedCausalNodeHint&) = delete;
  ScopedCausalNodeHint& operator=(const ScopedCausalNodeHint&) = delete;

 private:
  CausalLog* log_;
  std::int32_t savedNode_ = -1;
  bool savedLink_ = false;
};

}  // namespace anton::sim
