#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace anton::sim {

namespace {
/// Completed root-task frames are reaped every this many events, so
/// long-running simulations (millions of MD-step events) don't accumulate
/// every finished coroutine frame until the queue drains.
constexpr std::uint64_t kReapInterval = 1024;

constexpr Time kNoDeadline = std::numeric_limits<Time>::max();
}  // namespace

// --- slot arena -------------------------------------------------------------

std::uint32_t Simulator::EventArena::park(Callback fn, EventHandle cancelled) {
  if (!freeSlots.empty()) {
    std::uint32_t idx = freeSlots.back();
    freeSlots.pop_back();
    slots[idx].fn = std::move(fn);
    slots[idx].cancelled = std::move(cancelled);
    return idx;
  }
  slots.push_back(Slot{std::move(fn), std::move(cancelled)});
  return std::uint32_t(slots.size() - 1);
}

void Simulator::EventArena::release(std::uint32_t idx) {
  slots[idx].fn = Callback{};
  if (slots[idx].cancelled) {
    slots[idx].cancelled.reset();
    --liveCancellable;
  }
  freeSlots.push_back(idx);
}

void Simulator::purgeArena(EventArena& a) {
  // Cancelled events are discarded unexecuted and leave the clock untouched:
  // a retracted deadline must not stretch the simulated timeline. With no
  // cancellable events pending there is nothing to purge — and no reason to
  // touch the slot arena per step.
  if (a.liveCancellable == 0) return;
  while (!a.queue.empty() && a.slotCancelled(a.queue.top().slot)) {
    if (CausalLog* log = causalOracle()) log->onDiscard(a.queue.top().seq);
    a.release(a.queue.top().slot);
    a.queue.pop();
  }
}

// --- scheduling -------------------------------------------------------------

std::uint64_t Simulator::reserveSeq() {
  if (sharded_) {
    int s = detail::tlsShard();
    if (s >= 0) return provSeq(s);
  }
  return nextSeq_++;
}

std::uint64_t Simulator::provSeq(int shard) {
  Shard& sh = shards_[std::size_t(shard)];
  std::uint64_t seq = kProvBit |
                      (std::uint64_t(shard) << kProvShardShift) |
                      sh.provCounter++;
  // Every provisional seq is recorded against the event that reserved it;
  // the barrier replays execution order and hands these out canonical values
  // in exactly this order (the serial kernel's issue order).
  sh.reqSeqs.push_back(seq);
  return seq;
}

void Simulator::at(Time t, Callback fn) {
  if (sharded_) {
    shardedSchedule(t, 0, /*haveSeq=*/false, std::move(fn), nullptr);
    return;
  }
  if (t < now_) throw std::logic_error("Simulator::at: event scheduled in the past");
  std::uint32_t slot = host_.park(std::move(fn), nullptr);
  std::uint64_t seq = nextSeq_++;
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);
  host_.queue.push(Event{t, seq, slot});
}

void Simulator::atReserved(Time t, std::uint64_t seq, Callback fn) {
  if (sharded_) {
    shardedSchedule(t, seq, /*haveSeq=*/true, std::move(fn), nullptr);
    return;
  }
  if (t < now_)
    throw std::logic_error("Simulator::atReserved: event scheduled in the past");
  if (seq >= nextSeq_)
    throw std::logic_error("Simulator::atReserved: seq was not reserved");
  std::uint32_t slot = host_.park(std::move(fn), nullptr);
  // Insert-if-absent: a caller that attributed the seq at its reservation
  // point (net::Machine's batched drains) already fixed node and parent.
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);
  host_.queue.push(Event{t, seq, slot});
}

Simulator::EventHandle Simulator::atCancellable(Time t, Callback fn) {
  EventHandle h = std::allocate_shared<bool>(
      util::PoolAllocator<bool>(eventHandlePool()), false);
  if (sharded_) {
    shardedSchedule(t, 0, /*haveSeq=*/false, std::move(fn), h);
    return h;
  }
  if (t < now_)
    throw std::logic_error("Simulator::atCancellable: event scheduled in the past");
  std::uint32_t slot = host_.park(std::move(fn), h);
  ++host_.liveCancellable;
  std::uint64_t seq = nextSeq_++;
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);
  host_.queue.push(Event{t, seq, slot});
  return h;
}

void Simulator::shardedSchedule(Time t, std::uint64_t seq, bool haveSeq,
                                Callback fn, EventHandle cancelled) {
  int self = detail::tlsShard();
  int node = detail::scheduleNodeTls();
  int dest = node >= 0 ? layout_.shardOf(node) : self;
  Time here = self >= 0 ? shards_[std::size_t(self)].clock : now_;
  if (t < here)
    throw std::logic_error("Simulator: event scheduled in the past");
  if (!haveSeq) {
    seq = self >= 0 ? provSeq(self) : nextSeq_++;
  } else if (seq & kProvBit) {
    int owner = int((seq & ~kProvBit) >> kProvShardShift);
    std::uint64_t counter = seq & ((std::uint64_t(1) << kProvShardShift) - 1);
    if (owner < 0 || owner >= int(shards_.size()) ||
        counter >= shards_[std::size_t(owner)].provCounter)
      throw std::logic_error("Simulator::atReserved: seq was not reserved");
  } else if (seq >= nextSeq_) {
    throw std::logic_error("Simulator::atReserved: seq was not reserved");
  }
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);

  if (dest == self || self < 0) {
    // Same-shard (or host-context) schedule: push directly. The host owns
    // every queue between windows, so a host-side event with a node hint
    // lands straight in the owning shard's queue with a canonical seq.
    EventArena& a = dest < 0 ? host_ : shards_[std::size_t(dest)].arena;
    bool cancellable = cancelled != nullptr;
    std::uint32_t slot = a.park(std::move(fn), std::move(cancelled));
    if (cancellable) ++a.liveCancellable;
    a.queue.push(Event{t, seq, slot});
    return;
  }
  // Worker-context cross-shard send: stage in the outbox; the barrier
  // checks the channel-lookahead bound and delivers with the canonical seq.
  shards_[std::size_t(self)].outbox.push_back(
      Mail{t, seq, here, self, dest, std::move(fn), std::move(cancelled)});
}

void Simulator::spawn(Task task) {
  int s = detail::tlsShard();
  if (sharded_ && s >= 0) {
    // Spawn from inside a shard window: the task starts now (serial spawn
    // semantics), but its frame is staged per shard and adopted by the main
    // root list at the barrier — reaping is a host-only affair.
    Shard& sh = shards_[std::size_t(s)];
    sh.stagedRoots.push_back(std::move(task));
    sh.stagedRoots.back().startDetached();
    return;
  }
  roots_.push_back(std::move(task));
  roots_.back().startDetached();
  reapRoots();
}

void Simulator::reapRoots() {
  for (auto it = roots_.begin(); it != roots_.end();) {
    if (it->done()) {
      it->rethrowIfFailed();
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- serial execution -------------------------------------------------------

bool Simulator::stepHost() {
  purgeArena(host_);
  if (host_.queue.empty()) return false;
  Event ev = host_.queue.top();
  host_.queue.pop();
  // Move the callback out before running it: the callback may itself
  // schedule events, reusing (or growing) the slot arena.
  Callback fn = std::move(host_.slots[ev.slot].fn);
  host_.release(ev.slot);
  now_ = ev.t;
  ++processed_;
  if (CausalLog* log = causalOracle()) log->onExecute(ev.t, ev.seq);
  fn();
  // Re-fetch: the callback may have attached or detached the oracle.
  if (CausalLog* log = causalOracle()) log->onExecuteDone();
  return true;
}

bool Simulator::step() {
  if (sharded_)
    throw std::logic_error(
        "Simulator::step: no single next event under the sharded kernel "
        "(provisional order resolves at the window barrier); use run()");
  return stepHost();
}

std::uint64_t Simulator::run() {
  if (sharded_) return runSharded(0, /*hasDeadline=*/false);
  std::uint64_t n = 0;
  while (stepHost()) {
    if (++n % kReapInterval == 0) reapRoots();
  }
  reapRoots();
  return n;
}

std::uint64_t Simulator::runUntil(Time deadline) {
  if (sharded_) return runSharded(deadline, /*hasDeadline=*/true);
  std::uint64_t n = 0;
  while (true) {
    purgeArena(host_);
    if (host_.queue.empty() || host_.queue.top().t > deadline) break;
    stepHost();
    if (++n % kReapInterval == 0) reapRoots();
  }
  if (now_ < deadline) now_ = deadline;
  reapRoots();
  return n;
}

bool Simulator::empty() const {
  if (!host_.queue.empty()) return false;
  for (const Shard& sh : shards_)
    if (!sh.arena.queue.empty() || !sh.outbox.empty()) return false;
  return true;
}

std::size_t Simulator::reset() {
  // Sweep the WHOLE queue, not just the purgeable top: a retracted deadline
  // buried under a live event is discarded-but-clean, and counting it would
  // trip the serve layer's arenaDirtyResets == 0 audit with a false leak.
  std::size_t discarded = roots_.size();
  auto sweep = [&](EventArena& a) {
    for (const Event& ev : a.queue.container()) {
      if (!a.slotCancelled(ev.slot)) ++discarded;
      a.release(ev.slot);
    }
    a.queue.container().clear();  // capacity is retained for arena reuse
  };
  sweep(host_);
  if (sharded_) {
    for (Shard& sh : shards_) {
      sweep(sh.arena);
      for (const Mail& m : sh.outbox)
        if (!m.cancelled || !*m.cancelled) ++discarded;
      sh.outbox.clear();
      discarded += sh.stagedRoots.size();
      sh.stagedRoots.clear();
    }
    teardownSharded();
  }
  // Destroying a suspended root unwinds its frame without resuming it; any
  // events it scheduled are already gone with the queue.
  roots_.clear();
  now_ = 0;
  nextSeq_ = 0;
  processed_ = 0;
  // Sequence numbers restart: an attached oracle log must open a new epoch
  // so records from different generations cannot alias.
  if (CausalLog* log = causalOracle()) log->onReset();
  return discarded;
}

// --- sharded mode -----------------------------------------------------------

Simulator::~Simulator() {
  // Join workers before members are torn down. Participants are NOT
  // notified: a component outliving its Simulator is already dangling.
  stopCrew();
}

void Simulator::addShardParticipant(ShardParticipant* p) {
  participants_.push_back(p);
}

void Simulator::removeShardParticipant(ShardParticipant* p) {
  participants_.erase(
      std::remove(participants_.begin(), participants_.end(), p),
      participants_.end());
}

void Simulator::enableSharded(ShardLayout layout, int workers) {
  if (sharded_)
    throw std::logic_error("Simulator::enableSharded: sharded mode already on");
  if (layout.numShards < 1)
    throw std::invalid_argument("Simulator::enableSharded: numShards must be >= 1");
  if (layout.shardOfNode.empty())
    throw std::invalid_argument(
        "Simulator::enableSharded: layout maps no nodes to shards");
  for (int s : layout.shardOfNode)
    if (s < 0 || s >= layout.numShards)
      throw std::invalid_argument(
          "Simulator::enableSharded: node mapped outside [0, numShards)");
  Time cap = layout.effectiveLookaheadPs();
  if (cap <= 0)
    throw std::invalid_argument(
        "Simulator::enableSharded: sharding '" + layout.name +
        "' has a non-positive effective lookahead budget; a conservative "
        "kernel cannot run ahead at all (see lookahead.zero in the contract)");

  layout_ = std::move(layout);
  lookaheadPs_ = cap;
  shards_.clear();
  shards_.resize(std::size_t(layout_.numShards));
  shardedStats_ = {};
  hostCapValid_ = false;
  mainLog_ = nullptr;
  sharded_ = true;

  std::size_t enabled = 0;
  try {
    for (; enabled < participants_.size(); ++enabled)
      participants_[enabled]->onShardedEnable(layout_);
  } catch (...) {
    for (std::size_t i = 0; i < enabled; ++i)
      participants_[i]->onShardedDisable();
    sharded_ = false;
    shards_.clear();
    layout_ = {};
    lookaheadPs_ = 0;
    throw;
  }

  int w = std::min(workers, layout_.numShards);
  if (w > 0) {
    while (crewPools_.size() < std::size_t(w))
      crewPools_.push_back(std::make_unique<WorkerPoolSet>());
    {
      std::lock_guard<std::mutex> lk(crewMu_);
      crewStop_ = false;
      crewGeneration_ = 0;
      crewRemaining_ = 0;
    }
    for (int i = 0; i < w; ++i) crew_.emplace_back([this, i] { crewMain(i); });
  }
}

void Simulator::disableSharded() {
  if (!sharded_)
    throw std::logic_error("Simulator::disableSharded: sharded mode is off");
  for (const Shard& sh : shards_)
    if (!sh.arena.queue.empty() || !sh.outbox.empty())
      throw std::logic_error(
          "Simulator::disableSharded: shard events still pending (run to "
          "completion, or reset(), first)");
  teardownSharded();
}

void Simulator::teardownSharded() {
  stopCrew();
  // Hand the per-worker pools back to the main thread and fold in any
  // remotely-freed slots: the worker threads are gone, so nobody else will
  // drain them. The pool sets themselves stay alive for the Simulator's
  // lifetime — pooled objects (packets parked in machine state, coroutine
  // frames) may outlive the sharded episode that allocated them.
  for (auto& ps : crewPools_) {
    for (util::SlabPool* p : {&ps->packet, &ps->payload, &ps->taskFrame,
                              &ps->eventHandle}) {
      p->setOwner(std::this_thread::get_id());
      p->drainRemote();
    }
  }
  for (ShardParticipant* p : participants_) p->onShardedDisable();
  shards_.clear();
  layout_ = {};
  lookaheadPs_ = 0;
  sharded_ = false;
  mainLog_ = nullptr;
  hostCapValid_ = false;
}

void Simulator::stopCrew() {
  if (crew_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(crewMu_);
    crewStop_ = true;
  }
  crewWork_.notify_all();
  for (std::thread& t : crew_) t.join();
  crew_.clear();
}

void Simulator::crewMain(int worker) {
  // Adopt this worker's Simulator-owned pools: pooled objects allocated
  // here can outlive the thread, and cross-shard frees route back through
  // the header's origin pointer onto the pool's remote stack.
  WorkerPoolSet& ps = *crewPools_[std::size_t(worker)];
  util::PoolOverrides& o = util::poolOverrides();
  o.packet = &ps.packet;
  o.payload = &ps.payload;
  o.taskFrame = &ps.taskFrame;
  o.eventHandle = &ps.eventHandle;
  for (util::SlabPool* p :
       {&ps.packet, &ps.payload, &ps.taskFrame, &ps.eventHandle})
    p->setOwner(std::this_thread::get_id());

  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(crewMu_);
      crewWork_.wait(lk, [&] { return crewStop_ || crewGeneration_ != seen; });
      if (crewStop_) return;
      seen = crewGeneration_;
    }
    int i;
    while ((i = crewCursor_.fetch_add(1, std::memory_order_relaxed)) <
           int(shards_.size())) {
      try {
        runShardWindow(std::size_t(i));
      } catch (...) {
        shards_[std::size_t(i)].error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lk(crewMu_);
      if (--crewRemaining_ == 0) crewDone_.notify_one();
    }
  }
}

void Simulator::runWindow() {
  if (crew_.empty()) {
    // Deterministic 0-worker mode: the main thread plays every shard's
    // window in index order. Same windows, same barriers, no concurrency —
    // and provably the same results, since shard windows are independent
    // (cross-shard effects only travel through barrier-delivered mail).
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      try {
        runShardWindow(i);
      } catch (...) {
        shards_[i].error = std::current_exception();
      }
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(crewMu_);
    crewCursor_.store(0, std::memory_order_relaxed);
    crewRemaining_ = int(crew_.size());
    ++crewGeneration_;
  }
  crewWork_.notify_all();
  {
    std::unique_lock<std::mutex> lk(crewMu_);
    crewDone_.wait(lk, [&] { return crewRemaining_ == 0; });
  }
}

void Simulator::runShardWindow(std::size_t i) {
  Shard& sh = shards_[i];
  CausalLog* saved = causalOracle();
  detail::tlsShard() = int(i);
  if (mainLog_ != nullptr) {
    // Stage oracle records per shard; the barrier merges them into the main
    // log in canonical order. Scheduling notes for events from earlier
    // windows already live in the main log — the stage falls back to a
    // read-only probe there.
    sh.stage.setFallback(mainLog_);
    sh.stage.setEpoch(mainLog_->epoch());
    causalOracle() = &sh.stage;
  } else {
    causalOracle() = nullptr;
  }
  struct Restore {
    CausalLog* saved;
    ~Restore() {
      causalOracle() = saved;
      detail::tlsShard() = -1;
    }
  } restore{saved};

  while (true) {
    purgeArena(sh.arena);
    EventQueue& q = sh.arena.queue;
    if (q.empty()) break;
    Event ev = q.top();
    // The committed run-ahead budget: nothing at or beyond the window edge
    // executes until the barrier has delivered this window's mail. A shard
    // that exhausts its window BLOCKS here — it never races ahead.
    if (ev.t >= windowEnd_) break;
    // Host fence: the host queue is serviced between windows, so no shard
    // may overtake the host's next event in (t, seq) order. Raw uint64
    // comparison is correct for provisional seqs: they order after every
    // canonical seq, exactly where their canonical values will land.
    if (hostCapValid_ && !lexBefore(ev, hostCap_)) break;
    q.pop();
    Callback fn = std::move(sh.arena.slots[ev.slot].fn);
    sh.arena.release(ev.slot);
    sh.clock = ev.t;
    sh.execSeq = ev.seq;
    std::uint32_t idx = std::uint32_t(sh.execs.size());
    sh.execs.push_back(
        {ev.seq, ev.t, std::uint32_t(sh.reqSeqs.size()), 0});
    ++sh.windowProcessed;
    if (CausalLog* log = causalOracle()) log->onExecute(ev.t, ev.seq);
    fn();
    if (CausalLog* log = causalOracle()) log->onExecuteDone();
    sh.execs[idx].reqCount =
        std::uint32_t(sh.reqSeqs.size()) - sh.execs[idx].reqBegin;
  }
}

std::uint64_t Simulator::hostDrain(Time deadline) {
  std::uint64_t n = 0;
  while (true) {
    purgeArena(host_);
    if (host_.queue.empty()) break;
    Event ev = host_.queue.top();
    if (ev.t > deadline) break;
    // The host may execute only while it holds the global (t, seq) minimum;
    // otherwise the next window must run the leading shard first.
    bool shardLeads = false;
    for (Shard& sh : shards_) {
      purgeArena(sh.arena);
      if (!sh.arena.queue.empty() && lexBefore(sh.arena.queue.top(), ev)) {
        shardLeads = true;
        break;
      }
    }
    if (shardLeads) break;
    host_.queue.pop();
    Callback fn = std::move(host_.slots[ev.slot].fn);
    host_.release(ev.slot);
    now_ = ev.t;
    ++processed_;
    ++n;
    if (CausalLog* log = causalOracle()) log->onExecute(ev.t, ev.seq);
    fn();
    if (CausalLog* log = causalOracle()) log->onExecuteDone();
  }
  return n;
}

std::uint64_t Simulator::runSharded(Time deadline, bool hasDeadline) {
  std::uint64_t n = 0;
  const Time dl = hasDeadline ? deadline : kNoDeadline;
  while (true) {
    std::uint64_t hostRan = hostDrain(dl);
    n += hostRan;

    bool any = false;
    Time m = 0;
    if (!host_.queue.empty()) {
      m = host_.queue.top().t;
      any = true;
    }
    for (Shard& sh : shards_) {
      purgeArena(sh.arena);
      if (!sh.arena.queue.empty()) {
        Time t = sh.arena.queue.top().t;
        if (!any || t < m) {
          m = t;
          any = true;
        }
      }
    }
    if (!any) break;
    if (hasDeadline && m > deadline) break;

    windowEnd_ = m > kNoDeadline - lookaheadPs_ ? kNoDeadline
                                                : m + lookaheadPs_;
    // Events at exactly the deadline still execute (strict < windowEnd_).
    if (hasDeadline && windowEnd_ > deadline) windowEnd_ = deadline + 1;
    hostCapValid_ = !host_.queue.empty();
    if (hostCapValid_) hostCap_ = host_.queue.top();
    // Capture the oracle per window: hostDrain may have attached/detached it.
    mainLog_ = causalOracle();

    runWindow();
    std::uint64_t windowRan = shardedBarrier();
    n += windowRan;
    ++shardedStats_.windows;
    if (hostRan == 0 && windowRan == 0)
      throw std::logic_error(
          "Simulator: sharded window made no progress (lookahead budget "
          "cannot advance any shard clock)");
  }
  if (hasDeadline) {
    if (now_ < deadline) now_ = deadline;
  } else {
    for (const Shard& sh : shards_) now_ = std::max(now_, sh.clock);
  }
  reapRoots();
  return n;
}

std::uint64_t Simulator::shardedBarrier() {
  // An exception that escaped a shard window poisons the run: rethrow the
  // first (by shard index) and leave the kernel for reset(), exactly like a
  // serial run that threw mid-queue.
  for (Shard& sh : shards_) {
    if (sh.error) {
      std::exception_ptr e = sh.error;
      sh.error = nullptr;
      std::rethrow_exception(e);
    }
  }

  // 1) Replay canonicalization. Seed a min-heap with every executed event
  // that already had a canonical seq; popping (t, seq) minima visits the
  // window's executions in exactly the serial kernel's order, so assigning
  // nextSeq_ to their recorded reservations in pop order reproduces the
  // serial issue order bit for bit. Provisional executions enter the heap
  // the moment their own seq is canonicalized (their scheduler always pops
  // first — it executed earlier in serial order).
  struct PQE {
    Time t;
    std::uint64_t seq;
    int shard;
    std::uint32_t idx;
  };
  struct PQLater {
    bool operator()(const PQE& a, const PQE& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<PQE, std::vector<PQE>, PQLater> pq;
  std::unordered_map<std::uint64_t, std::pair<int, std::uint32_t>> provExec;
  std::size_t totalExec = 0;
  for (int s = 0; s < int(shards_.size()); ++s) {
    Shard& sh = shards_[std::size_t(s)];
    totalExec += sh.execs.size();
    for (std::uint32_t i = 0; i < std::uint32_t(sh.execs.size()); ++i) {
      const ExecRecord& r = sh.execs[i];
      if (r.seqAtExec & kProvBit)
        provExec.emplace(r.seqAtExec, std::make_pair(s, i));
      else
        pq.push({r.t, r.seqAtExec, s, i});
    }
  }
  std::unordered_map<std::uint64_t, std::uint64_t> canon;
  std::size_t popped = 0;
  while (!pq.empty()) {
    PQE e = pq.top();
    pq.pop();
    ++popped;
    const ExecRecord& r = shards_[std::size_t(e.shard)].execs[e.idx];
    for (std::uint32_t k = 0; k < r.reqCount; ++k) {
      std::uint64_t prov =
          shards_[std::size_t(e.shard)].reqSeqs[r.reqBegin + k];
      std::uint64_t c = nextSeq_++;
      canon.emplace(prov, c);
      if (auto it = provExec.find(prov); it != provExec.end()) {
        const ExecRecord& pr =
            shards_[std::size_t(it->second.first)].execs[it->second.second];
        pq.push({pr.t, c, it->second.first, it->second.second});
      }
    }
  }
  if (popped != totalExec)
    throw std::logic_error(
        "Simulator: window replay failed to order every executed event "
        "(an executed provisional seq was never canonicalized)");

  auto canonOf = [&canon](std::uint64_t s) -> std::uint64_t {
    if (!(s & kProvBit)) return s;
    auto it = canon.find(s);
    if (it == canon.end())
      throw std::logic_error("Simulator: unresolved provisional seq");
    return it->second;
  };

  // 2) Remap unexecuted events still parked in shard queues. Per shard,
  // provisional issue order equals canonical relative order, and every
  // canonical value exceeds every pre-window seq — the in-place rewrite is
  // order-isomorphic and the heap invariant survives untouched.
  for (Shard& sh : shards_) {
    for (Event& ev : sh.arena.queue.container())
      if (ev.seq & kProvBit) ev.seq = canonOf(ev.seq);
  }

  // 3) Deliver cross-shard mail, enforcing the committed channel-lookahead
  // contract per shard pair. These throws are the "refuse loudly" edge: a
  // message faster than its pair's bound (or between shards the layout
  // never proved adjacent) means the sharding's safety proof did not cover
  // this schedule.
  for (Shard& src : shards_) {
    for (Mail& m : src.outbox) {
      std::uint64_t c = canonOf(m.seq);
      Time bound = layout_.pairBound(m.srcShard, m.destShard);
      if (bound < 0)
        throw std::runtime_error(
            "sharded.lookahead: message between shards " +
            std::to_string(m.srcShard) + " and " + std::to_string(m.destShard) +
            " of sharding '" + layout_.name +
            "', which the layout holds no channel bound for");
      if (m.t - m.sentAt < bound)
        throw std::runtime_error(
            "sharded.lookahead: cross-shard message " +
            std::to_string(m.srcShard) + "->" + std::to_string(m.destShard) +
            " arrived after " + std::to_string(toNs(m.t - m.sentAt)) +
            " ns, below the pair's channel bound of " +
            std::to_string(toNs(bound)) + " ns");
      if (m.t < windowEnd_)
        throw std::logic_error(
            "sharded.lookahead: cross-shard message lands inside the window "
            "that sent it");
      Shard& dst = shards_[std::size_t(m.destShard)];
      bool cancellable = m.cancelled != nullptr;
      std::uint32_t slot = dst.arena.park(std::move(m.fn), std::move(m.cancelled));
      if (cancellable) ++dst.arena.liveCancellable;
      dst.arena.queue.push(Event{m.t, c, slot});
      ++shardedStats_.mailsDelivered;
    }
    src.outbox.clear();
  }

  // 4) Merge staged causal records in canonical order, and migrate staged
  // scheduling notes (events not yet executed) into the main log so later
  // windows — possibly on other shards — find them via the fallback probe.
  if (mainLog_ != nullptr) {
    std::vector<CausalRecord> merged;
    for (Shard& sh : shards_) {
      for (CausalRecord& r : sh.stage.records_) {
        if (r.seq & kProvBit) r.seq = canonOf(r.seq);
        if (r.parent != kNoCausalParent && (r.parent & kProvBit))
          r.parent = canonOf(r.parent);
        merged.push_back(r);
      }
      sh.stage.records_.clear();
      for (auto& [seq, pend] : sh.stage.pending_) {
        CausalLog::Pending p = pend;
        if (p.parent != kNoCausalParent && (p.parent & kProvBit))
          p.parent = canonOf(p.parent);
        mainLog_->pending_.insert_or_assign(
            (seq & kProvBit) ? canonOf(seq) : seq, p);
      }
      sh.stage.pending_.clear();
      sh.stage.executingSeq_ = kNoCausalParent;
      sh.stage.executingNode_ = -1;
      sh.stage.setFallback(nullptr);
    }
    // Window executions are lex-disjoint from everything already recorded
    // and from every later window, and seqs are globally unique — a plain
    // (t, seq) sort is exactly the serial append order.
    std::sort(merged.begin(), merged.end(),
              [](const CausalRecord& a, const CausalRecord& b) {
                return a.t != b.t ? a.t < b.t : a.seq < b.seq;
              });
    mainLog_->records_.insert(mainLog_->records_.end(), merged.begin(),
                              merged.end());
  }

  // 5) Participants remap their stored seqs (net::Machine's reserved link
  // arrivals) and fold staged per-shard state (stats, traces).
  std::function<std::uint64_t(std::uint64_t)> canonFn = canonOf;
  for (ShardParticipant* p : participants_) p->onShardedBarrier(canonFn);

  // 6) Adopt staged spawns, fold counters, reset per-window staging.
  std::uint64_t windowEvents = 0;
  for (Shard& sh : shards_) {
    for (Task& t : sh.stagedRoots) roots_.push_back(std::move(t));
    sh.stagedRoots.clear();
    windowEvents += sh.windowProcessed;
    processed_ += sh.windowProcessed;
    sh.windowProcessed = 0;
    sh.execs.clear();
    sh.reqSeqs.clear();
    sh.provCounter = 0;
  }
  shardedStats_.shardEvents += windowEvents;
  shardedStats_.maxWindowEvents =
      std::max(shardedStats_.maxWindowEvents, windowEvents);
  reapRoots();
  return windowEvents;
}

}  // namespace anton::sim
