#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "sim/causal_log.hpp"

namespace anton::sim {

namespace {
/// Completed root-task frames are reaped every this many events, so
/// long-running simulations (millions of MD-step events) don't accumulate
/// every finished coroutine frame until the queue drains.
constexpr std::uint64_t kReapInterval = 1024;
}  // namespace

std::uint32_t Simulator::parkSlot(Callback fn, EventHandle cancelled) {
  if (!freeSlots_.empty()) {
    std::uint32_t idx = freeSlots_.back();
    freeSlots_.pop_back();
    slots_[idx].fn = std::move(fn);
    slots_[idx].cancelled = std::move(cancelled);
    return idx;
  }
  slots_.push_back(Slot{std::move(fn), std::move(cancelled)});
  return std::uint32_t(slots_.size() - 1);
}

void Simulator::releaseSlot(std::uint32_t idx) {
  slots_[idx].fn = Callback{};
  if (slots_[idx].cancelled) {
    slots_[idx].cancelled.reset();
    --liveCancellable_;
  }
  freeSlots_.push_back(idx);
}

void Simulator::at(Time t, Callback fn) {
  if (t < now_) throw std::logic_error("Simulator::at: event scheduled in the past");
  std::uint32_t slot = parkSlot(std::move(fn), nullptr);
  std::uint64_t seq = nextSeq_++;
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);
  queue_.push(Event{t, seq, slot});
}

void Simulator::atReserved(Time t, std::uint64_t seq, Callback fn) {
  if (t < now_)
    throw std::logic_error("Simulator::atReserved: event scheduled in the past");
  if (seq >= nextSeq_)
    throw std::logic_error("Simulator::atReserved: seq was not reserved");
  std::uint32_t slot = parkSlot(std::move(fn), nullptr);
  // Insert-if-absent: a caller that attributed the seq at its reservation
  // point (net::Machine's batched drains) already fixed node and parent.
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);
  queue_.push(Event{t, seq, slot});
}

Simulator::EventHandle Simulator::atCancellable(Time t, Callback fn) {
  if (t < now_)
    throw std::logic_error("Simulator::atCancellable: event scheduled in the past");
  EventHandle h = std::allocate_shared<bool>(
      util::PoolAllocator<bool>(eventHandlePool()), false);
  std::uint32_t slot = parkSlot(std::move(fn), h);
  ++liveCancellable_;
  std::uint64_t seq = nextSeq_++;
  if (CausalLog* log = causalOracle()) log->noteScheduled(seq);
  queue_.push(Event{t, seq, slot});
  return h;
}

void Simulator::spawn(Task task) {
  roots_.push_back(std::move(task));
  roots_.back().startDetached();
  reapRoots();
}

void Simulator::reapRoots() {
  for (auto it = roots_.begin(); it != roots_.end();) {
    if (it->done()) {
      it->rethrowIfFailed();
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
}

void Simulator::purgeCancelled() {
  // Cancelled events are discarded unexecuted and leave now_ untouched: a
  // retracted deadline must not stretch the simulated timeline. With no
  // cancellable events pending there is nothing to purge — and no reason to
  // touch the slot arena per step.
  if (liveCancellable_ == 0) return;
  while (!queue_.empty() && slotCancelled(queue_.top().slot)) {
    if (CausalLog* log = causalOracle()) log->onDiscard(queue_.top().seq);
    releaseSlot(queue_.top().slot);
    queue_.pop();
  }
}

bool Simulator::step() {
  purgeCancelled();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  // Move the callback out before running it: the callback may itself
  // schedule events, reusing (or growing) the slot arena.
  Callback fn = std::move(slots_[ev.slot].fn);
  releaseSlot(ev.slot);
  now_ = ev.t;
  ++processed_;
  if (CausalLog* log = causalOracle()) log->onExecute(ev.t, ev.seq);
  fn();
  // Re-fetch: the callback may have attached or detached the oracle.
  if (CausalLog* log = causalOracle()) log->onExecuteDone();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) {
    if (++n % kReapInterval == 0) reapRoots();
  }
  reapRoots();
  return n;
}

std::size_t Simulator::reset() {
  // Sweep the WHOLE queue, not just the purgeable top: a retracted deadline
  // buried under a live event is discarded-but-clean, and counting it would
  // trip the serve layer's arenaDirtyResets == 0 audit with a false leak.
  std::size_t discarded = roots_.size();
  for (const Event& ev : queue_.container()) {
    if (!slotCancelled(ev.slot)) ++discarded;
    releaseSlot(ev.slot);
  }
  queue_.container().clear();  // capacity is retained for arena reuse
  // Destroying a suspended root unwinds its frame without resuming it; any
  // events it scheduled are already gone with the queue.
  roots_.clear();
  now_ = 0;
  nextSeq_ = 0;
  processed_ = 0;
  // Sequence numbers restart: an attached oracle log must open a new epoch
  // so records from different generations cannot alias.
  if (CausalLog* log = causalOracle()) log->onReset();
  return discarded;
}

std::uint64_t Simulator::runUntil(Time deadline) {
  std::uint64_t n = 0;
  while (true) {
    purgeCancelled();
    if (queue_.empty() || queue_.top().t > deadline) break;
    step();
    if (++n % kReapInterval == 0) reapRoots();
  }
  if (now_ < deadline) now_ = deadline;
  reapRoots();
  return n;
}

}  // namespace anton::sim
