#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace anton::sim {

namespace {
/// Completed root-task frames are reaped every this many events, so
/// long-running simulations (millions of MD-step events) don't accumulate
/// every finished coroutine frame until the queue drains.
constexpr std::uint64_t kReapInterval = 1024;
}  // namespace

void Simulator::at(Time t, Callback fn) {
  if (t < now_) throw std::logic_error("Simulator::at: event scheduled in the past");
  queue_.push(Event{t, nextSeq_++, std::move(fn), nullptr});
}

Simulator::EventHandle Simulator::atCancellable(Time t, Callback fn) {
  if (t < now_)
    throw std::logic_error("Simulator::atCancellable: event scheduled in the past");
  EventHandle h = std::make_shared<bool>(false);
  queue_.push(Event{t, nextSeq_++, std::move(fn), h});
  return h;
}

void Simulator::spawn(Task task) {
  roots_.push_back(std::move(task));
  roots_.back().startDetached();
  reapRoots();
}

void Simulator::reapRoots() {
  for (auto it = roots_.begin(); it != roots_.end();) {
    if (it->done()) {
      it->rethrowIfFailed();
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
}

void Simulator::purgeCancelled() {
  // Cancelled events are discarded unexecuted and leave now_ untouched: a
  // retracted deadline must not stretch the simulated timeline.
  while (!queue_.empty() && queue_.top().cancelled && *queue_.top().cancelled)
    queue_.pop();
}

bool Simulator::step() {
  purgeCancelled();
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied cheaply (shared_ptr-free
  // callbacks are moved via const_cast, a standard pattern for pop-and-run).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++processed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) {
    if (++n % kReapInterval == 0) reapRoots();
  }
  reapRoots();
  return n;
}

std::size_t Simulator::reset() {
  purgeCancelled();
  std::size_t discarded = queue_.size() + roots_.size();
  queue_ = {};
  // Destroying a suspended root unwinds its frame without resuming it; any
  // events it scheduled are already gone with the queue.
  roots_.clear();
  now_ = 0;
  nextSeq_ = 0;
  processed_ = 0;
  return discarded;
}

std::uint64_t Simulator::runUntil(Time deadline) {
  std::uint64_t n = 0;
  while (true) {
    purgeCancelled();
    if (queue_.empty() || queue_.top().t > deadline) break;
    step();
    if (++n % kReapInterval == 0) reapRoots();
  }
  if (now_ < deadline) now_ = deadline;
  reapRoots();
  return n;
}

}  // namespace anton::sim
