#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace anton::sim {

void Simulator::at(Time t, Callback fn) {
  if (t < now_) throw std::logic_error("Simulator::at: event scheduled in the past");
  queue_.push(Event{t, nextSeq_++, std::move(fn)});
}

void Simulator::spawn(Task task) {
  roots_.push_back(std::move(task));
  roots_.back().startDetached();
  reapRoots();
}

void Simulator::reapRoots() {
  for (auto it = roots_.begin(); it != roots_.end();) {
    if (it->done()) {
      it->rethrowIfFailed();
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied cheaply (shared_ptr-free
  // callbacks are moved via const_cast, a standard pattern for pop-and-run).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++processed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  reapRoots();
  return n;
}

std::uint64_t Simulator::runUntil(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  reapRoots();
  return n;
}

}  // namespace anton::sim
