// Deterministic pseudo-random number generation for workload synthesis.
//
// xoshiro256** seeded via SplitMix64: fast, high-quality, and — unlike
// std::mt19937 + std::*_distribution — bit-for-bit reproducible across
// standard libraries, which the experiment benches rely on.
#pragma once

#include <cmath>
#include <cstdint>

namespace anton::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
    hasSpare_ = false;
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return double(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
  }

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal() {
    if (hasSpare_) {
      hasSpare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    hasSpare_ = true;
    return u * m;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  bool hasSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace anton::sim
