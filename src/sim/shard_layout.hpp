// Sharding description consumed by the parallel (sharded) event kernel.
//
// A ShardLayout is pure data: which shard owns each machine node, the global
// conservative run-ahead budget, and the per-shard-pair channel lookahead
// bounds. It deliberately knows nothing about how those numbers were proven —
// verify/shard_contract.{hpp,cpp} builds layouts from a live
// verify::analyzeLookahead() report or from the committed
// tests/golden_plans/VERIFY_lookahead.json contract, and refuses any sharding
// the analyzer rejects. Keeping the kernel's input data-only preserves the
// layering: src/sim never depends on src/verify.
//
// Field mapping from the lookahead report (DESIGN.md §13):
//   safeLookaheadNs  -> the global synchronization-window width (every shard
//                       may run ahead of the global minimum by this much)
//   pairs[].linkBoundNs -> pairBoundPs: the per-channel lookahead every
//                       cross-shard message is checked against at delivery
//   conflictDegree   -> sizing hint for per-shard neighbor mailboxes
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace anton::sim {

struct ShardLayout {
  std::string name;  ///< sharding family, e.g. "per-node", "slab-x"
  std::string plan;  ///< plan the lookahead budget was proven for
  int numShards = 1;
  /// Node linear index -> owning shard. Every node a Machine will route
  /// through must be covered.
  std::vector<int> shardOfNode;
  /// Global conservative run-ahead budget (lookahead report safeLookaheadNs).
  double safeLookaheadNs = 0.0;
  /// Conflict-graph degree from the report (mailbox sizing hint).
  int conflictDegree = 0;
  /// Channel lookahead per adjacent shard pair (a < b), in picoseconds:
  /// verify::shardPairBounds over the full topology, NOT just the pairs that
  /// carry plan edges — adaptive routing may cross any adjacent boundary.
  std::map<std::pair<int, int>, Time> pairBoundPs;

  int shardOf(int node) const {
    if (node < 0 || std::size_t(node) >= shardOfNode.size())
      throw std::out_of_range("ShardLayout: node " + std::to_string(node) +
                              " outside the sharded node range");
    return shardOfNode[std::size_t(node)];
  }

  Time safeLookaheadPs() const { return ns(safeLookaheadNs); }

  /// Channel bound for an (unordered) shard pair; -1 when the pair is not
  /// adjacent — a live message between such shards violates the contract.
  Time pairBound(int a, int b) const {
    if (a > b) std::swap(a, b);
    auto it = pairBoundPs.find({a, b});
    return it == pairBoundPs.end() ? Time(-1) : it->second;
  }

  /// The budget the kernel actually runs with: the proven global cap clamped
  /// by every adjacent pair's channel bound. The report's safeLookaheadNs is
  /// derived from boundaries carrying plan edges; adaptively routed traffic
  /// can cross edgeless boundaries too, so the kernel must not outrun those.
  Time effectiveLookaheadPs() const {
    Time cap = safeLookaheadPs();
    for (const auto& [pair, bound] : pairBoundPs) cap = std::min(cap, bound);
    return cap;
  }
};

}  // namespace anton::sim
