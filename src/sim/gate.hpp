// Join primitive for concurrent coroutine phases: spawn N subtasks on a
// simulator, then `co_await gate.wait()` until all have signaled. Used by
// the MD step choreography, where the bonded, range-limited, and long-range
// phases run on different hardware units of the same node concurrently.
#pragma once

#include <coroutine>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace anton::sim {

class Gate {
 public:
  explicit Gate(int expected = 0) : remaining_(expected) {}

  void expectMore(int n) { remaining_ += n; }

  void signal() {
    if (--remaining_ <= 0) release();
  }

  struct Waiter {
    Gate& gate;
    bool await_ready() const noexcept { return gate.remaining_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) { gate.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Waiter wait() { return Waiter{*this}; }

  /// Wrap a task so the gate is signaled when it completes, and spawn it.
  void spawn(Simulator& sim, Task task) {
    expectMore(1);
    sim.spawn(runAndSignal(std::move(task)));
  }

 private:
  Task runAndSignal(Task inner) {
    co_await std::move(inner);
    signal();
  }

  void release() {
    std::vector<std::coroutine_handle<>> ws = std::move(waiters_);
    waiters_.clear();
    for (auto h : ws) h.resume();
  }

  int remaining_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace anton::sim
