// Discrete-event simulation kernel.
//
// A single min-heap of (time, sequence, callback) events; sequence numbers
// make same-time ordering FIFO and the whole simulation deterministic.
// Coroutine tasks (sim::Task) are spawned as detached roots and driven by
// events that resume their handles.
//
// The hot path is allocation-free in steady state: heap entries are 24
// trivially-copyable bytes (callbacks park in a recycled slot arena as
// inline-capture sim::EventFn), cancellable-event flags come from a slab
// pool, and every backing vector keeps its capacity across reset(). Callers
// that batch same-source events (net::Machine's link drains) reserve
// sequence numbers up front via reserveSeq()/atReserved() so batching
// cannot perturb the (time, seq) schedule.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <type_traits>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/slab_pool.hpp"

namespace anton::sim {

/// Slab pool behind cancellable-event flags (one recycled slot per
/// EventHandle control block + flag).
inline util::SlabPool& eventHandlePool() {
  thread_local util::SlabPool pool("event-handle");
  return pool;
}

class Simulator {
 public:
  using Callback = EventFn;

  /// Handle of a cancellable event: call cancel() (or set *handle = true) to
  /// retract it. A cancelled event is discarded without executing and —
  /// crucially — without advancing simulated time, so retracting a pending
  /// deadline leaves the timeline bit-identical to never scheduling it.
  using EventHandle = std::shared_ptr<bool>;
  static void cancel(const EventHandle& h) {
    if (h) *h = true;
  }

  Time now() const { return now_; }
  std::uint64_t eventsProcessed() const { return processed_; }
  bool empty() const { return queue_.empty(); }
  /// Root tasks not yet reaped (live coroutine frames held by the kernel).
  std::size_t liveRoots() const { return roots_.size(); }

  /// Schedule `fn` at absolute simulated time `t` (must be >= now).
  void at(Time t, Callback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Reserve the next event sequence number without scheduling anything.
  /// Paired with atReserved(), this lets a caller that coalesces several
  /// logical events into one scheduled drain keep the exact (time, seq)
  /// order the uncoalesced schedule would have had.
  std::uint64_t reserveSeq() { return nextSeq_++; }

  /// The next unissued sequence number (observability: atReserved() rejects
  /// seqs at or beyond this).
  std::uint64_t nextSeq() const { return nextSeq_; }

  /// Schedule `fn` at (t, seq) where `seq` came from reserveSeq(). The
  /// reservation point — not this call — fixes the event's FIFO rank among
  /// same-time events.
  void atReserved(Time t, std::uint64_t seq, Callback fn);

  /// Cancellable forms of at()/after() (deadline timers that may be
  /// retracted by whichever signal wins a race).
  EventHandle atCancellable(Time t, Callback fn);
  EventHandle afterCancellable(Time delay, Callback fn) {
    return atCancellable(now_ + delay, std::move(fn));
  }

  /// Resume a suspended coroutine after `delay`.
  void resumeAfter(Time delay, std::coroutine_handle<> h) {
    after(delay, [h] { h.resume(); });
  }

  /// Start a detached root task. The task frame is kept alive by the
  /// simulator and reaped (with exception propagation) during run().
  void spawn(Task task);

  /// Run until the event queue drains. Throws any exception raised by a
  /// root task. Returns the number of events processed by this call.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed.
  std::uint64_t runUntil(Time deadline);

  /// Execute a single event if one is pending; returns false when idle.
  bool step();

  /// Return the kernel to its just-constructed state: pending events are
  /// discarded unexecuted, live root-task frames are destroyed (their
  /// destructors run; no callbacks fire), and the clock, sequence counter
  /// and processed tally restart from zero. The explicit arena-reuse audit
  /// point for workers that run many jobs on one Simulator (src/serve): a
  /// reset kernel is indistinguishable from a fresh one, so job results
  /// cannot depend on what ran before. Returns the number of pending
  /// *live* events plus live roots that were discarded (0 = the arena was
  /// already clean). Cancelled events anywhere in the queue — even buried
  /// under live ones, where purging cannot reach them — are retracted
  /// timers, not leaked work, and never count as dirty.
  std::size_t reset();

  /// Awaitable for `co_await simctx.delay(...)`-style use; see delay().
  struct DelayAwaiter {
    Simulator& sim;
    Time duration;
    bool await_ready() const noexcept { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.resumeAfter(duration, h);
    }
    void await_resume() const noexcept {}
  };

  /// `co_await sim.delay(ns(36))` suspends the current task for the given
  /// simulated duration.
  DelayAwaiter delay(Time duration) { return DelayAwaiter{*this, duration}; }

 private:
  /// Heap entries are deliberately trivial: the callback (and cancel flag)
  /// live in a slot arena off to the side, so every sift during push/pop
  /// moves 24 plain bytes instead of a type-erased capture. The heap order
  /// is exactly (t, seq) — the slot index is payload, never a key — so the
  /// indirection cannot perturb the schedule.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Event>);
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  /// priority_queue with access to the backing vector: reset() sweeps the
  /// whole container (clearing keeps capacity for arena reuse), which a
  /// plain priority_queue cannot do.
  struct EventQueue : std::priority_queue<Event, std::vector<Event>, Later> {
    std::vector<Event>& container() { return c; }
    const std::vector<Event>& container() const { return c; }
  };

  /// One parked callback; recycled through freeSlots_ (LIFO), so the slot
  /// arena stops growing once it covers the peak in-flight event count.
  struct Slot {
    Callback fn;
    EventHandle cancelled;  ///< null for ordinary (non-cancellable) events
  };

  std::uint32_t parkSlot(Callback fn, EventHandle cancelled);
  void releaseSlot(std::uint32_t idx);
  /// Pending events that carry a cancel flag. Zero on the common path, so
  /// purgeCancelled() can skip the per-event slot lookup entirely.
  std::size_t liveCancellable_ = 0;
  bool slotCancelled(std::uint32_t idx) const {
    const EventHandle& c = slots_[idx].cancelled;
    return c != nullptr && *c;
  }

  void purgeCancelled();
  void reapRoots();

  Time now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  EventQueue queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::vector<Task> roots_;
};

}  // namespace anton::sim
