// Discrete-event simulation kernel.
//
// A single min-heap of (time, sequence, callback) events; sequence numbers
// make same-time ordering FIFO and the whole simulation deterministic.
// Coroutine tasks (sim::Task) are spawned as detached roots and driven by
// events that resume their handles.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace anton::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Handle of a cancellable event: call cancel() (or set *handle = true) to
  /// retract it. A cancelled event is discarded without executing and —
  /// crucially — without advancing simulated time, so retracting a pending
  /// deadline leaves the timeline bit-identical to never scheduling it.
  using EventHandle = std::shared_ptr<bool>;
  static void cancel(const EventHandle& h) {
    if (h) *h = true;
  }

  Time now() const { return now_; }
  std::uint64_t eventsProcessed() const { return processed_; }
  bool empty() const { return queue_.empty(); }
  /// Root tasks not yet reaped (live coroutine frames held by the kernel).
  std::size_t liveRoots() const { return roots_.size(); }

  /// Schedule `fn` at absolute simulated time `t` (must be >= now).
  void at(Time t, Callback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Cancellable forms of at()/after() (deadline timers that may be
  /// retracted by whichever signal wins a race).
  EventHandle atCancellable(Time t, Callback fn);
  EventHandle afterCancellable(Time delay, Callback fn) {
    return atCancellable(now_ + delay, std::move(fn));
  }

  /// Resume a suspended coroutine after `delay`.
  void resumeAfter(Time delay, std::coroutine_handle<> h) {
    after(delay, [h] { h.resume(); });
  }

  /// Start a detached root task. The task frame is kept alive by the
  /// simulator and reaped (with exception propagation) during run().
  void spawn(Task task);

  /// Run until the event queue drains. Throws any exception raised by a
  /// root task. Returns the number of events processed by this call.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed.
  std::uint64_t runUntil(Time deadline);

  /// Execute a single event if one is pending; returns false when idle.
  bool step();

  /// Return the kernel to its just-constructed state: pending events are
  /// discarded unexecuted, live root-task frames are destroyed (their
  /// destructors run; no callbacks fire), and the clock, sequence counter
  /// and processed tally restart from zero. The explicit arena-reuse audit
  /// point for workers that run many jobs on one Simulator (src/serve): a
  /// reset kernel is indistinguishable from a fresh one, so job results
  /// cannot depend on what ran before. Returns the number of pending events
  /// plus live roots that were discarded (0 = the arena was already clean).
  std::size_t reset();

  /// Awaitable for `co_await simctx.delay(...)`-style use; see delay().
  struct DelayAwaiter {
    Simulator& sim;
    Time duration;
    bool await_ready() const noexcept { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.resumeAfter(duration, h);
    }
    void await_resume() const noexcept {}
  };

  /// `co_await sim.delay(ns(36))` suspends the current task for the given
  /// simulated duration.
  DelayAwaiter delay(Time duration) { return DelayAwaiter{*this, duration}; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback fn;
    EventHandle cancelled;  ///< null for ordinary (non-cancellable) events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void purgeCancelled();
  void reapRoots();

  Time now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Task> roots_;
};

}  // namespace anton::sim
