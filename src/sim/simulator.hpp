// Discrete-event simulation kernel: serial by default, conservative-PDES
// sharded on demand.
//
// Serial mode: a single min-heap of (time, sequence, callback) events;
// sequence numbers make same-time ordering FIFO and the whole simulation
// deterministic. Coroutine tasks (sim::Task) are spawned as detached roots
// and driven by events that resume their handles.
//
// The hot path is allocation-free in steady state: heap entries are 24
// trivially-copyable bytes (callbacks park in a recycled slot arena as
// inline-capture sim::EventFn), cancellable-event flags come from a slab
// pool, and every backing vector keeps its capacity across reset(). Callers
// that batch same-source events (net::Machine's link drains) reserve
// sequence numbers up front via reserveSeq()/atReserved() so batching
// cannot perturb the (time, seq) schedule.
//
// Sharded mode (enableSharded, DESIGN.md §13): the event set is partitioned
// by machine node into per-shard event queues that execute in lockstep
// synchronization windows. Each window runs every shard up to
// globalMin + safeLookahead (the committed budget from the lookahead
// contract, VERIFY_lookahead.json) with no null messages; cross-shard
// messages travel through per-shard outboxes and are delivered at the
// window barrier, where each is checked against its shard pair's channel
// lookahead bound. Events scheduled inside a window carry provisional
// sequence numbers; the barrier replays the window's execution order to
// assign the exact sequence numbers the serial kernel would have issued, so
// a sharded run's schedule — and therefore its results, traces and causal
// records — is bit-identical to the serial one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/causal_log.hpp"
#include "sim/event_fn.hpp"
#include "sim/shard_layout.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/slab_pool.hpp"

namespace anton::sim {

/// Slab pool behind cancellable-event flags (one recycled slot per
/// EventHandle control block + flag).
inline util::SlabPool& eventHandlePool() {
  if (util::SlabPool* o = util::poolOverrides().eventHandle) return *o;
  thread_local util::SlabPool pool("event-handle");
  return pool;
}

namespace detail {
/// Shard index of the window the current thread is executing, -1 outside
/// any shard window (the host context).
inline int& tlsShard() {
  thread_local int shard = -1;
  return shard;
}
/// Machine-node affinity hint for events scheduled in the current scope
/// (-1 = inherit the executing shard / host).
inline std::int32_t& scheduleNodeTls() {
  thread_local std::int32_t node = -1;
  return node;
}
}  // namespace detail

/// RAII: events scheduled in this scope belong to machine node `node` — the
/// sharded kernel routes them to that node's shard, and the causal oracle
/// (when attached) attributes them to it. This is the single affinity
/// mechanism net::Machine wraps around its cross-node schedule points; it
/// subsumes ScopedCausalNodeHint, which is a no-op without an attached
/// oracle and therefore cannot carry shard routing.
class ScopedEventNode {
 public:
  ScopedEventNode(std::int32_t node, bool link)
      : saved_(detail::scheduleNodeTls()), hint_(node, link) {
    detail::scheduleNodeTls() = node;
  }
  ~ScopedEventNode() { detail::scheduleNodeTls() = saved_; }
  ScopedEventNode(const ScopedEventNode&) = delete;
  ScopedEventNode& operator=(const ScopedEventNode&) = delete;

 private:
  std::int32_t saved_;
  ScopedCausalNodeHint hint_;
};

/// Hook interface for components that stage per-shard state during sharded
/// windows (net::Machine stages stats, traces and reserved-seq bookkeeping).
/// Register via Simulator::addShardParticipant.
class ShardParticipant {
 public:
  virtual ~ShardParticipant() = default;
  /// Sharded mode is being enabled. Throw to refuse (e.g. state that cannot
  /// be safely sharded, like a mutable fault model); enableSharded() rolls
  /// back and rethrows.
  virtual void onShardedEnable(const ShardLayout& layout) = 0;
  /// Window barrier (main thread, workers quiescent). `canon` maps a
  /// provisional sequence number to its canonical (serial) value; canonical
  /// inputs pass through unchanged. Remap any stored seqs and merge staged
  /// per-shard state here.
  virtual void onShardedBarrier(
      const std::function<std::uint64_t(std::uint64_t)>& canon) = 0;
  /// Sharded mode was disabled (also called by reset()).
  virtual void onShardedDisable() = 0;
};

class Simulator {
 public:
  using Callback = EventFn;

  /// Handle of a cancellable event: call cancel() (or set *handle = true) to
  /// retract it. A cancelled event is discarded without executing and —
  /// crucially — without advancing simulated time, so retracting a pending
  /// deadline leaves the timeline bit-identical to never scheduling it.
  /// Sharded runs may only cancel from the shard that scheduled the event
  /// (or from the host between windows).
  using EventHandle = std::shared_ptr<bool>;
  static void cancel(const EventHandle& h) {
    if (h) *h = true;
  }

  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time: the executing shard's clock inside a shard
  /// window, the host clock otherwise.
  Time now() const {
    int s = detail::tlsShard();
    return (s >= 0 && sharded_) ? shards_[std::size_t(s)].clock : now_;
  }
  std::uint64_t eventsProcessed() const { return processed_; }
  bool empty() const;
  /// Root tasks not yet reaped (live coroutine frames held by the kernel).
  std::size_t liveRoots() const { return roots_.size(); }

  /// Schedule `fn` at absolute simulated time `t` (must be >= now).
  void at(Time t, Callback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  void after(Time delay, Callback fn) { at(now() + delay, std::move(fn)); }

  /// Reserve the next event sequence number without scheduling anything.
  /// Paired with atReserved(), this lets a caller that coalesces several
  /// logical events into one scheduled drain keep the exact (time, seq)
  /// order the uncoalesced schedule would have had. Inside a shard window
  /// the reservation is provisional (top bit set) and is exchanged for the
  /// serial-identical canonical value at the window barrier.
  std::uint64_t reserveSeq();

  /// The next unissued canonical sequence number (observability: atReserved()
  /// rejects canonical seqs at or beyond this).
  std::uint64_t nextSeq() const { return nextSeq_; }

  /// Schedule `fn` at (t, seq) where `seq` came from reserveSeq(). The
  /// reservation point — not this call — fixes the event's FIFO rank among
  /// same-time events.
  void atReserved(Time t, std::uint64_t seq, Callback fn);

  /// Cancellable forms of at()/after() (deadline timers that may be
  /// retracted by whichever signal wins a race).
  EventHandle atCancellable(Time t, Callback fn);
  EventHandle afterCancellable(Time delay, Callback fn) {
    return atCancellable(now() + delay, std::move(fn));
  }

  /// Resume a suspended coroutine after `delay`.
  void resumeAfter(Time delay, std::coroutine_handle<> h) {
    after(delay, [h] { h.resume(); });
  }

  /// Start a detached root task. The task frame is kept alive by the
  /// simulator and reaped (with exception propagation) during run().
  void spawn(Task task);

  /// Run until the event queue drains. Throws any exception raised by a
  /// root task. Returns the number of events processed by this call.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed.
  std::uint64_t runUntil(Time deadline);

  /// Execute a single event if one is pending; returns false when idle.
  /// Serial mode only — a sharded kernel has no single "next event" until
  /// the window barrier resolves provisional order.
  bool step();

  /// Return the kernel to its just-constructed state: pending events are
  /// discarded unexecuted, live root-task frames are destroyed (their
  /// destructors run; no callbacks fire), and the clock, sequence counter
  /// and processed tally restart from zero. Sharded mode, if enabled, is
  /// torn down (workers joined, participants notified) — sharding is a
  /// per-job opt-in, never ambient state a later job could inherit. The
  /// explicit arena-reuse audit point for workers that run many jobs on one
  /// Simulator (src/serve): a reset kernel is indistinguishable from a
  /// fresh one, so job results cannot depend on what ran before. Returns
  /// the number of pending *live* events plus live roots that were
  /// discarded (0 = the arena was already clean). Cancelled events anywhere
  /// in the queue — even buried under live ones, where purging cannot reach
  /// them — are retracted timers, not leaked work, and never count as dirty.
  std::size_t reset();

  // --- sharded (conservative-PDES) mode ------------------------------------

  /// Enter sharded mode. `layout` must come from a sharding the lookahead
  /// analyzer accepted (verify/shard_contract.hpp refuses rejected ones with
  /// a diagnostic naming the violation); enableSharded() additionally
  /// refuses any layout whose effective lookahead budget is not positive.
  /// `workers` worker threads execute shard windows (0 = the main thread
  /// iterates shards in index order — same windows, same barriers, same
  /// results, no concurrency). Throws if sharded mode is already on or if
  /// any registered participant refuses.
  void enableSharded(ShardLayout layout, int workers = 0);

  /// Leave sharded mode: joins workers and notifies participants. All shard
  /// queues must be empty (run to completion first); throws otherwise.
  void disableSharded();

  bool shardedEnabled() const { return sharded_; }
  const ShardLayout* shardLayout() const {
    return sharded_ ? &layout_ : nullptr;
  }

  /// Shard that owns machine node `node` (-1 when serial).
  int shardOfNode(int node) const {
    return sharded_ ? layout_.shardOf(node) : -1;
  }

  /// Shard index of the window the calling thread is executing, -1 outside
  /// any window (host context).
  static int currentShard() { return detail::tlsShard(); }

  /// (time, raw seq) of the event the calling shard is executing — the
  /// emission key per-shard trace stages order their records by after the
  /// barrier canonicalizes the seq. Host context: (now, next canonical seq).
  std::pair<Time, std::uint64_t> currentExecKey() const {
    int s = detail::tlsShard();
    if (s >= 0 && sharded_) {
      const Shard& sh = shards_[std::size_t(s)];
      return {sh.clock, sh.execSeq};
    }
    return {now_, nextSeq_};
  }

  void addShardParticipant(ShardParticipant* p);
  void removeShardParticipant(ShardParticipant* p);

  /// Counters of the sharded run loop (windows executed, cross-shard mail
  /// delivered at barriers, events executed inside shard windows).
  struct ShardedStats {
    std::uint64_t windows = 0;
    std::uint64_t mailsDelivered = 0;
    std::uint64_t shardEvents = 0;
    std::uint64_t maxWindowEvents = 0;  ///< busiest single window
  };
  const ShardedStats& shardedStats() const { return shardedStats_; }

  /// Provisional-seq marker: sequence numbers issued inside a shard window
  /// carry this bit (and the issuing shard in bits [40, 63)). Raw uint64
  /// comparison keeps them ordered after every canonical seq, matching the
  /// serial order in which the barrier will canonicalize them.
  static constexpr std::uint64_t kProvBit = std::uint64_t(1) << 63;
  static constexpr int kProvShardShift = 40;

  /// Awaitable for `co_await simctx.delay(...)`-style use; see delay().
  struct DelayAwaiter {
    Simulator& sim;
    Time duration;
    bool await_ready() const noexcept { return duration <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.resumeAfter(duration, h);
    }
    void await_resume() const noexcept {}
  };

  /// `co_await sim.delay(ns(36))` suspends the current task for the given
  /// simulated duration.
  DelayAwaiter delay(Time duration) { return DelayAwaiter{*this, duration}; }

 private:
  /// Heap entries are deliberately trivial: the callback (and cancel flag)
  /// live in a slot arena off to the side, so every sift during push/pop
  /// moves 24 plain bytes instead of a type-erased capture. The heap order
  /// is exactly (t, seq) — the slot index is payload, never a key — so the
  /// indirection cannot perturb the schedule.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Event>);
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  /// priority_queue with access to the backing vector: reset() sweeps the
  /// whole container (clearing keeps capacity for arena reuse), which a
  /// plain priority_queue cannot do; the sharded barrier remaps provisional
  /// seqs in place (an order-isomorphic rewrite, so the heap stays valid).
  struct EventQueue : std::priority_queue<Event, std::vector<Event>, Later> {
    std::vector<Event>& container() { return c; }
    const std::vector<Event>& container() const { return c; }
  };

  /// One parked callback; recycled through freeSlots (LIFO), so the slot
  /// arena stops growing once it covers the peak in-flight event count.
  struct Slot {
    Callback fn;
    EventHandle cancelled;  ///< null for ordinary (non-cancellable) events
  };

  /// One event queue plus its callback arena — the host has one, every
  /// shard has its own (touched only by the shard's window or by the main
  /// thread between windows).
  struct EventArena {
    EventQueue queue;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> freeSlots;
    /// Pending events that carry a cancel flag. Zero on the common path, so
    /// purging can skip the per-event slot lookup entirely.
    std::size_t liveCancellable = 0;

    std::uint32_t park(Callback fn, EventHandle cancelled);
    void release(std::uint32_t idx);
    bool slotCancelled(std::uint32_t idx) const {
      const EventHandle& c = slots[idx].cancelled;
      return c != nullptr && *c;
    }
  };

  /// A cross-shard message: scheduled on `srcShard` during a window,
  /// delivered into `destShard`'s queue at the barrier after its latency is
  /// checked against the pair's channel lookahead bound.
  struct Mail {
    Time t;
    std::uint64_t seq;  ///< provisional; canonicalized at delivery
    Time sentAt;        ///< source shard clock at the schedule point
    int srcShard;
    int destShard;
    Callback fn;
    EventHandle cancelled;
  };

  /// One executed event of a window: enough to replay the window's global
  /// execution order at the barrier. `reqBegin`/`reqCount` index the shard's
  /// reqSeqs — the provisional seqs this event's execution reserved, in
  /// reservation order (= the order the serial kernel would have issued
  /// canonical values).
  struct ExecRecord {
    std::uint64_t seqAtExec;
    Time t;
    std::uint32_t reqBegin;
    std::uint32_t reqCount;
  };

  struct Shard {
    EventArena arena;
    Time clock = 0;              ///< time of the last event this shard ran
    std::uint64_t execSeq = 0;   ///< raw seq of the executing event
    std::uint64_t provCounter = 0;  ///< per-window provisional issue count
    std::uint64_t windowProcessed = 0;
    std::vector<ExecRecord> execs;        ///< this window's executions
    std::vector<std::uint64_t> reqSeqs;   ///< this window's reservations
    std::vector<Mail> outbox;             ///< cross-shard sends this window
    std::vector<Task> stagedRoots;        ///< spawns from this shard's events
    CausalLog stage;                      ///< per-window oracle staging
    std::exception_ptr error;             ///< rethrown at the barrier
  };

  /// Per-worker slab pools, owned by the Simulator so pooled objects
  /// outlive the worker threads that allocated them (thread_local pools die
  /// at thread exit while cross-shard packets still hold their slots).
  struct WorkerPoolSet {
    util::SlabPool packet{"packet.worker"};
    util::SlabPool payload{"payload.worker"};
    util::SlabPool taskFrame{"task-frame.worker"};
    util::SlabPool eventHandle{"event-handle.worker"};
  };

  static bool lexBefore(const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  void purgeArena(EventArena& a);
  void reapRoots();
  bool stepHost();

  std::uint64_t provSeq(int shard);
  void shardedSchedule(Time t, std::uint64_t seq, bool haveSeq, Callback fn,
                       EventHandle cancelled);
  std::uint64_t hostDrain(Time deadline);
  void runShardWindow(std::size_t i);
  void runWindow();
  std::uint64_t shardedBarrier();
  std::uint64_t runSharded(Time deadline, bool hasDeadline);
  void crewMain(int worker);
  void stopCrew();
  void teardownSharded();

  Time now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  EventArena host_;
  std::vector<Task> roots_;

  // --- sharded state (empty/idle in serial mode) ---
  bool sharded_ = false;
  ShardLayout layout_;
  Time lookaheadPs_ = 0;  ///< effective global run-ahead budget
  std::vector<Shard> shards_;
  std::vector<ShardParticipant*> participants_;
  CausalLog* mainLog_ = nullptr;  ///< oracle attached for the running window
  ShardedStats shardedStats_;

  // Window publication (written by main between windows, read by workers).
  Time windowEnd_ = 0;
  Event hostCap_{};
  bool hostCapValid_ = false;

  // Worker crew: persistent threads handed one generation per window.
  std::vector<std::thread> crew_;
  std::vector<std::unique_ptr<WorkerPoolSet>> crewPools_;
  std::mutex crewMu_;
  std::condition_variable crewWork_;
  std::condition_variable crewDone_;
  std::uint64_t crewGeneration_ = 0;
  int crewRemaining_ = 0;
  bool crewStop_ = false;
  std::atomic<int> crewCursor_{0};
};

}  // namespace anton::sim
