// Slab-friendly event callback: a move-only, type-erased void() whose
// capture lives inline in the event record.
//
// The kernel's hot path schedules one continuation per packet hop; storing
// them as std::function heap-allocates every capture larger than the SBO
// (~16 bytes — the per-hop routing continuation is ~48). EventFn gives each
// event a fixed 64-byte inline capture slot, falling back to a heap box only
// for oversized captures, so steady-state event scheduling never allocates.
//
// With util::hotPath().inlineEvents off, EventFn emulates std::function's
// small-buffer behavior (captures above 16 bytes go to the heap) — the
// legacy reference mode bench/kernel_throughput measures speedups against.
// The knob changes host allocation only; invocation semantics are identical.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/hotpath.hpp"

namespace anton::sim {

class EventFn {
 public:
  /// Inline capture capacity: sized for the fattest hot-path continuation
  /// (per-hop routing: this + PacketPtr + 4 ints + a Time) with headroom.
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = 16;
  /// Capture limit emulated in legacy mode (std::function's typical SBO).
  static constexpr std::size_t kLegacySboBytes = 16;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
    using D = std::decay_t<F>;
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event callbacks must be nothrow-movable");
    constexpr bool fits =
        sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign;
    if constexpr (fits) {
      if (sizeof(D) <= kLegacySboBytes || util::hotPath().inlineEvents) {
        ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
        ops_ = &inlineOps<D>;
        return;
      }
    }
    // Oversized capture (or legacy mode): box it on the heap.
    ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
    ops_ = &boxedOps<D>;
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the capture into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops inlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops boxedOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) {
        std::memcpy(dst, src, sizeof(D*));  // steal the box pointer
      },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace anton::sim
