// Simulated-time representation.
//
// The network model is calibrated in nanoseconds but needs sub-nanosecond
// resolution for bandwidth arithmetic (36.8 Gbit/s = 4.6 bytes/ns), so
// simulated time is kept as integer picoseconds. Integer time makes the
// simulation exactly deterministic and free of FP-accumulation drift.
#pragma once

#include <cmath>
#include <cstdint>

namespace anton::sim {

/// Simulated time in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;

/// Convert a (possibly fractional) nanosecond count to simulated time.
inline Time ns(double n) { return static_cast<Time>(std::llround(n * 1e3)); }
inline Time us(double u) { return static_cast<Time>(std::llround(u * 1e6)); }

/// Convert simulated time to floating-point nanoseconds / microseconds.
inline constexpr double toNs(Time t) { return static_cast<double>(t) / 1e3; }
inline constexpr double toUs(Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace anton::sim
