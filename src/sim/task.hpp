// Coroutine task type for simulation "programs".
//
// Software running on Anton's processing slices is modeled as C++20
// coroutines: a slice program is a Task that co_awaits delays (compute
// phases), synchronization-counter thresholds, and FIFO arrivals, exactly
// mirroring the poll-driven structure of the real firmware.
//
// Task is lazily started. Awaiting a Task links the awaiter as its
// continuation (symmetric transfer on completion). Exceptions propagate to
// the awaiter; for detached root tasks the simulator rethrows at sweep time.
//
// Coroutine frames come from a thread-local slab pool: simulation programs
// spawn short-lived tasks per superstep (sends, counted waits), and pooling
// the frames keeps the steady-state hot path free of heap allocation.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "util/slab_pool.hpp"

namespace anton::sim {

/// Slab pool behind every sim::Task coroutine frame on this thread.
inline util::SlabPool& taskFramePool() {
  if (util::SlabPool* o = util::poolOverrides().taskFrame) return *o;
  thread_local util::SlabPool pool("task-frame");
  return pool;
}

class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // awaiter to resume on completion
    std::exception_ptr exception;

    /// Frames are slab-allocated (recycled per size class); oversized
    /// frames fall back to the heap inside the pool. Deletion routes through
    /// the header's origin pool: under the sharded kernel a frame may be
    /// destroyed on a different shard worker than the one that spawned it.
    static void* operator new(std::size_t n) { return taskFramePool().alloc(n); }
    static void operator delete(void* p, std::size_t) noexcept {
      util::SlabPool::release(p);
    }

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  /// Start a task that nothing will co_await (the simulator's spawn path).
  void startDetached() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  /// Rethrow the task's stored exception, if any (detached tasks only;
  /// awaited tasks rethrow through await_resume).
  void rethrowIfFailed() const {
    if (handle_ && handle_.done() && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  // Awaitable interface: `co_await subtask` runs the subtask to completion.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    handle_.promise().continuation = awaiter;
    return handle_;  // symmetric transfer: start the subtask now
  }
  void await_resume() {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace anton::sim
