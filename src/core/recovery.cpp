#include "core/recovery.hpp"

#include "net/machine.hpp"
#include "sim/simulator.hpp"

namespace anton::core {

// --- DropRegistry -----------------------------------------------------------

DropRegistry::DropRegistry(net::Machine& machine) : machine_(machine) {
  machine_.setDropHandler([this](const net::PacketPtr& p,
                                 const std::vector<net::ClientAddr>& denied) {
    ++drops_;
    for (const net::ClientAddr& d : denied)
      entries_.push_back({p, d, machine_.sim().now()});
  });
}

DropRegistry::~DropRegistry() { machine_.setDropHandler(nullptr); }

std::vector<net::PacketPtr> DropRegistry::take(int counterId, int srcNode,
                                               net::ClientAddr dst) {
  std::vector<net::PacketPtr> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->packet->counterId == counterId &&
        it->packet->src.node == srcNode && it->denied == dst) {
      out.push_back(it->packet);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void DropRegistry::prune(sim::Time before) {
  std::erase_if(entries_,
                [before](const Entry& e) { return e.droppedAt < before; });
}

// --- replay -----------------------------------------------------------------

std::size_t resendFromRegistry(net::Machine& machine, DropRegistry& registry,
                               const WatchdogReport& report) {
  std::size_t resent = 0;
  for (const WatchdogReport::MissingSource& m : report.missing) {
    for (const net::PacketPtr& p :
         registry.take(report.counterId, m.node, report.dst)) {
      // Clone on replay: post() builds a fresh Packet sharing only the
      // payload slot. Re-injecting the registry-held object would mutate
      // bookkeeping (injectedAt, routeSalt, tailLag) on a Packet whose
      // other multicast replicas may still be in flight — and would replay
      // a multicast header as a multicast, re-fanning the whole tree.
      net::NetworkClient::SendArgs args;
      args.type = p->type;
      args.dst = report.dst;  // unicast replay, even for a multicast drop
      args.counterId = p->counterId;
      args.address = p->address;
      args.inOrder = p->inOrder;
      args.degradedRoute = true;  // avoid the link that ate the original
      args.payload = p->payload;
      machine.client(p->src).post(args);
      ++resent;
    }
  }
  return resent;
}

// --- the retry loop ---------------------------------------------------------

sim::Task RecoverableCountedWrite::await(std::uint64_t target,
                                         const ResendFn& resend) {
  std::uint64_t lastSeen = client_.counterValue(counterId_);
  for (int spent = 0;;) {
    // A spent round waits timeout + spent*backoff: the wait stays armed
    // continuously (no blind window between rounds) and cascaded
    // recoveries — a waiter whose upstream sender is itself recovering —
    // get linearly more patience instead of burning the budget at a fixed
    // cadence.
    CountedWriteWatchdog wd(client_, counterId_,
                            cfg_.timeout + sim::Time(spent) * cfg_.resendBackoff);
    for (const auto& [node, want] : expected_) wd.expectFrom(node, want);
    wd.rerouteOnTimeout(cfg_.rerouteOnTimeout);
    WatchdogReport r = co_await wd.wait(target);
    if (!r.timedOut) co_return;
    ++stats_.timeouts;
    const std::uint64_t seen = client_.counterValue(counterId_);
    const bool progressed = seen > lastSeen;
    lastSeen = seen;
    if (!progressed && spent >= cfg_.maxResends) {
      ++stats_.hardFailures;
      throw RecoveryFailure(std::move(r));
    }
    const std::size_t replayed = resend(r);
    stats_.resends += replayed;
    if (progressed && replayed == 0) {
      // The counter advanced during the round and the registry owed us
      // nothing: the shortfall is progress-bound, not loss-bound —
      // typically an upstream sender mid-recovery still draining toward
      // us. Re-arm without charging the resend budget; a trickling
      // cascade must not be escalated into a hard failure while it is
      // visibly making progress. (A round that actually replayed packets
      // is charged even when it also progressed: real loss was found.)
      ++stats_.progressRounds;
      continue;
    }
    ++spent;
  }
}

sim::Task awaitCounted(net::NetworkClient& client, int counterId,
                       std::uint64_t target,
                       const std::map<int, std::uint64_t>& bySource,
                       const RecoveryHooks& hooks) {
  if (!hooks.armed()) {
    co_await client.waitCounter(counterId, target);
    co_return;
  }
  RecoverableCountedWrite rcw(client, counterId, hooks.config);
  for (const auto& [node, want] : bySource) rcw.expectFrom(node, want);
  net::Machine& machine = client.machine();
  DropRegistry& registry = *hooks.registry;
  auto replay = [&machine, &registry](const WatchdogReport& r) {
    return resendFromRegistry(machine, registry, r);
  };
  try {
    co_await rcw.await(target, replay);
  } catch (...) {
    if (hooks.stats != nullptr) hooks.stats->accumulate(rcw.stats());
    throw;
  }
  if (hooks.stats != nullptr) hooks.stats->accumulate(rcw.stats());
}

}  // namespace anton::core
