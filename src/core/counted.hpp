// Receiver-side helpers for counted remote writes.
//
// Synchronization counters on Anton are cumulative — firmware avoids reset
// races by tracking absolute thresholds. CountedChannel packages the common
// idiom "this phase receives exactly K packets per time step on counter C".
#pragma once

#include <cstdint>

#include "net/client.hpp"

namespace anton::core {

/// The receive side of one fixed communication pattern: `perRound` packets
/// are expected on `counterId` of `client` every round (time step / phase).
class CountedChannel {
 public:
  CountedChannel(net::NetworkClient& client, int counterId,
                 std::uint64_t perRound)
      : client_(&client), counterId_(counterId), perRound_(perRound) {}

  net::NetworkClient& client() const { return *client_; }
  int counterId() const { return counterId_; }
  std::uint64_t perRound() const { return perRound_; }
  std::uint64_t roundsCompleted() const { return rounds_; }

  /// Awaitable: complete the next round (all perRound packets arrived).
  net::NetworkClient::CounterWait nextRound() {
    ++rounds_;
    return client_->waitCounter(counterId_, perRound_ * rounds_);
  }

  /// Awaitable: wait until `k` of the current round's packets have arrived
  /// (for overlap: start computing on partial data). Does not advance the
  /// round; call nextRound() to consume the rest.
  net::NetworkClient::CounterWait atLeast(std::uint64_t k) {
    return client_->waitCounter(counterId_, perRound_ * rounds_ + k);
  }

  /// Change the per-round expectation (e.g. after a bond-program
  /// regeneration alters the fixed packet counts). Only legal on a round
  /// boundary.
  void setPerRound(std::uint64_t perRound) { perRound_ = perRound; }

 private:
  net::NetworkClient* client_;
  int counterId_;
  std::uint64_t perRound_;
  std::uint64_t rounds_ = 0;
};

}  // namespace anton::core
