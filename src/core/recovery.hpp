// End-to-end erasure recovery for counted remote writes.
//
// Link-level CRC retransmission repairs bit errors, but a traversal that
// exhausts the retransmit cap *drops* its packet replica — an erasure the
// lossless-network software model would otherwise wait on forever. This
// layer closes the loop in software, the way the machine's firmware would:
//
//   - DropRegistry: a sender-side replay buffer fed by the machine's drop
//     observer. Every dropped replica is recorded per denied receiver (for
//     multicast, only the subtree beyond the failed link is denied — the
//     receivers before it got their copy and must not be re-bumped).
//   - CountedWriteWatchdog (core/watchdog.hpp): diagnoses which sources a
//     timed-out counted wait is still owed packets from.
//   - RecoverableCountedWrite / awaitCounted: the retry loop — wait with a
//     deadline, diagnose, replay exactly the lost payloads from the
//     registry (degraded-routed, so replays avoid the link that ate the
//     original), and hard-fail with a full report when the bounded resend
//     budget is exhausted.
//
// Disarmed (no registry), every wait degenerates to a plain counter poll
// with bit-identical timing — the zero-fault path is untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/watchdog.hpp"
#include "net/client.hpp"
#include "net/packet.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace anton::net {
class Machine;
}

namespace anton::core {

/// Per-wait recovery policy.
struct RecoveryConfig {
  sim::Time timeout = 0;          ///< per-attempt watchdog deadline
  int maxResends = 4;             ///< replay rounds before hard failure
  sim::Time resendBackoff = 0;    ///< extra deadline added per retry round
  bool rerouteOnTimeout = false;  ///< flip degraded routing on first timeout
};

/// Aggregate recovery activity (all exactly zero on a fault-free run).
struct RecoveryStats {
  std::uint64_t timeouts = 0;      ///< watchdog deadlines that fired
  std::uint64_t resends = 0;       ///< packets replayed from the registry
  std::uint64_t hardFailures = 0;  ///< waits that exhausted their budget
  /// Timed-out rounds forgiven because the counter advanced during the
  /// round (an upstream cascade is still draining toward us).
  std::uint64_t progressRounds = 0;
  void accumulate(const RecoveryStats& o) {
    timeouts += o.timeouts;
    resends += o.resends;
    hardFailures += o.hardFailures;
    progressRounds += o.progressRounds;
  }
};

/// Sender-side replay buffer: installs itself as the machine's drop
/// observer and records every dropped replica per denied receiver, keyed by
/// (counter, source node, receiver) for the watchdog diagnosis to consume.
class DropRegistry {
 public:
  explicit DropRegistry(net::Machine& machine);
  ~DropRegistry();
  DropRegistry(const DropRegistry&) = delete;
  DropRegistry& operator=(const DropRegistry&) = delete;

  /// Dropped replicas observed since construction (never forgotten, even by
  /// prune/take — the tally is the bench's drop count).
  std::uint64_t dropsObserved() const { return drops_; }

  /// Recorded (packet, denied receiver) pairs not yet replayed.
  std::size_t pending() const { return entries_.size(); }

  /// Consume every pending replica that `srcNode` lost toward `dst` on
  /// `counterId`. Returns the packets (payloads intact) for replay; taken
  /// entries are removed so a second diagnosis cannot double-replay.
  std::vector<net::PacketPtr> take(int counterId, int srcNode,
                                   net::ClientAddr dst);

  /// Discard pending entries recorded before `before` (stale drops whose
  /// wait already hard-failed). The observed-drop tally is untouched.
  void prune(sim::Time before);

 private:
  struct Entry {
    net::PacketPtr packet;
    net::ClientAddr denied;
    sim::Time droppedAt;
  };
  net::Machine& machine_;
  std::vector<Entry> entries_;
  std::uint64_t drops_ = 0;
};

/// Thrown (out of Simulator::run) when a recoverable wait exhausts its
/// resend budget; carries the final timeout diagnosis.
class RecoveryFailure : public std::runtime_error {
 public:
  explicit RecoveryFailure(WatchdogReport r)
      : std::runtime_error("erasure recovery exhausted its resend budget: " +
                           r.describe()),
        report(std::move(r)) {}
  WatchdogReport report;
};

/// Replay every registered drop named missing by `report`: each lost
/// replica is re-posted by its original sender as a degraded-routed unicast
/// to exactly the denied receiver (re-multicasting would re-bump receivers
/// that already got their copy). Returns the number of packets replayed —
/// zero when the shortfall is not in the registry (e.g. the upstream sender
/// is itself still recovering).
std::size_t resendFromRegistry(net::Machine& machine, DropRegistry& registry,
                               const WatchdogReport& report);

/// One counted-write wait with bounded erasure recovery: watchdog-guarded
/// attempts, a resend callback per timeout, RecoveryFailure on exhaustion.
class RecoverableCountedWrite {
 public:
  using ResendFn = std::function<std::size_t(const WatchdogReport&)>;

  RecoverableCountedWrite(net::NetworkClient& client, int counterId,
                          RecoveryConfig cfg)
      : client_(client), counterId_(counterId), cfg_(cfg) {}

  /// Declare the cumulative per-source expectation (see
  /// CountedWriteWatchdog::expectFrom).
  void expectFrom(int srcNode, std::uint64_t expected) {
    expected_[srcNode] = expected;
  }

  /// Await counters[id] >= target. Each timeout invokes `resend` with the
  /// diagnosis (typically resendFromRegistry) and re-arms with the deadline
  /// stretched by resendBackoff per charged round. A round during which the
  /// counter advanced AND the replay found nothing lost is progress-bound
  /// (an upstream cascade still draining) and is forgiven — it does not
  /// count against maxResends; after maxResends charged rounds the wait
  /// throws RecoveryFailure.
  sim::Task await(std::uint64_t target, const ResendFn& resend);

  const RecoveryStats& stats() const { return stats_; }

 private:
  net::NetworkClient& client_;
  int counterId_;
  RecoveryConfig cfg_;
  std::map<int, std::uint64_t> expected_;
  RecoveryStats stats_;
};

/// One shared arming handle for a subsystem's counted waits: a registry to
/// replay from, the retry policy, and an optional stats sink aggregated
/// across every wait. Default-constructed hooks are disarmed.
struct RecoveryHooks {
  DropRegistry* registry = nullptr;
  RecoveryConfig config;
  RecoveryStats* stats = nullptr;
  bool armed() const { return registry != nullptr; }
};

/// THE counted wait of the collectives: a plain counter poll when `hooks`
/// is disarmed (schedule-identical to recovery-free code), a full
/// RecoverableCountedWrite against the hooks' registry when armed.
/// `bySource` (cumulative per-source expectations; ignored when disarmed)
/// is taken by reference and must outlive the co_await.
sim::Task awaitCounted(net::NetworkClient& client, int counterId,
                       std::uint64_t target,
                       const std::map<int, std::uint64_t>& bySource,
                       const RecoveryHooks& hooks);

}  // namespace anton::core
