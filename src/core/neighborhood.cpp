#include "core/neighborhood.hpp"

#include <algorithm>

namespace anton::core {

std::vector<int> torusNeighborhood26(const util::TorusShape& shape, int nodeIdx) {
  util::TorusCoord c = util::torusCoordOf(nodeIdx, shape);
  std::vector<int> out;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        util::TorusCoord n{util::wrap(c.x + dx, shape.nx),
                           util::wrap(c.y + dy, shape.ny),
                           util::wrap(c.z + dz, shape.nz)};
        int idx = util::torusIndex(n, shape);
        if (idx != nodeIdx) out.push_back(idx);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

NeighborhoodSync::NeighborhoodSync(net::Machine& machine,
                                   PatternAllocator& alloc, int counterId,
                                   int targetClient)
    : machine_(machine), counterId_(counterId), targetClient_(targetClient) {
  int n = machine.numNodes();
  neighbors_.reserve(std::size_t(n));
  patternIds_.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    neighbors_.push_back(torusNeighborhood26(machine.shape(), i));
    std::vector<net::ClientAddr> dests;
    dests.reserve(neighbors_.back().size());
    for (int nb : neighbors_.back()) dests.push_back({nb, targetClient});
    // The flush must not overtake in-order FIFO migration traffic, so its
    // tree follows the exact deterministic X->Y->Z paths those packets use.
    patternIds_.push_back(
        alloc.install(buildMulticastTree(machine, i, dests, {0, 1, 2})));
  }
}

void NeighborhoodSync::signal(int nodeIdx) {
  net::NetworkClient::SendArgs args;
  args.multicastPattern = patternIds_[std::size_t(nodeIdx)];
  args.counterId = counterId_;
  args.inOrder = true;
  machine_.client({nodeIdx, targetClient_}).post(args);
}

sim::Task NeighborhoodSync::signalAndCharge(int nodeIdx) {
  signal(nodeIdx);
  co_await machine_.sim().delay(machine_.latency().assembly());
}

}  // namespace anton::core
