#include "core/allreduce.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace anton::core {

using net::MulticastEntry;
using net::RingLayout;

namespace {

int maxExtent(const util::TorusShape& s) {
  return std::max({s.nx, s.ny, s.nz});
}

net::PayloadPtr packDoubles(std::span<const double> xs) {
  if (xs.empty()) return nullptr;
  return net::makePayload(xs.data(), xs.size() * sizeof(double));
}

}  // namespace

// --- DimOrderedAllReduce ----------------------------------------------------

DimOrderedAllReduce::DimOrderedAllReduce(net::Machine& machine,
                                         AllReduceConfig cfg)
    : machine_(machine), cfg_(cfg), rounds_(std::size_t(machine.numNodes())) {
  if (cfg_.maxBytes > net::kMaxPayloadBytes)
    throw std::invalid_argument("all-reduce payload exceeds packet payload");
  installPatterns();
}

int DimOrderedAllReduce::patternId(int dim, int pos) const {
  return cfg_.patternBase + dim * maxExtent(machine_.shape()) + pos;
}

std::uint32_t DimOrderedAllReduce::slotAddr(int pos, int parity) const {
  return cfg_.memBase +
         std::uint32_t(pos * 2 + parity) * std::uint32_t(cfg_.maxBytes);
}

void DimOrderedAllReduce::installPatterns() {
  const util::TorusShape& shape = machine_.shape();
  for (int dim = 0; dim < 3; ++dim) {
    int n = shape.extent(dim);
    if (n < 2) continue;
    // The line broadcast from position `pos` reaches positions ahead of it
    // (+dim chain, length fwd) and behind it (-dim chain, length bwd).
    int fwd = n / 2;
    int bwd = n - 1 - fwd;
    for (int pos = 0; pos < n; ++pos) {
      int id = patternId(dim, pos);
      for (int nodeIdx = 0; nodeIdx < machine_.numNodes(); ++nodeIdx) {
        int j = util::torusCoordOf(nodeIdx, shape)[dim];
        int kf = util::wrap(j - pos, n);
        int kb = util::wrap(pos - j, n);
        MulticastEntry e;
        if (kf == 0) {
          // Source position: fork both ways, no local delivery.
          if (fwd >= 1) e.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, +1));
          if (bwd >= 1) e.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, -1));
        } else if (kf <= fwd) {
          e.clientMask = std::uint8_t(1u << dim);  // slice `dim`
          if (kf < fwd) e.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, +1));
        } else {  // kb <= bwd
          e.clientMask = std::uint8_t(1u << dim);
          if (kb < bwd) e.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, -1));
        }
        machine_.setMulticastPattern(nodeIdx, id, e);
      }
    }
  }
}

std::string DimOrderedAllReduce::appendPlan(verify::CommPlan& plan,
                                            const std::string& afterPhase) const {
  const util::TorusShape& shape = machine_.shape();
  static constexpr const char* kDimName[3] = {"x", "y", "z"};
  std::string prev = afterPhase;
  for (int dim = 0; dim < 3; ++dim) {
    int n = shape.extent(dim);
    if (n < 2) continue;
    std::string phase = std::string("allreduce.") + kDimName[dim];
    plan.addPhaseEdge(prev, phase);
    prev = phase;
    int fwd = n / 2;
    int bwd = n - 1 - fwd;
    for (int s = 0; s < machine_.numNodes(); ++s) {
      util::TorusCoord c = util::torusCoordOf(s, shape);
      int pos = c[dim];

      verify::PlannedWrite w;
      w.phase = phase;
      w.srcNode = s;
      w.pattern = patternId(dim, pos);
      w.counterId = cfg_.counterId;
      // run() multicasts the local partial *before* waiting on the line's
      // peers — the send depends on nothing inside this phase. That order is
      // exactly why the receive slots need parity double buffering.
      w.seq = 0;
      plan.writes.push_back(w);

      verify::CounterExpectation e;
      e.site = phase;
      e.phase = phase;
      e.client = {s, dim};
      e.counterId = cfg_.counterId;
      e.perRound = std::uint64_t(n - 1);
      e.seq = 1;  // the wait follows the send (see above)
      e.recoveryArmed = recovery_.armed();

      verify::BufferPlan b;
      b.name = phase + ".slots";
      b.client = e.client;
      b.base = slotAddr(0, 0);
      b.bytes = std::uint32_t(n) * 2u * std::uint32_t(cfg_.maxBytes);
      b.copies = 2;  // parity double buffering across reductions
      b.freePhase = phase;

      // The machine-wide pattern (dim, pos) restricted to this source's
      // line: only those table rows can be reached from `s`.
      verify::MulticastPlanEntry mp;
      mp.patternId = w.pattern;
      mp.srcNode = s;
      for (int k = 0; k < n; ++k) {
        util::TorusCoord jc = c;
        jc[dim] = k;
        int j = util::torusIndex(jc, shape);
        int kf = util::wrap(k - pos, n);
        int kb = util::wrap(pos - k, n);
        MulticastEntry entry;
        if (kf == 0) {
          if (fwd >= 1)
            entry.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, +1));
          if (bwd >= 1)
            entry.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, -1));
        } else if (kf <= fwd) {
          entry.clientMask = std::uint8_t(1u << dim);
          if (kf < fwd)
            entry.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, +1));
        } else {
          entry.clientMask = std::uint8_t(1u << dim);
          if (kb < bwd)
            entry.linkMask |= std::uint8_t(1u << RingLayout::adapterIndex(dim, -1));
        }
        mp.entries[j] = entry;
        if (k != pos) {
          mp.declaredDests.push_back({j, dim});
          e.bySource[j] = 1;
          b.writers.push_back({j, phase});
        }
      }
      plan.expectations.push_back(std::move(e));
      plan.multicasts.push_back(std::move(mp));
      plan.buffers.push_back(std::move(b));
    }
  }
  if (cfg_.shareLocally) {
    int lastDim = shape.nz > 1 ? 2 : shape.ny > 1 ? 1 : shape.nx > 1 ? 0 : -1;
    if (lastDim >= 0) {
      std::string phase = "allreduce.share";
      plan.addPhaseEdge(prev, phase);
      prev = phase;
      for (int s = 0; s < machine_.numNodes(); ++s) {
        for (int sl = 0; sl < net::kNumSlices; ++sl) {
          if (sl == lastDim) continue;
          verify::PlannedWrite w;
          w.phase = phase;
          w.srcNode = s;
          w.dst = {s, sl};  // node-local share, no counter
          plan.writes.push_back(w);
        }
      }
    }
  }
  return prev;
}

sim::Task DimOrderedAllReduce::run(int nodeIdx, std::vector<double> in,
                                   std::vector<double>* out) {
  const util::TorusShape& shape = machine_.shape();
  const util::TorusCoord coord = util::torusCoordOf(nodeIdx, shape);
  const std::size_t words = in.size();
  if (words * sizeof(double) > cfg_.maxBytes)
    throw std::length_error("all-reduce payload exceeds configured maxBytes");

  std::vector<double> cur = std::move(in);
  for (int dim = 0; dim < 3; ++dim) {
    int n = shape.extent(dim);
    if (n < 2) continue;
    net::ProcessingSlice& slice = machine_.slice(nodeIdx, dim);
    int pos = coord[dim];
    int parity = int(rounds_[std::size_t(nodeIdx)][std::size_t(dim)] % 2);

    net::NetworkClient::SendArgs args;
    args.multicastPattern = patternId(dim, pos);
    args.counterId = cfg_.counterId;
    args.address = slotAddr(pos, parity);
    args.payload = packDoubles(cur);
    co_await slice.send(args);

    std::uint64_t target =
        ++rounds_[std::size_t(nodeIdx)][std::size_t(dim)] * std::uint64_t(n - 1);
    {
      // One broadcast replica per line peer per round, cumulative. The map
      // must outlive the await (awaitCounted takes it by reference).
      std::map<int, std::uint64_t> bySource;
      if (recovery_.armed()) {
        const std::uint64_t r = rounds_[std::size_t(nodeIdx)][std::size_t(dim)];
        for (int k = 0; k < n; ++k) {
          if (k == pos) continue;
          util::TorusCoord jc = coord;
          jc[dim] = k;
          bySource[util::torusIndex(jc, shape)] = r;
        }
      }
      co_await awaitCounted(slice, cfg_.counterId, target, bySource, recovery_);
    }

    // Redundant ordered sum across line positions: identical on every node.
    if (words != 0) {
      std::vector<double> acc(words, 0.0);
      for (int i = 0; i < n; ++i) {
        for (std::size_t w = 0; w < words; ++w) {
          double v = (i == pos)
                         ? cur[w]
                         : slice.read<double>(slotAddr(i, parity) +
                                              std::uint32_t(w * sizeof(double)));
          acc[w] += v;
        }
      }
      cur = std::move(acc);
    }
    co_await machine_.sim().delay(
        sim::ns(cfg_.roundOverheadNs + cfg_.perWordNs * double(words) * n));
  }

  if (cfg_.shareLocally) {
    // The last participating slice shares the global sum with its three
    // peers through local remote writes (SC10 §IV-B4).
    int lastDim = shape.nz > 1 ? 2 : shape.ny > 1 ? 1 : shape.nx > 1 ? 0 : -1;
    if (lastDim >= 0) {
      net::ProcessingSlice& owner = machine_.slice(nodeIdx, lastDim);
      for (int s = 0; s < net::kNumSlices; ++s) {
        if (s == lastDim) continue;
        net::NetworkClient::SendArgs share;
        share.dst = {nodeIdx, s};
        // Past the line-broadcast slots: 2*maxExtent slots precede it.
        share.address = slotAddr(maxExtent(machine_.shape()), 0);
        share.payload = packDoubles(cur);
        co_await owner.send(share);
      }
    }
  }

  if (out != nullptr) *out = std::move(cur);
}

// --- ButterflyAllReduce -----------------------------------------------------

ButterflyAllReduce::ButterflyAllReduce(net::Machine& machine,
                                       AllReduceConfig cfg)
    : machine_(machine),
      cfg_(cfg),
      sent_(std::size_t(machine.numNodes())),
      calls_(std::size_t(machine.numNodes())) {
  const util::TorusShape& shape = machine.shape();
  for (int dim = 0; dim < 3; ++dim) {
    int n = shape.extent(dim);
    if (n > 1 && !std::has_single_bit(unsigned(n)))
      throw std::invalid_argument("butterfly all-reduce needs power-of-two extents");
    roundsPerDim_[std::size_t(dim)] = std::bit_width(unsigned(n)) - 1;
  }
}

std::uint32_t ButterflyAllReduce::slotAddr(int dim, int round, int parity) const {
  // Up to 3 dims x log2(extent) rounds x 2 parities of maxBytes each.
  int slot = (dim * 8 + round) * 2 + parity;
  return cfg_.memBase + std::uint32_t(slot) * std::uint32_t(cfg_.maxBytes);
}

sim::Task ButterflyAllReduce::run(int nodeIdx, std::vector<double> in,
                                  std::vector<double>* out) {
  const util::TorusShape& shape = machine_.shape();
  const util::TorusCoord coord = util::torusCoordOf(nodeIdx, shape);
  const std::size_t words = in.size();
  int parity = int(calls_[std::size_t(nodeIdx)]++ % 2);

  std::vector<double> cur = std::move(in);
  for (int dim = 0; dim < 3; ++dim) {
    net::ProcessingSlice& slice = machine_.slice(nodeIdx, dim);
    int pos = coord[dim];
    for (int r = 0; r < roundsPerDim_[std::size_t(dim)]; ++r) {
      util::TorusCoord partner = coord;
      partner[dim] = pos ^ (1 << r);

      net::NetworkClient::SendArgs args;
      args.dst = {util::torusIndex(partner, shape), dim};
      args.counterId = cfg_.counterId;
      args.address = slotAddr(dim, r, parity);
      args.payload = packDoubles(cur);
      co_await slice.send(args);

      std::uint64_t target = ++sent_[std::size_t(nodeIdx)][std::size_t(dim)];
      co_await slice.waitCounter(cfg_.counterId, target);

      if (words != 0) {
        std::vector<double> theirs(words);
        for (std::size_t w = 0; w < words; ++w)
          theirs[w] = slice.read<double>(slotAddr(dim, r, parity) +
                                         std::uint32_t(w * sizeof(double)));
        // Order the operands by subcube position so every node computes
        // bit-identical sums.
        bool mineFirst = ((pos >> r) & 1) == 0;
        for (std::size_t w = 0; w < words; ++w)
          cur[w] = mineFirst ? cur[w] + theirs[w] : theirs[w] + cur[w];
      }
      co_await machine_.sim().delay(
          sim::ns(cfg_.roundOverheadNs + cfg_.perWordNs * double(words) * 2));
    }
  }
  if (out != nullptr) *out = std::move(cur);
}

}  // namespace anton::core
