// 26-neighbor synchronization: the migration-flush idiom of SC10 §IV-B5.
//
// Migration traffic is stochastic, so it flows through the hardware message
// FIFOs and cannot be counted in advance. After a node has sent all of its
// migration messages, it multicasts a single in-order counted remote write
// to its 26 nearest neighbors; the in-order delivery guarantee ensures the
// flush cannot overtake the migration messages, so once a node's flush
// counter reaches its neighbor count, every inbound migration message has
// been delivered.
#pragma once

#include <vector>

#include "core/multicast.hpp"
#include "net/machine.hpp"
#include "sim/task.hpp"

namespace anton::core {

class NeighborhoodSync {
 public:
  /// `counterId` is the flush counter on `targetClient` of every node;
  /// patterns are taken from `alloc`.
  NeighborhoodSync(net::Machine& machine, PatternAllocator& alloc,
                   int counterId, int targetClient = net::kSlice0);

  /// Distinct nodes in the 3x3x3 neighborhood of `nodeIdx` (excluding
  /// itself); in small tori, wrapped duplicates are collapsed.
  const std::vector<int>& neighbors(int nodeIdx) const {
    return neighbors_[std::size_t(nodeIdx)];
  }

  /// Number of flush packets `nodeIdx` expects per round.
  std::uint64_t expectedPerRound(int nodeIdx) const {
    return neighbors_[std::size_t(nodeIdx)].size();
  }

  /// Fire-and-forget: multicast this node's flush to all neighbors
  /// (in-order, so it cannot overtake previously sent FIFO traffic).
  void signal(int nodeIdx);

  /// Coroutine form charging the assembly time to the caller.
  sim::Task signalAndCharge(int nodeIdx);

  /// The multicast pattern id `nodeIdx`'s flush broadcast uses (installed
  /// through the shared allocator). Exposed for static plan extraction.
  int patternId(int nodeIdx) const { return patternIds_[std::size_t(nodeIdx)]; }

  int counterId() const { return counterId_; }
  int targetClient() const { return targetClient_; }

  /// Awaitable: all neighbors' flushes for round `round` (1-based) arrived.
  net::NetworkClient::CounterWait wait(int nodeIdx, std::uint64_t round) {
    return machine_.client({nodeIdx, targetClient_})
        .waitCounter(counterId_, round * expectedPerRound(nodeIdx));
  }

 private:
  net::Machine& machine_;
  int counterId_;
  int targetClient_;
  std::vector<std::vector<int>> neighbors_;
  std::vector<int> patternIds_;
};

/// Helper shared with the MD layer: the distinct torus nodes in the 3^3 - 1
/// neighborhood of `nodeIdx`.
std::vector<int> torusNeighborhood26(const util::TorusShape& shape, int nodeIdx);

}  // namespace anton::core
