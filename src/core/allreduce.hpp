// Global reductions built from multicast counted remote writes.
//
// Anton has no reduction hardware; SC10 §IV-B4 composes all-reduce from the
// primitives instead. The dimension-ordered algorithm decomposes the 3D
// reduction into parallel 1D all-reduces along x, then y, then z: each of
// the N nodes on a line broadcasts its value to the other N-1 (multicast
// counted remote writes, both ring directions), then every node redundantly
// computes the same ordered sum in software on processing slice k (k = the
// dimension index). Three rounds reach the global sum with the minimum hop
// count; the butterfly variant below is the ablation baseline the paper
// compares against (3*log2(N) rounds, 3(N-1) hops).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/recovery.hpp"
#include "net/machine.hpp"
#include "sim/task.hpp"
#include "verify/plan.hpp"

namespace anton::core {

struct AllReduceConfig {
  int patternBase = 208;  ///< pattern ids [base, base + 3*maxExtent)
  int counterId = 200;    ///< sync counter id on each participating slice
  std::uint32_t memBase = 0x28000;  ///< receive-slot base in slice memory
  std::size_t maxBytes = net::kMaxPayloadBytes;  ///< largest reduction payload
  double roundOverheadNs = 75.0;  ///< per-dimension software overhead
  double perWordNs = 4.0;         ///< software add cost per received word
  bool shareLocally = true;  ///< final slice shares result with its 3 peers
};

/// Dimension-ordered all-reduce over every node of a machine. Construct
/// once (installs line-broadcast multicast patterns machine-wide), then
/// spawn `run` collectively — one task per node — any number of times.
class DimOrderedAllReduce {
 public:
  DimOrderedAllReduce(net::Machine& machine, AllReduceConfig cfg = {});

  /// Collective: every node must spawn this once per reduction. `out`
  /// receives the element-wise sum over all nodes (identical bytes on every
  /// node); pass nullptr to discard. An empty `in` is a pure barrier.
  sim::Task run(int nodeIdx, std::vector<double> in, std::vector<double>* out);

  /// Collective barrier: a 0-byte reduction.
  sim::Task barrier(int nodeIdx) { return run(nodeIdx, {}, nullptr); }

  const AllReduceConfig& config() const { return cfg_; }

  /// Arm end-to-end erasure recovery on each dimension's line-broadcast
  /// wait (both the reduction stages and the final dimension's fan-out of
  /// the result): armed waits diagnose dropped replicas per source and
  /// replay them from the hooks' DropRegistry. Disarmed (default) the waits
  /// are plain counter polls — bit-identical timing.
  void setRecovery(const RecoveryHooks& hooks) { recovery_ = hooks; }
  bool recoveryArmed() const { return recovery_.armed(); }

  /// Append this all-reduce's static communication plan (one phase per
  /// participating dimension, chained after `afterPhase`) to `plan`:
  /// per-line broadcast writes, counter expectations, the line multicast
  /// trees, and the parity-double-buffered slot regions. Returns the name
  /// of the final phase appended.
  std::string appendPlan(verify::CommPlan& plan,
                         const std::string& afterPhase) const;

 private:
  int patternId(int dim, int pos) const;
  std::uint32_t slotAddr(int pos, int parity) const;
  void installPatterns();

  net::Machine& machine_;
  AllReduceConfig cfg_;
  /// Per node, per dimension: completed line-broadcast rounds (drives the
  /// cumulative counter thresholds and the double-buffer parity).
  std::vector<std::array<std::uint64_t, 3>> rounds_;
  RecoveryHooks recovery_;
};

/// Radix-2 butterfly all-reduce (recursive doubling per dimension): the
/// algorithm the paper argues against on a torus. Requires power-of-two
/// extents. Used by the ablation bench.
class ButterflyAllReduce {
 public:
  ButterflyAllReduce(net::Machine& machine, AllReduceConfig cfg = {});

  sim::Task run(int nodeIdx, std::vector<double> in, std::vector<double>* out);

 private:
  std::uint32_t slotAddr(int dim, int round, int parity) const;

  net::Machine& machine_;
  AllReduceConfig cfg_;
  std::vector<std::array<std::uint64_t, 3>> sent_;  ///< cumulative per dim
  std::vector<std::uint64_t> calls_;                ///< per node call count
  std::array<int, 3> roundsPerDim_{};
};

}  // namespace anton::core
