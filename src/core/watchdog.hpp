// Counted-write watchdog: a deadline on a synchronization-counter wait.
//
// Anton's counted remote writes synchronize by counter thresholds alone; a
// lost packet therefore turns a phase barrier into a silent deadlock. The
// watchdog races a counter wait against a simulated-time deadline and, on
// timeout, diagnoses *which sources are short* from the client's per-source
// arrival tally — turning "the simulation hung" into "node 2 still owes 2
// packets on counter 0". Both racers are retractable: the loser is cancelled
// so no stale waiter pins the counter and no dead deadline stretches the
// timeline (Simulator::run drains the queue).
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace anton::core {

/// Outcome of a watched counted-write wait: how it resolved, and — when it
/// timed out — the per-source shortfall diagnosis. Carries the waiting
/// client and counter so a recovery layer can locate the lost replicas.
struct WatchdogReport {
  bool timedOut = false;
  std::uint64_t expected = 0;  ///< the counter threshold waited for
  std::uint64_t arrived = 0;   ///< counter value when the race settled
  sim::Time resolvedAt = 0;    ///< simulated time of resolution
  net::ClientAddr dst;         ///< the waiting client
  int counterId = net::kNoCounter;

  /// One source that delivered fewer counted packets than declared.
  struct MissingSource {
    int node = 0;
    std::uint64_t expected = 0;
    std::uint64_t arrived = 0;
  };
  std::vector<MissingSource> missing;

  /// Human-readable one-line summary ("... TIMED OUT ...; missing: node 2
  /// (0/2)").
  std::string describe() const;
};

/// Watch one counter threshold on one client with a deadline. Declare the
/// cumulative per-source expectations with expectFrom() (sources are tallied
/// from counter creation, so declaring them after packets have arrived still
/// credits the full history), then `co_await wd.wait(target)`.
class CountedWriteWatchdog {
 public:
  CountedWriteWatchdog(net::NetworkClient& client, int counterId,
                       sim::Time timeout)
      : client_(client), counterId_(counterId), timeout_(timeout) {}

  /// Declare that `srcNode` owes `expected` counted packets cumulatively
  /// (absolute, like counter targets). Only declared sources appear in the
  /// timeout diagnosis.
  void expectFrom(int srcNode, std::uint64_t expected) {
    expected_[srcNode] = expected;
  }

  /// Flip the machine into degraded-mode routing when the deadline fires
  /// (the timeout is evidence of a dead link; subsequent traffic routes
  /// around links the fault model reports as down).
  void rerouteOnTimeout(bool on) { reroute_ = on; }

  /// Awaitable: resolve when counters[id] >= target OR the deadline fires,
  /// whichever comes first; the loser is retracted. Resumes with the report.
  struct WaitAwaiter {
    CountedWriteWatchdog& wd;
    std::uint64_t target;
    WatchdogReport report;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    WatchdogReport await_resume() noexcept { return std::move(report); }
  };
  WaitAwaiter wait(std::uint64_t target) { return WaitAwaiter{*this, target, {}}; }

 private:
  friend struct WaitAwaiter;
  WatchdogReport diagnose(std::uint64_t target, bool timedOut) const;

  net::NetworkClient& client_;
  int counterId_;
  sim::Time timeout_;
  bool reroute_ = false;
  std::map<int, std::uint64_t> expected_;  ///< source node -> cumulative owed
};

}  // namespace anton::core
