#include "core/multicast.hpp"

#include <stdexcept>

#include "util/torus_coord.hpp"

namespace anton::core {

using net::MulticastEntry;
using net::RingLayout;
using util::TorusCoord;

std::vector<int> MulticastTree::footprint() const {
  std::vector<int> nodes;
  nodes.reserve(entries.size());
  for (const auto& [node, entry] : entries) nodes.push_back(node);
  return nodes;
}

MulticastTree buildMulticastTree(const net::Machine& m, int srcNode,
                                 const std::vector<net::ClientAddr>& dests,
                                 std::array<int, 3> dimOrder) {
  if (dests.empty())
    throw std::invalid_argument("multicast tree needs at least one destination");
  MulticastTree tree;
  tree.srcNode = srcNode;
  const util::TorusShape& shape = m.shape();

  for (const net::ClientAddr& d : dests) {
    if (d.client < 0 || d.client >= net::kClientsPerNode)
      throw std::out_of_range("bad destination client id");
    // Walk the dimension-ordered shortest path, marking forward links; the
    // union over destinations forms the spanning tree, because every
    // destination shares the deterministic path prefix from the source.
    TorusCoord cur = util::torusCoordOf(srcNode, shape);
    TorusCoord dst = util::torusCoordOf(d.node, shape);
    int curIdx = srcNode;
    for (int dim : dimOrder) {
      int delta = util::signedTorusDelta(cur[dim], dst[dim], shape.extent(dim));
      int sign = delta > 0 ? +1 : -1;
      for (int step = 0; step < std::abs(delta); ++step) {
        tree.entries[curIdx].linkMask |=
            std::uint8_t(1u << RingLayout::adapterIndex(dim, sign));
        cur = util::torusNeighbor(cur, dim, sign, shape);
        curIdx = util::torusIndex(cur, shape);
      }
    }
    tree.entries[curIdx].clientMask |= std::uint8_t(1u << d.client);
  }
  return tree;
}

PatternAllocator::PatternAllocator(net::Machine& m, int firstId, int lastId)
    : machine_(m),
      firstId_(firstId),
      lastId_(lastId),
      usedIdsPerNode_(std::size_t(m.numNodes())) {
  if (firstId < 0 || lastId >= net::kMulticastPatterns || firstId > lastId)
    throw std::invalid_argument("bad pattern id range");
}

int PatternAllocator::install(int srcNode,
                              const std::vector<net::ClientAddr>& dests) {
  // Rotate the tree's dimension order by source so that simultaneous
  // broadcasts from neighboring sources spread their legs over all links.
  static constexpr std::array<std::array<int, 3>, 6> kPerms = {{
      {0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {0, 2, 1}, {2, 1, 0}, {1, 0, 2}}};
  int id = install(
      buildMulticastTree(machine_, srcNode, dests, kPerms[std::size_t(srcNode) % 6]));
  installed_.back().dests = dests;  // declared intent, not derived from tree
  return id;
}

int PatternAllocator::install(const MulticastTree& tree) {
  for (int id = firstId_; id <= lastId_; ++id) {
    bool free = true;
    for (const auto& [node, entry] : tree.entries) {
      if (usedIdsPerNode_[std::size_t(node)].contains(id)) {
        free = false;
        break;
      }
    }
    if (free) {
      installAt(tree, id);
      return id;
    }
  }
  throw std::runtime_error("multicast pattern tables exhausted");
}

void PatternAllocator::installAt(const MulticastTree& tree, int id) {
  InstalledPattern rec;
  rec.id = id;
  rec.tree = tree;
  for (const auto& [node, entry] : tree.entries) {
    machine_.setMulticastPattern(node, id, entry);
    usedIdsPerNode_[std::size_t(node)].insert(id);
    for (int c = 0; c < net::kClientsPerNode; ++c)
      if (entry.clientMask & (1u << c)) rec.dests.push_back({node, c});
  }
  installed_.push_back(std::move(rec));
}

}  // namespace anton::core
