// Receive-side resource allocation.
//
// Counted remote writes require every destination buffer to be preallocated
// before the simulation starts (SC10 §IV-A: "fix communication patterns so
// that a sender can push data directly to its destination"). These tiny
// bump allocators carve up a client's local memory and counter bank so that
// independent software subsystems (HTIS traffic, bonded forces, FFT,
// all-reduce, migration) never collide.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "net/client.hpp"

namespace anton::core {

/// Bump allocator over one client's local memory.
class MemoryArena {
 public:
  explicit MemoryArena(std::size_t capacity, std::uint32_t base = 0)
      : next_(base), end_(std::uint32_t(base + capacity)) {}
  explicit MemoryArena(const net::NetworkClient& c)
      : MemoryArena(c.memoryBytes()) {}

  /// Allocate `bytes` aligned to `align` (power of two). Throws when full.
  std::uint32_t alloc(std::size_t bytes, std::uint32_t align = 8) {
    std::uint32_t p = (next_ + align - 1) & ~(align - 1);
    if (p + bytes > end_) throw std::runtime_error("client memory arena exhausted");
    next_ = std::uint32_t(p + bytes);
    return p;
  }

  std::uint32_t used() const { return next_; }
  std::uint32_t remaining() const { return end_ - next_; }

 private:
  std::uint32_t next_;
  std::uint32_t end_;
};

/// Bump allocator over a client's synchronization counters.
class CounterArena {
 public:
  explicit CounterArena(int capacity, int base = 0) : next_(base), end_(capacity) {}
  explicit CounterArena(const net::NetworkClient& c)
      : CounterArena(c.numCounters()) {}

  int alloc(int n = 1) {
    if (next_ + n > end_) throw std::runtime_error("sync counters exhausted");
    int id = next_;
    next_ += n;
    return id;
  }

 private:
  int next_;
  int end_;
};

}  // namespace anton::core
