#include "core/watchdog.hpp"

#include <memory>
#include <sstream>

#include "net/machine.hpp"
#include "sim/simulator.hpp"

namespace anton::core {

std::string WatchdogReport::describe() const {
  std::ostringstream os;
  os << "counted write on node " << dst.node << "/client " << dst.client
     << " counter " << counterId << (timedOut ? " TIMED OUT" : " resolved")
     << " at " << sim::toNs(resolvedAt) << " ns: " << arrived << "/"
     << expected << " arrived";
  if (!missing.empty()) {
    os << "; missing:";
    for (const MissingSource& m : missing)
      os << " node " << m.node << " (" << m.arrived << "/" << m.expected
         << ")";
  }
  return os.str();
}

WatchdogReport CountedWriteWatchdog::diagnose(std::uint64_t target,
                                              bool timedOut) const {
  WatchdogReport r;
  r.timedOut = timedOut;
  r.expected = target;
  r.arrived = client_.counterValue(counterId_);
  r.resolvedAt = client_.machine().sim().now();
  r.dst = client_.addr();
  r.counterId = counterId_;
  const std::map<int, std::uint64_t> sources =
      client_.counterSources(counterId_);
  for (const auto& [node, want] : expected_) {
    auto it = sources.find(node);
    const std::uint64_t got = it == sources.end() ? 0 : it->second;
    if (got < want) r.missing.push_back({node, want, got});
  }
  return r;
}

void CountedWriteWatchdog::WaitAwaiter::await_suspend(
    std::coroutine_handle<> h) {
  // Race: a counter waiter against a cancellable deadline event. The first
  // to fire settles the race and retracts the other — the counter path
  // cancels the deadline (a surviving dead deadline would stretch run() to
  // the full timeout), the deadline path cancels the waiter (counters never
  // reset, so an unmet threshold would pin the callback forever).
  auto settled = std::make_shared<bool>(false);
  auto deadline = std::make_shared<sim::Simulator::EventHandle>();
  auto token = std::make_shared<std::uint64_t>(0);

  *token = wd.client_.onCounter(wd.counterId_, target,
                                [this, settled, deadline, h] {
    if (*settled) return;
    *settled = true;
    sim::Simulator::cancel(*deadline);
    report = wd.diagnose(target, /*timedOut=*/false);
    h.resume();
  });
  *deadline = wd.client_.machine().sim().afterCancellable(
      wd.timeout_, [this, settled, token, h] {
        if (*settled) return;
        *settled = true;
        wd.client_.cancelCounterWaiter(wd.counterId_, *token);
        if (wd.reroute_) wd.client_.machine().setFaultReroute(true);
        report = wd.diagnose(target, /*timedOut=*/true);
        h.resume();
      });
}

}  // namespace anton::core
