// Multicast tree construction and pattern-id management.
//
// Anton's network forwards a multicast packet according to per-node lookup
// tables (up to 256 precomputed patterns per node, SC10 §III-A). This module
// turns a logical fan-out — one source client, a set of destination clients —
// into the per-node MulticastEntry tables of a dimension-ordered spanning
// tree, and allocates pattern ids so that trees whose footprints overlap
// never share an id (two sources may reuse an id iff no node appears in both
// trees, exactly as the real tables allow).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "net/machine.hpp"

namespace anton::core {

/// The per-node table entries of one multicast tree, before installation.
struct MulticastTree {
  int srcNode = 0;
  std::map<int, net::MulticastEntry> entries;  ///< node index -> entry

  /// All nodes whose tables the tree touches (its interference footprint).
  std::vector<int> footprint() const;
};

/// Build the dimension-ordered spanning tree for a fan-out from `srcNode` to
/// `dests`. Destinations on the source node are delivered locally; the
/// source client itself is not a destination unless listed. `dimOrder`
/// selects the traversal order: rotating it across sources balances the
/// final-dimension tree legs over all six link directions (with a single
/// global order, every tree's corner legs pile onto the last dimension's
/// links).
MulticastTree buildMulticastTree(const net::Machine& m, int srcNode,
                                 const std::vector<net::ClientAddr>& dests,
                                 std::array<int, 3> dimOrder = {0, 1, 2});

/// One pattern as installed: its id, the tree written into the node tables,
/// and the destination set the caller declared. For trees installed without
/// an explicit destination list the dests are derived from the tree's
/// clientMask bits. Consumed by the static plan verifier (src/verify/).
struct InstalledPattern {
  int id = -1;
  MulticastTree tree;
  std::vector<net::ClientAddr> dests;
};

/// Allocates pattern ids and installs trees into a machine's node tables.
/// Ids are assigned greedily: the smallest id unused on every footprint node
/// of the new tree. Throws when the 256-entry tables are exhausted.
class PatternAllocator {
 public:
  /// Manage ids in [firstId, lastId] (inclusive).
  explicit PatternAllocator(net::Machine& m, int firstId = 0,
                            int lastId = net::kMulticastPatterns - 1);

  /// Install a fan-out; returns the allocated pattern id.
  int install(int srcNode, const std::vector<net::ClientAddr>& dests);

  /// Install a prebuilt tree; returns the allocated pattern id.
  int install(const MulticastTree& tree);

  /// Install a prebuilt tree under a caller-chosen id (no conflict checks
  /// beyond a debug assertion that the slots are free). Used by subsystems
  /// with their own id scheme (e.g. the all-reduce line broadcasts).
  void installAt(const MulticastTree& tree, int id);

  /// Every pattern installed through this allocator, in install order.
  const std::vector<InstalledPattern>& installed() const { return installed_; }

 private:
  net::Machine& machine_;
  int firstId_;
  int lastId_;
  std::vector<std::set<int>> usedIdsPerNode_;  ///< node -> ids taken
  std::vector<InstalledPattern> installed_;
};

}  // namespace anton::core
