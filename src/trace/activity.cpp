#include "trace/activity.hpp"

#include <algorithm>
#include <sstream>

namespace anton::trace {

int ActivityTrace::unit(const std::string& name) {
  auto [it, inserted] = unitIds_.try_emplace(name, int(unitNames_.size()));
  if (inserted) unitNames_.push_back(name);
  return it->second;
}

int ActivityTrace::kind(const std::string& name) {
  auto [it, inserted] = kindIds_.try_emplace(name, int(kindNames_.size()));
  if (inserted) kindNames_.push_back(name);
  return it->second;
}

void ActivityTrace::record(int unit, int kind, sim::Time start, sim::Time end) {
  if (!enabled_ || end <= start) return;
  intervals_.push_back({unit, kind, start, end});
  if (keyFn_) keys_.push_back(keyFn_());
}

void ActivityTrace::stageFrom(const ActivityTrace& main,
                              std::function<EmitKey()> keyFn) {
  enabled_ = main.enabled_;
  unitNames_ = main.unitNames_;
  kindNames_ = main.kindNames_;
  unitIds_ = main.unitIds_;
  kindIds_ = main.kindIds_;
  intervals_.clear();
  keys_.clear();
  keyFn_ = std::move(keyFn);
}

sim::Time ActivityTrace::busyTime(int unit, int kind, sim::Time from,
                                  sim::Time to) const {
  sim::Time total = 0;
  for (const Interval& iv : intervals_) {
    if (iv.unit != unit || iv.kind != kind) continue;
    total += std::max<sim::Time>(0, std::min(iv.end, to) - std::max(iv.start, from));
  }
  return total;
}

sim::Time ActivityTrace::busyTime(int unit, sim::Time from, sim::Time to) const {
  sim::Time total = 0;
  for (const Interval& iv : intervals_) {
    if (iv.unit != unit) continue;
    total += std::max<sim::Time>(0, std::min(iv.end, to) - std::max(iv.start, from));
  }
  return total;
}

std::string ActivityTrace::csv() const {
  std::ostringstream os;
  os << "unit,kind,start_ns,end_ns\n";
  for (const Interval& iv : intervals_) {
    os << unitNames_[std::size_t(iv.unit)] << ','
       << kindNames_[std::size_t(iv.kind)] << ',' << sim::toNs(iv.start) << ','
       << sim::toNs(iv.end) << '\n';
  }
  return os.str();
}

std::string ActivityTrace::timeline(sim::Time from, sim::Time to,
                                    int columns) const {
  if (to <= from || columns <= 0) return {};
  const double bucket = double(to - from) / columns;

  // busy[unit][column][kind] -> time
  std::vector<std::vector<std::map<int, double>>> busy(
      unitNames_.size(),
      std::vector<std::map<int, double>>(std::size_t(columns)));
  for (const Interval& iv : intervals_) {
    sim::Time s = std::max(iv.start, from);
    sim::Time e = std::min(iv.end, to);
    if (e <= s) continue;
    int c0 = int(double(s - from) / bucket);
    int c1 = std::min(columns - 1, int(double(e - from) / bucket));
    for (int c = c0; c <= c1; ++c) {
      double bs = double(from) + c * bucket;
      double be = bs + bucket;
      double overlap = std::min(double(e), be) - std::max(double(s), bs);
      if (overlap > 0) busy[std::size_t(iv.unit)][std::size_t(c)][iv.kind] += overlap;
    }
  }

  std::size_t nameWidth = 0;
  for (const auto& n : unitNames_) nameWidth = std::max(nameWidth, n.size());

  std::ostringstream os;
  for (std::size_t u = 0; u < unitNames_.size(); ++u) {
    os << unitNames_[u] << std::string(nameWidth - unitNames_[u].size() + 1, ' ')
       << '|';
    for (int c = 0; c < columns; ++c) {
      const auto& kinds = busy[u][std::size_t(c)];
      if (kinds.empty()) {
        os << '.';
        continue;
      }
      int best = kinds.begin()->first;
      double bestT = kinds.begin()->second;
      for (const auto& [k, t] : kinds) {
        if (t > bestT) {
          best = k;
          bestT = t;
        }
      }
      char ch = kindNames_[std::size_t(best)].empty()
                    ? '?'
                    : kindNames_[std::size_t(best)][0];
      os << ch;
    }
    os << "|\n";
  }
  os << "legend:";
  for (const auto& k : kindNames_) {
    if (!k.empty()) os << ' ' << k[0] << '=' << k;
  }
  os << "  .=idle\n";
  return os.str();
}

}  // namespace anton::trace
