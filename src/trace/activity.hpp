// Activity tracing: the model's stand-in for Anton's logic analyzer.
//
// SC10 Fig. 13 was produced by an on-chip diagnostic network recording what
// every unit (torus links, Tensilica cores, geometry cores, HTIS) was doing
// over a time step. ActivityTrace collects (unit, kind, interval) records
// from instrumented software and renders them as CSV or as an ASCII
// timeline with one row per unit group and one column per time bucket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace anton::trace {

class ActivityTrace {
 public:
  struct Interval {
    int unit;
    int kind;
    sim::Time start;
    sim::Time end;
  };

  /// Emission key of one recorded interval under the sharded kernel: the
  /// (time, raw seq) of the event that recorded it. After the window barrier
  /// canonicalizes seqs, sorting staged intervals by this key reproduces the
  /// exact order a serial run would have appended them in.
  using EmitKey = std::pair<sim::Time, std::uint64_t>;

  /// Register (or look up) a unit row, e.g. "TS", "GC", "HTIS", "link.X+".
  int unit(const std::string& name);
  /// Register (or look up) an activity kind, e.g. "fft", "wait", "bonded".
  int kind(const std::string& name);

  /// Record one closed interval. Zero-length intervals are dropped.
  void record(int unit, int kind, sim::Time start, sim::Time end);
  void record(const std::string& unit, const std::string& kind,
              sim::Time start, sim::Time end) {
    record(this->unit(unit), this->kind(kind), start, end);
  }

  bool enabled() const { return enabled_; }
  void setEnabled(bool e) { enabled_ = e; }

  const std::vector<Interval>& intervals() const { return intervals_; }
  const std::vector<std::string>& unitNames() const { return unitNames_; }
  const std::vector<std::string>& kindNames() const { return kindNames_; }
  void clear() {
    intervals_.clear();
    keys_.clear();
  }

  /// Turn this trace into a per-shard stage of `main`: copy main's name
  /// tables (so unit/kind ids a caller cached against main stay valid here),
  /// drop any recorded intervals, and tag every subsequent record() with the
  /// emission key `keyFn` reports. The window barrier sorts staged intervals
  /// by canonicalized key and appends them to main in serial order.
  void stageFrom(const ActivityTrace& main, std::function<EmitKey()> keyFn);

  /// Keys parallel to intervals(); populated only while staging.
  const std::vector<EmitKey>& keys() const { return keys_; }
  std::vector<EmitKey>& mutableKeys() { return keys_; }

  /// Total recorded time of `kind` on `unit` within [from, to).
  sim::Time busyTime(int unit, int kind, sim::Time from, sim::Time to) const;
  /// Total recorded time of any kind on `unit` within [from, to).
  sim::Time busyTime(int unit, sim::Time from, sim::Time to) const;

  /// CSV dump: unit,kind,start_ns,end_ns.
  std::string csv() const;

  /// ASCII timeline between [from, to): one row per unit, `columns` buckets;
  /// each cell shows the first letter of the dominant activity kind in the
  /// bucket ('.' when idle). The legend maps letters to kind names.
  std::string timeline(sim::Time from, sim::Time to, int columns = 96) const;

 private:
  bool enabled_ = true;
  std::vector<std::string> unitNames_;
  std::vector<std::string> kindNames_;
  std::map<std::string, int> unitIds_;
  std::map<std::string, int> kindIds_;
  std::vector<Interval> intervals_;
  std::vector<EmitKey> keys_;                ///< staging only
  std::function<EmitKey()> keyFn_;           ///< staging only
};

/// RAII helper: records [construction, destruction) as one interval.
class ScopedActivity {
 public:
  ScopedActivity(ActivityTrace& trace, sim::Time now, int unit, int kind)
      : trace_(trace), unit_(unit), kind_(kind), start_(now) {}
  void finish(sim::Time now) {
    if (!done_) trace_.record(unit_, kind_, start_, now);
    done_ = true;
  }

 private:
  ActivityTrace& trace_;
  int unit_;
  int kind_;
  sim::Time start_;
  bool done_ = false;
};

}  // namespace anton::trace
