// The Anton machine model: a 3D torus of nodes with dimension-ordered
// shortest-path routing, lossless links with per-direction bandwidth
// occupancy (wormhole switching), hardware multicast, and counted-write
// delivery semantics. Latencies follow the calibrated LatencyConfig; see
// DESIGN.md §4 for the calibration against SC10 Figs. 5/6.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_hooks.hpp"
#include "net/latency.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/torus_coord.hpp"

#include "trace/activity.hpp"

namespace anton::net {

/// Structural configuration of a machine instance.
struct MachineConfig {
  LatencyConfig latency;
  std::size_t clientMemBytes = 256 << 10;  ///< local memory per client
  int countersPerClient = 256;           ///< sync counters per client
  bool adaptiveRouting = true;  ///< permute dimension order for packets
                                ///< without the in-order flag
  bool faultReroute = false;  ///< degraded mode: route around links that the
                              ///< installed fault model reports as down, via
                              ///< a non-preferred dimension order
};

/// Aggregate traffic statistics. The reliability counters stay exactly zero
/// on a fault-free run (including under an installed zero-fault plan).
struct MachineStats {
  std::uint64_t packetsInjected = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t linkTraversals = 0;
  std::uint64_t wireBytes = 0;       ///< bytes crossing inter-node links
  std::uint64_t multicastForks = 0;  ///< replicas created by multicast fan-out
  std::uint64_t crcRetransmits = 0;  ///< corrupt link transmissions replayed
  std::uint64_t linkFailures = 0;    ///< traversals that exhausted the
                                     ///< retransmit cap; the packet replica
                                     ///< was dropped (erased) on that link
  std::uint64_t outageStalls = 0;    ///< traversals held by a link outage
  std::uint64_t routerStalls = 0;    ///< node visits delayed by a stalled ring
  std::uint64_t faultReroutes = 0;   ///< packets sent via a non-preferred dim
  sim::Time retransmitDelay = 0;     ///< latency inflation from CRC replays
  sim::Time stallDelay = 0;          ///< total outage + router-stall wait
  friend bool operator==(const MachineStats&, const MachineStats&) = default;
};

/// The machine participates in the sharded kernel's window protocol: per
/// shard it stages statistics, trace intervals and batched-drain sequence
/// reservations, and folds them into the canonical (serial-identical) state
/// at every window barrier.
class Machine : public sim::ShardParticipant {
 public:
  Machine(sim::Simulator& sim, util::TorusShape shape, MachineConfig cfg = {});
  ~Machine() override;

  sim::Simulator& sim() { return sim_; }
  const util::TorusShape& shape() const { return shape_; }
  const LatencyConfig& latency() const { return cfg_.latency; }
  const MachineConfig& config() const { return cfg_; }
  int numNodes() const { return shape_.size(); }

  Node& node(int idx) { return *nodes_.at(std::size_t(idx)); }
  Node& node(const util::TorusCoord& c) { return node(util::torusIndex(c, shape_)); }
  NetworkClient& client(ClientAddr a) { return node(a.node).client(a.client); }
  ProcessingSlice& slice(int nodeIdx, int s) { return node(nodeIdx).slice(s); }
  Htis& htis(int nodeIdx) { return node(nodeIdx).htis(); }
  AccumulationMemory& accum(int nodeIdx, int which) {
    return node(nodeIdx).accum(which);
  }

  /// Install a multicast fan-out entry at one node.
  void setMulticastPattern(int nodeIdx, int pattern, MulticastEntry e) {
    node(nodeIdx).setMulticast(pattern, e);
  }

  /// Inject a packet from p->src at the current simulated time. The pipeline
  /// (assembly, on-chip ring, adapters, links) is scheduled as events; the
  /// payload commits and the destination counter bumps at delivery time.
  void inject(const PacketPtr& p);

  const MachineStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

  /// Traversal count of the outgoing link of `nodeIdx` in (dim, sign).
  std::uint64_t linkTraversals(int nodeIdx, int dim, int sign) const {
    return links_[std::size_t(nodeIdx) * 6 +
                  std::size_t(RingLayout::adapterIndex(dim, sign))]
        .traversals;
  }

  /// Shortest-path hop count between two nodes (all dimensions).
  int hops(int fromNode, int toNode) const;

  /// Attach an activity trace: every link traversal records its busy window
  /// on a per-direction "link.X+/X-/.../Z-" unit (aggregated machine-wide,
  /// like the columns of SC10 Fig. 13). Pass nullptr to detach. Must not be
  /// called while sharded mode is enabled (per-shard stages are derived from
  /// the attached trace at enable time).
  void setTrace(trace::ActivityTrace* t);
  /// The trace recording sink for the calling context: inside a shard window
  /// this is the shard's staging trace (merged into the attached trace at
  /// the window barrier), otherwise the attached trace itself. Record
  /// through the returned pointer at the call site; do not cache it across
  /// events.
  trace::ActivityTrace* trace() const;

  /// Install a fault model (e.g. fault::FaultPlan), consulted on every link
  /// traversal, dimension choice, and node-ring entry. Pass nullptr to
  /// detach. A model that reports no faults leaves all timing bit-identical
  /// to the fault-free machine. Refused while sharded (the machine declines
  /// onShardedEnable with a fault model installed, and fault state cannot be
  /// installed under a running sharded kernel either).
  void setFaultModel(FaultModel* f);
  FaultModel* faultModel() const { return fault_; }

  // --- sim::ShardParticipant -----------------------------------------------
  void onShardedEnable(const sim::ShardLayout& layout) override;
  void onShardedBarrier(
      const std::function<std::uint64_t(std::uint64_t)>& canon) override;
  void onShardedDisable() override;

  /// Toggle degraded-mode routing at runtime (initially
  /// MachineConfig::faultReroute). Only affects packets routed afterwards.
  void setFaultReroute(bool on) { faultReroute_ = on; }
  bool faultReroute() const { return faultReroute_; }

  /// Whether the outgoing link of `nodeIdx` in (dim, sign) has dropped a
  /// packet at retransmit-cap exhaustion. The mark is sticky: recovery
  /// replays (Packet::degradedRoute) route around marked links instead of
  /// re-entering the one that ate the original copy. Stays all-false on a
  /// fault-free run.
  bool linkMarkedFailed(int nodeIdx, int dim, int sign) const {
    return failedLinks_[std::size_t(nodeIdx) * 6 +
                        std::size_t(RingLayout::adapterIndex(dim, sign))] != 0;
  }

  /// Clear every sticky failed-link mark (e.g. after a repaired outage).
  void clearFailedLinkMarks() {
    failedLinks_.assign(failedLinks_.size(), 0);
  }

  /// Observer of link-failed packet drops: called once per dropped replica
  /// with the packet and the set of destination clients the replica would
  /// still have reached (for multicast, the subtree beyond the failed link).
  /// The software recovery layer (core::DropRegistry) uses this as its
  /// replay buffer feed. Pass nullptr to detach.
  using DropHandler =
      std::function<void(const PacketPtr&, const std::vector<ClientAddr>&)>;
  void setDropHandler(DropHandler h) { dropHandler_ = std::move(h); }

  /// Destination clients a packet entering `nodeIdx` would reach (multicast:
  /// the pattern subtree rooted there; unicast: its single destination).
  std::vector<ClientAddr> downstreamReceivers(const PacketPtr& p, int nodeIdx);

 private:
  friend class NetworkClient;

  /// One packet parked on a link, waiting for its head to reach the far
  /// ring. `seq` was reserved at forwarding time, so the batched drain
  /// replays the exact (time, seq) schedule the per-arrival events had.
  struct Arrival {
    PacketPtr p;
    sim::Time atRing;
    std::uint64_t seq;
  };

  struct Link {
    sim::Time busyUntil = 0;
    std::uint64_t traversals = 0;
    // Batched drain state: arrivals are appended in (monotonic) time order
    // and consumed front-to-back; at most one drain event is in the kernel
    // per link, however many packets are in flight on it. The vector acts
    // as a grow-only ring (head index + clear-on-empty), so steady-state
    // traffic never reallocates it.
    std::vector<Arrival> pending;
    std::size_t pendingHead = 0;
    bool drainScheduled = false;
  };
  Link& link(int nodeIdx, int dim, int sign) {
    return links_[std::size_t(nodeIdx) * 6 +
                  std::size_t(RingLayout::adapterIndex(dim, sign))];
  }

  /// Schedule (or re-arm) the single drain event of link `li` for the
  /// front of its pending queue.
  void scheduleDrain(std::size_t li);
  /// Route every pending arrival of link `li` whose time is now; re-arm
  /// for the next one.
  void drainLink(std::size_t li);

  /// Route a packet onward from a node. `entryRouter` is where the packet
  /// sits on the on-chip ring; `viaDim/viaSign` describe the link it arrived
  /// on (-1 for freshly injected packets).
  void routeFrom(const PacketPtr& p, int nodeIdx, int entryRouter, int viaDim,
                 int viaSign, sim::Time t);

  /// Send a packet out of nodeIdx on (dim, sign). `entryRouter` is its ring
  /// position; `straightThrough` selects the calibrated transit cost instead
  /// of the generic ring path.
  void forwardOnLink(const PacketPtr& p, int nodeIdx, int entryRouter,
                     int viaDim, int dim, int sign, sim::Time t);

  /// Commit delivery to a local client after the final on-chip segment.
  void deliverLocal(const PacketPtr& p, int nodeIdx, int entryRouter,
                    int clientId, sim::Time t);

  /// Dimension traversal order for this packet (identity when in-order or
  /// adaptive routing is disabled; a salt-derived permutation otherwise).
  std::array<int, 3> dimOrder(const Packet& p) const;

  /// Statistics sink for the calling context: the shard's staging counters
  /// inside a window, the canonical aggregate otherwise.
  MachineStats& st() {
    int s = sim::Simulator::currentShard();
    if (s >= 0 && !shardStats_.empty()) return shardStats_[std::size_t(s)];
    return stats_;
  }

  sim::Simulator& sim_;
  util::TorusShape shape_;
  MachineConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Link> links_;
  /// Sticky per-link failed marks (node * 6 + adapter), set when a traversal
  /// exhausts the retransmit cap and drops its packet.
  std::vector<char> failedLinks_;
  MachineStats stats_;
  /// Per-source-node route-salt counters. Injections from one source node
  /// always execute on that node's shard, so a per-node counter is both
  /// race-free under the sharded kernel and independent of the global
  /// injection interleaving (a process-wide counter would make the salt —
  /// and adaptive dimension orders — depend on event execution order).
  std::vector<std::uint64_t> saltByNode_;
  trace::ActivityTrace* trace_ = nullptr;
  std::array<int, 6> traceLinkUnits_{};
  int traceKind_ = 0;
  int traceRetxKind_ = 0;
  int traceOutageKind_ = 0;
  int traceRstallKind_ = 0;
  int traceLinkFailKind_ = 0;
  int traceFaultUnit_ = 0;
  FaultModel* fault_ = nullptr;
  bool faultReroute_ = false;
  /// Snapshot of util::hotPath().batchDrains at construction: whether link
  /// arrivals funnel through per-link drain events (one in the kernel per
  /// link) or schedule one event per traversal (the legacy reference path).
  /// Under the sharded kernel only intra-shard arrivals batch; cross-shard
  /// forwards take the per-arrival path (same (time, seq) schedule) so a
  /// drain event on the far shard never mutates this shard's link state.
  bool batchDrains_ = true;
  DropHandler dropHandler_;

  // --- sharded staging (empty in serial mode) ---
  /// Per-shard staged statistics, folded into stats_ at every barrier.
  std::vector<MachineStats> shardStats_;
  /// Per-shard staged traces (only when a trace is attached), merged into
  /// trace_ in canonical (time, seq) order at every barrier. Mutable: the
  /// const trace() accessor hands out the calling shard's stage.
  mutable std::vector<trace::ActivityTrace> stageTraces_;
};

}  // namespace anton::net
