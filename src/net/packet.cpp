#include "net/packet.hpp"

#include <cstring>
#include <stdexcept>

namespace anton::net {

std::shared_ptr<const std::vector<std::byte>> makePayload(const void* data,
                                                          std::size_t size) {
  if (size > kMaxPayloadBytes)
    throw std::length_error("packet payload exceeds 256 bytes");
  auto buf = std::make_shared<std::vector<std::byte>>(size);
  if (size != 0) std::memcpy(buf->data(), data, size);
  return buf;
}

std::shared_ptr<const std::vector<std::byte>> makeZeroPayload(std::size_t size) {
  if (size > kMaxPayloadBytes)
    throw std::length_error("packet payload exceeds 256 bytes");
  return std::make_shared<std::vector<std::byte>>(size);
}

}  // namespace anton::net
