#include "net/packet.hpp"

#include <cstring>
#include <stdexcept>

namespace anton::net {

PacketPtr allocatePacket() {
  return std::allocate_shared<Packet>(
      util::PoolAllocator<Packet>(packetPool()));
}

PayloadPtr makePayload(const void* data, std::size_t size) {
  if (size > kMaxPayloadBytes)
    throw std::length_error("packet payload exceeds 256 bytes");
  auto buf = std::allocate_shared<PayloadBuf>(
      util::PoolAllocator<PayloadBuf>(payloadPool()), size);
  if (size != 0) std::memcpy(buf->data(), data, size);
  return buf;
}

PayloadPtr makeZeroPayload(std::size_t size) {
  if (size > kMaxPayloadBytes)
    throw std::length_error("packet payload exceeds 256 bytes");
  return std::allocate_shared<PayloadBuf>(
      util::PoolAllocator<PayloadBuf>(payloadPool()), size);
}

}  // namespace anton::net
