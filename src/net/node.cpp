#include "net/node.hpp"

#include <algorithm>

#include "net/machine.hpp"

namespace anton::net {

Node::Node(Machine& machine, int index, util::TorusCoord coord,
           std::size_t clientMemBytes, int countersPerClient)
    : machine_(machine), index_(index), coord_(coord) {
  for (int c = 0; c < kClientsPerNode; ++c) {
    ClientAddr a{index, c};
    std::unique_ptr<NetworkClient> client;
    if (c < kNumSlices) {
      client = std::make_unique<ProcessingSlice>(machine, a, clientMemBytes,
                                                 countersPerClient);
    } else if (c == kHtis) {
      client = std::make_unique<Htis>(machine, a, clientMemBytes,
                                      countersPerClient);
    } else {
      client = std::make_unique<AccumulationMemory>(machine, a, clientMemBytes,
                                                    countersPerClient);
    }
    clients_[std::size_t(c)] = std::move(client);
  }
}

ProcessingSlice& Node::slice(int s) {
  return static_cast<ProcessingSlice&>(client(s));
}

Htis& Node::htis() { return static_cast<Htis&>(client(kHtis)); }

AccumulationMemory& Node::accum(int which) {
  return static_cast<AccumulationMemory&>(client(kAccum0 + which));
}

sim::Time Node::reserveRing(sim::Time t, std::size_t bytes) {
  sim::Time start = std::max(t, ringBusyUntil_);
  ringBusyUntil_ = start + machine_.latency().ringOccupancy(bytes);
  return start;
}

}  // namespace anton::net
