// Latency model of one Anton node and its torus links.
//
// Calibration targets are the published measurements of SC10 Figs. 5 and 6:
//   * neighbor-X end-to-end 0-byte write latency  = 162 ns
//     (36 assembly + 19 two-router ring path + 20 adapter + 20 adapter +
//      25 three-router ring path + 42 counter update/successful poll)
//   * per-hop through-node transit: 76 ns in X, 54 ns in Y and Z
//   * on-chip ring path of k routers costs 7 + 6*k ns (k=2 -> 19, k=3 -> 25)
//   * link: 50.6 Gbit/s raw, 36.8 Gbit/s effective per direction
//   * on-chip ring: 124.2 Gbit/s
//
// The six on-chip routers form a ring (SC10 Fig. 1). We fix a concrete
// client/adapter placement (documented in DESIGN.md §4) that reproduces the
// measured ring-path hop counts; through-node transit costs are kept as
// per-dimension calibrated aggregates because the paper's own component
// measurements do not decompose exactly.
#pragma once

#include <algorithm>
#include <array>
#include <cstdlib>

#include "sim/time.hpp"

namespace anton::net {

inline constexpr int kNumRouters = 6;

/// Placement of clients and link adapters on the six-router on-chip ring,
/// plus the ring-path cost law. The ring is traversed bidirectionally along
/// the shorter arc, matching the symmetric +/-X latencies of Fig. 5.
struct RingLayout {
  // Router slot of each client (indexed by client id, see packet.hpp).
  std::array<int, 7> clientRouter = {0, 0, 0, 0, /*HTIS*/ 2, /*accums*/ 5, 5};
  // Router slot of each link adapter, indexed by dim*2 + (sign>0 ? 0 : 1):
  // X+ at R1, X- at R4 (so slice->X+ traverses 2 routers and X- ->slice
  // traverses 3, per Fig. 6); Y+- share R2; Z+- share R3.
  std::array<int, 6> adapterRouter = {1, 4, 2, 2, 3, 3};

  static int adapterIndex(int dim, int sign) { return dim * 2 + (sign > 0 ? 0 : 1); }

  /// Number of routers traversed from `from` to `to` along the shorter arc,
  /// inclusive of both endpoints (same router => 1).
  int routersTraversed(int from, int to) const {
    int fwd = (to - from + kNumRouters) % kNumRouters;
    int d = std::min(fwd, kNumRouters - fwd);
    return d + 1;
  }
};

/// All calibrated delay/bandwidth constants. Times in nanoseconds (doubles)
/// at the API surface; converted to integer picoseconds inside the machine.
struct LatencyConfig {
  double assemblyNs = 36.0;        ///< packet assembly + injection at a slice/HTIS
  /// Core occupancy per back-to-back send: packet creation is pipelined, so
  /// a core issuing a burst is busy far less than the 36 ns assembly
  /// *latency* per packet (this is what makes fine-grained messaging cheap,
  /// SC10 Fig. 7). The effective injection rate is
  /// max(injectOccupancyNs, wire serialization).
  double injectOccupancyNs = 11.0;
  double adapterNs = 20.0;         ///< each link-adapter traversal (wire folded in)
  double pollSuccessNs = 42.0;     ///< counter update + successful local poll
  double accumPollNs = 150.0;      ///< polling an accumulation-memory counter
                                   ///< from a slice across the on-chip ring
  double routerHopBaseNs = 7.0;    ///< ring path cost = base + each * routers
  double routerHopEachNs = 6.0;
  /// Per-dimension wire delay of a torus link traversal (X links are short
  /// board traces; Y/Z cross backplanes; SC10 Fig. 6 caption).
  std::array<double, 3> wireNs = {0.0, 0.0, 0.0};
  /// On-chip path cost for straight-through transit traffic per dimension
  /// (calibrated aggregates: 20+36+20 = 76 ns/hop X, 20+14+20 = 54 ns/hop Y/Z).
  std::array<double, 3> transitNs = {36.0, 14.0, 14.0};

  /// Link-level retransmission turnaround per CRC-detected corrupt copy:
  /// receiver-side CRC check (~10 ns), NACK crossing the link adapters back
  /// (2 x 20 ns), and replay setup. Charged on top of re-serializing the
  /// packet; see DESIGN.md §7 for the calibration rationale.
  double crcRetransmitNs = 50.0;

  double linkBytesPerNs = 4.6;     ///< 36.8 Gbit/s effective, per direction
  double ringBytesPerNs = 15.525;  ///< 124.2 Gbit/s on-chip ring
  /// Spatial reuse of the six-segment ring: distinct source/destination
  /// pairs occupy disjoint arcs, so aggregate throughput is a multiple of
  /// the per-segment rate. Applied to occupancy only (not latency).
  double ringConcurrency = 3.0;

  RingLayout ring;

  /// Ring-path cost between two router slots in simulated time.
  sim::Time ringPath(int fromRouter, int toRouter) const {
    int k = ring.routersTraversed(fromRouter, toRouter);
    return sim::ns(routerHopBaseNs + routerHopEachNs * k);
  }

  sim::Time assembly() const { return sim::ns(assemblyNs); }
  sim::Time adapter() const { return sim::ns(adapterNs); }
  sim::Time pollSuccess() const { return sim::ns(pollSuccessNs); }
  sim::Time retransmitPenalty() const { return sim::ns(crcRetransmitNs); }
  sim::Time accumPoll() const { return sim::ns(accumPollNs); }
  sim::Time wire(int dim) const { return sim::ns(wireNs[static_cast<std::size_t>(dim)]); }
  sim::Time transit(int dim) const {
    return sim::ns(transitNs[static_cast<std::size_t>(dim)]);
  }
  sim::Time linkSerialization(std::size_t bytes) const {
    return sim::ns(double(bytes) / linkBytesPerNs);
  }
  sim::Time ringSerialization(std::size_t bytes) const {
    return sim::ns(double(bytes) / ringBytesPerNs);
  }
  /// Ring busy window charged per packet at a node (occupancy, with
  /// spatial-reuse concurrency folded in).
  sim::Time ringOccupancy(std::size_t bytes) const {
    return sim::ns(double(bytes) / (ringBytesPerNs * ringConcurrency));
  }

  // --- static minima (the conservative-PDES lookahead surface) --------------
  //
  // A parallel event kernel sharded over the torus needs a provable *lower
  // bound* on how long any packet takes to cross from one node to a
  // neighbor: that bound is the shard's lookahead (DESIGN.md §11). These
  // accessors derive it from the same constants the machine charges on the
  // live path (Machine::forwardOnLink): on-chip path to the exit adapter,
  // adapter out, wire, adapter in. Queueing, faults, stalls and
  // serialization only ever add time, so the head of any packet entering the
  // far node's ring arrives no earlier than send time + minLinkCrossingNs.

  /// Lower bound of any on-chip ring path (k >= 1 routers traversed).
  double minRingPathNs() const { return routerHopBaseNs + routerHopEachNs; }

  /// Static minimum latency for a packet head to cross one torus link in
  /// `dim`: cheapest on-chip path to the exit adapter (straight-through
  /// transit or a minimal ring hop), both link adapters, and the wire.
  double minLinkCrossingNs(int dim) const {
    double onChip =
        std::min(transitNs[static_cast<std::size_t>(dim)], minRingPathNs());
    return onChip + 2.0 * adapterNs + wireNs[static_cast<std::size_t>(dim)];
  }

  /// Ring-path cost between two router slots in plain nanoseconds (the
  /// sim::Time twin is ringPath); the exact on-chip turn cost the static
  /// timing analyzer charges when a route's entry and exit adapters are
  /// known (verify::analyzeTiming).
  double ringPathNs(int fromRouter, int toRouter) const {
    return routerHopBaseNs +
           routerHopEachNs * ring.routersTraversed(fromRouter, toRouter);
  }

  sim::Time minLinkCrossing(int dim) const {
    return sim::ns(minLinkCrossingNs(dim));
  }

  // --- capacity accessors (the static timing-analysis surface) --------------
  //
  // verify::analyzeTiming prices plan traffic with the same constants the
  // live machine charges (Machine::forwardOnLink, Node::reserveRing), exposed
  // here in plain nanoseconds so the analyzer never re-derives a rate.

  /// Serialization time of one wire packet on a torus link, ns (the busy
  /// window Machine::forwardOnLink charges against the link).
  double linkSerializationNs(std::size_t bytes) const {
    return double(bytes) / linkBytesPerNs;
  }

  /// Ring busy window charged per packet at a node, ns (spatial-reuse
  /// concurrency folded in, matching Node::reserveRing) — the only spacing
  /// the hardware guarantees between back-to-back injections of one burst.
  double ringOccupancyNs(std::size_t bytes) const {
    return double(bytes) / (ringBytesPerNs * ringConcurrency);
  }

  /// Static minimum spacing between consecutive packets of one counted
  /// write as observed at the destination counter: every packet reserves the
  /// source ring, and packets crossing at least one torus link additionally
  /// serialize on their (shared) route links.
  double minPacketSpacingNs(std::size_t wireBytes, bool crossesLink) const {
    double spacing = ringOccupancyNs(wireBytes);
    return crossesLink ? std::max(spacing, linkSerializationNs(wireBytes))
                       : spacing;
  }

  /// Static minimum cost of the local delivery tail after the last link
  /// crossing (or after assembly, for same-node writes): cheapest on-chip
  /// ring path to the destination client plus the counter update and one
  /// successful poll.
  double minDeliveryNs() const { return minRingPathNs() + pollSuccessNs; }

  /// Bytes one link direction can serialize in a window, the capacity side
  /// of the timing.contention check.
  double linkCapacityBytes(double windowNs) const {
    return windowNs * linkBytesPerNs;
  }
};

}  // namespace anton::net
