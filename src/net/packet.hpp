// Network packet format of the Anton communication fabric.
//
// Packets carry 32 bytes of header plus 0-256 bytes of payload; writes of up
// to 8 bytes travel in the header itself (SC10 §III-A). Write and
// accumulation packets name a synchronization counter at the destination
// client which is incremented once the payload has been committed to the
// client's local memory — the basis of counted remote writes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/time.hpp"
#include "util/slab_pool.hpp"

namespace anton::net {

/// Fixed per-packet header size on the wire (SC10 §III-A).
inline constexpr std::size_t kHeaderBytes = 32;
/// Maximum payload per packet.
inline constexpr std::size_t kMaxPayloadBytes = 256;
/// Payloads up to this size ride in the header (no extra wire bytes).
inline constexpr std::size_t kImmediateBytes = 8;

/// Client slots within a node: four processing slices, the HTIS, and two
/// accumulation memories (SC10 Fig. 3: "seven local memories").
inline constexpr int kSlice0 = 0;
inline constexpr int kSlice1 = 1;
inline constexpr int kSlice2 = 2;
inline constexpr int kSlice3 = 3;
inline constexpr int kHtis = 4;
inline constexpr int kAccum0 = 5;
inline constexpr int kAccum1 = 6;
inline constexpr int kClientsPerNode = 7;
inline constexpr int kNumSlices = 4;

/// Sentinel: packet does not increment any synchronization counter.
inline constexpr int kNoCounter = -1;
/// Sentinel: unicast packet (no multicast pattern).
inline constexpr int kNoMulticast = -1;

/// Address of a network client: (node linear index, client slot).
struct ClientAddr {
  int node = 0;
  int client = 0;
  friend constexpr bool operator==(const ClientAddr&, const ClientAddr&) = default;
};

enum class PacketType : std::uint8_t {
  kWrite,  ///< remote write into the target client's local memory
  kAccum,  ///< accumulation: 4-byte-wise add into an accumulation memory
  kFifo,   ///< delivered to the target slice's hardware message FIFO
};

/// Payload buffer: a fixed 256-byte slot (the wire maximum) plus its live
/// length. Fixed-format like the hardware's packet buffers, so payloads
/// recycle through the slab pool without per-size heap traffic; multicast
/// replicas and recovery replays share one slot by refcount.
class PayloadBuf {
 public:
  explicit PayloadBuf(std::size_t size) : size_(size) {}
  const std::byte* data() const { return data_.data(); }
  std::byte* data() { return data_.data(); }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_;
  std::array<std::byte, kMaxPayloadBytes> data_{};  // zeroed on (re)construction
};

using PayloadPtr = std::shared_ptr<const PayloadBuf>;

/// Slab pools behind packet and payload slots on this thread. post()/
/// makePayload() draw refcounted slots from these; the slot returns to its
/// freelist when the last holder (machine event, FIFO, DropRegistry replay
/// buffer) lets go.
inline util::SlabPool& packetPool() {
  if (util::SlabPool* o = util::poolOverrides().packet) return *o;
  thread_local util::SlabPool pool("packet");
  return pool;
}
inline util::SlabPool& payloadPool() {
  if (util::SlabPool* o = util::poolOverrides().payload) return *o;
  thread_local util::SlabPool pool("payload");
  return pool;
}

/// A packet in flight. Multicast replicas share the payload buffer.
struct Packet {
  PacketType type = PacketType::kWrite;
  ClientAddr src;
  ClientAddr dst;              ///< ignored for multicast packets
  int multicastPattern = kNoMulticast;
  int counterId = kNoCounter;  ///< destination sync counter to increment
  std::uint32_t address = 0;   ///< destination local-memory byte offset
  bool inOrder = false;        ///< force deterministic (ordered) routing
  /// Recovery replays set this: routing avoids links marked failed (and
  /// outage-down links) instead of re-entering the link that ate the
  /// original copy. Never set on first-transmission traffic, so the
  /// zero-fault path is untouched.
  bool degradedRoute = false;
  PayloadPtr payload;  ///< may be null (0 B)

  // --- bookkeeping filled in by the machine ---
  sim::Time injectedAt = 0;    ///< simulated injection time
  sim::Time tailLag = 0;       ///< serialization lag of the packet tail
  std::uint64_t routeSalt = 0; ///< per-packet salt for adaptive dim ordering

  std::size_t payloadBytes() const { return payload ? payload->size() : 0; }

  /// Bytes the packet occupies on a torus link: header plus any payload that
  /// does not fit into the header's immediate field.
  std::size_t wireBytes() const {
    std::size_t p = payloadBytes();
    return kHeaderBytes + (p <= kImmediateBytes ? 0 : p);
  }
};

using PacketPtr = std::shared_ptr<Packet>;

/// A fresh default-constructed packet slot from this thread's packet pool
/// (refcount and object in one recycled slot; bookkeeping fields are
/// re-initialized on every reuse).
PacketPtr allocatePacket();

/// Convenience: build a payload buffer from raw bytes (pooled slot).
PayloadPtr makePayload(const void* data, std::size_t size);

/// Convenience: payload of `size` zero bytes (timing-only experiments).
PayloadPtr makeZeroPayload(std::size_t size);

}  // namespace anton::net
