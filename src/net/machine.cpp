#include "net/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/causal_log.hpp"
#include "trace/activity.hpp"
#include "util/hotpath.hpp"

namespace anton::net {

namespace {

// The six permutations of {x, y, z} used for adaptive dimension ordering.
constexpr std::array<std::array<int, 3>, 6> kDimPerms = {{
    {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}};

}  // namespace

Machine::Machine(sim::Simulator& sim, util::TorusShape shape, MachineConfig cfg)
    : sim_(sim), shape_(shape), cfg_(cfg), faultReroute_(cfg.faultReroute) {
  if (shape.nx < 1 || shape.ny < 1 || shape.nz < 1)
    throw std::invalid_argument("torus extents must be positive");
  nodes_.reserve(std::size_t(shape.size()));
  for (int i = 0; i < shape.size(); ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i, util::torusCoordOf(i, shape),
                                            cfg.clientMemBytes,
                                            cfg.countersPerClient));
  }
  links_.resize(std::size_t(shape.size()) * 6);
  failedLinks_.assign(std::size_t(shape.size()) * 6, 0);
  saltByNode_.assign(std::size_t(shape.size()), 0);
  batchDrains_ = util::hotPath().batchDrains;
  sim_.addShardParticipant(this);
}

Machine::~Machine() { sim_.removeShardParticipant(this); }

void Machine::setTrace(trace::ActivityTrace* t) {
  if (!shardStats_.empty())
    throw std::logic_error(
        "Machine::setTrace: cannot swap the trace while sharded mode is on");
  trace_ = t;
  if (t == nullptr) return;
  static constexpr const char* kNames[6] = {"link.X+", "link.X-", "link.Y+",
                                            "link.Y-", "link.Z+", "link.Z-"};
  for (int a = 0; a < 6; ++a)
    traceLinkUnits_[std::size_t(a)] = t->unit(kNames[a]);
  traceKind_ = t->kind("xfer");
  traceRetxKind_ = t->kind("retx");
  traceOutageKind_ = t->kind("outage");
  traceRstallKind_ = t->kind("rstall");
  traceLinkFailKind_ = t->kind("linkfail");
  traceFaultUnit_ = t->unit("fault");
}

trace::ActivityTrace* Machine::trace() const {
  int s = sim::Simulator::currentShard();
  if (s >= 0 && !stageTraces_.empty()) return &stageTraces_[std::size_t(s)];
  return trace_;
}

void Machine::setFaultModel(FaultModel* f) {
  if (f != nullptr && !shardStats_.empty())
    throw std::logic_error(
        "Machine::setFaultModel: fault state cannot be installed under a "
        "running sharded kernel (disable sharding first)");
  fault_ = f;
}

void Machine::onShardedEnable(const sim::ShardLayout& layout) {
  if (fault_ != nullptr)
    throw std::logic_error(
        "Machine: refusing sharded mode with a fault model installed — "
        "fault bookkeeping (shared stall windows, sticky link marks, drop "
        "replay) is not shard-safe");
  if (int(layout.shardOfNode.size()) < numNodes())
    throw std::invalid_argument(
        "Machine: sharding '" + layout.name + "' maps " +
        std::to_string(layout.shardOfNode.size()) + " nodes but the machine has " +
        std::to_string(numNodes()));
  shardStats_.assign(std::size_t(layout.numShards), MachineStats{});
  stageTraces_.clear();
  if (trace_ != nullptr) {
    stageTraces_.resize(std::size_t(layout.numShards));
    for (trace::ActivityTrace& stage : stageTraces_)
      stage.stageFrom(*trace_, [this] { return sim_.currentExecKey(); });
  }
}

void Machine::onShardedBarrier(
    const std::function<std::uint64_t(std::uint64_t)>& canon) {
  // Batched-drain reservations parked on link queues may carry provisional
  // seqs from the window that just closed; exchange them for their canonical
  // values so a later window's re-arm replays the serial (time, seq) slot.
  for (Link& l : links_) {
    for (std::size_t i = l.pendingHead; i < l.pending.size(); ++i)
      if (l.pending[i].seq & sim::Simulator::kProvBit)
        l.pending[i].seq = canon(l.pending[i].seq);
  }

  // Every MachineStats field is an additive tally, so a fieldwise fold of
  // the per-shard stages reproduces the serial aggregate exactly.
  for (MachineStats& s : shardStats_) {
    stats_.packetsInjected += s.packetsInjected;
    stats_.packetsDelivered += s.packetsDelivered;
    stats_.linkTraversals += s.linkTraversals;
    stats_.wireBytes += s.wireBytes;
    stats_.multicastForks += s.multicastForks;
    stats_.crcRetransmits += s.crcRetransmits;
    stats_.linkFailures += s.linkFailures;
    stats_.outageStalls += s.outageStalls;
    stats_.routerStalls += s.routerStalls;
    stats_.faultReroutes += s.faultReroutes;
    stats_.retransmitDelay += s.retransmitDelay;
    stats_.stallDelay += s.stallDelay;
    s = MachineStats{};
  }

  if (trace_ != nullptr && !stageTraces_.empty()) {
    // Gather this window's staged intervals, canonicalize their emission
    // keys, and append them to the main trace in (time, seq, record index)
    // order — the exact order a serial run would have recorded them
    // (serial execution visits events in (t, seq) order, and the record
    // index preserves call order within one event). Names translate by
    // string: a stage may have registered units the main trace has not seen.
    struct Staged {
      sim::Time t;
      std::uint64_t seq;
      std::uint32_t idx;
      const trace::ActivityTrace* stage;
      trace::ActivityTrace::Interval iv;
    };
    std::vector<Staged> merged;
    for (trace::ActivityTrace& stage : stageTraces_) {
      const auto& ivs = stage.intervals();
      const auto& keys = stage.keys();
      for (std::size_t i = 0; i < ivs.size(); ++i) {
        std::uint64_t seq = keys[i].second;
        if (seq & sim::Simulator::kProvBit) seq = canon(seq);
        merged.push_back({keys[i].first, seq, std::uint32_t(i), &stage, ivs[i]});
      }
    }
    std::sort(merged.begin(), merged.end(), [](const Staged& a, const Staged& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.seq != b.seq) return a.seq < b.seq;
      return a.idx < b.idx;
    });
    for (const Staged& s : merged) {
      trace_->record(
          trace_->unit(s.stage->unitNames()[std::size_t(s.iv.unit)]),
          trace_->kind(s.stage->kindNames()[std::size_t(s.iv.kind)]),
          s.iv.start, s.iv.end);
    }
    for (trace::ActivityTrace& stage : stageTraces_) stage.clear();
  }
}

void Machine::onShardedDisable() {
  shardStats_.clear();
  stageTraces_.clear();
}

int Machine::hops(int fromNode, int toNode) const {
  return util::torusHops(util::torusCoordOf(fromNode, shape_),
                         util::torusCoordOf(toNode, shape_), shape_);
}

std::array<int, 3> Machine::dimOrder(const Packet& p) const {
  if (p.inOrder || !cfg_.adaptiveRouting) return kDimPerms[0];
  return kDimPerms[p.routeSalt % kDimPerms.size()];
}

void Machine::inject(const PacketPtr& p) {
  if (p->payloadBytes() > kMaxPayloadBytes)
    throw std::length_error("packet payload exceeds 256 bytes");
  if (p->multicastPattern != kNoMulticast &&
      (p->multicastPattern < 0 || p->multicastPattern >= kMulticastPatterns))
    throw std::out_of_range("bad multicast pattern id");
  p->injectedAt = sim_.now();
  p->routeSalt = saltByNode_[std::size_t(p->src.node)]++;
  // Replays hand back the same Packet object (e.g. a registry-held pointer
  // re-injected directly): clear the tail lag the first transit left behind,
  // or a 0-hop replay would charge a wire serialization it never pays.
  p->tailLag = 0;
  ++st().packetsInjected;

  Node& src = node(p->src.node);
  const LatencyConfig& lat = cfg_.latency;
  sim::Time t0 = sim_.now() + lat.assembly();
  sim::Time start = src.reserveRing(t0, p->wireBytes());
  int entryRouter = lat.ring.clientRouter[std::size_t(p->src.client)];
  routeFrom(p, p->src.node, entryRouter, /*viaDim=*/-1, /*viaSign=*/0, start);
}

void Machine::routeFrom(const PacketPtr& p, int nodeIdx, int entryRouter,
                        int viaDim, int viaSign, sim::Time t) {
  if (fault_ != nullptr) {
    // Stalled on-chip router: everything entering this node's ring waits.
    sim::Time free = fault_->routerStallUntil(nodeIdx, t);
    if (free > t) {
      ++st().routerStalls;
      st().stallDelay += free - t;
      if (trace::ActivityTrace* tr = trace())
        tr->record(traceFaultUnit_, traceRstallKind_, t, free);
      t = free;
    }
  }

  if (p->multicastPattern != kNoMulticast) {
    const MulticastEntry& e = node(nodeIdx).multicast(p->multicastPattern);
    if (e.empty())
      throw std::logic_error("multicast packet hit an empty pattern entry");
    int branches = 0;
    for (int c = 0; c < kClientsPerNode; ++c) {
      if (e.clientMask & (1u << c)) {
        deliverLocal(p, nodeIdx, entryRouter, c, t);
        ++branches;
      }
    }
    for (int a = 0; a < 6; ++a) {
      if (e.linkMask & (1u << a)) {
        int dim = a / 2;
        int sign = (a % 2 == 0) ? +1 : -1;
        forwardOnLink(p, nodeIdx, entryRouter, viaDim == dim && viaSign == sign
                                                   ? viaDim
                                                   : -1,
                      dim, sign, t);
        ++branches;
      }
    }
    if (branches > 1) st().multicastForks += std::uint64_t(branches - 1);
    return;
  }

  // Unicast: dimension-ordered shortest-path routing. In degraded mode the
  // first dimension whose outgoing link is healthy wins; if every remaining
  // dimension's link is down the packet takes the preferred one and stalls
  // at its adapter until the outage window closes. Recovery replays
  // (degradedRoute) additionally avoid links that already dropped a packet
  // at cap exhaustion (sticky failed marks) — re-entering the link that ate
  // the original copy would likely lose the replay too.
  util::TorusCoord here = util::torusCoordOf(nodeIdx, shape_);
  util::TorusCoord dest = util::torusCoordOf(p->dst.node, shape_);
  int prefDim = -1, prefSign = 0;
  int useDim = -1, useSign = 0;
  for (int dim : dimOrder(*p)) {
    int delta = util::signedTorusDelta(here[dim], dest[dim], shape_.extent(dim));
    if (delta == 0) continue;
    int sign = delta > 0 ? +1 : -1;
    if (prefDim < 0) {
      prefDim = dim;
      prefSign = sign;
    }
    if ((faultReroute_ || p->degradedRoute) && fault_ != nullptr &&
        fault_->linkDown(nodeIdx, dim, sign, t))
      continue;
    if (p->degradedRoute && linkMarkedFailed(nodeIdx, dim, sign)) continue;
    useDim = dim;
    useSign = sign;
    break;
  }
  if (prefDim < 0) {
    deliverLocal(p, nodeIdx, entryRouter, p->dst.client, t);
    return;
  }
  if (useDim < 0) {
    useDim = prefDim;
    useSign = prefSign;
  }
  if (useDim != prefDim || useSign != prefSign) ++st().faultReroutes;
  forwardOnLink(p, nodeIdx, entryRouter,
                (viaDim == useDim && viaSign == useSign) ? viaDim : -1, useDim,
                useSign, t);
}

void Machine::forwardOnLink(const PacketPtr& p, int nodeIdx, int entryRouter,
                            int straightViaDim, int dim, int sign, sim::Time t) {
  const LatencyConfig& lat = cfg_.latency;
  int adapterRouter =
      lat.ring.adapterRouter[std::size_t(RingLayout::adapterIndex(dim, sign))];

  // On-chip path to the exit adapter: through-traffic continuing in the same
  // dimension uses the calibrated transit cost; everything else crosses the
  // ring from its current position.
  sim::Time pathCost = straightViaDim == dim
                           ? lat.transit(dim)
                           : lat.ringPath(entryRouter, adapterRouter);
  sim::Time atAdapter = t + pathCost + lat.adapter();

  Link& l = link(nodeIdx, dim, sign);
  sim::Time depart = std::max(atAdapter, l.busyUntil);
  sim::Time ser = lat.linkSerialization(p->wireBytes());
  const int adapterIdx = RingLayout::adapterIndex(dim, sign);
  bool linkFailed = false;
  if (fault_ != nullptr) {
    LinkFaultOutcome out =
        fault_->onLinkTraversal(nodeIdx, dim, sign, p->wireBytes(), depart);
    if (out.stall > 0) {
      // Outage: the adapter holds the packet until the link comes back.
      ++st().outageStalls;
      st().stallDelay += out.stall;
      if (trace::ActivityTrace* tr = trace())
        tr->record(traceLinkUnits_[std::size_t(adapterIdx)],
                   traceOutageKind_, depart, depart + out.stall);
      depart += out.stall;
    }
    if (out.retransmits > 0) {
      // Link-level retransmission: each CRC-detected corrupt copy occupies
      // the link for its serialization plus the calibrated replay turnaround.
      sim::Time penalty =
          sim::Time(out.retransmits) * (ser + lat.retransmitPenalty());
      st().crcRetransmits += std::uint64_t(out.retransmits);
      st().retransmitDelay += penalty;
      if (trace::ActivityTrace* tr = trace())
        tr->record(traceLinkUnits_[std::size_t(adapterIdx)],
                   traceRetxKind_, depart, depart + penalty);
      depart += penalty;
    }
    linkFailed = out.linkFailed;
  }
  l.busyUntil = depart + ser;
  ++l.traversals;
  ++st().linkTraversals;
  st().wireBytes += p->wireBytes();
  if (trace::ActivityTrace* tr = trace()) {
    tr->record(traceLinkUnits_[std::size_t(adapterIdx)],
               linkFailed ? traceLinkFailKind_ : traceKind_, depart,
               depart + std::max<sim::Time>(ser, 1));
  }

  if (linkFailed) {
    // The link layer exhausted its retransmit budget: the final copy also
    // arrived corrupt, so the hardware drops this replica. The wire time was
    // spent (busy window, traversal, byte accounting above) but nothing is
    // scheduled beyond the link — loss is now a software-visible condition.
    // The link keeps a sticky failed mark so recovery replays route around it.
    ++st().linkFailures;
    failedLinks_[std::size_t(nodeIdx) * 6 + std::size_t(adapterIdx)] = 1;
    if (dropHandler_) {
      util::TorusCoord nc =
          torusNeighbor(util::torusCoordOf(nodeIdx, shape_), dim, sign, shape_);
      dropHandler_(p, downstreamReceivers(p, util::torusIndex(nc, shape_)));
    }
    return;
  }

  // Wormhole switching: the head proceeds after the wire delay; the tail
  // lags by the payload serialization of the slowest (inter-node) link,
  // charged once.
  if (p->tailLag == 0 && p->wireBytes() > kHeaderBytes)
    p->tailLag = lat.linkSerialization(p->wireBytes() - kHeaderBytes);

  sim::Time headArrive = depart + lat.wire(dim);
  util::TorusCoord next =
      torusNeighbor(util::torusCoordOf(nodeIdx, shape_), dim, sign, shape_);
  int nextIdx = util::torusIndex(next, shape_);
  // Arriving via the opposite adapter of the same dimension.
  int entryAdapterRouter =
      lat.ring.adapterRouter[std::size_t(RingLayout::adapterIndex(dim, -sign))];
  sim::Time atRing = headArrive + lat.adapter();
  // A drain event executes on the far node's shard but mutates THIS link's
  // pending queue, so batching is an intra-shard affair: arrivals crossing a
  // shard boundary take the per-arrival path instead. Both paths consume
  // their sequence number at this exact point, so any per-link mix of the
  // two yields a bit-identical (time, seq) event schedule (the batched/
  // legacy equivalence determinism_test pins).
  const sim::ShardLayout* lay = sim_.shardLayout();
  const bool cross =
      lay != nullptr && lay->shardOf(nodeIdx) != lay->shardOf(nextIdx);
  if (batchDrains_ && !cross) {
    // Reserve the event sequence number here — the exact point where the
    // unbatched path consumes one — so batched and legacy runs share a
    // bit-identical (time, seq) event schedule. The arrival parks on the
    // link's pending queue; at most one drain event sits in the kernel per
    // link regardless of how many packets are in flight on it. The causal
    // oracle attributes the arrival here too (node, link crossing, and the
    // currently executing event as parent) — at atReserved() time the
    // executing event would be the previous drain, which the unbatched
    // schedule never had.
    std::uint64_t seq = sim_.reserveSeq();
    if (sim::CausalLog* log = sim::causalOracle())
      log->noteScheduled(seq, nextIdx, /*link=*/true);
    l.pending.push_back({p, atRing, seq});
    if (!l.drainScheduled)
      scheduleDrain(std::size_t(nodeIdx) * 6 + std::size_t(adapterIdx));
  } else {
    // Cross-shard handoff carries a clone: the mutable header bookkeeping
    // (tailLag was fixed above, before any fork) is settled by now, but
    // isolating each shard's copy keeps the two sides free of even benign
    // shared-field access. The payload buffer is refcount-shared, exactly
    // like a hardware multicast replica, so contents — and therefore every
    // delivery — are identical to handing over the original pointer.
    PacketPtr q = p;
    if (cross) {
      q = allocatePacket();
      *q = *p;
    }
    sim::ScopedEventNode affinity(nextIdx, /*link=*/true);
    sim_.at(atRing, [this, q, nextIdx, entryAdapterRouter, dim, sign, atRing] {
      routeFrom(q, nextIdx, entryAdapterRouter, dim, sign, atRing);
    });
  }
}

void Machine::scheduleDrain(std::size_t li) {
  Link& l = links_[li];
  const Arrival& head = l.pending[l.pendingHead];
  l.drainScheduled = true;
  sim_.atReserved(head.atRing, head.seq, [this, li] { drainLink(li); });
}

void Machine::drainLink(std::size_t li) {
  Link& l = links_[li];
  const int nodeIdx = int(li / 6);
  const int a = int(li % 6);
  const int dim = a / 2;
  const int sign = (a % 2 == 0) ? +1 : -1;
  const LatencyConfig& lat = cfg_.latency;
  const int entryAdapterRouter =
      lat.ring.adapterRouter[std::size_t(RingLayout::adapterIndex(dim, -sign))];
  util::TorusCoord nc =
      torusNeighbor(util::torusCoordOf(nodeIdx, shape_), dim, sign, shape_);
  const int nextIdx = util::torusIndex(nc, shape_);

  // Route exactly the head arrival, then re-arm for the next one at its own
  // reserved (time, seq) slot. Per-link head-arrival times are strictly
  // monotonic (busyUntil advances by at least one serialization per
  // traversal), so there is never a second same-time arrival to fold in —
  // and unrelated events interleave between two arrivals exactly as they
  // would between the per-traversal events of the unbatched path.
  // drainScheduled stays true across routeFrom so a multicast loop that
  // lands back on this link cannot double-schedule; the tail re-arm below
  // picks any such appendee up.
  Arrival head = std::move(l.pending[l.pendingHead]);
  ++l.pendingHead;
  routeFrom(head.p, nextIdx, entryAdapterRouter, dim, sign, head.atRing);

  if (l.pendingHead == l.pending.size()) {
    l.pending.clear();  // capacity retained: the queue recycles, never churns
    l.pendingHead = 0;
    l.drainScheduled = false;
  } else {
    scheduleDrain(li);
  }
}

std::vector<ClientAddr> Machine::downstreamReceivers(const PacketPtr& p,
                                                     int nodeIdx) {
  if (p->multicastPattern == kNoMulticast) return {p->dst};
  // Walk the static fan-out tree exactly as routeFrom would have: clientMask
  // bits are deliveries at this node, linkMask bits continue the walk. The
  // visited guard makes a (malformed) cyclic pattern terminate.
  std::vector<ClientAddr> out;
  std::vector<char> visited(std::size_t(shape_.size()), 0);
  std::vector<int> stack{nodeIdx};
  while (!stack.empty()) {
    int idx = stack.back();
    stack.pop_back();
    if (visited[std::size_t(idx)]) continue;
    visited[std::size_t(idx)] = 1;
    const MulticastEntry& e = node(idx).multicast(p->multicastPattern);
    for (int c = 0; c < kClientsPerNode; ++c)
      if (e.clientMask & (1u << c)) out.push_back({idx, c});
    for (int a = 0; a < 6; ++a) {
      if (e.linkMask & (1u << a)) {
        int dim = a / 2;
        int sign = (a % 2 == 0) ? +1 : -1;
        util::TorusCoord nc =
            torusNeighbor(util::torusCoordOf(idx, shape_), dim, sign, shape_);
        stack.push_back(util::torusIndex(nc, shape_));
      }
    }
  }
  return out;
}

void Machine::deliverLocal(const PacketPtr& p, int nodeIdx, int entryRouter,
                           int clientId, sim::Time t) {
  const LatencyConfig& lat = cfg_.latency;
  int clientRouter = lat.ring.clientRouter[std::size_t(clientId)];
  sim::Time tPath = t + lat.ringPath(entryRouter, clientRouter);
  sim::Time start = node(nodeIdx).reserveRing(tPath, p->wireBytes());
  sim::Time commit = start + p->tailLag;
  // Same-node schedule point: attribute the commit to this node (not a link
  // crossing) so the oracle's inheritance chain — and the sharded kernel's
  // event routing — stays on the node's own shard.
  sim::ScopedEventNode affinity(nodeIdx, /*link=*/false);
  sim_.at(commit, [this, p, nodeIdx, clientId] {
    node(nodeIdx).client(clientId).deliver(p);
    ++st().packetsDelivered;
  });
}

}  // namespace anton::net
