#include "net/client.hpp"

#include <algorithm>

#include "net/machine.hpp"

namespace anton::net {

NetworkClient::NetworkClient(Machine& machine, ClientAddr addr,
                             std::size_t memBytes, int numCounters)
    : machine_(machine),
      addr_(addr),
      mem_(memBytes),
      counters_(std::size_t(numCounters)) {}

void NetworkClient::hostWrite(std::uint32_t address, const void* data,
                              std::size_t n) {
  if (address + n > mem_.size())
    throw std::out_of_range("NetworkClient::hostWrite out of range");
  std::memcpy(mem_.data() + address, data, n);
}

sim::Time NetworkClient::pollLatency() const {
  return machine_.latency().pollSuccess();
}

void NetworkClient::CounterWait::await_suspend(std::coroutine_handle<> h) const {
  SyncCounter& c = client.counters_[std::size_t(id)];
  if (c.value >= target) {
    // Already satisfied: the poll still costs one successful-poll latency.
    client.machine_.sim().resumeAfter(client.pollLatency(), h);
  } else {
    c.waiters.push_back({target, 0, [h] { h.resume(); }});
  }
}

std::uint64_t NetworkClient::onCounter(int id, std::uint64_t target,
                                       std::function<void()> fn) {
  checkCounter(id);
  SyncCounter& c = counters_[std::size_t(id)];
  if (c.value >= target) {
    machine_.sim().after(pollLatency(), std::move(fn));
    return 0;
  }
  std::uint64_t token = ++waiterSeq_;
  c.waiters.push_back({target, token, std::move(fn)});
  return token;
}

bool NetworkClient::cancelCounterWaiter(int id, std::uint64_t token) {
  if (token == 0) return false;
  checkCounter(id);
  SyncCounter& c = counters_[std::size_t(id)];
  for (auto it = c.waiters.begin(); it != c.waiters.end(); ++it) {
    if (it->token == token) {
      c.waiters.erase(it);
      return true;
    }
  }
  return false;
}

std::map<int, std::uint64_t> NetworkClient::counterSources(int id) const {
  std::map<int, std::uint64_t> out;
  for (const auto& [key, n] : srcTally_)
    if ((key >> 32) == std::uint64_t(std::uint32_t(id)))
      out[int(std::uint32_t(key))] = n;
  return out;
}

void NetworkClient::bumpCounter(int id, sim::Time /*now*/, int srcNode) {
  SyncCounter& c = counters_[std::size_t(id)];
  ++c.value;
  if (srcNode >= 0) {
    std::uint64_t key = tallyKey(id, srcNode);
    if (lastTallyCell_ == nullptr || key != lastTallyKey_) {
      lastTallyCell_ = &srcTally_[key];
      lastTallyKey_ = key;
    }
    ++*lastTallyCell_;
  }
  // Wake every poller whose threshold is now met; each resumes after the
  // polling latency of this client's counter bank.
  for (auto it = c.waiters.begin(); it != c.waiters.end();) {
    if (it->target <= c.value) {
      machine_.sim().after(pollLatency(), std::move(it->wake));
      it = c.waiters.erase(it);
    } else {
      ++it;
    }
  }
}

void NetworkClient::deliver(const PacketPtr& p) {
  if (p->type == PacketType::kFifo)
    throw std::logic_error("FIFO packet delivered to a non-slice client");
  if (p->type == PacketType::kAccum)
    throw std::logic_error(
        "accumulation packet delivered to a non-accumulation client");
  std::size_t n = p->payloadBytes();
  if (n != 0) {
    if (p->address + n > mem_.size())
      throw std::out_of_range("remote write past end of client memory");
    std::memcpy(mem_.data() + p->address, p->payload->data(), n);
  }
  if (p->counterId != kNoCounter) {
    checkCounter(p->counterId);
    bumpCounter(p->counterId, machine_.sim().now(), p->src.node);
  }
}

PacketPtr NetworkClient::post(const SendArgs& args) {
  if (!canSend())
    throw std::logic_error("this client type cannot inject packets");
  PacketPtr p = allocatePacket();
  p->type = args.type;
  p->src = addr_;
  p->dst = args.dst;
  p->multicastPattern = args.multicastPattern;
  p->counterId = args.counterId;
  p->address = args.address;
  p->inOrder = args.inOrder;
  p->degradedRoute = args.degradedRoute;
  p->payload = args.payload;
  machine_.inject(p);
  return p;
}

sim::Task NetworkClient::send(SendArgs args) {
  PacketPtr p = post(args);
  // Packet creation is pipelined: the core is occupied for the injection
  // slot (or the wire serialization, whichever is longer), while the 36 ns
  // assembly latency is charged inside the packet's own pipeline.
  const auto& lat = machine_.latency();
  co_await machine_.sim().delay(std::max(
      sim::ns(lat.injectOccupancyNs), lat.linkSerialization(p->wireBytes())));
}

// --- ProcessingSlice ------------------------------------------------------

void ProcessingSlice::deliver(const PacketPtr& p) {
  if (p->type == PacketType::kFifo) {
    fifo_.push_back(p);
    fifoHighWater_ = std::max(fifoHighWater_, fifo_.size());
    if (p->counterId != kNoCounter) {
      checkCounter(p->counterId);
      bumpCounter(p->counterId, machine_.sim().now(), p->src.node);
    }
    tryWakeFifoWaiter(machine_.sim().now());
    return;
  }
  NetworkClient::deliver(p);
}

void ProcessingSlice::FifoWait::await_suspend(std::coroutine_handle<> h) {
  slice.fifoWaiters_.push_back({this, h});
  slice.tryWakeFifoWaiter(slice.machine().sim().now());
}

void ProcessingSlice::tryWakeFifoWaiter(sim::Time /*now*/) {
  while (!fifoWaiters_.empty() && !fifo_.empty()) {
    FifoWaiterRef w = fifoWaiters_.front();
    fifoWaiters_.pop_front();
    w.wait->result = std::move(fifo_.front());
    fifo_.pop_front();
    machine_.sim().resumeAfter(pollLatency(), w.handle);
  }
}

// --- AccumulationMemory ---------------------------------------------------

sim::Time AccumulationMemory::pollLatency() const {
  return machine_.latency().accumPoll();
}

void AccumulationMemory::deliver(const PacketPtr& p) {
  if (p->type != PacketType::kAccum) {
    NetworkClient::deliver(p);
    return;
  }
  // Accumulation packets add their payload to memory in 4-byte quantities
  // (two's-complement fixed point; associative and order-independent).
  std::size_t n = p->payloadBytes();
  if (n % 4 != 0)
    throw std::logic_error("accumulation payload must be a multiple of 4 bytes");
  if (p->address % 4 != 0)
    throw std::logic_error("accumulation address must be 4-byte aligned");
  if (p->address + n > mem_.size())
    throw std::out_of_range("accumulation past end of memory");
  const std::byte* src = p->payload->data();
  for (std::size_t off = 0; off < n; off += 4) {
    std::uint32_t cur, add;
    std::memcpy(&cur, mem_.data() + p->address + off, 4);
    std::memcpy(&add, src + off, 4);
    cur += add;  // wrapping add == two's-complement fixed-point accumulate
    std::memcpy(mem_.data() + p->address + off, &cur, 4);
  }
  if (p->counterId != kNoCounter) {
    checkCounter(p->counterId);
    bumpCounter(p->counterId, machine_.sim().now(), p->src.node);
  }
}

}  // namespace anton::net
