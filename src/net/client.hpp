// Network clients: the endpoints of Anton's communication fabric.
//
// Every client owns a local memory that directly accepts write packets and a
// bank of synchronization counters incremented as counted packets commit
// (SC10 §III-B). Processing slices additionally own a hardware-managed
// message FIFO for traffic whose pattern cannot be fixed in advance
// (§III-C, used for migration). Accumulation memories cannot send and apply
// 4-byte-wise adds for accumulation packets.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace anton::net {

class Machine;

/// One synchronization counter: a monotonically increasing packet count plus
/// the list of wake actions polling it for a threshold (coroutine resumes
/// and watchdog callbacks alike). Waiters carry a cancellation token so the
/// loser of a counter/deadline race can be retracted instead of lingering
/// forever (counters never reset, so an unmet threshold would otherwise pin
/// its callback for the life of the client).
struct SyncCounter {
  std::uint64_t value = 0;
  struct Waiter {
    std::uint64_t target;
    std::uint64_t token;  ///< cancellation handle (0 = not cancellable)
    std::function<void()> wake;
  };
  std::vector<Waiter> waiters;
};

class NetworkClient {
 public:
  NetworkClient(Machine& machine, ClientAddr addr, std::size_t memBytes,
                int numCounters);
  virtual ~NetworkClient() = default;
  NetworkClient(const NetworkClient&) = delete;
  NetworkClient& operator=(const NetworkClient&) = delete;

  ClientAddr addr() const { return addr_; }
  Machine& machine() { return machine_; }

  /// Whether this client type can inject packets (accumulation memories
  /// cannot; SC10 §III-A).
  virtual bool canSend() const { return true; }

  // --- local memory (host-visible for verification and setup) ---
  std::span<const std::byte> memory() const { return mem_; }
  std::size_t memoryBytes() const { return mem_.size(); }
  void hostWrite(std::uint32_t address, const void* data, std::size_t n);
  template <typename T>
  T read(std::uint32_t address) const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (address + sizeof(T) > mem_.size())
      throw std::out_of_range("NetworkClient::read out of range");
    T v;
    std::memcpy(&v, mem_.data() + address, sizeof(T));
    return v;
  }

  // --- synchronization counters ---
  int numCounters() const { return static_cast<int>(counters_.size()); }
  std::uint64_t counterValue(int id) const { return counters_.at(size_t(id)).value; }

  /// Awaitable: suspend until counters[id] >= target, then resume after the
  /// polling latency (local poll for slices/HTIS, cross-ring poll for
  /// accumulation memories). Counters are cumulative and never reset, so
  /// software tracks absolute targets across phases — this mirrors how the
  /// real firmware avoids reset races.
  struct CounterWait {
    NetworkClient& client;
    int id;
    std::uint64_t target;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
  };
  CounterWait waitCounter(int id, std::uint64_t target) {
    checkCounter(id);
    return CounterWait{*this, id, target};
  }

  /// One-shot callback: invoke `fn` (after this client's poll latency) once
  /// counters[id] >= target; scheduled immediately if already met. The
  /// machinery behind the counted-write watchdog (core/watchdog.hpp).
  /// Returns a token for cancelCounterWaiter, or 0 when the threshold was
  /// already met (the callback is then a scheduled event, not a waiter).
  std::uint64_t onCounter(int id, std::uint64_t target, std::function<void()> fn);

  /// Retract a pending onCounter callback by its token. Returns true if the
  /// waiter was found (and removed) before it fired. Cancelling an
  /// already-woken or unknown token is a harmless no-op.
  bool cancelCounterWaiter(int id, std::uint64_t token);

  /// Number of wake actions currently parked on counter `id` (observability
  /// for leak tests and diagnostics).
  std::size_t counterWaiters(int id) const {
    return counters_.at(std::size_t(id)).waiters.size();
  }

  /// Arrival tally (source node -> packets) of a counter. Sources are
  /// tracked from counter creation — every counted delivery records its
  /// source node — so a watchdog attaching mid-stream (expectFrom after
  /// packets already arrived) still sees the full history and does not
  /// overstate the missing packets.
  std::map<int, std::uint64_t> counterSources(int id) const;

  /// Latency of one successful poll of this client's counters, as seen by
  /// software on a processing slice of the same node.
  virtual sim::Time pollLatency() const;

  /// Commit an arriving packet: write/accumulate payload, bump the counter,
  /// wake pollers. Called by the machine at the packet's delivery time.
  virtual void deliver(const PacketPtr& p);

  // --- sending (programs running on this client) ---

  /// Parameters for a send issued by software on this client. The awaitable
  /// returned by send() charges the packet-assembly time to the caller and
  /// injects the packet so that its pipeline overlaps that assembly.
  struct SendArgs {
    PacketType type = PacketType::kWrite;
    ClientAddr dst;
    int multicastPattern = kNoMulticast;
    int counterId = kNoCounter;
    std::uint32_t address = 0;
    bool inOrder = false;
    bool degradedRoute = false;  ///< replay: route around marked-failed links
    PayloadPtr payload;
  };

  /// Fire-and-forget injection at the current simulated time (assembly time
  /// is part of the packet pipeline, not charged to any caller). Returns the
  /// packet for inspection.
  PacketPtr post(const SendArgs& args);

  /// Coroutine form: `co_await client.send(args)` — the caller is busy for
  /// the assembly time, overlapping the packet's network pipeline.
  sim::Task send(SendArgs args);

 protected:
  void bumpCounter(int id, sim::Time now, int srcNode = -1);
  void checkCounter(int id) const {
    if (id < 0 || id >= numCounters())
      throw std::out_of_range("bad sync counter id");
  }

  Machine& machine_;
  ClientAddr addr_;
  std::vector<std::byte> mem_;
  std::vector<SyncCounter> counters_;
  std::uint64_t waiterSeq_ = 0;  ///< cancellation-token source (0 reserved)
  /// Per-(counter, source-node) arrival tally, maintained from the first
  /// counted delivery onward. Flattened to one hash map keyed by
  /// (id << 32 | node): the bump is on the delivery hot path (plus a
  /// last-cell memo for same-source streams — mapped references are
  /// node-stable, so the memo survives rehashing); the per-counter view the
  /// watchdogs read is assembled on demand in counterSources().
  static std::uint64_t tallyKey(int id, int srcNode) {
    return (std::uint64_t(std::uint32_t(id)) << 32) | std::uint32_t(srcNode);
  }
  std::unordered_map<std::uint64_t, std::uint64_t> srcTally_;
  std::uint64_t lastTallyKey_ = 0;
  std::uint64_t* lastTallyCell_ = nullptr;
};

/// A processing slice: one Tensilica core plus two geometry cores. Programs
/// (sim::Task coroutines) model the Tensilica firmware; the message FIFO
/// accepts arbitrary traffic.
class ProcessingSlice final : public NetworkClient {
 public:
  using NetworkClient::NetworkClient;

  void deliver(const PacketPtr& p) override;

  /// Awaitable: pop the next FIFO message (suspends while empty). The resume
  /// carries the packet; polling latency applies.
  struct FifoWait {
    ProcessingSlice& slice;
    PacketPtr result;
    bool await_ready() noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    PacketPtr await_resume() noexcept { return std::move(result); }
  };
  FifoWait receiveFifo() { return FifoWait{*this, nullptr}; }

  /// Non-blocking pop: the next queued FIFO message, or null when empty.
  /// Used after a flush counter guarantees all messages have arrived.
  PacketPtr pollFifo() {
    if (fifo_.empty()) return nullptr;
    PacketPtr p = std::move(fifo_.front());
    fifo_.pop_front();
    return p;
  }

  std::size_t fifoDepth() const { return fifo_.size(); }
  std::size_t fifoHighWater() const { return fifoHighWater_; }

 private:
  friend struct FifoWait;
  void tryWakeFifoWaiter(sim::Time now);

  std::deque<PacketPtr> fifo_;
  std::size_t fifoHighWater_ = 0;
  struct FifoWaiterRef {
    FifoWait* wait;
    std::coroutine_handle<> handle;
  };
  std::deque<FifoWaiterRef> fifoWaiters_;
};

/// The high-throughput interaction subsystem endpoint. Behaviorally a client
/// with memory, counters and send capability; the pairwise-interaction
/// pipelines themselves are modeled by the MD layer as calibrated compute
/// phases on this client.
class Htis final : public NetworkClient {
 public:
  using NetworkClient::NetworkClient;
};

/// Accumulation memory: accepts write and accumulation packets; accumulation
/// adds the payload in 4-byte two's-complement quantities (fixed-point force
/// and charge summation). Cannot send; its counters are polled by slices
/// across the on-chip ring and therefore cost more to poll (SC10 §III-B).
class AccumulationMemory final : public NetworkClient {
 public:
  using NetworkClient::NetworkClient;

  bool canSend() const override { return false; }
  sim::Time pollLatency() const override;
  void deliver(const PacketPtr& p) override;
};

}  // namespace anton::net
