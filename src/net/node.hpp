// One Anton node: seven network clients on a six-router on-chip ring, six
// link adapters to torus neighbors, and a 256-entry multicast lookup table
// (SC10 §III-A, Fig. 1).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "net/client.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/torus_coord.hpp"

namespace anton::net {

inline constexpr int kMulticastPatterns = 256;

/// One precomputed multicast fan-out at a node: the set of local clients to
/// deliver to and the set of outgoing links to forward on.
struct MulticastEntry {
  std::uint8_t clientMask = 0;  ///< bit i => deliver to local client i
  std::uint8_t linkMask = 0;    ///< bit adapterIndex(dim,sign) => forward
  bool empty() const { return clientMask == 0 && linkMask == 0; }
};

class Machine;

class Node {
 public:
  Node(Machine& machine, int index, util::TorusCoord coord,
       std::size_t clientMemBytes, int countersPerClient);

  int index() const { return index_; }
  util::TorusCoord coord() const { return coord_; }

  NetworkClient& client(int id) { return *clients_.at(std::size_t(id)); }
  const NetworkClient& client(int id) const { return *clients_.at(std::size_t(id)); }
  ProcessingSlice& slice(int s);
  Htis& htis();
  AccumulationMemory& accum(int which);

  const MulticastEntry& multicast(int pattern) const {
    return multicast_.at(std::size_t(pattern));
  }
  void setMulticast(int pattern, MulticastEntry e) {
    multicast_.at(std::size_t(pattern)) = e;
  }

  /// Reserve the shared on-chip ring for `bytes` starting no earlier than
  /// `t`; returns the actual start time (>= t) and advances the busy window.
  sim::Time reserveRing(sim::Time t, std::size_t bytes);

  sim::Time ringBusyUntil() const { return ringBusyUntil_; }

 private:
  Machine& machine_;
  int index_;
  util::TorusCoord coord_;
  std::array<std::unique_ptr<NetworkClient>, kClientsPerNode> clients_;
  std::array<MulticastEntry, kMulticastPatterns> multicast_{};
  sim::Time ringBusyUntil_ = 0;
};

}  // namespace anton::net
