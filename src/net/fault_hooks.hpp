// Fault-injection hook interface of the network model.
//
// The lossless-fabric assumption of the SC10 machine makes a single lost or
// corrupted packet fatal: counted remote writes deliver a pre-known packet
// count, so a consumer polling a sync counter for a packet that never
// arrives spins forever. The reliability subsystem (src/fault) models the
// faults the real hardware guards against — link bit errors caught by
// per-link CRC and repaired by link-level retransmission, link outage
// windows, and stalled on-chip routers.
//
// This header defines only the hook interface so that anton_net does not
// depend on the fault library: the machine consults an installed FaultModel
// at three points (link departure, routing-dimension choice, node-ring
// entry) and charges whatever delay the model dictates. With no model
// installed — or with a model that reports no faults — the data path is
// bit-identical to the fault-free machine.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace anton::net {

/// Outcome of one link-traversal attempt under an installed fault model.
struct LinkFaultOutcome {
  /// CRC-detected corrupt copies replayed before the successful one. Each
  /// replay charges the packet's wire serialization plus the calibrated
  /// retransmit turnaround (LatencyConfig::crcRetransmitNs) and keeps the
  /// link occupied for that window.
  int retransmits = 0;
  /// Time the adapter holds the packet before transmission (link outage).
  sim::Time stall = 0;
  /// The link layer exhausted its retransmit budget: every copy (original
  /// plus `retransmits` replays) was corrupt, so the hardware declares the
  /// link failed and DROPS the packet. The machine records the loss
  /// (MachineStats::linkFailures, "linkfail" trace kind, drop handler) and
  /// schedules no delivery — loss becomes an observable condition for the
  /// software erasure-recovery layer (core/recovery.hpp) instead of a
  /// silently-delivered corrupt packet.
  bool linkFailed = false;
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Called once per link-traversal attempt at its departure time. The
  /// returned stall is applied first, then the retransmit replays; both
  /// extend the link busy window and the packet's in-flight time.
  virtual LinkFaultOutcome onLinkTraversal(int nodeIdx, int dim, int sign,
                                           std::size_t wireBytes,
                                           sim::Time depart) = 0;

  /// Whether the outgoing link of `nodeIdx` in (dim, sign) is inside an
  /// outage window at `t`. Consulted by degraded-mode routing
  /// (Machine::setFaultReroute) to pick a non-preferred dimension order.
  virtual bool linkDown(int nodeIdx, int dim, int sign, sim::Time t) const = 0;

  /// Earliest time >= t at which the on-chip ring of `nodeIdx` is usable
  /// (stalled-router intervals). Return `t` when the router is healthy.
  virtual sim::Time routerStallUntil(int nodeIdx, sim::Time t) const = 0;
};

}  // namespace anton::net
