// Latency probes on the machine model: the SC10 §III-D measurement
// methodology (source posts a counted remote write at t0, receiver polls
// its sync counter; the successful poll is the software-to-software
// latency) as reusable helpers. One implementation backs the Fig. 5 bench,
// the fault sweep, and the fig5-ping job family of the simulation service
// (src/serve), so every consumer measures the same thing.
#pragma once

#include <algorithm>
#include <cstddef>

#include "net/machine.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace anton::net {

/// One-way counted-remote-write latency between two clients, in ns.
inline double oneWayLatencyNs(Machine& m, ClientAddr src, ClientAddr dst,
                              std::size_t payloadBytes, bool inOrder = false) {
  double done = -1.0;
  auto receiver = [](Machine& mm, ClientAddr d, double& out) -> sim::Task {
    NetworkClient& c = mm.client(d);
    co_await c.waitCounter(0, c.counterValue(0) + 1);
    out = sim::toNs(mm.sim().now());
  };
  {
    // Pin the receiver's event chain to its node's shard under sharded
    // mode (a no-op hint when serial).
    sim::ScopedEventNode affinity(dst.node, false);
    m.sim().spawn(receiver(m, dst, done));
  }
  double start = sim::toNs(m.sim().now());
  NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = inOrder;
  if (payloadBytes != 0) args.payload = makeZeroPayload(payloadBytes);
  m.client(src).post(args);
  m.sim().run();
  return done - start;
}

/// Bidirectional variant: both endpoints send simultaneously; the reported
/// latency is the later of the two arrivals (ping-pong under full duplex).
inline double bidirLatencyNs(Machine& m, ClientAddr a, ClientAddr b,
                             std::size_t payloadBytes) {
  double doneA = -1.0, doneB = -1.0;
  auto receiver = [](Machine& mm, ClientAddr d, double& out) -> sim::Task {
    NetworkClient& c = mm.client(d);
    co_await c.waitCounter(0, c.counterValue(0) + 1);
    out = sim::toNs(mm.sim().now());
  };
  {
    sim::ScopedEventNode affinityA(a.node, false);
    m.sim().spawn(receiver(m, a, doneA));
  }
  {
    sim::ScopedEventNode affinityB(b.node, false);
    m.sim().spawn(receiver(m, b, doneB));
  }
  double start = sim::toNs(m.sim().now());
  NetworkClient::SendArgs args;
  args.counterId = 0;
  if (payloadBytes != 0) args.payload = makeZeroPayload(payloadBytes);
  args.dst = b;
  m.client(a).post(args);
  args.dst = a;
  args.address = 512;
  m.client(b).post(args);
  m.sim().run();
  return std::max(doneA, doneB) - start;
}

}  // namespace anton::net
