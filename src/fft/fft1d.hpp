// Complex 1D FFT (iterative radix-2 decimation-in-time).
//
// Used both by the host-side reference 3D convolution and by the simulated
// per-line FFT work of the distributed transform, so the distributed result
// is bit-identical to the host reference.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace anton::fft {

using Complex = std::complex<double>;

/// In-place FFT. `a.size()` must be a power of two. The inverse transform
/// includes the 1/N normalization (round-tripping returns the input).
void fft1d(std::span<Complex> a, bool inverse);

/// O(n^2) reference DFT for tests (same normalization convention).
std::vector<Complex> dftReference(std::span<const Complex> a, bool inverse);

}  // namespace anton::fft
