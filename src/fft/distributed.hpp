// Distributed dimension-ordered 3D FFT on the Anton machine model.
//
// SC10 §IV-B3 (and the companion SC09 paper [47]): the 3D transform is
// decomposed into 1D FFT passes along x, then y, then z (reverse order for
// the inverse). Before each pass, grid data is gathered into full lines with
// fine-grained counted remote writes (one grid point per packet by default);
// line ownership is distributed round-robin among the nodes of each torus
// ring, so all FFT communication stays within single-dimension rings. After
// the per-line FFTs, results scatter back to the home blocks the same way.
// Per-dimension synchronization counters track the incoming remote writes.
//
// The complex grid values really travel through the simulated network, so
// the distributed result is bit-identical to the host-side fft3d reference.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "core/recovery.hpp"
#include "fft/fft1d.hpp"
#include "net/machine.hpp"
#include "sim/task.hpp"
#include "verify/plan.hpp"

namespace anton::fft {

struct DistributedFftConfig {
  int fftSlice = net::kSlice1;  ///< slice running FFT software on each node
  int counterBase = 220;        ///< 6 counters: gather/scatter per dimension
  std::uint32_t memBase = 0x30000;  ///< receive regions in slice memory
  /// Grid points per packet. 1 reproduces the paper's one-point-per-packet
  /// fine-grained pattern; 0 selects the largest contiguous batch (<= 16).
  int pointsPerPacket = 1;
  double fftPointNs = 2.5;   ///< per-point cost of a 1D FFT butterfly stage
  double packPointNs = 1.0;  ///< per-point marshalling cost (pack or unpack)
};

/// One grid block distributed per node; construct once, then run collective
/// forward/inverse transforms any number of times.
class DistributedFft3D {
 public:
  DistributedFft3D(net::Machine& machine, int gx, int gy, int gz,
                   DistributedFftConfig cfg = {});

  int gx() const { return g_[0]; }
  int gy() const { return g_[1]; }
  int gz() const { return g_[2]; }
  /// Home-block extents (grid points per node per dimension).
  int blockExtent(int dim) const { return b_[std::size_t(dim)]; }
  std::size_t blockSize() const {
    return std::size_t(b_[0]) * std::size_t(b_[1]) * std::size_t(b_[2]);
  }

  /// Host access to a node's home block (x fastest, then y, then z —
  /// local coordinates relative to the block origin).
  std::vector<Complex>& home(int nodeIdx) { return home_[std::size_t(nodeIdx)]; }
  const std::vector<Complex>& home(int nodeIdx) const {
    return home_[std::size_t(nodeIdx)];
  }

  /// Global grid coordinate of a local block index on a node.
  std::array<int, 3> globalCoord(int nodeIdx, std::size_t localIdx) const;

  /// Scatter a full grid into the per-node home blocks / gather it back.
  void loadGrid(const std::vector<Complex>& grid);  // x-fastest global layout
  std::vector<Complex> extractGrid() const;

  /// Collective: every node spawns one task per transform. After completion
  /// on a node, that node's home block holds its slab of the (forward or
  /// inverse) transform.
  sim::Task run(int nodeIdx, bool inverse);

  /// Arm end-to-end erasure recovery on the per-dimension gather and scatter
  /// waits: armed waits diagnose dropped packets per source and replay them
  /// from the hooks' DropRegistry instead of hanging. Disarmed (the default)
  /// the waits are plain counter polls — bit-identical timing.
  void setRecovery(const core::RecoveryHooks& hooks) { recovery_ = hooks; }
  bool recoveryArmed() const { return recovery_.armed(); }

  /// Messages a node sends per full transform (for bench reporting).
  std::uint64_t packetsPerNodePerTransform(int nodeIdx) const;

  /// Append the static communication plan of one transform (forward or
  /// inverse) to `plan`, chained after `afterPhase`: per-dimension gather /
  /// transform / unpack phases, the ring-unicast write groups, counter
  /// expectations, and the parity-selected receive regions. `parity` picks
  /// which copy of the double-buffered regions this transform writes (the MD
  /// step always runs forward on parity 0 and inverse on parity 1). Returns
  /// the name of the final phase appended.
  std::string appendPlan(verify::CommPlan& plan, const std::string& afterPhase,
                         bool inverse, int parity) const;

 private:
  struct DimPlan {
    int d;                 ///< dimension of this pass
    int a, b;              ///< the two other dimensions (a < b)
    int ringSize;          ///< nodes along d
    int lineLen;           ///< grid points per line (Gd)
    int seg;               ///< points per ring-node segment (bd)
    int linesPerBlock;     ///< ba * bb
    int packetsPerSegment; ///< ceil(seg / pointsPerPacket)
    int maxOwnedLines;     ///< ceil(linesPerBlock / ringSize)
    std::uint32_t gatherBase;   ///< parity-0 gather region offset
    std::uint32_t scatterBase;  ///< parity-0 scatter region offset
    std::uint32_t gatherRegion; ///< bytes per parity copy
    std::uint32_t scatterRegion;
  };

  int ownedLines(int nodeIdx, const DimPlan& p) const;
  std::uint32_t gatherAddr(const DimPlan& p, int parity, int ord, int gp) const;
  std::uint32_t scatterAddr(const DimPlan& p, int parity, int lid, int dp) const;
  std::size_t homeIndex(const DimPlan& p, int la, int lb, int ld) const;

  net::Machine& machine_;
  DistributedFftConfig cfg_;
  std::array<int, 3> g_;  ///< grid extents
  std::array<int, 3> b_;  ///< block extents
  std::array<DimPlan, 3> plan_;
  std::vector<std::vector<Complex>> home_;
  std::vector<std::array<std::uint64_t, 3>> rounds_;
  core::RecoveryHooks recovery_;
};

}  // namespace anton::fft
