// Dense 3D complex grid with host-side 3D FFT — the reference transform the
// distributed implementation must match, and the convolution engine of the
// host-side MD long-range solver.
#pragma once

#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"

namespace anton::fft {

class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(int nx, int ny, int nz)
      : nx_(nx), ny_(ny), nz_(nz),
        data_(std::size_t(nx) * std::size_t(ny) * std::size_t(nz)) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  std::size_t index(int x, int y, int z) const {
    return std::size_t(x) + std::size_t(nx_) * (std::size_t(y) + std::size_t(ny_) * std::size_t(z));
  }
  Complex& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  const Complex& at(int x, int y, int z) const { return data_[index(x, y, z)]; }

  std::vector<Complex>& data() { return data_; }
  const std::vector<Complex>& data() const { return data_; }

  void fill(Complex v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<Complex> data_;
};

/// In-place 3D FFT: 1D transforms along x, then y, then z (reverse order for
/// the inverse), matching the distributed dimension-ordered algorithm.
void fft3d(Grid3D& g, bool inverse);

}  // namespace anton::fft
