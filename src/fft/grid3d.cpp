#include "fft/grid3d.hpp"

namespace anton::fft {

void fft3d(Grid3D& g, bool inverse) {
  const int nx = g.nx(), ny = g.ny(), nz = g.nz();
  std::vector<Complex> line;

  auto pass = [&](int dim) {
    int n = dim == 0 ? nx : dim == 1 ? ny : nz;
    line.resize(std::size_t(n));
    if (dim == 0) {
      for (int z = 0; z < nz; ++z)
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < nx; ++x) line[std::size_t(x)] = g.at(x, y, z);
          fft1d(line, inverse);
          for (int x = 0; x < nx; ++x) g.at(x, y, z) = line[std::size_t(x)];
        }
    } else if (dim == 1) {
      for (int z = 0; z < nz; ++z)
        for (int x = 0; x < nx; ++x) {
          for (int y = 0; y < ny; ++y) line[std::size_t(y)] = g.at(x, y, z);
          fft1d(line, inverse);
          for (int y = 0; y < ny; ++y) g.at(x, y, z) = line[std::size_t(y)];
        }
    } else {
      for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x) {
          for (int z = 0; z < nz; ++z) line[std::size_t(z)] = g.at(x, y, z);
          fft1d(line, inverse);
          for (int z = 0; z < nz; ++z) g.at(x, y, z) = line[std::size_t(z)];
        }
    }
  };

  if (!inverse) {
    pass(0);
    pass(1);
    pass(2);
  } else {
    pass(2);
    pass(1);
    pass(0);
  }
}

}  // namespace anton::fft
