#include "fft/distributed.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace anton::fft {

namespace {
constexpr std::uint32_t kPointBytes = sizeof(Complex);  // 16
}

DistributedFft3D::DistributedFft3D(net::Machine& machine, int gx, int gy,
                                   int gz, DistributedFftConfig cfg)
    : machine_(machine),
      cfg_(cfg),
      g_{gx, gy, gz},
      home_(std::size_t(machine.numNodes())),
      rounds_(std::size_t(machine.numNodes())) {
  const util::TorusShape& shape = machine.shape();
  for (int d = 0; d < 3; ++d) {
    if (g_[std::size_t(d)] <= 0 || !std::has_single_bit(unsigned(g_[std::size_t(d)])))
      throw std::invalid_argument("grid extents must be powers of two");
    if (g_[std::size_t(d)] % shape.extent(d) != 0)
      throw std::invalid_argument("grid extent must divide by torus extent");
    b_[std::size_t(d)] = g_[std::size_t(d)] / shape.extent(d);
  }
  for (auto& blk : home_) blk.assign(blockSize(), Complex{0.0, 0.0});

  std::uint32_t offset = cfg_.memBase;
  for (int d = 0; d < 3; ++d) {
    DimPlan& p = plan_[std::size_t(d)];
    p.d = d;
    p.a = d == 0 ? 1 : 0;
    p.b = d == 2 ? 1 : 2;
    p.ringSize = shape.extent(d);
    p.lineLen = g_[std::size_t(d)];
    p.seg = b_[std::size_t(d)];
    p.linesPerBlock = b_[std::size_t(p.a)] * b_[std::size_t(p.b)];
    int k = cfg_.pointsPerPacket == 0
                ? std::min(p.seg, int(net::kMaxPayloadBytes / kPointBytes))
                : std::min({cfg_.pointsPerPacket, p.seg,
                            int(net::kMaxPayloadBytes / kPointBytes)});
    p.packetsPerSegment = (p.seg + k - 1) / k;
    p.maxOwnedLines = (p.linesPerBlock + p.ringSize - 1) / p.ringSize;
    p.gatherRegion = std::uint32_t(p.maxOwnedLines) * std::uint32_t(p.lineLen) * kPointBytes;
    p.scatterRegion = std::uint32_t(p.linesPerBlock) * std::uint32_t(p.seg) * kPointBytes;
    p.gatherBase = offset;
    offset += 2 * p.gatherRegion;
    p.scatterBase = offset;
    offset += 2 * p.scatterRegion;
  }
  std::size_t memNeeded = offset;
  if (memNeeded > machine.config().clientMemBytes)
    throw std::invalid_argument("FFT receive regions exceed client memory");
}

std::array<int, 3> DistributedFft3D::globalCoord(int nodeIdx,
                                                 std::size_t localIdx) const {
  util::TorusCoord c = util::torusCoordOf(nodeIdx, machine_.shape());
  int lx = int(localIdx % std::size_t(b_[0]));
  int ly = int((localIdx / std::size_t(b_[0])) % std::size_t(b_[1]));
  int lz = int(localIdx / (std::size_t(b_[0]) * std::size_t(b_[1])));
  return {c.x * b_[0] + lx, c.y * b_[1] + ly, c.z * b_[2] + lz};
}

void DistributedFft3D::loadGrid(const std::vector<Complex>& grid) {
  if (grid.size() != std::size_t(g_[0]) * std::size_t(g_[1]) * std::size_t(g_[2]))
    throw std::invalid_argument("grid size mismatch");
  for (int n = 0; n < machine_.numNodes(); ++n) {
    std::vector<Complex>& blk = home_[std::size_t(n)];
    for (std::size_t i = 0; i < blk.size(); ++i) {
      auto [x, y, z] = globalCoord(n, i);
      blk[i] = grid[std::size_t(x) +
                    std::size_t(g_[0]) * (std::size_t(y) + std::size_t(g_[1]) * std::size_t(z))];
    }
  }
}

std::vector<Complex> DistributedFft3D::extractGrid() const {
  std::vector<Complex> grid(std::size_t(g_[0]) * std::size_t(g_[1]) * std::size_t(g_[2]));
  for (int n = 0; n < machine_.numNodes(); ++n) {
    const std::vector<Complex>& blk = home_[std::size_t(n)];
    for (std::size_t i = 0; i < blk.size(); ++i) {
      auto [x, y, z] = globalCoord(n, i);
      grid[std::size_t(x) +
           std::size_t(g_[0]) * (std::size_t(y) + std::size_t(g_[1]) * std::size_t(z))] = blk[i];
    }
  }
  return grid;
}

int DistributedFft3D::ownedLines(int nodeIdx, const DimPlan& p) const {
  int pos = util::torusCoordOf(nodeIdx, machine_.shape())[p.d];
  // Lines with lid % ringSize == pos, lid in [0, linesPerBlock).
  int full = p.linesPerBlock / p.ringSize;
  int rem = p.linesPerBlock % p.ringSize;
  return full + (pos < rem ? 1 : 0);
}

std::uint32_t DistributedFft3D::gatherAddr(const DimPlan& p, int parity,
                                           int ord, int gp) const {
  return p.gatherBase + std::uint32_t(parity) * p.gatherRegion +
         (std::uint32_t(ord) * std::uint32_t(p.lineLen) + std::uint32_t(gp)) *
             kPointBytes;
}

std::uint32_t DistributedFft3D::scatterAddr(const DimPlan& p, int parity,
                                            int lid, int dp) const {
  return p.scatterBase + std::uint32_t(parity) * p.scatterRegion +
         (std::uint32_t(lid) * std::uint32_t(p.seg) + std::uint32_t(dp)) *
             kPointBytes;
}

std::size_t DistributedFft3D::homeIndex(const DimPlan& p, int la, int lb,
                                        int ld) const {
  int l[3];
  l[p.d] = ld;
  l[p.a] = la;
  l[p.b] = lb;
  return std::size_t(l[0]) +
         std::size_t(b_[0]) * (std::size_t(l[1]) + std::size_t(b_[1]) * std::size_t(l[2]));
}

std::uint64_t DistributedFft3D::packetsPerNodePerTransform(int nodeIdx) const {
  std::uint64_t total = 0;
  for (const DimPlan& p : plan_) {
    total += std::uint64_t(p.linesPerBlock) * std::uint64_t(p.packetsPerSegment);
    total += std::uint64_t(ownedLines(nodeIdx, p)) * std::uint64_t(p.ringSize) *
             std::uint64_t(p.packetsPerSegment);
  }
  return total;
}

std::string DistributedFft3D::appendPlan(verify::CommPlan& plan,
                                         const std::string& afterPhase,
                                         bool inverse, int parity) const {
  static constexpr const char* kDimName[3] = {"x", "y", "z"};
  const util::TorusShape& shape = machine_.shape();
  const std::string label = inverse ? "inv" : "fwd";
  std::string prev = afterPhase;
  for (int step = 0; step < 3; ++step) {
    const int d = inverse ? 2 - step : step;
    const DimPlan& p = plan_[std::size_t(d)];
    const int gatherCtr = cfg_.counterBase + 2 * d;
    const int scatterCtr = cfg_.counterBase + 2 * d + 1;
    const std::uint64_t pps = std::uint64_t(p.packetsPerSegment);
    // Lines of a block owned by ring position `pos` (round-robin by lid).
    auto linesAtPos = [&p](int pos) {
      return std::uint64_t(p.linesPerBlock / p.ringSize +
                           (pos < p.linesPerBlock % p.ringSize ? 1 : 0));
    };
    const std::string pfx = "fft." + label + "." + kDimName[d];
    const std::string pGather = pfx + ".gather";  // push segments to owners
    const std::string pXform = pfx + ".xform";    // wait, read, FFT, scatter
    const std::string pUnpack = pfx + ".unpack";  // wait, read home segments
    plan.addPhaseEdge(prev, pGather);
    plan.addPhaseEdge(pGather, pXform);
    plan.addPhaseEdge(pXform, pUnpack);
    prev = pUnpack;

    for (int n = 0; n < machine_.numNodes(); ++n) {
      util::TorusCoord coord = util::torusCoordOf(n, shape);
      const std::uint64_t myOwned = linesAtPos(coord[d]);

      // The transform coroutine waits on the gather counter, reads, runs the
      // FFT and only then scatters: the defaults (waits at seq 0, sends at
      // seq 1) are the live order, stated here explicitly because the
      // event-granular checks depend on it.
      verify::CounterExpectation ge;
      ge.site = pGather;
      ge.phase = pXform;
      ge.client = {n, cfg_.fftSlice};
      ge.counterId = gatherCtr;
      ge.perRound = myOwned * std::uint64_t(p.ringSize) * pps;
      ge.seq = 0;
      ge.recoveryArmed = recovery_.armed();

      verify::CounterExpectation se;
      se.site = pXform;  // the scatter writes are issued from xform
      se.phase = pUnpack;
      se.client = {n, cfg_.fftSlice};
      se.counterId = scatterCtr;
      se.perRound = std::uint64_t(p.linesPerBlock) * pps;
      se.recoveryArmed = recovery_.armed();

      verify::BufferPlan gb;
      gb.name = pGather;
      gb.client = ge.client;
      gb.base = p.gatherBase + std::uint32_t(parity) * p.gatherRegion;
      gb.bytes = p.gatherRegion;
      gb.copies = 1;  // this parity copy is reused every template round
      gb.freePhase = pXform;

      verify::BufferPlan sb;
      sb.name = pXform + ".scatter";
      sb.client = ge.client;
      sb.base = p.scatterBase + std::uint32_t(parity) * p.scatterRegion;
      sb.bytes = p.scatterRegion;
      sb.copies = 1;
      sb.freePhase = pUnpack;

      for (int o = 0; o < p.ringSize; ++o) {
        util::TorusCoord oc = coord;
        oc[d] = o;
        int peer = util::torusIndex(oc, shape);
        std::uint64_t peerOwned = linesAtPos(o);
        // Gather: my segments of every line owned by `peer`.
        if (peerOwned != 0) {
          verify::PlannedWrite w;
          w.phase = pGather;
          w.srcNode = n;
          w.dst = {peer, cfg_.fftSlice};
          w.counterId = gatherCtr;
          w.packets = peerOwned * pps;
          plan.writes.push_back(w);
          se.bySource[peer] = peerOwned * pps;
          sb.writers.push_back({peer, pXform});
        }
        ge.bySource[peer] = myOwned * pps;
        if (myOwned != 0) gb.writers.push_back({peer, pGather});
        // Scatter: my owned lines' segments back to every ring node. The
        // sends follow the gather wait in program order (w.seq = 1 default).
        if (myOwned != 0) {
          verify::PlannedWrite w;
          w.phase = pXform;
          w.srcNode = n;
          w.dst = {peer, cfg_.fftSlice};
          w.counterId = scatterCtr;
          w.packets = myOwned * pps;
          w.seq = 1;
          plan.writes.push_back(w);
        }
      }
      if (myOwned == 0) ge.bySource.clear();
      plan.expectations.push_back(std::move(ge));
      plan.expectations.push_back(std::move(se));
      plan.buffers.push_back(std::move(gb));
      plan.buffers.push_back(std::move(sb));
    }
  }
  return prev;
}

sim::Task DistributedFft3D::run(int nodeIdx, bool inverse) {
  const util::TorusShape& shape = machine_.shape();
  const util::TorusCoord coord = util::torusCoordOf(nodeIdx, shape);
  net::ProcessingSlice& slice = machine_.slice(nodeIdx, cfg_.fftSlice);
  std::vector<Complex>& blk = home_[std::size_t(nodeIdx)];

  for (int step = 0; step < 3; ++step) {
    const int d = inverse ? 2 - step : step;
    const DimPlan& p = plan_[std::size_t(d)];
    const int gatherCtr = cfg_.counterBase + 2 * d;
    const int scatterCtr = cfg_.counterBase + 2 * d + 1;
    const int myPos = coord[d];
    const int myOwned = ownedLines(nodeIdx, p);

    const std::uint64_t round = ++rounds_[std::size_t(nodeIdx)][std::size_t(d)];
    const int parity = int((round - 1) % 2);

    // --- gather: push my segments of every line to the line owners -------
    const int kEff = (p.seg + p.packetsPerSegment - 1) / p.packetsPerSegment;
    std::vector<std::byte> buf(std::size_t(kEff) * kPointBytes);
    for (int lid = 0; lid < p.linesPerBlock; ++lid) {
      const int la = lid % b_[std::size_t(p.a)];
      const int lb = lid / b_[std::size_t(p.a)];
      util::TorusCoord ownerCoord = coord;
      ownerCoord[d] = lid % p.ringSize;
      const int ownerNode = util::torusIndex(ownerCoord, shape);
      const int ord = lid / p.ringSize;
      for (int dp0 = 0; dp0 < p.seg; dp0 += kEff) {
        const int cnt = std::min(kEff, p.seg - dp0);
        for (int i = 0; i < cnt; ++i) {
          Complex v = blk[homeIndex(p, la, lb, dp0 + i)];
          std::memcpy(buf.data() + std::size_t(i) * kPointBytes, &v, kPointBytes);
        }
        net::NetworkClient::SendArgs args;
        args.dst = {ownerNode, cfg_.fftSlice};
        args.counterId = gatherCtr;
        args.address = gatherAddr(p, parity, ord, myPos * p.seg + dp0);
        args.payload = net::makePayload(buf.data(), std::size_t(cnt) * kPointBytes);
        co_await slice.send(args);
      }
    }
    co_await machine_.sim().delay(
        sim::ns(cfg_.packPointNs * double(p.linesPerBlock * p.seg)));

    const std::uint64_t gatherExpected =
        std::uint64_t(myOwned) * std::uint64_t(p.ringSize) *
        std::uint64_t(p.packetsPerSegment);
    {
      // Every ring peer (self included) owes my-owned-lines segments; the
      // map must outlive the await (awaitCounted takes it by reference).
      std::map<int, std::uint64_t> gatherBySource;
      if (recovery_.armed() && myOwned != 0) {
        for (int o = 0; o < p.ringSize; ++o) {
          util::TorusCoord oc = coord;
          oc[d] = o;
          gatherBySource[util::torusIndex(oc, shape)] =
              round * std::uint64_t(myOwned) *
              std::uint64_t(p.packetsPerSegment);
        }
      }
      co_await core::awaitCounted(slice, gatherCtr, round * gatherExpected,
                                  gatherBySource, recovery_);
    }

    // --- compute: 1D FFTs on my owned lines ------------------------------
    std::vector<std::vector<Complex>> lines(static_cast<std::size_t>(myOwned));
    for (int ord = 0; ord < myOwned; ++ord) {
      auto& line = lines[std::size_t(ord)];
      line.resize(std::size_t(p.lineLen));
      for (int gp = 0; gp < p.lineLen; ++gp)
        line[std::size_t(gp)] = slice.read<Complex>(gatherAddr(p, parity, ord, gp));
      fft1d(line, inverse);
    }
    const double fftNs = cfg_.fftPointNs * double(myOwned) * double(p.lineLen) *
                         double(std::bit_width(unsigned(p.lineLen)) - 1);
    co_await machine_.sim().delay(sim::ns(fftNs));

    // --- scatter: return transformed segments to home blocks -------------
    for (int ord = 0; ord < myOwned; ++ord) {
      const int lid = ord * p.ringSize + myPos;
      const auto& line = lines[std::size_t(ord)];
      for (int s = 0; s < p.ringSize; ++s) {
        util::TorusCoord dstCoord = coord;
        dstCoord[d] = s;
        const int dstNode = util::torusIndex(dstCoord, shape);
        for (int dp0 = 0; dp0 < p.seg; dp0 += kEff) {
          const int cnt = std::min(kEff, p.seg - dp0);
          for (int i = 0; i < cnt; ++i) {
            Complex v = line[std::size_t(s * p.seg + dp0 + i)];
            std::memcpy(buf.data() + std::size_t(i) * kPointBytes, &v, kPointBytes);
          }
          net::NetworkClient::SendArgs args;
          args.dst = {dstNode, cfg_.fftSlice};
          args.counterId = scatterCtr;
          args.address = scatterAddr(p, parity, lid, dp0);
          args.payload = net::makePayload(buf.data(), std::size_t(cnt) * kPointBytes);
          co_await slice.send(args);
        }
      }
    }

    const std::uint64_t scatterExpected =
        std::uint64_t(p.linesPerBlock) * std::uint64_t(p.packetsPerSegment);
    {
      // Each owning ring peer returns its owned lines' segments to me.
      std::map<int, std::uint64_t> scatterBySource;
      if (recovery_.armed()) {
        for (int o = 0; o < p.ringSize; ++o) {
          const std::uint64_t owned = std::uint64_t(
              p.linesPerBlock / p.ringSize +
              (o < p.linesPerBlock % p.ringSize ? 1 : 0));
          if (owned == 0) continue;
          util::TorusCoord oc = coord;
          oc[d] = o;
          scatterBySource[util::torusIndex(oc, shape)] =
              round * owned * std::uint64_t(p.packetsPerSegment);
        }
      }
      co_await core::awaitCounted(slice, scatterCtr, round * scatterExpected,
                                  scatterBySource, recovery_);
    }

    // --- unpack the scatter region into the home block -------------------
    for (int lid = 0; lid < p.linesPerBlock; ++lid) {
      const int la = lid % b_[std::size_t(p.a)];
      const int lb = lid / b_[std::size_t(p.a)];
      for (int dp = 0; dp < p.seg; ++dp)
        blk[homeIndex(p, la, lb, dp)] =
            slice.read<Complex>(scatterAddr(p, parity, lid, dp));
    }
    co_await machine_.sim().delay(
        sim::ns(cfg_.packPointNs * double(p.linesPerBlock * p.seg)));
  }
}

}  // namespace anton::fft
