#include "fft/fft1d.hpp"

#include <bit>
#include <numbers>
#include <stdexcept>

namespace anton::fft {

void fft1d(std::span<Complex> a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0) return;
  if (!std::has_single_bit(n))
    throw std::invalid_argument("fft1d: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / double(len);
    const Complex wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex u = a[i + k];
        Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= double(n);
  }
}

std::vector<Complex> dftReference(std::span<const Complex> a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      double ang = sign * 2.0 * std::numbers::pi * double(k * t) / double(n);
      acc += a[t] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = inverse ? acc / double(n) : acc;
  }
  return out;
}

}  // namespace anton::fft
