// Latency explorer: interactive-style sweep of the communication fabric —
// end-to-end latency between arbitrary endpoints, payload sweeps, and
// all-reduce scaling across machine sizes. A compact tour of the model's
// calibrated behavior.
//
//   ./examples/latency_explorer
#include <iostream>

#include "core/allreduce.hpp"
#include "net/machine.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace anton;

namespace {

double oneWay(util::TorusShape shape, util::TorusCoord to, int dstClient,
              std::size_t payload) {
  sim::Simulator sim;
  net::Machine m(sim, shape);
  double done = -1;
  auto recv = [&]() -> sim::Task {
    co_await m.client({util::torusIndex(to, shape), dstClient})
        .waitCounter(0, 1);
    done = sim::toNs(sim.now());
  };
  sim.spawn(recv());
  net::NetworkClient::SendArgs args;
  args.dst = {util::torusIndex(to, shape), dstClient};
  args.counterId = 0;
  if (payload) args.payload = net::makeZeroPayload(payload);
  m.slice(0, 0).post(args);
  sim.run();
  return done;
}

}  // namespace

int main() {
  std::cout << "Anton communication-fabric latency explorer (8x8x8 torus)\n\n";

  util::TablePrinter t1({"destination", "payload", "latency (ns)"});
  struct Case {
    const char* name;
    util::TorusCoord to;
    int client;
    std::size_t payload;
  };
  Case cases[] = {
      {"same node, slice->slice", {0, 0, 0}, net::kSlice1, 0},
      {"+X neighbor slice (the 162 ns headline)", {1, 0, 0}, net::kSlice0, 0},
      {"+X neighbor HTIS", {1, 0, 0}, net::kHtis, 0},
      {"+X neighbor accumulation memory", {1, 0, 0}, net::kAccum0, 0},
      {"+Y neighbor slice", {0, 1, 0}, net::kSlice0, 0},
      {"4 hops along X", {4, 0, 0}, net::kSlice0, 0},
      {"opposite corner (12 hops)", {4, 4, 4}, net::kSlice0, 0},
      {"+X neighbor, 64 B payload", {1, 0, 0}, net::kSlice0, 64},
      {"+X neighbor, 256 B payload", {1, 0, 0}, net::kSlice0, 256},
  };
  for (const Case& c : cases) {
    double ns = oneWay({8, 8, 8}, c.to, c.client, c.payload);
    t1.addRow({c.name, std::to_string(c.payload) + " B",
               util::TablePrinter::num(ns, 1)});
  }
  t1.print(std::cout);

  std::cout << "\nall-reduce scaling (32-byte payload):\n";
  util::TablePrinter t2({"machine", "nodes", "latency (us)"});
  for (util::TorusShape s : {util::TorusShape{4, 4, 4}, util::TorusShape{8, 8, 4},
                             util::TorusShape{8, 8, 8}}) {
    sim::Simulator sim;
    net::Machine m(sim, s);
    core::DimOrderedAllReduce red(m);
    auto task = [&](int node) -> sim::Task {
      std::vector<double> in(4, 1.0);
      co_await red.run(node, std::move(in), nullptr);
    };
    for (int n = 0; n < m.numNodes(); ++n) sim.spawn(task(n));
    sim.run();
    t2.addRow({s.str(), std::to_string(s.size()),
               util::TablePrinter::num(sim::toUs(sim.now()), 2)});
  }
  t2.print(std::cout);
  std::cout << "\n(paper anchors: 162 ns neighbor latency; 1.77 us 512-node "
               "32 B all-reduce)\n";
  return 0;
}
