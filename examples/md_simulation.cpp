// Run a full Anton-mapped MD simulation of a synthetic solvated-protein
// system and report physics + per-step timing, side by side with the host
// reference engine.
//
//   ./examples/md_simulation [atoms] [steps]
#include <cstdlib>
#include <iostream>

#include "md/anton_app.hpp"

using namespace anton;

int main(int argc, char** argv) {
  int atoms = argc > 1 ? std::atoi(argv[1]) : 1536;
  int steps = argc > 2 ? std::atoi(argv[2]) : 10;

  std::cout << "Building a " << atoms << "-atom solvated-protein system...\n";
  md::SyntheticSystemParams sp;
  sp.targetAtoms = atoms;
  sp.temperature = 0.9;
  md::MDSystem sys = md::buildSyntheticSystem(sp);
  std::cout << "  box " << sys.box << ", " << sys.bonds.size() << " bonds, "
            << sys.angles.size() << " angles, " << sys.dihedrals.size()
            << " dihedrals\n";

  sim::Simulator sim;
  net::Machine machine(sim, {4, 4, 4});
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.thermostatTau = 0.05;
  cfg.targetTemperature = 1.0;
  cfg.migrationInterval = 4;
  cfg.homeBoxMarginFrac = 0.10;

  std::cout << "Mapping onto a 4x4x4 Anton machine (64 nodes)...\n";
  md::AntonMdApp app(machine, sys, cfg);

  md::EngineParams ep;
  ep.force = cfg.force;
  ep.ewald = cfg.ewald;
  ep.dt = cfg.dt;
  ep.longRangeInterval = cfg.longRangeInterval;
  ep.thermostatTau = cfg.thermostatTau;
  ep.targetTemperature = cfg.targetTemperature;
  ep.thermostatInterval = cfg.thermostatInterval;
  md::ReferenceEngine ref(sys, ep);

  std::cout << "\nstep  type          sim-time(us)  T(anton)  T(reference)\n";
  for (int s = 0; s < steps; ++s) {
    app.runSteps(1);
    ref.step();
    const md::StepTiming& t = app.lastStep();
    std::string kind = t.migration    ? "migration"
                       : t.longRange ? "long-range"
                                     : "range-limited";
    std::printf("%4d  %-13s %10.2f  %8.4f  %8.4f\n", t.stepNumber, kind.c_str(),
                t.totalUs, app.gatherSystem().temperature(),
                ref.system().temperature());
  }

  // Trajectory agreement with the reference engine.
  md::MDSystem got = app.gatherSystem();
  const md::MDSystem& expect = ref.system();
  double maxErr = 0;
  for (int i = 0; i < got.numAtoms(); ++i) {
    maxErr = std::max(maxErr, expect
                                  .minImage(got.positions[std::size_t(i)],
                                            expect.positions[std::size_t(i)])
                                  .norm());
  }
  std::cout << "\nmax position deviation from the host reference engine: "
            << maxErr << " sigma (fixed-point accumulation tolerance)\n";

  const net::MachineStats& st = machine.stats();
  std::cout << "traffic: " << st.packetsInjected << " packets injected, "
            << st.packetsDelivered << " delivered, "
            << st.wireBytes / 1024 << " KB on the torus links\n";
  return maxErr < 0.05 ? 0 : 1;
}
