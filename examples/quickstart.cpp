// Quickstart: build a small Anton machine, send counted remote writes, use
// hardware multicast, and run a global all-reduce — the paper's three core
// communication primitives — then run the same configuration as a
// simulation-service job (DESIGN.md §9).
//
//   ./examples/quickstart
#include <iostream>
#include <vector>

#include "core/allreduce.hpp"
#include "core/multicast.hpp"
#include "net/machine.hpp"
#include "plan_registry.hpp"
#include "serve/job_spec.hpp"
#include "serve/runner.hpp"
#include "sim/simulator.hpp"
#include "verify/snapshot.hpp"

using namespace anton;

int main() {
  // The quickstart configuration comes from the shared job-spec factory —
  // the same spec the MD example job, the service and the benches build.
  // A 4x4x4 torus: 64 nodes, each with 4 processing slices, an HTIS, and
  // two accumulation memories.
  serve::JobSpec spec = serve::quickstartMdSpec();
  sim::Simulator sim;
  net::Machine machine(sim, spec.shape);
  const int nodes = machine.numNodes();

  // --- 1. counted remote write: push data + synchronization in one packet.
  std::cout << "1) counted remote write\n";
  auto receiver = [&]() -> sim::Task {
    net::ProcessingSlice& me = machine.slice(1, 0);
    // Poll the synchronization counter until both packets have committed.
    co_await me.waitCounter(/*counter=*/0, /*target=*/2);
    std::cout << "   node 1 received both words: " << me.read<double>(0)
              << " and " << me.read<double>(8) << " at t="
              << sim::toNs(sim.now()) << " ns\n";
  };
  auto sender = [&]() -> sim::Task {
    double values[2] = {3.14, 2.71};
    for (int i = 0; i < 2; ++i) {
      net::NetworkClient::SendArgs args;
      args.dst = {1, net::kSlice0};          // neighbor node, slice 0
      args.counterId = 0;                    // counted write
      args.address = std::uint32_t(i) * 8;   // preallocated receive slot
      args.payload = net::makePayload(&values[i], sizeof(double));
      co_await machine.slice(0, 0).send(args);
    }
  };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.run();

  // --- 2. hardware multicast: one injected packet fans out in the network.
  std::cout << "2) hardware multicast to 5 HTIS units\n";
  core::PatternAllocator patterns(machine);
  std::vector<net::ClientAddr> dests;
  for (int n : {1, 4, 16, 17, 20}) dests.push_back({n, net::kHtis});
  int pattern = patterns.install(/*srcNode=*/0, dests);

  machine.resetStats();
  net::NetworkClient::SendArgs mc;
  mc.multicastPattern = pattern;
  mc.counterId = 3;
  double payload = 42.0;
  mc.payload = net::makePayload(&payload, sizeof payload);
  machine.slice(0, 1).post(mc);
  sim.run();
  std::cout << "   1 packet injected, " << machine.stats().packetsDelivered
            << " delivered, " << machine.stats().linkTraversals
            << " link crossings (multicast forked "
            << machine.stats().multicastForks << "x in the network)\n";

  // --- 3. dimension-ordered all-reduce across all 64 nodes.
  std::cout << "3) global all-reduce (32 bytes, all " << nodes
            << " nodes)\n";
  core::DimOrderedAllReduce allReduce(machine);
  std::vector<std::vector<double>> results;
  results.resize(std::size_t(nodes));
  auto reduceTask = [&](int node) -> sim::Task {
    std::vector<double> in(4, double(node));  // contribute [node, node, ...]
    co_await allReduce.run(node, std::move(in), &results[std::size_t(node)]);
  };
  sim::Time t0 = sim.now();
  for (int n = 0; n < nodes; ++n) sim.spawn(reduceTask(n));
  sim.run();
  std::cout << "   every node computed sum = " << results[0][0]
            << " (expected " << (nodes - 1) * nodes / 2 << ") in "
            << sim::toUs(sim.now() - t0) << " us\n";

  // --- 4. the same configuration as a simulation-service job: the spec is
  // declarative, its communication plan is statically verifiable, and the
  // result is canonical JSON a simd_server would cache under the plan key.
  std::cout << "4) run the quickstart MD job through the service runner\n";
  verify::CommPlan plan = serve::planForSpec(spec);
  sim::Simulator arena;
  serve::RunOutcome out = serve::runJob(spec, arena);
  std::cout << "   plan key " << verify::planKeyHex(plan) << ", job key "
            << util::hex64(serve::jobKey(spec, plan)) << "\n"
            << "   " << out.resultJson << "\n";

  std::cout << "\nDone. Explore bench/ for the paper's tables and figures,\n"
               "and tools/simd_server for the job-server daemon.\n";
  return 0;
}
