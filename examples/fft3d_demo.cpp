// Distributed 3D FFT demo: transform a plane wave on a simulated Anton
// machine with fine-grained counted remote writes, verify the spectrum, and
// compare the paper-faithful one-point-per-packet pattern against batched
// packets.
//
//   ./examples/fft3d_demo
#include <cmath>
#include <iostream>
#include <numbers>

#include "fft/distributed.hpp"
#include "fft/grid3d.hpp"

using namespace anton;

namespace {

double runTransform(int pointsPerPacket, bool report) {
  sim::Simulator sim;
  net::Machine machine(sim, {4, 4, 4});
  fft::DistributedFftConfig cfg;
  cfg.pointsPerPacket = pointsPerPacket;
  fft::DistributedFft3D dist(machine, 16, 16, 16, cfg);

  // Load a plane wave exp(i k.r) with k = (3, 5, 2).
  const int n = 16, kx = 3, ky = 5, kz = 2;
  std::vector<fft::Complex> grid(n * n * n);
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        double ph = 2.0 * std::numbers::pi * (kx * x + ky * y + kz * z) / n;
        grid[std::size_t(x + n * (y + n * z))] = {std::cos(ph), std::sin(ph)};
      }
  dist.loadGrid(grid);

  auto task = [&](int node) -> sim::Task { co_await dist.run(node, false); };
  sim::Time t0 = sim.now();
  for (int node = 0; node < machine.numNodes(); ++node) sim.spawn(task(node));
  sim.run();
  double us = sim::toUs(sim.now() - t0);

  if (report) {
    auto out = dist.extractGrid();
    double peak = 0;
    int px = 0, py = 0, pz = 0;
    for (int z = 0; z < n; ++z)
      for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
          double mag = std::abs(out[std::size_t(x + n * (y + n * z))]);
          if (mag > peak) {
            peak = mag;
            px = x;
            py = y;
            pz = z;
          }
        }
    std::cout << "  spectrum peak at (" << px << "," << py << "," << pz
              << ") magnitude " << peak << " (expected (" << kx << "," << ky
              << "," << kz << ") magnitude " << n * n * n << ")\n";
    std::cout << "  packets per node per transform: "
              << dist.packetsPerNodePerTransform(0) << ", machine total "
              << machine.stats().packetsInjected << "\n";
  }
  return us;
}

}  // namespace

int main() {
  std::cout << "Distributed 16^3 FFT on a 4x4x4 Anton machine\n\n";
  std::cout << "one grid point per packet (paper-faithful, SC10 IV-B3):\n";
  double fine = runTransform(1, true);
  std::cout << "  simulated time: " << fine << " us\n\n";

  std::cout << "batched packets (up to 16 points):\n";
  double batched = runTransform(0, true);
  std::cout << "  simulated time: " << batched << " us\n\n";

  std::cout << "fine-grained costs only "
            << (fine / batched) << "x the batched transform on this fabric — "
               "the paper's point that per-message overhead is low enough to "
               "send single grid points.\n";
  return 0;
}
