// Beyond MD: counted remote writes for a generic domain-decomposition code.
//
// SC10 §VI argues the paradigm transfers to any application where "a
// processor associated with a subdomain must wait to receive data from
// processors associated with neighboring subdomains": this example solves a
// 3D heat-diffusion stencil on the simulated Anton machine. Each node owns a
// block of the global grid; every iteration it pushes its six boundary faces
// directly into the neighbors' preallocated halo slots as counted remote
// writes, polls one counter until all six faces have arrived, and relaxes
// its block. No barriers, no handshakes — inter-iteration data dependencies
// stand in for synchronization exactly as in the MD code.
//
//   ./examples/stencil_heat [iterations]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "net/machine.hpp"
#include "sim/simulator.hpp"

using namespace anton;

namespace {

constexpr int kB = 8;           // block extent per node per dimension
constexpr double kAlpha = 0.1;  // diffusion coefficient

struct NodeGrid {
  std::vector<double> cells;    // kB^3, x fastest
  double& at(int x, int y, int z) {
    return cells[std::size_t(x + kB * (y + kB * z))];
  }
};

struct App {
  sim::Simulator sim;
  net::Machine machine;
  util::TorusShape shape{4, 4, 4};
  std::vector<NodeGrid> grid;
  std::vector<NodeGrid> next;
  int iterations;
  double finishUs = 0;

  explicit App(int iters)
      : machine(sim, {4, 4, 4}),
        grid(64),
        next(64),
        iterations(iters) {
    for (auto& g : grid) g.cells.assign(kB * kB * kB, 0.0);
    for (auto& g : next) g.cells.assign(kB * kB * kB, 0.0);
    // Hot spot in the middle of node (2,2,2).
    grid[std::size_t(util::torusIndex({2, 2, 2}, shape))].at(4, 4, 4) = 1000.0;
  }

  // Halo layout in each node's slice-0 memory: 6 faces x kB^2 doubles.
  static std::uint32_t faceAddr(int face) {
    return std::uint32_t(face) * kB * kB * 8;
  }

  // Pull one face of the local block into a contiguous buffer.
  std::vector<double> packFace(int node, int dim, int sign) {
    std::vector<double> out(kB * kB);
    int idx = 0;
    for (int b = 0; b < kB; ++b)
      for (int a = 0; a < kB; ++a) {
        int c[3];
        c[dim] = sign > 0 ? kB - 1 : 0;
        c[(dim + 1) % 3] = a;
        c[(dim + 2) % 3] = b;
        out[std::size_t(idx++)] = grid[std::size_t(node)].at(c[0], c[1], c[2]);
      }
    return out;
  }

  sim::Task nodeTask(int node) {
    net::ProcessingSlice& me = machine.slice(node, 0);
    util::TorusCoord coord = util::torusCoordOf(node, shape);
    const int facePackets = int((kB * kB * 8 + net::kMaxPayloadBytes - 1) /
                                net::kMaxPayloadBytes);
    std::uint64_t expected = 0;

    for (int iter = 0; iter < iterations; ++iter) {
      // Push all six faces into the neighbors' preallocated halo slots.
      for (int dim = 0; dim < 3; ++dim) {
        for (int sign : {+1, -1}) {
          int nb = util::torusIndex(util::torusNeighbor(coord, dim, sign, shape),
                                    shape);
          // The receiver stores my face under the *opposite* face index.
          int slot = dim * 2 + (sign > 0 ? 1 : 0);
          std::vector<double> face = packFace(node, dim, sign);
          const auto* bytes = reinterpret_cast<const std::byte*>(face.data());
          std::size_t total = face.size() * 8;
          for (std::size_t off = 0; off < total; off += net::kMaxPayloadBytes) {
            std::size_t n = std::min(net::kMaxPayloadBytes, total - off);
            net::NetworkClient::SendArgs args;
            args.dst = {nb, net::kSlice0};
            args.counterId = 0;
            args.address = faceAddr(slot) + std::uint32_t(off);
            args.payload = net::makePayload(bytes + off, n);
            co_await me.send(args);
          }
        }
      }

      // Counted synchronization: six faces' worth of packets per iteration.
      expected += std::uint64_t(6 * facePackets);
      co_await me.waitCounter(0, expected);

      // Jacobi relaxation using local cells + received halos.
      auto halo = [&](int face, int a, int b) {
        return me.read<double>(faceAddr(face) +
                               std::uint32_t(a + kB * b) * 8u);
      };
      NodeGrid& g = grid[std::size_t(node)];
      NodeGrid& n2 = next[std::size_t(node)];
      for (int z = 0; z < kB; ++z)
        for (int y = 0; y < kB; ++y)
          for (int x = 0; x < kB; ++x) {
            int c[3] = {x, y, z};
            double sum = 0;
            for (int dim = 0; dim < 3; ++dim) {
              for (int sign : {+1, -1}) {
                int cc[3] = {c[0], c[1], c[2]};
                cc[dim] += sign;
                if (cc[dim] >= 0 && cc[dim] < kB) {
                  sum += g.at(cc[0], cc[1], cc[2]);
                } else {
                  int face = dim * 2 + (sign > 0 ? 0 : 1);
                  sum += halo(face, c[(dim + 1) % 3], c[(dim + 2) % 3]);
                }
              }
            }
            n2.at(x, y, z) = g.at(x, y, z) + kAlpha * (sum - 6 * g.at(x, y, z));
          }
      std::swap(g.cells, n2.cells);
      // Compute cost of the 512-cell relaxation on the geometry cores.
      co_await sim.delay(sim::ns(2.0 * kB * kB * kB));
    }
    finishUs = std::max(finishUs, sim::toUs(sim.now()));
  }

  double totalHeat() const {
    double t = 0;
    for (const auto& g : grid)
      for (double v : g.cells) t += v;
    return t;
  }
};

}  // namespace

int main(int argc, char** argv) {
  int iters = argc > 1 ? std::atoi(argv[1]) : 50;
  std::cout << "3D heat diffusion on a 4x4x4 Anton machine (32^3 grid, "
            << iters << " iterations)\n";
  App app(iters);
  double before = app.totalHeat();
  for (int n = 0; n < 64; ++n) app.sim.spawn(app.nodeTask(n));
  app.sim.run();

  double after = app.totalHeat();
  double hot = app.grid[std::size_t(util::torusIndex({2, 2, 2}, app.shape))]
                   .at(4, 4, 4);
  std::cout << "  heat conserved: " << before << " -> " << after
            << " (periodic box)\n"
            << "  hot spot decayed to " << hot << "\n"
            << "  simulated time: " << app.finishUs << " us ("
            << app.finishUs / iters << " us per iteration)\n"
            << "  traffic: " << app.machine.stats().packetsInjected
            << " packets, all counted remote writes, zero barriers\n";
  bool ok = std::abs(after - before) < 1e-6 * before && hot < 1000.0;
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
