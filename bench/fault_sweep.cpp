// Reliability sweep: link bit-error rate vs. end-to-end latency and retry
// overhead, on the Fig. 5 single-hop ping-pong and on the 8x8x8 32-byte
// dimension-ordered all-reduce. Also demonstrates link-outage handling
// (stall vs. degraded-mode reroute), the counted-write watchdog, and — with
// a retransmit cap tight enough that links actually fail — the end-to-end
// erasure-recovery path on armed collectives (FFT forward+inverse pair,
// dimension-ordered all-reduce) and on full MD steps: every operation must
// complete via resend (zero aborts), bit-identically, and the sweep prices
// the recovery in us. Emits BENCH_fault.json, BENCH_fault_collectives.json
// and BENCH_fault_md.json; the zero-BER rows must land exactly on the
// calibrated fault-free anchors (162 ns ping, Table 2 all-reduce, the
// recovery-free pair/step times).
#include "bench_common.hpp"

#include <vector>

#include "core/allreduce.hpp"
#include "core/recovery.hpp"
#include "core/watchdog.hpp"
#include "fault/plan.hpp"
#include "fault/report.hpp"
#include "fft/distributed.hpp"
#include "fft/grid3d.hpp"
#include "md/anton_app.hpp"
#include "sim/rng.hpp"
#include "trace/activity.hpp"

using namespace anton;

namespace {

struct SweepRow {
  double ber = 0.0;
  double pingMeanNs = 0.0;
  double pingMaxNs = 0.0;
  std::uint64_t pingRetries = 0;
  double allreduceUs = 0.0;
  std::uint64_t allreduceRetries = 0;
};

// `trials` sequential 1-hop pings on one machine under the given BER; the
// plan's RNG advances across pings, so each sample draws fresh faults.
void pingSeries(double ber, int trials, SweepRow& row) {
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  fault::FaultPlan plan(
      {.seed = 0xfa17000 + std::uint64_t(ber * 1e9), .bitErrorRate = ber});
  m.setFaultModel(&plan);
  net::ClientAddr src{0, net::kSlice0};
  net::ClientAddr dst{util::torusIndex({1, 0, 0}, m.shape()), net::kSlice0};
  double sum = 0.0, worst = 0.0;
  for (int i = 0; i < trials; ++i) {
    double ns = bench::oneWayLatencyNs(m, src, dst, 0, /*inOrder=*/true);
    sum += ns;
    worst = std::max(worst, ns);
  }
  row.pingMeanNs = sum / trials;
  row.pingMaxNs = worst;
  row.pingRetries = m.stats().crcRetransmits;
}

void allReduceSeries(double ber, SweepRow& row) {
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  fault::FaultPlan plan(
      {.seed = 0xa11'4ed0 + std::uint64_t(ber * 1e9), .bitErrorRate = ber});
  m.setFaultModel(&plan);
  core::DimOrderedAllReduce red(m);
  double done = 0.0;
  auto task = [&](int node) -> sim::Task {
    std::vector<double> in(4, double(node));
    co_await red.run(node, std::move(in), nullptr);
    done = std::max(done, sim::toUs(m.sim().now()));
  };
  double start = sim::toUs(sim.now());
  for (int n = 0; n < m.numNodes(); ++n) sim.spawn(task(n));
  sim.run();
  row.allreduceUs = done - start;
  row.allreduceRetries = m.stats().crcRetransmits;
}

// Outage on node 0's X+ link: without degraded mode the (1,1,0) ping stalls
// at the adapter for the whole window; with it the packet leaves Y-first.
double outagePingNs(bool reroute, std::uint64_t& reroutes) {
  sim::Simulator sim;
  net::MachineConfig cfg;
  cfg.faultReroute = reroute;
  net::Machine m(sim, {8, 8, 8}, cfg);
  fault::FaultPlan plan;
  plan.addLinkOutage(0, /*dim=*/0, /*sign=*/+1, 0, sim::us(50));
  m.setFaultModel(&plan);
  double ns = bench::oneWayLatencyNs(
      m, {0, net::kSlice0},
      {util::torusIndex({1, 1, 0}, m.shape()), net::kSlice0}, 0,
      /*inOrder=*/true);
  reroutes = m.stats().faultReroutes;
  return ns;
}

// The deadline must exceed every natural wait, and the resend budget must
// absorb the *cascade*: a waiter whose upstream sender is itself recovering
// times out spuriously (nothing in the registry to replay), and each such
// round burns budget. Deep collectives at drop-inducing BERs need patience
// of several deadlines, not several drops.
core::RecoveryHooks armedHooks(core::DropRegistry& reg,
                               core::RecoveryStats& stats) {
  core::RecoveryHooks hooks;
  hooks.registry = &reg;
  hooks.config.timeout = sim::us(1000);
  hooks.config.maxResends = 10;
  hooks.config.resendBackoff = sim::us(0.5);
  hooks.stats = &stats;
  return hooks;
}

struct CollectiveRow {
  double ber = 0.0;
  double fftPairUs = 0.0;
  double allreduceUs = 0.0;
  std::uint64_t drops = 0;
  std::uint64_t resends = 0;
  std::uint64_t linkFailures = 0;
  std::uint64_t hardFailures = 0;
  bool correct = true;
};

// Armed collectives on a lossy fabric with a retransmit cap of ONE: a
// forward+inverse FFT pair and the 8x8x8 32-byte all-reduce, both with
// erasure recovery wired into their counted waits. Any dropped gather,
// scatter, stage or result-fan-out replica must be diagnosed and replayed —
// and the results must stay bit-identical to the fault-free run.
CollectiveRow collectivesSeries(double ber) {
  CollectiveRow row;
  row.ber = ber;

  {  // FFT forward+inverse pair, 8^3 on {2,2,2} (the fft-pair plan shape).
    sim::Simulator sim;
    net::Machine m(sim, {2, 2, 2});
    fault::FaultPlan plan({.seed = 0xfff7'c011 + std::uint64_t(ber * 1e9),
                           .bitErrorRate = ber,
                           .maxRetransmits = 1});
    m.setFaultModel(&plan);
    core::DropRegistry reg(m);
    core::RecoveryStats stats;
    fft::DistributedFft3D dist(m, 8, 8, 8, {});
    dist.setRecovery(armedHooks(reg, stats));

    fft::Grid3D ref(8, 8, 8);
    sim::Rng rng(29);
    for (auto& x : ref.data()) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    dist.loadGrid(ref.data());
    auto task = [](fft::DistributedFft3D& d, int n) -> sim::Task {
      co_await d.run(n, false);
      co_await d.run(n, true);
    };
    for (int n = 0; n < m.numNodes(); ++n) sim.spawn(task(dist, n));
    sim.run();
    row.fftPairUs = sim::toUs(sim.now());

    fft::fft3d(ref, false);
    fft::fft3d(ref, true);
    auto got = dist.extractGrid();
    for (std::size_t i = 0; i < got.size(); ++i)
      if (got[i] != ref.data()[i]) row.correct = false;
    row.drops += reg.dropsObserved();
    row.resends += stats.resends;
    row.linkFailures += m.stats().linkFailures;
    row.hardFailures += stats.hardFailures;
  }

  {  // 8x8x8 dimension-ordered all-reduce, 32-byte operand.
    sim::Simulator sim;
    net::Machine m(sim, {8, 8, 8});
    fault::FaultPlan plan({.seed = 0xa11'4ed1 + std::uint64_t(ber * 1e9),
                           .bitErrorRate = ber,
                           .maxRetransmits = 1});
    m.setFaultModel(&plan);
    core::DropRegistry reg(m);
    core::RecoveryStats stats;
    core::DimOrderedAllReduce red(m);
    red.setRecovery(armedHooks(reg, stats));

    const int n = m.numNodes();
    std::vector<std::vector<double>> out;
    out.resize(std::size_t(n));
    auto task = [](core::DimOrderedAllReduce& r, int node,
                   std::vector<double> in, std::vector<double>* o) -> sim::Task {
      co_await r.run(node, std::move(in), o);
    };
    double expect = 0.0;
    for (int node = 0; node < n; ++node) {
      std::vector<double> in(4, double(node + 1));  // exact in double
      expect += in[0];
      sim.spawn(task(red, node, std::move(in), &out[std::size_t(node)]));
    }
    sim.run();
    row.allreduceUs = sim::toUs(sim.now());

    for (int node = 0; node < n; ++node)
      for (double v : out[std::size_t(node)])
        if (v != expect) row.correct = false;
    row.drops += reg.dropsObserved();
    row.resends += stats.resends;
    row.linkFailures += m.stats().linkFailures;
    row.hardFailures += stats.hardFailures;
  }
  return row;
}

struct MdRow {
  double ber = 0.0;
  int stepsDone = 0;
  double stepUs = 0.0;  ///< mean over steps
  std::uint64_t linkFailures = 0;
  std::uint64_t drops = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t resends = 0;
  std::uint64_t hardFailures = 0;
  double linkfailBusyUs = 0.0;  ///< "linkfail" trace time, all 6 directions
};

// Full MD steps on a lossy 4x4x4 machine with a retransmit cap of ONE: at
// these BERs traversals regularly exhaust the cap, the link is declared
// failed and the packet replica is erased. With erasure recovery armed the
// step's counted waits time out, diagnose the short sources and re-issue
// the lost packets from the drop registry — so every step still completes,
// at a measurable us-per-step price.
MdRow mdRecoverySeries(double ber, int steps) {
  MdRow row;
  row.ber = ber;
  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  fault::FaultPlan plan({.seed = 0x3d5eed + std::uint64_t(ber * 1e9),
                         .bitErrorRate = ber,
                         .maxRetransmits = 1});
  m.setFaultModel(&plan);
  trace::ActivityTrace tr;
  m.setTrace(&tr);

  md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.temperature = 0.8;
  sp.seed = 11;
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  // The full superstep mix: long-range (spread/FFT/potential) and migration
  // phases included — every counted wait of the step now has a resend
  // story, so drops anywhere must still complete the step. (The FIFO
  // migration *payloads* remain the documented unrecoverable lane; at these
  // BERs and seeds none of their traversals exhausts the cap.)
  cfg.longRangeInterval = 2;
  cfg.migrationInterval = 2;
  // The deadline must exceed every natural wait in a step (or spurious
  // timeouts fire with nothing to resend and perturb the zero-BER anchor),
  // but each drop on the critical path stalls its waiter for one full
  // deadline — and every node downstream of a stalled sender burns resend
  // budget on empty rounds. A short deadline with a deep budget keeps the
  // cascade cheap AND survivable at the top BER.
  cfg.recoveryTimeoutUs = 1000.0;
  cfg.recoveryMaxResends = 40;
  cfg.recoveryBackoffUs = 0.5;
  md::AntonMdApp app(m, md::buildSyntheticSystem(sp), cfg);
  app.runSteps(steps);

  row.stepsDone = app.stepsDone();
  for (const md::StepTiming& t : app.stepTimings()) row.stepUs += t.totalUs;
  row.stepUs /= double(steps);
  row.linkFailures = m.stats().linkFailures;
  row.drops = app.dropsObserved();
  row.timeouts = app.recoveryStats().timeouts;
  row.resends = app.recoveryStats().resends;
  row.hardFailures = app.recoveryStats().hardFailures;
  int linkfail = tr.kind("linkfail");
  for (const char* dir : {"link.X+", "link.X-", "link.Y+", "link.Y-",
                          "link.Z+", "link.Z-"})
    row.linkfailBusyUs +=
        sim::toUs(tr.busyTime(tr.unit(dir), linkfail, 0, sim.now()));
  return row;
}

}  // namespace

int main() {
  bench::banner("Fault sweep: bit-error rate vs. latency and retry overhead");
  const int kTrials = 400;
  const double kBers[] = {0.0, 1e-6, 1e-5, 1e-4, 1e-3};

  util::TablePrinter table({"BER", "ping mean (ns)", "ping max (ns)",
                            "ping retries", "allreduce (us)",
                            "allreduce retries"});
  util::CsvWriter csv("fault_sweep.csv");
  csv.row("ber", "ping_mean_ns", "ping_max_ns", "ping_retries",
          "allreduce_us", "allreduce_retries");
  bench::JsonReporter json("fault");

  bool ok = true;
  std::vector<SweepRow> rows;
  for (double ber : kBers) {
    SweepRow row;
    row.ber = ber;
    pingSeries(ber, kTrials, row);
    allReduceSeries(ber, row);
    rows.push_back(row);

    std::ostringstream b;
    b << ber;
    table.addRow({b.str(), util::TablePrinter::num(row.pingMeanNs, 1),
                  util::TablePrinter::num(row.pingMaxNs, 1),
                  std::to_string(row.pingRetries),
                  util::TablePrinter::num(row.allreduceUs, 2),
                  std::to_string(row.allreduceRetries)});
    csv.row(ber, row.pingMeanNs, row.pingMaxNs, row.pingRetries,
            row.allreduceUs, row.allreduceRetries);
    // The paper's fabric is fault-free: the zero-BER model values are the
    // reference, so nonzero-BER deviation is the measured fault overhead.
    json.record("ping_mean_ns_ber" + b.str(), 162.0, row.pingMeanNs, "ns");
    json.record("allreduce_us_ber" + b.str(), rows.front().allreduceUs,
                row.allreduceUs, "us");
  }
  table.print(std::cout);

  // Sanity: idle fault machinery is free; heavy BER shows retries, no hangs.
  if (rows.front().pingMeanNs != 162.0 || rows.front().pingRetries != 0)
    ok = false;
  if (rows.back().pingRetries == 0 || rows.back().allreduceRetries == 0)
    ok = false;

  // Fault-free (1,1,0) reference for the outage comparison.
  double cleanNs;
  {
    sim::Simulator sim;
    net::Machine m(sim, {8, 8, 8});
    cleanNs = bench::oneWayLatencyNs(
        m, {0, net::kSlice0},
        {util::torusIndex({1, 1, 0}, m.shape()), net::kSlice0}, 0,
        /*inOrder=*/true);
  }
  std::uint64_t reroutes = 0;
  double stallNs = outagePingNs(false, reroutes);
  std::uint64_t rerouted = 0;
  double rerouteNs = outagePingNs(true, rerouted);
  std::cout << "\n50 us X+ outage, (1,1,0) ping: fault-free = "
            << util::TablePrinter::num(cleanNs, 1) << " ns, stall mode = "
            << util::TablePrinter::num(stallNs / 1000.0, 2)
            << " us, degraded-mode reroute = "
            << util::TablePrinter::num(rerouteNs, 1) << " ns (" << rerouted
            << " reroute)\n";
  json.record("outage_reroute_ns", cleanNs, rerouteNs, "ns");
  if (rerouted == 0 || rerouteNs >= stallNs) ok = false;

  // Watchdog: a counted write that never completes produces a diagnostic.
  {
    sim::Simulator sim;
    net::Machine m(sim, {4, 4, 4});
    net::NetworkClient& dst = m.client({0, net::kSlice0});
    core::WatchdogReport report;
    auto waiter = [&]() -> sim::Task {
      core::CountedWriteWatchdog wd(dst, 0, sim::us(5));
      wd.expectFrom(1, 2);
      wd.expectFrom(2, 2);
      report = co_await wd.wait(4);
    };
    sim.spawn(waiter());
    net::NetworkClient::SendArgs args;
    args.dst = dst.addr();
    args.counterId = 0;
    m.client({1, net::kSlice0}).post(args);  // 1 of the 4 expected packets
    sim.run();
    std::cout << "watchdog: " << report.describe() << "\n";
    if (!report.timedOut || report.arrived != 1) ok = false;
  }

  // Armed collectives: BER sweep with a retransmit cap of 1 — the FFT and
  // all-reduce phases must complete bit-identically via resend.
  bench::banner("Collectives under link failure: erasure recovery cost");
  {
    const double kCollBers[] = {0.0, 1e-5, 1e-4};
    util::TablePrinter cTable({"BER", "fft pair (us)", "allreduce (us)",
                               "drops", "resends", "link fails",
                               "hard fails"});
    util::CsvWriter cCsv("fault_collectives_sweep.csv");
    cCsv.row("ber", "fft_pair_us", "allreduce_us", "drops", "resends",
             "link_failures", "hard_failures");
    bench::JsonReporter cJson("fault_collectives");

    double baseFftUs = 0.0, baseRedUs = 0.0;
    for (double ber : kCollBers) {
      CollectiveRow row = collectivesSeries(ber);
      if (ber == 0.0) {
        baseFftUs = row.fftPairUs;
        baseRedUs = row.allreduceUs;
      }
      std::ostringstream b;
      b << ber;
      cTable.addRow({b.str(), util::TablePrinter::num(row.fftPairUs, 2),
                     util::TablePrinter::num(row.allreduceUs, 2),
                     std::to_string(row.drops), std::to_string(row.resends),
                     std::to_string(row.linkFailures),
                     std::to_string(row.hardFailures)});
      cCsv.row(ber, row.fftPairUs, row.allreduceUs, row.drops, row.resends,
               row.linkFailures, row.hardFailures);
      // As in the MD sweep, the fault-free time is the reference: a lossy
      // row's deviation is the recovery (timeout + replay) cost at that BER.
      cJson.record("fft_pair_us_ber" + b.str(), baseFftUs, row.fftPairUs,
                   "us");
      cJson.record("allreduce_armed_us_ber" + b.str(), baseRedUs,
                   row.allreduceUs, "us");

      // Recovery must never abort, and never change a single bit of the
      // results. Drops at the top BER prove the cap actually exhausts.
      if (!row.correct || row.hardFailures != 0) ok = false;
      if (ber == 0.0 && (row.drops != 0 || row.resends != 0)) ok = false;
      if (ber == kCollBers[2] &&
          (row.drops == 0 || row.resends == 0 || row.linkFailures == 0))
        ok = false;
    }
    cTable.print(std::cout);
    std::cout << "(retransmit cap 1; armed FFT + all-reduce, bit-identical "
                 "results at every BER)\n";
  }

  // MD-step erasure recovery: BER/outage sweep with a retransmit cap of 1.
  bench::banner("MD steps under link failure: erasure recovery cost");
  {
    const int kSteps = 4;
    const double kMdBers[] = {0.0, 5e-5, 2e-4};
    util::TablePrinter mdTable({"BER", "step (us)", "recovery (us/step)",
                                "drops", "timeouts", "resends", "link fails",
                                "hard fails"});
    util::CsvWriter mdCsv("fault_md_sweep.csv");
    mdCsv.row("ber", "step_us", "recovery_us_per_step", "drops", "timeouts",
              "resends", "link_failures", "hard_failures");
    bench::JsonReporter mdJson("fault_md");

    double baseStepUs = 0.0;
    for (double ber : kMdBers) {
      MdRow row = mdRecoverySeries(ber, kSteps);
      if (ber == 0.0) baseStepUs = row.stepUs;
      double recoveryUs = row.stepUs - baseStepUs;

      std::ostringstream b;
      b << ber;
      mdTable.addRow({b.str(), util::TablePrinter::num(row.stepUs, 2),
                      util::TablePrinter::num(recoveryUs, 2),
                      std::to_string(row.drops), std::to_string(row.timeouts),
                      std::to_string(row.resends),
                      std::to_string(row.linkFailures),
                      std::to_string(row.hardFailures)});
      mdCsv.row(ber, row.stepUs, recoveryUs, row.drops, row.timeouts,
                row.resends, row.linkFailures, row.hardFailures);
      // The recovery-free step time is the reference: the deviation of a
      // lossy row IS the relative recovery cost of that BER.
      mdJson.record("md_step_us_ber" + b.str(), baseStepUs, row.stepUs, "us");

      // Every step must complete exactly — recovery, not abort, is the
      // contract. Drops at the top BER prove the cap actually exhausts.
      if (row.stepsDone != kSteps || row.hardFailures != 0) ok = false;
      if (ber == 0.0 && (row.drops != 0 || row.timeouts != 0)) ok = false;
      if (ber == kMdBers[2] &&
          (row.drops == 0 || row.resends == 0 || row.linkFailures == 0 ||
           row.linkfailBusyUs <= 0.0))
        ok = false;
    }
    mdTable.print(std::cout);
    std::cout << "(retransmit cap 1; every lossy step completed via "
                 "watchdog-driven resend)\n";
  }

  std::cout << "\nseries written to fault_sweep.csv, "
               "fault_collectives_sweep.csv, fault_md_sweep.csv, "
               "BENCH_fault.json, BENCH_fault_collectives.json and "
               "BENCH_fault_md.json\n";
  if (!ok) std::cout << "FAULT SWEEP SANITY CHECK FAILED\n";
  return ok ? 0 : 1;
}
