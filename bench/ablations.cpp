// Ablations of the design choices DESIGN.md §6 calls out:
//   1. hardware multicast vs. repeated unicast for a 14-way position fan-out
//   2. counted remote writes vs. FIFO delivery + software processing
//   3. fine-grained direct exchange vs. staged (Fig. 8a) on the Anton fabric
//   4. in-order (deterministic) vs. adaptive routing under corner contention
#include "bench_common.hpp"

#include "core/multicast.hpp"
#include "core/neighborhood.hpp"

using namespace anton;

namespace {

// 1. multicast vs unicast: deliver 64 packets to 14 destinations.
std::pair<double, std::uint64_t> fanout(bool useMulticast) {
  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  std::vector<net::ClientAddr> dests;
  dests.push_back({0, net::kHtis});
  for (int nb : core::torusNeighborhood26(m.shape(), 0)) {
    dests.push_back({nb, net::kHtis});
    if (dests.size() == 14) break;
  }
  core::PatternAllocator alloc(m);
  int pat = alloc.install(0, dests);

  int done = 0;
  auto recv = [&](net::ClientAddr d) -> sim::Task {
    co_await m.client(d).waitCounter(0, 64);
    ++done;
  };
  for (auto d : dests) sim.spawn(recv(d));
  auto send = [&]() -> sim::Task {
    for (int i = 0; i < 64; ++i) {
      net::NetworkClient::SendArgs args;
      args.counterId = 0;
      args.address = std::uint32_t(i) * 32;
      args.payload = net::makeZeroPayload(32);
      if (useMulticast) {
        args.multicastPattern = pat;
        co_await m.slice(0, 0).send(args);
      } else {
        for (auto d : dests) {
          args.dst = d;
          co_await m.slice(0, 0).send(args);
        }
      }
    }
  };
  sim.spawn(send());
  sim.run();
  return {sim::toUs(sim.now()), m.stats().wireBytes};
}

// 2. counted remote writes vs FIFO + software: 256 messages to one node.
double delivery(bool counted) {
  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  double done = -1;
  const int n = 256;
  // NOTE: coroutine lambdas must outlive sim.run(), so both receivers are
  // declared at function scope.
  auto recvCounted = [&]() -> sim::Task {
    co_await m.slice(1, 0).waitCounter(0, n);
    done = sim::toUs(sim.now());
  };
  auto recvFifo = [&]() -> sim::Task {
    for (int i = 0; i < n; ++i) {
      co_await m.slice(1, 0).receiveFifo();
      // Software must examine each message (header decode).
      co_await sim.delay(sim::ns(20));
    }
    done = sim::toUs(sim.now());
  };
  if (counted) {
    sim.spawn(recvCounted());
  } else {
    sim.spawn(recvFifo());
  }
  auto send = [&]() -> sim::Task {
    for (int i = 0; i < n; ++i) {
      net::NetworkClient::SendArgs args;
      args.type = counted ? net::PacketType::kWrite : net::PacketType::kFifo;
      args.dst = {1, net::kSlice0};
      args.counterId = counted ? 0 : net::kNoCounter;
      args.address = std::uint32_t(i) * 32;
      args.payload = net::makeZeroPayload(24);
      co_await m.slice(0, int(i % 2)).send(args);
    }
  };
  sim.spawn(send());
  sim.run();
  return done;
}

// 3. direct 26-neighbor exchange vs staged 6-message exchange on Anton.
double exchange(bool staged) {
  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  const std::size_t slab = 240;  // bytes per neighbor
  int remaining = 64;
  double done = -1;

  auto directTask = [&](int node) -> sim::Task {
    auto nbs = core::torusNeighborhood26(m.shape(), node);
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      net::NetworkClient::SendArgs args;
      args.dst = {nbs[i], net::kSlice0};
      args.counterId = 1;
      args.address = std::uint32_t(node % 27) * 256;
      args.payload = net::makeZeroPayload(slab);
      co_await m.slice(node, 0).send(args);
    }
    co_await m.slice(node, 0).waitCounter(1, 26);
    if (--remaining == 0) done = sim::toUs(sim.now());
  };

  auto stagedTask = [&](int node) -> sim::Task {
    util::TorusCoord c = util::torusCoordOf(node, m.shape());
    std::size_t bytes = slab;
    std::uint64_t got = 0;
    for (int d = 0; d < 3; ++d) {
      for (int sgn : {+1, -1}) {
        int nb = util::torusIndex(util::torusNeighbor(c, d, sgn, m.shape()),
                                  m.shape());
        // Forwarded slabs grow 3x per stage but packets cap at 256 B.
        std::size_t rem = bytes;
        std::uint32_t addr = std::uint32_t(d * 2 + (sgn > 0 ? 0 : 1)) * 4096;
        while (rem > 0) {
          std::size_t chunk = std::min(rem, net::kMaxPayloadBytes);
          net::NetworkClient::SendArgs args;
          args.dst = {nb, net::kSlice0};
          args.counterId = 2;
          args.address = addr;
          args.payload = net::makeZeroPayload(chunk);
          co_await m.slice(node, 0).send(args);
          rem -= chunk;
          addr += std::uint32_t(chunk);
        }
      }
      // Wait for both neighbors' slabs of this stage before forwarding.
      std::uint64_t expect = 2 * ((bytes + 255) / 256);
      got += expect;
      co_await m.slice(node, 0).waitCounter(2, got);
      // Staged forwarding repacks the received slabs into the next stage's
      // outgoing buffers — the data-marshalling copy the paper's direct
      // remote writes eliminate (Fig. 8b). ~4 GB/s core copy.
      co_await sim.delay(sim::ns(0.25 * double(2 * bytes)));
      bytes *= 3;
    }
    if (--remaining == 0) done = sim::toUs(sim.now());
  };

  for (int nIdx = 0; nIdx < 64; ++nIdx) {
    if (staged) {
      sim.spawn(stagedTask(nIdx));
    } else {
      sim.spawn(directTask(nIdx));
    }
  }
  sim.run();
  return done;
}

}  // namespace

int main() {
  bench::banner("Ablations");
  util::TablePrinter t({"ablation", "baseline", "alternative", "winner"});

  auto [mcUs, mcBytes] = fanout(true);
  auto [ucUs, ucBytes] = fanout(false);
  t.addRow({"14-way fan-out: multicast vs unicast",
            util::TablePrinter::num(mcUs, 2) + " us / " +
                std::to_string(mcBytes / 1024) + " KB",
            util::TablePrinter::num(ucUs, 2) + " us / " +
                std::to_string(ucBytes / 1024) + " KB",
            mcUs < ucUs ? "multicast" : "unicast"});

  double cw = delivery(true), ff = delivery(false);
  t.addRow({"256 msgs: counted writes vs FIFO+software",
            util::TablePrinter::num(cw, 2) + " us",
            util::TablePrinter::num(ff, 2) + " us",
            cw < ff ? "counted writes" : "FIFO"});

  double direct = exchange(false), stg = exchange(true);
  t.addRow({"26-neighbor exchange: direct vs staged (Fig. 8a)",
            util::TablePrinter::num(direct, 2) + " us",
            util::TablePrinter::num(stg, 2) + " us",
            direct < stg ? "direct fine-grained" : "staged"});

  t.print(std::cout);
  std::cout << "\npaper: multicast cuts sender overhead and bandwidth "
               "(III-A); counted writes embed synchronization (III-B); on "
               "Anton, direct fine-grained exchange beats the staged pattern "
               "commodity clusters must use (IV-A, Fig. 8).\n";
  return (mcUs <= ucUs && cw < ff && direct < stg) ? 0 : 1;
}
