// Simulation-service throughput: the acceptance workload of DESIGN.md §9 —
// 8 mixed-family jobs on a 4-worker simd server — measured for turnaround
// and checked for the service's three hard invariants:
//
//   serial_parallel_match  every parallel result is bit-identical to serial
//                          execution on a single arena (gate: 1.0)
//   cache_hit_rate         resubmitting the whole workload is served
//                          entirely from the snapshot-keyed cache (gate: 1.0)
//   violation_free_jobs    all 8 jobs pass the static plan verifier (gate: 8)
//
// Wall-clock numbers (jobs/sec, p50/p99 turnaround) are informational:
// they depend on host load, so they are recorded against themselves and
// never gate the perf trajectory.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>

#include "serve/job_spec.hpp"
#include "serve/runner.hpp"
#include "serve/server.hpp"

using namespace anton;

namespace {

std::vector<serve::JobSpec> workload() {
  std::vector<serve::JobSpec> specs;
  specs.push_back(serve::quickstartMdSpec(/*steps=*/1));
  specs.push_back(serve::quickstartMdSpec(/*steps=*/2));
  specs.push_back(serve::fig5PingSpec(/*maxHops=*/4, /*payloadBytes=*/256));
  specs.push_back(serve::fig5PingSpec(/*maxHops=*/2, /*payloadBytes=*/0));
  specs.push_back(serve::table2AllReduceSpec({4, 4, 4}, /*words=*/4));
  specs.push_back(serve::table2AllReduceSpec({2, 2, 2}, /*words=*/0));
  specs.push_back(serve::faultSweepSpec({2, 2, 2}, /*bitErrorRate=*/1e-5));
  specs.push_back(serve::faultSweepSpec({4, 4, 1}, /*bitErrorRate=*/0.0,
                                        /*maxRetransmits=*/4));
  return specs;
}

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  std::size_t rank = std::size_t(std::max(
      0.0, std::ceil(p / 100.0 * double(v.size())) - 1.0));
  return v[std::min(rank, v.size() - 1)];
}

}  // namespace

int main() {
  bench::banner("Simulation service: 8 mixed jobs on a 4-worker server");
  std::vector<serve::JobSpec> specs = workload();

  // Serial reference: every job on one arena, reset between jobs.
  std::vector<serve::RunOutcome> serial;
  sim::Simulator arena;
  for (const serve::JobSpec& spec : specs) {
    arena.reset();
    serial.push_back(serve::runJob(spec, arena));
  }

  serve::JobServer server({.workers = 4, .queueCapacity = 16});
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  for (const serve::JobSpec& spec : specs)
    ids.push_back(server.submit(spec).id);
  int matches = 0;
  int violationFree = 0;
  std::vector<double> turnaroundMs;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    serve::JobRecord rec = server.wait(ids[i]);
    if (rec.state == serve::JobState::kDone &&
        rec.resultJson == serial[i].resultJson &&
        rec.digest == serial[i].digest)
      ++matches;
    if (rec.state == serve::JobState::kDone && rec.violations == 0)
      ++violationFree;
    turnaroundMs.push_back(rec.turnaroundMs);
  }
  double elapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Resubmit the whole workload: every job must come out of the cache.
  int hits = 0;
  for (const serve::JobSpec& spec : specs) {
    serve::JobRecord rec = server.wait(server.submit(spec).id);
    if (rec.state == serve::JobState::kDone && rec.cacheHit) ++hits;
  }
  server.shutdown();

  double n = double(specs.size());
  double jobsPerSec = n / elapsedSec;
  double p50 = percentile(turnaroundMs, 50);
  double p99 = percentile(turnaroundMs, 99);

  util::TablePrinter table({"metric", "value"});
  table.addRow({"serial/parallel matches", std::to_string(matches) + "/8"});
  table.addRow({"cache hits on resubmit", std::to_string(hits) + "/8"});
  table.addRow({"violation-free jobs", std::to_string(violationFree) + "/8"});
  table.addRow({"jobs/sec", util::TablePrinter::num(jobsPerSec, 2)});
  table.addRow({"p50 turnaround (ms)", util::TablePrinter::num(p50, 1)});
  table.addRow({"p99 turnaround (ms)", util::TablePrinter::num(p99, 1)});
  table.print(std::cout);

  bench::JsonReporter json("serve");
  json.record("serial_parallel_match", 1.0, matches / n, "fraction");
  json.record("cache_hit_rate", 1.0, hits / n, "fraction");
  json.record("violation_free_jobs", 8.0, double(violationFree), "jobs");
  // Host-dependent wall-clock numbers: informational (deviation pinned 0).
  json.record("jobs_per_sec", jobsPerSec, jobsPerSec, "jobs/s");
  json.record("p50_turnaround_ms", p50, p50, "ms");
  json.record("p99_turnaround_ms", p99, p99, "ms");

  bool ok = matches == 8 && hits == 8 && violationFree == 8;
  std::cout << (ok ? "\nall service invariants hold\n"
                   : "\nSERVICE INVARIANT VIOLATED\n");
  return ok ? 0 : 1;
}
