// Event-kernel throughput: the zero-allocation hot path measured against
// the legacy (seed) heap-allocating kernel, in one process.
//
// Two workload shapes from the paper's experiments drive the kernel:
//
//   ping       Fig. 5-style counted remote writes across 1-4 x-hops on an
//              8x8x8 torus, 256 B payloads — the latency path.
//   allreduce  the 8x8x8 (512-node) dimension-ordered all-reduce of
//              Table 2 — the throughput path (thousands of in-flight
//              packets, deep event queue).
//
// Each shape runs twice: once with util::hotPath() fully off (the legacy
// reference: heap packets/payloads/frames/handles, std::function-sized
// event SBO, one scheduled event per link traversal) and once fully on
// (slab pools, 64 B inline event captures, batched per-link drains). The
// knobs change host allocation only, so both runs must produce an
// identical simulated schedule — checked here, and gated bit-exactly by
// determinism_test.
//
// A global operator new/delete override counts every heap allocation; the
// measured windows run after a warmup so pools and vector capacities are
// hot. Self-checks (exit 1): pooled/legacy schedule digests must match,
// and the pooled ping steady state must make ZERO allocations.
//
// A third axis measures the sharded parallel kernel (ISSUE 10): the Fig. 5
// ping and quickstart-MD shapes run serial-vs-sharded (slab-x layout from
// the topology bound, worker threads on) and the sharded schedule digest
// must equal the serial one — same bit-identity contract determinism_test
// gates, priced here in wall-clock.
//
// Gated metrics (tools/check_perf_trajectory.py):
//   *_speedup_vs_legacy_floor  events/sec speedup, clamped at the 5x
//                              target so improvements never trip the gate
//   ping_zero_alloc_steady     1.0 = no allocation in the measured window
//   schedule_match             1.0 = pooled == legacy schedule digests
//   sharded_schedule_match     1.0 = sharded == serial schedule digests
// Raw events/sec, packets/sec, allocs/event and the sharded speedups are
// host-dependent and recorded informationally (measured against
// themselves).
#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "core/allreduce.hpp"
#include "md/anton_app.hpp"
#include "md/system.hpp"
#include "util/hotpath.hpp"
#include "util/torus_coord.hpp"
#include "verify/lookahead.hpp"
#include "verify/shard_contract.hpp"

namespace {
// Every operator new since process start. Atomic: the sharded kernel's
// worker threads allocate too, and a torn counter would corrupt the
// windowed deltas (and race under TSan).
std::atomic<std::uint64_t> g_allocs{0};
}

// --- counting allocator hook ------------------------------------------------
// Replacing the global allocation functions makes every heap allocation in
// the process observable; the bench reads windowed deltas of g_allocs.

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::size_t(a), n != 0 ? n : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace anton;

namespace {

struct RunStats {
  double wallSec = 0.0;
  std::uint64_t events = 0;   ///< kernel events in the measured window
  std::uint64_t packets = 0;  ///< packets injected in the measured window
  std::uint64_t allocs = 0;   ///< operator new calls in the measured window
  std::uint64_t digest = 0;   ///< schedule digest (mode-independent)

  double eventsPerSec() const { return double(events) / wallSec; }
  double packetsPerSec() const { return double(packets) / wallSec; }
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t scheduleDigest(sim::Simulator& sim, net::Machine& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, std::uint64_t(sim.now()));
  h = mix(h, sim.eventsProcessed());
  const net::MachineStats& s = m.stats();
  h = mix(h, s.packetsInjected);
  h = mix(h, s.packetsDelivered);
  h = mix(h, s.linkTraversals);
  h = mix(h, s.wireBytes);
  h = mix(h, s.multicastForks);
  return h;
}

/// Worker-thread count for the sharded runs (matches the serve runner).
constexpr int kShardWorkers = 3;

/// slab-x layout over `shape` from the plan-free topology bound — the same
/// construction the sharded determinism tests use.
sim::ShardLayout slabLayout(util::TorusShape shape) {
  return anton::verify::shardLayoutFromTopology(
      shape, anton::verify::slabSharding(shape));
}

/// Fig. 5-shaped ping: counted 256 B remote writes to x-neighbors 1-4 hops
/// out. One probe per iteration; `warmup` iterations heat pools and vector
/// capacities before the `iters` measured ones. With a layout the probes
/// run on the sharded kernel (slab-x, worker threads on).
RunStats runPing(bool hot, int warmup, int iters,
                 const sim::ShardLayout* layout = nullptr) {
  util::ScopedHotPath scoped(hot);
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  if (layout != nullptr) sim.enableSharded(*layout, kShardWorkers);
  auto probe = [&](int i) {
    int hops = 1 + (i % 4);
    net::ClientAddr dst{util::torusIndex({hops, 0, 0}, m.shape()),
                        net::kSlice0};
    (void)net::oneWayLatencyNs(m, {0, net::kSlice0}, dst,
                               /*payloadBytes=*/256);
  };
  for (int i = 0; i < warmup; ++i) probe(i);

  RunStats out;
  std::uint64_t ev0 = sim.eventsProcessed();
  std::uint64_t pk0 = m.stats().packetsInjected;
  std::uint64_t al0 = g_allocs.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) probe(i);
  out.wallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (layout != nullptr) sim.disableSharded();
  out.events = sim.eventsProcessed() - ev0;
  out.packets = m.stats().packetsInjected - pk0;
  out.allocs = g_allocs.load(std::memory_order_relaxed) - al0;
  out.digest = scheduleDigest(sim, m);
  return out;
}

/// The quickstart-MD shape (4x4x4 torus, 1536 synthetic atoms): `warmup`
/// supersteps to heat pools, `steps` measured ones. Recovery stays
/// disarmed in both modes so serial and sharded run the identical
/// configuration (the drop registry is the one cross-shard mutable fault
/// object the sharded kernel refuses).
RunStats runMd(bool sharded, int warmup, int steps) {
  util::ScopedHotPath scoped(true);
  sim::Simulator sim;
  net::Machine m(sim, {4, 4, 4});
  anton::md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.seed = 2010;
  anton::md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.homeBoxMarginFrac = 0.10;
  anton::md::AntonMdApp app(m, anton::md::buildSyntheticSystem(sp), cfg);
  sim::ShardLayout layout;
  if (sharded) {
    layout = slabLayout(m.shape());
    sim.enableSharded(layout, kShardWorkers);
  }
  app.runSteps(warmup);

  RunStats out;
  std::uint64_t ev0 = sim.eventsProcessed();
  std::uint64_t pk0 = m.stats().packetsInjected;
  std::uint64_t al0 = g_allocs.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  app.runSteps(steps);
  out.wallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (sharded) sim.disableSharded();
  out.events = sim.eventsProcessed() - ev0;
  out.packets = m.stats().packetsInjected - pk0;
  out.allocs = g_allocs.load(std::memory_order_relaxed) - al0;
  out.digest = scheduleDigest(sim, m);
  return out;
}

/// Table 2's largest common shape: 512-node dimension-ordered all-reduce,
/// 4 doubles per node. Each round spawns one task per node and drains.
RunStats runAllReduce(bool hot, int warmupRounds, int rounds) {
  util::ScopedHotPath scoped(hot);
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  core::DimOrderedAllReduce red(m);
  std::vector<double> sum;
  auto round = [&] {
    for (int n = 0; n < m.numNodes(); ++n) {
      std::vector<double> in{double(n), 1.0, 2.0, 3.0};
      sim.spawn(red.run(n, std::move(in), n == 0 ? &sum : nullptr));
    }
    sim.run();
  };
  for (int r = 0; r < warmupRounds; ++r) round();

  RunStats out;
  std::uint64_t ev0 = sim.eventsProcessed();
  std::uint64_t pk0 = m.stats().packetsInjected;
  std::uint64_t al0 = g_allocs.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) round();
  out.wallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.events = sim.eventsProcessed() - ev0;
  out.packets = m.stats().packetsInjected - pk0;
  out.allocs = g_allocs.load(std::memory_order_relaxed) - al0;
  out.digest = scheduleDigest(sim, m);
  for (double v : sum) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    out.digest = mix(out.digest, bits);
  }
  return out;
}

/// Best-of-N wall clock with the two modes interleaved: each repetition
/// runs legacy then pooled back to back, and the fastest wall time per mode
/// wins. The simulated work is deterministic (fresh kernel per run,
/// identical digest and event counts), so the minimum is the repeat least
/// disturbed by host noise — and interleaving means a load spike must hit
/// the SAME mode in every repetition to bias the gated speedup ratio.
template <typename F>
std::pair<RunStats, RunStats> bestOfPaired(int reps, F&& runMode) {
  std::pair<RunStats, RunStats> best{runMode(false), runMode(true)};
  for (int r = 1; r < reps; ++r) {
    RunStats legacy = runMode(false);
    RunStats pooled = runMode(true);
    if (legacy.wallSec < best.first.wallSec) best.first = legacy;
    if (pooled.wallSec < best.second.wallSec) best.second = pooled;
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("Event-kernel throughput: pooled hot path vs legacy");

  constexpr int kReps = 7;
  constexpr int kPingWarmup = 500, kPingIters = 12000;
  constexpr int kArWarmup = 1, kArRounds = 2;
  constexpr int kShardReps = 3;
  constexpr int kShardPingWarmup = 100, kShardPingIters = 2000;
  constexpr int kMdWarmup = 1, kMdSteps = 2;

  auto [pingLegacy, pingPooled] = bestOfPaired(
      kReps, [&](bool hot) { return runPing(hot, kPingWarmup, kPingIters); });
  auto [arLegacy, arPooled] = bestOfPaired(kReps, [&](bool hot) {
    return runAllReduce(hot, kArWarmup, kArRounds);
  });

  // Serial-vs-sharded walls (both pooled): Fig. 5 ping and quickstart-MD.
  sim::ShardLayout pingLayout = slabLayout({8, 8, 8});
  auto [pingSerial, pingSharded] =
      bestOfPaired(kShardReps, [&](bool sharded) {
        return runPing(true, kShardPingWarmup, kShardPingIters,
                       sharded ? &pingLayout : nullptr);
      });
  auto [mdSerial, mdSharded] = bestOfPaired(kShardReps, [&](bool sharded) {
    return runMd(sharded, kMdWarmup, kMdSteps);
  });

  double pingSpeedup = pingPooled.eventsPerSec() / pingLegacy.eventsPerSec();
  double arSpeedup = arPooled.eventsPerSec() / arLegacy.eventsPerSec();
  double pingShardedSpeedup =
      pingSharded.eventsPerSec() / pingSerial.eventsPerSec();
  double mdShardedSpeedup = mdSharded.eventsPerSec() / mdSerial.eventsPerSec();
  bool schedulesMatch = pingLegacy.digest == pingPooled.digest &&
                        arLegacy.digest == arPooled.digest;
  bool shardedMatch = pingSerial.digest == pingSharded.digest &&
                      mdSerial.digest == mdSharded.digest;
  bool pingZeroAlloc = pingPooled.allocs == 0;
  double arAllocsPerEvent = double(arPooled.allocs) / double(arPooled.events);

  util::TablePrinter table(
      {"shape", "mode", "events/s", "packets/s", "allocs/event"});
  auto row = [&](const char* shape, const char* mode, const RunStats& r) {
    table.addRow({shape, mode, util::TablePrinter::num(r.eventsPerSec(), 0),
                  util::TablePrinter::num(r.packetsPerSec(), 0),
                  util::TablePrinter::num(double(r.allocs) / double(r.events),
                                          4)});
  };
  row("ping 8x8x8", "legacy", pingLegacy);
  row("ping 8x8x8", "pooled", pingPooled);
  row("allreduce 8x8x8", "legacy", arLegacy);
  row("allreduce 8x8x8", "pooled", arPooled);
  row("ping 8x8x8", "serial", pingSerial);
  row("ping 8x8x8", "sharded", pingSharded);
  row("quickstart-md 4x4x4", "serial", mdSerial);
  row("quickstart-md 4x4x4", "sharded", mdSharded);
  table.print(std::cout);
  std::cout << "ping speedup: " << util::TablePrinter::num(pingSpeedup, 2)
            << "x   allreduce speedup: "
            << util::TablePrinter::num(arSpeedup, 2) << "x\n"
            << "sharded (slab-x, " << kShardWorkers
            << " workers) vs serial: ping "
            << util::TablePrinter::num(pingShardedSpeedup, 2) << "x   md "
            << util::TablePrinter::num(mdShardedSpeedup, 2) << "x\n";

  bench::JsonReporter json("kernel");
  // Gates: the speedup floors are clamped at the 5x target (improvements
  // must never read as deviation growth); the boolean invariants gate on
  // exact 1.0.
  json.record("ping_speedup_vs_legacy_floor", 5.0,
              std::min(pingSpeedup, 5.0), "x");
  json.record("allreduce_speedup_vs_legacy_floor", 5.0,
              std::min(arSpeedup, 5.0), "x");
  json.record("ping_zero_alloc_steady", 1.0, pingZeroAlloc ? 1.0 : 0.0,
              "bool");
  json.record("schedule_match", 1.0, schedulesMatch ? 1.0 : 0.0, "bool");
  json.record("sharded_schedule_match", 1.0, shardedMatch ? 1.0 : 0.0,
              "bool");
  // Host-dependent raw numbers: informational (deviation pinned 0).
  json.record("ping_events_per_sec", pingPooled.eventsPerSec(),
              pingPooled.eventsPerSec(), "events/s");
  json.record("ping_packets_per_sec", pingPooled.packetsPerSec(),
              pingPooled.packetsPerSec(), "packets/s");
  json.record("allreduce_events_per_sec", arPooled.eventsPerSec(),
              arPooled.eventsPerSec(), "events/s");
  json.record("allreduce_allocs_per_event", arAllocsPerEvent,
              arAllocsPerEvent, "allocs/event");
  // Sharded wall-clock ratios are host- and core-count-dependent:
  // informational, like the raw events/sec records. The bit-identity of
  // the sharded schedule is the hard gate above.
  json.record("ping_sharded_speedup", pingShardedSpeedup, pingShardedSpeedup,
              "x");
  json.record("md_sharded_speedup", mdShardedSpeedup, mdShardedSpeedup, "x");

  bool ok = schedulesMatch && pingZeroAlloc && shardedMatch;
  if (!schedulesMatch)
    std::cout << "\nSCHEDULE MISMATCH: pooled kernel diverged from legacy\n";
  if (!shardedMatch)
    std::cout << "\nSCHEDULE MISMATCH: sharded kernel diverged from serial\n";
  if (!pingZeroAlloc)
    std::cout << "\nALLOCATION ON THE HOT PATH: " << pingPooled.allocs
              << " heap allocations in the pooled ping window\n";
  if (ok) std::cout << "\nkernel invariants hold\n";
  return ok ? 0 : 1;
}
