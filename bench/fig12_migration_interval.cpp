// SC10 Figure 12: average per-step execution time vs. migration interval
// (N = 1..8) on a machine with relaxed home boxes. Frequent migration pays
// the FIFO traffic + in-order 26-neighbor flush + bookkeeping every step;
// relaxing the boundaries amortizes it (the paper reports a 19% improvement
// from N=1 to N=8 on a 17,758-particle system). Also reports the measured
// cost of the migration synchronization step itself (paper: 0.56 us).
#include "bench_common.hpp"

#include "md/anton_app.hpp"

using namespace anton;

int main() {
  bench::banner("Figure 12: execution time vs. migration interval");

  util::TablePrinter table({"interval (steps)", "avg step (us)",
                            "migration phase (us)", "atoms migrated"});
  util::CsvWriter csv("fig12_migration_interval.csv");
  csv.row("interval", "avg_step_us", "migration_us", "migrated");

  double first = 0, last = 0, flushUs = 0;
  for (int interval = 1; interval <= 8; ++interval) {
    sim::Simulator sim;
    net::Machine machine(sim, {4, 4, 4});
    md::SyntheticSystemParams sp;
    sp.targetAtoms = 17758 / 8;  // scaled 17,758-particle benchmark
    sp.temperature = 1.6;        // hotter -> measurable migration traffic
    sp.seed = 99;
    md::MDSystem sys = md::buildSyntheticSystem(sp);

    md::AntonMdConfig cfg;
    cfg.force.cutoff = 2.0;
    cfg.ewald.grid = 16;
    cfg.longRangeInterval = 2;
    cfg.thermostatTau = 0.05;
    cfg.migrationInterval = interval;
    cfg.homeBoxMarginFrac = 0.03;
    cfg.packetHeadroom = 1.6;

    md::AntonMdApp app(machine, sys, cfg);
    const int steps = 16;
    app.runSteps(steps);

    double total = 0, mig = 0;
    std::uint64_t migrated = 0;
    for (const md::StepTiming& t : app.stepTimings()) {
      total += t.totalUs;
      if (t.migration) {
        mig = std::max(mig, t.migrationUs);
        flushUs = std::max(flushUs, t.migrationUs);
      }
    }
    migrated = app.totalMigrated();
    double avg = total / steps;
    if (interval == 1) first = avg;
    if (interval == 8) last = avg;

    table.addRow({std::to_string(interval), util::TablePrinter::num(avg, 2),
                  util::TablePrinter::num(mig, 2), std::to_string(migrated)});
    csv.row(interval, avg, mig, migrated);
  }
  table.print(std::cout);

  double improvement = (first - last) / first * 100.0;
  std::cout << "\npaper shape: migrating every step is the most expensive; "
               "spacing migrations to every 8 steps improved the paper's "
               "benchmark 19%. Model improvement: "
            << util::TablePrinter::num(improvement, 0) << "% ("
            << util::TablePrinter::num(first, 1) << " -> "
            << util::TablePrinter::num(last, 1) << " us). Migration "
            << "synchronization phase costs up to "
            << util::TablePrinter::num(flushUs, 2)
            << " us (paper: 0.56 us for the flush alone).\n"
            << "series written to fig12_migration_interval.csv\n";
  return (first > last) ? 0 : 1;
}
