// SC10 Figure 6: component breakdown of the 162 ns neighbor-X counted
// remote write. The model's calibrated components are printed next to the
// paper's measured values, and the end-to-end sum is cross-checked against
// an actual simulated transfer.
#include "bench_common.hpp"

using namespace anton;

int main() {
  bench::banner("Figure 6: single-hop (+X neighbor) latency breakdown");

  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  const net::LatencyConfig& lat = m.latency();
  const net::RingLayout& ring = lat.ring;

  int sliceR = ring.clientRouter[net::kSlice0];
  int xPlusR = ring.adapterRouter[std::size_t(net::RingLayout::adapterIndex(0, +1))];
  int xMinusR = ring.adapterRouter[std::size_t(net::RingLayout::adapterIndex(0, -1))];

  struct Row {
    const char* component;
    double paperNs;
    double modelNs;
  };
  Row rows[] = {
      {"packet assembly + injection (slice)", 36.0, lat.assemblyNs},
      {"on-chip ring: slice -> X+ adapter (2 routers)", 19.0,
       sim::toNs(lat.ringPath(sliceR, xPlusR))},
      {"X+ link adapter", 20.0, lat.adapterNs},
      {"torus link wire", 0.0, lat.wireNs[0]},
      {"X- link adapter", 20.0, lat.adapterNs},
      {"on-chip ring: X- adapter -> slice (3 routers)", 25.0,
       sim::toNs(lat.ringPath(xMinusR, sliceR))},
      {"counter update + successful poll", 42.0, lat.pollSuccessNs},
  };

  util::TablePrinter table({"component", "paper (ns)", "model (ns)"});
  double paperSum = 0, modelSum = 0;
  for (const Row& r : rows) {
    table.addRow({r.component, util::TablePrinter::num(r.paperNs, 0),
                  util::TablePrinter::num(r.modelNs, 0)});
    paperSum += r.paperNs;
    modelSum += r.modelNs;
  }
  table.addRow({"TOTAL", util::TablePrinter::num(paperSum, 0),
                util::TablePrinter::num(modelSum, 0)});
  table.print(std::cout);

  double measured = bench::oneWayLatencyNs(
      m, {0, net::kSlice0},
      {util::torusIndex({1, 0, 0}, m.shape()), net::kSlice0}, 0);
  std::cout << "\nend-to-end simulated transfer: "
            << util::TablePrinter::num(measured, 1)
            << " ns (paper: 162 ns)\n";
  std::cout << "link bandwidth: 50.6 Gbit/s raw, "
            << util::TablePrinter::num(lat.linkBytesPerNs * 8, 1)
            << " Gbit/s effective; on-chip ring "
            << util::TablePrinter::num(lat.ringBytesPerNs * 8, 1)
            << " Gbit/s\n";
  return measured == 162.0 ? 0 : 1;
}
