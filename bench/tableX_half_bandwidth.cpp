// SC10 §III-D: half-bandwidth message size. "50% of the maximum possible
// data bandwidth is achieved with 28-byte messages on Anton, compared with
// 1.4-, 16-, and 39-kilobyte messages on Blue Gene/L, Red Storm, and ASC
// Purple." Measured by streaming a fixed-size payload burst across one link
// and reporting delivered payload bandwidth vs. the link's effective rate.
#include "bench_common.hpp"

#include "cluster/network.hpp"

using namespace anton;

namespace {

// Payload bandwidth achieved when streaming `count` messages of `size`
// bytes across one +X link, as a fraction of the effective link bandwidth.
double antonEfficiency(std::size_t size, int count = 400) {
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  net::ClientAddr src{0, net::kSlice0};
  net::ClientAddr dst{util::torusIndex({1, 0, 0}, m.shape()), net::kSlice0};

  double done = -1;
  auto receiver = [&](std::uint64_t n) -> sim::Task {
    co_await m.client(dst).waitCounter(0, n);
    done = sim::toNs(m.sim().now());
  };
  auto sender = [&](int n) -> sim::Task {
    for (int i = 0; i < n; ++i) {
      net::NetworkClient::SendArgs args;
      args.dst = dst;
      args.counterId = 0;
      args.inOrder = true;
      if (size != 0) args.payload = net::makeZeroPayload(size);
      co_await m.client(src).send(args);
    }
  };
  sim.spawn(receiver(std::uint64_t(count)));
  sim.spawn(sender(count));
  sim.run();
  double payloadBytes = double(size) * count;
  double achieved = payloadBytes / done;  // bytes per ns
  return achieved / m.latency().linkBytesPerNs;
}

double clusterEfficiency(std::size_t size, int count = 64) {
  sim::Simulator sim;
  cluster::ClusterMachine cm(sim, 2);
  double done = -1;
  auto receiver = [&](int n) -> sim::Task {
    for (int i = 0; i < n; ++i) co_await cm.recv(1, 0, 1);
    done = sim::toUs(sim.now());
  };
  auto sender = [&](int n) -> sim::Task {
    for (int i = 0; i < n; ++i) co_await cm.send(0, 1, 1, size);
  };
  sim.spawn(receiver(count));
  sim.spawn(sender(count));
  sim.run();
  double peak = 1.0 / cm.params().gapPerByteUs;  // bytes per us
  return (double(size) * count / done) / peak;
}

template <typename F>
std::size_t halfBandwidthSize(F eff) {
  std::size_t lo = 1, hi = 1 << 20;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (eff(mid) >= 0.5) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

int main() {
  bench::banner("Half-bandwidth message size (SC10 III-D)");

  // Anton: sweep payload sizes (packets cap at 256 B; larger sizes would be
  // multiple packets, and 256 B already saturates, so sweep 4..256).
  std::size_t anton = 0;
  for (std::size_t s = 4; s <= 256; s += 4) {
    if (antonEfficiency(s) >= 0.5) {
      anton = s;
      break;
    }
  }
  std::size_t ib = halfBandwidthSize([](std::size_t s) {
    return clusterEfficiency(s);
  });

  util::TablePrinter table({"machine", "half-bandwidth msg size", "source"});
  table.addRow({"Anton (model)", std::to_string(anton) + " B", "measured here"});
  table.addRow({"Anton (paper)", "28 B", "[SC10 III-D]"});
  table.addRow({"LogGP InfiniBand (model)",
                std::to_string(ib / 1024) + "." + std::to_string((ib % 1024) / 103) + " KB",
                "measured here"});
  table.addRow({"Blue Gene/L", "1.4 KB", "[25]"});
  table.addRow({"Red Storm", "16 KB", "[25]"});
  table.addRow({"ASC Purple", "39 KB", "[25]"});
  table.print(std::cout);

  std::cout << "\nshape check: Anton reaches half bandwidth with ~30 B "
               "messages; commodity networks need kilobytes.\n";
  return (anton <= 64 && ib >= 512) ? 0 : 1;
}
