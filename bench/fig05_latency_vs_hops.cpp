// SC10 Figure 5: one-way counted-remote-write latency vs. torus hops on a
// 512-node (8x8x8) machine, for 0 B and 256 B payloads, unidirectional and
// bidirectional. Hops 1-4 run along X; hops 5-12 add Y then Z hops.
// Paper anchors: 162 ns at 1 hop, 76 ns/hop in X, 54 ns/hop in Y/Z, and a
// 12-hop latency roughly 5x the 1-hop latency.
#include "bench_common.hpp"

using namespace anton;

namespace {

util::TorusCoord destAtHops(int hops) {
  // 1-4: X only; 5-8: add Y; 9-12: add Z (shortest-path max 4 per dim).
  int hx = std::min(hops, 4);
  int hy = std::min(std::max(hops - 4, 0), 4);
  int hz = std::min(std::max(hops - 8, 0), 4);
  return {hx, hy, hz};
}

double measure(int hops, std::size_t payload, bool bidir) {
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  net::ClientAddr src{0, net::kSlice0};
  net::ClientAddr dst{util::torusIndex(destAtHops(hops), m.shape()),
                      hops == 0 ? net::kSlice1 : net::kSlice0};
  return bidir ? bench::bidirLatencyNs(m, src, dst, payload)
               : bench::oneWayLatencyNs(m, src, dst, payload, true);
}

}  // namespace

int main() {
  bench::banner("Figure 5: one-way latency vs. network hops (8x8x8 torus)");
  util::TablePrinter table({"hops", "0B uni (ns)", "0B bidir (ns)",
                            "256B uni (ns)", "256B bidir (ns)"});
  util::CsvWriter csv("fig05_latency_vs_hops.csv");
  csv.row("hops", "uni0_ns", "bidir0_ns", "uni256_ns", "bidir256_ns");
  for (int h = 0; h <= 12; ++h) {
    double u0 = measure(h, 0, false);
    double b0 = measure(h, 0, true);
    double u256 = measure(h, 256, false);
    double b256 = measure(h, 256, true);
    table.addRow({std::to_string(h), util::TablePrinter::num(u0, 1),
                  util::TablePrinter::num(b0, 1),
                  util::TablePrinter::num(u256, 1),
                  util::TablePrinter::num(b256, 1)});
    csv.row(h, u0, b0, u256, b256);
  }
  table.print(std::cout);

  double h1 = measure(1, 0, false);
  double h4 = measure(4, 0, false);
  double h12 = measure(12, 0, false);
  bench::JsonReporter json("fig05");
  json.record("one_hop_latency", 162.0, h1, "ns");
  json.record("x_slope", 76.0, (h4 - h1) / 3.0, "ns/hop");
  json.record("twelve_hop_ratio", 5.0, h12 / h1, "x");
  std::cout << "\npaper anchors: 1 hop = 162 ns (measured "
            << util::TablePrinter::num(h1, 1) << "), X slope = 76 ns/hop (measured "
            << util::TablePrinter::num((h4 - h1) / 3.0, 1)
            << "), 12-hop/1-hop = ~5x (measured "
            << util::TablePrinter::num(h12 / h1, 2) << "x)\n"
            << "series written to fig05_latency_vs_hops.csv\n";
  return 0;
}
